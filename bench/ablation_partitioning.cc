// Ablation (paper §VIII future work / DESIGN.md): partitioning strategies
// under ICM. For each dataset and strategy: temporal edge cut, load
// imbalance, and the cluster-modeled makespan of a representative TI and
// TD algorithm. The paper observed hash partitioning bottlenecks (70% of
// TGB's Twitter messages landing on 4 of 8 partitions, §VII-B3); this
// quantifies how much smarter placement helps ICM itself.
#include "bench_common.h"
#include "graph/partition_strategies.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.3);
  const int workers = 8;
  constexpr PartitionStrategy kStrategies[] = {
      PartitionStrategy::kHash, PartitionStrategy::kRange,
      PartitionStrategy::kBlock, PartitionStrategy::kGreedyLdg};

  std::printf("Partitioning ablation (scale %.2f, %d workers): ICM with "
              "explicit vertex placement\n\n",
              scale, workers);
  for (const DatasetSpec& spec : DatasetCatalog(scale)) {
    std::fprintf(stderr, "[gen] %s ...\n", spec.name.c_str());
    Workload w(Generate(spec.options));
    const VertexId hub = bench::HubVertex(w.graph());

    TextTable table;
    table.AddRow({"Strategy", "Cut-%", "Imbalance", "WCC-modeled-ms",
                  "SSSP-modeled-ms"});
    for (PartitionStrategy s : kStrategies) {
      // The quality metrics still need the explicit assignment vector; the
      // engine runs go through the Placement policy object directly
      // (kHash stays the plane's default hash policy — no materialized
      // map — everything else is an owned strategy map).
      const auto part = ComputePartition(w.graph(), s, workers);
      const Placement place = ComputePlacement(w.graph(), s, workers);
      // WCC runs on the undirected expansion: evaluate/partition that
      // graph for it, but report the base-graph cut for comparability.
      const Placement place_undirected =
          ComputePlacement(w.undirected(), s, workers);
      const PartitionQuality q = EvaluatePartition(w.graph(), part, workers);

      auto run_icm = [&](auto&& program, const TemporalGraph& g,
                         const Placement& placement, auto options) {
        options.num_workers = workers;
        options.placement = placement;
        using P = std::decay_t<decltype(program)>;
        auto result = IcmEngine<P>::Run(g, program, options);
        RunMetrics::ClusterModel model;
        model.num_workers = workers;
        return static_cast<double>(
                   result.metrics.SimulatedMakespanNs(model)) /
               1e6;
      };
      std::fprintf(stderr, "[run] %s %s ...\n", spec.name.c_str(),
                   PartitionStrategyName(s));
      const double wcc_ms = run_icm(IcmWcc(), w.undirected(),
                                    place_undirected, IcmOptions{});
      const double sssp_ms =
          run_icm(IcmSssp(w.graph(), hub), w.graph(), place, IcmOptions{});
      table.AddRow({PartitionStrategyName(s),
                    FormatDouble(100 * q.cut_fraction, 1),
                    FormatDouble(q.load_imbalance, 2),
                    FormatDouble(wcc_ms, 1), FormatDouble(sssp_ms, 1)});
    }
    std::printf("=== %s ===\n%s\n", spec.name.c_str(),
                table.ToString().c_str());
    w.DropDerived();
  }
  std::printf(
      "Reading: lower temporal edge cut => less cross-worker traffic in\n"
      "the modeled makespan; imbalance > 1 concentrates compute on one\n"
      "worker. Block placement excels on the road grid (id-local\n"
      "neighborhoods); greedy-LDG wins on the social graphs; hash is the\n"
      "balanced default the paper (and Giraph) uses.\n");
  return 0;
}
