// Counting allocator hook for the allocation benchmarks: replaces the
// global operator new/delete family with malloc-backed versions that bump
// one atomic counter per heap allocation. AllocCount() deltas around a
// code region give its exact allocation count — deterministic for
// deterministic code, unlike timing.
//
// Usage: every bench binary is its own executable (bench/CMakeLists globs
// one target per .cc), so the TU that wants the hook defines
// GRAPHITE_ALLOC_COUNTER_IMPL before including this header, exactly once
// per binary. Replacement operators must be ordinary non-inline
// definitions ([replacement.functions]); without the macro this header
// only declares the counter accessors.
#ifndef GRAPHITE_BENCH_ALLOC_COUNTER_H_
#define GRAPHITE_BENCH_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace graphite {
namespace benchalloc {

extern std::atomic<uint64_t> g_allocations;

/// Heap allocations (operator new family) since process start.
inline uint64_t AllocCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace benchalloc
}  // namespace graphite

#ifdef GRAPHITE_ALLOC_COUNTER_IMPL

#include <cstdlib>
#include <new>

namespace graphite {
namespace benchalloc {

std::atomic<uint64_t> g_allocations{0};

namespace {

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace
}  // namespace benchalloc
}  // namespace graphite

void* operator new(std::size_t size) {
  return graphite::benchalloc::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return graphite::benchalloc::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return graphite::benchalloc::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return graphite::benchalloc::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  graphite::benchalloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  graphite::benchalloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // GRAPHITE_ALLOC_COUNTER_IMPL

#endif  // GRAPHITE_BENCH_ALLOC_COUNTER_H_
