// Checkpoint overhead benchmark: SSSP on ICM over the Table-1 dataset
// generators, once without checkpointing and once per every-k policy
// (k = 1, 2, 4). Reports wall time, time spent encoding+committing
// checkpoint frames (both as ms and as % of the run), checkpoint count,
// and bytes written per superstep. Snapshot directories live under the
// working directory and are removed when the run finishes.
//
// Prints a table to stdout and writes machine-readable results to
// BENCH_ckpt.json (override with argv[2]).
#include <filesystem>
#include <fstream>
#include <thread>

#include "algorithms/icm_path.h"
#include "bench_common.h"
#include "ckpt/checkpoint_store.h"
#include "util/json.h"

namespace graphite {
namespace {

struct Policy {
  const char* name;
  int every_k;  // 0 = checkpointing disabled
};

const Policy kPolicies[] = {
    {"none", 0},
    {"every1", 1},
    {"every2", 2},
    {"every4", 4},
};

struct Sample {
  double wall_ms = 0;
  double ckpt_ms = 0;
  int64_t checkpoints = 0;
  int64_t ckpt_bytes = 0;
  int64_t supersteps = 0;
};

// Best-of-3 by wall time; checkpoint counters from the fastest run (they
// are identical across reps — only timing varies).
template <typename Fn>
Sample Measure(const Fn& run) {
  Sample best;
  for (int rep = 0; rep < 3; ++rep) {
    const RunMetrics m = run();
    const double ms = bench::Ms(m.makespan_ns);
    if (rep == 0 || ms < best.wall_ms) {
      best = {ms, bench::Ms(m.checkpoint_ns), m.checkpoints,
              m.checkpoint_bytes, m.supersteps};
    }
  }
  return best;
}

double OverheadPct(const Sample& s) {
  return s.wall_ms <= 0 ? 0.0 : 100.0 * s.ckpt_ms / s.wall_ms;
}

void WritePolicy(JsonWriter* json, const Sample& s) {
  json->BeginObject();
  json->Key("wall_ms").Fixed(s.wall_ms, 3);
  json->Key("ckpt_ms").Fixed(s.ckpt_ms, 3);
  json->Key("overhead_pct").Fixed(OverheadPct(s), 2);
  json->Key("checkpoints").Int(s.checkpoints);
  json->Key("ckpt_bytes").Int(s.ckpt_bytes);
  json->Key("bytes_per_superstep")
      .Fixed(s.supersteps > 0 ? static_cast<double>(s.ckpt_bytes) /
                                    static_cast<double>(s.supersteps)
                              : 0.0,
             1);
  json->EndObject();
}

}  // namespace
}  // namespace graphite

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 1.0);
  const char* json_path = argc > 2 ? argv[2] : "BENCH_ckpt.json";
  const int threads = std::max(1u, std::thread::hardware_concurrency());
  const int workers = 8;
  const std::string snap_root = "bench-ckpt-snapshots";

  std::printf("Checkpoint overhead bench: SSSP on ICM, %d logical workers, "
              "%d OS threads, best of 3\n\n",
              workers, threads);
  JsonWriter json(2);
  json.BeginObject();
  json.Key("hardware_concurrency").Int(threads);
  json.Key("num_workers").Int(workers);
  json.Key("algorithm").String("sssp_icm");
  json.Key("datasets").BeginArray();

  TextTable table;
  table.AddRow({"Graph", "ss", "none-ms", "k1-ms", "k1-ov%", "k2-ov%",
                "k4-ov%", "k1-ckpts", "k1-B/ss"});
  std::vector<bench::BenchDataset> datasets = bench::LoadCatalog(scale);
  for (size_t d = 0; d < datasets.size(); ++d) {
    bench::BenchDataset& ds = datasets[d];
    const TemporalGraph& g = ds.workload.graph();
    const VertexId source = bench::HubVertex(g);

    IcmOptions options;
    options.num_workers = workers;
    options.use_threads = true;
    options.runtime.scheduling = Scheduling::kStealing;
    options.runtime.num_threads = threads;

    Sample samples[std::size(kPolicies)];
    for (size_t i = 0; i < std::size(kPolicies); ++i) {
      const Policy& p = kPolicies[i];
      options.runtime.checkpoint = p.every_k > 0
                                       ? CheckpointPolicy::EveryK(p.every_k)
                                       : CheckpointPolicy::None();
      CheckpointStore store(snap_root + "/" + ds.name + "-" + p.name,
                            /*retain=*/2);
      RecoveryContext recovery;
      recovery.store = p.every_k > 0 ? &store : nullptr;
      samples[i] = Measure([&] {
        IcmSssp program(g, source);
        return IcmEngine<IcmSssp>::Run(g, program, options, recovery).metrics;
      });
    }

    const Sample& none = samples[0];
    const Sample& k1 = samples[1];
    table.AddRow({ds.name, std::to_string(none.supersteps),
                  FormatDouble(none.wall_ms, 1), FormatDouble(k1.wall_ms, 1),
                  FormatDouble(OverheadPct(k1), 1),
                  FormatDouble(OverheadPct(samples[2]), 1),
                  FormatDouble(OverheadPct(samples[3]), 1),
                  std::to_string(k1.checkpoints),
                  FormatDouble(k1.supersteps > 0
                                   ? static_cast<double>(k1.ckpt_bytes) /
                                         static_cast<double>(k1.supersteps)
                                   : 0.0,
                               0)});
    json.BeginObject();
    json.Key("graph").String(ds.name);
    json.Key("policies").BeginObject();
    for (size_t i = 0; i < std::size(kPolicies); ++i) {
      json.Key(kPolicies[i].name);
      WritePolicy(&json, samples[i]);
    }
    json.EndObject();
    json.EndObject();
    ds.workload.DropDerived();
  }
  datasets.clear();
  json.EndArray();
  json.EndObject();

  std::printf("Checkpoint overhead, SSSP on ICM (ov%% = ckpt time / wall):\n"
              "%s\n",
              table.ToString().c_str());

  std::error_code ec;
  std::filesystem::remove_all(snap_root, ec);

  std::ofstream out(json_path);
  out << json.str() << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(stderr, "[json] wrote %s\n", json_path);
  return 0;
}
