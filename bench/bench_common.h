// Shared infrastructure for the reproduction benchmarks: dataset loading
// at a configurable scale, the (graph x algorithm x platform) sweep used
// by Table 2 / Fig. 4 / Fig. 5, and small reporting helpers.
//
// Every bench binary accepts an optional scale factor:
//     ./table2_speedup [scale]
// or the environment variable GRAPHITE_BENCH_SCALE. Scale 1.0 is the
// default laptop-sized configuration (about 1000x smaller than the
// paper's cluster datasets); larger values grow vertex/edge counts
// linearly.
#ifndef GRAPHITE_BENCH_BENCH_COMMON_H_
#define GRAPHITE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algorithms/runners.h"
#include "gen/generators.h"
#include "util/stats.h"

namespace graphite {
namespace bench {

/// Resolves the benchmark scale from argv[1] or GRAPHITE_BENCH_SCALE.
inline double ResolveScale(int argc, char** argv, double def = 1.0) {
  if (argc > 1) return std::atof(argv[1]);
  if (const char* env = std::getenv("GRAPHITE_BENCH_SCALE")) {
    return std::atof(env);
  }
  return def;
}

/// A generated dataset plus its prepared Workload.
struct BenchDataset {
  std::string name;
  std::string models;
  Workload workload;
};

/// Generates the six catalog datasets at `scale`.
inline std::vector<BenchDataset> LoadCatalog(double scale) {
  std::vector<BenchDataset> out;
  for (const DatasetSpec& spec : DatasetCatalog(scale)) {
    std::fprintf(stderr, "[gen] %s ...\n", spec.name.c_str());
    out.push_back(
        {spec.name, spec.models, Workload(Generate(spec.options))});
  }
  return out;
}

/// The highest-out-degree vertex: traversal benchmarks source from a hub
/// so they exercise real propagation instead of a 2-superstep fizzle.
inline VertexId HubVertex(const TemporalGraph& g) {
  VertexIdx best = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (g.OutEdges(v).size() > g.OutEdges(best).size()) best = v;
  }
  return g.vertex_id(best);
}

/// Cluster-modeled makespan (ms): compute critical path + 1 GbE network
/// model + barrier cost, identical model for every platform. See
/// RunMetrics::ClusterModel and DESIGN.md §4.
inline double ModeledMs(const RunMetrics& m, int num_workers = 8) {
  RunMetrics::ClusterModel model;
  model.num_workers = num_workers;
  return static_cast<double>(m.SimulatedMakespanNs(model)) / 1e6;
}

/// One measured run of the sweep.
struct SweepPoint {
  std::string graph;
  Algorithm algorithm;
  Platform platform;
  RunMetrics metrics;
};

/// Runs every supported (algorithm, platform) pair on each dataset.
/// `algorithms` defaults to all twelve.
inline std::vector<SweepPoint> RunSweep(
    std::vector<BenchDataset>& datasets, const RunConfig& config,
    const std::vector<Algorithm>& algorithms, bool include_icm = true) {
  static const Platform kPlatforms[] = {Platform::kIcm, Platform::kMsb,
                                        Platform::kChl, Platform::kTgb,
                                        Platform::kGof};
  std::vector<SweepPoint> points;
  for (BenchDataset& ds : datasets) {
    RunConfig ds_config = config;
    // Source traversals from a hub; target the farthest-id vertex.
    ds_config.source = HubVertex(ds.workload.graph());
    for (Algorithm a : algorithms) {
      for (Platform p : kPlatforms) {
        if (!Supports(p, a)) continue;
        if (!include_icm && p == Platform::kIcm) continue;
        std::fprintf(stderr, "[run] %-12s %-4s %-4s ...", ds.name.c_str(),
                     AlgorithmName(a), PlatformName(p));
        SweepPoint pt;
        pt.graph = ds.name;
        pt.algorithm = a;
        pt.platform = p;
        pt.metrics = RunForMetrics(ds.workload, p, a, ds_config);
        std::fprintf(stderr, " %.0f ms\n",
                     static_cast<double>(pt.metrics.makespan_ns) / 1e6);
        points.push_back(std::move(pt));
      }
    }
    ds.workload.DropDerived();
  }
  return points;
}

/// Finds a sweep point; aborts if absent.
inline const SweepPoint& Find(const std::vector<SweepPoint>& points,
                              const std::string& graph, Algorithm a,
                              Platform p) {
  for (const SweepPoint& pt : points) {
    if (pt.graph == graph && pt.algorithm == a && pt.platform == p) return pt;
  }
  GRAPHITE_CHECK(false);
  return points.front();
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace bench
}  // namespace graphite

#endif  // GRAPHITE_BENCH_BENCH_COMMON_H_
