// Runtime-scheduling benchmark: sequential vs per-superstep thread spawn
// (the pre-pool baseline) vs persistent pool vs chunked work stealing, on
// the Table-1 dataset generators plus a deliberately skewed power-law
// partition (range partition puts the preferential-attachment hubs on
// worker 0, the worst case static assignment that stealing exists to fix).
//
// Prints a table to stdout and writes machine-readable results to
// BENCH_runtime.json (override with argv[2]). All modes are exact-result
// equivalent (see tests/runtime_determinism_test.cc), so wall makespan is
// the only axis. Speedups are host-dependent: on a single-core container
// every threaded mode degenerates to sequential-plus-overhead, which the
// JSON records honestly via hardware_concurrency.
#include <fstream>
#include <thread>

#include "algorithms/icm_ti.h"
#include "bench_common.h"
#include "util/json.h"
#include "util/simd.h"

namespace graphite {
namespace {

struct Mode {
  const char* name;
  bool use_threads;
  Scheduling scheduling;
};

const Mode kModes[] = {
    {"sequential", false, Scheduling::kStealing},
    {"spawn", true, Scheduling::kSpawn},
    {"pool", true, Scheduling::kPool},
    {"stealing", true, Scheduling::kStealing},
};

struct Sample {
  double wall_ms = 0;
  int64_t steals = 0;
};

// Best-of-3 wall time; steals from the fastest run.
template <typename Fn>
Sample Measure(const Fn& run) {
  Sample best;
  for (int rep = 0; rep < 3; ++rep) {
    const RunMetrics m = run();
    const double ms = bench::Ms(m.makespan_ns);
    if (rep == 0 || ms < best.wall_ms) best = {ms, m.steals};
  }
  return best;
}

void WriteModes(JsonWriter* json, const Sample samples[]) {
  json->BeginObject();
  for (size_t i = 0; i < std::size(kModes); ++i) {
    json->Key(kModes[i].name).BeginObject();
    json->Key("wall_ms").Fixed(samples[i].wall_ms, 3);
    json->Key("steals").Int(samples[i].steals);
    json->EndObject();
  }
  json->EndObject();
}

}  // namespace
}  // namespace graphite

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 1.0);
  const char* json_path = argc > 2 ? argv[2] : "BENCH_runtime.json";
  const int threads =
      std::max(1u, std::thread::hardware_concurrency());
  const int workers = 8;

  std::printf("Runtime scheduling bench: %d logical workers, %d OS threads "
              "(hardware), best of 3\n\n",
              workers, threads);
  JsonWriter json(2);
  json.BeginObject();
  json.Key("hardware_concurrency").Int(threads);
  json.Key("num_workers").Int(workers);
  // Which warp-kernel dispatch level the run used (boot default or the
  // GRAPHITE_SIMD override) — timing baselines are only comparable at the
  // same level, so the regression gate records and checks it.
  json.Key("simd_dispatch").String(SimdLevelName(SimdDispatchLevel()));
  json.Key("note").String(
      "measured on a " + std::to_string(threads) +
      "-core host with " + SimdLevelName(SimdDispatchLevel()) +
      " warp dispatch; threaded modes need >1 core to beat sequential and "
      "speedup keys are emitted only when hardware_concurrency >= 4");

  // --- Part 1: Table-1 generators, PR (always-active, compute-heavy). ---
  TextTable table;
  table.AddRow({"Graph", "seq-ms", "spawn-ms", "pool-ms", "steal-ms",
                "steals", "steal/spawn"});
  json.Key("table1_pr").BeginArray();
  std::vector<bench::BenchDataset> datasets = bench::LoadCatalog(scale);
  for (size_t d = 0; d < datasets.size(); ++d) {
    bench::BenchDataset& ds = datasets[d];
    RunConfig config;
    config.num_workers = workers;
    config.source = bench::HubVertex(ds.workload.graph());
    Sample samples[std::size(kModes)];
    for (size_t i = 0; i < std::size(kModes); ++i) {
      config.use_threads = kModes[i].use_threads;
      config.runtime.scheduling = kModes[i].scheduling;
      config.runtime.num_threads = threads;
      samples[i] = Measure([&] {
        return RunForMetrics(ds.workload, Platform::kIcm, Algorithm::kPr,
                             config);
      });
    }
    table.AddRow({ds.name, FormatDouble(samples[0].wall_ms, 1),
                  FormatDouble(samples[1].wall_ms, 1),
                  FormatDouble(samples[2].wall_ms, 1),
                  FormatDouble(samples[3].wall_ms, 1),
                  std::to_string(samples[3].steals),
                  FormatDouble(samples[1].wall_ms /
                                   std::max(1e-9, samples[3].wall_ms),
                               2)});
    json.BeginObject();
    json.Key("graph").String(ds.name);
    json.Key("modes");
    WriteModes(&json, samples);
    json.EndObject();
    ds.workload.DropDerived();
  }
  datasets.clear();
  json.EndArray();
  std::printf("Table-1 generators, PageRank on ICM:\n%s\n",
              table.ToString().c_str());

  // --- Part 2: skewed power-law partition (the stealing showcase). ---
  // Range partition w = v*W/n: preferential attachment makes low-index
  // vertices the hubs, so worker 0 owns nearly all the compute.
  GenOptions gen;
  gen.seed = 99;
  gen.num_vertices = static_cast<int64_t>(20000 * scale);
  gen.num_edges = static_cast<int64_t>(120000 * scale);
  gen.topology = GenOptions::Topology::kPowerLaw;
  gen.zipf_alpha = 1.0;
  gen.edge_lifespan = GenOptions::Lifespan::kLong;
  std::fprintf(stderr, "[gen] skewed power-law ...\n");
  const TemporalGraph g = Generate(gen);
  std::vector<int> partition(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    partition[v] = static_cast<int>(
        static_cast<int64_t>(v) * workers / g.num_vertices());
  }
  Sample samples[std::size(kModes)];
  for (size_t i = 0; i < std::size(kModes); ++i) {
    IcmOptions options;
    options.num_workers = workers;
    options.use_threads = kModes[i].use_threads;
    options.runtime.scheduling = kModes[i].scheduling;
    options.runtime.num_threads = threads;
    options.custom_partition = &partition;
    samples[i] = Measure([&] {
      IcmPageRank program(g);
      return IcmEngine<IcmPageRank>::Run(g, program, PageRankOptions(options))
          .metrics;
    });
  }
  TextTable skew;
  skew.AddRow({"Mode", "wall-ms", "steals"});
  for (size_t i = 0; i < std::size(kModes); ++i) {
    skew.AddRow({kModes[i].name, FormatDouble(samples[i].wall_ms, 1),
                 std::to_string(samples[i].steals)});
  }
  std::printf("Skewed power-law (hubs on worker 0), PageRank:\n%s\n",
              skew.ToString().c_str());
  json.Key("skewed_powerlaw_pr").BeginObject();
  json.Key("modes");
  WriteModes(&json, samples);
  // Speedup ratios only mean something with real parallel hardware: on a
  // 1–3 core host every threaded mode is sequential plus overhead, so the
  // keys are omitted rather than recorded as vacuous sub-1.0 ratios.
  if (threads >= 4) {
    const double vs_spawn =
        samples[1].wall_ms / std::max(1e-9, samples[3].wall_ms);
    const double vs_sequential =
        samples[0].wall_ms / std::max(1e-9, samples[3].wall_ms);
    std::printf("Stealing vs per-superstep spawn: %.2fx; vs sequential: "
                "%.2fx (target: beats sequential on >=4 cores)\n",
                vs_spawn, vs_sequential);
    json.Key("speedup_stealing_vs_spawn").Fixed(vs_spawn, 2);
    json.Key("speedup_stealing_vs_sequential").Fixed(vs_sequential, 2);
  } else {
    std::printf("Speedup ratios omitted: only %d hardware core(s)\n",
                threads);
  }
  json.EndObject();

  // --- Part 3: transport dimension (ISSUE 5). Same graph and stealing
  // mode, in-process vs loopback-wire delivery: the loopback backend
  // copies every wire row through the §VI varint framing and decodes from
  // the copy, so its overhead is the serialization tax a real socket
  // backend would start from (results stay byte-identical either way —
  // see tests/runtime_determinism_test.cc).
  TextTable ttable;
  ttable.AddRow({"Transport", "wall-ms"});
  double transport_ms[2] = {0, 0};
  const TransportKind kTransports[] = {TransportKind::kInProcess,
                                       TransportKind::kLoopbackWire};
  for (int i = 0; i < 2; ++i) {
    IcmOptions options;
    options.num_workers = workers;
    options.use_threads = true;
    options.runtime.scheduling = Scheduling::kStealing;
    options.runtime.num_threads = threads;
    options.runtime.transport = kTransports[i];
    transport_ms[i] = Measure([&] {
                        IcmPageRank program(g);
                        return IcmEngine<IcmPageRank>::Run(
                                   g, program, PageRankOptions(options))
                            .metrics;
                      }).wall_ms;
    ttable.AddRow({TransportKindName(kTransports[i]),
                   FormatDouble(transport_ms[i], 1)});
  }
  const double overhead =
      transport_ms[1] / std::max(1e-9, transport_ms[0]);
  std::printf("Transport backends (power-law PageRank, stealing):\n%s\n",
              ttable.ToString().c_str());
  std::printf("Loopback-wire overhead vs in-process: %.2fx\n", overhead);
  json.Key("transport_pr").BeginObject();
  json.Key("in_process_ms").Fixed(transport_ms[0], 3);
  json.Key("loopback_wire_ms").Fixed(transport_ms[1], 3);
  json.Key("loopback_overhead").Fixed(overhead, 2);
  json.EndObject();
  json.EndObject();

  std::ofstream out(json_path);
  out << json.str() << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(stderr, "[json] wrote %s\n", json_path);
  return 0;
}
