// Serving-layer benchmark (DESIGN.md §4i): measures the query service's
// cache miss path (full superstep run + fragment render) against the hit
// path (LRU lookup + envelope assembly, zero supersteps) on two resident
// catalog graphs, plus mixed-request throughput through the bounded job
// scheduler. Heap allocations on the hit path are counted exactly via the
// replaced operator new (bench/alloc_counter.h).
//
// Output: a JSON report (default BENCH_server.json in the working
// directory). The committed copy at the repo root is the regression
// baseline: tools/check_bench_regression.py compares the "gated" block of
// a fresh run against it (ctest label `perf`). The >=10x hit/miss speedup
// acceptance and the hit-path allocation count are deterministic-ish per
// build and gated unconditionally; raw latency/throughput keys are timing
// and enforced only in strict mode (GRAPHITE_PERF_STRICT=1 / --strict)
// with a matching core count.
//
// Usage: bench_server [scale] [out.json]
// The committed baseline uses scale 0.25; regenerate it with:
//     ./bench/bench_server 0.25 && cp BENCH_server.json <repo root>
#define GRAPHITE_ALLOC_COUNTER_IMPL
#include "alloc_counter.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "server/server.h"
#include "util/json.h"
#include "util/timer.h"

namespace graphite {
namespace bench {
namespace {

// One resident graph served by the benchmark instance.
struct Resident {
  const char* name;     // registry name
  const char* dataset;  // catalog prefix (Server::LoadDataset)
};

constexpr Resident kResidents[] = {
    {"tw", "twitter"},
    {"rd", "reddit"},
};

QueryRequest SsspRequest(const std::string& graph, VertexId source) {
  QueryRequest req;
  req.op = "run";
  req.graph = graph;
  req.alg = "sssp";
  req.platform = "icm";
  req.source = source;
  return req;
}

// The mixed shapes the throughput phase cycles over, per graph. Written
// as protocol lines so the phase exercises the full HandleLine path
// (parse -> admission -> scheduler -> envelope).
std::vector<std::string> MixedLines(const std::string& graph,
                                    VertexId source, int64_t id_base) {
  std::vector<std::string> out;
  int64_t next_id = id_base;
  auto add = [&](const char* op,
                 const std::vector<std::pair<const char*, int64_t>>& ints,
                 const std::vector<std::pair<const char*, const char*>>&
                     strs = {}) {
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(next_id++);
    w.Key("op").String(op);
    w.Key("graph").String(graph);
    for (const auto& [k, v] : strs) w.Key(k).String(v);
    for (const auto& [k, v] : ints) w.Key(k).Int(v);
    w.EndObject();
    out.push_back(w.str());
  };
  add("run", {{"source", source}}, {{"alg", "bfs"}});
  add("run", {}, {{"alg", "pr"}});
  add("run", {{"source", source}}, {{"alg", "sssp"}});
  add("path", {{"source", source}, {"target", 0}}, {{"kind", "eat"}});
  add("reach_at", {{"source", source}, {"at", 2}});
  add("stats", {});
  return out;
}

void GateEntry(JsonWriter* json, const char* key, double value,
               const char* better, bool timing) {
  json->Key(key).BeginObject();
  json->Key("value").Fixed(value, 3);
  json->Key("better").String(better);
  json->Key("timing").Bool(timing);
  json->EndObject();
}

}  // namespace
}  // namespace bench
}  // namespace graphite

int main(int argc, char** argv) {
  using namespace graphite;
  using namespace graphite::bench;
  const double scale = ResolveScale(argc, argv, 0.25);
  const char* json_path = argc > 2 ? argv[2] : "BENCH_server.json";
  const int threads =
      std::max(1u, std::thread::hardware_concurrency());

  ServerOptions options;
  options.scheduler.num_threads = 4;
  options.scheduler.max_queue = 1024;
  Server server(options);
  for (const Resident& r : kResidents) {
    const Status s = server.LoadDataset(r.name, r.dataset, scale);
    if (!s.ok()) {
      std::fprintf(stderr, "error: load %s: %s\n", r.dataset,
                   s.ToString().c_str());
      return 1;
    }
  }
  VertexId hubs[std::size(kResidents)];
  for (size_t i = 0; i < std::size(kResidents); ++i) {
    hubs[i] = HubVertex(
        server.registry().Get(kResidents[i].name)->workload.graph());
  }

  // ---- Miss path: a representative SSSP run, cache bypassed so every
  // execution renders the fragment from scratch. Mean of 5 after warmup.
  QueryRequest miss_req = SsspRequest(kResidents[0].name, hubs[0]);
  miss_req.use_cache = false;
  ExecStats stats;
  server.service().Execute(miss_req, 0, &stats);  // warmup (derived graphs)
  const int64_t miss_supersteps = stats.supersteps;
  constexpr int kMissReps = 5;
  int64_t t0 = NowNanos();
  for (int i = 0; i < kMissReps; ++i) {
    server.service().Execute(miss_req, 0, &stats);
  }
  const double miss_ns =
      static_cast<double>(NowNanos() - t0) / kMissReps;

  // ---- Hit path: same request with caching on; first call fills, the
  // measured calls are pure LRU lookup + envelope assembly.
  QueryRequest hit_req = SsspRequest(kResidents[0].name, hubs[0]);
  server.service().Execute(hit_req, 0, &stats);  // fill
  server.service().Execute(hit_req, 0, &stats);  // warm the hit path
  GRAPHITE_CHECK(stats.cached);
  GRAPHITE_CHECK(stats.supersteps == 0);
  constexpr int kHitReps = 512;
  const uint64_t a0 = benchalloc::AllocCount();
  t0 = NowNanos();
  for (int i = 0; i < kHitReps; ++i) {
    server.service().Execute(hit_req, 0, &stats);
  }
  const double hit_ns = static_cast<double>(NowNanos() - t0) / kHitReps;
  const double hit_allocs =
      static_cast<double>(benchalloc::AllocCount() - a0) / kHitReps;
  const double speedup = hit_ns > 0 ? miss_ns / hit_ns : 0.0;

  // ---- Throughput: mixed request shapes over both graphs through the
  // full protocol path (parse, admission, per-graph serialization, cache
  // fast path on repeats), 4 scheduler workers.
  server.cache().Clear();  // contents only; counters survive by design
  const ResultCacheStats cache_before = server.cache().stats();
  std::vector<std::string> lines;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t g = 0; g < std::size(kResidents); ++g) {
      for (std::string& l : MixedLines(kResidents[g].name, hubs[g],
                                       1000 * round + 100 * g)) {
        lines.push_back(std::move(l));
      }
    }
  }
  std::atomic<int64_t> responded{0};
  std::atomic<int64_t> failed{0};
  t0 = NowNanos();
  for (const std::string& line : lines) {
    server.HandleLine(line, [&](std::string response) {
      responded.fetch_add(1, std::memory_order_relaxed);
      if (response.find("\"ok\": true") == std::string::npos) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  server.scheduler().Drain();
  const double mixed_wall_ms = Ms(NowNanos() - t0);
  const double rps = mixed_wall_ms > 0
                         ? 1000.0 * static_cast<double>(lines.size()) /
                               mixed_wall_ms
                         : 0.0;
  if (responded.load() != static_cast<int64_t>(lines.size()) ||
      failed.load() != 0) {
    std::fprintf(stderr, "error: %lld/%zu responses, %lld failures\n",
                 static_cast<long long>(responded.load()), lines.size(),
                 static_cast<long long>(failed.load()));
    return 1;
  }
  const ResultCacheStats cache_stats = server.cache().stats();
  const SchedulerStats sched_stats = server.scheduler().stats();
  const int64_t mixed_hits = cache_stats.hits - cache_before.hits;
  const int64_t mixed_lookups = mixed_hits + cache_stats.misses -
                                cache_before.misses;
  const double hit_rate =
      mixed_lookups > 0
          ? static_cast<double>(mixed_hits) /
                static_cast<double>(mixed_lookups)
          : 0.0;

  std::printf(
      "Serving bench (scale %.2f, %d cores): miss %.1f us, hit %.2f us "
      "(%.0fx, %.1f allocs/hit), mixed %zu reqs in %.1f ms (%.0f req/s, "
      "hit rate %.0f%%, fastpath %lld)\n",
      scale, threads, miss_ns / 1e3, hit_ns / 1e3, speedup, hit_allocs,
      lines.size(), mixed_wall_ms, rps, 100.0 * hit_rate,
      static_cast<long long>(sched_stats.fastpath_hits));

  JsonWriter json(2);
  json.BeginObject();
  json.Key("bench").String("server");
  json.Key("scale").Fixed(scale, 2);
  json.Key("hardware_concurrency").Int(threads);
  json.Key("scheduler_threads").Int(options.scheduler.num_threads);
  json.Key("resident_graphs").Int(std::size(kResidents));
  json.Key("miss_supersteps").Int(miss_supersteps);
  json.Key("miss_ns").Fixed(miss_ns, 1);
  json.Key("hit_ns").Fixed(hit_ns, 1);
  json.Key("hit_speedup").Fixed(speedup, 2);
  json.Key("hit_allocs_per_request").Fixed(hit_allocs, 1);
  json.Key("mixed_requests").Int(static_cast<int64_t>(lines.size()));
  json.Key("mixed_wall_ms").Fixed(mixed_wall_ms, 3);
  json.Key("mixed_rps").Fixed(rps, 1);
  json.Key("cache_hit_rate").Fixed(hit_rate, 4);
  json.Key("scheduler_fastpath_hits").Int(sched_stats.fastpath_hits);
  json.Key("scheduler_completed").Int(sched_stats.completed);
  json.Key("gated").BeginObject();
  // The serving acceptance: repeated requests answered from cache at
  // least an order of magnitude faster than the cold run. Encoded as a
  // 0/1 flag so the gate is robust to absolute timing noise.
  GateEntry(&json, "server_hit_speedup_ge_10x", speedup >= 10.0 ? 1.0 : 0.0,
            "higher", /*timing=*/false);
  GateEntry(&json, "server_hit_allocs_per_request", hit_allocs, "lower",
            /*timing=*/false);
  GateEntry(&json, "server_hit_ns", hit_ns, "lower", /*timing=*/true);
  GateEntry(&json, "server_miss_ns", miss_ns, "lower", /*timing=*/true);
  GateEntry(&json, "server_mixed_rps", rps, "higher", /*timing=*/true);
  json.EndObject();
  json.EndObject();

  std::ofstream out(json_path);
  out << json.str() << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(stderr, "[json] wrote %s\n", json_path);
  return 0;
}
