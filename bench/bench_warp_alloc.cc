// Before/after harness for the allocation-free hot path (DESIGN.md §4f):
// measures the time-warp operator through the legacy vector-of-vectors API
// versus the arena-backed flat SoA path, and the end-to-end ICM engine
// (flat inboxes + per-thread warp arenas), on inboxes derived from the
// Table-1 generator catalog. Heap allocations are counted exactly via the
// replaced operator new (bench/alloc_counter.h); times are wall-clock.
//
// Output: a JSON report (default BENCH_warp_alloc.json in the working
// directory). The committed copy at the repo root is the regression
// baseline: tools/check_bench_regression.py compares the "gated" block of
// a fresh run against it (ctest label `perf`). Allocation counts are
// deterministic per build and gated unconditionally; timing keys are
// enforced only in strict mode (GRAPHITE_PERF_STRICT=1 / --strict).
//
// Usage: bench_warp_alloc [scale] [out.json]
// The committed baseline uses the default scale; regenerate it with:
//     ./bench/bench_warp_alloc && cp BENCH_warp_alloc.json <repo root>
#define GRAPHITE_ALLOC_COUNTER_IMPL
#include "alloc_counter.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "icm/warp.h"
#include "util/arena.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

namespace graphite {
namespace bench {
namespace {

using Entry = IntervalMap<int64_t>::Entry;
using Item = TemporalItem<int64_t>;

// Per-vertex warp inputs modeling one superstep's inboxes: messages are
// the vertex's in-edges (interval = edge lifespan, payload synthetic) and
// the outer set is its lifespan split into a few state runs — the shape
// the ICM compute phase feeds the warp every superstep.
struct WarpWorkload {
  std::vector<std::vector<Entry>> outer;
  std::vector<std::vector<Item>> msgs;
  size_t total_msgs = 0;
};

constexpr size_t kMaxMsgsPerVertex = 128;

WarpWorkload BuildWarpWorkload(const TemporalGraph& g, uint64_t seed) {
  WarpWorkload wl;
  const size_t n = g.num_vertices();
  wl.outer.resize(n);
  wl.msgs.resize(n);
  Rng rng(seed);
  for (VertexIdx v = 0; v < n; ++v) {
    for (const StoredEdge& e : g.OutEdges(v)) {
      auto& box = wl.msgs[e.dst];
      if (box.size() >= kMaxMsgsPerVertex) continue;
      box.push_back(
          {e.interval, static_cast<int64_t>(rng.Uniform(1'000'000))});
    }
  }
  for (VertexIdx v = 0; v < n; ++v) {
    if (wl.msgs[v].empty()) continue;
    wl.total_msgs += wl.msgs[v].size();
    // Split the lifespan into up to 4 distinct-value state runs.
    const Interval span = g.vertex_interval(v);
    std::vector<TimePoint> cuts = {span.start, span.end};
    for (int i = 0; i < 3; ++i) {
      if (span.end - span.start > 1) {
        cuts.push_back(rng.UniformRange(span.start + 1, span.end));
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      wl.outer[v].push_back({Interval(cuts[i], cuts[i + 1]),
                             static_cast<int64_t>(10 * v + i)});
    }
  }
  return wl;
}

// Dense inbox variant: every non-empty vertex's message list tiled up to
// kMaxMsgsPerVertex (payloads re-randomized so the tiles are not byte
// copies). The sparse catalog at bench scale leaves every vertex well
// below warp_internal::kSimdMinWork, so the hybrid kernel demotes every
// call to its scalar path; the dense variant is the regime the wide
// kernels exist for — fat superstep inboxes on high-in-degree vertices —
// and is what the forced-SIMD gate measures.
WarpWorkload DensifyWorkload(const WarpWorkload& src, uint64_t seed) {
  WarpWorkload wl;
  wl.outer = src.outer;
  wl.msgs.resize(src.msgs.size());
  Rng rng(seed);
  for (size_t v = 0; v < src.msgs.size(); ++v) {
    const auto& box = src.msgs[v];
    if (box.empty()) continue;
    auto& out = wl.msgs[v];
    out.reserve(kMaxMsgsPerVertex);
    for (size_t i = 0; i < kMaxMsgsPerVertex; ++i) {
      out.push_back({box[i % box.size()].interval,
                     static_cast<int64_t>(rng.Uniform(1'000'000))});
    }
    wl.total_msgs += out.size();
  }
  return wl;
}

struct PathStats {
  double ns_per_superstep = 0;
  double allocs_per_superstep = 0;
  double ns_per_tuple = 0;
  uint64_t tuples_per_superstep = 0;
};

constexpr int kWarmupSupersteps = 2;
// Wide enough that one scheduler hiccup on a busy host does not dominate
// the window — per-superstep work is tens of microseconds, so even 10
// supersteps keep the warp section well under the e2e section's cost.
constexpr int kMeasuredSupersteps = 10;

// Legacy path: the shim API returning std::vector<WarpTuple> with one
// inner-index vector per tuple — the pre-SoA hot path.
PathStats RunLegacy(const WarpWorkload& wl) {
  PathStats st;
  int64_t sink = 0;
  auto superstep = [&]() -> uint64_t {
    uint64_t tuples = 0;
    for (size_t v = 0; v < wl.msgs.size(); ++v) {
      if (wl.msgs[v].empty()) continue;
      const auto out = TimeWarp<int64_t, int64_t>(wl.outer[v], wl.msgs[v]);
      tuples += out.size();
      for (const WarpTuple& t : out) {
        for (const uint32_t idx : t.inner_indices) {
          sink += wl.msgs[v][idx].value;
        }
      }
    }
    return tuples;
  };
  for (int s = 0; s < kWarmupSupersteps; ++s) superstep();
  const uint64_t a0 = benchalloc::AllocCount();
  // Per-superstep timing with a min-reduce: on a shared host the mean is
  // dominated by scheduler preemptions; the fastest superstep is the
  // reproducible throughput of the kernel itself. Allocs stay a mean —
  // they are deterministic per superstep.
  int64_t best_ns = std::numeric_limits<int64_t>::max();
  uint64_t tuples = 0;
  for (int s = 0; s < kMeasuredSupersteps; ++s) {
    const int64_t t0 = NowNanos();
    tuples = superstep();
    best_ns = std::min(best_ns, NowNanos() - t0);
  }
  const uint64_t allocs = benchalloc::AllocCount() - a0;
  st.ns_per_superstep = static_cast<double>(best_ns);
  st.allocs_per_superstep =
      static_cast<double>(allocs) / kMeasuredSupersteps;
  st.tuples_per_superstep = tuples;
  st.ns_per_tuple =
      tuples == 0 ? 0 : static_cast<double>(best_ns) / tuples;
  if (sink == 42) std::fprintf(stderr, "!");  // keep the sink live
  return st;
}

// Arena path: TimeWarpInto with per-"thread" scratch + SoA output, arena
// reset at the superstep barrier — exactly the engine's steady-state loop.
PathStats RunArena(const WarpWorkload& wl) {
  PathStats st;
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput out;
  out.Attach(&arena);
  int64_t sink = 0;
  auto superstep = [&]() -> uint64_t {
    uint64_t tuples = 0;
    for (size_t v = 0; v < wl.msgs.size(); ++v) {
      if (wl.msgs[v].empty()) continue;
      TimeWarpInto<int64_t, int64_t>(wl.outer[v], wl.msgs[v], &scratch,
                                     &out);
      tuples += out.size();
      for (const FlatWarpTuple& t : out.tuples()) {
        for (const uint32_t idx : out.group(t)) {
          sink += wl.msgs[v][idx].value;
        }
      }
    }
    // Superstep barrier: drop the arena-backed buffers, decay the arena.
    scratch.Release();
    out.Release();
    arena.Reset();
    return tuples;
  };
  for (int s = 0; s < kWarmupSupersteps; ++s) superstep();
  const uint64_t a0 = benchalloc::AllocCount();
  // Min-reduce over per-superstep times — see RunLegacy.
  int64_t best_ns = std::numeric_limits<int64_t>::max();
  uint64_t tuples = 0;
  for (int s = 0; s < kMeasuredSupersteps; ++s) {
    const int64_t t0 = NowNanos();
    tuples = superstep();
    best_ns = std::min(best_ns, NowNanos() - t0);
  }
  const uint64_t allocs = benchalloc::AllocCount() - a0;
  st.ns_per_superstep = static_cast<double>(best_ns);
  st.allocs_per_superstep =
      static_cast<double>(allocs) / kMeasuredSupersteps;
  st.tuples_per_superstep = tuples;
  st.ns_per_tuple =
      tuples == 0 ? 0 : static_cast<double>(best_ns) / tuples;
  if (sink == 42) std::fprintf(stderr, "!");
  return st;
}

// Same arena path with the process dispatch pinned to `level` for the
// duration of the run (restored afterwards) — the scalar-vs-SIMD
// comparison keys and the forced-SIMD gate use this so the measurement
// does not depend on the build's boot-time default.
PathStats RunArenaAt(const WarpWorkload& wl, SimdLevel level) {
  const SimdLevel saved = SimdDispatchLevel();
  SimdSetDispatch(level);
  const PathStats st = RunArena(wl);
  SimdSetDispatch(saved);
  return st;
}

// --- micro_sort: the partitioned endpoint sort in isolation -------------
// Shaped single-vertex workloads that hit each branch of
// warp_internal::SortClippedEndpoints: `spanning` (every message covers
// the entry interval, so every clipped endpoint lands in a pinned
// bucket), `staircase` (disjoint unit intervals in arrival order — the
// interior is already sorted and the detection pass proves it), and
// `shuffled` (random intervals — detection fails and the std::sort
// fallback runs). WarpStats' timed sort counters give ns/endpoint and
// the detection hit rate per shape.
struct MicroSortStats {
  double ns_per_endpoint = 0;
  double presorted_hit_rate = 0;
  double pinned_endpoint_share = 0;
  uint64_t endpoints_per_call = 0;
};

constexpr size_t kMicroMsgs = 4096;
constexpr int kMicroIters = 64;

MicroSortStats RunMicroSort(const std::vector<Item>& msgs,
                            TimePoint horizon) {
  const std::vector<Entry> outer = {{Interval(0, horizon), int64_t{1}}};
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput out;
  out.Attach(&arena);
  WarpStats st;
  st.timed = true;
  for (int i = 0; i < kMicroIters; ++i) {
    TimeWarpInto<int64_t, int64_t>(outer, msgs, &scratch, &out, &st);
  }
  MicroSortStats ms;
  if (st.sort_endpoints > 0) {
    ms.ns_per_endpoint = static_cast<double>(st.sort_ns) /
                         static_cast<double>(st.sort_endpoints);
    ms.pinned_endpoint_share = static_cast<double>(st.sort_pinned) /
                               static_cast<double>(st.sort_endpoints);
    ms.endpoints_per_call =
        st.sort_endpoints / static_cast<uint64_t>(kMicroIters);
  }
  if (st.sort_calls > 0) {
    ms.presorted_hit_rate = static_cast<double>(st.sort_presorted) /
                            static_cast<double>(st.sort_calls);
  }
  scratch.Release();
  out.Release();
  return ms;
}

void WriteMicroSortShape(JsonWriter* json, const char* name,
                         const MicroSortStats& ms) {
  json->Key(name).BeginObject();
  json->Key("sort_ns_per_endpoint").Fixed(ms.ns_per_endpoint, 2);
  json->Key("presorted_hit_rate").Fixed(ms.presorted_hit_rate, 3);
  json->Key("pinned_endpoint_share").Fixed(ms.pinned_endpoint_share, 3);
  json->Key("endpoints_per_call").UInt(ms.endpoints_per_call);
  json->EndObject();
}

struct EngineStats {
  double wall_ms = 0;
  double allocs_per_superstep = 0;
  int64_t supersteps = 0;
};

// End-to-end ICM run (flat inboxes + arena-backed warp throughout),
// sequential for deterministic allocation counts. The transport selects
// the delivery backend: in-process (zero-copy) or loopback wire (every
// row copied through the §VI framing) — the loopback keys gate the wire
// path's allocation behavior.
EngineStats RunEngine(Workload& w, Algorithm a,
                      TransportKind transport = TransportKind::kInProcess) {
  RunConfig config;
  config.num_workers = 4;
  config.use_threads = false;
  config.source = HubVertex(w.graph());
  config.runtime.transport = transport;
  const uint64_t a0 = benchalloc::AllocCount();
  const int64_t t0 = NowNanos();
  const RunMetrics m = RunForMetrics(w, Platform::kIcm, a, config);
  EngineStats st;
  st.wall_ms = static_cast<double>(NowNanos() - t0) / 1e6;
  st.supersteps = m.supersteps > 0 ? m.supersteps : 1;
  st.allocs_per_superstep =
      static_cast<double>(benchalloc::AllocCount() - a0) /
      static_cast<double>(st.supersteps);
  return st;
}

/// One self-describing entry of the "gated" block (the schema
/// tools/check_bench_regression.py consumes).
void GateEntry(JsonWriter* json, const char* key, double value,
               const char* better, bool timing) {
  json->Key(key).BeginObject();
  json->Key("value").Fixed(value, 3);
  json->Key("better").String(better);
  json->Key("timing").Bool(timing);
  json->EndObject();
}

}  // namespace
}  // namespace bench
}  // namespace graphite

int main(int argc, char** argv) {
  using namespace graphite;
  using namespace graphite::bench;

  const double scale = ResolveScale(argc, argv, 0.25);
  const std::string out_path =
      argc > 2 ? argv[2] : "BENCH_warp_alloc.json";

  std::vector<BenchDataset> datasets = LoadCatalog(scale);

  JsonWriter json(2);
  json.BeginObject();
  json.Key("bench").String("bench_warp_alloc");
  json.Key("scale").Fixed(scale, 3);
  // Recorded so the regression gate can tell whether the baseline's
  // timing keys were measured on a comparable host (core-count
  // mismatches downgrade timing gates to warnings).
  json.Key("hardware_concurrency").UInt(std::thread::hardware_concurrency());
  // The dispatch level the soa path ran at (boot default or GRAPHITE_SIMD
  // override) and the best level this host supports. The gate downgrades
  // timing comparisons when baselines disagree on simd_dispatch.
  const SimdLevel dispatch = SimdDispatchLevel();
  const SimdLevel best = SimdMaxSupported();
  json.Key("simd_dispatch").String(SimdLevelName(dispatch));
  json.Key("simd_lanes").UInt(static_cast<uint64_t>(SimdLanes(dispatch)));
  json.Key("simd_best").String(SimdLevelName(best));
  json.Key("datasets").BeginArray();

  double sum_legacy_allocs = 0, sum_soa_allocs = 0;
  double sum_legacy_ns = 0, sum_soa_ns = 0;
  double sum_dense_scalar_ns = 0, sum_dense_simd_ns = 0;
  uint64_t sum_tuples = 0, sum_dense_tuples = 0;
  double e2e_ms = 0, e2e_allocs = 0;
  int64_t e2e_supersteps = 0;
  double loop_ms = 0, loop_allocs = 0;
  int64_t loop_supersteps = 0;

  for (size_t d = 0; d < datasets.size(); ++d) {
    BenchDataset& ds = datasets[d];
    std::fprintf(stderr, "[warp] %s ...\n", ds.name.c_str());
    const WarpWorkload wl = BuildWarpWorkload(ds.workload.graph(), 7 + d);
    const PathStats legacy = RunLegacy(wl);
    const PathStats soa = RunArena(wl);
    // Forced-level runs on the dense variant: the SIMD gate must measure
    // the wide kernels, and the catalog workload never reaches
    // kSimdMinWork at bench scale. The scalar companion run on the same
    // dense workload makes the pair an honest in-workload comparison.
    const WarpWorkload dense = DensifyWorkload(wl, 99 + d);
    const PathStats dense_scalar = RunArenaAt(dense, SimdLevel::kScalar);
    const PathStats dense_simd = RunArenaAt(dense, best);
    sum_legacy_allocs += legacy.allocs_per_superstep;
    sum_soa_allocs += soa.allocs_per_superstep;
    sum_legacy_ns += legacy.ns_per_superstep;
    sum_soa_ns += soa.ns_per_superstep;
    sum_dense_scalar_ns += dense_scalar.ns_per_superstep;
    sum_dense_simd_ns += dense_simd.ns_per_superstep;
    sum_tuples += soa.tuples_per_superstep;
    sum_dense_tuples += dense_simd.tuples_per_superstep;

    // End-to-end: one TI and one TD algorithm across the catalog.
    const Algorithm algo =
        d % 2 == 0 ? Algorithm::kBfs : Algorithm::kEat;
    std::fprintf(stderr, "[icm ] %s %s ...\n", ds.name.c_str(),
                 AlgorithmName(algo));
    const EngineStats eng = RunEngine(ds.workload, algo);
    e2e_ms += eng.wall_ms;
    e2e_allocs += eng.allocs_per_superstep * eng.supersteps;
    e2e_supersteps += eng.supersteps;
    const EngineStats loop =
        RunEngine(ds.workload, algo, TransportKind::kLoopbackWire);
    loop_ms += loop.wall_ms;
    loop_allocs += loop.allocs_per_superstep * loop.supersteps;
    loop_supersteps += loop.supersteps;

    json.BeginObject();
    json.Key("dataset").String(ds.name);
    json.Key("messages").UInt(wl.total_msgs);
    json.Key("legacy_allocs_per_superstep")
        .Fixed(legacy.allocs_per_superstep, 1);
    json.Key("soa_allocs_per_superstep").Fixed(soa.allocs_per_superstep, 1);
    json.Key("legacy_ns_per_tuple").Fixed(legacy.ns_per_tuple, 1);
    json.Key("soa_ns_per_tuple").Fixed(soa.ns_per_tuple, 1);
    json.Key("dense_scalar_ns_per_tuple").Fixed(dense_scalar.ns_per_tuple, 1);
    json.Key("dense_simd_ns_per_tuple").Fixed(dense_simd.ns_per_tuple, 1);
    json.Key("tuples_per_superstep").UInt(soa.tuples_per_superstep);
    json.Key("dense_tuples_per_superstep")
        .UInt(dense_simd.tuples_per_superstep);
    json.Key(std::string("icm_") + AlgorithmName(algo) + "_wall_ms")
        .Fixed(eng.wall_ms, 1);
    json.Key("icm_allocs_per_superstep").Fixed(eng.allocs_per_superstep, 1);
    json.EndObject();
    ds.workload.DropDerived();
  }
  json.EndArray();

  // Partitioned-endpoint-sort microbench (DESIGN.md §4j): runs only on
  // the vectorized path, so pin dispatch to the best supported level for
  // the section (restored after).
  {
    const SimdLevel saved = SimdDispatchLevel();
    SimdSetDispatch(best);
    std::fprintf(stderr, "[sort] micro_sort shapes ...\n");
    Rng rng(1234);
    const TimePoint horizon = static_cast<TimePoint>(2 * kMicroMsgs);
    std::vector<Item> spanning, staircase, shuffled;
    for (size_t i = 0; i < kMicroMsgs; ++i) {
      const auto payload = static_cast<int64_t>(i);
      spanning.push_back({Interval(0, horizon), payload});
      staircase.push_back({Interval(static_cast<TimePoint>(2 * i),
                                    static_cast<TimePoint>(2 * i + 1)),
                           payload});
      const TimePoint a = rng.UniformRange(1, horizon - 2);
      shuffled.push_back({Interval(a, rng.UniformRange(a + 1, horizon)),
                          payload});
    }
    json.Key("micro_sort").BeginObject();
    json.Key("simd_dispatch").String(SimdLevelName(best));
    json.Key("messages").UInt(kMicroMsgs);
    WriteMicroSortShape(&json, "spanning", RunMicroSort(spanning, horizon));
    WriteMicroSortShape(&json, "staircase",
                        RunMicroSort(staircase, horizon));
    WriteMicroSortShape(&json, "shuffled", RunMicroSort(shuffled, horizon));
    json.EndObject();
    SimdSetDispatch(saved);
  }

  // Aggregates. The alloc ratio is the headline: >=2x fewer heap
  // allocations per superstep is the acceptance floor; the SoA path is
  // designed to reach zero in steady state (ratio bounded only by the +1).
  const double alloc_ratio =
      (sum_legacy_allocs + 1.0) / (sum_soa_allocs + 1.0);
  const double legacy_ns_per_tuple =
      sum_tuples == 0 ? 0 : sum_legacy_ns / static_cast<double>(sum_tuples);
  const double soa_ns_per_tuple =
      sum_tuples == 0 ? 0 : sum_soa_ns / static_cast<double>(sum_tuples);
  const double dense_scalar_ns_per_tuple =
      sum_dense_tuples == 0
          ? 0
          : sum_dense_scalar_ns / static_cast<double>(sum_dense_tuples);
  const double simd_ns_per_tuple =
      sum_dense_tuples == 0
          ? 0
          : sum_dense_simd_ns / static_cast<double>(sum_dense_tuples);

  json.Key("gated").BeginObject();
  GateEntry(&json, "warp_alloc_ratio", alloc_ratio, "higher", false);
  GateEntry(&json, "warp_soa_allocs_per_superstep", sum_soa_allocs, "lower",
            false);
  GateEntry(&json, "warp_soa_ns_per_tuple", soa_ns_per_tuple, "lower", true);
  // Dense-workload pair: dispatch pinned to the best supported SIMD level
  // vs pinned scalar on the same dense inboxes. This is the vectorized
  // kernel's headline — the sparse catalog workload never reaches
  // kSimdMinWork, so only the dense variant exercises the wide path.
  GateEntry(&json, "warp_simd_ns_per_tuple", simd_ns_per_tuple, "lower",
            true);
  GateEntry(&json, "warp_dense_scalar_ns_per_tuple",
            dense_scalar_ns_per_tuple, "lower", true);
  GateEntry(&json, "warp_legacy_ns_per_tuple", legacy_ns_per_tuple, "lower",
            true);
  GateEntry(&json, "icm_e2e_allocs_per_superstep",
            e2e_supersteps == 0 ? 0 : e2e_allocs / e2e_supersteps, "lower",
            false);
  GateEntry(&json, "icm_e2e_wall_ms", e2e_ms, "lower", true);
  // Loopback-wire gate (ISSUE 5): the wire path's per-superstep allocation
  // count is deterministic and enforced unconditionally; its wall time —
  // the copy-and-reparse tax over in-process — only in strict mode.
  GateEntry(&json, "icm_loopback_allocs_per_superstep",
            loop_supersteps == 0 ? 0 : loop_allocs / loop_supersteps,
            "lower", false);
  GateEntry(&json, "icm_loopback_wall_ms", loop_ms, "lower", true);
  json.EndObject();
  json.EndObject();

  const std::string& text = json.str();
  FILE* f = std::fopen(out_path.c_str(), "w");
  GRAPHITE_CHECK(f != nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  std::printf("%s\n", text.c_str());
  return 0;
}
