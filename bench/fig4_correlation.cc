// Reproduces Fig. 4: log-log scatter of (a) user-compute calls vs
// compute+ time and (b) messages sent vs messaging time, across every
// (graph, algorithm, platform) run, with the least-squares R^2.
//
// Paper shape: high correlation for both — R^2 ~= 0.80 for compute+ and
// ~= 0.95 for messaging — establishing that platform performance follows
// the model-intrinsic counts, not engineering artifacts (§VII-B2).
#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.4);
  RunConfig config;
  config.num_workers = 8;

  auto datasets = bench::LoadCatalog(scale);
  const std::vector<Algorithm> algorithms(std::begin(kAllAlgorithms),
                                          std::end(kAllAlgorithms));
  const auto points = bench::RunSweep(datasets, config, algorithms);

  std::printf("\nFig. 4: counts vs time across %zu runs (scale %.2f)\n\n",
              points.size(), scale);

  auto correlate = [&](const char* what, auto&& count_of, auto&& time_of) {
    std::vector<double> xs, ys;
    std::printf("(%s) log10(count) -> log10(ms):\n", what);
    TextTable table;
    table.AddRow({"graph", "alg", "platform", "count", "time-ms"});
    for (const auto& pt : points) {
      const int64_t count = count_of(pt.metrics);
      const int64_t ns = time_of(pt.metrics);
      if (count <= 0 || ns <= 0) continue;
      xs.push_back(std::log10(static_cast<double>(count)));
      ys.push_back(std::log10(static_cast<double>(ns) / 1e6));
      table.AddRow({pt.graph, AlgorithmName(pt.algorithm),
                    PlatformName(pt.platform), FormatCount(count),
                    FormatDouble(static_cast<double>(ns) / 1e6, 3)});
    }
    std::printf("%s", table.ToString().c_str());
    const LinearFit fit = FitLinear(xs, ys);
    std::printf("=> %zu points, slope %.2f, R^2 = %.3f (paper: %s)\n\n",
                xs.size(), fit.slope, fit.r2,
                std::string(what) == "compute" ? "0.80" : "0.95");
    return fit.r2;
  };

  const double r2_compute = correlate(
      "compute", [](const RunMetrics& m) { return m.compute_calls; },
      [](const RunMetrics& m) { return m.compute_ns; });
  const double r2_msg = correlate(
      "messaging", [](const RunMetrics& m) { return m.messages; },
      [](const RunMetrics& m) { return m.messaging_ns; });

  std::printf("Summary: R^2(compute+) = %.3f, R^2(messaging) = %.3f — both "
              "strongly positive, matching the paper's conclusion that\n"
              "performance tracks the primitives' intrinsic counts.\n",
              r2_compute, r2_msg);
  return 0;
}
