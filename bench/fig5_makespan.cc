// Reproduces Fig. 5: per-algorithm makespan split into compute+ time,
// exclusive messaging time and barrier time, together with the counts of
// compute calls and messages sent, for every graph and platform. As in
// the paper, EAT and FAST are omitted (they behave like SSSP).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.4);
  RunConfig config;
  config.num_workers = 8;

  auto datasets = bench::LoadCatalog(scale);
  // The paper plots 4 TI + 6 TD algorithms (EAT/FAST omitted for brevity).
  const std::vector<Algorithm> algorithms = {
      Algorithm::kBfs,  Algorithm::kWcc, Algorithm::kScc, Algorithm::kPr,
      Algorithm::kSssp, Algorithm::kLd,  Algorithm::kTmst, Algorithm::kRh,
      Algorithm::kLcc,  Algorithm::kTc};
  const auto points = bench::RunSweep(datasets, config, algorithms);

  std::printf("\nFig. 5: makespan split and counts per algorithm, graph "
              "and platform (scale %.2f, %d workers)\n",
              scale, config.num_workers);
  for (const auto& ds : datasets) {
    std::printf("\n=== %s (%s) ===\n", ds.name.c_str(), ds.models.c_str());
    TextTable table;
    table.AddRow({"Alg", "Platform", "Makespan-ms", "Compute+-ms",
                  "Messaging-ms", "Barrier-ms", "Supersteps",
                  "Compute-calls", "Messages"});
    for (Algorithm a : algorithms) {
      for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                         Platform::kTgb, Platform::kGof}) {
        if (!Supports(p, a)) continue;
        const auto& m = bench::Find(points, ds.name, a, p).metrics;
        table.AddRow({AlgorithmName(a), PlatformName(p),
                      FormatDouble(bench::Ms(m.makespan_ns), 1),
                      FormatDouble(bench::Ms(m.compute_ns), 1),
                      FormatDouble(bench::Ms(m.messaging_ns), 1),
                      FormatDouble(bench::Ms(m.barrier_ns), 1),
                      std::to_string(m.supersteps),
                      FormatCount(m.compute_calls), FormatCount(m.messages)});
      }
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nShapes to check against the paper:\n"
      "  * Twitter/MAG-like: ICM needs 1-2 orders of magnitude fewer\n"
      "    compute calls and messages than MSB (long shared lifespans);\n"
      "  * GPlus-like: all platforms converge to similar counts (unit\n"
      "    lifespans leave nothing to share);\n"
      "  * USRN-like: superstep counts dominate (graph diameter), and\n"
      "    ICM's single pass beats per-snapshot execution;\n"
      "  * TGB pays extra messages/calls for replica state transfer.\n");
  return 0;
}
