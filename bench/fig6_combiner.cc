// Reproduces Fig. 6(b): effect of the inline warp combiner on the
// long-lifespan graphs (paper: MAG — compute time drops 17-25%, makespan
// improves 1.2-1.5x; 16-27% compute-time drop on WebUK). All algorithms
// except LCC and TC define combiners (they are commutative/associative),
// exactly as in the paper.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.5);
  RunConfig with, without;
  with.num_workers = without.num_workers = 8;
  with.icm_combiner = true;
  without.icm_combiner = false;

  const std::vector<Algorithm> algorithms = {
      Algorithm::kBfs,  Algorithm::kWcc,  Algorithm::kScc, Algorithm::kPr,
      Algorithm::kSssp, Algorithm::kEat,  Algorithm::kFast,
      Algorithm::kLd,   Algorithm::kTmst, Algorithm::kRh};

  for (const char* graph_name : {"mag", "webuk"}) {
    const DatasetSpec spec = DatasetByName(graph_name, scale);
    std::fprintf(stderr, "[gen] %s ...\n", spec.name.c_str());
    Workload w(Generate(spec.options));

    std::printf("Fig. 6(b): inline warp combiner on %s (scale %.2f)\n\n",
                spec.name.c_str(), scale);
    TextTable table;
    table.AddRow({"Alg", "Compute-ms(off)", "Compute-ms(on)", "Drop-%",
                  "Makespan(off/on)"});
    for (Algorithm a : algorithms) {
      std::fprintf(stderr, "[run] %s combiner on/off ...\n",
                   AlgorithmName(a));
      const RunMetrics on = RunForMetrics(w, Platform::kIcm, a, with);
      const RunMetrics off = RunForMetrics(w, Platform::kIcm, a, without);
      const double drop =
          100.0 * (1.0 - static_cast<double>(on.compute_ns) /
                             std::max<double>(1, static_cast<double>(
                                                     off.compute_ns)));
      table.AddRow(
          {AlgorithmName(a), FormatDouble(bench::Ms(off.compute_ns), 1),
           FormatDouble(bench::Ms(on.compute_ns), 1), FormatDouble(drop, 1),
           FormatDouble(static_cast<double>(off.makespan_ns) /
                            std::max<double>(1, static_cast<double>(
                                                    on.makespan_ns)),
                        2) +
               "x"});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Paper shape: compute time drops ~17-27%% with the combiner "
              "and makespan improves 1.2-1.5x on these graphs.\n");
  return 0;
}
