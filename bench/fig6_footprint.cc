// Reproduces Fig. 6(a): in-memory footprint of each platform's graph
// representation — the interval graph (ICM), the transformed graph (TGB),
// the largest single snapshot (MSB / GoFFish) and the largest Chlonos
// batch. Paper shape: TGB largest, then Chlonos, ICM, GoFFish/MSB; on
// long-lifespan graphs the transformed graph dwarfs the interval graph
// (the paper's MAG/WebUK DNL cases).
#include "bench_common.h"
#include "graph/graph_stats.h"

namespace {

// Approximate per-entity bytes of a materialized snapshot in our CSR
// representation (vertex record + edge record + property slice).
constexpr size_t kSnapshotVertexBytes = sizeof(graphite::VertexId) +
                                        sizeof(graphite::Interval);
constexpr size_t kSnapshotEdgeBytes = sizeof(graphite::StoredEdge) +
                                      2 * sizeof(graphite::PropValue);

}  // namespace

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv);
  const int batch_size = 8;

  std::printf("Fig. 6(a): graph representation footprint in MB "
              "(scale %.2f, Chlonos batch = %d snapshots)\n\n",
              scale, batch_size);
  TextTable table;
  table.AddRow({"Graph", "Interval(ICM)", "Transformed(TGB)",
                "Largest-snap(MSB/GOF)", "Batch(CHL)", "TGB/ICM"});
  for (const DatasetSpec& spec : DatasetCatalog(scale)) {
    std::fprintf(stderr, "[gen] %s ...\n", spec.name.c_str());
    const TemporalGraph g = Generate(spec.options);
    const TransformedGraph tg = BuildTransformedGraph(g);
    const GraphStats s =
        ComputeGraphStats(g, /*include_transformed=*/false);

    const double interval_mb =
        static_cast<double>(g.MemoryFootprintBytes()) / 1e6;
    const double transformed_mb =
        static_cast<double>(tg.MemoryFootprintBytes()) / 1e6;
    const double snap_mb =
        static_cast<double>(s.largest_snapshot_v * kSnapshotVertexBytes +
                            s.largest_snapshot_e * kSnapshotEdgeBytes) /
        1e6;
    // A Chlonos batch materializes up to `batch_size` adjacent snapshots.
    const double batch_mb =
        std::min(static_cast<double>(batch_size),
                 static_cast<double>(s.num_snapshots)) *
        snap_mb;
    table.AddRow({spec.name, FormatDouble(interval_mb, 2),
                  FormatDouble(transformed_mb, 2), FormatDouble(snap_mb, 2),
                  FormatDouble(batch_mb, 2),
                  FormatDouble(transformed_mb / interval_mb, 1) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper comparison: the transformed graph needed 604/684 GB for\n"
      "MAG/WebUK vs 130/183 GB interval graphs (4.6x/3.7x, and it did not\n"
      "fit the 480 GB cluster). The analogous TGB/ICM blow-up above is\n"
      "largest for the long-lifespan graphs.\n");
  return 0;
}
