// Reproduces Fig. 6(c): automatic warp suppression on the unit-lifespan
// graphs — GPlus-like (every message unit-length, ICM's worst case) and
// Reddit-like (96% unit). Paper shape: suppression cuts the makespan by
// 25-40% on GPlus, leaving GRAPHITE only marginally (~7%) behind the
// snapshot baselines; also sweeps the suppression threshold.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.5);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kBfs, Algorithm::kWcc, Algorithm::kPr, Algorithm::kSssp,
      Algorithm::kRh,  Algorithm::kTmst};

  for (const char* graph_name : {"gplus", "reddit"}) {
    const DatasetSpec spec = DatasetByName(graph_name, scale);
    std::fprintf(stderr, "[gen] %s ...\n", spec.name.c_str());
    Workload w(Generate(spec.options));

    std::printf("Fig. 6(c): warp suppression on %s (scale %.2f)\n\n",
                spec.name.c_str(), scale);
    TextTable table;
    table.AddRow({"Alg", "Makespan-ms(warp)", "Makespan-ms(suppressed)",
                  "Improvement-%", "Calls(warp)", "Calls(suppressed)"});
    for (Algorithm a : algorithms) {
      std::fprintf(stderr, "[run] %s suppression on/off ...\n",
                   AlgorithmName(a));
      RunConfig off_cfg, on_cfg;
      off_cfg.num_workers = on_cfg.num_workers = 8;
      off_cfg.icm_suppression = false;
      on_cfg.icm_suppression = true;
      const RunMetrics off = RunForMetrics(w, Platform::kIcm, a, off_cfg);
      const RunMetrics on = RunForMetrics(w, Platform::kIcm, a, on_cfg);
      const double gain =
          100.0 * (1.0 - static_cast<double>(on.makespan_ns) /
                             std::max<double>(1, static_cast<double>(
                                                     off.makespan_ns)));
      table.AddRow({AlgorithmName(a), FormatDouble(bench::Ms(off.makespan_ns), 1),
                    FormatDouble(bench::Ms(on.makespan_ns), 1),
                    FormatDouble(gain, 1), FormatCount(off.compute_calls),
                    FormatCount(on.compute_calls)});
    }
    std::printf("%s\n", table.ToString().c_str());

    // Threshold sweep for one representative traversal algorithm.
    std::printf("Suppression-threshold sweep (SSSP on %s):\n\n",
                spec.name.c_str());
    TextTable sweep;
    sweep.AddRow({"Threshold", "Makespan-ms", "Compute-calls"});
    for (double threshold : {0.0, 0.5, 0.7, 0.9, 1.01}) {
      RunConfig cfg;
      cfg.num_workers = 8;
      cfg.icm_suppression = threshold <= 1.0;
      cfg.icm_suppression_threshold = threshold;
      const RunMetrics m =
          RunForMetrics(w, Platform::kIcm, Algorithm::kSssp, cfg);
      sweep.AddRow({threshold > 1.0 ? "off" : FormatDouble(threshold, 2),
                    FormatDouble(bench::Ms(m.makespan_ns), 1),
                    FormatCount(m.compute_calls)});
    }
    std::printf("%s\n", sweep.ToString().c_str());
  }
  std::printf("Paper shape: 25-40%% makespan reduction on GPlus with\n"
              "suppression enabled (default threshold 0.7); correctness is\n"
              "unaffected (the equivalence tests cover this).\n");
  return 0;
}
