// Reproduces Fig. 7: weak scaling of GRAPHITE. The input grows with the
// worker count (~10k vertices and ~100k edges per logical worker at scale
// 1, LDBC-like power law with LinkBench-style churn over 16 snapshots,
// mirroring the paper's m x 10M / m x 100M per machine). Ideal weak
// scaling keeps the makespan constant; the paper reports 95-106%
// efficiency.
//
// All logical workers share one physical host here, so the headline
// metric is the SIMULATED makespan (per superstep: slowest worker's
// compute time + a 1 GbE network model over the busiest worker's incoming
// bytes + a fixed barrier cost) — see DESIGN.md substitutions. The total
// wall clock is also printed for reference; it grows with m by design.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv, 0.15);
  const std::vector<Algorithm> algorithms(std::begin(kAllAlgorithms),
                                          std::end(kAllAlgorithms));
  const int machines[] = {1, 2, 4, 8, 10};

  std::printf("Fig. 7: weak scaling, %.0fk vertices / %.0fk edges per "
              "worker, 16 snapshots\n\n",
              10000 * scale / 1000, 100000 * scale / 1000);

  // simulated[alg][mi], efficiency vs 1 machine.
  std::vector<std::vector<double>> simulated(
      algorithms.size(), std::vector<double>(std::size(machines), 0));
  std::vector<std::vector<double>> wall(simulated);

  for (size_t mi = 0; mi < std::size(machines); ++mi) {
    const int m = machines[mi];
    std::fprintf(stderr, "[gen] weak-scaling graph for %d workers ...\n", m);
    Workload w(Generate(WeakScalingOptions(m, scale)));
    RunConfig config;
    config.num_workers = m;
    config.source = bench::HubVertex(w.graph());
    // Cluster model with count-based compute (uniform per-call cost):
    // cross-size wall times on ONE host are distorted by cache pressure,
    // which a real m-machine cluster does not have.
    RunMetrics::ClusterModel model;
    model.num_workers = m;
    model.per_call_ns = 2000;  // ~Giraph-like per-call cost.
    for (size_t ai = 0; ai < algorithms.size(); ++ai) {
      std::fprintf(stderr, "[run] m=%d %s ...\n", m,
                   AlgorithmName(algorithms[ai]));
      const RunMetrics metrics =
          RunForMetrics(w, Platform::kIcm, algorithms[ai], config);
      simulated[ai][mi] = bench::Ms(metrics.SimulatedMakespanNs(model));
      wall[ai][mi] = bench::Ms(metrics.makespan_ns);
    }
  }

  TextTable table;
  std::vector<std::string> header = {"Alg"};
  for (int m : machines) header.push_back(std::to_string(m) + "M-sim-ms");
  header.push_back("eff@10M");
  table.AddRow(header);
  std::vector<double> efficiencies;
  for (size_t ai = 0; ai < algorithms.size(); ++ai) {
    std::vector<std::string> cells = {AlgorithmName(algorithms[ai])};
    for (size_t mi = 0; mi < std::size(machines); ++mi) {
      cells.push_back(FormatDouble(simulated[ai][mi], 1));
    }
    const double eff = 100.0 * simulated[ai][0] /
                       std::max(1e-9, simulated[ai].back());
    efficiencies.push_back(eff);
    cells.push_back(FormatDouble(eff, 0) + "%");
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Mean weak-scaling efficiency at 10 workers: %.0f%% "
              "(paper: 95-106%%; 100%% = flat makespan)\n\n",
              Mean(efficiencies));

  std::printf("Reference total wall-clock on this single host (grows ~m by "
              "design):\n");
  TextTable wt;
  wt.AddRow(header);
  for (size_t ai = 0; ai < algorithms.size(); ++ai) {
    std::vector<std::string> cells = {AlgorithmName(algorithms[ai])};
    for (size_t mi = 0; mi < std::size(machines); ++mi) {
      cells.push_back(FormatDouble(wall[ai][mi], 1));
    }
    cells.push_back("-");
    wt.AddRow(cells);
  }
  std::printf("%s", wt.ToString().c_str());
  return 0;
}
