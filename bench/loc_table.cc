// Reproduces §VII-B8 (lines of user logic): counts the real lines of
// algorithm code in this repository, per programming model. The paper
// reports 19-114 LoC for TI and 27-80 LoC for TD algorithms under ICM,
// with ICM needing 15-47% less user logic than Chlonos, 19-44% less than
// GoFFish and 46-152% less than TGB, and ~3 lines more than MSB.
#include <fstream>
#include <map>
#include <sstream>

#include "bench_common.h"

#ifndef GRAPHITE_SOURCE_DIR
#define GRAPHITE_SOURCE_DIR "."
#endif

namespace {

// Counts non-blank, non-comment-only lines of a file section delimited by
// "class <Name>" ... the next top-level "};".
int CountClassLoc(const std::string& path, const std::string& class_name) {
  std::ifstream in(path);
  if (!in) return -1;
  std::string line;
  bool inside = false;
  int loc = 0;
  while (std::getline(in, line)) {
    // Strip indentation.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::string body = line.substr(first);
    if (!inside) {
      if (body.rfind("class " + class_name, 0) == 0) inside = true;
    }
    if (inside) {
      if (body.rfind("//", 0) != 0 && body.rfind("///", 0) != 0) ++loc;
      if (body == "};") break;
    }
  }
  return inside ? loc : -1;
}

}  // namespace

int main() {
  using namespace graphite;
  const std::string src = std::string(GRAPHITE_SOURCE_DIR) + "/src";

  struct Row {
    const char* algorithm;
    const char* file;       // Relative to src/.
    const char* class_name;
    const char* model;
  };
  const Row rows[] = {
      // ICM user logic.
      {"BFS", "algorithms/icm_ti.h", "IcmBfs", "ICM"},
      {"WCC", "algorithms/icm_ti.h", "IcmWcc", "ICM"},
      {"SCC(fwd)", "algorithms/icm_ti.h", "IcmSccForward", "ICM"},
      {"PR", "algorithms/icm_ti.h", "IcmPageRank", "ICM"},
      {"SSSP", "algorithms/icm_path.h", "IcmSssp", "ICM"},
      {"EAT", "algorithms/icm_path.h", "IcmEat", "ICM"},
      {"FAST", "algorithms/icm_path.h", "IcmFast", "ICM"},
      {"LD", "algorithms/icm_path.h", "IcmLatestDeparture", "ICM"},
      {"TMST", "algorithms/icm_path.h", "IcmTmst", "ICM"},
      {"RH", "algorithms/icm_path.h", "IcmReach", "ICM"},
      {"TC", "algorithms/icm_clustering.h", "IcmTriangleCount", "ICM"},
      // VCM kernels (MSB / Chlonos user logic).
      {"BFS", "algorithms/vcm_ti_kernels.h", "VcmBfs", "MSB/CHL"},
      {"WCC", "algorithms/vcm_ti_kernels.h", "VcmWcc", "MSB/CHL"},
      {"SCC(fwd)", "algorithms/vcm_ti_kernels.h", "VcmSccForward",
       "MSB/CHL"},
      {"PR", "algorithms/vcm_ti_kernels.h", "VcmPageRank", "MSB/CHL"},
      // GoFFish user logic.
      {"SSSP", "algorithms/gof_programs.h", "GofSssp", "GOF"},
      {"EAT", "algorithms/gof_programs.h", "GofEat", "GOF"},
      {"FAST", "algorithms/gof_programs.h", "GofFast", "GOF"},
      {"LD", "algorithms/gof_programs.h", "GofLatestDeparture", "GOF"},
      {"TMST", "algorithms/gof_programs.h", "GofTmst", "GOF"},
      {"RH", "algorithms/gof_programs.h", "GofReach", "GOF"},
      {"TC", "algorithms/gof_programs.h", "GofTriangle", "GOF"},
      // TGB user logic (plus the algorithm-specific transformation).
      {"SSSP", "baselines/tgb.h", "TgbSssp", "TGB"},
      {"EAT/RH", "baselines/tgb.h", "TgbReach", "TGB"},
      {"FAST", "baselines/tgb.h", "TgbFast", "TGB"},
      {"LD", "baselines/tgb.h", "TgbLd", "TGB"},
      {"TMST", "baselines/tgb.h", "TgbTmst", "TGB"},
      {"TC", "baselines/tgb.h", "TgbTriangle", "TGB"},
  };

  std::printf("Sec. VII-B8: lines of user logic per algorithm and model\n"
              "(measured from this repository's sources)\n\n");
  TextTable table;
  table.AddRow({"Algorithm", "Model", "LoC"});
  std::map<std::string, std::vector<double>> by_model;
  for (const Row& row : rows) {
    const int loc = CountClassLoc(src + "/" + row.file, row.class_name);
    table.AddRow({row.algorithm, row.model,
                  loc < 0 ? "?" : std::to_string(loc)});
    if (loc > 0) by_model[row.model].push_back(loc);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Mean LoC per model:\n");
  for (const auto& [model, locs] : by_model) {
    std::printf("  %-8s %.0f\n", model.c_str(), graphite::Mean(locs));
  }
  std::printf(
      "\nNote: TGB additionally requires the algorithm-specific graph\n"
      "transformation (~%d LoC in graph/transformed_graph.cc), which the\n"
      "paper counts against it — hence its 46-152%% LoC overhead.\n",
      250);
  return 0;
}
