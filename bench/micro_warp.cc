// Micro-benchmarks (google-benchmark) for the ICM hot paths:
//   * the time-warp operator at varying inbox sizes and state partition
//     counts (the paper's O(m log m) merge implementation),
//   * the interval-message codec (§VI: 59-78% message-size reduction vs
//     fixed-width encoding),
//   * IntervalMap::Set dynamic repartitioning.
//
// The warp benchmarks report ns_per_tuple and allocs_per_tuple (via the
// counting allocator hook in alloc_counter.h) for both the legacy
// vector-of-vectors API and the arena-backed SoA path, so the hot-path
// allocation behavior is visible without the full bench_warp_alloc run.
#define GRAPHITE_ALLOC_COUNTER_IMPL
#include "alloc_counter.h"

#include <benchmark/benchmark.h>

#include <algorithm>

#include "icm/message.h"
#include "icm/warp.h"
#include "temporal/interval_map.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/timer.h"

namespace graphite {
namespace {

std::vector<IntervalMap<int64_t>::Entry> MakeStates(int n, TimePoint horizon,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalMap<int64_t>::Entry> out;
  TimePoint t = 0;
  for (int i = 0; i < n && t < horizon; ++i) {
    const TimePoint end =
        i == n - 1 ? horizon : rng.UniformRange(t + 1, horizon + 1);
    out.push_back({{t, end}, static_cast<int64_t>(rng.Uniform(1000))});
    t = end;
  }
  return out;
}

std::vector<TemporalItem<int64_t>> MakeMessages(int m, TimePoint horizon,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<TemporalItem<int64_t>> out;
  for (int i = 0; i < m; ++i) {
    const TimePoint s = rng.UniformRange(0, horizon - 1);
    out.push_back({{s, rng.UniformRange(s + 1, horizon + 1)},
                   static_cast<int64_t>(rng.Uniform(1'000'000))});
  }
  return out;
}

void BM_TimeWarp(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  const int num_messages = static_cast<int>(state.range(1));
  const auto states = MakeStates(num_states, 1000, 1);
  const auto messages = MakeMessages(num_messages, 1000, 2);
  uint64_t tuples = 0;
  const uint64_t alloc0 = benchalloc::AllocCount();
  const int64_t t0 = NowNanos();
  for (auto _ : state) {
    auto warp = TimeWarp<int64_t, int64_t>(states, messages);
    tuples += warp.size();
    benchmark::DoNotOptimize(warp);
  }
  const int64_t elapsed = NowNanos() - t0;
  const uint64_t allocs = benchalloc::AllocCount() - alloc0;
  state.SetItemsProcessed(state.iterations() * num_messages);
  if (tuples > 0) {
    state.counters["ns_per_tuple"] =
        static_cast<double>(elapsed) / static_cast<double>(tuples);
    state.counters["allocs_per_tuple"] =
        static_cast<double>(allocs) / static_cast<double>(tuples);
  }
}
BENCHMARK(BM_TimeWarp)
    ->Args({1, 8})
    ->Args({1, 64})
    ->Args({4, 64})
    ->Args({16, 64})
    ->Args({4, 512})
    ->Args({16, 4096});

// The engines' steady-state path: flat SoA output and sweep scratch out of
// one arena, reset after each simulated superstep. allocs_per_tuple is
// expected to be ~0 once the arena's high-water mark is warm.
//
// The WarpStats counters attribute the two-pass kernel: merge_hit_rate is
// the fraction of non-empty slices the maximality merge coalesced (fewer
// Compute calls downstream), and endpoint_share_% is the fraction of the
// kernel's internally timed ns spent in the endpoint pass (clip + sort +
// boundary merge) versus payload materialization — so a future kernel
// change shows up as a shift in the split, not just total time.
void BM_TimeWarpInto(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  const int num_messages = static_cast<int>(state.range(1));
  const auto states = MakeStates(num_states, 1000, 1);
  const auto messages = MakeMessages(num_messages, 1000, 2);
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput out;
  out.Attach(&arena);
  WarpStats stats;
  stats.timed = true;
  uint64_t tuples = 0;
  const uint64_t alloc0 = benchalloc::AllocCount();
  const int64_t t0 = NowNanos();
  for (auto _ : state) {
    TimeWarpInto<int64_t, int64_t>(states, messages, &scratch, &out, &stats);
    tuples += out.size();
    benchmark::DoNotOptimize(out);
    // Superstep barrier: release arena-backed buffers, decay the arena.
    scratch.Release();
    out.Release();
    arena.Reset();
  }
  const int64_t elapsed = NowNanos() - t0;
  const uint64_t allocs = benchalloc::AllocCount() - alloc0;
  state.SetItemsProcessed(state.iterations() * num_messages);
  if (tuples > 0) {
    state.counters["ns_per_tuple"] =
        static_cast<double>(elapsed) / static_cast<double>(tuples);
    state.counters["allocs_per_tuple"] =
        static_cast<double>(allocs) / static_cast<double>(tuples);
  }
  if (stats.slices > 0) {
    state.counters["merge_hit_rate"] =
        static_cast<double>(stats.merge_hits) /
        static_cast<double>(stats.slices);
    state.counters["endpoint_ns_per_tuple"] =
        static_cast<double>(stats.endpoint_ns) /
        static_cast<double>(std::max<int64_t>(1, stats.tuples));
    state.counters["payload_ns_per_tuple"] =
        static_cast<double>(stats.payload_ns) /
        static_cast<double>(std::max<int64_t>(1, stats.tuples));
    const int64_t pass_ns = stats.endpoint_ns + stats.payload_ns;
    if (pass_ns > 0) {
      state.counters["endpoint_share_%"] =
          100.0 * static_cast<double>(stats.endpoint_ns) /
          static_cast<double>(pass_ns);
    }
  }
}
BENCHMARK(BM_TimeWarpInto)
    ->Args({1, 8})
    ->Args({1, 64})
    ->Args({4, 64})
    ->Args({16, 64})
    ->Args({4, 512})
    ->Args({16, 4096});

// The §VI inline-combiner kernel, same counters: both passes share the
// endpoint pass with TimeWarpInto, so comparing the two payload splits
// isolates the cost of group materialization vs in-sweep folding.
void BM_TimeWarpCombineInto(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  const int num_messages = static_cast<int>(state.range(1));
  const auto states = MakeStates(num_states, 1000, 1);
  const auto messages = MakeMessages(num_messages, 1000, 2);
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  SuperstepVec<CombinedWarpTuple<int64_t>> out;
  out.Attach(&arena);
  WarpStats stats;
  stats.timed = true;
  uint64_t tuples = 0;
  const int64_t t0 = NowNanos();
  for (auto _ : state) {
    TimeWarpCombineInto<int64_t, int64_t>(
        states, messages,
        [](int64_t a, int64_t b) { return std::min(a, b); }, &scratch, &out,
        &stats);
    tuples += out.size();
    benchmark::DoNotOptimize(out);
    scratch.Release();
    out.Release();
    arena.Reset();
  }
  const int64_t elapsed = NowNanos() - t0;
  state.SetItemsProcessed(state.iterations() * num_messages);
  if (tuples > 0) {
    state.counters["ns_per_tuple"] =
        static_cast<double>(elapsed) / static_cast<double>(tuples);
  }
  if (stats.slices > 0) {
    state.counters["merge_hit_rate"] =
        static_cast<double>(stats.merge_hits) /
        static_cast<double>(stats.slices);
    const int64_t pass_ns = stats.endpoint_ns + stats.payload_ns;
    if (pass_ns > 0) {
      state.counters["endpoint_share_%"] =
          100.0 * static_cast<double>(stats.endpoint_ns) /
          static_cast<double>(pass_ns);
    }
  }
}
BENCHMARK(BM_TimeWarpCombineInto)
    ->Args({4, 64})
    ->Args({4, 512})
    ->Args({16, 4096});

void BM_TimeJoin(benchmark::State& state) {
  const auto states = MakeStates(8, 1000, 1);
  const auto messages =
      MakeMessages(static_cast<int>(state.range(0)), 1000, 2);
  for (auto _ : state) {
    auto join = TimeJoin<int64_t, int64_t>(states, messages);
    benchmark::DoNotOptimize(join);
  }
}
BENCHMARK(BM_TimeJoin)->Arg(64)->Arg(512);

void BM_IntervalCodecEncode(benchmark::State& state) {
  const auto messages = MakeMessages(1024, 100000, 3);
  size_t varint_bytes = 0;
  for (auto _ : state) {
    Writer w;
    for (const auto& m : messages) WriteInterval(w, m.interval);
    varint_bytes = w.size();
    benchmark::DoNotOptimize(w);
  }
  // §VI headline: compression vs the fixed 16-byte interval encoding.
  state.counters["bytes_per_interval"] =
      static_cast<double>(varint_bytes) / 1024.0;
  state.counters["reduction_vs_fixed_%"] =
      100.0 * (1.0 - static_cast<double>(varint_bytes) /
                         static_cast<double>(1024 * kFixedIntervalWireSize));
}
BENCHMARK(BM_IntervalCodecEncode);

void BM_IntervalCodecUnitMessages(benchmark::State& state) {
  // Unit-length messages: single time-point + flag on the wire.
  Rng rng(4);
  std::vector<Interval> intervals;
  for (int i = 0; i < 1024; ++i) {
    const TimePoint t = rng.UniformRange(0, 200);
    intervals.push_back(Interval(t, t + 1));
  }
  size_t bytes = 0;
  for (auto _ : state) {
    Writer w;
    for (const Interval& iv : intervals) WriteInterval(w, iv);
    bytes = w.size();
    benchmark::DoNotOptimize(w);
  }
  state.counters["reduction_vs_fixed_%"] =
      100.0 * (1.0 - static_cast<double>(bytes) /
                         static_cast<double>(1024 * kFixedIntervalWireSize));
}
BENCHMARK(BM_IntervalCodecUnitMessages);

void BM_IntervalMapSet(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    IntervalMap<int64_t> map(Interval(0, 10000), 0);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      const TimePoint s = rng.UniformRange(0, 9999);
      map.Set(Interval(s, rng.UniformRange(s + 1, 10001)),
              static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(map);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalMapSet)->Arg(64)->Arg(512);

}  // namespace
}  // namespace graphite

BENCHMARK_MAIN();
