// Reproduces Table 1 (dataset characteristics) for the six synthetic
// analogs: snapshot count, largest-snapshot size, interval-graph size,
// transformed-graph size, cumulative multi-snapshot size and the average
// lifespans of vertices, edges and properties.
#include "bench_common.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace graphite;
  const double scale = bench::ResolveScale(argc, argv);
  std::printf("Table 1: dataset characteristics (scale %.2f; analogs of "
              "the paper's six graphs)\n\n",
              scale);

  TextTable table;
  table.AddRow({"Graph", "#Snap", "Larg.|V|", "Larg.|E|", "Intv.|V|",
                "Intv.|E|", "Transf.|V|", "Transf.|E|", "Multi.|V|",
                "Multi.|E|", "V-life", "E-life", "Prop-life"});
  for (const DatasetSpec& spec : DatasetCatalog(scale)) {
    std::fprintf(stderr, "[gen+stats] %s ...\n", spec.name.c_str());
    const TemporalGraph g = Generate(spec.options);
    const GraphStats s = ComputeGraphStats(g);
    table.AddRow({spec.name, std::to_string(s.num_snapshots),
                  FormatCount(static_cast<int64_t>(s.largest_snapshot_v)),
                  FormatCount(static_cast<int64_t>(s.largest_snapshot_e)),
                  FormatCount(static_cast<int64_t>(s.interval_v)),
                  FormatCount(static_cast<int64_t>(s.interval_e)),
                  FormatCount(static_cast<int64_t>(s.transformed_v)),
                  FormatCount(static_cast<int64_t>(s.transformed_e)),
                  FormatCount(static_cast<int64_t>(s.multi_snapshot_v)),
                  FormatCount(static_cast<int64_t>(s.multi_snapshot_e)),
                  FormatDouble(s.avg_vertex_lifespan, 1),
                  FormatDouble(s.avg_edge_lifespan, 1),
                  FormatDouble(s.avg_prop_lifespan, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shape checks vs the paper:\n"
      "  * GPlus-like has unit edge lifespans (E-life = 1), so the\n"
      "    transformed and multi-snapshot sizes collapse toward the\n"
      "    interval size;\n"
      "  * Twitter/MAG-like edge lifespans approach the graph lifetime,\n"
      "    so their transformed/multi-snapshot sizes blow up by ~E-life;\n"
      "  * USRN-like is topology-static: largest snapshot == interval\n"
      "    graph, and only properties churn (Prop-life << E-life).\n");
  return 0;
}
