// Reproduces Table 2: the ratio of each baseline platform's makespan over
// GRAPHITE/ICM, averaged over the TI algorithms (MSB, Chlonos) and the TD
// algorithms (TGB, GoFFish), for every graph. Ratios > 1 mean ICM wins.
//
// Paper shape to reproduce: large wins (up to ~25x) on the long-lifespan
// graphs (Twitter-like, MAG-like, WebUK-like), parity (~1x) on the
// unit-lifespan GPlus-like and Reddit-like, TGB >2x on USRN-like, and
// GoFFish well above 1 everywhere the snapshot count is high.
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace graphite;
  using bench::SweepPoint;
  const double scale = bench::ResolveScale(argc, argv, 0.5);
  RunConfig config;
  config.num_workers = 8;  // Paper: 8 nodes for all non-scaling runs.

  auto datasets = bench::LoadCatalog(scale);
  const std::vector<Algorithm> algorithms(std::begin(kAllAlgorithms),
                                          std::end(kAllAlgorithms));
  const auto points = bench::RunSweep(datasets, config, algorithms);

  // ratio[platform][graph] = geomean over algorithms of
  // makespan(platform)/makespan(ICM), under the shared cluster model
  // (compute critical path + 1 GbE + barrier; see DESIGN.md §4).
  const struct {
    const char* klass;
    Platform platform;
  } kRows[] = {{"TI", Platform::kMsb},
               {"TI", Platform::kChl},
               {"TD", Platform::kTgb},
               {"TD", Platform::kGof}};
  auto print_ratio_table = [&](const char* title, auto&& makespan_of) {
    std::printf("\n%s (scale %.2f, %d workers). >1x means ICM is "
                "faster.\n\n",
                title, scale, config.num_workers);
    TextTable table;
    std::vector<std::string> header = {"", "Platform"};
    for (const auto& ds : datasets) header.push_back(ds.name);
    table.AddRow(header);
    for (const auto& row : kRows) {
      std::vector<std::string> cells = {row.klass,
                                        PlatformName(row.platform)};
      for (const auto& ds : datasets) {
        std::vector<double> ratios;
        for (Algorithm a : algorithms) {
          if (!Supports(row.platform, a)) continue;
          const SweepPoint& base =
              bench::Find(points, ds.name, a, row.platform);
          const SweepPoint& icm =
              bench::Find(points, ds.name, a, Platform::kIcm);
          ratios.push_back(std::max(1e-9, makespan_of(base.metrics)) /
                           std::max(1e-9, makespan_of(icm.metrics)));
        }
        cells.push_back(FormatDouble(GeoMean(ratios), 2) + "x");
      }
      table.AddRow(cells);
    }
    std::printf("%s\n", table.ToString().c_str());
  };
  print_ratio_table(
      "Table 2: baseline / GRAPHITE(ICM) cluster-modeled makespan",
      [&](const RunMetrics& m) {
        return bench::ModeledMs(m, config.num_workers);
      });
  print_ratio_table(
      "For reference: raw single-host wall-clock ratio (per-call constants"
      " only; no network)",
      [](const RunMetrics& m) { return static_cast<double>(m.makespan_ns); });

  // Model-intrinsic counts behind the ratios (paper §VII-B2).
  std::printf("Count ratios (baseline/ICM, geomean over algorithms):\n\n");
  TextTable counts;
  std::vector<std::string> header = {"", "Platform"};
  for (const auto& ds : datasets) header.push_back(ds.name);
  counts.AddRow(header);
  for (const auto& row : kRows) {
    std::vector<std::string> calls_cells = {row.klass,
                                            std::string(PlatformName(row.platform)) +
                                                " calls"};
    std::vector<std::string> msg_cells = {row.klass,
                                          std::string(PlatformName(row.platform)) +
                                              " msgs"};
    for (const auto& ds : datasets) {
      std::vector<double> call_ratios, msg_ratios;
      for (Algorithm a : algorithms) {
        if (!Supports(row.platform, a)) continue;
        const SweepPoint& base =
            bench::Find(points, ds.name, a, row.platform);
        const SweepPoint& icm =
            bench::Find(points, ds.name, a, Platform::kIcm);
        call_ratios.push_back(
            static_cast<double>(std::max<int64_t>(1, base.metrics.compute_calls)) /
            static_cast<double>(std::max<int64_t>(1, icm.metrics.compute_calls)));
        msg_ratios.push_back(
            static_cast<double>(std::max<int64_t>(1, base.metrics.messages)) /
            static_cast<double>(std::max<int64_t>(1, icm.metrics.messages)));
      }
      calls_cells.push_back(FormatDouble(GeoMean(call_ratios), 1) + "x");
      msg_cells.push_back(FormatDouble(GeoMean(msg_ratios), 1) + "x");
    }
    counts.AddRow(calls_cells);
    counts.AddRow(msg_cells);
  }
  std::printf("%s", counts.ToString().c_str());
  return 0;
}
