// Fraud rings: detecting monetary routing patterns in a transaction
// network (paper §I: "Temporal motifs like feed-forward triangles in
// transaction networks let us identify monetary routing patterns").
//
// Generates an account-to-account transfer graph whose edges appear and
// disappear over days, then runs the TD clustering algorithms:
//   * TC  — per-interval triangle counts: accounts sitting on many
//           concurrent transfer triangles are routing candidates,
//   * LCC — local clustering coefficient: tight cliques of accounts.
// Finally cross-checks the flagged accounts with temporal reachability
// from the most suspicious one.
//
//   $ ./fraud_rings [num-accounts]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/icm_clustering.h"
#include "algorithms/icm_path.h"
#include "gen/generators.h"
#include "icm/icm_engine.h"

namespace {
using namespace graphite;  // Example code; the library never does this.
}

int main(int argc, char** argv) {
  const int64_t accounts = argc > 1 ? std::atoll(argv[1]) : 1500;

  GenOptions opt;
  opt.seed = 13;
  opt.num_vertices = accounts;
  opt.num_edges = accounts * 8;  // Dense enough to form triangles.
  opt.snapshots = 14;            // Two weeks of daily snapshots.
  opt.edge_lifespan = GenOptions::Lifespan::kMixed;
  opt.unit_fraction = 0.4;  // Many one-day transfer relationships.
  opt.mean_edge_lifespan = 7;
  opt.zipf_alpha = 1.0;  // A few accounts transact with everyone.
  const TemporalGraph g = Generate(opt);
  std::printf("Transaction network: %zu accounts, %zu transfer edges, "
              "%lld daily snapshots\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.horizon()));

  // --- Triangle counting. ---
  IcmTriangleCount tc;
  auto tc_run = IcmEngine<IcmTriangleCount>::Run(g, tc, TriangleOptions());
  const auto counts = TriangleCounts(tc_run.states);

  struct Suspect {
    int64_t peak = 0;       // Max concurrent triangles.
    TimePoint when = 0;     // Day of the peak.
    VertexIdx v = 0;
  };
  std::vector<Suspect> suspects;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    Suspect s;
    s.v = v;
    for (const auto& e : counts[v].entries()) {
      if (e.value > s.peak) {
        s.peak = e.value;
        s.when = e.interval.start;
      }
    }
    if (s.peak > 0) suspects.push_back(s);
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const Suspect& a, const Suspect& b) { return a.peak > b.peak; });

  std::printf("Accounts on the most concurrent transfer triangles:\n");
  for (size_t i = 0; i < suspects.size() && i < 5; ++i) {
    std::printf("  account %6lld: %lld triangles on day %lld\n",
                static_cast<long long>(g.vertex_id(suspects[i].v)),
                static_cast<long long>(suspects[i].peak),
                static_cast<long long>(suspects[i].when));
  }
  if (suspects.empty()) {
    std::printf("  (no triangles in this network)\n");
    return 0;
  }

  // --- Clustering coefficient of the top suspect over time. ---
  auto lcc_run = RunIcmLcc(g, IcmOptions{});
  const VertexIdx top = suspects[0].v;
  std::printf("\nClustering coefficient of account %lld over time:\n",
              static_cast<long long>(g.vertex_id(top)));
  for (const auto& e : lcc_run.lcc[top].entries()) {
    if (e.value > 0) {
      std::printf("  %.4f during %s\n", e.value,
                  e.interval.ToString().c_str());
    }
  }

  // --- Where could the money flow from the top suspect? ---
  IcmReach reach(g, g.vertex_id(top));
  auto reach_run = IcmEngine<IcmReach>::Run(g, reach);
  int64_t reachable = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : reach_run.states[v].entries()) {
      if (e.value == 1) {
        ++reachable;
        break;
      }
    }
  }
  std::printf("\nFunds from account %lld can reach %lld accounts "
              "(%.1f%%) through time-respecting transfer paths.\n",
              static_cast<long long>(g.vertex_id(top)),
              static_cast<long long>(reachable),
              100.0 * static_cast<double>(reachable) /
                  static_cast<double>(g.num_vertices()));
  std::printf("\nICM effort (triangle run): %s\n",
              tc_run.metrics.ToString().c_str());
  return 0;
}
