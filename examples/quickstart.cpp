// Quickstart: the paper's Fig. 1 transit network, end to end.
//
// Builds the interval graph with TemporalGraphBuilder, runs the
// interval-centric temporal SSSP of Alg. 1 on the ICM engine, and prints
// the partitioned per-interval costs — reproducing the worked example of
// §I/§IV (B and E reachable over two intervals with different lowest
// costs, C and D over one, F never; 7 interval-vertex visits and 6 edge
// traversals).
//
//   $ ./quickstart
#include <cstdio>

#include "algorithms/icm_path.h"
#include "graph/builder.h"
#include "icm/icm_engine.h"

namespace {

using namespace graphite;  // Example code; the library never does this.

// Fig. 1(a): transit stops A..F, directed transit options with an
// interval during which the transit can be initiated and a travel cost.
// Travel time is 1 everywhere.
TemporalGraph BuildTransitNetwork() {
  TemporalGraphBuilder b;
  const Interval forever(0, kTimeMax);
  for (VertexId v = 0; v < 6; ++v) b.AddVertex(v, forever);

  auto edge = [&b](EdgeId eid, VertexId src, VertexId dst, TimePoint t0,
                   TimePoint t1, PropValue cost) {
    b.AddEdge(eid, src, dst, Interval(t0, t1));
    b.SetEdgeProperty(eid, "travel-time", Interval(t0, t1), 1);
    b.SetEdgeProperty(eid, "travel-cost", Interval(t0, t1), cost);
  };
  // A->B: one edge whose cost property changes value at t=5 — so A's
  // scatter runs once per distinct property interval.
  b.AddEdge(10, 0, 1, Interval(3, 6));
  b.SetEdgeProperty(10, "travel-time", Interval(3, 6), 1);
  b.SetEdgeProperty(10, "travel-cost", Interval(3, 5), 4);
  b.SetEdgeProperty(10, "travel-cost", Interval(5, 6), 3);
  edge(11, 0, 2, 1, 2, 3);  // A->C
  edge(12, 0, 3, 2, 4, 2);  // A->D
  edge(13, 2, 4, 5, 6, 4);  // C->E
  edge(14, 1, 4, 8, 9, 2);  // B->E
  edge(15, 3, 5, 1, 2, 1);  // D->F

  BuilderOptions options;
  options.horizon = 10;
  auto g = b.Build(options);
  GRAPHITE_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace

int main() {
  const TemporalGraph g = BuildTransitNetwork();
  std::printf("Transit network: %zu stops, %zu transit options, %lld "
              "snapshots\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.horizon()));

  // Temporal SSSP from stop A (vertex 0), starting at time 0.
  IcmSssp sssp(g, /*source=*/0);
  auto result = IcmEngine<IcmSssp>::Run(g, sssp);

  std::printf("Cheapest time-respecting travel cost from A, per arrival "
              "interval:\n");
  const char* names = "ABCDEF";
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    std::printf("  %c: ", names[v]);
    bool reachable = false;
    for (const auto& entry : result.states[v].entries()) {
      if (entry.value == kInfCost) continue;
      std::printf("cost %lld during %s  ",
                  static_cast<long long>(entry.value),
                  entry.interval.ToString().c_str());
      reachable = true;
    }
    if (!reachable) std::printf("unreachable");
    std::printf("\n");
  }

  std::printf("\nModel-intrinsic effort (paper Sec. I: \"just 7 interval "
              "vertex visits and 6 edge traversals\"):\n");
  std::printf("  interval-vertex visits : %lld\n",
              static_cast<long long>(result.active_compute_calls));
  std::printf("  edge traversals        : %lld\n",
              static_cast<long long>(result.metrics.scatter_calls));
  std::printf("  messages sent          : %lld\n",
              static_cast<long long>(result.metrics.messages));
  std::printf("  supersteps             : %lld\n",
              static_cast<long long>(result.metrics.supersteps));
  return 0;
}
