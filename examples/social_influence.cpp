// Social influence: information-propagation analysis over an evolving
// follower network (the Twitter scenario), combining a TD and two TI
// algorithms on one interval graph:
//   * RH  — who a seed account can influence through time-respecting
//           paths, and how the influenced set grows over time,
//   * PR  — per-snapshot PageRank of the accounts, from which we report
//           the most-central accounts and how their rank drifts,
//   * WCC — per-snapshot community (weak component) counts.
//
//   $ ./social_influence [num-accounts]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "gen/generators.h"
#include "icm/icm_engine.h"

namespace {
using namespace graphite;  // Example code; the library never does this.
}

int main(int argc, char** argv) {
  const int64_t accounts = argc > 1 ? std::atoll(argv[1]) : 4000;

  GenOptions opt;
  opt.seed = 7;
  opt.num_vertices = accounts;
  opt.num_edges = accounts * 6;
  opt.snapshots = 16;
  opt.edge_lifespan = GenOptions::Lifespan::kLong;
  opt.mean_edge_lifespan = 12;
  const TemporalGraph g = Generate(opt);
  std::printf("Follower network: %zu accounts, %zu follow edges, %lld "
              "weekly snapshots\n\n",
              g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.horizon()));

  // Seed the campaign at the highest out-degree account.
  VertexIdx seed = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (g.OutEdges(v).size() > g.OutEdges(seed).size()) seed = v;
  }
  std::printf("Campaign seed: account %lld (out-degree %zu)\n",
              static_cast<long long>(g.vertex_id(seed)),
              g.OutEdges(seed).size());

  // --- Time-respecting influence spread. ---
  IcmReach reach(g, g.vertex_id(seed));
  auto reach_run = IcmEngine<IcmReach>::Run(g, reach);
  std::printf("\nInfluenced accounts over time (time-respecting "
              "reachability):\n");
  for (TimePoint t = 0; t < g.horizon(); t += 2) {
    int64_t influenced = 0;
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      if (reach_run.states[v].Get(t).value_or(0) == 1) ++influenced;
    }
    std::printf("  week %2lld: %6lld accounts (%.1f%%)\n",
                static_cast<long long>(t),
                static_cast<long long>(influenced),
                100.0 * static_cast<double>(influenced) /
                    static_cast<double>(g.num_vertices()));
  }

  // --- Per-snapshot PageRank: top accounts and rank drift. ---
  IcmPageRank pr(g);
  auto pr_run = IcmEngine<IcmPageRank>::Run(g, pr, PageRankOptions());
  const TimePoint first = 0, last = g.horizon() - 1;
  std::vector<std::pair<double, VertexIdx>> top;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    top.push_back({pr_run.states[v].Get(last).value_or(0.0), v});
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\nMost central accounts in the final snapshot "
              "(rank drift since week 0):\n");
  for (int i = 0; i < 5 && i < static_cast<int>(top.size()); ++i) {
    const auto [rank, v] = top[static_cast<size_t>(i)];
    const double rank0 = pr_run.states[v].Get(first).value_or(0.0);
    std::printf("  account %6lld: rank %.3f (week 0: %.3f)\n",
                static_cast<long long>(g.vertex_id(v)), rank, rank0);
  }

  // --- Per-snapshot communities. ---
  const TemporalGraph undirected = MakeUndirected(g);
  IcmWcc wcc;
  auto wcc_run = IcmEngine<IcmWcc>::Run(undirected, wcc);
  std::printf("\nWeak communities per snapshot:\n");
  for (TimePoint t = 0; t < g.horizon(); t += 4) {
    std::vector<int64_t> labels;
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      auto l = wcc_run.states[v].Get(t);
      if (l) labels.push_back(*l);
    }
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    std::printf("  week %2lld: %zu components\n",
                static_cast<long long>(t), labels.size());
  }

  std::printf("\nICM effort (reachability run): %s\n",
              reach_run.metrics.ToString().c_str());
  return 0;
}
