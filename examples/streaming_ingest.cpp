// Streaming ingestion: consuming a live feed of graph updates, sealing
// the evolving graph periodically, and answering temporal queries plus an
// ICM analytic after every seal (the paper's §VIII streaming + querying
// future work, end to end).
//
//   $ ./streaming_ingest [num-accounts] [num-events]
#include <cstdio>
#include <cstdlib>

#include "algorithms/icm_path.h"
#include "icm/icm_engine.h"
#include "query/temporal_query.h"
#include "stream/update_stream.h"

namespace {
using namespace graphite;  // Example code; the library never does this.
}

int main(int argc, char** argv) {
  const int accounts = argc > 1 ? std::atoi(argv[1]) : 300;
  const int events = argc > 2 ? std::atoi(argv[2]) : 3000;
  const TimePoint horizon = 24;

  const auto feed = SyntheticUpdateStream(2026, accounts, events, horizon);
  std::printf("Feed: %zu events over %lld ticks for %d accounts\n\n",
              feed.size(), static_cast<long long>(horizon), accounts);

  StreamingGraphBuilder builder;
  size_t cursor = 0;
  for (TimePoint checkpoint : {horizon / 3, 2 * horizon / 3, horizon - 1}) {
    while (cursor < feed.size() && feed[cursor].time <= checkpoint) {
      const Status s = builder.Apply(feed[cursor]);
      GRAPHITE_CHECK(s.ok());
      ++cursor;
    }
    auto sealed = builder.Seal(checkpoint + 1);
    GRAPHITE_CHECK(sealed.ok());
    const TemporalGraph& g = *sealed;

    std::printf("--- checkpoint t=%lld: sealed %zu vertices / %zu edges "
                "(%zu live edges in the stream) ---\n",
                static_cast<long long>(checkpoint), g.num_vertices(),
                g.num_edges(), builder.num_live_edges());

    // Temporal query: how did connectivity evolve up to this checkpoint?
    const TemporalHistogram h = CountOverTime(g);
    std::printf("  alive edges at t=0/%lld/%lld: %lld / %lld / %lld\n",
                static_cast<long long>(checkpoint / 2),
                static_cast<long long>(checkpoint),
                static_cast<long long>(h.edges[0]),
                static_cast<long long>(h.edges[static_cast<size_t>(
                    checkpoint / 2)]),
                static_cast<long long>(h.edges[static_cast<size_t>(
                    checkpoint)]));
    const PropertyStats cost = AggregateEdgeProperty(
        g, "travel-cost", Interval(0, checkpoint + 1));
    std::printf("  transfer fees: min %lld  max %lld  mean %.2f\n",
                static_cast<long long>(cost.min),
                static_cast<long long>(cost.max), cost.mean);

    // ICM analytic on the sealed prefix: reachability from account 0.
    IcmReach reach(g, 0);
    auto result = IcmEngine<IcmReach>::Run(g, reach);
    int64_t reached = 0;
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      for (const auto& e : result.states[v].entries()) {
        if (e.value == 1) {
          ++reached;
          break;
        }
      }
    }
    std::printf("  account 0 reaches %lld accounts so far "
                "(%lld ICM messages)\n\n",
                static_cast<long long>(reached),
                static_cast<long long>(result.metrics.messages));
  }
  std::printf("Stream fully consumed; the builder stays live for more "
              "events (seals are snapshots).\n");
  return 0;
}
