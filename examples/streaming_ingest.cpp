// Streaming ingestion: consuming a live feed of graph updates, sealing
// the evolving graph periodically, and answering temporal queries plus an
// ICM analytic after every seal (the paper's §VIII streaming + querying
// future work, end to end). The final section adds fault tolerance: the
// reachability run checkpoints at superstep barriers, is killed mid-run
// by an injected fault, and resumes from its latest snapshot with
// identical results.
//
//   $ ./streaming_ingest [num-accounts] [num-events]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "algorithms/icm_path.h"
#include "ckpt/checkpoint_store.h"
#include "ckpt/fault_injector.h"
#include "icm/icm_engine.h"
#include "query/temporal_query.h"
#include "stream/update_stream.h"

namespace {
using namespace graphite;  // Example code; the library never does this.

// Accounts reachable from account 0 in a finished reachability run.
int64_t CountReached(const TemporalGraph& g,
                     const IcmResult<IcmReach>& result) {
  int64_t reached = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : result.states[v].entries()) {
      if (e.value == 1) {
        ++reached;
        break;
      }
    }
  }
  return reached;
}

}  // namespace

int main(int argc, char** argv) {
  const int accounts = argc > 1 ? std::atoi(argv[1]) : 300;
  const int events = argc > 2 ? std::atoi(argv[2]) : 3000;
  const TimePoint horizon = 24;

  const auto feed = SyntheticUpdateStream(2026, accounts, events, horizon);
  std::printf("Feed: %zu events over %lld ticks for %d accounts\n\n",
              feed.size(), static_cast<long long>(horizon), accounts);

  StreamingGraphBuilder builder;
  std::optional<TemporalGraph> final_graph;
  size_t cursor = 0;
  for (TimePoint seal_time : {horizon / 3, 2 * horizon / 3, horizon - 1}) {
    while (cursor < feed.size() && feed[cursor].time <= seal_time) {
      const Status s = builder.Apply(feed[cursor]);
      GRAPHITE_CHECK(s.ok());
      ++cursor;
    }
    auto sealed = builder.Seal(seal_time + 1);
    GRAPHITE_CHECK(sealed.ok());
    const TemporalGraph& g = *sealed;

    std::printf("--- seal t=%lld: %zu vertices / %zu edges "
                "(%zu live edges in the stream) ---\n",
                static_cast<long long>(seal_time), g.num_vertices(),
                g.num_edges(), builder.num_live_edges());

    // Temporal query: how did connectivity evolve up to this seal?
    const TemporalHistogram h = CountOverTime(g);
    std::printf("  alive edges at t=0/%lld/%lld: %lld / %lld / %lld\n",
                static_cast<long long>(seal_time / 2),
                static_cast<long long>(seal_time),
                static_cast<long long>(h.edges[0]),
                static_cast<long long>(h.edges[static_cast<size_t>(
                    seal_time / 2)]),
                static_cast<long long>(h.edges[static_cast<size_t>(
                    seal_time)]));
    const PropertyStats cost = AggregateEdgeProperty(
        g, "travel-cost", Interval(0, seal_time + 1));
    std::printf("  transfer fees: min %lld  max %lld  mean %.2f\n",
                static_cast<long long>(cost.min),
                static_cast<long long>(cost.max), cost.mean);

    // ICM analytic on the sealed prefix: reachability from account 0.
    IcmReach reach(g, 0);
    auto result = IcmEngine<IcmReach>::Run(g, reach);
    std::printf("  account 0 reaches %lld accounts so far "
                "(%lld ICM messages)\n\n",
                static_cast<long long>(CountReached(g, result)),
                static_cast<long long>(result.metrics.messages));
    final_graph = std::move(*sealed);
  }
  std::printf("Stream fully consumed; the builder stays live for more "
              "events (seals are snapshots).\n\n");

  // --- Fault tolerance: checkpoint the analytic, kill it, resume it. ---
  // A long-running analytic on the sealed graph snapshots its interval
  // states and undelivered messages at every 2nd superstep barrier. An
  // injected fault kills the run mid-superstep; the resumed run loads the
  // latest CRC-valid snapshot and finishes with identical results.
  const TemporalGraph& g = *final_graph;
  const std::string snap_dir = "streaming-ingest-snapshots";
  IcmOptions options;
  options.num_workers = 4;
  options.runtime.checkpoint = CheckpointPolicy::EveryK(2);

  IcmReach clean_program(g, 0);
  const auto clean = IcmEngine<IcmReach>::Run(g, clean_program, options);

  CheckpointStore store(snap_dir, /*retain=*/2);
  FaultInjector fault;
  fault.ScheduleKill(/*superstep=*/2, /*worker=*/0);
  RecoveryContext crash;
  crash.store = &store;
  crash.fault = &fault;
  IcmReach doomed_program(g, 0);
  const auto doomed = IcmEngine<IcmReach>::Run(g, doomed_program, options, crash);
  std::printf("Fault injection: killed at superstep 2 (interrupted=%d, "
              "%zu snapshot(s) on disk)\n",
              doomed.metrics.interrupted ? 1 : 0,
              store.ListCheckpoints().size());

  RecoveryContext resume;
  resume.store = &store;
  resume.resume = true;
  IcmReach resumed_program(g, 0);
  const auto resumed =
      IcmEngine<IcmReach>::Run(g, resumed_program, options, resume);
  std::printf("Resumed from superstep %d: %lld reached, %lld messages "
              "(clean run: %lld reached, %lld messages)\n",
              resumed.metrics.resumed_from,
              static_cast<long long>(CountReached(g, resumed)),
              static_cast<long long>(resumed.metrics.messages),
              static_cast<long long>(CountReached(g, clean)),
              static_cast<long long>(clean.metrics.messages));
  GRAPHITE_CHECK(resumed.metrics.messages == clean.metrics.messages);

  std::error_code ec;
  std::filesystem::remove_all(snap_dir, ec);
  return 0;
}
