// Transit planner: journey queries over a road network with time-varying
// travel costs (the USRN scenario from the paper's intro).
//
// Generates a road-grid city whose edge properties (travel time / cost)
// churn over the day, persists it through the text IO, reloads it, and
// answers three classic TD queries from a depot stop:
//   * EAT  — earliest arrival at every stop,
//   * SSSP — cheapest cost per arrival interval (sample of stops),
//   * LD   — latest time one can leave each stop and still reach the
//            depot's opposite corner by the end of day.
//
//   $ ./transit_planner [grid-side]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "algorithms/common.h"
#include "algorithms/icm_path.h"
#include "gen/generators.h"
#include "icm/icm_engine.h"
#include "io/text_format.h"

namespace {
using namespace graphite;  // Example code; the library never does this.
}

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 10;

  GenOptions opt;
  opt.seed = 2026;
  opt.topology = GenOptions::Topology::kGrid;
  opt.num_vertices = static_cast<int64_t>(side) * side;
  // Enough snapshots that the far corner stays reachable across the grid
  // diameter even at the slowest travel times.
  opt.snapshots = std::max(24, 5 * side);
  opt.edge_lifespan = GenOptions::Lifespan::kFull;
  opt.prop_segments = 4;  // Rush hours change costs.
  opt.max_travel_time = 2;
  opt.max_travel_cost = 9;
  const TemporalGraph city = Generate(opt);
  std::printf("City grid: %zu stops, %zu road segments, %lld hourly "
              "snapshots\n",
              city.num_vertices(), city.num_edges(),
              static_cast<long long>(city.horizon()));

  // Persist and reload through the text format (as a pipeline would).
  const std::string path = "/tmp/graphite_city.tg";
  GRAPHITE_CHECK(WriteTextGraphFile(city, path).ok());
  auto reloaded = ReadTextGraphFile(path);
  GRAPHITE_CHECK(reloaded.ok());
  const TemporalGraph& g = *reloaded;
  std::printf("Round-tripped through %s\n\n", path.c_str());

  const VertexId depot = 0;                        // North-west corner.
  const VertexId mall = g.vertex_id(
      static_cast<VertexIdx>(g.num_vertices() - 1));  // South-east corner.

  // --- Earliest arrival from the depot. ---
  IcmEat eat(g, depot);
  auto eat_run = IcmEngine<IcmEat>::Run(g, eat);
  int64_t reachable = 0, latest_eat = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    int64_t best = kInfCost;
    for (const auto& e : eat_run.states[v].entries()) {
      best = std::min(best, e.value);
    }
    if (best != kInfCost) {
      ++reachable;
      latest_eat = std::max(latest_eat, best);
    }
  }
  std::printf("EAT: %lld/%zu stops reachable from the depot; the farthest "
              "is reached at hour %lld\n",
              static_cast<long long>(reachable), g.num_vertices(),
              static_cast<long long>(latest_eat));

  // --- Cheapest cost to the mall, per arrival interval. ---
  IcmSssp sssp(g, depot);
  auto sssp_run = IcmEngine<IcmSssp>::Run(g, sssp);
  std::printf("\nCheapest depot -> mall fares by arrival time:\n");
  const VertexIdx mall_idx = *g.IndexOf(mall);
  for (const auto& e : sssp_run.states[mall_idx].entries()) {
    if (e.value == kInfCost) continue;
    std::printf("  arrive during %-12s fare %lld\n",
                e.interval.ToString().c_str(),
                static_cast<long long>(e.value));
  }

  // --- Latest departure to reach the mall by end of day. ---
  const TemporalGraph reversed = ReverseGraph(g);
  IcmLatestDeparture ld(reversed, mall, /*deadline=*/g.horizon());
  auto ld_run = IcmEngine<IcmLatestDeparture>::Run(reversed, ld);
  std::printf("\nLatest departures to still reach the mall today "
              "(sample):\n");
  for (VertexIdx v = 0; v < g.num_vertices();
       v += g.num_vertices() / 8 + 1) {
    int64_t best = kNegInf;
    for (const auto& e : ld_run.states[v].entries()) {
      best = std::max(best, e.value);
    }
    if (best == kNegInf) {
      std::printf("  stop %4lld: cannot reach the mall today\n",
                  static_cast<long long>(g.vertex_id(v)));
    } else {
      std::printf("  stop %4lld: leave by hour %lld\n",
                  static_cast<long long>(g.vertex_id(v)),
                  static_cast<long long>(best));
    }
  }

  std::printf("\nICM effort: %s\n", sssp_run.metrics.ToString().c_str());
  return 0;
}
