#include "algorithms/centrality.h"

#include <algorithm>

#include "algorithms/icm_path.h"
#include "util/rng.h"

namespace graphite {

namespace {

// Earliest arrival per vertex from one ICM EAT run (kInfCost unreached).
std::vector<int64_t> EatFrom(const TemporalGraph& g, VertexIdx source,
                             const IcmOptions& options, RunMetrics* metrics) {
  IcmEat program(g, g.vertex_id(source));
  auto result = IcmEngine<IcmEat>::Run(g, program, options);
  metrics->Merge(result.metrics);
  std::vector<int64_t> eat(g.num_vertices(), kInfCost);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& entry : result.states[v].entries()) {
      eat[v] = std::min(eat[v], entry.value);
    }
  }
  return eat;
}

}  // namespace

ClosenessResult TemporalCloseness(const TemporalGraph& g,
                                  const ClosenessOptions& options) {
  ClosenessResult out;
  out.closeness.assign(g.num_vertices(), -1.0);
  const size_t n = g.num_vertices();
  if (n == 0) return out;

  if (options.num_samples <= 0 ||
      static_cast<size_t>(options.num_samples) >= n) {
    out.sources.resize(n);
    for (VertexIdx v = 0; v < n; ++v) out.sources[v] = v;
  } else {
    // Deterministic sample without replacement (partial Fisher-Yates).
    Rng rng(options.seed);
    std::vector<VertexIdx> pool(n);
    for (VertexIdx v = 0; v < n; ++v) pool[v] = v;
    for (int i = 0; i < options.num_samples; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng.Uniform(n - static_cast<size_t>(i)));
      std::swap(pool[static_cast<size_t>(i)], pool[j]);
      out.sources.push_back(pool[static_cast<size_t>(i)]);
    }
    std::sort(out.sources.begin(), out.sources.end());
  }

  for (VertexIdx source : out.sources) {
    const auto eat = EatFrom(g, source, options.icm, &out.metrics);
    const TimePoint start =
        std::max<TimePoint>(0, g.vertex_interval(source).start);
    double c = 0;
    for (VertexIdx u = 0; u < n; ++u) {
      if (u == source || eat[u] == kInfCost) continue;
      // Harmonic contribution of the propagation delay (+1 so same-instant
      // reaches contribute 1 rather than dividing by zero).
      c += 1.0 / static_cast<double>(eat[u] - start + 1);
    }
    out.closeness[source] = c;
  }
  return out;
}

std::vector<int64_t> PropagationRamp(const TemporalGraph& g, VertexId source,
                                     const IcmOptions& options) {
  RunMetrics scratch;
  auto idx = g.IndexOf(source);
  GRAPHITE_CHECK(idx.has_value());
  const auto eat = EatFrom(g, *idx, options, &scratch);
  std::vector<int64_t> ramp(static_cast<size_t>(g.horizon()), 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (eat[v] == kInfCost) continue;
    for (TimePoint t = std::max<TimePoint>(0, eat[v]); t < g.horizon(); ++t) {
      ++ramp[static_cast<size_t>(t)];
    }
  }
  return ramp;
}

std::vector<int64_t> TemporalDegreeCentrality(const TemporalGraph& g) {
  std::vector<int64_t> degree(g.num_vertices(), 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const StoredEdge& e : g.OutEdges(v)) {
      degree[v] += g.ClipToHorizon(e.interval).Length();
    }
  }
  return degree;
}

}  // namespace graphite
