// Time-dependent centrality measures (paper §I motivation: "TD centrality
// measures are used to estimate information propagation delays in social
// networks"). Built compositionally on the ICM path algorithms:
//
//   * Temporal closeness of v — harmonic mean of propagation delays from
//     v: C(v) = sum over u != v of 1 / (EAT_v(u) - t0), computed with one
//     ICM EAT run per source over a set of samples.
//   * Propagation delay profile — for a source, the number of vertices
//     first reached by each time-point (the influence-ramp curve).
//   * Temporal degree centrality — per-time-point out-degree mass
//     (cheap, purely structural; no ICM run).
#ifndef GRAPHITE_ALGORITHMS_CENTRALITY_H_
#define GRAPHITE_ALGORITHMS_CENTRALITY_H_

#include <vector>

#include "algorithms/common.h"
#include "icm/icm_engine.h"

namespace graphite {

/// Options for sampled temporal closeness.
struct ClosenessOptions {
  /// Number of sampled sources; 0 = every vertex (exact, O(V) ICM runs).
  int num_samples = 32;
  /// Deterministic sampling seed.
  uint64_t seed = 1;
  IcmOptions icm;
};

/// Result of a temporal-closeness computation.
struct ClosenessResult {
  /// closeness[v]: harmonic closeness of vertex v as a SOURCE (how fast it
  /// reaches the rest of the graph). Only filled for computed sources;
  /// sampled runs leave the rest at -1.
  std::vector<double> closeness;
  /// Vertices used as sources (all of them when exhaustive).
  std::vector<VertexIdx> sources;
  RunMetrics metrics;  ///< Summed over all EAT runs.
};

/// Harmonic temporal closeness via ICM EAT runs from each (sampled)
/// source: C(v) = sum_u 1 / (eat_v(u) - start_v + 1), u reachable.
ClosenessResult TemporalCloseness(const TemporalGraph& g,
                                  const ClosenessOptions& options = {});

/// Influence ramp of one source: ramp[t] = number of vertices whose
/// earliest time-respecting arrival from `source` is <= t.
std::vector<int64_t> PropagationRamp(const TemporalGraph& g, VertexId source,
                                     const IcmOptions& options = {});

/// Temporal degree centrality: degree[v] = sum over t of out-degree(v, t),
/// i.e. the total number of (edge, time-point) transmission opportunities.
std::vector<int64_t> TemporalDegreeCentrality(const TemporalGraph& g);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_CENTRALITY_H_
