#include "algorithms/common.h"

#include <algorithm>
#include <map>

namespace graphite {

namespace {

// Rebuilds `g` with edges transformed by `map_edge(src_id, dst_id)`;
// reverse=true swaps endpoints. `duplicate` additionally keeps the
// original edge direction (undirected expansion).
TemporalGraph RebuildWithEdges(const TemporalGraph& g, bool reverse,
                               bool duplicate) {
  TemporalGraphBuilder builder;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    builder.AddVertex(g.vertex_id(v), g.vertex_interval(v));
    for (const auto& [label, map] : g.VertexProperties(v)) {
      for (const auto& entry : map.entries()) {
        builder.SetVertexProperty(g.vertex_id(v), g.LabelName(label),
                                  entry.interval, entry.value);
      }
    }
  }
  EdgeId max_eid = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    max_eid = std::max(max_eid, g.edge(pos).eid);
  }
  auto add_edge = [&](EdgeId eid, VertexId src, VertexId dst, EdgePos pos) {
    builder.AddEdge(eid, src, dst, g.edge(pos).interval);
    for (const auto& [label, map] : g.EdgeProperties(pos)) {
      for (const auto& entry : map.entries()) {
        builder.SetEdgeProperty(eid, g.LabelName(label), entry.interval,
                                entry.value);
      }
    }
  };
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    const VertexId src_id = g.vertex_id(e.src);
    const VertexId dst_id = g.vertex_id(e.dst);
    if (duplicate) {
      add_edge(e.eid, src_id, dst_id, pos);
      add_edge(max_eid + 1 + static_cast<EdgeId>(pos), dst_id, src_id, pos);
    } else if (reverse) {
      add_edge(e.eid, dst_id, src_id, pos);
    } else {
      add_edge(e.eid, src_id, dst_id, pos);
    }
  }
  BuilderOptions options;
  options.validate = false;  // The source graph already passed validation.
  options.horizon = g.horizon();
  auto result = builder.Build(options);
  GRAPHITE_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace

TemporalGraph ReverseGraph(const TemporalGraph& g) {
  return RebuildWithEdges(g, /*reverse=*/true, /*duplicate=*/false);
}

TemporalGraph MakeUndirected(const TemporalGraph& g) {
  return RebuildWithEdges(g, /*reverse=*/false, /*duplicate=*/true);
}

std::vector<IntervalMap<int64_t>> OutDegreeProfiles(const TemporalGraph& g) {
  std::vector<IntervalMap<int64_t>> profiles(g.num_vertices());
  std::map<TimePoint, int64_t> deltas;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    deltas.clear();
    for (const StoredEdge& e : g.OutEdges(v)) {
      if (!e.interval.IsValid()) continue;
      deltas[e.interval.start] += 1;
      if (e.interval.end != kTimeMax) deltas[e.interval.end] -= 1;
    }
    int64_t running = 0;
    TimePoint prev = 0;
    for (const auto& [t, d] : deltas) {
      if (running > 0 && t > prev) {
        profiles[v].Set(Interval(prev, t), running);
      }
      running += d;
      prev = t;
    }
    if (running > 0) profiles[v].Set(Interval(prev, kTimeMax), running);
    profiles[v].Coalesce();
  }
  return profiles;
}

}  // namespace graphite
