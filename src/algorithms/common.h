// Shared helpers for the algorithm library: infinity sentinels, graph
// reversal / undirection (for LD, SCC, WCC), per-vertex temporal
// out-degree profiles (PageRank), and the TemporalResult representation
// used to compare outcomes across platforms.
#ifndef GRAPHITE_ALGORITHMS_COMMON_H_
#define GRAPHITE_ALGORITHMS_COMMON_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/builder.h"
#include "graph/temporal_graph.h"
#include "temporal/interval_map.h"

namespace graphite {

/// "Unreached" cost/arrival sentinel for path algorithms.
inline constexpr int64_t kInfCost = std::numeric_limits<int64_t>::max();
/// "No departure possible" sentinel for latest-departure.
inline constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min();

/// Canonical edge-property names used by the TD algorithms.
inline constexpr const char* kTravelTimeLabel = "travel-time";
inline constexpr const char* kTravelCostLabel = "travel-cost";

/// Per-vertex, per-time-point algorithm output, used to compare platforms:
/// result[v] maps time intervals to the algorithm's value for vertex v.
template <typename V>
using TemporalResult = std::vector<IntervalMap<V>>;

/// Value of `result[v]` at time t; `absent` when no entry covers t.
template <typename V>
V ResultAt(const TemporalResult<V>& result, VertexIdx v, TimePoint t,
           V absent) {
  auto val = result[v].Get(t);
  return val ? *val : absent;
}

/// Builds the reversed graph: every edge (u -> v) becomes (v -> u), keeping
/// ids, lifespans and properties. Used by LD (reverse traversal in space
/// and time) and the backward phases of SCC.
TemporalGraph ReverseGraph(const TemporalGraph& g);

/// Builds the undirected expansion: for every edge (u -> v) with id e, a
/// reverse edge (v -> u) is added with a fresh id, duplicating lifespan and
/// properties. Used by WCC.
TemporalGraph MakeUndirected(const TemporalGraph& g);

/// Temporal out-degree profile of every vertex: profile[v] maps each
/// interval to the number of out-edges alive throughout it (gaps where the
/// out-degree is zero). Used by PageRank's rank shares.
std::vector<IntervalMap<int64_t>> OutDegreeProfiles(const TemporalGraph& g);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_COMMON_H_
