// GoFFish-TS programs for the eight TD algorithms. Each follows the
// GoFFish pattern (paper §VII-A3): persistent per-vertex state, transit
// messages sent to the snapshot where they arrive, and the state
// explicitly passed forward to the next snapshot as a self-message — so a
// reached vertex stays active (and re-sends) in every later snapshot.
#ifndef GRAPHITE_ALGORITHMS_GOF_PROGRAMS_H_
#define GRAPHITE_ALGORITHMS_GOF_PROGRAMS_H_

#include <algorithm>

#include "algorithms/icm_clustering.h"
#include "baselines/goffish.h"

namespace graphite {

namespace gof_internal {

// Per-snapshot edge weights (same defaults as the ICM programs).
struct SnapshotWeights {
  std::optional<LabelId> time_label;
  std::optional<LabelId> cost_label;

  explicit SnapshotWeights(const TemporalGraph& g)
      : time_label(g.LabelIdOf(kTravelTimeLabel)),
        cost_label(g.LabelIdOf(kTravelCostLabel)) {}

  TimePoint TravelTime(const SnapshotView& view, EdgePos pos) const {
    if (!time_label) return 1;
    auto v = view.EdgePropertyAt(pos, *time_label);
    return v ? static_cast<TimePoint>(*v) : 1;
  }
  PropValue Cost(const SnapshotView& view, EdgePos pos) const {
    if (!cost_label) return 1;
    auto v = view.EdgePropertyAt(pos, *cost_label);
    return v ? *v : 1;
  }
};

}  // namespace gof_internal

/// GoFFish temporal SSSP: persistent best cost; transits carry cost +
/// edge cost to the arrival snapshot; state self-forwarded each snapshot.
class GofSssp {
 public:
  using Value = int64_t;
  using Message = int64_t;

  GofSssp(const TemporalGraph& g, VertexId source)
      : weights_(g), source_(source) {}

  Value Init(VertexIdx) const { return kInfCost; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == source_ &&
           t == std::max<TimePoint>(0, view.graph().vertex_interval(v).start);
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    if (view.graph().vertex_id(v) == source_ && val == kInfCost) val = 0;
    for (const Message& m : msgs) val = std::min(val, m);
    if (val == kInfCost) return;
    const TimePoint t = ctx.time();
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      ctx.SendTemporal(e.dst, t + weights_.TravelTime(view, pos),
                       val + weights_.Cost(view, pos));
    });
    ctx.SendTemporal(v, t + 1, val);  // Explicit state hand-over.
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId source_;
};

/// GoFFish EAT: persistent earliest arrival.
class GofEat {
 public:
  using Value = int64_t;
  using Message = int64_t;

  GofEat(const TemporalGraph& g, VertexId source)
      : weights_(g), source_(source) {}

  Value Init(VertexIdx) const { return kInfCost; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == source_ &&
           t == std::max<TimePoint>(0, view.graph().vertex_interval(v).start);
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    const TimePoint t = ctx.time();
    if (view.graph().vertex_id(v) == source_) val = std::min(val, t);
    for (const Message& m : msgs) val = std::min(val, m);
    if (val == kInfCost) return;
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      const TimePoint arr = t + weights_.TravelTime(view, pos);
      ctx.SendTemporal(e.dst, arr, arr);
    });
    ctx.SendTemporal(v, t + 1, val);
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId source_;
};

/// GoFFish reachability: boolean EAT.
class GofReach {
 public:
  using Value = uint8_t;
  using Message = uint8_t;

  GofReach(const TemporalGraph& g, VertexId source)
      : weights_(g), source_(source) {}

  Value Init(VertexIdx) const { return 0; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == source_ &&
           t == std::max<TimePoint>(0, view.graph().vertex_interval(v).start);
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    if (view.graph().vertex_id(v) == source_ || !msgs.empty()) val = 1;
    if (val == 0) return;
    const TimePoint t = ctx.time();
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      ctx.SendTemporal(e.dst, t + weights_.TravelTime(view, pos), 1);
    });
    ctx.SendTemporal(v, t + 1, 1);
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId source_;
};

/// GoFFish TMST: EAT plus parent id, minimized lexicographically.
class GofTmst {
 public:
  using Value = std::pair<int64_t, int64_t>;
  using Message = std::pair<int64_t, int64_t>;

  GofTmst(const TemporalGraph& g, VertexId source)
      : weights_(g), source_(source) {}

  Value Init(VertexIdx) const { return {kInfCost, -1}; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == source_ &&
           t == std::max<TimePoint>(0, view.graph().vertex_interval(v).start);
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    const VertexId me = view.graph().vertex_id(v);
    const TimePoint t = ctx.time();
    if (me == source_ && val.first == kInfCost) val = {t, me};
    for (const Message& m : msgs) val = std::min(val, m);
    if (val.first == kInfCost) return;
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      const TimePoint arr = t + weights_.TravelTime(view, pos);
      ctx.SendTemporal(e.dst, arr, {arr, me});
    });
    ctx.SendTemporal(v, t + 1, val);
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId source_;
};

/// GoFFish FAST: persistent latest feasible journey start; the source
/// starts a fresh journey at every snapshot it is alive.
class GofFast {
 public:
  using Value = int64_t;
  using Message = int64_t;

  GofFast(const TemporalGraph& g, VertexId source)
      : weights_(g), source_(source) {}

  Value Init(VertexIdx) const { return kNegInf; }

  bool InitialActive(VertexIdx v, TimePoint, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == source_;
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    const TimePoint t = ctx.time();
    if (view.graph().vertex_id(v) == source_) {
      // A fresh journey departing now dominates any pass-through start.
      view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
        ctx.SendTemporal(e.dst, t + weights_.TravelTime(view, pos), t);
      });
      return;
    }
    for (const Message& m : msgs) val = std::max(val, m);
    if (val == kNegInf) return;
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      ctx.SendTemporal(e.dst, t + weights_.TravelTime(view, pos), val);
    });
    ctx.SendTemporal(v, t + 1, val);
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId source_;
};

/// GoFFish latest departure. Run on the REVERSED graph with
/// GoffishOptions.reverse_time = true; candidate departures are delivered
/// to the predecessor within the same snapshot (inner superstep) and
/// state is handed to the PREVIOUS snapshot.
class GofLatestDeparture {
 public:
  using Value = int64_t;
  using Message = int64_t;

  GofLatestDeparture(const TemporalGraph& reversed, VertexId target,
                     TimePoint deadline)
      : weights_(reversed), target_(target), deadline_(deadline) {}

  Value Init(VertexIdx) const { return kNegInf; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == target_ && t <= deadline_;
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    const TimePoint t = ctx.time();
    bool changed = false;
    if (view.graph().vertex_id(v) == target_ && val == kNegInf) {
      const Interval& span = view.graph().vertex_interval(v);
      val = std::min<int64_t>(deadline_, span.end - 1);
      changed = true;
    }
    for (const Message& m : msgs) {
      if (m > val) {
        val = m;
        changed = true;
      }
    }
    if (val == kNegInf) return;
    // Candidate departures go to predecessors within THIS snapshot, so
    // send only on the snapshot's first inner superstep or on a value
    // change — otherwise the inner loop would ping-pong forever.
    if (ctx.superstep() > 0 && !changed) return;
    // Reversed edge v->u stands for original u->v: u may depart at t if
    // it arrives by our latest time.
    view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos pos) {
      if (t + weights_.TravelTime(view, pos) <= val) {
        ctx.SendTemporal(e.dst, t, t);
      }
    });
    if (t - 1 >= 0) ctx.SendTemporal(v, t - 1, val);
  }

 private:
  gof_internal::SnapshotWeights weights_;
  VertexId target_;
  TimePoint deadline_;
};

/// GoFFish triangle counting: the 4-superstep closure protocol runs
/// entirely within each snapshot (triangle edges are concurrent); no
/// temporal messages. The persistent TcState is reset per snapshot.
class GofTriangle {
 public:
  using Value = TcState;
  using Message = std::pair<int64_t, int64_t>;  ///< (hop, origin id).

  Value Init(VertexIdx) const { return TcState{}; }

  bool InitialActive(VertexIdx, TimePoint, const SnapshotView&) const {
    return true;  // Every alive vertex starts a closure probe.
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    const VertexId me = view.graph().vertex_id(v);
    const TimePoint t = ctx.time();
    if (ctx.superstep() == 0) {
      val = TcState{};  // New snapshot, fresh count.
      val.started = true;
      view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos) {
        ctx.SendTemporal(e.dst, t, {1, me});
      });
      return;
    }
    for (const Message& m : msgs) {
      switch (m.first) {
        case 1:
          if (m.second != me) val.forward.push_back(m.second);
          break;
        case 2:
          val.close.push_back(m.second);
          break;
        case 3:
          ++val.triangles;
          break;
        default:
          GRAPHITE_CHECK(false);
      }
    }
    if (ctx.superstep() == 1) {
      view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos) {
        const VertexId dst_id = view.graph().vertex_id(e.dst);
        for (int64_t origin : val.forward) {
          if (origin != dst_id) ctx.SendTemporal(e.dst, t, {2, origin});
        }
      });
    } else if (ctx.superstep() == 2) {
      view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos) {
        const VertexId dst_id = view.graph().vertex_id(e.dst);
        for (int64_t origin : val.close) {
          if (origin == dst_id) ctx.SendTemporal(e.dst, t, {3, origin});
        }
      });
    }
  }
};

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_GOF_PROGRAMS_H_
