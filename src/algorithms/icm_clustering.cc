#include "algorithms/icm_clustering.h"

namespace graphite {

LccRun RunIcmLcc(const TemporalGraph& g, const IcmOptions& options) {
  IcmTriangleCount tc;
  auto result =
      IcmEngine<IcmTriangleCount>::Run(g, tc, TriangleOptions(options));
  const TemporalResult<int64_t> triangles = TriangleCounts(result.states);
  const std::vector<IntervalMap<int64_t>> degrees = OutDegreeProfiles(g);

  LccRun run;
  run.metrics = std::move(result.metrics);
  run.lcc.resize(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    // lcc = triangles / (d * (d - 1)), refined wherever either the
    // triangle count or the out-degree changes.
    for (const auto& tri : triangles[v].entries()) {
      run.lcc[v].Set(tri.interval, 0.0);
      if (tri.value == 0) continue;
      degrees[v].ForEachIntersecting(
          tri.interval, [&](const Interval& sub, int64_t d) {
            if (d >= 2) {
              run.lcc[v].Set(sub, static_cast<double>(tri.value) /
                                      static_cast<double>(d * (d - 1)));
            }
          });
    }
    run.lcc[v].Coalesce();
  }
  return run;
}

}  // namespace graphite
