// ICM implementations of the TD clustering algorithms (paper §V):
// Triangle Counting (TC) and Local Clustering Coefficient (LCC).
//
// Semantics: a directed triangle u->v->w->u is counted for its origin u
// over the interval where ALL THREE edges co-exist (their lifespans
// intersect); "neighbors have to be time-respecting". The 4-superstep
// message protocol follows the paper's description: each vertex messages
// its neighbors (hop 1), which message their neighbors (hop 2); the 2-hop
// neighbor checks adjacency back to the origin and reports the closure
// (hop 3). Interval intersection is enforced automatically by warp: every
// forwarded message inherits the intersection of the path-so-far with the
// next edge's lifespan.
#ifndef GRAPHITE_ALGORITHMS_ICM_CLUSTERING_H_
#define GRAPHITE_ALGORITHMS_ICM_CLUSTERING_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/common.h"
#include "icm/icm_engine.h"

namespace graphite {

/// Per-interval TC vertex state.
struct TcState {
  /// Origins received at hop 1, to forward to our neighbors (duplicates
  /// preserved: parallel edges form distinct triangles).
  std::vector<int64_t> forward;
  /// Origins received at hop 2, to close back if we are adjacent.
  std::vector<int64_t> close;
  /// Triangles counted for this vertex as origin.
  int64_t triangles = 0;
  /// Marks the superstep-0 initialization (triggers the first scatter).
  bool started = false;

  bool operator==(const TcState& other) const {
    return forward == other.forward && close == other.close &&
           triangles == other.triangles && started == other.started;
  }
};

/// Triangle counting: result state carries triangles-per-interval.
class IcmTriangleCount {
 public:
  using State = TcState;
  /// (hop, origin vertex id).
  using Message = std::pair<int64_t, int64_t>;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  static constexpr int kMaxSupersteps = 4;

  State Init(VertexIdx) const { return TcState{}; }

  void Compute(IcmVertexContext<IcmTriangleCount>& ctx,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      TcState s;
      s.started = true;
      ctx.SetState(ctx.interval(), s);
      return;
    }
    TcState s = ctx.state();
    bool changed = false;
    for (const Message& m : msgs) {
      switch (m.first) {
        case 1:
          if (m.second != ctx.vertex_id()) {  // u->v->u is not a triangle.
            s.forward.push_back(m.second);
            changed = true;
          }
          break;
        case 2:
          s.close.push_back(m.second);
          changed = true;
          break;
        case 3:
          GRAPHITE_CHECK(m.second == ctx.vertex_id());
          ++s.triangles;
          changed = true;
          break;
        default:
          GRAPHITE_CHECK(false);
      }
    }
    if (changed) {
      std::sort(s.forward.begin(), s.forward.end());
      std::sort(s.close.begin(), s.close.end());
      ctx.SetState(ctx.interval(), s);
    }
  }

  void Scatter(IcmScatterContext<IcmTriangleCount>& ctx, const State& s) {
    const VertexId dst_id = ctx.graph().vertex_id(ctx.edge().dst);
    switch (ctx.superstep()) {
      case 0: {
        // Announce ourselves to every time-respecting neighbor.
        const VertexId me = ctx.graph().vertex_id(ctx.edge().src);
        ctx.SendInherit({1, me});
        break;
      }
      case 1:
        // Forward each pending origin one hop further (not back to it).
        for (int64_t origin : s.forward) {
          if (origin != dst_id) ctx.SendInherit({2, origin});
        }
        break;
      case 2:
        // Close the triangle: we are adjacent to the origin over this
        // slice, so report one closure per pending request.
        for (int64_t origin : s.close) {
          if (origin == dst_id) ctx.SendInherit({3, origin});
        }
        break;
      default:
        break;  // Superstep 3 only counts; nothing to send.
    }
  }
};

/// IcmOptions preset for the 4-superstep clustering protocols.
inline IcmOptions TriangleOptions(IcmOptions base = {}) {
  base.max_supersteps = IcmTriangleCount::kMaxSupersteps;
  return base;
}

/// Extracts triangles-per-interval from a finished TC run.
inline TemporalResult<int64_t> TriangleCounts(
    const std::vector<IntervalMap<TcState>>& states) {
  TemporalResult<int64_t> out(states.size());
  for (size_t v = 0; v < states.size(); ++v) {
    for (const auto& entry : states[v].entries()) {
      out[v].Set(entry.interval, entry.value.triangles);
    }
    out[v].Coalesce();
  }
  return out;
}

/// Local clustering coefficient per interval:
///   lcc(u, t) = triangles(u, t) / (d(u, t) * (d(u, t) - 1))
/// with d the out-degree at t (directed convention; 0 when d < 2). The
/// protocol is the TC closure count plus the degree normalization.
struct LccRun {
  TemporalResult<double> lcc;
  RunMetrics metrics;
};

LccRun RunIcmLcc(const TemporalGraph& g, const IcmOptions& options);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_ICM_CLUSTERING_H_
