// ICM implementations of the six TD path algorithms (paper §V):
//   SSSP — time-respecting path with minimum travel cost (Alg. 1),
//   EAT  — earliest arrival time,
//   TMST — time-minimum spanning tree (EAT + parent pointers),
//   RH   — time-respecting reachability,
//   FAST — fastest (minimum-duration) path,
//   LD   — latest departure time (reverse traversal, runs on the
//          reversed graph).
//
// Each program mirrors the structure of Alg. 1: warp pre-aligns messages
// with the partitioned states, so Compute is a plain fold (min/max) and
// Scatter shifts the interval by the edge's travel time.
#ifndef GRAPHITE_ALGORITHMS_ICM_PATH_H_
#define GRAPHITE_ALGORITHMS_ICM_PATH_H_

#include <algorithm>
#include <span>
#include <utility>

#include "algorithms/common.h"
#include "icm/icm_engine.h"

namespace graphite {

/// Resolves the travel-time / travel-cost labels of a graph once, so the
/// per-slice property lookups inside Scatter are by LabelId.
struct PathLabels {
  std::optional<LabelId> travel_time;
  std::optional<LabelId> travel_cost;

  explicit PathLabels(const TemporalGraph& g)
      : travel_time(g.LabelIdOf(kTravelTimeLabel)),
        travel_cost(g.LabelIdOf(kTravelCostLabel)) {}

  template <typename Ctx>
  TimePoint TravelTime(const Ctx& ctx) const {
    if (!travel_time) return 1;
    auto v = ctx.EdgeProp(*travel_time);
    return v ? static_cast<TimePoint>(*v) : 1;
  }
  template <typename Ctx>
  PropValue TravelCost(const Ctx& ctx) const {
    if (!travel_cost) return 1;
    auto v = ctx.EdgeProp(*travel_cost);
    return v ? *v : 1;
  }
};

/// Temporal single-source shortest (cheapest) path — the paper's Alg. 1.
/// State: minimum known travel cost from the source, per arrival interval.
class IcmSssp {
 public:
  using State = int64_t;
  using Message = int64_t;

  IcmSssp(const TemporalGraph& g, VertexId source)
      : labels_(g), source_(source) {}

  State Init(VertexIdx) const { return kInfCost; }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void Compute(IcmVertexContext<IcmSssp>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) ctx.SetState(ctx.interval(), 0);
      return;
    }
    Message min_val = kInfCost;
    for (const Message& m : msgs) min_val = std::min(min_val, m);
    if (min_val < ctx.state()) ctx.SetState(ctx.interval(), min_val);
  }

  void Scatter(IcmScatterContext<IcmSssp>& ctx, const State& cost) {
    const TimePoint tt = labels_.TravelTime(ctx);
    const PropValue tc = labels_.TravelCost(ctx);
    // Departing anywhere in this slice arrives no earlier than start+tt;
    // the cost stays valid for every later arrival (one can wait).
    ctx.Send(Interval(ctx.interval().start + tt, kTimeMax), cost + tc);
  }

 private:
  PathLabels labels_;
  VertexId source_;
};

/// Earliest arrival time from the source. State: earliest time-respecting
/// arrival, per interval; only the first reachable instant matters, which
/// the interval [arrival, inf) of each message encodes.
class IcmEat {
 public:
  using State = int64_t;
  using Message = int64_t;

  IcmEat(const TemporalGraph& g, VertexId source)
      : labels_(g), source_(source) {}

  State Init(VertexIdx) const { return kInfCost; }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void Compute(IcmVertexContext<IcmEat>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) {
        ctx.SetState(ctx.interval(), ctx.interval().start);
      }
      return;
    }
    Message min_val = kInfCost;
    for (const Message& m : msgs) min_val = std::min(min_val, m);
    if (min_val < ctx.state()) ctx.SetState(ctx.interval(), min_val);
  }

  void Scatter(IcmScatterContext<IcmEat>& ctx, const State& arrival) {
    const TimePoint tt = labels_.TravelTime(ctx);
    // The slice already lies within the state's validity, so departing at
    // its start is feasible (arrival <= slice.start).
    (void)arrival;
    const TimePoint arr = ctx.interval().start + tt;
    ctx.Send(Interval(arr, kTimeMax), arr);
  }

 private:
  PathLabels labels_;
  VertexId source_;
};

/// Time-minimum spanning tree: EAT plus the parent vertex id carried in
/// state and message (paper §V), from which the tree is rebuilt.
class IcmTmst {
 public:
  /// (arrival time, parent vertex id); kInfCost/-1 when unreached.
  using State = std::pair<int64_t, int64_t>;
  using Message = std::pair<int64_t, int64_t>;

  IcmTmst(const TemporalGraph& g, VertexId source)
      : labels_(g), source_(source) {}

  State Init(VertexIdx) const { return {kInfCost, -1}; }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);  // Lexicographic: arrival, then parent id.
  }

  void Compute(IcmVertexContext<IcmTmst>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) {
        ctx.SetState(ctx.interval(), {ctx.interval().start, ctx.vertex_id()});
      }
      return;
    }
    Message best = {kInfCost, -1};
    bool any = false;
    for (const Message& m : msgs) {
      if (!any || m < best) best = m;
      any = true;
    }
    if (any && best < ctx.state()) ctx.SetState(ctx.interval(), best);
  }

  void Scatter(IcmScatterContext<IcmTmst>& ctx, const State&) {
    const TimePoint tt = labels_.TravelTime(ctx);
    const TimePoint arr = ctx.interval().start + tt;
    const VertexId me = ctx.graph().vertex_id(ctx.edge().src);
    ctx.Send(Interval(arr, kTimeMax), {arr, me});
  }

 private:
  PathLabels labels_;
  VertexId source_;
};

/// Time-respecting reachability from the source: state is 1 over the
/// intervals where the vertex has been reached, else 0.
class IcmReach {
 public:
  using State = uint8_t;
  using Message = uint8_t;

  IcmReach(const TemporalGraph& g, VertexId source)
      : labels_(g), source_(source) {}

  State Init(VertexIdx) const { return 0; }

  static Message Combine(const Message&, const Message&) { return 1; }

  void Compute(IcmVertexContext<IcmReach>& ctx,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) ctx.SetState(ctx.interval(), 1);
      return;
    }
    if (!msgs.empty() && ctx.state() == 0) ctx.SetState(ctx.interval(), 1);
  }

  void Scatter(IcmScatterContext<IcmReach>& ctx, const State&) {
    const TimePoint tt = labels_.TravelTime(ctx);
    ctx.Send(Interval(ctx.interval().start + tt, kTimeMax), 1);
  }

 private:
  PathLabels labels_;
  VertexId source_;
};

/// Fastest (minimum-duration) path. Messages carry the journey's start
/// time at the source; a state interval holds the latest such start time
/// with which the vertex can be reached by each instant, so duration =
/// interval.start - state at the first covered instant. The source emits
/// one message per distinct departure time-point of each out-edge slice
/// (distinct starts are genuinely different journeys); downstream
/// propagation is per-slice like SSSP.
class IcmFast {
 public:
  using State = int64_t;  ///< Latest feasible journey start; kNegInf unset.
  using Message = int64_t;

  IcmFast(const TemporalGraph& g, VertexId source)
      : labels_(g), source_(source) {}

  State Init(VertexIdx) const { return kNegInf; }

  static Message Combine(const Message& a, const Message& b) {
    return std::max(a, b);
  }

  void Compute(IcmVertexContext<IcmFast>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) {
        ctx.SetState(ctx.interval(), ctx.interval().start);
      }
      return;
    }
    Message max_val = kNegInf;
    for (const Message& m : msgs) max_val = std::max(max_val, m);
    if (max_val > ctx.state()) ctx.SetState(ctx.interval(), max_val);
  }

  void Scatter(IcmScatterContext<IcmFast>& ctx, const State& start) {
    const TimePoint tt = labels_.TravelTime(ctx);
    const Interval& slice = ctx.interval();
    if (ctx.superstep() == 0 &&
        ctx.graph().vertex_id(ctx.edge().src) == source_) {
      // One journey per departure instant in the slice; clip to horizon so
      // open-ended source lifespans stay finite.
      const Interval window =
          slice.Intersect(Interval(slice.start, ctx.graph().horizon()));
      for (TimePoint t = window.start; t < window.end; ++t) {
        ctx.Send(Interval(t + tt, kTimeMax), t);
      }
      return;
    }
    if (start == kNegInf) return;
    ctx.Send(Interval(slice.start + tt, kTimeMax), start);
  }

 private:
  PathLabels labels_;
  VertexId source_;
};

/// Latest departure time to reach `target` by `deadline`. Runs on the
/// REVERSED graph (pass ReverseGraph(g)); traversal goes backwards in
/// space and time, with message validity [-inf, departure+1) as in the
/// paper ("setting its message interval to [-inf, t.end - travelTime)").
/// State: the latest instant one can leave the vertex and still make it.
class IcmLatestDeparture {
 public:
  using State = int64_t;  ///< Latest departure; kNegInf when impossible.
  using Message = int64_t;

  /// `reversed` must be ReverseGraph of the graph under analysis.
  IcmLatestDeparture(const TemporalGraph& reversed, VertexId target,
                     TimePoint deadline)
      : labels_(reversed), target_(target), deadline_(deadline) {}

  State Init(VertexIdx) const { return kNegInf; }

  static Message Combine(const Message& a, const Message& b) {
    return std::max(a, b);
  }

  void Compute(IcmVertexContext<IcmLatestDeparture>& ctx,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == target_ && deadline_ >= ctx.interval().start) {
        // Clamp to the target's lifespan: one cannot arrive after the
        // target ceases to exist (nor before it starts).
        ctx.SetState(ctx.interval(),
                     std::min<int64_t>(deadline_, ctx.interval().end - 1));
      }
      return;
    }
    Message max_val = kNegInf;
    for (const Message& m : msgs) max_val = std::max(max_val, m);
    if (max_val > ctx.state()) ctx.SetState(ctx.interval(), max_val);
  }

  void Scatter(IcmScatterContext<IcmLatestDeparture>& ctx,
               const State& latest) {
    if (latest == kNegInf) return;
    const TimePoint tt = labels_.TravelTime(ctx);
    // Original edge u->v appears here as v->u. A departure from u at time
    // t needs t within the edge slice and t + tt <= latest arrival bound.
    const Interval& slice = ctx.interval();
    const TimePoint depart = std::min(slice.end - 1, latest - tt);
    if (depart < slice.start) return;
    // Being at u at any instant <= depart suffices (one can wait there).
    ctx.Send(Interval(kTimeMin, depart + 1), depart);
  }

 private:
  PathLabels labels_;
  VertexId target_;
  TimePoint deadline_;
};

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_ICM_PATH_H_
