#include "algorithms/icm_ti.h"

namespace graphite {

SccRun RunIcmScc(const TemporalGraph& g, const TemporalGraph& reversed,
                 const IcmOptions& options) {
  const size_t n = g.num_vertices();
  GRAPHITE_CHECK(reversed.num_vertices() == n);
  SccRun run;
  run.components.resize(n);
  std::vector<IntervalMap<int64_t>> assigned(n);

  // Remaining unassigned coverage, measured within the horizon window.
  auto remaining = [&]() {
    int64_t rem = 0;
    for (VertexIdx v = 0; v < n; ++v) {
      const Interval span = g.ClipToHorizon(g.vertex_interval(v));
      if (span.IsEmpty()) continue;
      int64_t covered = 0;
      assigned[v].ForEachIntersecting(span, [&](const Interval& iv, int64_t) {
        covered += iv.end - iv.start;
      });
      rem += (span.end - span.start) - covered;
    }
    return rem;
  };

  while (remaining() > 0) {
    ++run.rounds;
    // Phase 1: forward max-id coloring of the unassigned regions.
    IcmSccForward fwd(&assigned, g.horizon());
    auto fr = IcmEngine<IcmSccForward>::Run(g, fwd, options);
    run.metrics.Merge(fr.metrics);

    // Phase 2: pivots flood their color backward through equal-colored
    // unassigned regions on the reversed graph.
    IcmSccBackward bwd(&fr.states, &assigned);
    auto br = IcmEngine<IcmSccBackward>::Run(reversed, bwd, options);
    run.metrics.Merge(br.metrics);

    int64_t newly = 0;
    for (VertexIdx v = 0; v < n; ++v) {
      for (const auto& entry : br.states[v].entries()) {
        if (entry.value < 0) continue;
        assigned[v].Set(entry.interval, entry.value);
        run.components[v].Set(entry.interval, entry.value);
        newly += entry.interval.end - entry.interval.start;
      }
    }
    // Progress is guaranteed: every unassigned region contains at least
    // one pivot (the max id reachable within it), which labels itself.
    GRAPHITE_CHECK(newly > 0);
  }
  for (auto& map : run.components) map.Coalesce();
  return run;
}

}  // namespace graphite
