// ICM implementations of the four TI algorithms (paper §V): BFS, WCC, PR
// and SCC. Their Compute bodies are the classic vertex-centric kernels —
// "the VCM logic for these algorithms can be reused for compute since ICM
// by default assigns appropriate intervals to the states and messages":
// messages inherit the intersection of state and edge lifespan, so a value
// propagated along a path is valid exactly where the whole path co-exists,
// which is the per-snapshot (time-independent) semantics.
#ifndef GRAPHITE_ALGORITHMS_ICM_TI_H_
#define GRAPHITE_ALGORITHMS_ICM_TI_H_

#include <algorithm>
#include <span>
#include <vector>

#include "algorithms/common.h"
#include "icm/icm_engine.h"

namespace graphite {

/// Per-snapshot BFS depth from a source vertex. State: hop distance,
/// kInfCost when unreached at that time-point.
class IcmBfs {
 public:
  using State = int64_t;
  using Message = int64_t;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  explicit IcmBfs(VertexId source) : source_(source) {}

  State Init(VertexIdx) const { return kInfCost; }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void Compute(IcmVertexContext<IcmBfs>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (ctx.vertex_id() == source_) ctx.SetState(ctx.interval(), 0);
      return;
    }
    Message min_val = kInfCost;
    for (const Message& m : msgs) min_val = std::min(min_val, m);
    if (min_val < ctx.state()) ctx.SetState(ctx.interval(), min_val);
  }

  void Scatter(IcmScatterContext<IcmBfs>& ctx, const State& depth) {
    // TI: the message inherits the scatter slice, so the depth is valid
    // exactly where the path-so-far and this edge co-exist.
    ctx.SendInherit(depth + 1);
  }

 private:
  VertexId source_;
};

/// Per-snapshot weakly connected components: min-vertex-id label
/// propagation. Run on MakeUndirected(g).
class IcmWcc {
 public:
  using State = int64_t;  ///< Component label (min vid), or kInfCost.
  using Message = int64_t;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  State Init(VertexIdx) const { return kInfCost; }

  static Message Combine(const Message& a, const Message& b) {
    return std::min(a, b);
  }

  void Compute(IcmVertexContext<IcmWcc>& ctx, std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      ctx.SetState(ctx.interval(), ctx.vertex_id());
      return;
    }
    Message min_val = kInfCost;
    for (const Message& m : msgs) min_val = std::min(min_val, m);
    if (min_val < ctx.state()) ctx.SetState(ctx.interval(), min_val);
  }

  void Scatter(IcmScatterContext<IcmWcc>& ctx, const State& label) {
    ctx.SendInherit(label);
  }
};

/// Per-snapshot PageRank with the unnormalized Pregel formula
/// rank = 0.15 + 0.85 * sum(shares), share = rank / outdeg(t). Runs in
/// always-active mode for a fixed number of supersteps (paper: 10).
class IcmPageRank {
 public:
  using State = double;
  using Message = double;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  static constexpr int kIterations = 10;

  explicit IcmPageRank(const TemporalGraph& g)
      : degrees_(OutDegreeProfiles(g)) {}

  State Init(VertexIdx) const { return 1.0; }

  static Message Combine(const Message& a, const Message& b) { return a + b; }

  void Compute(IcmVertexContext<IcmPageRank>& ctx,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      // Seed the propagation: rewrite the initial rank so superstep 0
      // scatters the first shares.
      ctx.SetState(ctx.interval(), 1.0);
      return;
    }
    double sum = 0;
    for (const Message& m : msgs) sum += m;
    ctx.SetState(ctx.interval(), 0.15 + 0.85 * sum);
  }

  void Scatter(IcmScatterContext<IcmPageRank>& ctx, const State& rank) {
    // The out-degree varies over time; split the slice at the vertex's
    // degree-profile boundaries so each share is rank / outdeg(t).
    const IntervalMap<int64_t>& profile = degrees_[ctx.edge().src];
    profile.ForEachIntersecting(
        ctx.interval(), [&](const Interval& sub, int64_t deg) {
          ctx.Send(sub, rank / static_cast<double>(deg));
        });
  }

 private:
  std::vector<IntervalMap<int64_t>> degrees_;
};

/// IcmOptions preset for PageRank (always-active, fixed supersteps:
/// superstep 0 seeds, then kIterations rank updates).
inline IcmOptions PageRankOptions(IcmOptions base = {}) {
  base.always_active = true;
  base.max_supersteps = IcmPageRank::kIterations + 1;
  return base;
}

// ---------------------------------------------------------------------
// SCC: forward-backward coloring (Pregel-style, per time-point). Each
// round: (1) propagate the maximum vertex id forward through unassigned
// regions ("colors"); (2) on the reversed graph, each pivot (color equal
// to its own id) floods its color backward through same-colored regions —
// everything it reaches is its SCC; (3) mark assigned, repeat.
// ---------------------------------------------------------------------

/// Phase 1: forward max-id color propagation over unassigned regions.
class IcmSccForward {
 public:
  using State = int64_t;  ///< Current color; -1 outside unassigned regions.
  using Message = int64_t;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  /// SCC is computed over the snapshot window [0, horizon); open-ended
  /// lifespans are clipped so the assignment loop terminates.
  IcmSccForward(const std::vector<IntervalMap<int64_t>>* assigned,
                TimePoint horizon)
      : assigned_(assigned), horizon_(horizon) {}

  State Init(VertexIdx) const { return -1; }

  static Message Combine(const Message& a, const Message& b) {
    return std::max(a, b);
  }

  void Compute(IcmVertexContext<IcmSccForward>& ctx,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      // Color every still-unassigned sub-slice with the own id.
      ForEachUnassigned(ctx, [&](const Interval& slice) {
        ctx.SetState(slice, ctx.vertex_id());
      });
      return;
    }
    Message max_val = -1;
    for (const Message& m : msgs) max_val = std::max(max_val, m);
    if (max_val <= ctx.state()) return;
    ForEachUnassigned(ctx, [&](const Interval& slice) {
      ctx.SetState(slice, max_val);
    });
  }

  void Scatter(IcmScatterContext<IcmSccForward>& ctx, const State& color) {
    if (color >= 0) ctx.SendInherit(color);
  }

 private:
  template <typename Fn>
  void ForEachUnassigned(IcmVertexContext<IcmSccForward>& ctx, Fn&& fn) {
    const Interval window =
        ctx.interval().Intersect(Interval(0, horizon_));
    if (window.IsEmpty()) return;
    const IntervalMap<int64_t>& assigned = (*assigned_)[ctx.vertex()];
    TimePoint cursor = window.start;
    assigned.ForEachIntersecting(window, [&](const Interval& iv, int64_t) {
      if (iv.start > cursor) fn(Interval(cursor, iv.start));
      cursor = iv.end;
    });
    if (cursor < window.end) fn(Interval(cursor, window.end));
  }

  const std::vector<IntervalMap<int64_t>>* assigned_;
  TimePoint horizon_;
};

/// Phase 2: backward flood of pivot labels through same-colored regions.
/// Runs on the REVERSED graph; `colors` holds phase-1 output indexed by
/// the same vertex indices (ReverseGraph preserves vertex order).
class IcmSccBackward {
 public:
  using State = int64_t;  ///< SCC label received; -1 if none yet.
  using Message = int64_t;

  /// TI logic never reads edge properties: scatter slices are not
  /// refined at property boundaries (see IcmUsesEdgeProperties).
  static constexpr bool kUsesEdgeProperties = false;

  IcmSccBackward(const std::vector<IntervalMap<int64_t>>* colors,
                 const std::vector<IntervalMap<int64_t>>* assigned)
      : colors_(colors), assigned_(assigned) {}

  State Init(VertexIdx) const { return -1; }

  void Compute(IcmVertexContext<IcmSccBackward>& ctx,
               std::span<const Message> msgs) {
    const IntervalMap<int64_t>& color = (*colors_)[ctx.vertex()];
    if (ctx.superstep() == 0) {
      // Pivots: unassigned sub-slices whose color is the own id.
      color.ForEachIntersecting(
          ctx.interval(), [&](const Interval& iv, int64_t c) {
            if (c == ctx.vertex_id() && Unassigned(ctx.vertex(), iv)) {
              ctx.SetState(iv, c);
            }
          });
      return;
    }
    if (ctx.state() != -1) return;  // Already labeled here.
    // Accept a pivot label only where it matches this vertex's color.
    color.ForEachIntersecting(
        ctx.interval(), [&](const Interval& iv, int64_t c) {
          for (const Message& m : msgs) {
            if (m == c && Unassigned(ctx.vertex(), iv)) {
              ctx.SetState(iv, c);
              break;
            }
          }
        });
  }

  void Scatter(IcmScatterContext<IcmSccBackward>& ctx, const State& label) {
    if (label >= 0) ctx.SendInherit(label);
  }

 private:
  bool Unassigned(VertexIdx v, const Interval& iv) const {
    bool clear = true;
    (*assigned_)[v].ForEachIntersecting(
        iv, [&](const Interval&, int64_t) { clear = false; });
    return clear;
  }

  const std::vector<IntervalMap<int64_t>>* colors_;
  const std::vector<IntervalMap<int64_t>>* assigned_;
};

/// Outcome of the multi-phase SCC driver.
struct SccRun {
  /// Per vertex: SCC label (the pivot's vertex id) per interval.
  TemporalResult<int64_t> components;
  RunMetrics metrics;  ///< Summed over all phases and rounds.
  int rounds = 0;
};

/// Runs forward-backward-coloring SCC over the temporal graph with ICM.
/// `reversed` must be ReverseGraph(g) (callers typically reuse it).
SccRun RunIcmScc(const TemporalGraph& g, const TemporalGraph& reversed,
                 const IcmOptions& options);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_ICM_TI_H_
