#include "algorithms/oracle.h"

#include <algorithm>
#include <functional>
#include <queue>

namespace graphite {

namespace {

// Travel time / cost of the edge at `pos` for a departure at `t`
// (defaults 1 when the property is absent, as in the ICM programs).
struct WeightLookup {
  const TemporalGraph* g;
  std::optional<LabelId> time_label;
  std::optional<LabelId> cost_label;

  explicit WeightLookup(const TemporalGraph& graph)
      : g(&graph),
        time_label(graph.LabelIdOf(kTravelTimeLabel)),
        cost_label(graph.LabelIdOf(kTravelCostLabel)) {}

  TimePoint TravelTime(EdgePos pos, TimePoint t) const {
    if (!time_label) return 1;
    const auto* map = g->EdgeProperty(pos, *time_label);
    if (map == nullptr) return 1;
    auto v = map->Get(t);
    return v ? static_cast<TimePoint>(*v) : 1;
  }
  PropValue Cost(EdgePos pos, TimePoint t) const {
    if (!cost_label) return 1;
    const auto* map = g->EdgeProperty(pos, *cost_label);
    if (map == nullptr) return 1;
    auto v = map->Get(t);
    return v ? *v : 1;
  }
};

bool Alive(const TemporalGraph& g, VertexIdx v, TimePoint t) {
  return g.vertex_interval(v).Contains(t);
}

// Dijkstra over the (vertex, time) product space. Start states: (source,
// t) at cost 0 for every alive t < horizon. Waiting moves (v,t)->(v,t+1)
// at zero cost; transits depart at t and arrive at t+tt.
std::vector<std::vector<int64_t>> ProductSpaceDijkstra(const TemporalGraph& g,
                                                       VertexId source) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  const WeightLookup w(g);
  std::vector<std::vector<int64_t>> dist(
      n, std::vector<int64_t>(static_cast<size_t>(T), kInfCost));
  using Node = std::pair<int64_t, std::pair<VertexIdx, TimePoint>>;
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> pq;
  auto push = [&](VertexIdx v, TimePoint t, int64_t c) {
    if (t < 0 || t >= T || !Alive(g, v, t)) return;
    if (c < dist[v][static_cast<size_t>(t)]) {
      dist[v][static_cast<size_t>(t)] = c;
      pq.push({c, {v, t}});
    }
  };
  auto src = g.IndexOf(source);
  GRAPHITE_CHECK(src.has_value());
  for (TimePoint t = 0; t < T; ++t) push(*src, t, 0);
  while (!pq.empty()) {
    auto [c, vt] = pq.top();
    pq.pop();
    auto [v, t] = vt;
    if (c > dist[v][static_cast<size_t>(t)]) continue;
    push(v, t + 1, c);  // Wait.
    auto edges = g.OutEdges(v);
    for (size_t k = 0; k < edges.size(); ++k) {
      const StoredEdge& e = edges[k];
      if (!e.interval.Contains(t)) continue;
      const EdgePos pos = g.OutEdgePos(v, k);
      push(e.dst, t + w.TravelTime(pos, t), c + w.Cost(pos, t));
    }
  }
  return dist;
}

}  // namespace

std::vector<std::vector<int64_t>> OracleSsspCosts(const TemporalGraph& g,
                                                  VertexId source) {
  return ProductSpaceDijkstra(g, source);
}

std::vector<std::vector<uint8_t>> OracleReach(const TemporalGraph& g,
                                              VertexId source) {
  const auto dist = ProductSpaceDijkstra(g, source);
  std::vector<std::vector<uint8_t>> reach(dist.size());
  for (size_t v = 0; v < dist.size(); ++v) {
    reach[v].resize(dist[v].size());
    for (size_t t = 0; t < dist[v].size(); ++t) {
      reach[v][t] = dist[v][t] != kInfCost ? 1 : 0;
    }
  }
  return reach;
}

std::vector<int64_t> OracleEat(const TemporalGraph& g, VertexId source) {
  const auto dist = ProductSpaceDijkstra(g, source);
  std::vector<int64_t> eat(dist.size(), kInfCost);
  for (size_t v = 0; v < dist.size(); ++v) {
    for (size_t t = 0; t < dist[v].size(); ++t) {
      if (dist[v][t] != kInfCost) {
        eat[v] = static_cast<int64_t>(t);
        break;
      }
    }
  }
  return eat;
}

std::vector<int64_t> OracleLatestDeparture(const TemporalGraph& g,
                                           VertexId target,
                                           TimePoint deadline) {
  // ok[v][t]: being at v at time t, the target can still be reached by the
  // deadline (possibly by waiting at v). Computed backwards over t.
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  const WeightLookup w(g);
  auto tgt = g.IndexOf(target);
  GRAPHITE_CHECK(tgt.has_value());
  std::vector<std::vector<uint8_t>> ok(
      n, std::vector<uint8_t>(static_cast<size_t>(T), 0));
  for (TimePoint t = std::min<TimePoint>(T, deadline + 1) - 1; t >= 0; --t) {
    if (Alive(g, *tgt, t)) ok[*tgt][static_cast<size_t>(t)] = 1;
  }
  for (TimePoint t = T - 1; t >= 0; --t) {
    for (VertexIdx v = 0; v < n; ++v) {
      if (ok[v][static_cast<size_t>(t)]) continue;
      if (!Alive(g, v, t)) continue;
      // Wait at v.
      if (t + 1 < T && Alive(g, v, t + 1) && ok[v][static_cast<size_t>(t + 1)]) {
        ok[v][static_cast<size_t>(t)] = 1;
        continue;
      }
      auto edges = g.OutEdges(v);
      for (size_t k = 0; k < edges.size() && !ok[v][static_cast<size_t>(t)];
           ++k) {
        const StoredEdge& e = edges[k];
        if (!e.interval.Contains(t)) continue;
        const EdgePos pos = g.OutEdgePos(v, k);
        const TimePoint arr = t + w.TravelTime(pos, t);
        if (arr > deadline) continue;
        if (arr < T) {
          if (Alive(g, e.dst, arr) && ok[e.dst][static_cast<size_t>(arr)]) {
            ok[v][static_cast<size_t>(t)] = 1;
          }
        } else if (e.dst == *tgt && Alive(g, e.dst, arr)) {
          // Direct arrival at the target beyond the horizon grid but
          // within the deadline.
          ok[v][static_cast<size_t>(t)] = 1;
        }
      }
    }
  }
  std::vector<int64_t> latest(n, kNegInf);
  for (VertexIdx v = 0; v < n; ++v) {
    for (TimePoint t = T - 1; t >= 0; --t) {
      if (ok[v][static_cast<size_t>(t)]) {
        latest[v] = t;
        break;
      }
    }
  }
  // The target itself can "depart" as late as the deadline (clamped to
  // its lifespan), matching the ICM formulation.
  const Interval tgt_span = g.vertex_interval(*tgt);
  if (tgt_span.Contains(std::min<TimePoint>(deadline, tgt_span.end - 1))) {
    latest[*tgt] = std::min<int64_t>(deadline, tgt_span.end - 1);
  }
  return latest;
}

std::vector<int64_t> OracleFastest(const TemporalGraph& g, VertexId source) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  const WeightLookup w(g);
  auto src = g.IndexOf(source);
  GRAPHITE_CHECK(src.has_value());
  std::vector<int64_t> fastest(n, kInfCost);
  fastest[*src] = 0;  // The source is trivially reached with duration 0.
  // For every departure time s, earliest-arrival BFS over (v, t).
  for (TimePoint s = 0; s < T; ++s) {
    if (!Alive(g, *src, s)) continue;
    std::vector<std::vector<uint8_t>> seen(
        n, std::vector<uint8_t>(static_cast<size_t>(T) + 1, 0));
    std::queue<std::pair<VertexIdx, TimePoint>> q;
    seen[*src][static_cast<size_t>(s)] = 1;
    q.push({*src, s});
    while (!q.empty()) {
      auto [v, t] = q.front();
      q.pop();
      if (v != *src || t != s) {
        // First time v is dequeued gives its earliest arrival for start s.
        fastest[v] = std::min<int64_t>(fastest[v], t - s);
      }
      if (t + 1 <= T - 1 && Alive(g, v, t + 1) &&
          !seen[v][static_cast<size_t>(t + 1)]) {
        seen[v][static_cast<size_t>(t + 1)] = 1;
        q.push({v, t + 1});
      }
      if (t >= T) continue;
      auto edges = g.OutEdges(v);
      for (size_t k = 0; k < edges.size(); ++k) {
        const StoredEdge& e = edges[k];
        if (!e.interval.Contains(t)) continue;
        const EdgePos pos = g.OutEdgePos(v, k);
        const TimePoint arr = t + w.TravelTime(pos, t);
        if (arr >= T || !Alive(g, e.dst, arr)) continue;
        if (!seen[e.dst][static_cast<size_t>(arr)]) {
          seen[e.dst][static_cast<size_t>(arr)] = 1;
          q.push({e.dst, arr});
        }
      }
    }
  }
  return fastest;
}

std::vector<std::vector<int64_t>> OracleBfs(const TemporalGraph& g,
                                            VertexId source) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  auto src = g.IndexOf(source);
  GRAPHITE_CHECK(src.has_value());
  std::vector<std::vector<int64_t>> depth(
      n, std::vector<int64_t>(static_cast<size_t>(T), kInfCost));
  for (TimePoint t = 0; t < T; ++t) {
    if (!Alive(g, *src, t)) continue;
    std::queue<VertexIdx> q;
    depth[*src][static_cast<size_t>(t)] = 0;
    q.push(*src);
    while (!q.empty()) {
      VertexIdx v = q.front();
      q.pop();
      for (const StoredEdge& e : g.OutEdges(v)) {
        if (!e.interval.Contains(t) || !Alive(g, e.dst, t)) continue;
        if (depth[e.dst][static_cast<size_t>(t)] == kInfCost) {
          depth[e.dst][static_cast<size_t>(t)] =
              depth[v][static_cast<size_t>(t)] + 1;
          q.push(e.dst);
        }
      }
    }
  }
  return depth;
}

std::vector<std::vector<int64_t>> OracleWcc(const TemporalGraph& g) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  std::vector<std::vector<int64_t>> label(
      n, std::vector<int64_t>(static_cast<size_t>(T), kInfCost));
  std::vector<VertexIdx> parent(n);
  for (TimePoint t = 0; t < T; ++t) {
    for (VertexIdx v = 0; v < n; ++v) parent[v] = v;
    std::function<VertexIdx(VertexIdx)> find = [&](VertexIdx v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
      const StoredEdge& e = g.edge(pos);
      if (!e.interval.Contains(t)) continue;
      parent[find(e.src)] = find(e.dst);
    }
    // Component label = min vertex id among alive members.
    std::vector<int64_t> min_id(n, kInfCost);
    for (VertexIdx v = 0; v < n; ++v) {
      if (!Alive(g, v, t)) continue;
      VertexIdx root = find(v);
      min_id[root] = std::min(min_id[root], g.vertex_id(v));
    }
    for (VertexIdx v = 0; v < n; ++v) {
      if (Alive(g, v, t)) label[v][static_cast<size_t>(t)] = min_id[find(v)];
    }
  }
  return label;
}

std::vector<std::vector<int64_t>> OracleScc(const TemporalGraph& g) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  std::vector<std::vector<int64_t>> label(
      n, std::vector<int64_t>(static_cast<size_t>(T), kInfCost));
  // Iterative Tarjan per snapshot.
  for (TimePoint t = 0; t < T; ++t) {
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<uint8_t> on_stack(n, 0);
    std::vector<VertexIdx> stack;
    int next_index = 0;
    struct Frame {
      VertexIdx v;
      size_t edge_k;
    };
    for (VertexIdx start = 0; start < n; ++start) {
      if (!Alive(g, start, t) || index[start] != -1) continue;
      std::vector<Frame> frames{{start, 0}};
      index[start] = low[start] = next_index++;
      stack.push_back(start);
      on_stack[start] = 1;
      while (!frames.empty()) {
        Frame& f = frames.back();
        auto edges = g.OutEdges(f.v);
        bool descended = false;
        while (f.edge_k < edges.size()) {
          const StoredEdge& e = edges[f.edge_k++];
          if (!e.interval.Contains(t) || !Alive(g, e.dst, t)) continue;
          if (index[e.dst] == -1) {
            index[e.dst] = low[e.dst] = next_index++;
            stack.push_back(e.dst);
            on_stack[e.dst] = 1;
            frames.push_back({e.dst, 0});
            descended = true;
            break;
          }
          if (on_stack[e.dst]) low[f.v] = std::min(low[f.v], index[e.dst]);
        }
        if (descended) continue;
        if (low[f.v] == index[f.v]) {
          // Pop one SCC; label with its max vertex id.
          std::vector<VertexIdx> members;
          VertexIdx u;
          do {
            u = stack.back();
            stack.pop_back();
            on_stack[u] = 0;
            members.push_back(u);
          } while (u != f.v);
          int64_t max_id = kNegInf;
          for (VertexIdx m : members) {
            max_id = std::max(max_id, g.vertex_id(m));
          }
          for (VertexIdx m : members) {
            label[m][static_cast<size_t>(t)] = max_id;
          }
        }
        const VertexIdx child = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[child]);
        }
      }
    }
  }
  return label;
}

std::vector<std::vector<double>> OraclePageRank(const TemporalGraph& g,
                                                int iterations) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  std::vector<std::vector<double>> rank(
      n, std::vector<double>(static_cast<size_t>(T), -1.0));
  std::vector<double> cur(n), next(n);
  std::vector<int64_t> outdeg(n);
  for (TimePoint t = 0; t < T; ++t) {
    std::fill(outdeg.begin(), outdeg.end(), 0);
    for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
      if (g.edge(pos).interval.Contains(t)) ++outdeg[g.edge(pos).src];
    }
    for (VertexIdx v = 0; v < n; ++v) cur[v] = 1.0;
    for (int it = 0; it < iterations; ++it) {
      std::fill(next.begin(), next.end(), 0.0);
      for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
        const StoredEdge& e = g.edge(pos);
        if (!e.interval.Contains(t)) continue;
        next[e.dst] += cur[e.src] / static_cast<double>(outdeg[e.src]);
      }
      for (VertexIdx v = 0; v < n; ++v) next[v] = 0.15 + 0.85 * next[v];
      std::swap(cur, next);
    }
    for (VertexIdx v = 0; v < n; ++v) {
      if (Alive(g, v, t)) rank[v][static_cast<size_t>(t)] = cur[v];
    }
  }
  return rank;
}

std::vector<std::vector<int64_t>> OracleTriangles(const TemporalGraph& g) {
  const TimePoint T = g.horizon();
  const size_t n = g.num_vertices();
  std::vector<std::vector<int64_t>> tri(
      n, std::vector<int64_t>(static_cast<size_t>(T), 0));
  for (TimePoint t = 0; t < T; ++t) {
    for (VertexIdx u = 0; u < n; ++u) {
      if (!Alive(g, u, t)) continue;
      int64_t count = 0;
      for (const StoredEdge& e1 : g.OutEdges(u)) {
        if (!e1.interval.Contains(t) || e1.dst == u) continue;
        const VertexIdx v = e1.dst;
        for (const StoredEdge& e2 : g.OutEdges(v)) {
          if (!e2.interval.Contains(t)) continue;
          const VertexIdx w = e2.dst;
          if (w == u || w == v) continue;
          for (const StoredEdge& e3 : g.OutEdges(w)) {
            if (e3.dst == u && e3.interval.Contains(t)) ++count;
          }
        }
      }
      tri[u][static_cast<size_t>(t)] = count;
    }
  }
  return tri;
}

}  // namespace graphite
