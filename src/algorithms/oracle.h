// Sequential reference implementations ("oracles") used to validate every
// distributed algorithm, on all platforms, against an independent
// formulation. TD oracles run dynamic programming / Dijkstra over the
// (vertex, time-point) product space with explicit waiting edges; TI
// oracles run the classic sequential algorithm on each snapshot.
// All oracles are O(|V| * T)-ish and intended for test-sized graphs.
#ifndef GRAPHITE_ALGORITHMS_ORACLE_H_
#define GRAPHITE_ALGORITHMS_ORACLE_H_

#include <cstdint>
#include <vector>

#include "algorithms/common.h"
#include "graph/temporal_graph.h"

namespace graphite {

/// result[v][t] = minimum time-respecting travel cost from `source` to be
/// at v at time t (waiting allowed); kInfCost when unreachable. t ranges
/// over [0, horizon).
std::vector<std::vector<int64_t>> OracleSsspCosts(const TemporalGraph& g,
                                                  VertexId source);

/// result[v][t] = 1 iff v is time-respecting reachable from `source` by
/// time t (within the horizon).
std::vector<std::vector<uint8_t>> OracleReach(const TemporalGraph& g,
                                              VertexId source);

/// result[v] = earliest arrival time at v from `source` (kInfCost if
/// unreachable within the horizon).
std::vector<int64_t> OracleEat(const TemporalGraph& g, VertexId source);

/// result[v] = latest time one can leave v and still reach `target` by
/// `deadline` (kNegInf when impossible). Arrivals must fall within the
/// receiving vertex's lifespan.
std::vector<int64_t> OracleLatestDeparture(const TemporalGraph& g,
                                           VertexId target,
                                           TimePoint deadline);

/// result[v] = minimum journey duration (arrival - departure-from-source)
/// over all source departure times in [0, horizon); kInfCost if never
/// reachable.
std::vector<int64_t> OracleFastest(const TemporalGraph& g, VertexId source);

/// result[v][t] = BFS hop distance from `source` in snapshot S_t
/// (kInfCost when unreachable or inactive).
std::vector<std::vector<int64_t>> OracleBfs(const TemporalGraph& g,
                                            VertexId source);

/// result[v][t] = minimum vertex id in v's weakly connected component in
/// S_t (kInfCost when inactive). Edges are treated as undirected.
std::vector<std::vector<int64_t>> OracleWcc(const TemporalGraph& g);

/// result[v][t] = maximum vertex id in v's strongly connected component in
/// S_t (kInfCost when inactive) — the canonical label the FW-BW coloring
/// SCC also produces.
std::vector<std::vector<int64_t>> OracleScc(const TemporalGraph& g);

/// result[v][t] = PageRank of v in S_t after `iterations` synchronous
/// rounds of rank = 0.15 + 0.85 * sum(in-shares); -1 when inactive.
std::vector<std::vector<double>> OraclePageRank(const TemporalGraph& g,
                                                int iterations);

/// result[v][t] = number of directed triangles v -> a -> b -> v whose
/// three edges are all active at t (0 when inactive).
std::vector<std::vector<int64_t>> OracleTriangles(const TemporalGraph& g);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_ORACLE_H_
