#include "algorithms/runners.h"

#include <algorithm>

namespace graphite {

namespace {

VertexId ResolveTarget(const TemporalGraph& g, const RunConfig& config) {
  if (config.target >= 0) return config.target;
  return g.vertex_id(static_cast<VertexIdx>(g.num_vertices() - 1));
}

TimePoint ResolveDeadline(const TemporalGraph& g, const RunConfig& config) {
  return config.deadline >= 0 ? config.deadline : g.horizon();
}

// lcc = triangles / (d * (d-1)) with the temporal out-degree profile.
TemporalResult<double> NormalizeLcc(const TemporalGraph& g,
                                    const TemporalResult<int64_t>& triangles) {
  const std::vector<IntervalMap<int64_t>> degrees = OutDegreeProfiles(g);
  TemporalResult<double> out(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& tri : triangles[v].entries()) {
      out[v].Set(tri.interval, 0.0);
      if (tri.value == 0) continue;
      degrees[v].ForEachIntersecting(
          tri.interval, [&](const Interval& sub, int64_t d) {
            if (d >= 2) {
              out[v].Set(sub, static_cast<double>(tri.value) /
                                  static_cast<double>(d * (d - 1)));
            }
          });
    }
    out[v].Coalesce();
  }
  return out;
}

void StoreMetrics(RunMetrics* sink, RunMetrics metrics) {
  if (sink != nullptr) *sink = std::move(metrics);
}

}  // namespace

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kBfs: return "BFS";
    case Algorithm::kWcc: return "WCC";
    case Algorithm::kScc: return "SCC";
    case Algorithm::kPr: return "PR";
    case Algorithm::kSssp: return "SSSP";
    case Algorithm::kEat: return "EAT";
    case Algorithm::kFast: return "FAST";
    case Algorithm::kLd: return "LD";
    case Algorithm::kTmst: return "TMST";
    case Algorithm::kRh: return "RH";
    case Algorithm::kLcc: return "LCC";
    case Algorithm::kTc: return "TC";
  }
  return "?";
}

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kIcm: return "ICM";
    case Platform::kMsb: return "MSB";
    case Platform::kChl: return "CHL";
    case Platform::kTgb: return "TGB";
    case Platform::kGof: return "GOF";
  }
  return "?";
}

bool IsTimeDependent(Algorithm a) {
  switch (a) {
    case Algorithm::kBfs:
    case Algorithm::kWcc:
    case Algorithm::kScc:
    case Algorithm::kPr:
      return false;
    default:
      return true;
  }
}

bool Supports(Platform p, Algorithm a) {
  switch (p) {
    case Platform::kIcm:
      return true;
    case Platform::kMsb:
    case Platform::kChl:
      return !IsTimeDependent(a);
    case Platform::kTgb:
    case Platform::kGof:
      return IsTimeDependent(a);
  }
  return false;
}

const TemporalGraph& Workload::reversed() const {
  if (!reversed_) reversed_ = ReverseGraph(g_);
  return *reversed_;
}
const TemporalGraph& Workload::undirected() const {
  if (!undirected_) undirected_ = MakeUndirected(g_);
  return *undirected_;
}
const TransformedGraph& Workload::transformed() const {
  if (!transformed_) transformed_ = BuildTransformedGraph(g_);
  return *transformed_;
}
const TransformedGraph& Workload::transformed_zero() const {
  if (!transformed_zero_) {
    TransformOptions options;
    options.forced_travel_time = 0;
    transformed_zero_ = BuildTransformedGraph(g_, options);
  }
  return *transformed_zero_;
}
void Workload::DropDerived() {
  reversed_.reset();
  undirected_.reset();
  transformed_.reset();
  transformed_zero_.reset();
}

// ---------------------------------------------------------------------
// TI runners.
// ---------------------------------------------------------------------

TemporalResult<int64_t> RunBfsOn(Workload& w, Platform p,
                                 const RunConfig& config, RunMetrics* metrics) {
  switch (p) {
    case Platform::kIcm: {
      IcmBfs program(config.source);
      auto r = IcmEngine<IcmBfs>::Run(w.graph(), program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (auto& m : r.states) m.Coalesce();
      return std::move(r.states);
    }
    case Platform::kMsb: {
      auto r = RunMsbBfs(w.graph(), config.source, config.ToVcm());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    case Platform::kChl: {
      auto r = RunChlonosBfs(w.graph(), config.source, config.ToChlonos());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

TemporalResult<int64_t> RunWccOn(Workload& w, Platform p,
                                 const RunConfig& config, RunMetrics* metrics) {
  switch (p) {
    case Platform::kIcm: {
      IcmWcc program;
      auto r = IcmEngine<IcmWcc>::Run(w.undirected(), program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (auto& m : r.states) m.Coalesce();
      return std::move(r.states);
    }
    case Platform::kMsb: {
      auto r = RunMsbWcc(w.undirected(), config.ToVcm());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    case Platform::kChl: {
      auto r = RunChlonosWcc(w.undirected(), config.ToChlonos());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

TemporalResult<int64_t> RunSccOn(Workload& w, Platform p,
                                 const RunConfig& config, RunMetrics* metrics) {
  switch (p) {
    case Platform::kIcm: {
      auto r = RunIcmScc(w.graph(), w.reversed(), config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.components);
    }
    case Platform::kMsb: {
      auto r = RunMsbScc(w.graph(), w.reversed(), config.ToVcm());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    case Platform::kChl: {
      auto r = RunChlonosScc(w.graph(), w.reversed(), config.ToChlonos());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

TemporalResult<double> RunPrOn(Workload& w, Platform p,
                               const RunConfig& config, RunMetrics* metrics) {
  switch (p) {
    case Platform::kIcm: {
      IcmPageRank program(w.graph());
      auto r = IcmEngine<IcmPageRank>::Run(w.graph(), program,
                                           PageRankOptions(config.ToIcm()));
      StoreMetrics(metrics, std::move(r.metrics));
      // Clip to the horizon window so the per-snapshot platforms compare
      // directly (open-ended lifespans extend past the last snapshot).
      TemporalResult<double> out(r.states.size());
      for (size_t v = 0; v < r.states.size(); ++v) {
        r.states[v].ForEachIntersecting(
            Interval(0, w.graph().horizon()),
            [&](const Interval& iv, double val) { out[v].Set(iv, val); });
        out[v].Coalesce();
      }
      return out;
    }
    case Platform::kMsb: {
      auto r = RunMsbPageRank(w.graph(), config.ToVcm());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    case Platform::kChl: {
      auto r = RunChlonosPageRank(w.graph(), config.ToChlonos());
      StoreMetrics(metrics, std::move(r.metrics));
      return std::move(r.result);
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

// ---------------------------------------------------------------------
// TD runners.
// ---------------------------------------------------------------------

TemporalResult<int64_t> RunSsspOn(Workload& w, Platform p,
                                  const RunConfig& config,
                                  RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  switch (p) {
    case Platform::kIcm: {
      IcmSssp program(g, config.source);
      auto r = IcmEngine<IcmSssp>::Run(g, program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (auto& m : r.states) m.Coalesce();
      return std::move(r.states);
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      TransformedAdapter adapter(&tg, &g);
      TgbSssp program(adapter, config.source);
      std::vector<int64_t> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      auto out = AssembleFromReplicas<int64_t>(
          tg, g, values, [](int64_t v) { return v != kInfCost; });
      // The source is at cost 0 over its whole lifespan, replicas or not.
      if (auto src = g.IndexOf(config.source)) {
        out[*src].Set(g.vertex_interval(*src), 0);
        out[*src].Coalesce();
      }
      return out;
    }
    case Platform::kGof: {
      GofSssp program(g, config.source);
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      // Canonicalize: drop the "unreached" sentinel entries.
      for (auto& m : r.result) {
        std::vector<std::pair<Interval, int64_t>> keep;
        for (const auto& e : m.entries()) {
          if (e.value != kInfCost) keep.emplace_back(e.interval, e.value);
        }
        m.clear();
        for (auto& [iv, val] : keep) m.Set(iv, val);
        m.Coalesce();
      }
      return std::move(r.result);
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

std::vector<int64_t> RunEatOn(Workload& w, Platform p, const RunConfig& config,
                              RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  std::vector<int64_t> eat(g.num_vertices(), kInfCost);
  switch (p) {
    case Platform::kIcm: {
      IcmEat program(g, config.source);
      auto r = IcmEngine<IcmEat>::Run(g, program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.states[v].entries()) {
          eat[v] = std::min(eat[v], e.value);
        }
      }
      return eat;
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      TransformedAdapter adapter(&tg, &g);
      TgbReach program(adapter, config.source);
      std::vector<uint8_t> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (ReplicaIdx r : tg.ReplicasOf(v)) {
          if (values[r]) {
            eat[v] = std::min(eat[v], tg.replica_time(r));
            break;  // Replicas are time-ordered.
          }
        }
      }
      if (auto src = g.IndexOf(config.source)) {
        eat[*src] = std::max<TimePoint>(0, g.vertex_interval(*src).start);
      }
      return eat;
    }
    case Platform::kGof: {
      GofEat program(g, config.source);
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.result[v].entries()) {
          eat[v] = std::min(eat[v], e.value);
        }
      }
      return eat;
    }
    default:
      GRAPHITE_CHECK(false);
      return eat;
  }
}

std::vector<int64_t> RunFastOn(Workload& w, Platform p,
                               const RunConfig& config, RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  std::vector<int64_t> fastest(g.num_vertices(), kInfCost);
  const auto src = g.IndexOf(config.source);
  GRAPHITE_CHECK(src.has_value());
  switch (p) {
    case Platform::kIcm: {
      IcmFast program(g, config.source);
      auto r = IcmEngine<IcmFast>::Run(g, program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        if (v == *src) continue;
        for (const auto& e : r.states[v].entries()) {
          if (e.value == kNegInf) continue;
          fastest[v] = std::min(fastest[v], e.interval.start - e.value);
        }
      }
      break;
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      TransformedAdapter adapter(&tg, &g);
      TgbFast program(adapter, config.source);
      std::vector<int64_t> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        if (v == *src) continue;
        for (ReplicaIdx r : tg.ReplicasOf(v)) {
          if (values[r] != kNegInf) {
            fastest[v] =
                std::min(fastest[v], tg.replica_time(r) - values[r]);
          }
        }
      }
      break;
    }
    case Platform::kGof: {
      GofFast program(g, config.source);
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        if (v == *src) continue;
        for (const auto& e : r.result[v].entries()) {
          if (e.value == kNegInf) continue;
          fastest[v] = std::min(fastest[v], e.interval.start - e.value);
        }
      }
      break;
    }
    default:
      GRAPHITE_CHECK(false);
  }
  fastest[*src] = 0;
  return fastest;
}

std::vector<int64_t> RunLdOn(Workload& w, Platform p, const RunConfig& config,
                             RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  const VertexId target = ResolveTarget(g, config);
  const TimePoint deadline = ResolveDeadline(g, config);
  std::vector<int64_t> latest(g.num_vertices(), kNegInf);
  switch (p) {
    case Platform::kIcm: {
      const TemporalGraph& reversed = w.reversed();
      IcmLatestDeparture program(reversed, target, deadline);
      auto r = IcmEngine<IcmLatestDeparture>::Run(reversed, program,
                                                  config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.states[v].entries()) {
          latest[v] = std::max(latest[v], e.value);
        }
      }
      return latest;
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      ReversedTransformedAdapter adapter(&tg, &g);
      TgbLd program(adapter, g, target, deadline);
      std::vector<uint8_t> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (ReplicaIdx r : tg.ReplicasOf(v)) {
          if (values[r]) {
            latest[v] = std::max(latest[v], tg.replica_time(r));
          }
        }
      }
      // The target may "depart" as late as the clamped deadline.
      if (auto tgt = g.IndexOf(target)) {
        const Interval& span = g.vertex_interval(*tgt);
        const TimePoint clamp = std::min<TimePoint>(deadline, span.end - 1);
        if (span.Contains(clamp)) latest[*tgt] = std::max(latest[*tgt], clamp);
      }
      return latest;
    }
    case Platform::kGof: {
      const TemporalGraph& reversed = w.reversed();
      GofLatestDeparture program(reversed, target, deadline);
      GoffishOptions options = config.ToGoffish();
      options.reverse_time = true;
      auto r = RunGoffish(reversed, program, options);
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.result[v].entries()) {
          latest[v] = std::max(latest[v], e.value);
        }
      }
      return latest;
    }
    default:
      GRAPHITE_CHECK(false);
      return latest;
  }
}

std::vector<std::pair<int64_t, int64_t>> RunTmstOn(Workload& w, Platform p,
                                                   const RunConfig& config,
                                                   RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  std::vector<std::pair<int64_t, int64_t>> best(g.num_vertices(),
                                                {kInfCost, -1});
  switch (p) {
    case Platform::kIcm: {
      IcmTmst program(g, config.source);
      auto r = IcmEngine<IcmTmst>::Run(g, program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.states[v].entries()) {
          if (e.value < best[v]) best[v] = e.value;
        }
      }
      return best;
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      TransformedAdapter adapter(&tg, &g);
      TgbTmst program(adapter, config.source);
      std::vector<std::pair<int64_t, int64_t>> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (ReplicaIdx r : tg.ReplicasOf(v)) {
          if (values[r] < best[v]) best[v] = values[r];
        }
      }
      if (auto src = g.IndexOf(config.source)) {
        best[*src] = {std::max<TimePoint>(0, g.vertex_interval(*src).start),
                      config.source};
      }
      return best;
    }
    case Platform::kGof: {
      GofTmst program(g, config.source);
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.result[v].entries()) {
          if (e.value < best[v]) best[v] = e.value;
        }
      }
      return best;
    }
    default:
      GRAPHITE_CHECK(false);
      return best;
  }
}

TemporalResult<uint8_t> RunRhOn(Workload& w, Platform p,
                                const RunConfig& config, RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  switch (p) {
    case Platform::kIcm: {
      IcmReach program(g, config.source);
      auto r = IcmEngine<IcmReach>::Run(g, program, config.ToIcm());
      StoreMetrics(metrics, std::move(r.metrics));
      TemporalResult<uint8_t> out(g.num_vertices());
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.states[v].entries()) {
          if (e.value == 1) out[v].Set(e.interval, 1);
        }
        out[v].Coalesce();
      }
      return out;
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed();
      TransformedAdapter adapter(&tg, &g);
      TgbReach program(adapter, config.source);
      std::vector<uint8_t> values;
      StoreMetrics(metrics,
                   RunVcm(adapter, program, config.ToVcm(), &values));
      auto out = AssembleFromReplicas<uint8_t>(
          tg, g, values, [](uint8_t v) { return v == 1; });
      if (auto src = g.IndexOf(config.source)) {
        out[*src].Set(g.vertex_interval(*src), 1);
        out[*src].Coalesce();
      }
      return out;
    }
    case Platform::kGof: {
      GofReach program(g, config.source);
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      TemporalResult<uint8_t> out(g.num_vertices());
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.result[v].entries()) {
          if (e.value == 1) out[v].Set(e.interval, 1);
        }
        out[v].Coalesce();
      }
      return out;
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

TemporalResult<int64_t> RunTcOn(Workload& w, Platform p,
                                const RunConfig& config, RunMetrics* metrics) {
  const TemporalGraph& g = w.graph();
  switch (p) {
    case Platform::kIcm: {
      IcmTriangleCount program;
      auto r = IcmEngine<IcmTriangleCount>::Run(
          g, program, TriangleOptions(config.ToIcm()));
      StoreMetrics(metrics, std::move(r.metrics));
      return TriangleCounts(r.states);
    }
    case Platform::kTgb: {
      const TransformedGraph& tg = w.transformed_zero();
      TransformedAdapter adapter(&tg, &g);
      TgbTriangle program(adapter);
      VcmOptions options = config.ToVcm();
      options.max_supersteps = 4;
      std::vector<TcState> values;
      StoreMetrics(metrics, RunVcm(adapter, program, options, &values));
      TemporalResult<int64_t> out(g.num_vertices());
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (ReplicaIdx r : tg.ReplicasOf(v)) {
          if (values[r].triangles > 0) {
            const TimePoint t = tg.replica_time(r);
            out[v].Set(Interval(t, t + 1), values[r].triangles);
          }
        }
        out[v].Coalesce();
      }
      return out;
    }
    case Platform::kGof: {
      GofTriangle program;
      auto r = RunGoffish(g, program, config.ToGoffish());
      StoreMetrics(metrics, std::move(r.metrics));
      TemporalResult<int64_t> out(g.num_vertices());
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        for (const auto& e : r.result[v].entries()) {
          if (e.value.triangles > 0) out[v].Set(e.interval, e.value.triangles);
        }
        out[v].Coalesce();
      }
      return out;
    }
    default:
      GRAPHITE_CHECK(false);
      return {};
  }
}

TemporalResult<double> RunLccOn(Workload& w, Platform p,
                                const RunConfig& config, RunMetrics* metrics) {
  if (p == Platform::kIcm) {
    auto r = RunIcmLcc(w.graph(), config.ToIcm());
    StoreMetrics(metrics, std::move(r.metrics));
    return std::move(r.lcc);
  }
  // TGB / GOF: closure counts from the triangle run, then the shared
  // degree normalization.
  const TemporalResult<int64_t> tc = RunTcOn(w, p, config, metrics);
  return NormalizeLcc(w.graph(), tc);
}

RunMetrics RunForMetrics(Workload& w, Platform p, Algorithm a,
                         const RunConfig& config) {
  GRAPHITE_CHECK(Supports(p, a));
  RunMetrics metrics;
  switch (a) {
    case Algorithm::kBfs: RunBfsOn(w, p, config, &metrics); break;
    case Algorithm::kWcc: RunWccOn(w, p, config, &metrics); break;
    case Algorithm::kScc: RunSccOn(w, p, config, &metrics); break;
    case Algorithm::kPr: RunPrOn(w, p, config, &metrics); break;
    case Algorithm::kSssp: RunSsspOn(w, p, config, &metrics); break;
    case Algorithm::kEat: RunEatOn(w, p, config, &metrics); break;
    case Algorithm::kFast: RunFastOn(w, p, config, &metrics); break;
    case Algorithm::kLd: RunLdOn(w, p, config, &metrics); break;
    case Algorithm::kTmst: RunTmstOn(w, p, config, &metrics); break;
    case Algorithm::kRh: RunRhOn(w, p, config, &metrics); break;
    case Algorithm::kLcc: RunLccOn(w, p, config, &metrics); break;
    case Algorithm::kTc: RunTcOn(w, p, config, &metrics); break;
  }
  return metrics;
}

}  // namespace graphite
