// Unified algorithm runners: one entry point per (algorithm, platform)
// pair, all returning comparable results plus RunMetrics. The equivalence
// tests use the typed results; the benchmark harness uses the
// metrics-only dispatcher (RunForMetrics).
//
// Platform support follows the paper's evaluation matrix (§VII-A):
//   TI algorithms (BFS, WCC, SCC, PR):   ICM, MSB, Chlonos
//   TD algorithms (SSSP, EAT, FAST, LD,
//                  TMST, RH, LCC, TC):   ICM, TGB, GoFFish
#ifndef GRAPHITE_ALGORITHMS_RUNNERS_H_
#define GRAPHITE_ALGORITHMS_RUNNERS_H_

#include <memory>
#include <optional>
#include <string>

#include "algorithms/common.h"
#include "algorithms/gof_programs.h"
#include "algorithms/icm_clustering.h"
#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "baselines/chlonos.h"
#include "baselines/goffish.h"
#include "baselines/msb.h"
#include "baselines/tgb.h"

namespace graphite {

enum class Algorithm {
  kBfs, kWcc, kScc, kPr,                       // TI
  kSssp, kEat, kFast, kLd, kTmst, kRh, kLcc, kTc,  // TD
};
enum class Platform { kIcm, kMsb, kChl, kTgb, kGof };

const char* AlgorithmName(Algorithm a);
const char* PlatformName(Platform p);
bool IsTimeDependent(Algorithm a);
/// True iff the paper evaluates this algorithm on this platform.
bool Supports(Platform p, Algorithm a);

/// All twelve algorithms, TI first (paper order).
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBfs,  Algorithm::kWcc, Algorithm::kScc,  Algorithm::kPr,
    Algorithm::kSssp, Algorithm::kEat, Algorithm::kFast, Algorithm::kLd,
    Algorithm::kTmst, Algorithm::kRh,  Algorithm::kLcc,  Algorithm::kTc};

/// Execution knobs shared across platforms.
struct RunConfig {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling for all platforms (engine/parallel.h).
  RuntimeOptions runtime;
  VertexId source = 0;
  /// LD deadline; -1 = graph horizon.
  TimePoint deadline = -1;
  /// LD target; -1 = highest vertex id.
  VertexId target = -1;
  int chlonos_batch_size = 8;
  bool icm_combiner = true;
  bool icm_suppression = true;
  double icm_suppression_threshold = 0.7;

  IcmOptions ToIcm() const {
    IcmOptions o;
    o.num_workers = num_workers;
    o.use_threads = use_threads;
    o.runtime = runtime;
    o.enable_combiner = icm_combiner;
    o.enable_suppression = icm_suppression;
    o.suppression_threshold = icm_suppression_threshold;
    return o;
  }
  VcmOptions ToVcm() const {
    VcmOptions o;
    o.num_workers = num_workers;
    o.use_threads = use_threads;
    o.runtime = runtime;
    return o;
  }
  ChlonosOptions ToChlonos() const {
    ChlonosOptions o;
    o.num_workers = num_workers;
    o.use_threads = use_threads;
    o.runtime = runtime;
    o.batch_size = chlonos_batch_size;
    return o;
  }
  GoffishOptions ToGoffish() const {
    GoffishOptions o;
    o.num_workers = num_workers;
    o.use_threads = use_threads;
    o.runtime = runtime;
    return o;
  }
};

/// A prepared dataset: the interval graph plus the derived structures the
/// platforms need. Derived graphs are built lazily and cached.
class Workload {
 public:
  explicit Workload(TemporalGraph g) : g_(std::move(g)) {}

  const TemporalGraph& graph() const { return g_; }
  const TemporalGraph& reversed() const;
  const TemporalGraph& undirected() const;
  /// Travel-time-aware transformed graph (path algorithms).
  const TransformedGraph& transformed() const;
  /// Zero-travel-time transformed graph (clustering algorithms).
  const TransformedGraph& transformed_zero() const;

  /// Releases cached derived structures (frees memory between benches).
  void DropDerived();

 private:
  TemporalGraph g_;
  mutable std::optional<TemporalGraph> reversed_;
  mutable std::optional<TemporalGraph> undirected_;
  mutable std::optional<TransformedGraph> transformed_;
  mutable std::optional<TransformedGraph> transformed_zero_;
};

/// Runs (algorithm, platform) and returns the metrics; results are
/// discarded. CHECK-fails if the pair is unsupported.
RunMetrics RunForMetrics(Workload& w, Platform p, Algorithm a,
                         const RunConfig& config);

// --- Typed runners used by the cross-platform equivalence tests. ---
// Each returns the per-(vertex, time) result in a canonical form plus the
// metrics via *metrics (ignored when null).

TemporalResult<int64_t> RunBfsOn(Workload& w, Platform p,
                                 const RunConfig& config,
                                 RunMetrics* metrics = nullptr);
TemporalResult<int64_t> RunWccOn(Workload& w, Platform p,
                                 const RunConfig& config,
                                 RunMetrics* metrics = nullptr);
TemporalResult<int64_t> RunSccOn(Workload& w, Platform p,
                                 const RunConfig& config,
                                 RunMetrics* metrics = nullptr);
TemporalResult<double> RunPrOn(Workload& w, Platform p,
                               const RunConfig& config,
                               RunMetrics* metrics = nullptr);
TemporalResult<int64_t> RunSsspOn(Workload& w, Platform p,
                                  const RunConfig& config,
                                  RunMetrics* metrics = nullptr);
/// Earliest arrival per vertex (kInfCost when unreachable).
std::vector<int64_t> RunEatOn(Workload& w, Platform p, const RunConfig& config,
                              RunMetrics* metrics = nullptr);
/// Minimum journey duration per vertex (kInfCost when unreachable).
std::vector<int64_t> RunFastOn(Workload& w, Platform p,
                               const RunConfig& config,
                               RunMetrics* metrics = nullptr);
/// Latest departure per vertex (kNegInf when impossible).
std::vector<int64_t> RunLdOn(Workload& w, Platform p, const RunConfig& config,
                             RunMetrics* metrics = nullptr);
/// (earliest arrival, tree parent id) per vertex.
std::vector<std::pair<int64_t, int64_t>> RunTmstOn(
    Workload& w, Platform p, const RunConfig& config,
    RunMetrics* metrics = nullptr);
TemporalResult<uint8_t> RunRhOn(Workload& w, Platform p,
                                const RunConfig& config,
                                RunMetrics* metrics = nullptr);
TemporalResult<int64_t> RunTcOn(Workload& w, Platform p,
                                const RunConfig& config,
                                RunMetrics* metrics = nullptr);
TemporalResult<double> RunLccOn(Workload& w, Platform p,
                                const RunConfig& config,
                                RunMetrics* metrics = nullptr);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_RUNNERS_H_
