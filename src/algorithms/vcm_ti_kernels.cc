#include "algorithms/vcm_ti_kernels.h"

namespace graphite {

std::vector<int64_t> RunVcmSccSnapshot(const TemporalGraph& g,
                                       const TemporalGraph& reversed,
                                       TimePoint t, const VcmOptions& options,
                                       RunMetrics* metrics) {
  const size_t n = g.num_vertices();
  SnapshotAdapter fwd_adapter{SnapshotView(&g, t)};
  SnapshotAdapter bwd_adapter{SnapshotView(&reversed, t)};
  std::vector<int64_t> assigned(n, -1);

  // Unassigned snapshot-live vertices, maintained incrementally: each
  // peeling round already walks every vertex to fold in its labels, so a
  // separate full rescan per round only repeats that work.
  size_t remaining = 0;
  for (VertexIdx v = 0; v < n; ++v) {
    if (fwd_adapter.UnitExists(v)) ++remaining;
  }

  while (remaining > 0) {
    VcmSccForward fwd(fwd_adapter, assigned);
    std::vector<int64_t> colors;
    metrics->Merge(RunVcm(fwd_adapter, fwd, options, &colors));

    VcmSccBackward bwd(bwd_adapter, colors, assigned);
    std::vector<int64_t> labels;
    metrics->Merge(RunVcm(bwd_adapter, bwd, options, &labels));

    size_t newly = 0;
    for (VertexIdx v = 0; v < n; ++v) {
      if (fwd_adapter.UnitExists(v) && assigned[v] < 0 && labels[v] >= 0) {
        assigned[v] = labels[v];
        ++newly;
      }
    }
    GRAPHITE_CHECK(newly > 0);
    remaining -= newly;
  }
  for (VertexIdx v = 0; v < n; ++v) {
    if (!fwd_adapter.UnitExists(v)) assigned[v] = kInfCost;
  }
  return assigned;
}

}  // namespace graphite
