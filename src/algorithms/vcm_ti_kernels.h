// Vertex-centric (Pregel) snapshot kernels for the four TI algorithms.
// These are the classic non-temporal programs; MSB runs them per snapshot
// and Chlonos runs them per snapshot within a batch — exactly the VCM
// logic the paper's baselines execute over stock Giraph.
#ifndef GRAPHITE_ALGORITHMS_VCM_TI_KERNELS_H_
#define GRAPHITE_ALGORITHMS_VCM_TI_KERNELS_H_

#include <algorithm>
#include <span>

#include "algorithms/common.h"
#include "vcm/adapters.h"
#include "vcm/vcm_engine.h"

namespace graphite {

/// BFS hop distance from a source on one snapshot.
class VcmBfs {
 public:
  using Value = int64_t;
  using Message = int64_t;

  VcmBfs(const SnapshotAdapter& adapter, VertexId source)
      : adapter_(&adapter), source_(source) {}

  Value Init(uint32_t) const { return kInfCost; }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& depth,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (adapter_->view().graph().vertex_id(u) != source_) return;
      depth = 0;
    } else {
      Message best = kInfCost;
      for (const Message& m : msgs) best = std::min(best, m);
      if (best >= depth) return;
      depth = best;
    }
    adapter_->ForEachOutEdge(
        u, [&](uint32_t dst, const StoredEdge&, EdgePos) {
          ctx.Send(dst, depth + 1);
        });
  }

 private:
  const SnapshotAdapter* adapter_;
  VertexId source_;
};

/// WCC min-label propagation on one snapshot. Run over a snapshot of
/// MakeUndirected(g) so labels flow both ways.
class VcmWcc {
 public:
  using Value = int64_t;
  using Message = int64_t;

  explicit VcmWcc(const SnapshotAdapter& adapter) : adapter_(&adapter) {}

  Value Init(uint32_t u) const {
    return adapter_->view().graph().vertex_id(u);
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& label,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      Message best = kInfCost;
      for (const Message& m : msgs) best = std::min(best, m);
      if (best >= label) return;
      label = best;
    }
    adapter_->ForEachOutEdge(u,
                             [&](uint32_t dst, const StoredEdge&, EdgePos) {
                               ctx.Send(dst, label);
                             });
  }

 private:
  const SnapshotAdapter* adapter_;
};

/// PageRank on one snapshot: always-active, fixed iterations,
/// rank = 0.15 + 0.85 * sum(in-shares), share = rank / outdeg.
class VcmPageRank {
 public:
  using Value = double;
  using Message = double;

  static constexpr int kIterations = 10;

  explicit VcmPageRank(const SnapshotAdapter& adapter) : adapter_(&adapter) {}

  Value Init(uint32_t) const { return 1.0; }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& rank,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      double sum = 0;
      for (const Message& m : msgs) sum += m;
      rank = 0.15 + 0.85 * sum;
    }
    int64_t outdeg = 0;
    adapter_->ForEachOutEdge(
        u, [&](uint32_t, const StoredEdge&, EdgePos) { ++outdeg; });
    if (outdeg == 0) return;
    const double share = rank / static_cast<double>(outdeg);
    adapter_->ForEachOutEdge(u,
                             [&](uint32_t dst, const StoredEdge&, EdgePos) {
                               ctx.Send(dst, share);
                             });
  }

 private:
  const SnapshotAdapter* adapter_;
};

/// VcmOptions preset matching the PageRank iteration count.
inline VcmOptions VcmPageRankOptions(VcmOptions base = {}) {
  base.always_active = true;
  base.max_supersteps = VcmPageRank::kIterations + 1;
  return base;
}

/// SCC forward coloring phase on one snapshot (max-id propagation over
/// unassigned vertices). `assigned[u]` >= 0 marks finished vertices.
class VcmSccForward {
 public:
  using Value = int64_t;  ///< Color; -1 when assigned/excluded.
  using Message = int64_t;

  VcmSccForward(const SnapshotAdapter& adapter,
                const std::vector<int64_t>& assigned)
      : adapter_(&adapter), assigned_(&assigned) {}

  Value Init(uint32_t u) const {
    return (*assigned_)[u] >= 0 ? -1
                                : adapter_->view().graph().vertex_id(u);
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& color,
               std::span<const Message> msgs) {
    if ((*assigned_)[u] >= 0) return;
    if (ctx.superstep() > 0) {
      Message best = -1;
      for (const Message& m : msgs) best = std::max(best, m);
      if (best <= color) return;
      color = best;
    }
    adapter_->ForEachOutEdge(u,
                             [&](uint32_t dst, const StoredEdge&, EdgePos) {
                               ctx.Send(dst, color);
                             });
  }

 private:
  const SnapshotAdapter* adapter_;
  const std::vector<int64_t>* assigned_;
};

/// SCC backward labeling phase on the REVERSED snapshot: pivots flood
/// their color backward through equal-colored unassigned vertices.
class VcmSccBackward {
 public:
  using Value = int64_t;  ///< SCC label; -1 when none.
  using Message = int64_t;

  VcmSccBackward(const SnapshotAdapter& reversed_adapter,
                 const std::vector<int64_t>& colors,
                 const std::vector<int64_t>& assigned)
      : adapter_(&reversed_adapter), colors_(&colors), assigned_(&assigned) {}

  Value Init(uint32_t u) const {
    const int64_t vid = adapter_->view().graph().vertex_id(u);
    return ((*assigned_)[u] < 0 && (*colors_)[u] == vid) ? vid : -1;
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& label,
               std::span<const Message> msgs) {
    if ((*assigned_)[u] >= 0) return;
    if (ctx.superstep() > 0) {
      if (label != -1) return;
      for (const Message& m : msgs) {
        if (m == (*colors_)[u]) {
          label = m;
          break;
        }
      }
      if (label == -1) return;
    } else if (label == -1) {
      return;
    }
    adapter_->ForEachOutEdge(u,
                             [&](uint32_t dst, const StoredEdge&, EdgePos) {
                               ctx.Send(dst, label);
                             });
  }

 private:
  const SnapshotAdapter* adapter_;
  const std::vector<int64_t>* colors_;
  const std::vector<int64_t>* assigned_;
};

/// Runs forward-backward-coloring SCC on ONE snapshot with VCM, returning
/// per-vertex labels (max member id; kInfCost for inactive vertices) and
/// folding phase metrics into *metrics.
std::vector<int64_t> RunVcmSccSnapshot(const TemporalGraph& g,
                                       const TemporalGraph& reversed,
                                       TimePoint t, const VcmOptions& options,
                                       RunMetrics* metrics);

}  // namespace graphite

#endif  // GRAPHITE_ALGORITHMS_VCM_TI_KERNELS_H_
