#include "baselines/chlonos.h"

namespace graphite {

BaselineOutcome<int64_t> RunChlonosScc(const TemporalGraph& g,
                                       const TemporalGraph& reversed,
                                       const ChlonosOptions& options) {
  const size_t n = g.num_vertices();
  const TimePoint T = g.horizon();
  BaselineOutcome<int64_t> out;
  out.result.resize(n);

  // Per-snapshot assignment state shared with the phase kernels.
  std::vector<std::vector<int64_t>> assigned_by_t(
      static_cast<size_t>(T), std::vector<int64_t>(n, -1));

  for (TimePoint b0 = 0; b0 < T; b0 += options.batch_size) {
    const TimePoint b1 = std::min<TimePoint>(b0 + options.batch_size, T);
    ChlonosOptions window = options;
    window.window_begin = b0;
    window.window_end = b1;

    auto remaining = [&]() {
      size_t count = 0;
      for (TimePoint t = b0; t < b1; ++t) {
        for (VertexIdx v = 0; v < n; ++v) {
          if (g.vertex_interval(v).Contains(t) &&
              assigned_by_t[static_cast<size_t>(t)][v] < 0) {
            ++count;
          }
        }
      }
      return count;
    };

    while (remaining() > 0) {
      auto fwd = RunChlonos<VcmSccForward>(
          g, window, [&](const SnapshotAdapter& a) {
            return VcmSccForward(
                a, assigned_by_t[static_cast<size_t>(a.view().time())]);
          });
      out.metrics.Merge(fwd.metrics);
      // Materialize colors per snapshot for the backward kernels.
      std::vector<std::vector<int64_t>> colors_by_t(
          static_cast<size_t>(T), std::vector<int64_t>(n, -1));
      for (VertexIdx v = 0; v < n; ++v) {
        for (TimePoint t = b0; t < b1; ++t) {
          colors_by_t[static_cast<size_t>(t)][v] =
              fwd.result[v].Get(t).value_or(-1);
        }
      }
      auto bwd = RunChlonos<VcmSccBackward>(
          reversed, window, [&](const SnapshotAdapter& a) {
            const size_t t = static_cast<size_t>(a.view().time());
            return VcmSccBackward(a, colors_by_t[t], assigned_by_t[t]);
          });
      out.metrics.Merge(bwd.metrics);

      size_t newly = 0;
      for (VertexIdx v = 0; v < n; ++v) {
        for (TimePoint t = b0; t < b1; ++t) {
          if (!g.vertex_interval(v).Contains(t)) continue;
          auto& slot = assigned_by_t[static_cast<size_t>(t)][v];
          if (slot >= 0) continue;
          const int64_t label = bwd.result[v].Get(t).value_or(-1);
          if (label >= 0) {
            slot = label;
            ++newly;
          }
        }
      }
      GRAPHITE_CHECK(newly > 0);
    }
  }

  for (VertexIdx v = 0; v < n; ++v) {
    for (TimePoint t = 0; t < T; ++t) {
      if (g.vertex_interval(v).Contains(t)) {
        out.result[v].Set(Interval(t, t + 1),
                          assigned_by_t[static_cast<size_t>(t)][v]);
      }
    }
    out.result[v].Coalesce();
  }
  return out;
}

}  // namespace graphite
