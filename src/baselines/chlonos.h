// Chlonos (CHL) — the paper's clone of Chronos (§VII-A3): enhances MSB by
// loading a BATCH of snapshots into one vectorized in-memory layout and
// executing the per-snapshot VCM logic for the whole batch in lock-step
// supersteps. Compute calls and state stay separate per (snapshot,
// vertex), but the messaging phase identifies duplicate messages pushed
// to ADJACENT time-points of the same sink vertex and replaces each run
// with one message spanning the interval — saving network traffic and
// memory, which is exactly Chronos's sharing.
#ifndef GRAPHITE_BASELINES_CHLONOS_H_
#define GRAPHITE_BASELINES_CHLONOS_H_

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/common.h"
#include "algorithms/vcm_ti_kernels.h"
#include "baselines/msb.h"
#include "engine/delivery.h"
#include "graph/partitioner.h"
#include "icm/message.h"

namespace graphite {

struct ChlonosOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling when use_threads is set (engine/parallel.h).
  RuntimeOptions runtime;
  /// Snapshots per in-memory batch (the paper sizes this by what fits in
  /// distributed memory; e.g. 6 snapshots per batch for Twitter).
  int batch_size = 8;
  bool always_active = false;
  int max_supersteps = std::numeric_limits<int>::max();
  /// Snapshot window to process ([window_begin, window_end)); -1 means the
  /// full horizon. Used by the batch-level SCC driver.
  TimePoint window_begin = 0;
  TimePoint window_end = -1;
  /// Vertex->worker placement policy (graph/partitioner.h).
  Placement placement;
};

/// Send-side context for one (snapshot, worker): records messages with
/// their snapshot so the barrier can run-length share them.
template <typename Message>
class ChlonosContext {
 public:
  struct Pending {
    uint32_t dst;
    TimePoint t;
    Message payload;
  };

  ChlonosContext(int superstep, TimePoint t, std::vector<Pending>* outbox)
      : superstep_(superstep), t_(t), outbox_(outbox) {}

  int superstep() const { return superstep_; }

  /// Sends within the current snapshot (TI kernels never cross time).
  void Send(uint32_t dst, const Message& msg) {
    outbox_->push_back({dst, t_, msg});
  }

 private:
  int superstep_;
  TimePoint t_;
  std::vector<Pending>* outbox_;
};

/// Runs `make_program(adapter)`-built kernels over every snapshot of `g`
/// in batches, with cross-snapshot message sharing. Value extraction and
/// metrics mirror MSB so outcomes are directly comparable.
template <typename Program, typename MakeProgram>
BaselineOutcome<typename Program::Value> RunChlonos(
    const TemporalGraph& g, const ChlonosOptions& options,
    MakeProgram&& make_program) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;
  using Pending = typename ChlonosContext<Message>::Pending;

  const size_t n = g.num_vertices();
  const int num_workers = options.num_workers;
  // Vertex-level placement, built once; each batch's delivery plane routes
  // by this map while its inbox universe is the batch-expanded
  // (snapshot, vertex) units.
  const WorkerMap vmap(n, num_workers, options.placement,
                       [&g](uint32_t v) { return g.vertex_id(v); });
  const std::unique_ptr<Transport> transport =
      MakeTransport(options.runtime.transport, num_workers);

  BaselineOutcome<Value> out;
  out.result.resize(n);
  const int64_t run_start = NowNanos();

  const TimePoint window_end =
      options.window_end < 0 ? g.horizon() : options.window_end;
  for (TimePoint b0 = options.window_begin; b0 < window_end;
       b0 += options.batch_size) {
    const TimePoint b1 = std::min<TimePoint>(b0 + options.batch_size,
                                             window_end);
    const int B = static_cast<int>(b1 - b0);

    // Vectorized batch layout: unit index = local_t * n + v.
    std::vector<SnapshotAdapter> adapters;
    adapters.reserve(B);
    for (int k = 0; k < B; ++k) {
      adapters.emplace_back(SnapshotView(&g, b0 + k));
    }
    std::vector<Program> programs;
    programs.reserve(B);
    for (int k = 0; k < B; ++k) programs.push_back(make_program(adapters[k]));

    auto unit = [n](int k, VertexIdx v) { return k * n + v; };
    std::vector<Value> values(static_cast<size_t>(B) * n);
    // Delivery plane over the batch-expanded unit universe (unit k*n+v
    // lives wherever vertex v does). Unit indexes must fit the plane's
    // 32-bit unit type.
    GRAPHITE_CHECK(static_cast<size_t>(B) * n <=
                   std::numeric_limits<uint32_t>::max());
    DeliveryPlane<Message> plane(vmap, static_cast<size_t>(B) * n);
    plane.set_frontier_density(options.runtime.frontier_density);
    for (int k = 0; k < B; ++k) {
      for (VertexIdx v = 0; v < n; ++v) {
        if (adapters[k].UnitExists(v)) {
          values[unit(k, v)] = programs[k].Init(v);
        }
      }
    }

    // Persistent pool + fixed chunk table for this batch; per-chunk
    // outboxes merge in chunk order before the share-grouping sort, which
    // orders messages by content, so results match sequential mode.
    SuperstepRuntime rt(num_workers, options.use_threads, options.runtime,
                        vmap.worker_sizes());
    plane.Bind(&rt);
    const int num_chunks = rt.num_chunks();
    std::vector<std::vector<Pending>> outbox(num_chunks);
    // Shared interval messages are staged per (src, dst) worker pair: the
    // merge already folds chunks into one per-source stream, so rows are
    // per source worker and row_src is the identity.
    std::vector<std::vector<Writer>> wire(num_workers);
    for (auto& row : wire) row.resize(num_workers);
    std::vector<int> row_src(num_workers);
    for (int w = 0; w < num_workers; ++w) row_src[w] = w;
    std::vector<int64_t> chunk_calls(num_chunks, 0);
    std::vector<int64_t> chunk_ns(num_chunks, 0);

    for (int superstep = 0; superstep < options.max_supersteps; ++superstep) {
      SuperstepMetrics ss;
      ss.worker_compute_ns.assign(num_workers, 0);
      ss.worker_in_bytes.assign(num_workers, 0);
      ss.worker_compute_calls.assign(num_workers, 0);
      std::fill(chunk_calls.begin(), chunk_calls.end(), int64_t{0});

      ss.steals = rt.ComputePhase(
          &ss.thread_compute_ns, [&](int c, const WorkChunk& chunk, int) {
            const int64_t t0 = NowNanos();
            const std::vector<VertexIdx>& mine =
                plane.map().units_of(chunk.worker);
            const bool every_unit =
                superstep == 0 || options.always_active;
            const bool dense =
                every_unit || plane.FrontierIsDense(chunk.worker);
            for (int k = 0; k < B; ++k) {
              ChlonosContext<Message> ctx(superstep, b0 + k, &outbox[c]);
              const auto process = [&](VertexIdx v, uint32_t idx) {
                programs[k].Compute(ctx, v, values[idx],
                                    plane.MessagesFor(chunk.worker, idx));
                ++chunk_calls[c];
              };
              if (dense) {
                for (size_t i = chunk.begin; i < chunk.end; ++i) {
                  const VertexIdx v = mine[i];
                  if (!adapters[k].UnitExists(v)) continue;
                  const uint32_t idx = static_cast<uint32_t>(unit(k, v));
                  if (!every_unit && !plane.HasMail(idx)) continue;
                  process(v, idx);
                }
              } else {
                // Frontier path over the batch-expanded unit space: the
                // sorted mailed-unit list restricted to snapshot k's copy
                // of this chunk's vertex range. Decode only delivers to
                // snapshot-live units, but keep the liveness filter for
                // parity with the dense scan.
                const uint32_t lo =
                    static_cast<uint32_t>(unit(k, mine[chunk.begin]));
                const uint32_t hi = static_cast<uint32_t>(
                    chunk.end < mine.size() ? unit(k, mine[chunk.end])
                                            : unit(k + 1, 0));
                const std::span<const uint32_t> fs =
                    plane.FrontierSlice(chunk.worker, lo, hi);
                for (size_t i = 0; i < fs.size(); ++i) {
                  const uint32_t idx = fs[i];
                  const VertexIdx v =
                      static_cast<VertexIdx>(idx - unit(k, 0));
                  if (!adapters[k].UnitExists(v)) continue;
                  if (i + 1 < fs.size()) {
                    plane.Prefetch(chunk.worker, fs[i + 1]);
                  }
                  process(v, idx);
                }
              }
            }
            chunk_ns[c] = NowNanos() - t0;
          });
      for (int c = 0; c < num_chunks; ++c) {
        const int w = rt.chunk(c).worker;
        ss.worker_compute_ns[w] += chunk_ns[c];
        ss.worker_compute_calls[w] += chunk_calls[c];
        ss.compute_calls += chunk_calls[c];
      }

      const int64_t barrier_t = NowNanos();
      plane.Barrier();
      ss.barrier_ns = NowNanos() - barrier_t;

      // Messaging with Chronos-style sharing: a run of identical payloads
      // to the same sink at consecutive time-points becomes ONE interval
      // message on the wire.
      const int64_t msg_t = NowNanos();
      std::vector<Pending> pending;
      for (int src_w = 0; src_w < num_workers; ++src_w) {
        const auto [c0, c1] = rt.ChunkRange(src_w);
        if (c1 - c0 == 1) {
          pending = std::move(outbox[c0]);
          outbox[c0] = {};
        } else {
          pending.clear();
          for (int c = c0; c < c1; ++c) {
            pending.insert(pending.end(),
                           std::make_move_iterator(outbox[c].begin()),
                           std::make_move_iterator(outbox[c].end()));
            outbox[c].clear();
          }
        }
        if (pending.empty()) continue;
        // Serialize payloads once into a shared arena (offset/length
        // slices) so the share-grouping sorts without per-message
        // allocations.
        Writer arena;
        std::vector<std::pair<uint32_t, uint32_t>> slices(pending.size());
        for (size_t i = 0; i < pending.size(); ++i) {
          const uint32_t begin = static_cast<uint32_t>(arena.size());
          MessageTraits<Message>::Write(arena, pending[i].payload);
          slices[i] = {begin, static_cast<uint32_t>(arena.size()) - begin};
        }
        const std::string& bytes = arena.buffer();
        auto slice_cmp = [&](uint32_t a, uint32_t b) {
          const auto [ao, al] = slices[a];
          const auto [bo, bl] = slices[b];
          const int c = std::memcmp(bytes.data() + ao, bytes.data() + bo,
                                    std::min(al, bl));
          if (c != 0) return c < 0;
          return al < bl;
        };
        auto slice_eq = [&](uint32_t a, uint32_t b) {
          const auto [ao, al] = slices[a];
          const auto [bo, bl] = slices[b];
          return al == bl &&
                 std::memcmp(bytes.data() + ao, bytes.data() + bo, al) == 0;
        };
        std::vector<uint32_t> order(pending.size());
        for (uint32_t i = 0; i < pending.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
          if (pending[a].dst != pending[b].dst) {
            return pending[a].dst < pending[b].dst;
          }
          if (!slice_eq(a, b)) return slice_cmp(a, b);
          return pending[a].t < pending[b].t;
        });
        size_t i = 0;
        while (i < order.size()) {
          const Pending& head = pending[order[i]];
          TimePoint t_end = head.t + 1;
          size_t j = i + 1;
          while (j < order.size()) {
            const Pending& next = pending[order[j]];
            if (next.dst != head.dst || next.t != t_end ||
                !slice_eq(order[j], order[i])) {
              break;
            }
            ++t_end;
            ++j;
          }
          // One shared wire message covering [head.t, t_end):
          // dst + interval + payload slice (already-serialized bytes).
          const int dst_w = plane.map().WorkerOf(head.dst);
          Writer& row = wire[src_w][dst_w];
          row.WriteU64(head.dst);
          WriteInterval(row, Interval(head.t, t_end));
          row.Append(std::string_view(bytes).substr(slices[order[i]].first,
                                                    slices[order[i]].second));
          ss.messages += 1;
          i = j;
        }
      }
      // Carry the shared messages through the transport; the decode side
      // expands each interval message back into the per-snapshot inboxes.
      const bool any_message = plane.Route(
          *transport, std::span<std::vector<Writer>>(wire), row_src, &ss,
          [&plane, b0, n](Reader& reader, int dst) {
            const uint32_t dv = static_cast<uint32_t>(reader.ReadU64());
            const Interval iv = ReadInterval(reader);
            const Message msg = MessageTraits<Message>::Read(reader);
            for (TimePoint tt = iv.start; tt < iv.end; ++tt) {
              const size_t idx = static_cast<size_t>(tt - b0) * n + dv;
              plane.Deliver(dst, static_cast<uint32_t>(idx), msg);
            }
          });
      ss.messaging_ns = NowNanos() - msg_t;
      // The mailed lists now hold superstep+1's activation set (sealed by
      // Route above); record it before the next barrier clears it.
      plane.CountFrontier(&ss.frontier_units, &ss.frontier_dense_workers);
      out.metrics.Accumulate(ss);
      if (!any_message && !options.always_active) break;
    }

    for (int k = 0; k < B; ++k) {
      for (VertexIdx v = 0; v < n; ++v) {
        if (adapters[k].UnitExists(v)) {
          out.result[v].Set(Interval(b0 + k, b0 + k + 1), values[unit(k, v)]);
        }
      }
    }
  }

  out.metrics.makespan_ns = NowNanos() - run_start;
  for (auto& map : out.result) map.Coalesce();
  return out;
}

/// Chlonos drivers mirroring the MSB entry points.
inline BaselineOutcome<int64_t> RunChlonosBfs(const TemporalGraph& g,
                                              VertexId source,
                                              const ChlonosOptions& options) {
  return RunChlonos<VcmBfs>(g, options, [&](const SnapshotAdapter& a) {
    return VcmBfs(a, source);
  });
}

inline BaselineOutcome<int64_t> RunChlonosWcc(const TemporalGraph& undirected,
                                              const ChlonosOptions& options) {
  return RunChlonos<VcmWcc>(undirected, options,
                            [&](const SnapshotAdapter& a) { return VcmWcc(a); });
}

inline BaselineOutcome<double> RunChlonosPageRank(
    const TemporalGraph& g, const ChlonosOptions& options) {
  ChlonosOptions pr = options;
  pr.always_active = true;
  pr.max_supersteps = VcmPageRank::kIterations + 1;
  return RunChlonos<VcmPageRank>(
      g, pr, [&](const SnapshotAdapter& a) { return VcmPageRank(a); });
}

/// Chlonos SCC: the forward/backward coloring loop runs at batch level,
/// with per-snapshot assigned/color vectors. Declared here, defined in
/// chlonos.cc.
BaselineOutcome<int64_t> RunChlonosScc(const TemporalGraph& g,
                                       const TemporalGraph& reversed,
                                       const ChlonosOptions& options);

}  // namespace graphite

#endif  // GRAPHITE_BASELINES_CHLONOS_H_
