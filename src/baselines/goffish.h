// GoFFish-TS (GOF) baseline (paper §VII-A3, [12]): models the temporal
// graph as a sequence of snapshots. An OUTER loop walks the snapshots (in
// time order, or reverse for LD) delivering temporal messages; an INNER
// loop of VCM supersteps operates on one snapshot at a time. Vertex state
// is persistent across snapshots, and the user logic explicitly passes
// state forward as self-messages to the next snapshot — so neither compute
// nor messaging is shared across time, which is the baseline's cost.
#ifndef GRAPHITE_BASELINES_GOFFISH_H_
#define GRAPHITE_BASELINES_GOFFISH_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/common.h"
#include "baselines/msb.h"
#include "engine/message_traits.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "graph/snapshot.h"
#include "util/timer.h"

namespace graphite {

struct GoffishOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling when use_threads is set (engine/parallel.h).
  RuntimeOptions runtime;
  /// Process snapshots from horizon-1 down to 0 (LD's reverse traversal).
  bool reverse_time = false;
};

/// Send-side context for one (snapshot, worker). Same-snapshot sends are
/// delivered in the next inner superstep; other targets become temporal
/// messages delivered when the outer loop reaches that snapshot.
template <typename Message>
class GofContext {
 public:
  struct Pending {
    uint32_t dst;
    TimePoint t;
    Message payload;
  };

  GofContext(int inner_superstep, TimePoint t, std::vector<Pending>* outbox)
      : inner_superstep_(inner_superstep), t_(t), outbox_(outbox) {}

  /// Inner (within-snapshot) superstep number.
  int superstep() const { return inner_superstep_; }
  /// The snapshot currently being processed.
  TimePoint time() const { return t_; }

  /// Sends `msg` to vertex `dst` at snapshot `t` (any time, including the
  /// current snapshot). Messages outside [0, horizon) are dropped by the
  /// engine after being counted — they can never be delivered.
  void SendTemporal(uint32_t dst, TimePoint t, const Message& msg) {
    outbox_->push_back({dst, t, msg});
  }

 private:
  int inner_superstep_;
  TimePoint t_;
  std::vector<Pending>* outbox_;
};

/// Runs a GoFFish program over all snapshots. The per-(vertex, time)
/// result records the persistent value after each snapshot's inner loop.
///
/// Program contract:
///   using Value / Message;
///   Value Init(VertexIdx) const;
///   bool InitialActive(VertexIdx v, TimePoint t,
///                      const SnapshotView&) const;    // seed activation
///   void Compute(GofContext<Message>&, VertexIdx, Value&,
///                std::span<const Message>, const SnapshotView&);
template <typename Program>
BaselineOutcome<typename Program::Value> RunGoffish(
    const TemporalGraph& g, Program& program, const GoffishOptions& options) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;
  using Pending = typename GofContext<Message>::Pending;

  const size_t n = g.num_vertices();
  const TimePoint T = g.horizon();
  const int num_workers = options.num_workers;
  HashPartitioner partitioner(num_workers);
  std::vector<int> worker_of(n);
  std::vector<std::vector<VertexIdx>> vertices_by_worker(num_workers);
  for (VertexIdx v = 0; v < n; ++v) {
    worker_of[v] = partitioner.WorkerOf(g.vertex_id(v));
    vertices_by_worker[worker_of[v]].push_back(v);
  }

  std::vector<Value> values(n);
  for (VertexIdx v = 0; v < n; ++v) values[v] = program.Init(v);
  // Temporal mailboxes, one per future snapshot.
  std::vector<std::vector<std::pair<VertexIdx, Message>>> temporal(
      static_cast<size_t>(T));

  BaselineOutcome<Value> out;
  out.result.resize(n);
  const int64_t run_start = NowNanos();

  // Inboxes are reused across snapshots (cleared via the mailed list) so
  // the per-snapshot fixed cost stays proportional to actual traffic.
  std::vector<std::vector<Message>> inbox(n);
  std::vector<uint8_t> has_mail(n, 0);
  // Vertices holding unconsumed mail; the barrier clears exactly these
  // inboxes instead of scanning all n.
  std::vector<VertexIdx> mailed;
  auto deliver_mail = [&](VertexIdx v) {
    if (!has_mail[v]) {
      has_mail[v] = 1;
      mailed.push_back(v);
    }
  };
  auto clear_mail = [&] {
    for (const VertexIdx v : mailed) {
      inbox[v].clear();
      has_mail[v] = 0;
    }
    mailed.clear();
  };

  std::vector<size_t> worker_sizes(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    worker_sizes[w] = vertices_by_worker[w].size();
  }
  // Persistent pool + fixed chunk table, shared by every snapshot's inner
  // loop. Outboxes are per chunk: concatenating them in chunk order equals
  // sequential mode's per-worker outbox order exactly.
  SuperstepRuntime rt(num_workers, options.use_threads, options.runtime,
                      worker_sizes);
  const int num_chunks = rt.num_chunks();
  std::vector<std::vector<Pending>> outbox(num_chunks);
  std::vector<int64_t> chunk_calls(num_chunks, 0);
  std::vector<int64_t> chunk_ns(num_chunks, 0);

  for (TimePoint step = 0; step < T; ++step) {
    const TimePoint t = options.reverse_time ? T - 1 - step : step;
    SnapshotView view(&g, t);

    clear_mail();
    for (auto& [v, m] : temporal[static_cast<size_t>(t)]) {
      inbox[v].push_back(std::move(m));
      deliver_mail(v);
    }
    temporal[static_cast<size_t>(t)].clear();

    // Inner VCM loop over this snapshot.
    for (int inner = 0;; ++inner) {
      SuperstepMetrics ss;
      ss.worker_compute_ns.assign(num_workers, 0);
      ss.worker_in_bytes.assign(num_workers, 0);
      ss.worker_compute_calls.assign(num_workers, 0);
      std::fill(chunk_calls.begin(), chunk_calls.end(), int64_t{0});

      ss.steals = rt.ComputePhase(
          &ss.thread_compute_ns, [&](int c, const WorkChunk& chunk, int) {
            const int64_t t0 = NowNanos();
            GofContext<Message> ctx(inner, t, &outbox[c]);
            const std::vector<VertexIdx>& mine =
                vertices_by_worker[chunk.worker];
            for (size_t i = chunk.begin; i < chunk.end; ++i) {
              const VertexIdx v = mine[i];
              if (!view.VertexActive(v)) continue;
              const bool active =
                  has_mail[v] ||
                  (inner == 0 && program.InitialActive(v, t, view));
              if (!active) continue;
              program.Compute(ctx, v, values[v],
                              std::span<const Message>(inbox[v]), view);
              ++chunk_calls[c];
            }
            chunk_ns[c] = NowNanos() - t0;
          });
      for (int c = 0; c < num_chunks; ++c) {
        const int w = rt.chunk(c).worker;
        ss.worker_compute_ns[w] += chunk_ns[c];
        ss.worker_compute_calls[w] += chunk_calls[c];
        ss.compute_calls += chunk_calls[c];
      }

      const int64_t barrier_t = NowNanos();
      clear_mail();
      ss.barrier_ns = NowNanos() - barrier_t;

      // Route: serialize everything (bytes metric), deliver same-snapshot
      // messages to the next inner superstep, queue the rest temporally.
      // Chunk outboxes are walked in chunk order, which is the sequential
      // per-worker order.
      const int64_t msg_t = NowNanos();
      bool any_intra = false;
      for (int src_w = 0; src_w < num_workers; ++src_w) {
        const auto [c0, c1] = rt.ChunkRange(src_w);
        for (int c = c0; c < c1; ++c) {
          for (const Pending& p : outbox[c]) {
            Writer wm;
            wm.WriteU64(p.dst);
            wm.WriteI64(p.t);
            MessageTraits<Message>::Write(wm, p.payload);
            ss.messages += 1;
            ss.message_bytes += static_cast<int64_t>(wm.size());
            const int dst_w = worker_of[p.dst];
            if (dst_w != src_w) {
              ss.worker_in_bytes[dst_w] += static_cast<int64_t>(wm.size());
            }
            if (p.t == t) {
              inbox[p.dst].push_back(p.payload);
              deliver_mail(p.dst);
              any_intra = true;
            } else if (p.t >= 0 && p.t < T) {
              temporal[static_cast<size_t>(p.t)].emplace_back(p.dst, p.payload);
            }
            // Else: addressed beyond the horizon; counted, undeliverable.
          }
          outbox[c].clear();
        }
      }
      ss.messaging_ns = NowNanos() - msg_t;
      out.metrics.Accumulate(ss);
      if (!any_intra) break;
    }

    for (VertexIdx v = 0; v < n; ++v) {
      if (view.VertexActive(v)) {
        out.result[v].Set(Interval(t, t + 1), values[v]);
      }
    }
  }

  out.metrics.makespan_ns = NowNanos() - run_start;
  for (auto& map : out.result) map.Coalesce();
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_BASELINES_GOFFISH_H_
