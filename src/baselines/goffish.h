// GoFFish-TS (GOF) baseline (paper §VII-A3, [12]): models the temporal
// graph as a sequence of snapshots. An OUTER loop walks the snapshots (in
// time order, or reverse for LD) delivering temporal messages; an INNER
// loop of VCM supersteps operates on one snapshot at a time. Vertex state
// is persistent across snapshots, and the user logic explicitly passes
// state forward as self-messages to the next snapshot — so neither compute
// nor messaging is shared across time, which is the baseline's cost.
#ifndef GRAPHITE_BASELINES_GOFFISH_H_
#define GRAPHITE_BASELINES_GOFFISH_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/common.h"
#include "baselines/msb.h"
#include "engine/delivery.h"
#include "engine/message_traits.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "graph/snapshot.h"
#include "util/timer.h"

namespace graphite {

struct GoffishOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling when use_threads is set (engine/parallel.h).
  RuntimeOptions runtime;
  /// Process snapshots from horizon-1 down to 0 (LD's reverse traversal).
  bool reverse_time = false;
  /// Vertex->worker placement policy (graph/partitioner.h).
  Placement placement;
};

/// Send-side context for one (snapshot, worker). Same-snapshot sends are
/// delivered in the next inner superstep; other targets become temporal
/// messages delivered when the outer loop reaches that snapshot.
template <typename Message>
class GofContext {
 public:
  struct Pending {
    uint32_t dst;
    TimePoint t;
    Message payload;
  };

  GofContext(int inner_superstep, TimePoint t, std::vector<Pending>* outbox)
      : inner_superstep_(inner_superstep), t_(t), outbox_(outbox) {}

  /// Inner (within-snapshot) superstep number.
  int superstep() const { return inner_superstep_; }
  /// The snapshot currently being processed.
  TimePoint time() const { return t_; }

  /// Sends `msg` to vertex `dst` at snapshot `t` (any time, including the
  /// current snapshot). Messages outside [0, horizon) are dropped by the
  /// engine after being counted — they can never be delivered.
  void SendTemporal(uint32_t dst, TimePoint t, const Message& msg) {
    outbox_->push_back({dst, t, msg});
  }

 private:
  int inner_superstep_;
  TimePoint t_;
  std::vector<Pending>* outbox_;
};

/// Runs a GoFFish program over all snapshots. The per-(vertex, time)
/// result records the persistent value after each snapshot's inner loop.
///
/// Program contract:
///   using Value / Message;
///   Value Init(VertexIdx) const;
///   bool InitialActive(VertexIdx v, TimePoint t,
///                      const SnapshotView&) const;    // seed activation
///   void Compute(GofContext<Message>&, VertexIdx, Value&,
///                std::span<const Message>, const SnapshotView&);
template <typename Program>
BaselineOutcome<typename Program::Value> RunGoffish(
    const TemporalGraph& g, Program& program, const GoffishOptions& options) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;
  using Pending = typename GofContext<Message>::Pending;

  const size_t n = g.num_vertices();
  const TimePoint T = g.horizon();
  const int num_workers = options.num_workers;

  // Delivery plane (engine/delivery.h): placement, flat per-worker
  // inboxes and mail tracking, shared by every snapshot's inner loop.
  DeliveryPlane<Message> plane(WorkerMap(
      n, num_workers, options.placement,
      [&g](uint32_t v) { return g.vertex_id(v); }));
  plane.set_frontier_density(options.runtime.frontier_density);

  std::vector<Value> values(n);
  for (VertexIdx v = 0; v < n; ++v) values[v] = program.Init(v);
  // Temporal mailboxes, one per future snapshot.
  std::vector<std::vector<std::pair<VertexIdx, Message>>> temporal(
      static_cast<size_t>(T));

  BaselineOutcome<Value> out;
  out.result.resize(n);
  const int64_t run_start = NowNanos();

  // Persistent pool + fixed chunk table, shared by every snapshot's inner
  // loop. Outboxes are per chunk: concatenating them in chunk order equals
  // sequential mode's per-worker outbox order exactly.
  SuperstepRuntime rt(num_workers, options.use_threads, options.runtime,
                      plane.map().worker_sizes());
  plane.Bind(&rt);
  const std::unique_ptr<Transport> transport =
      MakeTransport(options.runtime.transport, num_workers);
  const int num_chunks = rt.num_chunks();
  std::vector<std::vector<Pending>> outbox(num_chunks);
  // Same-snapshot messages travel as wire rows through the plane (the
  // same (dst, t, payload) encoding the byte metrics always used);
  // cross-snapshot ones stay typed in the temporal mailboxes.
  std::vector<std::vector<Writer>> wire(num_chunks);
  for (auto& row : wire) row.resize(num_workers);
  std::vector<int> row_src(num_chunks);
  for (int c = 0; c < num_chunks; ++c) row_src[c] = rt.chunk(c).worker;
  std::vector<int64_t> chunk_calls(num_chunks, 0);
  std::vector<int64_t> chunk_ns(num_chunks, 0);

  for (TimePoint step = 0; step < T; ++step) {
    const TimePoint t = options.reverse_time ? T - 1 - step : step;
    SnapshotView view(&g, t);

    // Snapshot boundary: drop whatever the previous snapshot left sealed,
    // then seed this snapshot's inboxes from its temporal mailbox.
    plane.Barrier();
    for (auto& [v, m] : temporal[static_cast<size_t>(t)]) {
      plane.Deliver(plane.map().WorkerOf(v), v, std::move(m));
    }
    temporal[static_cast<size_t>(t)].clear();
    plane.SealAll();

    // Inner VCM loop over this snapshot.
    for (int inner = 0;; ++inner) {
      SuperstepMetrics ss;
      ss.worker_compute_ns.assign(num_workers, 0);
      ss.worker_in_bytes.assign(num_workers, 0);
      ss.worker_compute_calls.assign(num_workers, 0);
      std::fill(chunk_calls.begin(), chunk_calls.end(), int64_t{0});

      ss.steals = rt.ComputePhase(
          &ss.thread_compute_ns, [&](int c, const WorkChunk& chunk, int) {
            const int64_t t0 = NowNanos();
            GofContext<Message> ctx(inner, t, &outbox[c]);
            const std::vector<VertexIdx>& mine =
                plane.map().units_of(chunk.worker);
            const auto process = [&](VertexIdx v) {
              program.Compute(ctx, v, values[v],
                              plane.MessagesFor(chunk.worker, v), view);
              ++chunk_calls[c];
            };
            if (inner == 0 || plane.FrontierIsDense(chunk.worker)) {
              // Dense scan: inner superstep 0 must probe InitialActive on
              // every vertex, and over-threshold frontiers fall back here.
              for (size_t i = chunk.begin; i < chunk.end; ++i) {
                const VertexIdx v = mine[i];
                if (!view.VertexActive(v)) continue;
                const bool active =
                    plane.HasMail(v) ||
                    (inner == 0 && program.InitialActive(v, t, view));
                if (!active) continue;
                process(v);
              }
            } else {
              // Frontier path: only mailed vertices can be active past
              // inner superstep 0. The snapshot-liveness filter still
              // applies (a vertex can be mailed by a neighbor even where
              // the snapshot excludes it).
              const uint32_t lo = mine[chunk.begin];
              const uint32_t hi = chunk.end < mine.size()
                                      ? mine[chunk.end]
                                      : std::numeric_limits<uint32_t>::max();
              const std::span<const uint32_t> fs =
                  plane.FrontierSlice(chunk.worker, lo, hi);
              for (size_t i = 0; i < fs.size(); ++i) {
                const uint32_t v = fs[i];
                if (!view.VertexActive(v)) continue;
                if (i + 1 < fs.size()) {
                  plane.Prefetch(chunk.worker, fs[i + 1]);
                }
                process(v);
              }
            }
            chunk_ns[c] = NowNanos() - t0;
          });
      for (int c = 0; c < num_chunks; ++c) {
        const int w = rt.chunk(c).worker;
        ss.worker_compute_ns[w] += chunk_ns[c];
        ss.worker_compute_calls[w] += chunk_calls[c];
        ss.compute_calls += chunk_calls[c];
      }

      const int64_t barrier_t = NowNanos();
      plane.Barrier();
      ss.barrier_ns = NowNanos() - barrier_t;

      // Route: serialize everything (bytes metric). Same-snapshot messages
      // travel as wire rows through the plane and reappear in the next
      // inner superstep; cross-snapshot ones are byte-counted with the
      // identical encoding, then queued typed in the temporal mailboxes.
      // Chunk outboxes are walked in chunk order, which is the sequential
      // per-worker order.
      const int64_t msg_t = NowNanos();
      Writer scratch;
      for (int src_w = 0; src_w < num_workers; ++src_w) {
        const auto [c0, c1] = rt.ChunkRange(src_w);
        for (int c = c0; c < c1; ++c) {
          for (Pending& p : outbox[c]) {
            const int dst_w = plane.map().WorkerOf(p.dst);
            if (p.t == t) {
              Writer& row = wire[c][dst_w];
              row.WriteU64(p.dst);
              row.WriteI64(p.t);
              MessageTraits<Message>::Write(row, p.payload);
              ss.messages += 1;
              // Bytes are accounted by plane.Route below.
            } else {
              scratch.Clear();
              scratch.WriteU64(p.dst);
              scratch.WriteI64(p.t);
              MessageTraits<Message>::Write(scratch, p.payload);
              ss.messages += 1;
              ss.message_bytes += static_cast<int64_t>(scratch.size());
              if (dst_w != src_w) {
                ss.worker_in_bytes[dst_w] +=
                    static_cast<int64_t>(scratch.size());
              }
              if (p.t >= 0 && p.t < T) {
                temporal[static_cast<size_t>(p.t)].emplace_back(
                    p.dst, std::move(p.payload));
              }
              // Else: addressed beyond the horizon; counted, undeliverable.
            }
          }
          outbox[c].clear();
        }
      }
      const bool any_intra = plane.Route(
          *transport, std::span<std::vector<Writer>>(wire), row_src, &ss,
          [&plane, t](Reader& reader, int dst) {
            const uint32_t dv = static_cast<uint32_t>(reader.ReadU64());
            const TimePoint mt = reader.ReadI64();
            GRAPHITE_CHECK(mt == t);
            plane.Deliver(dst, dv, MessageTraits<Message>::Read(reader));
          });
      ss.messaging_ns = NowNanos() - msg_t;
      // The mailed lists now hold the next inner superstep's activation
      // set (sealed by Route above); record it before it is consumed.
      plane.CountFrontier(&ss.frontier_units, &ss.frontier_dense_workers);
      out.metrics.Accumulate(ss);
      if (!any_intra) break;
    }

    for (VertexIdx v = 0; v < n; ++v) {
      if (view.VertexActive(v)) {
        out.result[v].Set(Interval(t, t + 1), values[v]);
      }
    }
  }

  out.metrics.makespan_ns = NowNanos() - run_start;
  for (auto& map : out.result) map.Coalesce();
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_BASELINES_GOFFISH_H_
