// MSB — the Multi-Snapshot Baseline (paper §VII-A3): loads and executes on
// each snapshot independently with plain vertex-centric logic. The
// reference point every other platform is compared against for TI
// algorithms; maximum redundancy across time, zero sharing.
#ifndef GRAPHITE_BASELINES_MSB_H_
#define GRAPHITE_BASELINES_MSB_H_

#include "algorithms/common.h"
#include "algorithms/vcm_ti_kernels.h"

namespace graphite {

/// Result of a per-snapshot baseline run: per-(vertex, time) outcome plus
/// metrics summed over all snapshots.
template <typename V>
struct BaselineOutcome {
  TemporalResult<V> result;
  RunMetrics metrics;
};

namespace msb_internal {

/// Shared MSB loop: for each snapshot, builds the program via
/// `make_program(adapter)`, runs it and stores per-vertex values.
template <typename V, typename MakeProgram>
BaselineOutcome<V> RunPerSnapshot(const TemporalGraph& g,
                                  const VcmOptions& options,
                                  MakeProgram&& make_program,
                                  const VcmOptions* per_run_options = nullptr) {
  BaselineOutcome<V> out;
  out.result.resize(g.num_vertices());
  for (TimePoint t = 0; t < g.horizon(); ++t) {
    SnapshotAdapter adapter{SnapshotView(&g, t)};
    auto program = make_program(adapter);
    std::vector<V> values;
    out.metrics.Merge(RunVcm(adapter, program,
                             per_run_options ? *per_run_options : options,
                             &values));
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      if (adapter.UnitExists(v)) {
        out.result[v].Set(Interval(t, t + 1), values[v]);
      }
    }
  }
  for (auto& map : out.result) map.Coalesce();
  return out;
}

}  // namespace msb_internal

/// BFS per snapshot from `source`.
inline BaselineOutcome<int64_t> RunMsbBfs(const TemporalGraph& g,
                                          VertexId source,
                                          const VcmOptions& options) {
  return msb_internal::RunPerSnapshot<int64_t>(
      g, options,
      [&](const SnapshotAdapter& a) { return VcmBfs(a, source); });
}

/// WCC per snapshot; `undirected` must be MakeUndirected of the graph.
inline BaselineOutcome<int64_t> RunMsbWcc(const TemporalGraph& undirected,
                                          const VcmOptions& options) {
  return msb_internal::RunPerSnapshot<int64_t>(
      undirected, options,
      [&](const SnapshotAdapter& a) { return VcmWcc(a); });
}

/// PageRank per snapshot (always-active, fixed iterations).
inline BaselineOutcome<double> RunMsbPageRank(const TemporalGraph& g,
                                              const VcmOptions& options) {
  const VcmOptions pr_options = VcmPageRankOptions(options);
  return msb_internal::RunPerSnapshot<double>(
      g, options, [&](const SnapshotAdapter& a) { return VcmPageRank(a); },
      &pr_options);
}

/// SCC per snapshot via forward-backward coloring; `reversed` must be
/// ReverseGraph of `g`.
inline BaselineOutcome<int64_t> RunMsbScc(const TemporalGraph& g,
                                          const TemporalGraph& reversed,
                                          const VcmOptions& options) {
  BaselineOutcome<int64_t> out;
  out.result.resize(g.num_vertices());
  for (TimePoint t = 0; t < g.horizon(); ++t) {
    const std::vector<int64_t> labels =
        RunVcmSccSnapshot(g, reversed, t, options, &out.metrics);
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      if (labels[v] != kInfCost) {
        out.result[v].Set(Interval(t, t + 1), labels[v]);
      }
    }
  }
  for (auto& map : out.result) map.Coalesce();
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_BASELINES_MSB_H_
