// TGB — the Transformed Graph Baseline (paper §II-C, §VII-A3): converts
// the interval graph into an algorithm-specific time-expanded graph (one
// replica per vertex per relevant time-point) and runs plain VCM on it.
// Chain edges between consecutive replicas of one vertex carry the shared
// state — those extra messages and compute calls are the baseline's
// intrinsic overhead, alongside the bloated graph size (Table 1, Fig 6a).
#ifndef GRAPHITE_BASELINES_TGB_H_
#define GRAPHITE_BASELINES_TGB_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/common.h"
#include "algorithms/icm_clustering.h"
#include "baselines/msb.h"
#include "vcm/adapters.h"
#include "vcm/vcm_engine.h"

namespace graphite {

/// Reverse CSR over a TransformedGraph (for latest-departure's backward
/// flood). Replica indices and times are shared with the forward graph.
class ReversedTransformedAdapter {
 public:
  ReversedTransformedAdapter(const TransformedGraph* tg,
                             const TemporalGraph* g)
      : tg_(tg), g_(g) {
    const size_t r = tg->num_replicas();
    std::vector<uint32_t> degree(r, 0);
    for (ReplicaIdx src = 0; src < r; ++src) {
      for (const auto& e : tg->OutEdges(src)) ++degree[e.dst];
    }
    offsets_.assign(r + 1, 0);
    for (size_t i = 0; i < r; ++i) offsets_[i + 1] = offsets_[i] + degree[i];
    edges_.resize(offsets_.back());
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (ReplicaIdx src = 0; src < r; ++src) {
      for (const auto& e : tg->OutEdges(src)) {
        edges_[cursor[e.dst]++] = {src, e.cost, e.travel_time, e.is_chain};
      }
    }
  }

  size_t NumUnits() const { return tg_->num_replicas(); }
  bool UnitExists(uint32_t) const { return true; }
  int64_t PartitionId(uint32_t r) const {
    return g_->vertex_id(tg_->replica_vertex(static_cast<ReplicaIdx>(r)));
  }
  template <typename Fn>
  void ForEachOutEdge(uint32_t r, Fn&& fn) const {
    for (uint32_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      fn(edges_[k].dst, edges_[k]);
    }
  }

  const TransformedGraph& transformed() const { return *tg_; }

 private:
  const TransformedGraph* tg_;
  const TemporalGraph* g_;
  std::vector<uint32_t> offsets_;
  std::vector<TransformedGraph::TransitEdge> edges_;
};

// ---------------------------------------------------------------------
// VCM programs over replicas.
// ---------------------------------------------------------------------

/// SSSP on the transformed graph: replicas of the source start at 0;
/// transit edges add their cost, chain edges transfer state for free.
class TgbSssp {
 public:
  using Value = int64_t;
  using Message = int64_t;

  TgbSssp(const TransformedAdapter& adapter, VertexId source)
      : adapter_(&adapter), source_(source) {}

  Value Init(uint32_t r) const {
    const auto& tg = adapter_->transformed();
    return adapter_->graph().vertex_id(
               tg.replica_vertex(static_cast<ReplicaIdx>(r))) == source_
               ? 0
               : kInfCost;
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      Message best = kInfCost;
      for (const Message& m : msgs) best = std::min(best, m);
      if (best >= val) return;
      val = best;
    }
    if (val == kInfCost) return;
    adapter_->ForEachOutEdge(
        r, [&](uint32_t dst, const TransformedGraph::TransitEdge& e) {
          ctx.Send(dst, val + e.cost);
        });
  }

 private:
  const TransformedAdapter* adapter_;
  VertexId source_;
};

/// Reachability flood on the transformed graph (serves EAT and RH: the
/// earliest reached replica time is the earliest arrival).
class TgbReach {
 public:
  using Value = uint8_t;
  using Message = uint8_t;

  TgbReach(const TransformedAdapter& adapter, VertexId source)
      : adapter_(&adapter), source_(source) {}

  Value Init(uint32_t r) const {
    const auto& tg = adapter_->transformed();
    return adapter_->graph().vertex_id(
               tg.replica_vertex(static_cast<ReplicaIdx>(r))) == source_
               ? 1
               : 0;
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      if (val == 1 || msgs.empty()) return;
      val = 1;
    }
    if (val == 0) return;
    adapter_->ForEachOutEdge(
        r, [&](uint32_t dst, const TransformedGraph::TransitEdge&) {
          ctx.Send(dst, 1);
        });
  }

 private:
  const TransformedAdapter* adapter_;
  VertexId source_;
};

/// FAST on the transformed graph: each source replica starts a journey at
/// its own time; the maximum start time floods forward.
class TgbFast {
 public:
  using Value = int64_t;
  using Message = int64_t;

  TgbFast(const TransformedAdapter& adapter, VertexId source)
      : adapter_(&adapter), source_(source) {}

  Value Init(uint32_t r) const {
    const auto& tg = adapter_->transformed();
    const ReplicaIdx rep = static_cast<ReplicaIdx>(r);
    return adapter_->graph().vertex_id(tg.replica_vertex(rep)) == source_
               ? tg.replica_time(rep)
               : kNegInf;
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      Message best = kNegInf;
      for (const Message& m : msgs) best = std::max(best, m);
      if (best <= val) return;
      val = best;
    }
    if (val == kNegInf) return;
    adapter_->ForEachOutEdge(
        r, [&](uint32_t dst, const TransformedGraph::TransitEdge&) {
          ctx.Send(dst, val);
        });
  }

 private:
  const TransformedAdapter* adapter_;
  VertexId source_;
};

/// TMST on the transformed graph: (arrival, parent) pairs, minimized.
class TgbTmst {
 public:
  using Value = std::pair<int64_t, int64_t>;
  using Message = std::pair<int64_t, int64_t>;

  TgbTmst(const TransformedAdapter& adapter, VertexId source)
      : adapter_(&adapter), source_(source) {}

  Value Init(uint32_t r) const {
    const auto& tg = adapter_->transformed();
    const ReplicaIdx rep = static_cast<ReplicaIdx>(r);
    const VertexId vid = adapter_->graph().vertex_id(tg.replica_vertex(rep));
    return vid == source_ ? Value{tg.replica_time(rep), vid}
                          : Value{kInfCost, -1};
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      Value best = val;
      for (const Message& m : msgs) best = std::min(best, m);
      if (!(best < val)) return;
      val = best;
    }
    if (val.first == kInfCost) return;
    const auto& tg = adapter_->transformed();
    const VertexId me =
        adapter_->graph().vertex_id(tg.replica_vertex(static_cast<ReplicaIdx>(r)));
    adapter_->ForEachOutEdge(
        r, [&](uint32_t dst, const TransformedGraph::TransitEdge& e) {
          if (e.is_chain) {
            ctx.Send(dst, val);  // State transfer keeps the arrival.
          } else {
            ctx.Send(dst, {tg.replica_time(static_cast<ReplicaIdx>(dst)), me});
          }
        });
  }

 private:
  const TransformedAdapter* adapter_;
  VertexId source_;
};

/// Latest departure: backward ok-flood on the reversed transformed graph.
class TgbLd {
 public:
  using Value = uint8_t;  ///< 1 = target reachable by the deadline.
  using Message = uint8_t;

  TgbLd(const ReversedTransformedAdapter& adapter, const TemporalGraph& g,
        VertexId target, TimePoint deadline)
      : adapter_(&adapter), g_(&g), target_(target), deadline_(deadline) {}

  Value Init(uint32_t r) const {
    const auto& tg = adapter_->transformed();
    const ReplicaIdx rep = static_cast<ReplicaIdx>(r);
    return (g_->vertex_id(tg.replica_vertex(rep)) == target_ &&
            tg.replica_time(rep) <= deadline_)
               ? 1
               : 0;
  }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() > 0) {
      if (val == 1 || msgs.empty()) return;
      val = 1;
    }
    if (val == 0) return;
    adapter_->ForEachOutEdge(
        r, [&](uint32_t dst, const TransformedGraph::TransitEdge&) {
          ctx.Send(dst, 1);
        });
  }

 private:
  const ReversedTransformedAdapter* adapter_;
  const TemporalGraph* g_;
  VertexId target_;
  TimePoint deadline_;
};

/// Triangle counting on the zero-travel-time transformed graph: the
/// 4-superstep closure protocol among same-time replicas. Chain edges are
/// skipped — they would leak probes across time-points.
class TgbTriangle {
 public:
  using Value = TcState;
  using Message = std::pair<int64_t, int64_t>;  ///< (hop, origin id).

  explicit TgbTriangle(const TransformedAdapter& adapter)
      : adapter_(&adapter) {}

  Value Init(uint32_t) const { return TcState{}; }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t r, Value& val,
               std::span<const Message> msgs) {
    const auto& tg = adapter_->transformed();
    const VertexId me =
        adapter_->graph().vertex_id(tg.replica_vertex(static_cast<ReplicaIdx>(r)));
    auto for_each_transit = [&](auto&& fn) {
      adapter_->ForEachOutEdge(
          r, [&](uint32_t dst, const TransformedGraph::TransitEdge& e) {
            if (!e.is_chain) fn(dst);
          });
    };
    switch (ctx.superstep()) {
      case 0:
        val.started = true;
        for_each_transit([&](uint32_t dst) { ctx.Send(dst, {1, me}); });
        return;
      case 1:
        for (const Message& m : msgs) {
          if (m.first == 1 && m.second != me) val.forward.push_back(m.second);
        }
        for_each_transit([&](uint32_t dst) {
          const VertexId dst_id = adapter_->graph().vertex_id(
              tg.replica_vertex(static_cast<ReplicaIdx>(dst)));
          for (int64_t origin : val.forward) {
            if (origin != dst_id) ctx.Send(dst, {2, origin});
          }
        });
        return;
      case 2:
        for (const Message& m : msgs) {
          if (m.first == 2) val.close.push_back(m.second);
        }
        for_each_transit([&](uint32_t dst) {
          const VertexId dst_id = adapter_->graph().vertex_id(
              tg.replica_vertex(static_cast<ReplicaIdx>(dst)));
          for (int64_t origin : val.close) {
            if (origin == dst_id) ctx.Send(dst, {3, origin});
          }
        });
        return;
      default:
        for (const Message& m : msgs) {
          if (m.first == 3) ++val.triangles;
        }
        return;
    }
  }

 private:
  const TransformedAdapter* adapter_;
};

// ---------------------------------------------------------------------
// Result assembly: replica values -> per-(vertex, time) temporal results
// (a replica's value persists until the vertex's next replica).
// ---------------------------------------------------------------------

template <typename V, typename Keep>
TemporalResult<V> AssembleFromReplicas(const TransformedGraph& tg,
                                       const TemporalGraph& g,
                                       const std::vector<V>& values,
                                       Keep&& keep) {
  TemporalResult<V> out(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    auto replicas = tg.ReplicasOf(v);
    for (size_t i = 0; i < replicas.size(); ++i) {
      const ReplicaIdx r = replicas[i];
      if (!keep(values[r])) continue;
      const TimePoint start = tg.replica_time(r);
      const TimePoint end = i + 1 < replicas.size()
                                ? tg.replica_time(replicas[i + 1])
                                : g.vertex_interval(v).end;
      if (start < end) out[v].Set(Interval(start, end), values[r]);
    }
    out[v].Coalesce();
  }
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_BASELINES_TGB_H_
