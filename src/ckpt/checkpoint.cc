#include "ckpt/checkpoint.h"

#include "util/serde.h"

namespace graphite {

std::string EncodeFrame(const CheckpointFrame& frame) {
  Writer w;
  w.WriteU64(static_cast<uint64_t>(frame.superstep));
  w.WriteU64(frame.num_units);
  w.WriteI64(frame.counters.supersteps);
  w.WriteI64(frame.counters.compute_calls);
  w.WriteI64(frame.counters.scatter_calls);
  w.WriteI64(frame.counters.messages);
  w.WriteI64(frame.counters.message_bytes);
  w.WriteI64(frame.counters.active_compute_calls);
  w.WriteI64(frame.counters.suppressed_vertices);
  w.WriteU64(frame.sections.size());
  for (const std::string& s : frame.sections) w.WriteU64(s.size());
  std::string out = w.Release();
  for (const std::string& s : frame.sections) out += s;
  return out;
}

Result<CheckpointFrame> DecodeFrame(const std::string& payload) {
  Reader r(payload);
  CheckpointFrame frame;
  uint64_t superstep = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&superstep));
  if (superstep > 1u << 30) {
    return Status::DataLoss("implausible checkpoint superstep " +
                            std::to_string(superstep));
  }
  frame.superstep = static_cast<int>(superstep);
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&frame.num_units));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.supersteps));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.compute_calls));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.scatter_calls));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.messages));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.message_bytes));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.active_compute_calls));
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&frame.counters.suppressed_vertices));
  uint64_t num_sections = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&num_sections));
  if (num_sections > payload.size()) {
    // Each section costs at least one directory byte; anything larger is
    // a garbage count, not a real frame.
    return Status::DataLoss("implausible section count " +
                            std::to_string(num_sections) + " at byte " +
                            std::to_string(r.position()));
  }
  std::vector<uint64_t> lengths(num_sections);
  for (uint64_t i = 0; i < num_sections; ++i) {
    GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&lengths[i]));
  }
  frame.sections.reserve(num_sections);
  size_t pos = r.position();
  for (uint64_t i = 0; i < num_sections; ++i) {
    if (lengths[i] > payload.size() - pos) {
      return Status::DataLoss("truncated worker section " +
                              std::to_string(i) + " at byte " +
                              std::to_string(pos) + " (wants " +
                              std::to_string(lengths[i]) + " bytes)");
    }
    frame.sections.push_back(payload.substr(pos, lengths[i]));
    pos += lengths[i];
  }
  if (pos != payload.size()) {
    return Status::DataLoss("trailing bytes after checkpoint frame at byte " +
                            std::to_string(pos));
  }
  return frame;
}

}  // namespace graphite
