// The checkpoint frame: everything a BSP engine needs to resume a run at
// a superstep barrier, independent of the engine's State/Message types.
//
// A frame is written at the barrier after superstep s's messaging phase,
// so it captures the exact input of superstep s+1:
//   * superstep        — the next superstep to execute (s+1);
//   * carry counters   — the run's cumulative model-intrinsic counters
//                        (supersteps, compute/scatter calls, messages,
//                        bytes, ...) so a resumed run reports totals
//                        byte-identical to an uninterrupted one;
//   * worker sections  — one opaque byte blob per logical worker, encoded
//                        in parallel on the engine's thread pool. Each
//                        section holds the worker's owned units: their
//                        partitioned interval states (or plain values for
//                        VCM), halted/active flags, and the undelivered
//                        inbox for superstep s+1.
//
// The frame layout is engine-agnostic; the engines own their section
// encoding (they have the Program's State/Message types). DecodeFrame is
// Status-returning with byte offsets — the same DataLoss error family as
// io/binary_format — though in practice the store's CRC rejects damage
// before a frame is ever decoded.
//
// Frame payload layout (all varints; see CheckpointStore for the
// checksummed envelope):
//   superstep | num_units
//   | counters: supersteps, compute_calls, scatter_calls, messages,
//               message_bytes, active_compute_calls, suppressed_vertices
//   | #sections | per section: byte length
//   | section bytes, back to back
#ifndef GRAPHITE_CKPT_CHECKPOINT_H_
#define GRAPHITE_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace graphite {

class CheckpointStore;
class FaultInjector;

/// Cumulative model-intrinsic counters carried across a resume. Timing
/// metrics are deliberately absent: wall clock cannot be replayed, counts
/// can.
struct CarryCounters {
  int64_t supersteps = 0;
  int64_t compute_calls = 0;
  int64_t scatter_calls = 0;
  int64_t messages = 0;
  int64_t message_bytes = 0;
  int64_t active_compute_calls = 0;  ///< ICM only; 0 for VCM.
  int64_t suppressed_vertices = 0;   ///< ICM only; 0 for VCM.
};

struct CheckpointFrame {
  int superstep = 0;        ///< Next superstep to execute on resume.
  uint64_t num_units = 0;   ///< Sanity: vertex/unit count of the run.
  CarryCounters counters;
  std::vector<std::string> sections;  ///< One per logical worker.
};

/// Serializes a frame to the payload the store checksums and commits.
std::string EncodeFrame(const CheckpointFrame& frame);

/// Parses a frame payload. DataLoss with byte-offset context on damage.
Result<CheckpointFrame> DecodeFrame(const std::string& payload);

/// How a Run() interacts with the checkpoint subsystem. The policy that
/// decides *when* to checkpoint lives in RuntimeOptions (see
/// ckpt/checkpoint_policy.h); this carries the *where* and the recovery
/// request. All pointers are borrowed and may be null.
struct RecoveryContext {
  /// Destination of policy-triggered checkpoints, and the source of a
  /// resume. Null disables both.
  CheckpointStore* store = nullptr;
  /// Load a checkpoint before the first superstep and continue from it.
  /// When the store has no valid checkpoint the run starts from scratch
  /// (cold start and first run share one code path).
  bool resume = false;
  /// Specific checkpoint superstep to resume from; -1 = newest valid
  /// (corrupt files skipped via checksum).
  int resume_from = -1;
  /// Deterministic crash injection for recovery tests; null in production.
  FaultInjector* fault = nullptr;
};

}  // namespace graphite

#endif  // GRAPHITE_CKPT_CHECKPOINT_H_
