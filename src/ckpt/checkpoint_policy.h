// When the BSP engines snapshot their state. A checkpoint is taken at a
// superstep barrier — after the messaging phase has delivered the next
// superstep's inboxes — so the persisted image is exactly the input of the
// next superstep (see ckpt/checkpoint.h for what is captured). The policy
// only decides *whether* a given barrier checkpoints; it is part of
// RuntimeOptions so every engine shares the same knob.
#ifndef GRAPHITE_CKPT_CHECKPOINT_POLICY_H_
#define GRAPHITE_CKPT_CHECKPOINT_POLICY_H_

#include <cstdint>

namespace graphite {

struct CheckpointPolicy {
  enum class Mode {
    kNone,       ///< Never checkpoint (default).
    kEveryK,     ///< At every k-th superstep barrier.
    kWallClock,  ///< When at least interval_ns elapsed since the last one.
  };

  Mode mode = Mode::kNone;
  /// kEveryK: checkpoint after supersteps k-1, 2k-1, ... (i.e. every k-th
  /// barrier). 1 = every barrier.
  int every_k = 1;
  /// kWallClock: minimum nanoseconds between checkpoints. 0 = every
  /// barrier.
  int64_t interval_ns = 0;

  static CheckpointPolicy None() { return {}; }
  static CheckpointPolicy EveryK(int k) {
    CheckpointPolicy p;
    p.mode = Mode::kEveryK;
    p.every_k = k < 1 ? 1 : k;
    return p;
  }
  static CheckpointPolicy WallClock(int64_t ns) {
    CheckpointPolicy p;
    p.mode = Mode::kWallClock;
    p.interval_ns = ns < 0 ? 0 : ns;
    return p;
  }

  bool enabled() const { return mode != Mode::kNone; }

  /// Decides the barrier at the end of `superstep`; `since_last_ns` is the
  /// wall time elapsed since the previous checkpoint (or run start).
  bool ShouldCheckpoint(int superstep, int64_t since_last_ns) const {
    switch (mode) {
      case Mode::kNone:
        return false;
      case Mode::kEveryK:
        return (superstep + 1) % every_k == 0;
      case Mode::kWallClock:
        return since_last_ns >= interval_ns;
    }
    return false;
  }
};

}  // namespace graphite

#endif  // GRAPHITE_CKPT_CHECKPOINT_POLICY_H_
