#include "ckpt/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/serde.h"

namespace graphite {

namespace {

constexpr char kMagic[4] = {'G', 'C', 'K', '1'};
constexpr uint8_t kVersion = 1;
constexpr char kSuffix[] = ".gck";

std::string FileName(int superstep) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%08d%s", superstep, kSuffix);
  return buf;
}

/// Parses "ckpt-<8 digits>.gck" back to the superstep; -1 if foreign.
int ParseName(const std::string& name) {
  if (name.size() != 5 + 8 + 4 || name.compare(0, 5, "ckpt-") != 0 ||
      name.compare(13, 4, kSuffix) != 0) {
    return -1;
  }
  int v = 0;
  for (size_t i = 5; i < 13; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    v = v * 10 + (name[i] - '0');
  }
  return v;
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const std::string& bytes, size_t offset) {
  // Nibble-driven CRC-32 (reflected 0xEDB88320): a 16-entry table computed
  // on first use, no init-order or storage concerns.
  static const uint32_t* kTable = [] {
    static uint32_t table[16];
    for (uint32_t i = 0; i < 16; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 4; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = offset; i < bytes.size(); ++i) {
    const uint8_t b = static_cast<uint8_t>(bytes[i]);
    crc = kTable[(crc ^ b) & 0x0F] ^ (crc >> 4);
    crc = kTable[(crc ^ (b >> 4)) & 0x0F] ^ (crc >> 4);
  }
  return crc ^ 0xFFFFFFFFu;
}

CheckpointStore::CheckpointStore(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain < 1 ? 1 : retain) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A bad directory surfaces as an IoError on the first Commit/Load.
}

std::string CheckpointStore::PathFor(int superstep) const {
  return dir_ + "/" + FileName(superstep);
}

Status CheckpointStore::Commit(int superstep, const std::string& payload) {
  if (superstep < 0 || superstep > 99999999) {
    return Status::InvalidArgument("checkpoint superstep out of range: " +
                                   std::to_string(superstep));
  }
  std::string envelope(kMagic, sizeof(kMagic));
  envelope.push_back(static_cast<char>(kVersion));
  Writer head;
  head.WriteU64(Crc32(payload));
  envelope += head.buffer();
  envelope += payload;

  const std::string path = PathFor(superstep);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  const size_t written = std::fwrite(envelope.data(), 1, envelope.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != envelope.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write: " + tmp);
  }
  // rename(2) within one directory is atomic: a crash leaves either the
  // old checkpoint (or nothing) or the complete new one, never a torn
  // file under the committed name.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  last_commit_bytes_ = static_cast<int64_t>(envelope.size());

  // Retention: drop the oldest beyond the last `retain_`.
  std::vector<int> all = ListCheckpoints();
  for (size_t i = 0; i + static_cast<size_t>(retain_) < all.size(); ++i) {
    GRAPHITE_RETURN_NOT_OK(Remove(all[i]));
  }
  return Status::OK();
}

std::vector<int> CheckpointStore::ListCheckpoints() const {
  std::vector<int> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    const int s = ParseName(entry.path().filename().string());
    if (s >= 0) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<CheckpointBlob> CheckpointStore::Load(int superstep) const {
  const std::string path = PathFor(superstep);
  std::string bytes;
  GRAPHITE_RETURN_NOT_OK(ReadFile(path, &bytes));
  if (bytes.size() < sizeof(kMagic) + 2 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("not a graphite checkpoint (bad magic): " + path);
  }
  size_t pos = sizeof(kMagic);
  const uint8_t version = static_cast<uint8_t>(bytes[pos++]);
  if (version != kVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version) + ": " + path);
  }
  uint64_t checksum = 0;
  if (!GetVarint64(bytes, &pos, &checksum)) {
    return Status::DataLoss("truncated checkpoint header at byte " +
                            std::to_string(pos) + ": " + path);
  }
  if (Crc32(bytes, pos) != checksum) {
    return Status::DataLoss("checkpoint checksum mismatch (corrupt file): " +
                            path);
  }
  CheckpointBlob blob;
  blob.superstep = superstep;
  blob.payload = bytes.substr(pos);
  return blob;
}

Result<CheckpointBlob> CheckpointStore::LoadLatestValid() const {
  const std::vector<int> all = ListCheckpoints();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Result<CheckpointBlob> blob = Load(*it);
    if (blob.ok()) return blob;
    // Corrupt/truncated: the checksum spoke; fall back to the previous.
  }
  return Status::NotFound("no valid checkpoint in " + dir_);
}

Status CheckpointStore::Remove(int superstep) {
  const std::string path = PathFor(superstep);
  std::error_code ec;
  std::filesystem::remove(path, ec);  // Missing file is fine.
  if (ec) return Status::IoError("cannot remove " + path);
  return Status::OK();
}

}  // namespace graphite
