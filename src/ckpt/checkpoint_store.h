// Durable home of superstep checkpoints: one file per checkpoint in a
// flat directory, each wrapped in a versioned, CRC-32-checksummed envelope
// (the at-rest idiom of io/binary_format, with CRC32 instead of FNV so a
// deliberate standard is on the recovery path):
//
//   magic "GCK1" | u8 version | varint crc32(payload) | payload
//
// Files are named ckpt-<superstep, 8 digits>.gck and committed by writing
// to a .tmp sibling and rename(2)-ing into place, so a crash mid-write can
// never leave a half-written file under a valid name — readers either see
// the complete envelope or no file at all. The store retains the last K
// checkpoints; recovery walks them newest-first and the checksum decides
// which one is trusted (LoadLatestValid), which is exactly the fallback a
// corrupted or truncated latest checkpoint needs.
#ifndef GRAPHITE_CKPT_CHECKPOINT_STORE_H_
#define GRAPHITE_CKPT_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace graphite {

/// CRC-32 (ISO-HDLC polynomial, the zlib/PNG crc32) over
/// bytes[offset, size). Table-driven, no dependencies.
uint32_t Crc32(const std::string& bytes, size_t offset = 0);

/// A validated checkpoint: the superstep it resumes at (from the file
/// name; the frame payload repeats it) plus the raw frame payload.
struct CheckpointBlob {
  int superstep = 0;
  std::string payload;
};

class CheckpointStore {
 public:
  /// `dir` is created if absent. `retain` bounds how many committed
  /// checkpoints are kept; older ones are deleted after each commit.
  explicit CheckpointStore(std::string dir, int retain = 2);

  const std::string& dir() const { return dir_; }
  int retain() const { return retain_; }

  /// Atomically commits `payload` as the checkpoint for `superstep`
  /// (write tmp, rename, prune to `retain`). Re-committing a superstep
  /// replaces it.
  Status Commit(int superstep, const std::string& payload);

  /// Supersteps of the committed checkpoints, ascending. Unreadable or
  /// foreign files in the directory are ignored.
  std::vector<int> ListCheckpoints() const;

  /// File path a checkpoint for `superstep` lives at (exposed for the
  /// fault injector and tooling; the file need not exist).
  std::string PathFor(int superstep) const;

  /// Loads and validates one checkpoint: magic, version and CRC must all
  /// match or the result is a DataLoss/NotFound error.
  Result<CheckpointBlob> Load(int superstep) const;

  /// Newest checkpoint that validates. Corrupt ones are skipped (the
  /// checksum is the arbiter) and older snapshots tried in turn; NotFound
  /// when none survives.
  Result<CheckpointBlob> LoadLatestValid() const;

  /// Deletes the checkpoint file for `superstep` if present.
  Status Remove(int superstep);

  /// Envelope size of the most recent Commit (payload + header), for
  /// metrics.
  int64_t last_commit_bytes() const { return last_commit_bytes_; }

 private:
  std::string dir_;
  int retain_;
  int64_t last_commit_bytes_ = 0;
};

}  // namespace graphite

#endif  // GRAPHITE_CKPT_CHECKPOINT_STORE_H_
