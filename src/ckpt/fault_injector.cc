#include "ckpt/fault_injector.h"

#include <cstdio>
#include <string>

namespace graphite {

namespace {

Status ReadAll(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return Status::OK();
}

Status WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IoError("short write: " + path);
  return Status::OK();
}

}  // namespace

Status FaultInjector::CorruptByte(const CheckpointStore& store, int superstep,
                                  size_t offset) {
  const std::string path = store.PathFor(superstep);
  std::string bytes;
  GRAPHITE_RETURN_NOT_OK(ReadAll(path, &bytes));
  if (bytes.empty()) return Status::DataLoss("empty checkpoint: " + path);
  bytes[offset % bytes.size()] ^= 0x40;
  return WriteAll(path, bytes);
}

Status FaultInjector::Truncate(const CheckpointStore& store, int superstep,
                               size_t keep_bytes) {
  const std::string path = store.PathFor(superstep);
  std::string bytes;
  GRAPHITE_RETURN_NOT_OK(ReadAll(path, &bytes));
  if (keep_bytes < bytes.size()) bytes.resize(keep_bytes);
  return WriteAll(path, bytes);
}

}  // namespace graphite
