// Deterministic fault injection for recovery tests. Two sabotage axes:
//
//   * process death — ScheduleKill(superstep, worker) makes the engine
//     stop abruptly when that logical worker begins compute in that
//     superstep, exactly as if the process died mid-superstep: nothing
//     from the killed superstep reaches the store or the returned result
//     (RunMetrics::interrupted marks the corpse). Tests then call Run()
//     again with RecoveryContext::resume to model the restarted process.
//   * at-rest corruption — CorruptByte/Truncate deterministically damage
//     a committed checkpoint file, exercising the CRC-driven fallback to
//     the previous valid snapshot in CheckpointStore::LoadLatestValid.
//
// The kill is keyed on (superstep, logical worker), not OS thread: logical
// workers are the stable routing entities (engine/parallel.h), so the
// crash point is identical under kSpawn, kPool and kStealing.
#ifndef GRAPHITE_CKPT_FAULT_INJECTOR_H_
#define GRAPHITE_CKPT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>

#include "ckpt/checkpoint_store.h"
#include "util/status.h"

namespace graphite {

class FaultInjector {
 public:
  FaultInjector() = default;

  /// Schedules the crash: the run dies when logical worker `worker` starts
  /// compute in `superstep`. Fires at most once per arm.
  void ScheduleKill(int superstep, int worker) {
    kill_superstep_ = superstep;
    kill_worker_ = worker;
    triggered_.store(false, std::memory_order_relaxed);
  }

  /// Engine hook, called from compute workers (thread-safe): true exactly
  /// once, when the scheduled (superstep, worker) point is reached.
  bool Fire(int superstep, int worker) {
    if (superstep != kill_superstep_ || worker != kill_worker_) return false;
    return !triggered_.exchange(true, std::memory_order_relaxed);
  }

  /// Whether the scheduled kill has fired (tests assert the crash was
  /// real, not a silent completion).
  bool triggered() const {
    return triggered_.load(std::memory_order_relaxed);
  }

  /// XORs one byte of the committed checkpoint for `superstep` at
  /// `offset` (modulo the file size), defeating the CRC.
  static Status CorruptByte(const CheckpointStore& store, int superstep,
                            size_t offset);

  /// Truncates the committed checkpoint for `superstep` to `keep_bytes`,
  /// modeling a crash mid-write on a filesystem without atomic rename.
  static Status Truncate(const CheckpointStore& store, int superstep,
                         size_t keep_bytes);

 private:
  int kill_superstep_ = -1;
  int kill_worker_ = -1;
  std::atomic<bool> triggered_{false};
};

}  // namespace graphite

#endif  // GRAPHITE_CKPT_FAULT_INJECTOR_H_
