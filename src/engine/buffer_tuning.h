// The single tuning knob for every superstep-reused buffer that bounds its
// retained capacity with a decaying high-water mark: the wire Writers
// (Writer::Clear), the per-worker inbox/warp arenas (util/arena.h) and the
// heap-backed inbox fallback (RecycledVec). One pathologically large
// superstep must not pin its peak allocation for the rest of a long run,
// but a sustained burst must not churn either — the same constants decide
// both, so the engines age all their buffers at one rate.
#ifndef GRAPHITE_ENGINE_BUFFER_TUNING_H_
#define GRAPHITE_ENGINE_BUFFER_TUNING_H_

#include <algorithm>
#include <cstddef>

namespace graphite {

struct BufferTuning {
  /// The high-water mark drops by 1/kDecayDivisor per reset toward the
  /// latest fill; a burst re-raises it instantly, a one-off spike fades in
  /// a few dozen supersteps.
  static constexpr size_t kDecayDivisor = 8;
  /// Capacity slack every reset tolerates, so small buffers never churn.
  static constexpr size_t kRetainBytes = 1024;
  /// Shrink only once capacity exceeds kSlackFactor times the decayed mark
  /// (plus the flat slack): reallocation is paid rarely, not every reset.
  static constexpr size_t kSlackFactor = 4;

  /// The decayed high-water mark after a reset that observed `latest_fill`.
  static constexpr size_t Decay(size_t high_water, size_t latest_fill) {
    return std::max(latest_fill, high_water - high_water / kDecayDivisor);
  }

  /// True when `capacity` has drifted far enough above the decayed mark
  /// that shrinking back to `high_water` is worth a reallocation.
  static constexpr bool ShouldShrink(size_t capacity, size_t high_water) {
    return capacity > kSlackFactor * high_water + kRetainBytes;
  }
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_BUFFER_TUNING_H_
