// The shared delivery plane: everything between a Send() and the next
// superstep's Compute() that all four engines (ICM, VCM, GoFFish, Chlonos)
// used to duplicate inline — placement materialization, per-worker flat
// inboxes, mail tracking with per-destination mailed lists, the
// per-destination messaging loop, the superstep barrier, and the
// checkpoint drain/restore accessors. Engines now own only their wire
// format (what one message's bytes mean); the plane owns how bytes move
// and how delivered items are grouped for compute.
//
// Parameterization:
//   * Placement (graph/partitioner.h) — WorkerMap materializes whichever
//     unit->worker policy the engine's options carry (hash default,
//     explicit map, or a strategy from graph/partition_strategies.h).
//   * Transport (engine/transport.h) — Route() carries every wire row
//     through the run's backend: the zero-copy in-process hop, or the
//     loopback wire channel that copies each row's bytes out of the
//     sender and decodes purely from the copy.
//
// Determinism: Route visits rows in index order and a row's messages in
// write order, so per-inbox arrival order — and therefore Seal's grouped
// layout and every result byte — is independent of scheduling mode and
// transport backend (runtime_determinism_test enforces the full matrix).
//
// Concurrency: each destination worker's inbox, mailed list and transport
// channel are touched only by that destination's delivery lane inside
// Route's ParallelFor; Deliver outside Route (checkpoint restore, initial
// seeds) follows the same owner-lane discipline.
#ifndef GRAPHITE_ENGINE_DELIVERY_H_
#define GRAPHITE_ENGINE_DELIVERY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/flat_inbox.h"
#include "engine/metrics.h"
#include "engine/parallel.h"
#include "engine/transport.h"
#include "graph/partitioner.h"
#include "util/serde.h"
#include "util/status.h"

namespace graphite {

/// A Placement materialized over a concrete unit universe: the forward
/// map (worker_of) used on the send side and the inverse lists
/// (units_of) that drive compute distribution. Built once per run — the
/// single source of truth for who owns what.
class WorkerMap {
 public:
  /// `key_of(u)` is unit u's partition key (external id) for the hash
  /// policy; `exists(u)` == false parks the unit on worker 0 and keeps it
  /// out of every owner list (VCM's non-existent units).
  template <typename KeyFn, typename ExistsFn>
  WorkerMap(size_t num_units, int num_workers, const Placement& placement,
            KeyFn&& key_of, ExistsFn&& exists)
      : num_workers_(num_workers),
        worker_of_(num_units, 0),
        units_by_worker_(num_workers) {
    GRAPHITE_CHECK(num_workers >= 1);
    if (!placement.is_hash()) {
      GRAPHITE_CHECK(placement.map_size() == num_units);
    }
    for (uint32_t u = 0; u < num_units; ++u) {
      if (!exists(u)) continue;
      const int w = placement.WorkerOf(u, key_of(u), num_workers);
      GRAPHITE_CHECK(w >= 0 && w < num_workers);
      worker_of_[u] = w;
      units_by_worker_[w].push_back(u);
    }
#ifndef NDEBUG
    // Single-source-of-truth check: the default policy must agree with
    // HashPartitioner exactly — the plane replaced the engines' hand-built
    // worker_of vectors, and this is the proof nothing drifted.
    if (placement.is_hash()) {
      HashPartitioner reference(num_workers);
      for (uint32_t u = 0; u < num_units; ++u) {
        if (!exists(u)) continue;
        GRAPHITE_CHECK(worker_of_[u] == reference.WorkerOf(key_of(u)));
      }
    }
#endif
  }

  template <typename KeyFn>
  WorkerMap(size_t num_units, int num_workers, const Placement& placement,
            KeyFn&& key_of)
      : WorkerMap(num_units, num_workers, placement,
                  std::forward<KeyFn>(key_of), [](uint32_t) { return true; }) {}

  int num_workers() const { return num_workers_; }
  size_t num_units() const { return worker_of_.size(); }
  int WorkerOf(uint32_t unit) const { return worker_of_[unit]; }
  const std::vector<int>& worker_of() const { return worker_of_; }
  /// Units owned by worker w, in unit order.
  const std::vector<uint32_t>& units_of(int w) const {
    return units_by_worker_[w];
  }
  /// Owned-unit counts, in the shape SuperstepRuntime's ctor wants.
  std::vector<size_t> worker_sizes() const {  // lint:allow(vector: per-run setup shape handed to SuperstepRuntime)
    std::vector<size_t> sizes(num_workers_);  // lint:allow(vector: per-run setup shape handed to SuperstepRuntime)
    for (int w = 0; w < num_workers_; ++w) {
      sizes[w] = units_by_worker_[w].size();
    }
    return sizes;
  }

 private:
  int num_workers_;
  std::vector<int> worker_of_;  // lint:allow(vector: placement table, built once per run)
  std::vector<std::vector<uint32_t>> units_by_worker_;  // lint:allow(vector: placement table, built once per run)
};

/// The per-run delivery state for one engine: per-destination-worker
/// FlatInboxes over a shared span table, mail flags with per-destination
/// mailed lists (the barrier clears exactly these — no O(n) scan — and
/// each list doubles as Seal's unit layout order), and the Route loop.
///
/// `Item` is what compute consumes per message (e.g. TemporalItem for ICM,
/// the raw Message for VCM). Usually the inbox universe equals the map's
/// units; Chlonos passes a larger `num_units` (batch-expanded snapshot
/// units) while routing by its vertex-level map.
///
/// Lifecycle per run: construct → SuperstepRuntime(map().worker_sizes())
/// → Bind(&rt) → per superstep { compute reads MessagesFor / HasMail →
/// Barrier() → Route(...) } with Deliver+Seal used directly for initial
/// seeds and checkpoint restore.
template <typename Item>
class DeliveryPlane {
 public:
  explicit DeliveryPlane(WorkerMap map, size_t num_units = 0)
      : map_(std::move(map)) {
    const size_t n = num_units == 0 ? map_.num_units() : num_units;
    has_mail_.assign(n, 0);
    mailed_.resize(map_.num_workers());
    spans_ = InboxSpanTable(n);
    inbox_.resize(map_.num_workers());
    col_bytes_.assign(map_.num_workers(), 0);
    col_any_.assign(map_.num_workers(), 0);
  }

  /// Attaches each destination worker's inbox to its runtime arena. The
  /// runtime must be built for map().worker_sizes() and outlive the plane's
  /// use.
  void Bind(SuperstepRuntime* rt) {
    rt_ = rt;
    for (int w = 0; w < map_.num_workers(); ++w) {
      inbox_[w].Init(&rt->worker_arena(w), &spans_);
    }
  }

  const WorkerMap& map() const { return map_; }
  int num_workers() const { return map_.num_workers(); }
  size_t num_units() const { return has_mail_.size(); }

  bool HasMail(uint32_t unit) const { return has_mail_[unit] != 0; }
  /// The raw flag byte — what checkpoint sections persist.
  uint8_t MailFlag(uint32_t unit) const { return has_mail_[unit]; }
  /// Unit's sealed messages, in arrival order (valid Seal → Barrier).
  std::span<const Item> MessagesFor(int worker, uint32_t unit) const {
    return inbox_[worker].MessagesFor(unit);
  }
  /// Undelivered-message count (checkpoint encode).
  size_t InboxCountFor(int worker, uint32_t unit) const {
    return inbox_[worker].CountFor(unit);
  }
  /// Software-prefetches the unit's sealed inbox span (table entry +
  /// leading item cache lines). The engines call this for frontier entry
  /// i+1 while computing entry i, hiding the next unit's message-fetch
  /// latency behind the current warp. No effect on results.
  void Prefetch(int worker, uint32_t unit) const {
    inbox_[worker].Prefetch(unit);
  }

  /// Stages one item into `dst`'s inbox and tracks first arrival. Must be
  /// called from dst's delivery lane (or single-threaded setup code).
  void Deliver(int dst, uint32_t unit, Item item) {
    inbox_[dst].Deliver(unit, std::move(item));
    if (!has_mail_[unit]) {
      has_mail_[unit] = 1;
      mailed_[dst].push_back(unit);
    }
  }

  /// Groups dst's staged items by unit (engine/flat_inbox.h) and publishes
  /// dst's compute frontier (sorted mailed units, unless the mailed set
  /// exceeds FrontierLimit — see Frontier/FrontierIsDense). Safe on an
  /// empty superstep — no deliveries seals to no spans and an empty
  /// frontier.
  void Seal(int dst) { inbox_[dst].Seal(mailed_[dst], FrontierLimit(dst)); }
  void SealAll() {
    for (int w = 0; w < map_.num_workers(); ++w) Seal(w);
  }

  /// Frontier density threshold as a fraction of the worker's owned-unit
  /// count: mailed sets larger than density * owned go dense. 0 disables
  /// the frontier path entirely; >= 1 (plus the per-worker rounding slack)
  /// never goes dense. Set before the first Seal of a superstep; the
  /// engines plumb RuntimeOptions::frontier_density through here.
  void set_frontier_density(double density) { frontier_density_ = density; }

  /// Max mailed-unit count for which worker `dst` still gets a sorted
  /// frontier. Scales with the inbox-universe expansion factor so an
  /// engine with several inbox units per owned unit (Chlonos's
  /// batch-expanded snapshots) gets the same per-unit threshold.
  size_t FrontierLimit(int dst) const {
    const size_t expansion =
        map_.num_units() == 0 ? 1 : has_mail_.size() / map_.num_units();
    const double owned =
        static_cast<double>(map_.units_of(dst).size() * expansion);
    return static_cast<size_t>(frontier_density_ * owned);
  }

  /// Worker's sealed frontier: its mailed units, sorted ascending — the
  /// exact activation set a dense mail-flag scan would find, in the same
  /// visit order. Empty when nothing was mailed or the frontier is dense.
  std::span<const uint32_t> Frontier(int worker) const {
    return inbox_[worker].Frontier();
  }
  /// True when the worker's mailed set exceeded FrontierLimit at Seal, so
  /// compute must fall back to its dense activation scan.
  bool FrontierIsDense(int worker) const {
    return inbox_[worker].FrontierIsDense();
  }
  /// The worker's frontier restricted to units in [unit_begin, unit_end) —
  /// the chunk-compatible view compute iterates (frontiers are sorted, so
  /// this is two binary searches).
  std::span<const uint32_t> FrontierSlice(int worker, uint32_t unit_begin,
                                          uint32_t unit_end) const {
    const std::span<const uint32_t> f = inbox_[worker].Frontier();
    const uint32_t* lo = std::lower_bound(f.data(), f.data() + f.size(),
                                          unit_begin);
    const uint32_t* hi = std::lower_bound(lo, f.data() + f.size(), unit_end);
    return {lo, static_cast<size_t>(hi - lo)};
  }
  /// Frontier metrics for the superstep that just sealed: total mailed
  /// units across workers (scheduling/transport/density invariant) and how
  /// many workers went dense. Call before Barrier().
  void CountFrontier(int64_t* frontier_units, int64_t* dense_workers) const {
    for (int w = 0; w < map_.num_workers(); ++w) {
      *frontier_units += static_cast<int64_t>(mailed_[w].size());
      if (inbox_[w].FrontierIsDense()) ++(*dense_workers);
    }
  }

  /// Superstep barrier: clear the mail flags via the mailed lists, drop
  /// the consumed inboxes, and reset every worker arena. This is the ONLY
  /// point where those arenas reset (DESIGN.md §4f): compute has consumed
  /// the inboxes, and the next Route refills them.
  void Barrier() {
    for (int w = 0; w < map_.num_workers(); ++w) {
      for (const uint32_t u : mailed_[w]) has_mail_[u] = 0;
      inbox_[w].ResetAtBarrier(mailed_[w]);
      mailed_[w].clear();
      rt_->worker_arena(w).Reset();
    }
  }

  /// The messaging phase all four engines shared: carries every filled
  /// wire row through `transport` and decodes each destination's frames on
  /// its own delivery lane, then Seals it. `wire[r][dst]` is row r's
  /// buffer for destination dst and `row_src[r]` its source worker; rows
  /// must be grouped by source worker in worker order (chunk order), which
  /// is what makes arrival order equal sequential mode's byte for byte.
  /// `decode` reads ONE message from the Reader and Delivers it (the
  /// engine's wire format lives entirely in that lambda). Accumulates
  /// message_bytes / worker_in_bytes / thread_messaging_ns into *ss;
  /// returns whether any row carried bytes (the engines' halt signal).
  template <typename DecodeFn>
  bool Route(Transport& transport, std::span<std::vector<Writer>> wire,
             std::span<const int> row_src, SuperstepMetrics* ss,
             DecodeFn&& decode) {
    const int num_workers = map_.num_workers();
    std::fill(col_bytes_.begin(), col_bytes_.end(), int64_t{0});
    std::fill(col_any_.begin(), col_any_.end(), uint8_t{0});
    rt_->ParallelFor(num_workers, &ss->thread_messaging_ns, [&](int dst, int) {
      for (size_t r = 0; r < wire.size(); ++r) {
        Writer& row = wire[r][dst];
        if (row.size() == 0) continue;
        col_bytes_[dst] += static_cast<int64_t>(row.size());
        if (row_src[r] != dst) {
          ss->worker_in_bytes[dst] += static_cast<int64_t>(row.size());
        }
        col_any_[dst] = 1;
        transport.Ship(row_src[r], dst, &row);
      }
      const size_t frames = transport.NumFrames(dst);
      for (size_t k = 0; k < frames; ++k) {
        Reader reader(transport.Frame(dst, k));
        while (!reader.AtEnd()) decode(reader, dst);
      }
      transport.Consume(dst);
      Seal(dst);
    });
    bool any_message = false;
    for (int dst = 0; dst < num_workers; ++dst) {
      ss->message_bytes += col_bytes_[dst];
      if (col_any_[dst]) any_message = true;
    }
    return any_message;
  }

 private:
  WorkerMap map_;
  SuperstepRuntime* rt_ = nullptr;
  double frontier_density_ = 0.5;
  std::vector<uint8_t> has_mail_;  // lint:allow(vector: sized once per run, flags overwritten in place)
  std::vector<std::vector<uint32_t>> mailed_;  // lint:allow(vector: outer sized per run; rows reuse decayed capacity)
  InboxSpanTable spans_{0};
  std::vector<FlatInbox<Item>> inbox_;  // lint:allow(vector: one inbox per worker, sized once per run)
  // Per-destination byte/activity accumulators, written only by each
  // destination's lane during Route, summed after the barrier.
  std::vector<int64_t> col_bytes_;  // lint:allow(vector: sized once per run, summed at barriers)
  std::vector<uint8_t> col_any_;  // lint:allow(vector: sized once per run, summed at barriers)
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_DELIVERY_H_
