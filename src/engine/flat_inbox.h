// Flat per-worker inbox buffers for the BSP messaging phase. The engines
// used to keep one std::vector of messages per vertex — one heap
// allocation (often several) per mailed vertex per superstep. Here every
// destination worker instead owns a single contiguous buffer in its
// per-worker arena; received messages are staged in wire-arrival order
// during delivery and grouped by destination unit in one stable counting
// pass (Seal), after which each unit's messages are handed to the compute
// phase as a zero-copy std::span view.
//
// Concurrency contract: exactly one delivery lane writes a given
// destination worker's FlatInbox (the engines' per-destination ParallelFor
// guarantees this), and the per-unit span table is partitioned by unit
// ownership, so lanes never touch each other's entries.
//
// Lifetime: the grouped buffer lives from Seal (messaging phase) through
// the next superstep's compute phase and any barrier checkpoint encode,
// and is dropped at the superstep barrier (ResetAtBarrier + the owner
// arena's Reset). See DESIGN.md §4f.
#ifndef GRAPHITE_ENGINE_FLAT_INBOX_H_
#define GRAPHITE_ENGINE_FLAT_INBOX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/simd.h"
#include "util/status.h"

namespace graphite {

/// Cap on bytes software-prefetched per inbox span: enough to cover the
/// leading messages the warp kernel touches first without evicting the
/// current unit's working set on long spans.
inline constexpr size_t kInboxPrefetchBytes = 256;

/// Per-unit (offset, count) spans into the owning worker's grouped item
/// buffer, plus the scatter cursor used by Seal. One table per engine run;
/// each entry is touched only by its unit's owner lane.
struct InboxSpanTable {
  explicit InboxSpanTable(size_t num_units)
      : offset(num_units, 0), count(num_units, 0), cursor(num_units, 0) {}

  std::vector<uint32_t> offset;  // lint:allow(vector: span table, sized once per engine run)
  std::vector<uint32_t> count;  // lint:allow(vector: span table, sized once per engine run)
  std::vector<uint32_t> cursor;  // lint:allow(vector: span table, sized once per engine run)
};

/// One destination worker's flat inbox. Item storage is arena-backed when
/// the message type allows it (SuperstepVec), so a steady-state superstep
/// allocates nothing on this path.
template <typename Item>
class FlatInbox {
 public:
  void Init(Arena* arena, InboxSpanTable* table) {
    table_ = table;
    stage_units_.Attach(arena);
    stage_items_.Attach(arena);
    items_.Attach(arena);
    frontier_.Attach(arena);
  }

  /// Appends one received item in wire-arrival order. The caller tracks
  /// first arrivals itself (its mailed list doubles as the unit order for
  /// Seal); every unit delivered to here must appear in that list exactly
  /// once.
  void Deliver(uint32_t unit, Item item) {
    stage_units_.push_back(unit);
    stage_items_.push_back(std::move(item));
    ++table_->count[unit];
  }

  /// Groups the staged items by unit: units laid out in `mailed_units`
  /// (first-arrival) order, items within a unit in arrival order (the
  /// scatter pass is stable). Call once per superstep after the last
  /// Deliver; MessagesFor is valid from then until ResetAtBarrier.
  ///
  /// Also publishes the compute frontier: when the number of mailed units
  /// is at most `frontier_limit`, Seal sorts a copy of `mailed_units` into
  /// `Frontier()` so the compute phase can iterate mailed units directly
  /// (in unit order — the same visit order as a dense activation scan).
  /// Above the limit the frontier is marked dense and never materialized:
  /// an always-active workload pays O(1) here and keeps the dense scan.
  void Seal(std::span<const uint32_t> mailed_units,
            size_t frontier_limit = static_cast<size_t>(-1)) {
    uint32_t running = 0;
    for (const uint32_t u : mailed_units) {
      table_->offset[u] = running;
      table_->cursor[u] = running;
      running += table_->count[u];
    }
    GRAPHITE_CHECK(running == stage_items_.size());
    items_.ResizeUninitialized(running);
    for (size_t k = 0; k < stage_units_.size(); ++k) {
      items_[table_->cursor[stage_units_[k]]++] =
          std::move(stage_items_[k]);
    }
    stage_units_.clear();
    stage_items_.clear();

    frontier_dense_ = mailed_units.size() > frontier_limit;
    frontier_.clear();
    if (!frontier_dense_ && !mailed_units.empty()) {
      frontier_.Append(mailed_units.data(), mailed_units.size());
      std::sort(frontier_.data(), frontier_.data() + frontier_.size());
    }
  }

  /// The mailed units of the last Seal, sorted ascending. Empty when no
  /// unit was mailed, or when the frontier went dense (check
  /// FrontierIsDense to tell the two apart).
  std::span<const uint32_t> Frontier() const { return frontier_.span(); }

  /// True when the last Seal skipped the frontier build because the mailed
  /// set exceeded the caller's density limit — the caller must fall back
  /// to its dense activation scan.
  bool FrontierIsDense() const { return frontier_dense_; }

  /// The unit's received messages, in arrival order. Empty span (and no
  /// table read) for units without mail, so stale offsets are never
  /// dereferenced.
  std::span<const Item> MessagesFor(uint32_t unit) const {
    const uint32_t count = table_->count[unit];
    if (count == 0) return {};
    return items_.subspan(table_->offset[unit], count);
  }

  size_t CountFor(uint32_t unit) const { return table_->count[unit]; }

  /// Software-prefetches the unit's sealed message span — the span-table
  /// read plus the leading cache lines of the grouped items — so a
  /// frontier walk can overlap the NEXT unit's inbox fetch with the
  /// current unit's compute. Read-only and safe for units without mail;
  /// a no-op where the compiler lacks the prefetch builtin.
  void Prefetch(uint32_t unit) const {
    const uint32_t count = table_->count[unit];
    if (count == 0) return;
    const char* base =
        reinterpret_cast<const char*>(items_.data() + table_->offset[unit]);
    const size_t bytes =
        std::min(static_cast<size_t>(count) * sizeof(Item),
                 kInboxPrefetchBytes);
    for (size_t off = 0; off < bytes; off += 64) GRAPHITE_PREFETCH(base + off);
  }

  /// Superstep barrier: zero the consumed spans and forget the buffers.
  /// The caller resets the backing arena right after — pointers into it
  /// are about to dangle.
  void ResetAtBarrier(std::span<const uint32_t> mailed_units) {
    for (const uint32_t u : mailed_units) table_->count[u] = 0;
    stage_units_.Release();
    stage_items_.Release();
    items_.Release();
    frontier_.Release();
    frontier_dense_ = false;
  }

  /// Total grouped items held for this worker (diagnostics / checkpoint).
  size_t total_items() const { return items_.size(); }

 private:
  InboxSpanTable* table_ = nullptr;
  ArenaVec<uint32_t> stage_units_;
  SuperstepVec<Item> stage_items_;
  SuperstepVec<Item> items_;
  ArenaVec<uint32_t> frontier_;
  bool frontier_dense_ = false;
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_FLAT_INBOX_H_
