// Wire-format traits for message payloads. Every message type that crosses
// a worker boundary needs a MessageTraits specialization; the engines use
// it to serialize outgoing traffic into per-worker byte buffers, which is
// also how message-byte metrics are measured.
#ifndef GRAPHITE_ENGINE_MESSAGE_TRAITS_H_
#define GRAPHITE_ENGINE_MESSAGE_TRAITS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/serde.h"

namespace graphite {

template <typename T>
struct MessageTraits;  // Specialize per payload type.

/// Types with a MessageTraits wire codec. Engine features that persist
/// state (superstep checkpoints) require this of the Program's State/Value
/// type; message types satisfy it by construction.
template <typename T>
concept HasWireTraits = requires(Writer& w, Reader& r, const T& v) {
  MessageTraits<T>::Write(w, v);
  { MessageTraits<T>::Read(r) } -> std::convertible_to<T>;
};

template <>
struct MessageTraits<int64_t> {
  static void Write(Writer& w, const int64_t& v) { w.WriteI64(v); }
  static int64_t Read(Reader& r) { return r.ReadI64(); }
};

template <>
struct MessageTraits<uint8_t> {
  static void Write(Writer& w, const uint8_t& v) { w.WriteByte(v); }
  static uint8_t Read(Reader& r) { return r.ReadByte(); }
};

template <>
struct MessageTraits<double> {
  static void Write(Writer& w, const double& v) {
    // Bit-cast through an integer; doubles do not varint-compress well but
    // PR ranks are the only doubles on the wire.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    w.WriteU64(bits);
  }
  static double Read(Reader& r) {
    uint64_t bits = r.ReadU64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

template <>
struct MessageTraits<std::pair<int64_t, int64_t>> {
  static void Write(Writer& w, const std::pair<int64_t, int64_t>& v) {
    w.WriteI64(v.first);
    w.WriteI64(v.second);
  }
  static std::pair<int64_t, int64_t> Read(Reader& r) {
    int64_t a = r.ReadI64();
    int64_t b = r.ReadI64();
    return {a, b};
  }
};

template <>
struct MessageTraits<std::vector<int64_t>> {
  static void Write(Writer& w, const std::vector<int64_t>& v) {
    w.WriteI64Vec(v);
  }
  static std::vector<int64_t> Read(Reader& r) { return r.ReadI64Vec(); }
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_MESSAGE_TRAITS_H_
