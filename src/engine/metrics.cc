#include "engine/metrics.h"

#include <algorithm>

#include "util/json.h"
#include "util/stats.h"

namespace graphite {

void RunMetrics::Accumulate(const SuperstepMetrics& ss) {
  ++supersteps;
  compute_calls += ss.compute_calls;
  scatter_calls += ss.scatter_calls;
  messages += ss.messages;
  message_bytes += ss.message_bytes;
  steals += ss.steals;
  for (int64_t ns : ss.worker_compute_ns) compute_ns += ns;
  messaging_ns += ss.messaging_ns;
  barrier_ns += ss.barrier_ns;
  if (ss.checkpoint_bytes > 0) ++checkpoints;
  checkpoint_ns += ss.checkpoint_ns;
  checkpoint_bytes += ss.checkpoint_bytes;
  frontier_units += ss.frontier_units;
  frontier_dense_workers += ss.frontier_dense_workers;
  warp_slices += ss.warp_slices;
  warp_merge_hits += ss.warp_merge_hits;
  per_superstep.push_back(ss);
}

void RunMetrics::Merge(const RunMetrics& other) {
  supersteps += other.supersteps;
  compute_calls += other.compute_calls;
  scatter_calls += other.scatter_calls;
  messages += other.messages;
  message_bytes += other.message_bytes;
  steals += other.steals;
  compute_ns += other.compute_ns;
  messaging_ns += other.messaging_ns;
  barrier_ns += other.barrier_ns;
  makespan_ns += other.makespan_ns;
  checkpoints += other.checkpoints;
  checkpoint_ns += other.checkpoint_ns;
  checkpoint_bytes += other.checkpoint_bytes;
  frontier_units += other.frontier_units;
  frontier_dense_workers += other.frontier_dense_workers;
  warp_slices += other.warp_slices;
  warp_merge_hits += other.warp_merge_hits;
  interrupted = interrupted || other.interrupted;
  if (resumed_from < 0) resumed_from = other.resumed_from;
  per_superstep.insert(per_superstep.end(), other.per_superstep.begin(),
                       other.per_superstep.end());
}

int64_t RunMetrics::SimulatedMakespanNs() const {
  return SimulatedMakespanNs(ClusterModel());
}

int64_t RunMetrics::SimulatedMakespanNs(const ClusterModel& model) const {
  int64_t total = 0;
  for (const SuperstepMetrics& ss : per_superstep) {
    int64_t max_compute = 0;
    if (model.per_call_ns > 0) {
      for (int64_t calls : ss.worker_compute_calls) {
        max_compute = std::max(max_compute, calls * model.per_call_ns);
      }
    } else {
      for (int64_t ns : ss.worker_compute_ns) {
        max_compute = std::max(max_compute, ns);
      }
    }
    int64_t max_bytes = 0;
    for (int64_t b : ss.worker_in_bytes) max_bytes = std::max(max_bytes, b);
    const int64_t link_ns = static_cast<int64_t>(
        static_cast<double>(max_bytes) / model.network_bytes_per_sec * 1e9);
    const int64_t per_msg_ns =
        ss.messages * model.per_message_ns /
        std::max(1, model.num_workers);
    total += max_compute + link_ns + per_msg_ns + model.barrier_ns;
  }
  return total;
}

void RunMetrics::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("supersteps").Int(supersteps);
  w->Key("compute_calls").Int(compute_calls);
  w->Key("scatter_calls").Int(scatter_calls);
  w->Key("messages").Int(messages);
  w->Key("message_bytes").Int(message_bytes);
  w->Key("compute_ns").Int(compute_ns);
  w->Key("messaging_ns").Int(messaging_ns);
  w->Key("barrier_ns").Int(barrier_ns);
  w->Key("makespan_ns").Int(makespan_ns);
  if (steals > 0) w->Key("steals").Int(steals);
  if (checkpoints > 0) {
    w->Key("checkpoints").Int(checkpoints);
    w->Key("checkpoint_ns").Int(checkpoint_ns);
    w->Key("checkpoint_bytes").Int(checkpoint_bytes);
  }
  if (frontier_units > 0) {
    w->Key("frontier_units").Int(frontier_units);
    w->Key("frontier_dense_workers").Int(frontier_dense_workers);
  }
  if (warp_slices > 0) {
    w->Key("warp_slices").Int(warp_slices);
    w->Key("warp_merge_hits").Int(warp_merge_hits);
  }
  if (resumed_from >= 0) w->Key("resumed_from").Int(resumed_from);
  if (interrupted) w->Key("interrupted").Bool(true);
  w->EndObject();
}

std::string RunMetrics::ToString() const {
  std::string out;
  out += "supersteps=" + std::to_string(supersteps);
  out += " compute_calls=" + FormatCount(compute_calls);
  out += " scatter_calls=" + FormatCount(scatter_calls);
  out += " messages=" + FormatCount(messages);
  out += " bytes=" + FormatCount(message_bytes);
  out += " compute_ms=" + FormatDouble(static_cast<double>(compute_ns) / 1e6);
  out +=
      " messaging_ms=" + FormatDouble(static_cast<double>(messaging_ns) / 1e6);
  out += " makespan_ms=" + FormatDouble(static_cast<double>(makespan_ns) / 1e6);
  if (steals > 0) out += " steals=" + FormatCount(steals);
  if (checkpoints > 0) {
    out += " checkpoints=" + std::to_string(checkpoints);
    out += " ckpt_ms=" +
           FormatDouble(static_cast<double>(checkpoint_ns) / 1e6);
    out += " ckpt_bytes=" + FormatCount(checkpoint_bytes);
  }
  if (frontier_units > 0) {
    out += " frontier_units=" + FormatCount(frontier_units);
    out += " frontier_dense=" + FormatCount(frontier_dense_workers);
  }
  if (warp_slices > 0) {
    out += " warp_slices=" + FormatCount(warp_slices);
    out += " warp_merges=" + FormatCount(warp_merge_hits);
  }
  if (resumed_from >= 0) out += " resumed_from=" + std::to_string(resumed_from);
  if (interrupted) out += " INTERRUPTED";
  return out;
}

}  // namespace graphite
