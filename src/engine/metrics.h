// Runtime metrics collected by both engines (VCM and ICM). Mirrors the
// paper's measurement methodology (§VII-A4): makespan from the first user
// superstep to the last, split into compute+ time (user-logic calls with
// interleaved messaging) and exclusive messaging time, plus barrier time;
// and the model-intrinsic counters — user compute calls, scatter calls,
// messages sent and message bytes — that §VII-B1/B2 correlate with time.
#ifndef GRAPHITE_ENGINE_METRICS_H_
#define GRAPHITE_ENGINE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphite {

class JsonWriter;

/// Per-superstep, per-worker measurements.
struct SuperstepMetrics {
  std::vector<int64_t> worker_compute_ns;  ///< Compute-phase time per worker.
  std::vector<int64_t> worker_in_bytes;    ///< Bytes received per worker.
  std::vector<int64_t> worker_compute_calls;  ///< User-logic calls per worker.
  /// OS-thread-level phase timings (lane 0 = the coordinating thread).
  /// Logical-worker vectors above are routing/model metrics; these measure
  /// the physical runtime (see SuperstepRuntime in engine/parallel.h).
  std::vector<int64_t> thread_compute_ns;
  std::vector<int64_t> thread_messaging_ns;
  /// Chunks executed by a non-home OS thread (work-stealing mode only).
  int64_t steals = 0;
  int64_t messaging_ns = 0;  ///< Exclusive message delivery time.
  int64_t barrier_ns = 0;    ///< Synchronization overhead.
  int64_t compute_calls = 0;
  int64_t scatter_calls = 0;
  int64_t messages = 0;
  int64_t message_bytes = 0;
  int64_t checkpoint_ns = 0;     ///< Time writing a barrier checkpoint.
  int64_t checkpoint_bytes = 0;  ///< Committed envelope size (0 = none).
  /// Units mailed this superstep (= next superstep's activation set);
  /// invariant across scheduling, transport, and frontier density.
  int64_t frontier_units = 0;
  /// Workers whose mailed set exceeded the density threshold and fell
  /// back to the dense activation scan (varies with frontier_density).
  int64_t frontier_dense_workers = 0;
  /// Warp kernel counters (ICM only): non-empty slices considered and
  /// slices coalesced by the maximality merge (Property 4 hits).
  int64_t warp_slices = 0;
  int64_t warp_merge_hits = 0;
};

/// Aggregate metrics for one algorithm run.
struct RunMetrics {
  int64_t supersteps = 0;
  int64_t compute_calls = 0;
  int64_t scatter_calls = 0;
  int64_t messages = 0;
  int64_t message_bytes = 0;
  int64_t steals = 0;        ///< Total stolen chunks (work-stealing mode).
  int64_t compute_ns = 0;    ///< Total compute+ time.
  int64_t messaging_ns = 0;  ///< Total exclusive messaging time.
  int64_t barrier_ns = 0;
  int64_t makespan_ns = 0;   ///< Wall clock, first to last superstep.
  int64_t checkpoints = 0;       ///< Barrier checkpoints committed.
  int64_t checkpoint_ns = 0;     ///< Total checkpoint write time.
  int64_t checkpoint_bytes = 0;  ///< Total committed envelope bytes.
  int64_t frontier_units = 0;    ///< Total mailed units across supersteps.
  int64_t frontier_dense_workers = 0;  ///< Dense-scan fallbacks taken.
  int64_t warp_slices = 0;       ///< Warp slices considered (ICM).
  int64_t warp_merge_hits = 0;   ///< Warp maximality-merge hits (ICM).
  /// True when a FaultInjector killed this run mid-superstep; the result
  /// models a crashed process and must be discarded (see ckpt/).
  bool interrupted = false;
  /// Superstep the run resumed at, or -1 for a cold start. Counters above
  /// are cumulative across the resume (carried from the checkpoint), so an
  /// interrupted-and-resumed run reports the same totals as an
  /// uninterrupted one; per_superstep only covers post-resume supersteps.
  int resumed_from = -1;
  std::vector<SuperstepMetrics> per_superstep;

  /// Folds a finished superstep into the totals.
  void Accumulate(const SuperstepMetrics& ss);

  /// Folds another run into this one (multi-phase drivers like SCC, and
  /// the per-snapshot baselines, report one merged RunMetrics).
  void Merge(const RunMetrics& other);

  /// Parameters of the modeled commodity cluster (the paper's testbed:
  /// 10 nodes, 1 GbE, Giraph over JVM). Every platform is charged by the
  /// same model, so relative comparisons depend only on the per-model
  /// counts and compute times. Defaults approximate the paper's cluster
  /// scaled to our ~1000x smaller datasets (barrier: Giraph's ~40 ms
  /// scaled to 40 us; per-message: ~200 ns of serialization/transport/GC
  /// amortized per Giraph message).
  struct ClusterModel {
    double network_bytes_per_sec = 117e6;  ///< ~1 GbE effective.
    int64_t per_message_ns = 200;          ///< Per-message overhead.
    int64_t barrier_ns = 40000;            ///< Per-superstep barrier.
    int num_workers = 8;                   ///< Messages spread over senders.
    /// When > 0, compute is charged as max-worker-calls x per_call_ns
    /// instead of the measured wall time — removing single-host cache
    /// artifacts from cross-size comparisons (used by Fig. 7).
    int64_t per_call_ns = 0;
  };

  /// Critical-path makespan under the cluster model: per superstep, the
  /// slowest worker's compute time, plus the network model (bytes into the
  /// busiest worker at link speed + per-message overhead spread across
  /// workers), plus the barrier cost. Used by the cross-platform
  /// comparisons (Table 2, Fig. 5) and the weak-scaling experiment
  /// (Fig. 7) — all logical workers share one physical host here, so wall
  /// clock alone cannot express cluster behavior (see DESIGN.md).
  int64_t SimulatedMakespanNs(const ClusterModel& model) const;
  /// Same, with the default ClusterModel.
  int64_t SimulatedMakespanNs() const;

  /// Back-compat convenience: model with explicit bandwidth/barrier only.
  int64_t SimulatedMakespanNs(double network_bytes_per_sec,
                              int64_t barrier_ns_per_superstep) const {
    ClusterModel model;
    model.network_bytes_per_sec = network_bytes_per_sec;
    model.barrier_ns = barrier_ns_per_superstep;
    model.per_message_ns = 0;
    return SimulatedMakespanNs(model);
  }

  std::string ToString() const;

  /// Emits the aggregate counters as a JSON object in value position
  /// (timing fields in ns). Used by the query service's per-job metrics
  /// and machine-readable tooling.
  void AppendJson(JsonWriter* w) const;
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_METRICS_H_
