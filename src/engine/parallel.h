// Superstep execution runtime shared by all four engines (ICM, VCM,
// Chlonos, GoFFish). Two layers:
//
//   RunWorkers       — the legacy helper: one task per logical worker, on
//                      per-superstep-spawned std::threads (kSpawn) or
//                      sequentially. Kept as the measured baseline for
//                      bench_runtime and for the kSpawn scheduling mode.
//   SuperstepRuntime — the real runtime: a persistent ThreadPool created
//                      once per Run() and reused across supersteps, with
//                      chunked work-stealing over each logical worker's
//                      item list, plus a generic ParallelFor used to
//                      deserialize per-destination wire columns
//                      concurrently in the messaging phase.
//
// Logical workers stay fixed no matter how many OS threads run: message
// routing (worker_of), per-worker metrics and wire-byte accounting are all
// keyed by logical worker. OS threads only steal *chunks* of a logical
// worker's vertex list via per-worker atomic cursors, and every chunk
// writes into its own output slot (wire-buffer row / outbox). Because
// chunks split each worker's list contiguously and in order, concatenating
// the chunk outputs in chunk order reproduces the sequential per-worker
// buffers byte for byte — results are identical across all modes; tests
// enforce this (runtime_determinism_test).
#ifndef GRAPHITE_ENGINE_PARALLEL_H_
#define GRAPHITE_ENGINE_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/checkpoint_policy.h"
#include "engine/thread_pool.h"
#include "engine/transport.h"
#include "util/arena.h"
#include "util/status.h"
#include "util/timer.h"

namespace graphite {

/// Runs fn(w) for each worker w in [0, num_workers).
template <typename Fn>
void RunWorkers(int num_workers, bool use_threads, Fn&& fn) {
  if (!use_threads || num_workers == 1) {
    for (int w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  for (std::thread& t : threads) t.join();
}

/// How OS threads are mapped onto logical-worker item lists when
/// use_threads is set (ignored in sequential mode).
enum class Scheduling {
  /// Legacy baseline: one std::thread per logical worker, spawned and
  /// joined every superstep; messaging stays single-threaded.
  kSpawn,
  /// Persistent pool, static worker->thread assignment (worker w runs on
  /// thread w % num_threads). No stealing: a skewed partition serializes
  /// its thread, but there is no cursor traffic.
  kPool,
  /// Persistent pool + chunked work stealing (default): threads drain
  /// their home workers' chunk cursors first, then steal remaining chunks
  /// from other workers.
  kStealing,
};

/// Runtime knobs shared by every engine's options struct.
struct RuntimeOptions {
  Scheduling scheduling = Scheduling::kStealing;
  /// OS threads used by kPool/kStealing; 0 = min(num_workers,
  /// hardware_concurrency). May exceed the logical worker count — extra
  /// threads have no home workers and go straight to stealing.
  int num_threads = 0;
  /// Work-stealing granularity: items (vertices/units) per chunk.
  int chunk_size = 64;
  /// Which backend the delivery plane routes wire rows through: the
  /// zero-copy in-process hop, or the loopback wire channel that copies
  /// every row through §VI wire bytes and back (engine/transport.h).
  /// Results are value-identical in either; tests enforce the matrix.
  TransportKind transport = TransportKind::kInProcess;
  /// Compute-frontier density threshold, as a fraction of each worker's
  /// owned units: after messaging, a worker whose mailed-unit count is at
  /// most `frontier_density * owned` gets a sorted frontier of exactly the
  /// mailed units and compute skips the dense activation scan; above the
  /// threshold it falls back to the dense scan (direction switching, as in
  /// frontier-based BFS engines). 0 disables the frontier path; values
  /// >= 1 effectively never switch to dense. Either path produces
  /// byte-identical results (tests enforce it); this knob is purely about
  /// which is faster for a workload's activation pattern.
  double frontier_density = 0.5;
  /// When to write barrier checkpoints; inert unless a CheckpointStore is
  /// supplied via RecoveryContext (see ckpt/checkpoint.h).
  CheckpointPolicy checkpoint;
};

/// A contiguous slice [begin, end) of logical worker `worker`'s item list.
struct WorkChunk {
  int worker;
  size_t begin;
  size_t end;
};

class SuperstepRuntime {
 public:
  /// `worker_sizes[w]` is the item count of logical worker w. The chunk
  /// table is fixed for the lifetime of the runtime (item lists are static
  /// across supersteps), so per-chunk output slots can be allocated once
  /// and reused.
  SuperstepRuntime(int num_workers, bool use_threads,
                   const RuntimeOptions& options,
                   const std::vector<size_t>& worker_sizes)
      : num_workers_(num_workers), scheduling_(options.scheduling) {
    GRAPHITE_CHECK(static_cast<int>(worker_sizes.size()) == num_workers);
    spawn_ = use_threads && scheduling_ == Scheduling::kSpawn;
    const bool pooled = use_threads && !spawn_;
    if (pooled) {
      const int hw = static_cast<int>(std::thread::hardware_concurrency());
      num_threads_ = options.num_threads > 0
                         ? options.num_threads
                         : std::max(1, std::min(num_workers, hw));
    } else {
      num_threads_ = spawn_ ? num_workers : 1;
    }
    const size_t chunk_items =
        (pooled && scheduling_ == Scheduling::kStealing)
            ? static_cast<size_t>(std::max(1, options.chunk_size))
            : std::numeric_limits<size_t>::max();
    first_.resize(num_workers + 1, 0);
    for (int w = 0; w < num_workers; ++w) {
      first_[w] = static_cast<int>(chunks_.size());
      for (size_t b = 0; b < worker_sizes[w];) {
        const size_t len = std::min(chunk_items, worker_sizes[w] - b);
        chunks_.push_back({w, b, b + len});
        b += len;
      }
    }
    first_[num_workers] = static_cast<int>(chunks_.size());
    if (pooled && num_threads_ > 1) {
      pool_ = std::make_unique<ThreadPool>(num_threads_);
    }
    worker_arenas_ = std::vector<Arena>(num_workers);
  }

  int num_workers() const { return num_workers_; }
  /// Execution lanes: 1 (sequential), num_workers (spawn) or the pool
  /// width. Sizes per-thread scratch and timing vectors.
  int num_threads() const { return num_threads_; }
  int num_chunks() const { return static_cast<int>(chunks_.size()); }
  const WorkChunk& chunk(int c) const { return chunks_[c]; }
  /// Chunk-index range [first, second) of logical worker w; chunks are
  /// contiguous per worker and ordered by item position.
  std::pair<int, int> ChunkRange(int w) const {
    return {first_[w], first_[w + 1]};
  }

  /// Logical worker w's superstep arena. Backs that worker's flat inbox
  /// (filled by its exclusive delivery lane in the messaging phase, read
  /// by the compute phase and checkpoint encode). The engine resets it at
  /// each superstep barrier — never mid-phase: compute of worker w's
  /// chunks may run on several OS threads at once, so per-worker arenas
  /// must not back compute-phase scratch (that is what per-thread arenas
  /// in the engines' scratch structs are for).
  Arena& worker_arena(int w) { return worker_arenas_[w]; }

  /// Compute phase: runs body(chunk_index, chunk, thread_id) for every
  /// chunk. Per-thread phase durations go to *thread_ns (resized to
  /// num_threads()); returns the number of stolen chunks (chunks executed
  /// by a thread other than their worker's home thread).
  template <typename Body>
  int64_t ComputePhase(std::vector<int64_t>* thread_ns, Body&& body) {
    thread_ns->assign(num_threads_, 0);
    if (pool_ == nullptr) {
      if (spawn_) {
        RunWorkers(num_workers_, true, [&](int w) {
          const int64_t t0 = NowNanos();
          for (int c = first_[w]; c < first_[w + 1]; ++c) {
            body(c, chunks_[c], w);
          }
          (*thread_ns)[w] = NowNanos() - t0;
        });
      } else {
        const int64_t t0 = NowNanos();
        for (int c = 0; c < num_chunks(); ++c) body(c, chunks_[c], 0);
        (*thread_ns)[0] = NowNanos() - t0;
      }
      return 0;
    }
    std::vector<std::atomic<size_t>> cursor(num_workers_);
    std::atomic<int64_t> steals{0};
    const bool steal = scheduling_ == Scheduling::kStealing;
    pool_->RunOnAll([&](int t) {
      const int64_t t0 = NowNanos();
      auto drain = [&](int w, bool stolen) {
        const int base = first_[w];
        const size_t count = static_cast<size_t>(first_[w + 1] - base);
        for (;;) {
          const size_t k = cursor[w].fetch_add(1, std::memory_order_relaxed);
          if (k >= count) break;
          const int c = base + static_cast<int>(k);
          body(c, chunks_[c], t);
          if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
        }
      };
      for (int w = t; w < num_workers_; w += num_threads_) drain(w, false);
      if (steal) {
        for (int off = 1; off <= num_workers_; ++off) {
          drain((t + off) % num_workers_, true);
        }
      }
      (*thread_ns)[t] = NowNanos() - t0;
    });
    return steals.load();
  }

  /// Runs body(i, thread_id) for i in [0, count) across the pool (atomic
  /// cursor; sequential without one — including kSpawn, whose baseline
  /// semantics keep messaging single-threaded). Used by the messaging
  /// phase: i is a destination worker, and destination columns touch
  /// disjoint inboxes, so the deliveries are data-race free.
  template <typename Body>
  void ParallelFor(int count, std::vector<int64_t>* thread_ns, Body&& body) {
    thread_ns->assign(num_threads_, 0);
    if (pool_ == nullptr) {
      const int64_t t0 = NowNanos();
      for (int i = 0; i < count; ++i) body(i, 0);
      (*thread_ns)[0] = NowNanos() - t0;
      return;
    }
    std::atomic<int> next{0};
    pool_->RunOnAll([&](int t) {
      const int64_t t0 = NowNanos();
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        body(i, t);
      }
      (*thread_ns)[t] = NowNanos() - t0;
    });
  }

 private:
  int num_workers_;
  Scheduling scheduling_;
  bool spawn_ = false;
  int num_threads_ = 1;
  std::vector<WorkChunk> chunks_;
  std::vector<int> first_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Arena> worker_arenas_;
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_PARALLEL_H_
