// Worker execution helper. The engines run one task per logical worker;
// with use_threads the tasks run on real std::threads, otherwise they run
// sequentially in worker order ("sequential-simulated" mode). Sequential
// mode is the default: it is fully deterministic, per-worker timings are
// not distorted by oversubscription of the host cores, and the simulated
// makespan model (RunMetrics::SimulatedMakespanNs) supplies the
// parallelism. Results are identical in both modes; tests check that.
#ifndef GRAPHITE_ENGINE_PARALLEL_H_
#define GRAPHITE_ENGINE_PARALLEL_H_

#include <thread>
#include <vector>

namespace graphite {

/// Runs fn(w) for each worker w in [0, num_workers).
template <typename Fn>
void RunWorkers(int num_workers, bool use_threads, Fn&& fn) {
  if (!use_threads || num_workers == 1) {
    for (int w = 0; w < num_workers; ++w) fn(w);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_PARALLEL_H_
