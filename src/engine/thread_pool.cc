#include "engine/thread_pool.h"

#include "util/status.h"

namespace graphite {

ThreadPool::ThreadPool(int num_threads) {
  GRAPHITE_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunOnAll(const std::function<void(int)>& job) {
  if (workers_.empty()) {
    job(0);
    return;
  }
  {
    MutexLock lock(mu_);
    job_ = &job;
    ++generation_;
    pending_ = static_cast<int>(workers_.size());
  }
  work_cv_.NotifyAll();
  job(0);
  MutexLock lock(mu_);
  while (pending_ != 0) done_cv_.Wait(mu_);
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int thread_id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.Wait(mu_);
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(thread_id);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.NotifyOne();
    }
  }
}

}  // namespace graphite
