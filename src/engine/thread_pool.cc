#include "engine/thread_pool.h"

#include "util/status.h"

namespace graphite {

ThreadPool::ThreadPool(int num_threads) {
  GRAPHITE_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunOnAll(const std::function<void(int)>& job) {
  if (workers_.empty()) {
    job(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
    pending_ = static_cast<int>(workers_.size());
  }
  work_cv_.notify_all();
  job(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int thread_id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(thread_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace graphite
