// Persistent worker pool for the BSP engines. Created once per Run() and
// reused across supersteps: threads park on a condition variable between
// phases instead of being respawned, which removes the per-superstep
// thread-creation cost the legacy spawn mode (RunWorkers) pays.
//
// The single primitive is RunOnAll(job): `job(thread_id)` executes once on
// every pool thread AND on the calling thread (thread id 0), and RunOnAll
// returns when all copies have finished. Phase executors (work-stealing
// compute, parallel message delivery) are built on top by having the job
// drain shared atomic cursors — see SuperstepRuntime in engine/parallel.h.
//
// Lock discipline is compiler-checked: every cross-thread member is
// GRAPHITE_GUARDED_BY(mu_) and Clang's -Wthread-safety verifies that all
// accesses hold the lock (util/thread_annotations.h).
#ifndef GRAPHITE_ENGINE_THREAD_POOL_H_
#define GRAPHITE_ENGINE_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace graphite {

class ThreadPool {
 public:
  /// Creates a pool of `num_threads` total execution lanes: the caller of
  /// RunOnAll counts as lane 0, so `num_threads - 1` OS threads are
  /// spawned. `num_threads == 1` spawns nothing and RunOnAll degenerates
  /// to a plain call.
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Runs `job(thread_id)` on every lane (ids in [0, num_threads), id 0 on
  /// the calling thread) and returns once all lanes have completed.
  /// Completion synchronizes-with the return, so the caller may freely
  /// read anything the lanes wrote. Not reentrant.
  void RunOnAll(const std::function<void(int)>& job);

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

 private:
  void WorkerLoop(int thread_id);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* job_ GRAPHITE_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int pending_ GRAPHITE_GUARDED_BY(mu_) = 0;
  bool stop_ GRAPHITE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // Written in ctor only; const after.
};

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_THREAD_POOL_H_
