#include "engine/transport.h"

#include <utility>

#include "util/status.h"
#include "util/varint.h"

namespace graphite {

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "in_process";
    case TransportKind::kLoopbackWire:
      return "loopback_wire";
  }
  return "unknown";
}

namespace {

/// Zero-copy default: the "channel" is a list of pointers into the
/// senders' row buffers. The destination decodes in place; Consume clears
/// the rows for the next superstep's refill.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(int num_workers) : rows_(num_workers) {}

  TransportKind kind() const override { return TransportKind::kInProcess; }

  void Ship(int /*src_worker*/, int dst_worker, Writer* row) override {
    rows_[dst_worker].push_back(row);
  }

  size_t NumFrames(int dst_worker) const override {
    return rows_[dst_worker].size();
  }

  std::string_view Frame(int dst_worker, size_t k) const override {
    return rows_[dst_worker][k]->buffer();
  }

  void Consume(int dst_worker) override {
    for (Writer* row : rows_[dst_worker]) row->Clear();
    rows_[dst_worker].clear();
  }

 private:
  std::vector<std::vector<Writer*>> rows_;
};

/// Wire-faithful loopback: every shipped row is length-prefix framed into
/// a per-destination byte stream — the exact shape a socket send loop
/// would produce — and the sender's row is cleared at once, so decode can
/// only ever read the copied wire bytes. A real socket backend replaces
/// the stream with the peer's receive buffer; the frame table is what its
/// receive loop would rebuild from the length prefixes.
class LoopbackWireTransport final : public Transport {
 public:
  explicit LoopbackWireTransport(int num_workers) : channels_(num_workers) {}

  TransportKind kind() const override { return TransportKind::kLoopbackWire; }

  void Ship(int /*src_worker*/, int dst_worker, Writer* row) override {
    Channel& ch = channels_[dst_worker];
    ch.stream.WriteU64(row->size());
    const size_t offset = ch.stream.size();
    ch.stream.Append(row->buffer());
    ch.frames.push_back({offset, row->size()});
    row->Clear();  // The bytes have left the sender.
  }

  size_t NumFrames(int dst_worker) const override {
    return channels_[dst_worker].frames.size();
  }

  std::string_view Frame(int dst_worker, size_t k) const override {
    const Channel& ch = channels_[dst_worker];
    const auto [offset, len] = ch.frames[k];
    return std::string_view(ch.stream.buffer()).substr(offset, len);
  }

  void Consume(int dst_worker) override {
    Channel& ch = channels_[dst_worker];
    // Replay the envelope the way a receive loop would, proving the
    // stream deframes to exactly the frames that were handed out.
    size_t pos = 0;
    for (const auto& [offset, len] : ch.frames) {
      uint64_t framed = 0;
      GRAPHITE_CHECK(GetVarint64(ch.stream.buffer(), &pos, &framed));
      GRAPHITE_CHECK(framed == len && pos == offset);
      pos += len;
    }
    GRAPHITE_CHECK(pos == ch.stream.size());
    ch.stream.Clear();
    ch.frames.clear();
  }

 private:
  struct Channel {
    Writer stream;  // contiguous framed bytes, reused across supersteps
    std::vector<std::pair<size_t, size_t>> frames;  // (offset, len)
  };
  std::vector<Channel> channels_;
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_workers) {
  switch (kind) {
    case TransportKind::kInProcess:
      return std::make_unique<InProcessTransport>(num_workers);
    case TransportKind::kLoopbackWire:
      return std::make_unique<LoopbackWireTransport>(num_workers);
  }
  GRAPHITE_CHECK(false);
  return nullptr;
}

}  // namespace graphite
