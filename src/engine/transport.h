// Transport backends for the delivery plane (engine/delivery.h). A
// Transport carries filled wire rows — §VI varint-encoded message batches,
// one row per (source chunk, destination worker) — from the compute phase
// to the destination worker's delivery lane. Frame granularity keeps the
// virtual dispatch off the per-message path: one Ship/Frame call moves an
// entire row, so the cost of the seam is a handful of calls per superstep.
//
// Two backends:
//
//   InProcessTransport    — the default zero-copy path. Ship records a
//                           pointer to the sender's row; the destination
//                           decodes straight out of the sender's buffer
//                           and Consume clears it. Bytes never move, which
//                           is exactly what today's single-process engines
//                           did inline.
//   LoopbackWireTransport — the wire-faithful path. Ship copies the row's
//                           bytes into a per-destination staging stream
//                           (with an offset/length frame table standing in
//                           for socket framing) and clears the sender's
//                           row immediately — send() semantics: once
//                           shipped, the bytes live only on the channel.
//                           Decoding then provably reads nothing but wire
//                           bytes. This is the seam where a future
//                           multi-process socket backend plugs in (see
//                           ROADMAP "Open items").
//
// Concurrency contract: all calls for a given destination worker — Ship
// into it, Frame reads, Consume — are made by that destination's delivery
// lane only (the plane's per-destination ParallelFor guarantees this).
// Channels for different destinations share no mutable state.
//
// Allocation contract: both backends reuse their per-destination storage
// across supersteps, so a steady-state superstep allocates nothing here
// (BENCH_warp_alloc gates this).
#ifndef GRAPHITE_ENGINE_TRANSPORT_H_
#define GRAPHITE_ENGINE_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/serde.h"

namespace graphite {

/// Which transport backend a run routes its messages through. Part of
/// RuntimeOptions so every engine exposes it uniformly.
enum class TransportKind {
  kInProcess,     ///< zero-copy in-process hop (default)
  kLoopbackWire,  ///< copy through a staged wire channel and back
};

const char* TransportKindName(TransportKind kind);

/// One hop of the delivery plane: rows in at the source, frames out at the
/// destination, in ship order. See the file comment for the concurrency
/// and allocation contracts.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  /// Ships one filled wire row from `src_worker` to `dst_worker`. The
  /// backend either aliases the row until Consume (in-process) or copies
  /// its bytes and Clears it immediately (loopback wire).
  virtual void Ship(int src_worker, int dst_worker, Writer* row) = 0;

  /// Frames pending for `dst_worker`, in ship order.
  virtual size_t NumFrames(int dst_worker) const = 0;

  /// The k-th pending frame's bytes. Valid until Consume(dst_worker).
  virtual std::string_view Frame(int dst_worker, size_t k) const = 0;

  /// Releases `dst_worker`'s frames (and, in-process, Clears the aliased
  /// sender rows). Call after decoding, once per messaging phase.
  virtual void Consume(int dst_worker) = 0;
};

std::unique_ptr<Transport> MakeTransport(TransportKind kind, int num_workers);

}  // namespace graphite

#endif  // GRAPHITE_ENGINE_TRANSPORT_H_
