#include "gen/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "graph/builder.h"
#include "util/rng.h"

namespace graphite {

namespace {

// Draws an edge lifespan within [0, T) according to the configured shape.
Interval DrawEdgeLifespan(Rng& rng, const GenOptions& opt) {
  const TimePoint T = opt.snapshots;
  switch (opt.edge_lifespan) {
    case GenOptions::Lifespan::kFull:
      return Interval(0, T);
    case GenOptions::Lifespan::kUnit: {
      const TimePoint t = rng.UniformRange(0, T);
      return Interval(t, t + 1);
    }
    case GenOptions::Lifespan::kLong: {
      // Long-lived: most edges exist from the first snapshot (the Twitter
      // and MAG shape — entity lifespans track the graph lifetime, so
      // temporal boundaries are few and sharing potential is high).
      const TimePoint start =
          rng.Bernoulli(opt.start_zero_prob)
              ? 0
              : rng.UniformRange(0, std::max<TimePoint>(1, T / 4));
      TimePoint len = rng.Geometric(1.0 / opt.mean_edge_lifespan);
      len = std::min<TimePoint>(len + opt.mean_edge_lifespan / 2, T - start);
      return Interval(start, start + std::max<TimePoint>(1, len));
    }
    case GenOptions::Lifespan::kMixed: {
      if (rng.Bernoulli(opt.unit_fraction)) {
        const TimePoint t = rng.UniformRange(0, T);
        return Interval(t, t + 1);
      }
      // Non-unit edges start early (like the long-lived shape) so the
      // realized mean lifespan tracks mean_edge_lifespan.
      const TimePoint start = rng.UniformRange(0, std::max<TimePoint>(1, T / 3));
      TimePoint len = rng.Geometric(1.0 / opt.mean_edge_lifespan);
      len = std::min<TimePoint>(len + opt.mean_edge_lifespan / 2, T - start);
      return Interval(start, start + std::max<TimePoint>(1, len));
    }
  }
  return Interval(0, T);
}

// Splits `span` into ~opt.prop_segments runs and attaches travel-time /
// travel-cost values per run.
void AttachProperties(Rng& rng, const GenOptions& opt, TemporalGraphBuilder& b,
                      EdgeId eid, const Interval& span) {
  const TimePoint len = span.end - span.start;
  int64_t segments = std::max<int64_t>(
      1, std::min<int64_t>(len, static_cast<int64_t>(
                                    1 + rng.Uniform(static_cast<uint64_t>(
                                            2 * opt.prop_segments)))));
  TimePoint t = span.start;
  for (int64_t k = 0; k < segments && t < span.end; ++k) {
    const TimePoint end =
        (k == segments - 1)
            ? span.end
            : std::min<TimePoint>(span.end,
                                  rng.UniformRange(t + 1, span.end + 1));
    b.SetEdgeProperty(eid, "travel-time", Interval(t, end),
                      1 + rng.UniformRange(0, opt.max_travel_time));
    b.SetEdgeProperty(eid, "travel-cost", Interval(t, end),
                      1 + rng.UniformRange(0, opt.max_travel_cost));
    t = end;
  }
}

TemporalGraph GeneratePowerLaw(const GenOptions& opt) {
  Rng rng(opt.seed);
  TemporalGraphBuilder b;
  const int64_t n = opt.num_vertices;
  const TimePoint T = opt.snapshots;

  // Vertex lifespans: mostly full-horizon; the rest are sub-intervals.
  std::vector<Interval> spans(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    if (rng.Bernoulli(opt.full_vertex_prob)) {
      spans[static_cast<size_t>(v)] = Interval(0, T);
    } else {
      const TimePoint s = rng.UniformRange(0, T);
      spans[static_cast<size_t>(v)] =
          Interval(s, rng.UniformRange(s + 1, T + 1));
    }
    b.AddVertex(v, spans[static_cast<size_t>(v)]);
  }

  // Power-law endpoints: a fixed random permutation maps Zipf ranks to
  // vertex ids so the hubs are spread over the id space (and thus over
  // hash partitions), as in real social graphs.
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) perm[static_cast<size_t>(v)] = v;
  for (int64_t v = n - 1; v > 0; --v) {
    std::swap(perm[static_cast<size_t>(v)],
              perm[rng.Uniform(static_cast<uint64_t>(v + 1))]);
  }

  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = opt.num_edges * 30;
  while (added < opt.num_edges && attempts < max_attempts) {
    ++attempts;
    const int64_t src =
        perm[rng.Zipf(static_cast<uint64_t>(n), opt.zipf_alpha)];
    const int64_t dst = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)));
    if (src == dst) continue;
    Interval span = DrawEdgeLifespan(rng, opt);
    span = span.Intersect(spans[static_cast<size_t>(src)])
               .Intersect(spans[static_cast<size_t>(dst)]);
    if (span.IsEmpty()) continue;
    const EdgeId eid = added;
    b.AddEdge(eid, src, dst, span);
    if (opt.with_properties) AttachProperties(rng, opt, b, eid, span);
    ++added;
  }

  BuilderOptions options;
  options.horizon = T;
  options.validate = false;  // Valid by construction; tested separately.
  auto g = b.Build(options);
  GRAPHITE_CHECK(g.ok());
  return std::move(g).value();
}

TemporalGraph GenerateGrid(const GenOptions& opt) {
  Rng rng(opt.seed);
  TemporalGraphBuilder b;
  const int64_t side =
      std::max<int64_t>(2, static_cast<int64_t>(std::sqrt(
                               static_cast<double>(opt.num_vertices))));
  const int64_t n = side * side;
  const TimePoint T = opt.snapshots;
  for (int64_t v = 0; v < n; ++v) b.AddVertex(v, Interval(0, T));

  // Planar road grid: bidirectional edges to the right and down
  // neighbors, static topology (the USRN shape), properties churning.
  EdgeId eid = 0;
  auto add_bidi = [&](int64_t a, int64_t c) {
    for (int64_t pair = 0; pair < 2; ++pair) {
      const int64_t s = pair == 0 ? a : c;
      const int64_t d = pair == 0 ? c : a;
      b.AddEdge(eid, s, d, Interval(0, T));
      if (opt.with_properties) {
        AttachProperties(rng, opt, b, eid, Interval(0, T));
      }
      ++eid;
    }
  };
  for (int64_t r = 0; r < side; ++r) {
    for (int64_t c = 0; c < side; ++c) {
      const int64_t v = r * side + c;
      if (c + 1 < side) add_bidi(v, v + 1);
      if (r + 1 < side) add_bidi(v, v + side);
    }
  }

  BuilderOptions options;
  options.horizon = T;
  options.validate = false;
  auto g = b.Build(options);
  GRAPHITE_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace

TemporalGraph Generate(const GenOptions& options) {
  switch (options.topology) {
    case GenOptions::Topology::kPowerLaw:
      return GeneratePowerLaw(options);
    case GenOptions::Topology::kGrid:
      return GenerateGrid(options);
  }
  return GeneratePowerLaw(options);
}

std::vector<DatasetSpec> DatasetCatalog(double scale) {
  auto scaled = [scale](int64_t x) {
    return std::max<int64_t>(64, static_cast<int64_t>(
                                     static_cast<double>(x) * scale));
  };
  std::vector<DatasetSpec> specs;

  {  // GPlus: 4 snapshots, unit-length edges — ICM's worst case (§VII-B5).
    DatasetSpec s;
    s.name = "GPlus-like";
    s.models = "GPlus (4 snapshots, unit edge lifespans, power-law)";
    s.options.seed = 71;
    s.options.num_vertices = scaled(6000);
    s.options.num_edges = scaled(24000);
    s.options.snapshots = 4;
    s.options.edge_lifespan = GenOptions::Lifespan::kUnit;
    s.options.prop_segments = 1;
    specs.push_back(std::move(s));
  }
  {  // Reddit: mixed, 96% unit edges.
    DatasetSpec s;
    s.name = "Reddit-like";
    s.models = "Reddit (96% unit edges, mixed lifespans)";
    s.options.seed = 72;
    s.options.num_vertices = scaled(4000);
    s.options.num_edges = scaled(20000);
    s.options.snapshots = 20;
    s.options.edge_lifespan = GenOptions::Lifespan::kMixed;
    s.options.unit_fraction = 0.96;
    s.options.mean_edge_lifespan = 6;
    s.options.prop_segments = 1.2;
    specs.push_back(std::move(s));
  }
  {  // USRN: planar road grid, static topology, property churn, huge
     // diameter.
    DatasetSpec s;
    s.name = "USRN-like";
    s.models = "USRN (road grid, static topology, 96-snapshot properties)";
    s.options.seed = 73;
    s.options.num_vertices = scaled(4096);
    s.options.num_edges = scaled(16000);  // Derived from the grid.
    s.options.snapshots = 20;
    s.options.topology = GenOptions::Topology::kGrid;
    s.options.edge_lifespan = GenOptions::Lifespan::kFull;
    s.options.prop_segments = 4;  // avg property lifespan ~ T/4.
    specs.push_back(std::move(s));
  }
  {  // Twitter: long edge lifespans spanning almost the whole graph life.
    DatasetSpec s;
    s.name = "Twitter-like";
    s.models = "Twitter (edge lifespan ~ graph lifespan, LinkBench churn)";
    s.options.seed = 74;
    s.options.num_vertices = scaled(5000);
    s.options.num_edges = scaled(30000);
    s.options.snapshots = 16;
    s.options.edge_lifespan = GenOptions::Lifespan::kLong;
    s.options.mean_edge_lifespan = 30;   // Clamped: spans ~the whole life.
    s.options.start_zero_prob = 0.85;    // Paper: edge lifespan 28.4 of 30.
    s.options.full_vertex_prob = 0.97;
    s.options.prop_segments = 2;  // Property lifespan ~ half edge lifespan.
    specs.push_back(std::move(s));
  }
  {  // MAG: longest graph (most snapshots), long entity lifespans.
    DatasetSpec s;
    s.name = "MAG-like";
    s.models = "MAG (219 snapshots, long lifespans)";
    s.options.seed = 75;
    s.options.num_vertices = scaled(8000);
    s.options.num_edges = scaled(40000);
    s.options.snapshots = 28;
    s.options.edge_lifespan = GenOptions::Lifespan::kLong;
    s.options.mean_edge_lifespan = 40;   // Long-lived entities (MAG).
    s.options.full_vertex_prob = 0.95;
    s.options.prop_segments = 4;
    specs.push_back(std::move(s));
  }
  {  // WebUK: large, mixed lifespans averaging most of the horizon.
    DatasetSpec s;
    s.name = "WebUK-like";
    s.models = "WebUK (12 snapshots, avg lifespan ~9.4)";
    s.options.seed = 76;
    s.options.num_vertices = scaled(8000);
    s.options.num_edges = scaled(48000);
    s.options.snapshots = 12;
    s.options.edge_lifespan = GenOptions::Lifespan::kMixed;
    s.options.unit_fraction = 0.25;
    s.options.mean_edge_lifespan = 24;  // Clamped; realized mean ~9 of 12.
    s.options.prop_segments = 2;
    specs.push_back(std::move(s));
  }
  return specs;
}

DatasetSpec DatasetByName(const std::string& name, double scale) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  for (DatasetSpec& s : DatasetCatalog(scale)) {
    std::string sl;
    for (char c : s.name) sl.push_back(static_cast<char>(std::tolower(c)));
    if (sl.rfind(lower, 0) == 0) return s;
  }
  GRAPHITE_CHECK(false);
  return {};
}

GenOptions WeakScalingOptions(int machines, double scale,
                              TimePoint snapshots) {
  GenOptions opt;
  opt.seed = 900 + static_cast<uint64_t>(machines);
  opt.num_vertices = static_cast<int64_t>(10000.0 * machines * scale);
  opt.num_edges = static_cast<int64_t>(100000.0 * machines * scale);
  opt.snapshots = snapshots;
  opt.edge_lifespan = GenOptions::Lifespan::kMixed;
  opt.unit_fraction = 0.2;  // LinkBench-style churn on a social graph.
  opt.mean_edge_lifespan = static_cast<double>(snapshots) / 2;
  opt.prop_segments = 2;
  // LDBC's Facebook degree distribution is far milder than a raw Zipf
  // hub; bound the skew so the largest hub does not grow with the graph
  // and break per-worker load balance.
  opt.zipf_alpha = 0.4;
  return opt;
}

}  // namespace graphite
