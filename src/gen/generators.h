// Synthetic temporal-graph generators. Each of the paper's six real-world
// datasets (Table 1) is modeled by a deterministic generator reproducing
// the characteristics the evaluation depends on — degree distribution
// (power-law social vs. planar road), snapshot count, entity-lifespan
// distribution (unit / long / mixed) and property churn — at laptop scale.
// A configurable LDBC-like generator drives the weak-scaling experiment
// (Fig. 7), with LinkBench-style structural churn.
#ifndef GRAPHITE_GEN_GENERATORS_H_
#define GRAPHITE_GEN_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/temporal_graph.h"

namespace graphite {

/// Knobs for the generic temporal graph synthesizer.
struct GenOptions {
  uint64_t seed = 1;
  int64_t num_vertices = 1000;
  int64_t num_edges = 5000;
  /// Snapshot count (graph horizon T).
  TimePoint snapshots = 16;

  /// Topology family.
  enum class Topology {
    kPowerLaw,  ///< Preferential-attachment-like (social/web graphs).
    kGrid,      ///< Planar 2D grid with bidirectional edges (road nets).
  };
  Topology topology = Topology::kPowerLaw;
  /// Zipf skew of the power-law endpoint sampling.
  double zipf_alpha = 0.8;

  /// Lifespan shape of edges.
  enum class Lifespan {
    kUnit,   ///< Every edge lives one time-point (GPlus).
    kLong,   ///< Edges live ~full graph lifetime (Twitter/MAG).
    kMixed,  ///< Unit-heavy mix (Reddit) or spread (WebUK).
    kFull,   ///< Static topology, lifespan == horizon (USRN).
  };
  Lifespan edge_lifespan = Lifespan::kLong;
  /// Fraction of unit-lifespan edges in kMixed mode.
  double unit_fraction = 0.5;
  /// Mean edge lifespan (time-points) in kLong/kMixed modes.
  double mean_edge_lifespan = 8;
  /// Probability a kLong edge exists from t=0 (temporal uniformity: high
  /// values mean long shared lifespans, the Twitter shape).
  double start_zero_prob = 0.6;

  /// Vertices live for the whole horizon with this probability; otherwise
  /// a random sub-interval covering their edges.
  double full_vertex_prob = 0.9;

  /// Attach travel-time / travel-cost edge properties (TD algorithms).
  bool with_properties = true;
  /// Mean number of property segments per edge (property churn).
  double prop_segments = 2.0;
  TimePoint max_travel_time = 2;
  PropValue max_travel_cost = 20;
};

/// Synthesizes a valid temporal graph (Constraints 1-3 hold by
/// construction; generator output is additionally validated in tests).
TemporalGraph Generate(const GenOptions& options);

/// The six dataset analogs (paper Table 1), keyed by the real graph they
/// model. `scale` multiplies vertex/edge counts (1.0 = default laptop
/// scale, ~1000x smaller than the paper's clusters).
struct DatasetSpec {
  std::string name;        ///< e.g. "GPlus-like".
  std::string models;      ///< The real dataset it stands in for.
  GenOptions options;
};

/// Returns all six specs at the given scale.
std::vector<DatasetSpec> DatasetCatalog(double scale = 1.0);

/// One catalog entry by (case-insensitive) prefix name, e.g. "twitter".
DatasetSpec DatasetByName(const std::string& name, double scale = 1.0);

/// LDBC-like weak-scaling graph (Fig. 7): `machines` scales vertices and
/// edges linearly (~10k vertices and ~100k edges per machine at scale 1),
/// perturbed over `snapshots` time-points with LinkBench-style churn.
GenOptions WeakScalingOptions(int machines, double scale = 1.0,
                              TimePoint snapshots = 16);

}  // namespace graphite

#endif  // GRAPHITE_GEN_GENERATORS_H_
