#include "graph/builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace graphite {

void TemporalGraphBuilder::AddVertex(VertexId vid, const Interval& interval) {
  vertices_.push_back({vid, interval});
}

void TemporalGraphBuilder::AddEdge(EdgeId eid, VertexId src, VertexId dst,
                                   const Interval& interval) {
  edges_.push_back({eid, src, dst, interval});
}

void TemporalGraphBuilder::SetVertexProperty(VertexId vid,
                                             const std::string& label,
                                             const Interval& interval,
                                             PropValue value) {
  vertex_props_.push_back({vid, label, interval, value});
}

void TemporalGraphBuilder::SetEdgeProperty(EdgeId eid, const std::string& label,
                                           const Interval& interval,
                                           PropValue value) {
  edge_props_.push_back({eid, label, interval, value});
}

Result<TemporalGraph> TemporalGraphBuilder::Build(
    const BuilderOptions& options) {
  TemporalGraph g;

  // --- Vertices (Constraint 1: unique vids, one contiguous lifespan). ---
  g.vertex_ids_.reserve(vertices_.size());
  g.vertex_intervals_.reserve(vertices_.size());
  g.vid_to_idx_.reserve(vertices_.size());
  for (const PendingVertex& v : vertices_) {
    if (!v.interval.IsValid()) {
      return Status::InvalidArgument("vertex " + std::to_string(v.vid) +
                                     " has invalid lifespan " +
                                     v.interval.ToString());
    }
    auto [it, inserted] =
        g.vid_to_idx_.emplace(v.vid, static_cast<VertexIdx>(g.vertex_ids_.size()));
    if (!inserted) {
      return Status::ConstraintViolation(
          "Constraint 1: duplicate vertex id " + std::to_string(v.vid));
    }
    g.vertex_ids_.push_back(v.vid);
    g.vertex_intervals_.push_back(v.interval);
  }

  // --- Edges (Constraint 1 uniqueness, Constraint 2 referential
  // integrity: edge lifespan contained in both endpoint lifespans). ---
  std::unordered_map<EdgeId, EdgePos> eid_to_pos;
  eid_to_pos.reserve(edges_.size());
  std::vector<uint32_t> out_degree(g.num_vertices() + 1, 0);
  struct ResolvedEdge {
    EdgeId eid;
    VertexIdx src;
    VertexIdx dst;
    Interval interval;
  };
  std::vector<ResolvedEdge> resolved;
  resolved.reserve(edges_.size());
  std::unordered_set<EdgeId> seen_eids;
  seen_eids.reserve(edges_.size());
  for (const PendingEdge& e : edges_) {
    if (!e.interval.IsValid()) {
      return Status::InvalidArgument("edge " + std::to_string(e.eid) +
                                     " has invalid lifespan " +
                                     e.interval.ToString());
    }
    if (!seen_eids.insert(e.eid).second) {
      return Status::ConstraintViolation("Constraint 1: duplicate edge id " +
                                         std::to_string(e.eid));
    }
    auto src = g.IndexOf(e.src);
    auto dst = g.IndexOf(e.dst);
    if (!src || !dst) {
      return Status::ConstraintViolation(
          "Constraint 2: edge " + std::to_string(e.eid) +
          " references missing vertex");
    }
    if (options.validate) {
      if (!e.interval.ContainedIn(g.vertex_interval(*src)) ||
          !e.interval.ContainedIn(g.vertex_interval(*dst))) {
        return Status::ConstraintViolation(
            "Constraint 2: edge " + std::to_string(e.eid) + " lifespan " +
            e.interval.ToString() + " not contained in endpoint lifespans");
      }
    }
    resolved.push_back({e.eid, *src, *dst, e.interval});
    ++out_degree[*src];
  }

  // CSR out-adjacency, edges sorted by (src, eid) for determinism.
  std::stable_sort(resolved.begin(), resolved.end(),
                   [](const ResolvedEdge& a, const ResolvedEdge& b) {
                     return a.src != b.src ? a.src < b.src : a.eid < b.eid;
                   });
  g.out_offsets_.assign(g.num_vertices() + 1, 0);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    g.out_offsets_[v + 1] = g.out_offsets_[v] + out_degree[v];
  }
  g.edges_.reserve(resolved.size());
  for (const ResolvedEdge& e : resolved) {
    eid_to_pos.emplace(e.eid, static_cast<EdgePos>(g.edges_.size()));
    g.edges_.push_back({e.eid, e.src, e.dst, e.interval});
  }

  // CSR in-adjacency over edge positions.
  std::vector<uint32_t> in_degree(g.num_vertices() + 1, 0);
  for (const StoredEdge& e : g.edges_) ++in_degree[e.dst];
  g.in_offsets_.assign(g.num_vertices() + 1, 0);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    g.in_offsets_[v + 1] = g.in_offsets_[v] + in_degree[v];
  }
  g.in_positions_.assign(g.edges_.size(), 0);
  std::vector<uint32_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (EdgePos pos = 0; pos < g.edges_.size(); ++pos) {
    g.in_positions_[cursor[g.edges_[pos].dst]++] = pos;
  }

  // --- Properties (Constraint 3: property interval contained in entity
  // lifespan; Def. 1: no overlapping values for one label). ---
  auto intern = [&g](const std::string& name) -> LabelId {
    auto it = g.label_to_id_.find(name);
    if (it != g.label_to_id_.end()) return it->second;
    LabelId id = static_cast<LabelId>(g.labels_.size());
    g.labels_.push_back(name);
    g.label_to_id_.emplace(name, id);
    return id;
  };
  g.vertex_props_.resize(g.num_vertices());
  g.edge_props_.resize(g.num_edges());

  auto apply_prop =
      [&](std::vector<std::pair<LabelId, IntervalMap<PropValue>>>& props,
          const PendingProp& p, const Interval& entity_span,
          const char* kind) -> Status {
    if (!p.interval.IsValid()) {
      return Status::InvalidArgument("property interval invalid: " +
                                     p.interval.ToString());
    }
    if (options.validate && !p.interval.ContainedIn(entity_span)) {
      return Status::ConstraintViolation(
          std::string("Constraint 3: ") + kind + " property '" + p.label +
          "' interval " + p.interval.ToString() +
          " not contained in entity lifespan " + entity_span.ToString());
    }
    LabelId label = intern(p.label);
    IntervalMap<PropValue>* map = nullptr;
    for (auto& [l, m] : props) {
      if (l == label) {
        map = &m;
        break;
      }
    }
    if (map == nullptr) {
      props.emplace_back(label, IntervalMap<PropValue>());
      map = &props.back().second;
    }
    if (options.validate) {
      bool overlap = false;
      map->ForEachIntersecting(p.interval,
                               [&](const Interval&, PropValue) { overlap = true; });
      if (overlap) {
        return Status::ConstraintViolation(
            std::string("Def. 1: overlapping values for ") + kind +
            " property '" + p.label + "' at " + p.interval.ToString());
      }
    }
    map->Set(p.interval, p.value);
    return Status::OK();
  };

  for (const PendingProp& p : vertex_props_) {
    auto idx = g.IndexOf(p.entity);
    if (!idx) {
      return Status::ConstraintViolation(
          "Constraint 3: property on missing vertex " +
          std::to_string(p.entity));
    }
    GRAPHITE_RETURN_NOT_OK(apply_prop(g.vertex_props_[*idx], p,
                                      g.vertex_interval(*idx), "vertex"));
  }
  for (const PendingProp& p : edge_props_) {
    auto it = eid_to_pos.find(p.entity);
    if (it == eid_to_pos.end()) {
      return Status::ConstraintViolation(
          "Constraint 3: property on missing edge " + std::to_string(p.entity));
    }
    GRAPHITE_RETURN_NOT_OK(apply_prop(g.edge_props_[it->second], p,
                                      g.edges_[it->second].interval, "edge"));
  }

  // --- Horizon. ---
  if (options.horizon > 0) {
    g.horizon_ = options.horizon;
  } else {
    TimePoint max_end = 0;
    auto consider = [&max_end](const Interval& i) {
      if (i.end != kTimeMax && i.end > max_end) max_end = i.end;
      if (i.start != kTimeMin && i.start + 1 > max_end) max_end = i.start + 1;
    };
    for (const Interval& i : g.vertex_intervals_) consider(i);
    for (const StoredEdge& e : g.edges_) consider(e.interval);
    for (const auto& per : g.vertex_props_) {
      for (const auto& [l, m] : per) {
        (void)l;
        for (const auto& entry : m.entries()) consider(entry.interval);
      }
    }
    for (const auto& per : g.edge_props_) {
      for (const auto& [l, m] : per) {
        (void)l;
        for (const auto& entry : m.entries()) consider(entry.interval);
      }
    }
    g.horizon_ = max_end > 0 ? max_end : 1;
  }

  return g;
}

}  // namespace graphite
