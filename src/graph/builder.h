// Mutable builder for TemporalGraph. Collects vertices, edges and
// properties in any order, then validates the paper's soundness
// constraints (§III, Constraints 1-3) and freezes an immutable CSR graph.
#ifndef GRAPHITE_GRAPH_BUILDER_H_
#define GRAPHITE_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/temporal_graph.h"

namespace graphite {

/// Build-time options.
struct BuilderOptions {
  /// Check Constraints 1-3; disable only for trusted generator output
  /// (generators are themselves tested to produce valid graphs).
  bool validate = true;
  /// Explicit horizon T (number of snapshot time-points). 0 = derive from
  /// the largest finite entity end-time.
  TimePoint horizon = 0;
};

class TemporalGraphBuilder {
 public:
  /// Declares a vertex with lifespan `interval`.
  void AddVertex(VertexId vid, const Interval& interval);

  /// Declares a directed edge src -> dst with lifespan `interval`.
  void AddEdge(EdgeId eid, VertexId src, VertexId dst,
               const Interval& interval);

  /// Assigns vertex property `label` = `value` over `interval`.
  void SetVertexProperty(VertexId vid, const std::string& label,
                         const Interval& interval, PropValue value);

  /// Assigns edge property `label` = `value` over `interval`.
  void SetEdgeProperty(EdgeId eid, const std::string& label,
                       const Interval& interval, PropValue value);

  /// Validates and freezes. The builder is consumed (moved-from) on
  /// success. Returns ConstraintViolation / InvalidArgument on bad input.
  Result<TemporalGraph> Build(const BuilderOptions& options = {});

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

 private:
  struct PendingVertex {
    VertexId vid;
    Interval interval;
  };
  struct PendingEdge {
    EdgeId eid;
    VertexId src;
    VertexId dst;
    Interval interval;
  };
  struct PendingProp {
    int64_t entity;  // VertexId or EdgeId
    std::string label;
    Interval interval;
    PropValue value;
  };

  std::vector<PendingVertex> vertices_;
  std::vector<PendingEdge> edges_;
  std::vector<PendingProp> vertex_props_;
  std::vector<PendingProp> edge_props_;
};

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_BUILDER_H_
