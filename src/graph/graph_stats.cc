#include "graph/graph_stats.h"

#include <algorithm>
#include <map>

namespace graphite {

namespace {

// Sweep-line over lifespan boundaries: returns (max concurrent, sum of
// lengths) for a stream of clipped intervals fed through `add`.
class ActiveSweep {
 public:
  void Add(const Interval& clipped) {
    if (clipped.IsEmpty()) return;
    deltas_[clipped.start] += 1;
    deltas_[clipped.end] -= 1;
    total_ += static_cast<size_t>(clipped.end - clipped.start);
  }

  size_t MaxConcurrent() const {
    int64_t active = 0, peak = 0;
    for (const auto& [t, d] : deltas_) {
      active += d;
      peak = std::max(peak, active);
    }
    return static_cast<size_t>(peak);
  }

  size_t TotalPointCount() const { return total_; }

 private:
  std::map<TimePoint, int64_t> deltas_;
  size_t total_ = 0;
};

}  // namespace

GraphStats ComputeGraphStats(const TemporalGraph& g, bool include_transformed) {
  GraphStats s;
  s.num_snapshots = g.horizon();
  s.interval_v = g.num_vertices();
  s.interval_e = g.num_edges();

  ActiveSweep vertex_sweep, edge_sweep;
  double vertex_span_sum = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    const Interval clipped = g.ClipToHorizon(g.vertex_interval(v));
    vertex_sweep.Add(clipped);
    vertex_span_sum += static_cast<double>(clipped.Length());
  }
  double edge_span_sum = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const Interval clipped = g.ClipToHorizon(g.edge(pos).interval);
    edge_sweep.Add(clipped);
    edge_span_sum += static_cast<double>(clipped.Length());
  }
  s.largest_snapshot_v = vertex_sweep.MaxConcurrent();
  s.largest_snapshot_e = edge_sweep.MaxConcurrent();
  s.multi_snapshot_v = vertex_sweep.TotalPointCount();
  s.multi_snapshot_e = edge_sweep.TotalPointCount();
  s.avg_vertex_lifespan =
      g.num_vertices() ? vertex_span_sum / static_cast<double>(g.num_vertices())
                       : 0;
  s.avg_edge_lifespan =
      g.num_edges() ? edge_span_sum / static_cast<double>(g.num_edges()) : 0;

  double prop_span_sum = 0;
  size_t prop_count = 0;
  auto accumulate_props = [&](const std::vector<
                              std::pair<LabelId, IntervalMap<PropValue>>>&
                                  props) {
    for (const auto& [label, map] : props) {
      (void)label;
      for (const auto& entry : map.entries()) {
        const Interval clipped = g.ClipToHorizon(entry.interval);
        prop_span_sum += static_cast<double>(clipped.Length());
        ++prop_count;
      }
    }
  };
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    accumulate_props(g.VertexProperties(v));
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    accumulate_props(g.EdgeProperties(pos));
  }
  s.avg_prop_lifespan =
      prop_count ? prop_span_sum / static_cast<double>(prop_count) : 0;

  if (include_transformed) {
    CountTransformedGraph(g, TransformOptions(), &s.transformed_v,
                          &s.transformed_e);
  }
  return s;
}

}  // namespace graphite
