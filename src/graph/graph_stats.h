// Dataset-characteristics statistics reproducing the columns of the
// paper's Table 1: snapshot count, largest-snapshot size, interval-graph
// size, transformed-graph size, cumulative multi-snapshot size, and the
// average lifespans of vertices, edges and properties.
#ifndef GRAPHITE_GRAPH_GRAPH_STATS_H_
#define GRAPHITE_GRAPH_GRAPH_STATS_H_

#include <cstdint>

#include "graph/temporal_graph.h"
#include "graph/transformed_graph.h"

namespace graphite {

struct GraphStats {
  int64_t num_snapshots = 0;        ///< Horizon T.
  size_t largest_snapshot_v = 0;    ///< Max over t of active vertices.
  size_t largest_snapshot_e = 0;    ///< Max over t of active edges.
  size_t interval_v = 0;            ///< Interval-graph vertices.
  size_t interval_e = 0;            ///< Interval-graph edges.
  size_t transformed_v = 0;         ///< Transformed-graph replicas.
  size_t transformed_e = 0;         ///< Transformed-graph edges.
  size_t multi_snapshot_v = 0;      ///< Sum over t of active vertices.
  size_t multi_snapshot_e = 0;      ///< Sum over t of active edges.
  double avg_vertex_lifespan = 0;   ///< Mean clipped vertex lifespan.
  double avg_edge_lifespan = 0;     ///< Mean clipped edge lifespan.
  double avg_prop_lifespan = 0;     ///< Mean clipped property-interval span.
};

/// Computes all Table 1 statistics in one pass (plus the transformed-graph
/// dry-run count when `include_transformed` is set — that count enumerates
/// per-time-point replicas and can dominate runtime for long graphs).
GraphStats ComputeGraphStats(const TemporalGraph& g,
                             bool include_transformed = true);

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_GRAPH_STATS_H_
