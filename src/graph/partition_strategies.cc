#include "graph/partition_strategies.h"

#include <algorithm>

#include "graph/partitioner.h"

namespace graphite {

const char* PartitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kRange:
      return "range";
    case PartitionStrategy::kBlock:
      return "block";
    case PartitionStrategy::kGreedyLdg:
      return "greedy-ldg";
  }
  return "?";
}

namespace {

std::vector<int> RangePartition(const TemporalGraph& g, int num_workers) {
  // Contiguous external-id ranges of equal width.
  VertexId min_id = 0, max_id = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    min_id = std::min(min_id, g.vertex_id(v));
    max_id = std::max(max_id, g.vertex_id(v));
  }
  const double width =
      static_cast<double>(max_id - min_id + 1) / num_workers;
  std::vector<int> out(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    int w = static_cast<int>(
        static_cast<double>(g.vertex_id(v) - min_id) / width);
    out[v] = std::clamp(w, 0, num_workers - 1);
  }
  return out;
}

std::vector<int> BlockPartition(const TemporalGraph& g, int num_workers) {
  // Equal-cardinality blocks of the internal index order.
  std::vector<int> out(g.num_vertices());
  const size_t per =
      (g.num_vertices() + static_cast<size_t>(num_workers) - 1) /
      static_cast<size_t>(num_workers);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    out[v] = static_cast<int>(v / per);
  }
  return out;
}

std::vector<int> GreedyLdgPartition(const TemporalGraph& g, int num_workers) {
  // Linear Deterministic Greedy: stream vertices in index order; place
  // each on the worker holding most of its already-placed neighbors
  // (lifespan-weighted), scaled by remaining capacity.
  const size_t n = g.num_vertices();
  const double capacity =
      static_cast<double>(n) / num_workers + 1.0;
  std::vector<int> out(n, -1);
  std::vector<double> load(num_workers, 0);
  std::vector<double> affinity(num_workers, 0);
  for (VertexIdx v = 0; v < n; ++v) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    auto tally = [&](VertexIdx other, const Interval& span) {
      if (other < v && out[other] >= 0) {
        affinity[out[other]] +=
            static_cast<double>(g.ClipToHorizon(span).Length());
      }
    };
    for (const StoredEdge& e : g.OutEdges(v)) tally(e.dst, e.interval);
    for (EdgePos pos : g.InEdgePositions(v)) {
      tally(g.edge(pos).src, g.edge(pos).interval);
    }
    int best = 0;
    double best_score = -1;
    for (int w = 0; w < num_workers; ++w) {
      const double score =
          (affinity[w] + 1e-3) * (1.0 - load[w] / capacity);
      if (score > best_score) {
        best_score = score;
        best = w;
      }
    }
    out[v] = best;
    load[best] += 1.0;
  }
  return out;
}

}  // namespace

std::vector<int> ComputePartition(const TemporalGraph& g,
                                  PartitionStrategy strategy,
                                  int num_workers) {
  GRAPHITE_CHECK(num_workers >= 1);
  switch (strategy) {
    case PartitionStrategy::kHash: {
      HashPartitioner p(num_workers);
      std::vector<int> out(g.num_vertices());
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        out[v] = p.WorkerOf(g.vertex_id(v));
      }
      return out;
    }
    case PartitionStrategy::kRange:
      return RangePartition(g, num_workers);
    case PartitionStrategy::kBlock:
      return BlockPartition(g, num_workers);
    case PartitionStrategy::kGreedyLdg:
      return GreedyLdgPartition(g, num_workers);
  }
  return {};
}

Placement ComputePlacement(const TemporalGraph& g, PartitionStrategy strategy,
                           int num_workers) {
  if (strategy == PartitionStrategy::kHash) return Placement::Hash();
  return Placement::Owned(ComputePartition(g, strategy, num_workers));
}

PartitionQuality EvaluatePartition(const TemporalGraph& g,
                                   const std::vector<int>& worker_of,
                                   int num_workers) {
  GRAPHITE_CHECK(worker_of.size() == g.num_vertices());
  PartitionQuality q;
  int64_t total_edge_points = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    const int64_t points = g.ClipToHorizon(e.interval).Length();
    total_edge_points += points;
    if (worker_of[e.src] != worker_of[e.dst]) {
      q.temporal_edge_cut += points;
    }
  }
  q.cut_fraction =
      total_edge_points > 0
          ? static_cast<double>(q.temporal_edge_cut) /
                static_cast<double>(total_edge_points)
          : 0;
  std::vector<int64_t> load(num_workers, 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    load[worker_of[v]] += g.ClipToHorizon(g.vertex_interval(v)).Length();
  }
  int64_t max_load = 0, sum_load = 0;
  for (int64_t l : load) {
    max_load = std::max(max_load, l);
    sum_load += l;
  }
  q.load_imbalance =
      sum_load > 0 ? static_cast<double>(max_load) * num_workers /
                         static_cast<double>(sum_load)
                   : 0;
  return q;
}

}  // namespace graphite
