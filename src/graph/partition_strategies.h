// Partitioning strategies and quality metrics (paper §VIII future work:
// "explore storage and partitioning strategies"). Produces explicit
// vertex->worker assignments the ICM engine can run with, plus the
// temporal quality measures that explain their performance:
//   * hash       — Giraph's default (the paper's setup),
//   * range      — contiguous external-id ranges,
//   * block      — equal-cardinality contiguous blocks of the internal
//                  index order (locality-preserving for generators that
//                  emit neighborhoods with nearby ids, e.g. road grids),
//   * greedy-ldg — one-pass Linear Deterministic Greedy streaming
//                  partitioner (Stanton & Kliot style): place each vertex
//                  with the neighbor-richest worker, penalized by load.
//
// Quality metrics are TEMPORAL: an edge crossing workers costs one unit
// per time-point of its lifespan (that is what BSP messaging pays).
#ifndef GRAPHITE_GRAPH_PARTITION_STRATEGIES_H_
#define GRAPHITE_GRAPH_PARTITION_STRATEGIES_H_

#include <string>
#include <vector>

#include "graph/partitioner.h"
#include "graph/temporal_graph.h"

namespace graphite {

enum class PartitionStrategy { kHash, kRange, kBlock, kGreedyLdg };

const char* PartitionStrategyName(PartitionStrategy s);

/// Computes a vertex->worker assignment (indexed by VertexIdx).
std::vector<int> ComputePartition(const TemporalGraph& g,
                                  PartitionStrategy strategy,
                                  int num_workers);

/// Same assignment packaged as an owning Placement, ready to drop into any
/// engine's options — the strategy layer and the delivery plane's
/// placement seam meet here. kHash returns the hash policy itself (not a
/// materialized copy), so it is byte-for-byte the engines' default.
Placement ComputePlacement(const TemporalGraph& g, PartitionStrategy strategy,
                           int num_workers);

/// Temporal quality of an assignment.
struct PartitionQuality {
  /// Sum over cross-worker edges of their clipped lifespan length — the
  /// number of (edge, time-point) pairs whose message must cross the
  /// network.
  int64_t temporal_edge_cut = 0;
  /// Same, as a fraction of all (edge, time-point) pairs.
  double cut_fraction = 0;
  /// max worker load / mean worker load, with load = sum of clipped
  /// vertex lifespans (the data-parallel work a worker owns over time).
  double load_imbalance = 0;
};

PartitionQuality EvaluatePartition(const TemporalGraph& g,
                                   const std::vector<int>& worker_of,
                                   int num_workers);

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_PARTITION_STRATEGIES_H_
