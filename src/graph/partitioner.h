// Vertex placement policies mapping vertices to workers. The default is
// the hash partitioner mirroring Giraph's, used in the paper's setup
// (§VII-A4); Placement generalizes it so every engine can take an
// arbitrary unit->worker map (from graph/partition_strategies.h or the
// caller) through one seam — the delivery plane (engine/delivery.h)
// materializes whichever policy the options carry.
#ifndef GRAPHITE_GRAPH_PARTITIONER_H_
#define GRAPHITE_GRAPH_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace graphite {

/// Deterministic 64-bit mix (splitmix64 finalizer) used to spread ids.
inline uint64_t HashId(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Maps external vertex ids onto `num_workers` partitions by hash.
class HashPartitioner {
 public:
  explicit HashPartitioner(int num_workers) : num_workers_(num_workers) {}

  /// Worker owning vertex `vid`.
  int WorkerOf(VertexId vid) const {
    return static_cast<int>(HashId(static_cast<uint64_t>(vid)) %
                            static_cast<uint64_t>(num_workers_));
  }

  int num_workers() const { return num_workers_; }

 private:
  int num_workers_;
};

/// A unit->worker placement policy, the single seam every engine routes
/// through. Default-constructed it is the paper's hash policy (HashId of
/// the unit's external id, modulo workers — identical to HashPartitioner);
/// Explicit/Owned wrap a precomputed assignment indexed by unit. Cheap to
/// copy: explicit maps are borrowed, owned maps are shared.
class Placement {
 public:
  /// Hash policy (the default; §VII-A4).
  Placement() = default;
  static Placement Hash() { return Placement(); }

  /// Borrows `map` (indexed by unit, values in [0, num_workers)); the
  /// caller keeps it alive for the run.
  static Placement Explicit(const std::vector<int>* map) {
    Placement p;
    p.map_ = map;
    return p;
  }

  /// Takes ownership of a computed assignment.
  static Placement Owned(std::vector<int> map) {
    Placement p;
    p.owned_ = std::make_shared<const std::vector<int>>(std::move(map));
    p.map_ = p.owned_.get();
    return p;
  }

  bool is_hash() const { return map_ == nullptr; }
  /// Size of the explicit map; 0 for the hash policy.
  size_t map_size() const { return map_ == nullptr ? 0 : map_->size(); }

  /// Worker owning unit `unit`, whose partition key (external id) is
  /// `key`. Explicit maps index by unit; the hash policy spreads the key.
  int WorkerOf(uint32_t unit, VertexId key, int num_workers) const {
    if (map_ != nullptr) {
      GRAPHITE_CHECK(unit < map_->size());
      return (*map_)[unit];
    }
    return static_cast<int>(HashId(static_cast<uint64_t>(key)) %
                            static_cast<uint64_t>(num_workers));
  }

 private:
  const std::vector<int>* map_ = nullptr;
  std::shared_ptr<const std::vector<int>> owned_;
};

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_PARTITIONER_H_
