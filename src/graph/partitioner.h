// Hash partitioner mapping vertices to workers, mirroring Giraph's default
// hash partitioner used in the paper's setup (§VII-A4).
#ifndef GRAPHITE_GRAPH_PARTITIONER_H_
#define GRAPHITE_GRAPH_PARTITIONER_H_

#include <cstdint>

#include "graph/temporal_graph.h"

namespace graphite {

/// Deterministic 64-bit mix (splitmix64 finalizer) used to spread ids.
inline uint64_t HashId(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Maps external vertex ids onto `num_workers` partitions by hash.
class HashPartitioner {
 public:
  explicit HashPartitioner(int num_workers) : num_workers_(num_workers) {}

  /// Worker owning vertex `vid`.
  int WorkerOf(VertexId vid) const {
    return static_cast<int>(HashId(static_cast<uint64_t>(vid)) %
                            static_cast<uint64_t>(num_workers_));
  }

  int num_workers() const { return num_workers_; }

 private:
  int num_workers_;
};

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_PARTITIONER_H_
