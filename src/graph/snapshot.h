// Snapshot view: the non-temporal graph S_t induced by the entities active
// at a single time-point t (paper Fig. 1c). Views are zero-copy and are the
// substrate the MSB / Chlonos / GoFFish baselines compute on.
#ifndef GRAPHITE_GRAPH_SNAPSHOT_H_
#define GRAPHITE_GRAPH_SNAPSHOT_H_

#include <optional>

#include "graph/temporal_graph.h"

namespace graphite {

class SnapshotView {
 public:
  SnapshotView(const TemporalGraph* graph, TimePoint t)
      : graph_(graph), t_(t) {}

  TimePoint time() const { return t_; }
  const TemporalGraph& graph() const { return *graph_; }

  /// True iff vertex `v` exists at this snapshot's time-point.
  bool VertexActive(VertexIdx v) const {
    return graph_->vertex_interval(v).Contains(t_);
  }

  /// True iff the edge at `pos` exists at this time-point.
  bool EdgeActive(EdgePos pos) const {
    return graph_->edge(pos).interval.Contains(t_);
  }

  /// Invokes fn(VertexIdx) for every vertex active at t.
  template <typename Fn>
  void ForEachActiveVertex(Fn&& fn) const {
    for (VertexIdx v = 0; v < graph_->num_vertices(); ++v) {
      if (VertexActive(v)) fn(v);
    }
  }

  /// Invokes fn(const StoredEdge&, EdgePos) for each out-edge of `v`
  /// active at t.
  template <typename Fn>
  void ForEachOutEdge(VertexIdx v, Fn&& fn) const {
    auto edges = graph_->OutEdges(v);
    for (size_t k = 0; k < edges.size(); ++k) {
      if (edges[k].interval.Contains(t_)) {
        fn(edges[k], graph_->OutEdgePos(v, k));
      }
    }
  }

  /// Value of edge property `label` at t, if present.
  std::optional<PropValue> EdgePropertyAt(EdgePos pos, LabelId label) const {
    const IntervalMap<PropValue>* map = graph_->EdgeProperty(pos, label);
    if (map == nullptr) return std::nullopt;
    return map->Get(t_);
  }

  /// Counts active vertices and edges (used by Table 1 and Fig. 6a).
  void CountActive(size_t* vertices, size_t* edges) const {
    size_t nv = 0, ne = 0;
    for (VertexIdx v = 0; v < graph_->num_vertices(); ++v) {
      if (VertexActive(v)) ++nv;
    }
    for (EdgePos pos = 0; pos < graph_->num_edges(); ++pos) {
      if (EdgeActive(pos)) ++ne;
    }
    *vertices = nv;
    *edges = ne;
  }

 private:
  const TemporalGraph* graph_;
  TimePoint t_;
};

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_SNAPSHOT_H_
