#include "graph/temporal_graph.h"

namespace graphite {

size_t TemporalGraph::MemoryFootprintBytes() const {
  size_t bytes = 0;
  bytes += vertex_ids_.size() * sizeof(VertexId);
  bytes += vertex_intervals_.size() * sizeof(Interval);
  bytes += vid_to_idx_.size() * (sizeof(VertexId) + sizeof(VertexIdx) + 16);
  bytes += out_offsets_.size() * sizeof(uint32_t);
  bytes += edges_.size() * sizeof(StoredEdge);
  bytes += in_offsets_.size() * sizeof(uint32_t);
  bytes += in_positions_.size() * sizeof(EdgePos);
  auto props_bytes =
      [](const std::vector<std::vector<std::pair<LabelId,
                                                 IntervalMap<PropValue>>>>&
             props) {
        size_t b = 0;
        for (const auto& per_entity : props) {
          b += per_entity.size() * sizeof(std::pair<LabelId, void*>);
          for (const auto& [label, map] : per_entity) {
            (void)label;
            b += map.size() * (sizeof(Interval) + sizeof(PropValue));
          }
        }
        return b;
      };
  bytes += props_bytes(vertex_props_);
  bytes += props_bytes(edge_props_);
  return bytes;
}

}  // namespace graphite
