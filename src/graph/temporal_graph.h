// The temporal property graph data model (paper §III, Definition 1): a
// directed multi-graph G = (V, E, L, A_V, A_E) where vertices and edges
// carry lifespans and properties carry per-interval values.
//
// Storage is immutable CSR built once by TemporalGraphBuilder: out- and
// in-edge adjacency, vertex/edge lifespans, and per-entity temporal
// properties as IntervalMap<PropValue>. Vertices are referenced internally
// by dense indices (VertexIdx) for O(1) adjacency; external ids (VertexId)
// are opaque, per Def. 1.
#ifndef GRAPHITE_GRAPH_TEMPORAL_GRAPH_H_
#define GRAPHITE_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "temporal/interval.h"
#include "temporal/interval_map.h"
#include "util/status.h"

namespace graphite {

/// External (user-facing, opaque) vertex identifier.
using VertexId = int64_t;
/// External edge identifier.
using EdgeId = int64_t;
/// Internal dense vertex index in [0, num_vertices).
using VertexIdx = uint32_t;
/// Internal dense edge position in [0, num_edges).
using EdgePos = uint32_t;
/// Property values (the paper's TD algorithms use numeric edge properties
/// such as travel-time and travel-cost).
using PropValue = int64_t;
/// Interned property-label identifier.
using LabelId = uint16_t;

inline constexpr VertexIdx kInvalidVertex = static_cast<VertexIdx>(-1);

/// One stored directed edge (CSR payload).
struct StoredEdge {
  EdgeId eid = 0;
  VertexIdx src = kInvalidVertex;
  VertexIdx dst = kInvalidVertex;
  Interval interval;  ///< Edge lifespan.
};

/// Immutable temporal property graph. Create via TemporalGraphBuilder.
class TemporalGraph {
 public:
  size_t num_vertices() const { return vertex_intervals_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// External id of a vertex.
  VertexId vertex_id(VertexIdx v) const { return vertex_ids_[v]; }
  /// Lifespan of a vertex.
  const Interval& vertex_interval(VertexIdx v) const {
    return vertex_intervals_[v];
  }
  /// Dense index for an external id, if the vertex exists.
  std::optional<VertexIdx> IndexOf(VertexId vid) const {
    auto it = vid_to_idx_.find(vid);
    if (it == vid_to_idx_.end()) return std::nullopt;
    return it->second;
  }

  /// Out-edges of `v` (contiguous CSR slice).
  std::span<const StoredEdge> OutEdges(VertexIdx v) const {
    return {edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  /// Positions (into edge storage) of in-edges of `v`.
  std::span<const EdgePos> InEdgePositions(VertexIdx v) const {
    return {in_positions_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  /// Edge record by storage position.
  const StoredEdge& edge(EdgePos pos) const { return edges_[pos]; }
  /// Storage position of the k-th out-edge of `v`.
  EdgePos OutEdgePos(VertexIdx v, size_t k) const {
    return static_cast<EdgePos>(out_offsets_[v] + k);
  }

  /// Interned id for a label name, if used anywhere in the graph.
  std::optional<LabelId> LabelIdOf(const std::string& name) const {
    auto it = label_to_id_.find(name);
    if (it == label_to_id_.end()) return std::nullopt;
    return it->second;
  }
  /// Name of an interned label.
  const std::string& LabelName(LabelId id) const { return labels_[id]; }
  size_t num_labels() const { return labels_.size(); }

  /// Temporal values of edge property `label` on the edge at `pos`;
  /// nullptr when the edge has no such property.
  const IntervalMap<PropValue>* EdgeProperty(EdgePos pos, LabelId label) const {
    return FindProp(edge_props_[pos], label);
  }
  /// Temporal values of vertex property `label` on `v`; nullptr if absent.
  const IntervalMap<PropValue>* VertexProperty(VertexIdx v,
                                               LabelId label) const {
    return FindProp(vertex_props_[v], label);
  }
  /// All properties of the edge at `pos`.
  const std::vector<std::pair<LabelId, IntervalMap<PropValue>>>&
  EdgeProperties(EdgePos pos) const {
    return edge_props_[pos];
  }
  /// All properties of vertex `v`.
  const std::vector<std::pair<LabelId, IntervalMap<PropValue>>>&
  VertexProperties(VertexIdx v) const {
    return vertex_props_[v];
  }

  /// The graph horizon T: snapshots are the time-points [0, T). Open-ended
  /// entity lifespans are interpreted as reaching the horizon.
  TimePoint horizon() const { return horizon_; }

  /// Clips an entity lifespan to the finite horizon window [0, T).
  Interval ClipToHorizon(const Interval& i) const {
    return i.Intersect(Interval(0, horizon_));
  }

  /// Rough in-memory footprint in bytes of this interval-graph
  /// representation (used by the Fig. 6a footprint benchmark).
  size_t MemoryFootprintBytes() const;

 private:
  friend class TemporalGraphBuilder;

  static const IntervalMap<PropValue>* FindProp(
      const std::vector<std::pair<LabelId, IntervalMap<PropValue>>>& props,
      LabelId label) {
    for (const auto& [l, map] : props) {
      if (l == label) return &map;
    }
    return nullptr;
  }

  std::vector<VertexId> vertex_ids_;
  std::vector<Interval> vertex_intervals_;
  std::unordered_map<VertexId, VertexIdx> vid_to_idx_;

  std::vector<uint32_t> out_offsets_;  // size num_vertices + 1
  std::vector<StoredEdge> edges_;      // grouped by src
  std::vector<uint32_t> in_offsets_;   // size num_vertices + 1
  std::vector<EdgePos> in_positions_;  // positions into edges_

  std::vector<std::string> labels_;
  std::unordered_map<std::string, LabelId> label_to_id_;
  std::vector<std::vector<std::pair<LabelId, IntervalMap<PropValue>>>>
      vertex_props_;  // by VertexIdx
  std::vector<std::vector<std::pair<LabelId, IntervalMap<PropValue>>>>
      edge_props_;  // by EdgePos

  TimePoint horizon_ = 0;
};

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_TEMPORAL_GRAPH_H_
