#include "graph/transformed_graph.h"

#include <algorithm>

namespace graphite {

namespace {

// Per-edge lookup of travel time / cost at a departure time-point.
struct EdgeWeights {
  const IntervalMap<PropValue>* time_map = nullptr;
  const IntervalMap<PropValue>* cost_map = nullptr;
  TimePoint forced_travel_time = -1;

  TimePoint TravelTime(TimePoint t) const {
    if (forced_travel_time >= 0) return forced_travel_time;
    if (time_map == nullptr) return 1;
    auto v = time_map->Get(t);
    return v ? static_cast<TimePoint>(*v) : 1;
  }
  PropValue Cost(TimePoint t) const {
    if (cost_map == nullptr) return 1;
    auto v = cost_map->Get(t);
    return v ? *v : 1;
  }
};

std::vector<EdgeWeights> ResolveWeights(const TemporalGraph& g,
                                        const TransformOptions& options) {
  std::vector<EdgeWeights> weights(g.num_edges());
  auto time_label = g.LabelIdOf(options.travel_time_label);
  auto cost_label = g.LabelIdOf(options.travel_cost_label);
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    if (time_label) weights[pos].time_map = g.EdgeProperty(pos, *time_label);
    if (cost_label) weights[pos].cost_map = g.EdgeProperty(pos, *cost_label);
    weights[pos].forced_travel_time = options.forced_travel_time;
  }
  return weights;
}

// Enumerates, per vertex, the sorted distinct replica time-points: every
// departure time of an out-edge plus every feasible arrival time of an
// in-edge (paper: "vertex replicas, one for the number of incoming and
// outgoing edges at distinct time-points").
std::vector<std::vector<TimePoint>> CollectReplicaTimes(
    const TemporalGraph& g, const std::vector<EdgeWeights>& weights) {
  std::vector<std::vector<TimePoint>> times(g.num_vertices());
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    const Interval window = g.ClipToHorizon(e.interval);
    const Interval& dst_span = g.vertex_interval(e.dst);
    for (TimePoint t = window.start; t < window.end; ++t) {
      times[e.src].push_back(t);
      const TimePoint arrival = t + weights[pos].TravelTime(t);
      if (dst_span.Contains(arrival)) times[e.dst].push_back(arrival);
    }
  }
  for (auto& tv : times) {
    std::sort(tv.begin(), tv.end());
    tv.erase(std::unique(tv.begin(), tv.end()), tv.end());
  }
  return times;
}

}  // namespace

ReplicaIdx TransformedGraph::ReplicaAt(VertexIdx v, TimePoint t) const {
  auto replicas = ReplicasOf(v);
  auto it = std::lower_bound(replicas.begin(), replicas.end(), t,
                             [this](ReplicaIdx r, TimePoint tp) {
                               return replica_time_[r] < tp;
                             });
  if (it == replicas.end() || replica_time_[*it] != t) return kInvalidReplica;
  return *it;
}

ReplicaIdx TransformedGraph::FirstReplicaAtOrAfter(VertexIdx v,
                                                   TimePoint t) const {
  auto replicas = ReplicasOf(v);
  auto it = std::lower_bound(replicas.begin(), replicas.end(), t,
                             [this](ReplicaIdx r, TimePoint tp) {
                               return replica_time_[r] < tp;
                             });
  return it == replicas.end() ? kInvalidReplica : *it;
}

ReplicaIdx TransformedGraph::LastReplicaAtOrBefore(VertexIdx v,
                                                   TimePoint t) const {
  auto replicas = ReplicasOf(v);
  auto it = std::upper_bound(replicas.begin(), replicas.end(), t,
                             [this](TimePoint tp, ReplicaIdx r) {
                               return tp < replica_time_[r];
                             });
  if (it == replicas.begin()) return kInvalidReplica;
  return *(it - 1);
}

size_t TransformedGraph::MemoryFootprintBytes() const {
  return replica_vertex_.size() * sizeof(VertexIdx) +
         replica_time_.size() * sizeof(TimePoint) +
         offsets_.size() * sizeof(uint32_t) +
         edges_.size() * sizeof(TransitEdge) +
         vertex_offsets_.size() * sizeof(uint32_t) +
         replicas_by_vertex_.size() * sizeof(ReplicaIdx);
}

TransformedGraph BuildTransformedGraph(const TemporalGraph& g,
                                       const TransformOptions& options) {
  TransformedGraph tg;
  const std::vector<EdgeWeights> weights = ResolveWeights(g, options);
  const std::vector<std::vector<TimePoint>> times =
      CollectReplicaTimes(g, weights);

  // Assign replica indices, grouped by vertex in time order.
  tg.vertex_offsets_.assign(g.num_vertices() + 1, 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    tg.vertex_offsets_[v + 1] =
        tg.vertex_offsets_[v] + static_cast<uint32_t>(times[v].size());
  }
  const size_t num_replicas = tg.vertex_offsets_.back();
  tg.replica_vertex_.reserve(num_replicas);
  tg.replica_time_.reserve(num_replicas);
  tg.replicas_by_vertex_.reserve(num_replicas);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (TimePoint t : times[v]) {
      tg.replicas_by_vertex_.push_back(
          static_cast<ReplicaIdx>(tg.replica_vertex_.size()));
      tg.replica_vertex_.push_back(v);
      tg.replica_time_.push_back(t);
    }
  }

  // Degree pass: chain edges between consecutive replicas of one vertex,
  // transit edges per feasible departure.
  std::vector<uint32_t> degree(num_replicas, 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (size_t k = 1; k < times[v].size(); ++k) {
      ++degree[tg.vertex_offsets_[v] + k - 1];
    }
  }
  auto for_each_transit = [&](auto&& fn) {
    for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
      const StoredEdge& e = g.edge(pos);
      const Interval window = g.ClipToHorizon(e.interval);
      const Interval& dst_span = g.vertex_interval(e.dst);
      for (TimePoint t = window.start; t < window.end; ++t) {
        const TimePoint tt = weights[pos].TravelTime(t);
        const TimePoint arrival = t + tt;
        if (!dst_span.Contains(arrival)) continue;
        const ReplicaIdx src = tg.ReplicaAt(e.src, t);
        const ReplicaIdx dst = tg.ReplicaAt(e.dst, arrival);
        GRAPHITE_CHECK(src != kInvalidReplica && dst != kInvalidReplica);
        fn(src, dst, weights[pos].Cost(t), tt);
      }
    }
  };
  for_each_transit([&](ReplicaIdx src, ReplicaIdx, PropValue, TimePoint) {
    ++degree[src];
  });

  tg.offsets_.assign(num_replicas + 1, 0);
  for (size_t r = 0; r < num_replicas; ++r) {
    tg.offsets_[r + 1] = tg.offsets_[r] + degree[r];
  }
  tg.edges_.resize(tg.offsets_.back());
  std::vector<uint32_t> cursor(tg.offsets_.begin(), tg.offsets_.end() - 1);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (size_t k = 1; k < times[v].size(); ++k) {
      const ReplicaIdx src =
          static_cast<ReplicaIdx>(tg.vertex_offsets_[v] + k - 1);
      const ReplicaIdx dst = static_cast<ReplicaIdx>(tg.vertex_offsets_[v] + k);
      tg.edges_[cursor[src]++] = {dst, /*cost=*/0, /*travel_time=*/0,
                                  /*is_chain=*/true};
      ++tg.num_chain_edges_;
    }
  }
  for_each_transit(
      [&](ReplicaIdx src, ReplicaIdx dst, PropValue cost, TimePoint tt) {
        tg.edges_[cursor[src]++] = {dst, cost, tt, /*is_chain=*/false};
      });
  return tg;
}

void CountTransformedGraph(const TemporalGraph& g,
                           const TransformOptions& options, size_t* replicas,
                           size_t* edges) {
  const std::vector<EdgeWeights> weights = ResolveWeights(g, options);
  const std::vector<std::vector<TimePoint>> times =
      CollectReplicaTimes(g, weights);
  size_t nr = 0, chain = 0;
  for (const auto& tv : times) {
    nr += tv.size();
    if (!tv.empty()) chain += tv.size() - 1;
  }
  size_t transit = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    const Interval window = g.ClipToHorizon(e.interval);
    const Interval& dst_span = g.vertex_interval(e.dst);
    for (TimePoint t = window.start; t < window.end; ++t) {
      if (dst_span.Contains(t + weights[pos].TravelTime(t))) ++transit;
    }
  }
  *replicas = nr;
  *edges = chain + transit;
}

}  // namespace graphite
