// Transformed (time-expanded) graph for the TGB baseline (paper §II-C,
// §VII-A3; Wu et al., "Path problems in temporal graphs", PVLDB 2014).
//
// Every interval vertex is unrolled into replicas, one per distinct
// time-point at which the vertex can be departed from or arrived at. Two
// kinds of non-temporal edges connect replicas:
//   * chain edges u@t -> u@t' between consecutive replicas of the same
//     vertex (waiting; these carry the "shared state between replicas" the
//     paper counts as extra messages/compute), and
//   * transit edges u@t -> v@(t + travel_time(t)) for each temporal edge
//     (u, v) active at departure time t, weighted with travel_cost(t).
// TD algorithms then run as plain VCM on this larger static graph.
#ifndef GRAPHITE_GRAPH_TRANSFORMED_GRAPH_H_
#define GRAPHITE_GRAPH_TRANSFORMED_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/temporal_graph.h"

namespace graphite {

/// Replica index in the transformed graph.
using ReplicaIdx = uint32_t;
inline constexpr ReplicaIdx kInvalidReplica = static_cast<ReplicaIdx>(-1);

struct TransformOptions {
  /// Edge property giving traversal duration; missing => unit travel time.
  std::string travel_time_label = "travel-time";
  /// Edge property giving traversal weight; missing => unit cost.
  std::string travel_cost_label = "travel-cost";
  /// When >= 0, overrides every travel time (the transformation is
  /// algorithm-specific: clustering algorithms expand with zero travel
  /// time so triangles connect same-time replicas).
  TimePoint forced_travel_time = -1;
};

class TransformedGraph {
 public:
  struct TransitEdge {
    ReplicaIdx dst = kInvalidReplica;
    PropValue cost = 0;        ///< travel cost (algorithm weight).
    TimePoint travel_time = 0; ///< duration of traversal; 0 for chain edges.
    bool is_chain = false;     ///< replica state-transfer edge.
  };

  size_t num_replicas() const { return replica_vertex_.size(); }
  size_t num_edges() const { return edges_.size(); }
  /// Number of chain (replica state-transfer) edges.
  size_t num_chain_edges() const { return num_chain_edges_; }

  /// Original vertex of a replica.
  VertexIdx replica_vertex(ReplicaIdx r) const { return replica_vertex_[r]; }
  /// Time-point a replica stands for.
  TimePoint replica_time(ReplicaIdx r) const { return replica_time_[r]; }

  /// Out-edges of a replica.
  std::span<const TransitEdge> OutEdges(ReplicaIdx r) const {
    return {edges_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

  /// Replica of vertex `v` at exactly time `t`; kInvalidReplica if none.
  ReplicaIdx ReplicaAt(VertexIdx v, TimePoint t) const;

  /// Earliest replica of `v` at time >= t; kInvalidReplica if none.
  ReplicaIdx FirstReplicaAtOrAfter(VertexIdx v, TimePoint t) const;

  /// Latest replica of `v` at time <= t; kInvalidReplica if none.
  ReplicaIdx LastReplicaAtOrBefore(VertexIdx v, TimePoint t) const;

  /// All replicas of a vertex, in increasing time order.
  std::span<const ReplicaIdx> ReplicasOf(VertexIdx v) const {
    return {replicas_by_vertex_.data() + vertex_offsets_[v],
            vertex_offsets_[v + 1] - vertex_offsets_[v]};
  }

  /// Rough in-memory footprint in bytes (Fig. 6a).
  size_t MemoryFootprintBytes() const;

 private:
  friend TransformedGraph BuildTransformedGraph(const TemporalGraph&,
                                                const TransformOptions&);

  std::vector<VertexIdx> replica_vertex_;   // by ReplicaIdx
  std::vector<TimePoint> replica_time_;     // by ReplicaIdx
  std::vector<uint32_t> offsets_;           // CSR, size num_replicas + 1
  std::vector<TransitEdge> edges_;
  std::vector<uint32_t> vertex_offsets_;    // size |V| + 1
  std::vector<ReplicaIdx> replicas_by_vertex_;
  size_t num_chain_edges_ = 0;
};

/// Unrolls `g` into its transformed graph. Time-points are clipped to the
/// graph horizon, matching the snapshot range the baselines see.
TransformedGraph BuildTransformedGraph(const TemporalGraph& g,
                                       const TransformOptions& options = {});

/// Counts replicas and edges of the transformed graph without materializing
/// it (Table 1 reporting for graphs whose expansion would not fit memory —
/// the paper's DNL cases).
void CountTransformedGraph(const TemporalGraph& g,
                           const TransformOptions& options, size_t* replicas,
                           size_t* edges);

}  // namespace graphite

#endif  // GRAPHITE_GRAPH_TRANSFORMED_GRAPH_H_
