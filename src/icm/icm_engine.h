// The Interval-centric Computing Model engine (paper §IV, §VI) — the
// GRAPHITE runtime. Executes user interval-compute and interval-scatter
// logic over a TemporalGraph in BSP supersteps:
//
//   superstep 0   Init() seeds one state covering each vertex lifespan and
//                 Compute runs once per vertex over that span with no
//                 messages (the paper's "compute is called on all vertices
//                 in superstep 1, with no messages and for the entire
//                 vertex lifespan").
//   superstep k   Only vertices that received messages are active. The
//                 time-warp operator aligns and groups the messages with
//                 the partitioned vertex states; Compute runs once per warp
//                 tuple. State updates repartition the state dynamically.
//                 Updated state entries are warped against the out-edges
//                 (refined at edge-property boundaries) and Scatter runs
//                 once per resulting slice, emitting interval messages.
//   halt          When a superstep sends no messages (all vertices
//                 implicitly vote to halt; messages reactivate them).
//
// Engineering optimizations from §VI, all semantics-preserving:
//   * inline warp combiner  — with Program::Combine, warp folds each
//     message group to one payload during the sweep, so Compute receives a
//     single message and the separate group-scan pass disappears;
//   * warp suppression      — when more than `suppression_threshold` of a
//     vertex's incoming messages are unit-length, the merge-based warp is
//     bypassed for a time-point-centric grouping (more Compute calls, no
//     warp overhead; result identical);
//   * interval messages     — wire format uses the varint interval codec
//     (unit-length / open-ended intervals carry one endpoint + flag).
//
// Program contract:
//   struct MyAlgorithm {
//     using State = ...;    // operator== required
//     using Message = ...;  // operator== and MessageTraits<> required
//     State Init(VertexIdx v) const;
//     void Compute(IcmVertexContext<MyAlgorithm>& ctx,
//                  std::span<const Message> msgs);
//     void Scatter(IcmScatterContext<MyAlgorithm>& ctx, const State& s);
//     // Optional commutative+associative combiner:
//     // static Message Combine(const Message&, const Message&);
//   };
#ifndef GRAPHITE_ICM_ICM_ENGINE_H_
#define GRAPHITE_ICM_ICM_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "ckpt/fault_injector.h"
#include "engine/delivery.h"
#include "engine/message_traits.h"
#include "engine/metrics.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "graph/temporal_graph.h"
#include "icm/message.h"
#include "icm/warp.h"
#include "util/serde.h"
#include "util/timer.h"

namespace graphite {

struct IcmOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// Scheduling of OS threads over logical workers when use_threads is
  /// set: persistent pool with work stealing by default. Results are
  /// byte-identical in every mode (see engine/parallel.h).
  RuntimeOptions runtime;
  /// Run Compute on every vertex every superstep (fixed-iteration
  /// algorithms like PageRank); terminate at max_supersteps.
  bool always_active = false;
  int max_supersteps = std::numeric_limits<int>::max();
  /// §VI inline warp combiner (no-op unless the Program defines Combine).
  bool enable_combiner = true;
  /// §VI warp suppression for unit-lifespan-dominated inboxes.
  bool enable_suppression = true;
  /// Fraction of unit-length messages above which warp is suppressed
  /// (paper default 70%).
  double suppression_threshold = 0.7;
  /// Vertex->worker placement policy (graph/partitioner.h): the paper's
  /// hash partitioner by default, or any strategy/explicit map.
  Placement placement;
  /// Legacy explicit vertex->worker assignment (indexed by VertexIdx,
  /// values in [0, num_workers)); when non-null it overrides `placement`.
  /// Prefer Placement::Explicit / graph/partition_strategies.h.
  const std::vector<int>* custom_partition = nullptr;
};

template <typename P>
concept IcmHasCombiner = requires(const typename P::Message& a,
                                  const typename P::Message& b) {
  { P::Combine(a, b) } -> std::convertible_to<typename P::Message>;
};

/// Programs that never read edge properties (the TI algorithms; paper
/// §VII-A1: "the former do not use any properties") declare
/// `static constexpr bool kUsesEdgeProperties = false;` — the pre-scatter
/// warp then skips splitting slices at property boundaries, which both
/// avoids the refinement cost and sends fewer, longer interval messages.
template <typename P>
concept IcmDeclaresPropertyUse = requires {
  { P::kUsesEdgeProperties } -> std::convertible_to<bool>;
};

template <typename P>
constexpr bool IcmUsesEdgeProperties() {
  if constexpr (IcmDeclaresPropertyUse<P>) {
    return P::kUsesEdgeProperties;
  } else {
    return true;  // Conservative default: refine at property boundaries.
  }
}

template <typename Program>
class IcmEngine;

/// Context passed to Program::Compute for one warp tuple: the active
/// sub-interval, the prior state over it, and vertex/graph accessors.
/// SetState() updates (and dynamically repartitions) the vertex state; the
/// written interval must lie within the tuple interval.
template <typename Program>
class IcmVertexContext {
 public:
  using State = typename Program::State;

  VertexIdx vertex() const { return vertex_; }
  VertexId vertex_id() const { return graph_->vertex_id(vertex_); }
  /// The active sub-interval this Compute call covers (tau_i).
  const Interval& interval() const { return interval_; }
  /// The vertex state inherited over interval() from the prior superstep.
  const State& state() const { return *state_; }
  /// Vertex lifespan (static interval from the temporal graph).
  const Interval& vertex_interval() const {
    return graph_->vertex_interval(vertex_);
  }
  int superstep() const { return superstep_; }
  const TemporalGraph& graph() const { return *graph_; }

  /// Updates the state over `iv` (must be contained in interval()) to
  /// `value`. Triggers dynamic repartitioning and marks the interval for
  /// the scatter phase.
  void SetState(const Interval& iv, const State& value) {
    GRAPHITE_CHECK(iv.IsValid() && iv.ContainedIn(interval_));
    states_->Set(iv, value);
    updated_->Set(iv, value);
  }

 private:
  friend class IcmEngine<Program>;
  VertexIdx vertex_ = 0;
  Interval interval_;
  const State* state_ = nullptr;
  int superstep_ = 0;
  const TemporalGraph* graph_ = nullptr;
  IntervalMap<State>* states_ = nullptr;
  IntervalMap<State>* updated_ = nullptr;
};

/// Context passed to Program::Scatter for one out-edge slice: the edge, the
/// sub-interval tau'_k (updated-state x edge-lifespan x property-boundary
/// refined), and Send().
template <typename Program>
class IcmScatterContext {
 public:
  using Message = typename Program::Message;

  const StoredEdge& edge() const { return *edge_; }
  EdgePos edge_pos() const { return edge_pos_; }
  /// The scatter slice tau'_k. Edge properties are constant over it.
  const Interval& interval() const { return interval_; }
  int superstep() const { return superstep_; }
  const TemporalGraph& graph() const { return *graph_; }

  /// Edge property value over this slice (properties are constant within a
  /// slice by construction); nullopt if absent here.
  std::optional<PropValue> EdgeProp(LabelId label) const {
    const IntervalMap<PropValue>* map = graph_->EdgeProperty(edge_pos_, label);
    if (map == nullptr) return std::nullopt;
    return map->Get(interval_.start);
  }

  /// Sends `msg` valid over `iv` to the edge's sink vertex. An empty
  /// interval means "valid nowhere" and is dropped without counting.
  void Send(const Interval& iv, const Message& msg) {
    if (iv.IsEmpty()) return;
    Writer& w = (*wire_row_)[(*worker_of_)[edge_->dst]];
    w.WriteU64(edge_->dst);
    WriteInterval(w, iv);
    MessageTraits<Message>::Write(w, msg);
    ++*messages_sent_;
  }

  /// Sends `msg` inheriting the scatter slice as its validity (tau_m =
  /// tau'_k), the paper's default when scatter omits the interval.
  void SendInherit(const Message& msg) { Send(interval_, msg); }

 private:
  friend class IcmEngine<Program>;
  const StoredEdge* edge_ = nullptr;
  EdgePos edge_pos_ = 0;
  Interval interval_;
  int superstep_ = 0;
  const TemporalGraph* graph_ = nullptr;
  std::vector<Writer>* wire_row_ = nullptr;  ///< src worker's per-dst buffers
  const std::vector<int>* worker_of_ = nullptr;
  int64_t* messages_sent_ = nullptr;
};

/// Outcome of an ICM run: metrics plus the final partitioned states.
template <typename Program>
struct IcmResult {
  RunMetrics metrics;
  std::vector<IntervalMap<typename Program::State>> states;  // lint:allow(vector: per-run vertex state, lives across supersteps)
  /// Compute calls that had messages or updated state ("interval vertex
  /// visits" in the paper's intro example).
  int64_t active_compute_calls = 0;
  /// (vertex, superstep) pairs where warp was suppressed.
  int64_t suppressed_vertices = 0;
};

template <typename Program>
class IcmEngine {
 public:
  using State = typename Program::State;
  using Message = typename Program::Message;
  using StateEntry = typename IntervalMap<State>::Entry;
  using Item = TemporalItem<Message>;

  /// `recovery` connects the run to the checkpoint subsystem (ckpt/):
  /// checkpoints are written where options.runtime.checkpoint says, into
  /// recovery.store; with recovery.resume the run restarts from the
  /// newest valid checkpoint (or recovery.resume_from). Requires
  /// MessageTraits for State as well as Message when used.
  static IcmResult<Program> Run(const TemporalGraph& g, Program& program,
                                const IcmOptions& options = {},
                                const RecoveryContext& recovery = {}) {
    IcmEngine engine(g, program, options, recovery);
    return engine.Execute();
  }

 private:
  IcmEngine(const TemporalGraph& g, Program& program, const IcmOptions& options,
            const RecoveryContext& recovery)
      : g_(g), program_(program), options_(options), recovery_(recovery) {}

  IcmResult<Program> Execute() {
    const size_t n = g_.num_vertices();
    const int num_workers = options_.num_workers;
    GRAPHITE_CHECK(num_workers >= 1);

    // Delivery plane (engine/delivery.h): materializes the placement
    // policy, owns the flat inboxes / mail tracking / messaging loop, and
    // routes wire rows through the run's transport backend.
    const Placement placement =
        options_.custom_partition != nullptr
            ? Placement::Explicit(options_.custom_partition)
            : options_.placement;
    DeliveryPlane<Item> plane(WorkerMap(
        n, num_workers, placement,
        [this](uint32_t v) { return g_.vertex_id(v); }));
    plane.set_frontier_density(options_.runtime.frontier_density);

    IcmResult<Program> result;
    auto& states = result.states;
    states.resize(n);
    for (VertexIdx v = 0; v < n; ++v) {
      states[v] = IntervalMap<State>(g_.vertex_interval(v), program_.Init(v));
    }

    // The pool (if any) lives here: created once, reused every superstep.
    SuperstepRuntime rt(num_workers, options_.use_threads, options_.runtime,
                        plane.map().worker_sizes());
    plane.Bind(&rt);
    const std::unique_ptr<Transport> transport =
        MakeTransport(options_.runtime.transport, num_workers);
    const int num_chunks = rt.num_chunks();

    // Wire buffers, indexed [chunk][dst_worker]. Chunks split each logical
    // worker's vertex list contiguously, so reading a destination column
    // in (src worker, chunk) order yields exactly the bytes sequential
    // mode produces. Buffers are reused across supersteps (Clear keeps
    // capacity).
    std::vector<std::vector<Writer>> wire(num_chunks);  // lint:allow(vector: per-run wire matrix; Writer::Clear reuses capacity)
    for (auto& row : wire) row.resize(num_workers);
    std::vector<int> row_src(num_chunks);  // lint:allow(vector: per-run chunk map, sized once)
    for (int c = 0; c < num_chunks; ++c) row_src[c] = rt.chunk(c).worker;
    // Per-OS-thread scratch and per-chunk counters/timings, hoisted out of
    // the superstep loop.
    std::vector<WorkerScratch> scratch(rt.num_threads());  // lint:allow(vector: per-thread scratch, amortized across supersteps)
    std::vector<WorkerCounters> counters(num_chunks);  // lint:allow(vector: per-run counters, sized once)
    std::vector<int64_t> chunk_ns(num_chunks, 0);  // lint:allow(vector: per-run timings, sized once)

    // Recovery (ckpt/): restore the exact input of a checkpointed
    // superstep — states, mail flags, undelivered inboxes and the carried
    // cumulative counters — then enter the loop at that superstep.
    int start_superstep = 0;
    CheckpointStore* store = recovery_.store;
    if constexpr (kCheckpointable) {
      if (store != nullptr && recovery_.resume) {
        Result<CheckpointBlob> blob =
            recovery_.resume_from >= 0 ? store->Load(recovery_.resume_from)
                                       : store->LoadLatestValid();
        // No valid checkpoint (first run, or all copies corrupt): cold
        // start — resume-always callers need no special first-run path.
        if (blob.ok()) {
          Result<CheckpointFrame> frame = DecodeFrame(blob.value().payload);
          GRAPHITE_CHECK(frame.ok());
          const CheckpointFrame& f = frame.value();
          GRAPHITE_CHECK(f.num_units == n);
          GRAPHITE_CHECK(static_cast<int>(f.sections.size()) == num_workers);
          // Sections cover disjoint owned-vertex sets: decode in parallel.
          // Each lane Delivers into its own worker's inbox (rebuilding the
          // mailed list in section order, which is owner order) and Seals.
          std::vector<int64_t> unused_ns;  // lint:allow(vector: recovery decode only, not superstep-rate)
          rt.ParallelFor(num_workers, &unused_ns, [&](int w, int) {
            DecodeSection(f.sections[w], &states, w, &plane);
            plane.Seal(w);
          });
          start_superstep = f.superstep;
          result.metrics.resumed_from = f.superstep;
          result.metrics.supersteps = f.counters.supersteps;
          result.metrics.compute_calls = f.counters.compute_calls;
          result.metrics.scatter_calls = f.counters.scatter_calls;
          result.metrics.messages = f.counters.messages;
          result.metrics.message_bytes = f.counters.message_bytes;
          result.active_compute_calls = f.counters.active_compute_calls;
          result.suppressed_vertices = f.counters.suppressed_vertices;
        }
      }
    } else {
      // Programs without wire traits for State can run, but cannot
      // checkpoint or resume.
      GRAPHITE_CHECK(store == nullptr && !recovery_.resume);
    }

    std::atomic<bool> killed{false};
    const int64_t run_start = NowNanos();
    [[maybe_unused]] int64_t last_checkpoint_t = run_start;
    for (int superstep = start_superstep; superstep < options_.max_supersteps;
         ++superstep) {
      SuperstepMetrics ss;
      ss.worker_compute_ns.assign(num_workers, 0);
      ss.worker_in_bytes.assign(num_workers, 0);
      ss.worker_compute_calls.assign(num_workers, 0);
      std::fill(counters.begin(), counters.end(), WorkerCounters{});

      ss.steals = rt.ComputePhase(
          &ss.thread_compute_ns,
          [&](int c, const WorkChunk& chunk, int thread) {
            if (killed.load(std::memory_order_relaxed)) return;
            if (recovery_.fault != nullptr &&
                recovery_.fault->Fire(superstep, chunk.worker)) {
              killed.store(true, std::memory_order_relaxed);
              return;
            }
            const int64_t t0 = NowNanos();
            const std::vector<VertexIdx>& mine =
                plane.map().units_of(chunk.worker);
            const auto process = [&](VertexIdx v) {
              ProcessVertex(v, superstep, plane.map().worker_of(),
                            plane.MessagesFor(chunk.worker, v), &states[v],
                            &wire[c], &counters[c], &scratch[thread]);
              // (wire[c] is this chunk's per-destination buffer row.)
            };
            const bool every_vertex = superstep == 0 || options_.always_active;
            if (every_vertex || plane.FrontierIsDense(chunk.worker)) {
              // Dense activation scan: all owned vertices (superstep 0 /
              // always-active) or a mail-flag sweep when the frontier
              // exceeded the density threshold. The next owned vertex's
              // inbox span is prefetched behind the current warp.
              for (size_t i = chunk.begin; i < chunk.end; ++i) {
                const VertexIdx v = mine[i];
                if (!every_vertex && !plane.HasMail(v)) continue;
                if (i + 1 < chunk.end) {
                  plane.Prefetch(chunk.worker, mine[i + 1]);
                }
                process(v);
              }
            } else {
              // Frontier path: the plane's sorted mailed-vertex list
              // sliced to this chunk's unit range — exactly the vertices
              // the dense scan would find active, in the same order, with
              // the next frontier unit's inbox span prefetched behind the
              // current warp.
              const uint32_t lo = mine[chunk.begin];
              const uint32_t hi =
                  chunk.end < mine.size()
                      ? mine[chunk.end]
                      : std::numeric_limits<uint32_t>::max();
              const std::span<const uint32_t> fs =
                  plane.FrontierSlice(chunk.worker, lo, hi);
              for (size_t i = 0; i < fs.size(); ++i) {
                if (i + 1 < fs.size()) {
                  plane.Prefetch(chunk.worker, fs[i + 1]);
                }
                process(fs[i]);
              }
            }
            chunk_ns[c] = NowNanos() - t0;
          });
      if (killed.load(std::memory_order_relaxed)) {
        // Simulated crash (ckpt/fault_injector.h): return exactly as a
        // dead process would look to a restarting one — nothing from the
        // killed superstep is accumulated, checkpointed or trusted. The
        // caller discards this result and re-runs with resume set.
        result.metrics.interrupted = true;
        result.metrics.makespan_ns = NowNanos() - run_start;
        return result;
      }
      for (int c = 0; c < num_chunks; ++c) {
        const int w = rt.chunk(c).worker;
        ss.worker_compute_ns[w] += chunk_ns[c];
        ss.worker_compute_calls[w] += counters[c].compute_calls;
        ss.compute_calls += counters[c].compute_calls;
        ss.scatter_calls += counters[c].scatter_calls;
        ss.messages += counters[c].messages;
        ss.warp_slices += counters[c].warp.slices;
        ss.warp_merge_hits += counters[c].warp.merge_hits;
        result.active_compute_calls += counters[c].active_compute_calls;
        result.suppressed_vertices += counters[c].suppressed_vertices;
      }

      // Barrier: drop the consumed flat inboxes (spans for exactly the
      // mailed vertices — no O(n) scan) and reset every superstep arena.
      // This is the ONLY point where arenas reset (see DESIGN.md §4f):
      // compute has consumed the inboxes, and messaging below refills them
      // for superstep+1, so a checkpoint encoded after messaging may still
      // reference arena-backed storage.
      const int64_t barrier_t = NowNanos();
      plane.Barrier();
      for (WorkerScratch& s : scratch) s.ResetAtBarrier();
      ss.barrier_ns = NowNanos() - barrier_t;

      // Messaging phase: the plane carries every wire row through the
      // transport and each destination lane decodes its own frames — the
      // decode lambda is the whole per-message wire format.
      const int64_t msg_t = NowNanos();
      const bool any_message = plane.Route(
          *transport, std::span<std::vector<Writer>>(wire), row_src, &ss,
          [&plane](Reader& reader, int dst) {
            const uint32_t unit = static_cast<uint32_t>(reader.ReadU64());
            Interval iv = ReadInterval(reader);
            Message msg = MessageTraits<Message>::Read(reader);
            plane.Deliver(dst, unit, {iv, std::move(msg)});
          });
      ss.messaging_ns = NowNanos() - msg_t;
      // The mailed lists now hold superstep+1's activation set (sealed by
      // Route above); record its size before the barrier clears it.
      plane.CountFrontier(&ss.frontier_units, &ss.frontier_dense_workers);

      result.metrics.Accumulate(ss);
      const bool halting = !any_message && !options_.always_active;
      if constexpr (kCheckpointable) {
        // Barrier checkpoint: the messaging phase has delivered the
        // inboxes of superstep+1, so the frame captures exactly that
        // superstep's input. The final barrier is never checkpointed —
        // there is nothing left to resume.
        if (store != nullptr && !halting &&
            superstep + 1 < options_.max_supersteps &&
            options_.runtime.checkpoint.ShouldCheckpoint(
                superstep, NowNanos() - last_checkpoint_t)) {
          const int64_t ckpt_t0 = NowNanos();
          CheckpointFrame frame;
          frame.superstep = superstep + 1;
          frame.num_units = n;
          frame.counters = {result.metrics.supersteps,
                            result.metrics.compute_calls,
                            result.metrics.scatter_calls,
                            result.metrics.messages,
                            result.metrics.message_bytes,
                            result.active_compute_calls,
                            result.suppressed_vertices};
          frame.sections.resize(num_workers);
          // Sections cover disjoint owned-vertex sets: encode in parallel
          // on the run's pool.
          std::vector<int64_t> unused_ns;  // lint:allow(vector: checkpoint barrier only, not superstep-rate)
          rt.ParallelFor(num_workers, &unused_ns, [&](int w, int) {
            frame.sections[w] = EncodeSection(w, states, plane);
          });
          const Status committed =
              store->Commit(frame.superstep, EncodeFrame(frame));
          GRAPHITE_CHECK(committed.ok());
          last_checkpoint_t = NowNanos();
          SuperstepMetrics& back = result.metrics.per_superstep.back();
          back.checkpoint_ns = last_checkpoint_t - ckpt_t0;
          back.checkpoint_bytes = store->last_commit_bytes();
          ++result.metrics.checkpoints;
          result.metrics.checkpoint_ns += back.checkpoint_ns;
          result.metrics.checkpoint_bytes += back.checkpoint_bytes;
        }
      }
      if (halting) break;
    }
    result.metrics.makespan_ns = NowNanos() - run_start;
    return result;
  }

  /// Checkpointing needs both the State and the Message on the wire (see
  /// ckpt/checkpoint.h); programs without traits for either simply cannot
  /// use a CheckpointStore.
  static constexpr bool kCheckpointable =
      HasWireTraits<State> && HasWireTraits<Message>;

  /// One logical worker's slice of a checkpoint frame: per owned vertex,
  /// the mail flag, the partitioned interval states, and the undelivered
  /// inbox for the next superstep — all read through the delivery plane.
  std::string EncodeSection(int worker,
                            const std::vector<IntervalMap<State>>& states,
                            const DeliveryPlane<Item>& plane) const {
    Writer w;
    for (const VertexIdx v : plane.map().units_of(worker)) {
      w.WriteU64(v);
      w.WriteByte(plane.MailFlag(v));
      w.WriteU64(states[v].size());
      for (const StateEntry& e : states[v].entries()) {
        WriteInterval(w, e.interval);
        MessageTraits<State>::Write(w, e.value);
      }
      w.WriteU64(plane.InboxCountFor(worker, v));
      for (const Item& m : plane.MessagesFor(worker, v)) {
        WriteInterval(w, m.interval);
        MessageTraits<Message>::Write(w, m.value);
      }
    }
    return w.Release();
  }

  /// Inverse of EncodeSection. The store's CRC already vouched for the
  /// bytes, so reads are the fast aborting kind. States are adopted
  /// verbatim (FromEntries) — rebuilding via Set() would both be quadratic
  /// and risk a different (coalesced) partition than the one persisted.
  /// Messages are restored through plane->Deliver in section order (owner
  /// order), which rebuilds the mail flags and mailed list exactly as the
  /// encoding run had them; the caller Seals worker's inbox after.
  void DecodeSection(const std::string& bytes,
                     std::vector<IntervalMap<State>>* states, int worker,
                     DeliveryPlane<Item>* plane) const {
    Reader r(bytes);
    while (!r.AtEnd()) {
      const VertexIdx v = static_cast<VertexIdx>(r.ReadU64());
      GRAPHITE_CHECK(v < states->size());
      const uint8_t mail_flag = r.ReadByte();
      const uint64_t num_entries = r.ReadU64();
      std::vector<StateEntry> entries;  // lint:allow(vector: recovery decode only, not superstep-rate)
      entries.reserve(num_entries);
      for (uint64_t i = 0; i < num_entries; ++i) {
        const Interval iv = ReadInterval(r);
        entries.push_back({iv, MessageTraits<State>::Read(r)});
      }
      (*states)[v] = IntervalMap<State>::FromEntries(std::move(entries));
      const uint64_t num_msgs = r.ReadU64();
      // The flag is derivable (set iff the vertex holds messages); keep
      // it on the wire for format stability and verify it here.
      GRAPHITE_CHECK((mail_flag != 0) == (num_msgs > 0));
      for (uint64_t i = 0; i < num_msgs; ++i) {
        const Interval iv = ReadInterval(r);
        plane->Deliver(worker, v, {iv, MessageTraits<Message>::Read(r)});
      }
    }
  }

  struct WorkerCounters {
    int64_t compute_calls = 0;
    int64_t scatter_calls = 0;
    int64_t messages = 0;
    int64_t active_compute_calls = 0;
    int64_t suppressed_vertices = 0;
    WarpStats warp;  ///< Untimed two-pass kernel counters for this chunk.
  };

  // Reused per-OS-thread buffers: no per-vertex allocation churn, and the
  // warp sweep state + SoA output live in a per-thread arena (per-worker
  // arenas cannot back these — two chunks of one logical worker may run
  // on different threads under stealing). The arena resets at superstep
  // barriers only, like the inbox arenas.
  struct WorkerScratch {
    WorkerScratch() {
      warp_scratch.Attach(&arena);
      warp.Attach(&arena);
      warp_combined.Attach(&arena);
    }
    void ResetAtBarrier() {
      warp_scratch.Release();
      warp.Release();
      warp_combined.Release();
      arena.Reset();
    }

    Arena arena;                          // backs the warp members below
    WarpScratch warp_scratch;             // sweep events / live set
    WarpOutput warp;                      // flat SoA warp tuples
    SuperstepVec<CombinedWarpTuple<Message>> warp_combined;
    std::vector<StateEntry> outer;        // state snapshot for warp  // lint:allow(vector: amortized scratch; capacity survives supersteps)
    std::vector<Message> group;           // materialized message group  // lint:allow(vector: amortized scratch; capacity survives supersteps)
    IntervalMap<State> updated;           // intervals written by SetState
    std::vector<TimePoint> boundaries;    // property-refinement points  // lint:allow(vector: amortized scratch; capacity survives supersteps)
    std::vector<uint32_t> order;          // suppression grouping order  // lint:allow(vector: amortized scratch; capacity survives supersteps)
  };

  void ProcessVertex(VertexIdx v, int superstep,
                     const std::vector<int>& worker_of,
                     std::span<const Item> msgs, IntervalMap<State>* states,
                     std::vector<Writer>* wire_row, WorkerCounters* counters,
                     WorkerScratch* scratch) {
    scratch->updated.clear();

    IcmVertexContext<Program> ctx;
    ctx.vertex_ = v;
    ctx.superstep_ = superstep;
    ctx.graph_ = &g_;
    ctx.states_ = states;
    ctx.updated_ = &scratch->updated;

    if (msgs.empty()) {
      // Superstep 0 / always-active with no mail: one call per state entry.
      scratch->outer.assign(states->entries().begin(),
                            states->entries().end());
      for (const StateEntry& entry : scratch->outer) {
        ctx.interval_ = entry.interval;
        ctx.state_ = &entry.value;
        program_.Compute(ctx, std::span<const Message>());
        ++counters->compute_calls;
        if (!scratch->updated.empty()) ++counters->active_compute_calls;
      }
    } else {
      const bool suppress =
          options_.enable_suppression && ShouldSuppress(msgs);
      if (suppress) {
        ++counters->suppressed_vertices;
        ComputeSuppressed(&ctx, msgs, states, counters, scratch);
      } else {
        ComputeWarped(&ctx, msgs, states, counters, scratch);
      }
    }

    if (scratch->updated.empty()) return;
    // Keep the partition minimal: splitting states is semantically free
    // (§IV-A1), so merging equal adjacent values back is too, and it keeps
    // later warps linear in the number of *distinct* value runs.
    states->Coalesce();
    scratch->updated.Coalesce();
    ScatterPhase(v, superstep, worker_of, scratch->updated, wire_row, counters,
                 scratch);
  }

  bool ShouldSuppress(std::span<const Item> msgs) const {
    size_t unit = 0;
    for (const Item& m : msgs) {
      // Unbounded intervals cannot be expanded per time-point; their
      // presence forces the merge-based warp.
      if (m.interval.end == kTimeMax || m.interval.start == kTimeMin) {
        return false;
      }
      if (m.interval.IsUnit()) ++unit;
    }
    return static_cast<double>(unit) >
           options_.suppression_threshold * static_cast<double>(msgs.size());
  }

  // Normal path: time-warp the partitioned states with the inbox, then one
  // Compute per output tuple. With a combiner, each group is folded to a
  // single payload as the tuples are consumed.
  void ComputeWarped(IcmVertexContext<Program>* ctx, std::span<const Item> msgs,
                     IntervalMap<State>* states, WorkerCounters* counters,
                     WorkerScratch* scratch) {
    // Snapshot the partition: SetState during the loop repartitions the
    // live map, but warp tuples must see the prior superstep's states.
    scratch->outer.assign(states->entries().begin(), states->entries().end());
    const bool gap_fill = options_.always_active;

    // Fast path for the dominant single-message inbox: the warp of one
    // message is just its clip against each state slice (states are kept
    // coalesced, so adjacent slices differ and maximality holds).
    if (msgs.size() == 1 && !gap_fill) {
      const Item& only = msgs[0];
      for (const StateEntry& entry : scratch->outer) {
        const Interval slice = entry.interval.Intersect(only.interval);
        if (slice.IsEmpty()) continue;
        ctx->interval_ = slice;
        ctx->state_ = &entry.value;
        program_.Compute(*ctx, std::span<const Message>(&only.value, 1));
        ++counters->compute_calls;
        ++counters->active_compute_calls;
      }
      return;
    }

    auto run_compute = [&](const Interval& iv, const State& state,
                           std::span<const Message> group) {
      ctx->interval_ = iv;
      ctx->state_ = &state;
      const size_t updates_before = scratch->updated.size();
      program_.Compute(*ctx, group);
      ++counters->compute_calls;
      if (!group.empty() || scratch->updated.size() != updates_before) {
        ++counters->active_compute_calls;
      }
    };
    TimePoint cursor = scratch->outer.empty()
                           ? 0
                           : scratch->outer.front().interval.start;

    // Inline warp combiner (§VI): the sweep itself folds every message
    // group to one payload, so neither per-tuple index vectors nor a
    // separate group-scan pass exist.
    if constexpr (IcmHasCombiner<Program>) {
      if (options_.enable_combiner) {
        auto& tuples = scratch->warp_combined;
        TimeWarpCombineInto<State, Message>(
            std::span<const StateEntry>(scratch->outer), msgs,
            [](const Message& a, const Message& b) {
              return Program::Combine(a, b);
            },
            &scratch->warp_scratch, &tuples, &counters->warp);
        for (size_t i = 0; i < tuples.size(); ++i) {
          const CombinedWarpTuple<Message>& t = tuples[i];
          if (gap_fill && t.interval.start > cursor) {
            EmitGapCalls(Interval(cursor, t.interval.start), scratch,
                         run_compute);
          }
          run_compute(t.interval, scratch->outer[t.outer_index].value,
                      std::span<const Message>(&t.combined, 1));
          cursor = t.interval.end;
        }
        if (gap_fill && !scratch->outer.empty() &&
            cursor < scratch->outer.back().interval.end) {
          EmitGapCalls(Interval(cursor, scratch->outer.back().interval.end),
                       scratch, run_compute);
        }
        return;
      }
    }

    // Walk the tuples in temporal order; in always-active mode the
    // uncovered gaps between them get empty-group Compute calls. Output is
    // the flat SoA form: one shared index pool, (offset, count) per tuple.
    WarpOutput& warped = scratch->warp;
    TimeWarpInto<State, Message>(std::span<const StateEntry>(scratch->outer),
                                 msgs, &scratch->warp_scratch, &warped,
                                 &counters->warp);
    for (size_t i = 0; i < warped.size(); ++i) {
      const FlatWarpTuple& t = warped[i];
      if (gap_fill && t.interval.start > cursor) {
        EmitGapCalls(Interval(cursor, t.interval.start), scratch, run_compute);
      }
      scratch->group.clear();
      for (uint32_t idx : warped.group(t)) {
        scratch->group.push_back(msgs[idx].value);
      }
      run_compute(t.interval, scratch->outer[t.outer_index].value,
                  std::span<const Message>(scratch->group));
      cursor = t.interval.end;
    }
    if (gap_fill && !scratch->outer.empty() &&
        cursor < scratch->outer.back().interval.end) {
      EmitGapCalls(Interval(cursor, scratch->outer.back().interval.end),
                   scratch, run_compute);
    }
  }

  // Calls `run_compute` with an empty group for every prior-state slice in
  // `gap` (always-active mode only).
  template <typename RunFn>
  void EmitGapCalls(const Interval& gap, WorkerScratch* scratch,
                    RunFn&& run_compute) {
    for (const StateEntry& entry : scratch->outer) {
      const Interval slice = entry.interval.Intersect(gap);
      if (slice.IsValid()) {
        run_compute(slice, entry.value, std::span<const Message>());
      }
    }
  }

  // Suppressed path (§VI): the merge-based warp is bypassed and execution
  // "degenerates to a time-point centric execution model" — Compute runs
  // once per covered time-point with every message live there (plus the
  // always-active gap fill at unit granularity). This is warp output at
  // unit granularity, so any user logic stays exact; there are simply
  // more Compute calls, which the paper accepts in exchange for skipping
  // the warp's sort-merge on unit-dominated inboxes.
  void ComputeSuppressed(IcmVertexContext<Program>* ctx,
                         std::span<const Item> msgs,
                         IntervalMap<State>* states, WorkerCounters* counters,
                         WorkerScratch* scratch) {
    // Sort message indices by start; a sliding window then yields the live
    // set per time-point.
    scratch->order.resize(msgs.size());
    for (uint32_t i = 0; i < msgs.size(); ++i) scratch->order[i] = i;
    std::stable_sort(scratch->order.begin(), scratch->order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return msgs[a].interval.start < msgs[b].interval.start;
                     });
    scratch->outer.assign(states->entries().begin(), states->entries().end());

    // Covered time-points, bounded: ShouldSuppress rejects unbounded
    // message intervals.
    scratch->boundaries.clear();
    for (const Item& m : msgs) {
      const Interval clipped = m.interval.Intersect(states->Span());
      for (TimePoint t = clipped.start; t < clipped.end; ++t) {
        scratch->boundaries.push_back(t);
      }
    }
    std::sort(scratch->boundaries.begin(), scratch->boundaries.end());
    scratch->boundaries.erase(
        std::unique(scratch->boundaries.begin(), scratch->boundaries.end()),
        scratch->boundaries.end());

    size_t window_lo = 0;
    for (TimePoint t : scratch->boundaries) {
      // Prior state at t (from the pre-superstep snapshot).
      const StateEntry* state = nullptr;
      for (const StateEntry& entry : scratch->outer) {
        if (entry.interval.Contains(t)) {
          state = &entry;
          break;
        }
      }
      if (state == nullptr) continue;
      while (window_lo < scratch->order.size() &&
             msgs[scratch->order[window_lo]].interval.end <= t) {
        ++window_lo;
      }
      scratch->group.clear();
      for (size_t k = window_lo; k < scratch->order.size(); ++k) {
        const Item& m = msgs[scratch->order[k]];
        if (m.interval.start > t) break;
        if (m.interval.Contains(t)) scratch->group.push_back(m.value);
      }
      if (scratch->group.empty()) continue;
      if constexpr (IcmHasCombiner<Program>) {
        if (options_.enable_combiner && scratch->group.size() > 1) {
          Message folded = scratch->group[0];
          for (size_t k = 1; k < scratch->group.size(); ++k) {
            folded = Program::Combine(folded, scratch->group[k]);
          }
          scratch->group.clear();
          scratch->group.push_back(std::move(folded));
        }
      }
      ctx->interval_ = Interval(t, t + 1);
      ctx->state_ = &state->value;
      program_.Compute(*ctx, std::span<const Message>(scratch->group));
      ++counters->compute_calls;
      ++counters->active_compute_calls;
    }

    // Always-active gap fill: prior-state slices not covered by any
    // message still get their empty-group call (unit-exactness is not
    // needed there — state is constant across each uncovered slice).
    if (options_.always_active) {
      TimePoint cursor = scratch->outer.empty()
                             ? 0
                             : scratch->outer.front().interval.start;
      auto emit_gap = [&](const Interval& gap) {
        for (const StateEntry& entry : scratch->outer) {
          const Interval slice = entry.interval.Intersect(gap);
          if (!slice.IsValid()) continue;
          ctx->interval_ = slice;
          ctx->state_ = &entry.value;
          program_.Compute(*ctx, std::span<const Message>());
          ++counters->compute_calls;
        }
      };
      for (TimePoint t : scratch->boundaries) {
        if (t > cursor) emit_gap(Interval(cursor, t));
        cursor = t + 1;
      }
      if (!scratch->outer.empty() &&
          cursor < scratch->outer.back().interval.end) {
        emit_gap(Interval(cursor, scratch->outer.back().interval.end));
      }
    }
  }

  // Pre-scatter warp: each updated state entry is joined with each
  // out-edge lifespan, refined at the edge's property boundaries, and
  // Scatter runs once per slice (paper: "scatter is called once for each
  // overlapping interval of its out-edges having a distinct property").
  void ScatterPhase(VertexIdx v, int superstep,
                    const std::vector<int>& worker_of,
                    const IntervalMap<State>& updated,
                    std::vector<Writer>* wire_row, WorkerCounters* counters,
                    WorkerScratch* scratch) {
    auto edges = g_.OutEdges(v);
    for (size_t k = 0; k < edges.size(); ++k) {
      const StoredEdge& e = edges[k];
      const EdgePos pos = g_.OutEdgePos(v, k);

      IcmScatterContext<Program> sctx;
      sctx.edge_ = &e;
      sctx.edge_pos_ = pos;
      sctx.superstep_ = superstep;
      sctx.graph_ = &g_;
      sctx.wire_row_ = wire_row;
      sctx.worker_of_ = &worker_of;
      sctx.messages_sent_ = &counters->messages;

      updated.ForEachIntersecting(
          e.interval, [&](const Interval& overlap, const State& s) {
            if constexpr (!IcmUsesEdgeProperties<Program>()) {
              // Property-blind program: the whole overlap is one slice
              // ("a time-join suffices before scatter", §IV-B).
              sctx.interval_ = overlap;
              program_.Scatter(sctx, s);
              ++counters->scatter_calls;
              return;
            }
            RefineByProperties(pos, overlap, &scratch->boundaries);
            for (size_t b = 0; b + 1 < scratch->boundaries.size(); ++b) {
              sctx.interval_ =
                  Interval(scratch->boundaries[b], scratch->boundaries[b + 1]);
              program_.Scatter(sctx, s);
              ++counters->scatter_calls;
            }
          });
    }
  }

  // Splits `window` at every property-interval boundary of the edge.
  void RefineByProperties(EdgePos pos, const Interval& window,
                          std::vector<TimePoint>* boundaries) const {
    boundaries->clear();
    boundaries->push_back(window.start);
    boundaries->push_back(window.end);
    for (const auto& [label, map] : g_.EdgeProperties(pos)) {
      (void)label;
      map.ForEachIntersecting(window, [&](const Interval& iv, PropValue) {
        if (iv.start > window.start) boundaries->push_back(iv.start);
        if (iv.end < window.end) boundaries->push_back(iv.end);
      });
    }
    std::sort(boundaries->begin(), boundaries->end());
    boundaries->erase(std::unique(boundaries->begin(), boundaries->end()),
                      boundaries->end());
  }

  const TemporalGraph& g_;
  Program& program_;
  IcmOptions options_;
  RecoveryContext recovery_;
};

}  // namespace graphite

#endif  // GRAPHITE_ICM_ICM_ENGINE_H_
