// Interval-message wire format (paper §VI "Interval Messages"): every ICM
// message carries a time-interval. Since intervals dominate message size
// for small payloads, the codec writes variable-byte numbers and collapses
// unit-length intervals and intervals that span to +/-infinity to a single
// time-point plus a flag, saving the 8-byte second endpoint.
#ifndef GRAPHITE_ICM_MESSAGE_H_
#define GRAPHITE_ICM_MESSAGE_H_

#include "temporal/interval.h"
#include "util/serde.h"

namespace graphite {

namespace interval_codec {

// Wire flags. kGeneric carries both endpoints; the others carry one.
inline constexpr uint8_t kGeneric = 0;
inline constexpr uint8_t kUnit = 1;       // [t, t+1)
inline constexpr uint8_t kOpenEnd = 2;    // [t, +inf)
inline constexpr uint8_t kOpenStart = 3;  // [-inf, t)

}  // namespace interval_codec

/// Encodes `iv` compactly. The interval must be valid.
inline void WriteInterval(Writer& w, const Interval& iv) {
  GRAPHITE_CHECK(iv.IsValid());
  if (iv.IsUnit()) {
    w.WriteByte(interval_codec::kUnit);
    w.WriteI64(iv.start);
  } else if (iv.end == kTimeMax && iv.start != kTimeMin) {
    w.WriteByte(interval_codec::kOpenEnd);
    w.WriteI64(iv.start);
  } else if (iv.start == kTimeMin && iv.end != kTimeMax) {
    w.WriteByte(interval_codec::kOpenStart);
    w.WriteI64(iv.end);
  } else {
    w.WriteByte(interval_codec::kGeneric);
    // start may be kTimeMin (encode via flag value 1 in the length slot);
    // full [-inf, inf) is rare and encoded with explicit sentinels.
    w.WriteI64(iv.start == kTimeMin ? 0 : iv.start);
    w.WriteByte(iv.start == kTimeMin ? 1 : 0);
    w.WriteI64(iv.end == kTimeMax ? 0 : iv.end - (iv.start == kTimeMin ? 0 : iv.start));
    w.WriteByte(iv.end == kTimeMax ? 1 : 0);
  }
}

/// Decodes an interval written by WriteInterval.
inline Interval ReadInterval(Reader& r) {
  const uint8_t flag = r.ReadByte();
  switch (flag) {
    case interval_codec::kUnit: {
      const TimePoint t = r.ReadI64();
      return Interval(t, t + 1);
    }
    case interval_codec::kOpenEnd: {
      const TimePoint t = r.ReadI64();
      return Interval(t, kTimeMax);
    }
    case interval_codec::kOpenStart: {
      const TimePoint t = r.ReadI64();
      return Interval(kTimeMin, t);
    }
    case interval_codec::kGeneric: {
      const TimePoint start_raw = r.ReadI64();
      const bool start_inf = r.ReadByte() != 0;
      const TimePoint len_raw = r.ReadI64();
      const bool end_inf = r.ReadByte() != 0;
      const TimePoint start = start_inf ? kTimeMin : start_raw;
      const TimePoint end =
          end_inf ? kTimeMax : (start_inf ? len_raw : start_raw + len_raw);
      return Interval(start, end);
    }
    default:
      GRAPHITE_CHECK(false);
      return Interval::Empty();
  }
}

/// Status-returning decode for untrusted at-rest bytes (checkpoint frames,
/// binary graph files): truncation or an unknown flag is a DataLoss error
/// with the byte offset, never an abort.
inline Status TryReadInterval(Reader& r, Interval* out) {
  const size_t at = r.position();
  uint8_t flag = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadByte(&flag));
  switch (flag) {
    case interval_codec::kUnit: {
      TimePoint t = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&t));
      *out = Interval(t, t + 1);
      return Status::OK();
    }
    case interval_codec::kOpenEnd: {
      TimePoint t = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&t));
      *out = Interval(t, kTimeMax);
      return Status::OK();
    }
    case interval_codec::kOpenStart: {
      TimePoint t = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&t));
      *out = Interval(kTimeMin, t);
      return Status::OK();
    }
    case interval_codec::kGeneric: {
      TimePoint start_raw = 0, len_raw = 0;
      uint8_t start_inf = 0, end_inf = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&start_raw));
      GRAPHITE_RETURN_NOT_OK(r.TryReadByte(&start_inf));
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&len_raw));
      GRAPHITE_RETURN_NOT_OK(r.TryReadByte(&end_inf));
      const TimePoint start = start_inf != 0 ? kTimeMin : start_raw;
      const TimePoint end = end_inf != 0
                                ? kTimeMax
                                : (start_inf != 0 ? len_raw
                                                  : start_raw + len_raw);
      *out = Interval(start, end);
      return Status::OK();
    }
    default:
      return Status::DataLoss("unknown interval flag " +
                              std::to_string(flag) + " at byte " +
                              std::to_string(at));
  }
}

/// Bytes WriteInterval would emit, without writing.
inline size_t IntervalWireSize(const Interval& iv) {
  Writer w;
  WriteInterval(w, iv);
  return w.size();
}

/// Fixed-width (non-varint, no flags) interval size: the 16-byte baseline
/// the paper's 59-78% size-reduction claim is measured against.
inline constexpr size_t kFixedIntervalWireSize = 16;

}  // namespace graphite

#endif  // GRAPHITE_ICM_MESSAGE_H_
