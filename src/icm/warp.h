// The time-join and time-warp operators (paper §IV-B).
//
// Time-join (Soo/Snodgrass/Jensen, ICDE'94) intersects every (interval,
// value) pair of an outer and an inner set. Time-warp is a temporal
// self-join over the time-join: it slices time at the boundary points of
// the join results and, per slice, groups every inner value live in that
// slice with the (unique) outer value live there. Warp output drives one
// Compute invocation per tuple and guarantees (paper, Properties 1-4):
//   1. Valid inclusion    — every overlapping (state, message) pair appears
//                           at each shared time-point;
//   2. No invalid inclusion — nothing appears at a time-point where either
//                           side does not exist;
//   3. No duplication     — an outer value covers each of its time-points
//                           in at most one tuple;
//   4. Maximal            — adjacent/overlapping tuples with equal state
//                           value and equal message group are merged, so
//                           the user logic is invoked minimally often.
//
// The implementation is a plane sweep over endpoint events (the merge
// step of the paper's merge-sort aggregation [26]): O(m log m) time and
// O(m) space for m inner items, plus output.
//
// Hot-path layout: the engines call the allocation-free *Into entry
// points. Warp output is a flat structure-of-arrays (WarpOutput) — one
// shared inner-index pool with an (offset, count) span per tuple instead
// of a vector-of-vectors — and all sweep state lives in arena-backed
// scratch (WarpScratch) that is reused across vertices and reclaimed at
// superstep barriers. The maximality merge (Property 4) happens in place
// at emission time: a slice that extends the previous tuple just bumps
// its end, so merged tuples are never materialized twice. Every group
// span lists inner indices in arrival (inbox) order, including after
// merges — merging keeps the earlier tuple's group, which is itself
// arrival-ordered (tests/warp_test.cc pins this guarantee).
//
// The original allocating API (TimeWarp / TimeWarpCombine returning
// std::vector) remains as a thin shim over the *Into forms: it is the
// measured "vector-of-vectors" baseline of bench/bench_warp_alloc and the
// second API exercised by the property tests.
#ifndef GRAPHITE_ICM_WARP_H_
#define GRAPHITE_ICM_WARP_H_

#include <algorithm>
#include <span>
#include <vector>

#include "temporal/interval.h"
#include "temporal/interval_map.h"
#include "util/arena.h"
#include "util/status.h"

namespace graphite {

/// One (interval, value) item of the inner set (e.g. a received message).
template <typename V>
struct TemporalItem {
  Interval interval;
  V value;

  bool operator==(const TemporalItem& other) const {
    return interval == other.interval && value == other.value;
  }
};

/// One output triple of the time-join.
template <typename S, typename M>
struct TimeJoinTuple {
  Interval interval;      ///< tau_s intersect tau_m.
  uint32_t outer_index;   ///< Index into the outer set.
  uint32_t inner_index;   ///< Index into the inner set.
};

/// One output triple of the time-warp in the legacy allocating API: a
/// maximal sub-interval, the outer value live there (by index), and the
/// group of inner values live there (by index, in arrival order).
struct WarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  std::vector<uint32_t> inner_indices;
};

/// An (offset, count) span into WarpOutput's shared inner-index pool.
struct WarpGroup {
  uint32_t offset = 0;
  uint32_t count = 0;
};

/// One output triple of the flat time-warp; the group indices live in the
/// owning WarpOutput's pool.
struct FlatWarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  WarpGroup group;
};

/// Time-join: all pairwise intersections, ordered by (outer, inner) index.
/// The outer set must be temporally partitioned (disjoint intervals).
template <typename S, typename M>
std::vector<TimeJoinTuple<S, M>> TimeJoin(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  std::vector<TimeJoinTuple<S, M>> out;
  for (uint32_t i = 0; i < outer.size(); ++i) {
    for (uint32_t j = 0; j < inner.size(); ++j) {
      const Interval isect = outer[i].interval.Intersect(inner[j].interval);
      if (isect.IsValid()) out.push_back({isect, i, j});
    }
  }
  return out;
}

namespace warp_internal {

/// Endpoint event of the sweep: at `time`, inner item `index` starts
/// (kStart) or stops (kEnd) being live within the current outer entry.
struct Event {
  TimePoint time;
  uint32_t index;
  bool is_start;
};

}  // namespace warp_internal

/// Reusable sweep state shared by every warp invocation of one OS thread.
/// All buffers are arena-backed; the owner resets the arena at superstep
/// barriers (after Release).
struct WarpScratch {
  void Attach(Arena* arena) {
    by_start.Attach(arena);
    events.Attach(arena);
    live.Attach(arena);
    used.Attach(arena);
  }
  void Release() {
    by_start.Release();
    events.Release();
    live.Release();
    used.Release();
  }

  ArenaVec<uint32_t> by_start;            ///< inner indices by start time
  ArenaVec<warp_internal::Event> events;  ///< per-outer-entry endpoints
  ArenaVec<uint32_t> live;                ///< live group, ascending index
  ArenaVec<char> used;                    ///< multiset-match scratch
};

/// Flat structure-of-arrays warp output: tuples plus one shared pool of
/// inner indices addressed by per-tuple (offset, count) spans. Reused
/// across vertices (clear) within a superstep; storage is reclaimed by
/// the backing arena at barriers (Release).
class WarpOutput {
 public:
  void Attach(Arena* arena) {
    tuples_.Attach(arena);
    pool_.Attach(arena);
  }
  void Release() {
    tuples_.Release();
    pool_.Release();
  }
  void clear() {
    tuples_.clear();
    pool_.clear();
  }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const FlatWarpTuple& operator[](size_t i) const { return tuples_[i]; }
  std::span<const FlatWarpTuple> tuples() const { return tuples_.span(); }

  /// The tuple's group of inner indices, in arrival order.
  std::span<const uint32_t> group(const FlatWarpTuple& t) const {
    return pool_.subspan(t.group.offset, t.group.count);
  }
  std::span<const uint32_t> group(size_t i) const {
    return group(tuples_[i]);
  }

  /// Sweep-internal: appends a tuple whose group is the live set.
  void Emit(const Interval& interval, uint32_t outer_index,
            std::span<const uint32_t> live) {
    tuples_.push_back({interval, outer_index,
                       {static_cast<uint32_t>(pool_.size()),
                        static_cast<uint32_t>(live.size())}});
    pool_.Append(live.data(), live.size());
  }
  /// Sweep-internal: the previously emitted tuple, or nullptr.
  FlatWarpTuple* last() {
    return tuples_.empty() ? nullptr : &tuples_.back();
  }

 private:
  ArenaVec<FlatWarpTuple> tuples_;
  ArenaVec<uint32_t> pool_;
};

namespace warp_internal {

/// Fills scratch->by_start with inner indices ordered by interval start
/// (ties by index, i.e. arrival order).
template <typename M>
void SortByStart(std::span<const TemporalItem<M>> inner,
                 WarpScratch* scratch) {
  auto& by_start = scratch->by_start;
  by_start.clear();
  for (uint32_t j = 0; j < inner.size(); ++j) by_start.push_back(j);
  std::sort(by_start.data(), by_start.data() + by_start.size(),
            [&](uint32_t a, uint32_t b) {
              if (inner[a].interval.start != inner[b].interval.start) {
                return inner[a].interval.start < inner[b].interval.start;
              }
              return a < b;
            });
}

/// Collects and orders the boundary events of inner items clipped to
/// `entry_interval`. Ends sort before starts so zero-length gaps do not
/// arise; ties otherwise keep arrival order.
template <typename M>
void CollectEvents(std::span<const TemporalItem<M>> inner,
                   const Interval& entry_interval, WarpScratch* scratch) {
  auto& events = scratch->events;
  events.clear();
  for (const uint32_t j : scratch->by_start.span()) {
    const Interval clipped = inner[j].interval.Intersect(entry_interval);
    if (clipped.IsEmpty()) {
      if (inner[j].interval.start >= entry_interval.end) break;
      continue;
    }
    events.push_back({clipped.start, j, true});
    events.push_back({clipped.end, j, false});
  }
  std::sort(events.data(), events.data() + events.size(),
            [](const Event& a, const Event& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_start != b.is_start) return !a.is_start;
              return a.index < b.index;
            });
}

/// Applies all events at the head of the queue sharing one time-point to
/// the live set (kept in ascending index = arrival order). Returns the
/// next unprocessed event position.
inline size_t ApplyEventsAt(const ArenaVec<Event>& events, size_t k,
                            TimePoint now, ArenaVec<uint32_t>* live) {
  while (k < events.size() && events[k].time == now) {
    const Event& ev = events[k];
    const uint32_t* begin = live->data();
    const uint32_t* pos =
        std::lower_bound(begin, begin + live->size(), ev.index);
    if (ev.is_start) {
      live->InsertAt(static_cast<size_t>(pos - begin), ev.index);
    } else {
      GRAPHITE_CHECK(pos != begin + live->size() && *pos == ev.index);
      live->EraseAt(static_cast<size_t>(pos - begin));
    }
    ++k;
  }
  return k;
}

}  // namespace warp_internal

/// Time-warp over a temporally partitioned outer set and an arbitrary
/// inner set, into flat SoA output. Steady-state allocation-free: sweep
/// state and output grow out of the scratch/output arenas, which the
/// caller resets at superstep barriers.
///
/// The maximality merge (Property 4) is applied at emission time: a slice
/// whose (state value, message-value multiset) matches the previous tuple
/// and meets it in time extends that tuple in place. This is equivalent
/// to the formal post-pass merge because tuples are emitted in temporal
/// order and merging keeps the earlier tuple's (arrival-ordered) group.
template <typename S, typename M>
void TimeWarpInto(std::span<const typename IntervalMap<S>::Entry> outer,
                  std::span<const TemporalItem<M>> inner,
                  WarpScratch* scratch, WarpOutput* out) {
  out->clear();
  if (outer.empty() || inner.empty()) return;
  warp_internal::SortByStart(inner, scratch);

  auto& live = scratch->live;
  // Multiset equality of the previous tuple's group and the live set, by
  // message value (only == required of the payload type). Groups are
  // small, so the quadratic matching is cheaper than hashing or sorting
  // payloads.
  auto mergeable = [&](const FlatWarpTuple& prev, const Interval& slice,
                       uint32_t outer_index,
                       std::span<const uint32_t> prev_group) {
    if (!prev.interval.Meets(slice)) return false;
    if (!(outer[prev.outer_index].value == outer[outer_index].value)) {
      return false;
    }
    if (prev_group.size() != live.size()) return false;
    auto& used = scratch->used;
    used.clear();
    for (size_t j = 0; j < live.size(); ++j) used.push_back(0);
    for (const uint32_t ai : prev_group) {
      bool matched = false;
      for (size_t j = 0; j < live.size(); ++j) {
        if (used[j]) continue;
        if (ai == live[j] || inner[ai].value == inner[live[j]].value) {
          used[j] = 1;
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    return true;
  };

  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    warp_internal::CollectEvents(inner, entry.interval, scratch);
    const auto& events = scratch->events;
    if (events.empty()) continue;
    live.clear();
    const uint32_t outer_index =
        static_cast<uint32_t>(&entry - outer.data());

    // Sweep: between consecutive distinct event times, the live group is
    // constant; emit one tuple per non-empty slice, merging in place.
    size_t k = 0;
    TimePoint prev_t = events[0].time;
    while (k < events.size()) {
      const TimePoint now = events[k].time;
      if (now > prev_t && !live.empty()) {
        const Interval slice(prev_t, now);
        FlatWarpTuple* last = out->last();
        if (last != nullptr &&
            mergeable(*last, slice, outer_index, out->group(*last))) {
          last->interval.end = now;
        } else {
          out->Emit(slice, outer_index, live.span());
        }
      }
      k = warp_internal::ApplyEventsAt(events, k, now, &live);
      prev_t = now;
    }
    GRAPHITE_CHECK(live.empty());
  }
}

/// Legacy allocating time-warp: the vector-of-vectors API kept as a shim
/// over TimeWarpInto for tests, callers outside the superstep hot path,
/// and as the measured baseline of bench/bench_warp_alloc.
template <typename S, typename M>
std::vector<WarpTuple> TimeWarp(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput flat;
  flat.Attach(&arena);
  TimeWarpInto<S, M>(outer, inner, &scratch, &flat);

  std::vector<WarpTuple> out;
  out.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    const std::span<const uint32_t> group = flat.group(i);
    out.push_back({flat[i].interval, flat[i].outer_index,
                   std::vector<uint32_t>(group.begin(), group.end())});
  }
  return out;
}

/// One output triple of the combining time-warp: the message group is
/// folded to a single payload during the sweep (§VI inline warp combiner),
/// so no per-tuple index vectors are materialized.
template <typename M>
struct CombinedWarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  M combined;
  uint32_t group_size = 0;
};

/// Time-warp with an inline combiner, into a reused output vector
/// (SuperstepVec<CombinedWarpTuple<M>> in the engines; any container with
/// the same interface works). Identical slicing to TimeWarpInto, but each
/// tuple carries fold(combine, values of the live group). The maximality
/// merge coalesces — in place, at emission — adjacent tuples with equal
/// state value and equal combined payload: the compute call sequence is
/// exactly what the non-combining warp plus a post-fold would produce for
/// commutative/associative combiners.
template <typename S, typename M, typename Combine, typename OutVec>
void TimeWarpCombineInto(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner, Combine&& combine,
    WarpScratch* scratch, OutVec* out) {
  out->clear();
  if (outer.empty() || inner.empty()) return;
  warp_internal::SortByStart(inner, scratch);

  auto& live = scratch->live;
  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    warp_internal::CollectEvents(inner, entry.interval, scratch);
    const auto& events = scratch->events;
    if (events.empty()) continue;
    live.clear();
    const uint32_t outer_index =
        static_cast<uint32_t>(&entry - outer.data());

    size_t k = 0;
    TimePoint prev_t = events[0].time;
    while (k < events.size()) {
      const TimePoint now = events[k].time;
      if (now > prev_t && !live.empty()) {
        const Interval slice(prev_t, now);
        M folded = inner[live[0]].value;
        for (size_t i = 1; i < live.size(); ++i) {
          folded = combine(folded, inner[live[i]].value);
        }
        CombinedWarpTuple<M>* last =
            out->empty() ? nullptr : &out->back();
        if (last != nullptr && last->interval.Meets(slice) &&
            outer[last->outer_index].value == outer[outer_index].value &&
            last->combined == folded) {
          last->interval.end = now;
          last->group_size += static_cast<uint32_t>(live.size());
        } else {
          out->push_back({slice, outer_index, std::move(folded),
                          static_cast<uint32_t>(live.size())});
        }
      }
      k = warp_internal::ApplyEventsAt(events, k, now, &live);
      prev_t = now;
    }
    GRAPHITE_CHECK(live.empty());
  }
}

/// Legacy allocating combine-warp shim (tests and non-hot-path callers).
template <typename S, typename M, typename Combine>
std::vector<CombinedWarpTuple<M>> TimeWarpCombine(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner, Combine&& combine) {
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  SuperstepVec<CombinedWarpTuple<M>> flat;
  flat.Attach(&arena);
  TimeWarpCombineInto<S, M>(outer, inner,
                            std::forward<Combine>(combine), &scratch,
                            &flat);
  std::vector<CombinedWarpTuple<M>> out;
  out.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) out.push_back(flat[i]);
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_ICM_WARP_H_
