// The time-join and time-warp operators (paper §IV-B).
//
// Time-join (Soo/Snodgrass/Jensen, ICDE'94) intersects every (interval,
// value) pair of an outer and an inner set. Time-warp is a temporal
// self-join over the time-join: it slices time at the boundary points of
// the join results and, per slice, groups every inner value live in that
// slice with the (unique) outer value live there. Warp output drives one
// Compute invocation per tuple and guarantees (paper, Properties 1-4):
//   1. Valid inclusion    — every overlapping (state, message) pair appears
//                           at each shared time-point;
//   2. No invalid inclusion — nothing appears at a time-point where either
//                           side does not exist;
//   3. No duplication     — an outer value covers each of its time-points
//                           in at most one tuple;
//   4. Maximal            — adjacent/overlapping tuples with equal state
//                           value and equal message group are merged, so
//                           the user logic is invoked minimally often.
//
// Implementation: a branch-lean TWO-PASS kernel per outer entry (replacing
// the earlier event-queue plane sweep that maintained a sorted live set
// with per-event memmoves).
//
//   Endpoint pass   Every inner item is clipped against the entry with a
//                   predictable min/max overlap test into SoA endpoint
//                   arrays (start[] / end[] pulled out of the tuple
//                   structs); the two arrays are sorted independently on a
//                   single scalar key and merged into the distinct slice
//                   boundaries, each item's live slice range [first, past)
//                   falling out of the merge. Per-slice live counts come
//                   from a difference array + prefix sum.
//
//                   The endpoint pass exists twice (DESIGN.md §4j): the
//                   scalar body above is the portable default and the
//                   pinned determinism reference, and BuildSlicesVector is
//                   an explicitly vectorized equivalent (util/simd.h:
//                   wide clip, one combined (time, pos·kind) endpoint
//                   sort specialized by a three-way counting partition on
//                   the entry bounds with interior-sortedness detection,
//                   then one fused scan recovering bounds and both
//                   endpoint streams). Dispatch is decided once per process
//                   (GRAPHITE_SIMD env / GRAPHITE_NATIVE build default);
//                   both paths produce byte-identical slice state, which
//                   tests/warp_soa_test.cc pins across the dispatch
//                   matrix.
//   Payload pass    Slices are walked in time order deciding emission vs
//                   maximality merge, then groups are materialized with
//                   one counting scatter over the clip list. The clip
//                   list is in arrival order, so every group span lists
//                   inner indices in arrival (inbox) order, including
//                   after merges — merging keeps the earlier tuple's
//                   group (tests/warp_test.cc pins this guarantee).
//
// The maximality merge (Property 4) is decided per boundary: within an
// unbroken run of non-empty slices, adjacent groups differ exactly by the
// items ending/starting at the shared boundary, so multiset equality
// reduces to comparing those (tiny) boundary deltas instead of re-matching
// whole groups. Only chain breaks (entry boundaries) fall back to the full
// quadratic multiset match.
//
// Hot-path layout: the engines call the allocation-free *Into entry
// points. Warp output is a flat structure-of-arrays (WarpOutput) — one
// shared inner-index pool with an (offset, count) span per tuple instead
// of a vector-of-vectors — and all kernel state lives in arena-backed
// scratch (WarpScratch) that is reused across vertices and reclaimed at
// superstep barriers.
//
// The original allocating API (TimeWarp / TimeWarpCombine returning
// std::vector) remains as a thin shim over the *Into forms: it is the
// measured "vector-of-vectors" baseline of bench/bench_warp_alloc and the
// second API exercised by the property tests.
#ifndef GRAPHITE_ICM_WARP_H_
#define GRAPHITE_ICM_WARP_H_

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "temporal/interval.h"
#include "temporal/interval_map.h"
#include "util/arena.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/timer.h"

namespace graphite {

/// One (interval, value) item of the inner set (e.g. a received message).
template <typename V>
struct TemporalItem {
  Interval interval;
  V value;

  bool operator==(const TemporalItem& other) const {
    return interval == other.interval && value == other.value;
  }
};

/// One output triple of the time-join.
template <typename S, typename M>
struct TimeJoinTuple {
  Interval interval;      ///< tau_s intersect tau_m.
  uint32_t outer_index;   ///< Index into the outer set.
  uint32_t inner_index;   ///< Index into the inner set.
};

/// One output triple of the time-warp in the legacy allocating API: a
/// maximal sub-interval, the outer value live there (by index), and the
/// group of inner values live there (by index, in arrival order).
struct WarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  std::vector<uint32_t> inner_indices;  // lint:allow(vector: legacy allocating shim, kept for API compat)
};

/// An (offset, count) span into WarpOutput's shared inner-index pool.
struct WarpGroup {
  uint32_t offset = 0;
  uint32_t count = 0;
};

/// One output triple of the flat time-warp; the group indices live in the
/// owning WarpOutput's pool.
struct FlatWarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  WarpGroup group;
};

/// Per-kernel counters (and optional pass timings) for the two-pass merge.
/// The engines accumulate the counters into SuperstepMetrics; the benches
/// additionally set `timed` to attribute time to the endpoint vs payload
/// pass. A null WarpStats* costs the kernels nothing.
struct WarpStats {
  int64_t slices = 0;       ///< Non-empty slices considered for emission.
  int64_t merge_hits = 0;   ///< Slices coalesced into the previous tuple.
  int64_t tuples = 0;       ///< Tuples emitted after the maximality merge.
  int64_t endpoint_ns = 0;  ///< Endpoint pass time (only when `timed`).
  int64_t payload_ns = 0;   ///< Payload pass time (only when `timed`).
  // Vectorized endpoint pass (DESIGN.md §4j). simd_lanes records which
  // path the last kernel call dispatched to (1 = scalar reference); the
  // sort_* counters cover the partitioned endpoint sort of the vector
  // path only, so a bench can report the partition/pre-sortedness win.
  int simd_lanes = 1;          ///< 64-bit lanes of the dispatched path.
  int64_t sort_calls = 0;      ///< Partitioned endpoint sorts performed.
  int64_t sort_presorted = 0;  ///< ... whose interior was already ordered.
  int64_t sort_pinned = 0;     ///< Endpoints pinned to an entry bound.
  int64_t sort_endpoints = 0;  ///< Endpoints through the partitioned sort.
  int64_t sort_ns = 0;         ///< Partitioned sort time (only when `timed`).
  bool timed = false;          ///< Sample NowNanos around the passes.
};

/// Time-join: all pairwise intersections, ordered by (outer, inner) index.
/// The outer set must be temporally partitioned (disjoint intervals).
template <typename S, typename M>
std::vector<TimeJoinTuple<S, M>> TimeJoin(  // lint:allow(vector: naive O(n^2) reference, tests only)
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  std::vector<TimeJoinTuple<S, M>> out;  // lint:allow(vector: naive O(n^2) reference, tests only)
  for (uint32_t i = 0; i < outer.size(); ++i) {
    for (uint32_t j = 0; j < inner.size(); ++j) {
      const Interval isect = outer[i].interval.Intersect(inner[j].interval);
      if (isect.IsValid()) out.push_back({isect, i, j});
    }
  }
  return out;
}

namespace warp_internal {

/// One clipped interval endpoint: its time and the clip-list position of
/// the item it belongs to. Sorted on the single scalar key.
///
/// The vector path reuses the struct for its combined endpoint stream
/// with pos = (clip_pos << 1) | is_end, so one sort orders starts and
/// ends together while ties at equal times keep starts-by-pos before
/// ends-by-pos exactly as the scalar path's two independent sorts do.
struct Endpoint {
  TimePoint time;
  uint32_t pos;
};
// The SIMD key gather (SimdGatherKeysI64) assumes this exact layout.
static_assert(sizeof(Endpoint) == 16 && offsetof(Endpoint, time) == 0);

/// Payload-pass sentinel: slice has no reserved pool span (it merged).
inline constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

}  // namespace warp_internal

/// Reusable two-pass kernel state shared by every warp invocation of one
/// OS thread. All buffers are arena-backed; the owner resets the arena at
/// superstep barriers (after Release).
struct WarpScratch {
  void Attach(Arena* arena) {
    item.Attach(arena);
    starts.Attach(arena);
    ends.Attach(arena);
    bounds.Attach(arena);
    first.Attach(arena);
    past.Attach(arena);
    live_count.Attach(arena);
    cursor.Attach(arena);
    live.Attach(arena);
    used.Attach(arena);
    soa_start.Attach(arena);
    soa_end.Attach(arena);
    clip_start.Attach(arena);
    clip_end.Attach(arena);
    comb.Attach(arena);
    sort_tmp.Attach(arena);
    times.Attach(arena);
  }
  void Release() {
    item.Release();
    starts.Release();
    ends.Release();
    bounds.Release();
    first.Release();
    past.Release();
    live_count.Release();
    cursor.Release();
    live.Release();
    used.Release();
    soa_start.Release();
    soa_end.Release();
    clip_start.Release();
    clip_end.Release();
    comb.Release();
    sort_tmp.Release();
    times.Release();
  }

  // Endpoint-pass SoA state, rebuilt per outer entry:
  ArenaVec<uint32_t> item;    ///< clip list: inner indices, arrival order
  ArenaVec<warp_internal::Endpoint> starts;  ///< clipped starts, by time
  ArenaVec<warp_internal::Endpoint> ends;    ///< clipped ends, by time
  ArenaVec<TimePoint> bounds;    ///< distinct slice boundary times
  ArenaVec<uint32_t> first;      ///< per clip item: first live slice
  ArenaVec<uint32_t> past;       ///< per clip item: one past last live slice
  ArenaVec<int32_t> live_count;  ///< per slice: live items (diff -> prefix)
  // Payload-pass state:
  ArenaVec<uint32_t> cursor;  ///< per slice: pool scatter cursor / kNoSlot
  ArenaVec<uint32_t> live;    ///< gathered group / per-slice item runs
  ArenaVec<char> used;        ///< multiset-match scratch
  // Vector endpoint-pass state (DESIGN.md §4j). soa_start/soa_end is the
  // padded SoA snapshot of the inner set's intervals, built ONCE per
  // kernel call (not per outer entry) so the wide clip streams two flat
  // int64 arrays instead of re-walking the AoS items for every entry.
  ArenaVec<TimePoint> soa_start;  ///< per inner item: interval.start
  ArenaVec<TimePoint> soa_end;    ///< per inner item: interval.end
  ArenaVec<TimePoint> clip_start;  ///< wide clip output, per inner item
  ArenaVec<TimePoint> clip_end;    ///< wide clip output, per inner item
  ArenaVec<warp_internal::Endpoint> comb;      ///< combined endpoint stream
  ArenaVec<warp_internal::Endpoint> sort_tmp;  ///< partition scatter buffer
  ArenaVec<TimePoint> times;  ///< gathered keys for sortedness detection
};

/// Flat structure-of-arrays warp output: tuples plus one shared pool of
/// inner indices addressed by per-tuple (offset, count) spans. Reused
/// across vertices (clear) within a superstep; storage is reclaimed by
/// the backing arena at barriers (Release).
class WarpOutput {
 public:
  void Attach(Arena* arena) {
    tuples_.Attach(arena);
    pool_.Attach(arena);
  }
  void Release() {
    tuples_.Release();
    pool_.Release();
  }
  void clear() {
    tuples_.clear();
    pool_.clear();
  }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const FlatWarpTuple& operator[](size_t i) const { return tuples_[i]; }
  std::span<const FlatWarpTuple> tuples() const { return tuples_.span(); }

  /// The tuple's group of inner indices, in arrival order.
  std::span<const uint32_t> group(const FlatWarpTuple& t) const {
    return pool_.subspan(t.group.offset, t.group.count);
  }
  std::span<const uint32_t> group(size_t i) const {
    return group(tuples_[i]);
  }

  /// Kernel-internal: appends a tuple reserving `count` uninitialized pool
  /// slots for the payload pass to fill; returns the reserved offset.
  uint32_t EmitReserve(const Interval& interval, uint32_t outer_index,
                       uint32_t count) {
    const uint32_t offset = static_cast<uint32_t>(pool_.size());
    tuples_.push_back({interval, outer_index, {offset, count}});
    pool_.ResizeUninitialized(pool_.size() + count);
    return offset;
  }
  /// Kernel-internal: raw pool storage for the payload scatter. Only valid
  /// until the next EmitReserve (the pool may relocate).
  uint32_t* pool_data() { return pool_.data(); }
  /// Kernel-internal: the previously emitted tuple, or nullptr.
  FlatWarpTuple* last() {
    return tuples_.empty() ? nullptr : &tuples_.back();
  }

 private:
  ArenaVec<FlatWarpTuple> tuples_;
  ArenaVec<uint32_t> pool_;
};

namespace warp_internal {

/// Endpoint pass shared by both kernels: clips every inner item against
/// `entry_interval` (a branch-predictable min/max overlap test over the
/// scalar endpoints), sorts the clipped start[] and end[] arrays
/// independently, merges the two sorted streams into the distinct slice
/// boundary times — each item's live slice range [first, past) falls out
/// of the merge — and computes per-slice live counts with a difference
/// array + prefix sum. Returns false when nothing overlaps the entry.
///
/// This scalar body is the portable default and the pinned determinism
/// reference for BuildSlicesVector below — do not "optimize" it; change
/// behaviour only with a matching vector-path change and a run of the
/// warp_simd_matrix tests.
template <typename M>
bool BuildSlicesScalar(std::span<const TemporalItem<M>> inner,
                       const Interval& entry_interval, WarpScratch* s) {
  auto& item = s->item;
  auto& starts = s->starts;
  auto& ends = s->ends;
  item.clear();
  starts.clear();
  ends.clear();
  const TimePoint es = entry_interval.start;
  const TimePoint ee = entry_interval.end;
  uint32_t c = 0;
  for (uint32_t j = 0; j < inner.size(); ++j) {
    const TimePoint cs = std::max(inner[j].interval.start, es);
    const TimePoint ce = std::min(inner[j].interval.end, ee);
    if (cs >= ce) continue;
    item.push_back(j);
    starts.push_back({cs, c});
    ends.push_back({ce, c});
    ++c;
  }
  if (c == 0) return false;

  const auto by_time = [](const Endpoint& a, const Endpoint& b) {
    return a.time != b.time ? a.time < b.time : a.pos < b.pos;
  };
  std::sort(starts.data(), starts.data() + c, by_time);
  std::sort(ends.data(), ends.data() + c, by_time);

  auto& bounds = s->bounds;
  auto& first = s->first;
  auto& past = s->past;
  bounds.clear();
  first.ResizeUninitialized(c);
  past.ResizeUninitialized(c);
  uint32_t si = 0;
  uint32_t ei = 0;
  while (ei < c) {
    TimePoint t = ends[ei].time;
    if (si < c && starts[si].time < t) t = starts[si].time;
    const uint32_t slice = static_cast<uint32_t>(bounds.size());
    bounds.push_back(t);
    while (si < c && starts[si].time == t) first[starts[si++].pos] = slice;
    while (ei < c && ends[ei].time == t) past[ends[ei++].pos] = slice;
  }
  // Every start precedes its end, so the merged stream consumes them all.
  GRAPHITE_CHECK(si == c);
  const size_t num_slices = bounds.size() - 1;

  auto& live_count = s->live_count;
  live_count.ResizeUninitialized(bounds.size());
  std::memset(live_count.data(), 0, bounds.size() * sizeof(int32_t));
  for (uint32_t k = 0; k < c; ++k) {
    ++live_count[first[k]];
    --live_count[past[k]];
  }
  int32_t running = 0;
  for (size_t x = 0; x < num_slices; ++x) {
    running += live_count[x];
    live_count[x] = running;
  }
  GRAPHITE_CHECK(running + live_count[num_slices] == 0);
  return true;
}

/// Below this much total endpoint work (outer entries x inner items) the
/// wide path's fixed costs — the SoA snapshot, the partition's counting
/// passes — outweigh its per-element wins, so small kernel calls take the
/// scalar path even under a wide dispatch (micro_warp's 1x8 .. 16x4096
/// grid locates the crossover). Identical results either way; only the
/// WarpStats::simd_lanes report differs.
inline constexpr size_t kSimdMinWork = 256;

/// The dispatch level a kernel call of this shape actually runs at:
/// the process dispatch, demoted to scalar for small calls.
inline SimdLevel ResolveKernelLevel(size_t outer_n, size_t inner_n) {
  const SimdLevel simd = SimdDispatchLevel();
  if (simd == SimdLevel::kScalar) return simd;
  const size_t work = inner_n * (outer_n == 0 ? 1 : outer_n);
  return work >= kSimdMinWork ? simd : SimdLevel::kScalar;
}

/// Builds the per-call SoA snapshot of the inner intervals consumed by
/// the wide clip. Runs once per TimeWarpInto/TimeWarpCombineInto call and
/// is amortized over every outer entry (the scalar path instead re-walks
/// the AoS items per entry).
template <typename M>
void PrepareWarpSoA(std::span<const TemporalItem<M>> inner, WarpScratch* s) {
  const size_t n = inner.size();
  // pos carries (clip_pos << 1 | kind) in a uint32.
  GRAPHITE_CHECK(n < (size_t{1} << 30));
  s->soa_start.ResizeUninitialized(n);
  s->soa_end.ResizeUninitialized(n);
  TimePoint* ss = s->soa_start.data();
  TimePoint* se = s->soa_end.data();
  for (size_t j = 0; j < n; ++j) {
    ss[j] = inner[j].interval.start;
    se[j] = inner[j].interval.end;
  }
}

/// Sorts the combined endpoint stream by (time, pos) with a counting
/// partition specialized for clipped endpoints: every clipped start is
/// pinned at the entry's lower bound `lo` (the stream's global minimum —
/// ends satisfy end > start >= lo) and every clipped end at the upper
/// bound `hi`, and within either pinned bucket ties resolve by pos, which
/// is exactly the stream's build order. So one stable three-way scatter
/// orders both pinned buckets for free and only the strictly-interior
/// middle can need comparison sorting at all — and since inboxes arrive
/// roughly time-ordered, the middle is detected already-sorted far more
/// often than not (wide non-decreasing check + scalar tie confirm for
/// vector-width middles, one scalar scan for tiny ones), with std::sort
/// as the fallback. The sorted stream is left in `tmp` — the caller reads
/// it from there, saving a copy-back pass. Counters land in `stats` for
/// the micro_sort bench section.
inline void SortClippedEndpoints(ArenaVec<Endpoint>& comb,
                                 ArenaVec<Endpoint>& tmp, TimePoint lo,
                                 TimePoint hi, SimdLevel level,
                                 ArenaVec<TimePoint>& times,
                                 WarpStats* stats) {
  const size_t m = comb.size();
  const bool timed = stats != nullptr && stats->timed;
  const int64_t t0 = timed ? NowNanos() : 0;
  Endpoint* cb = comb.data();
  size_t n_lo = 0;
  size_t n_hi = 0;
  for (size_t i = 0; i < m; ++i) {
    n_lo += cb[i].time == lo ? 1 : 0;
    n_hi += cb[i].time == hi ? 1 : 0;
  }
  tmp.ResizeUninitialized(m);
  Endpoint* t = tmp.data();
  size_t p_lo = 0;
  size_t p_mid = n_lo;
  size_t p_hi = m - n_hi;
  const size_t mid_begin = n_lo;
  const size_t mid_end = m - n_hi;
  for (size_t i = 0; i < m; ++i) {
    const Endpoint ep = cb[i];
    if (ep.time == lo) {
      t[p_lo++] = ep;
    } else if (ep.time == hi) {
      t[p_hi++] = ep;
    } else {
      t[p_mid++] = ep;
    }
  }
  bool presorted = true;
  const size_t mid_n = mid_end - mid_begin;
  if (mid_n > 1) {
    if (mid_n >= 16) {
      // Wide detection pays for itself: gather the times, wide
      // non-decreasing check, then confirm ties are pos-ordered.
      times.ResizeUninitialized(mid_n);
      SimdGatherKeysI64(level, t + mid_begin, mid_n, times.data());
      presorted = SimdIsSortedI64(level, times.data(), mid_n);
      if (presorted) {
        for (size_t i = mid_begin + 1; i < mid_end && presorted; ++i) {
          presorted = t[i - 1].time != t[i].time || t[i - 1].pos < t[i].pos;
        }
      }
    } else {
      // Tiny middle: one scalar (time, pos) scan is cheaper than the
      // gather + wide check round trip.
      for (size_t i = mid_begin + 1; i < mid_end && presorted; ++i) {
        presorted = t[i - 1].time < t[i].time ||
                    (t[i - 1].time == t[i].time && t[i - 1].pos < t[i].pos);
      }
    }
    if (!presorted) {
      std::sort(t + mid_begin, t + mid_end,
                [](const Endpoint& a, const Endpoint& b) {
                  return a.time != b.time ? a.time < b.time : a.pos < b.pos;
                });
    }
  }
  if (stats != nullptr) {
    ++stats->sort_calls;
    stats->sort_presorted += presorted ? 1 : 0;
    stats->sort_pinned += static_cast<int64_t>(n_lo + n_hi);
    stats->sort_endpoints += static_cast<int64_t>(m);
    if (timed) stats->sort_ns += NowNanos() - t0;
  }
}

/// Vectorized endpoint pass (DESIGN.md §4j), byte-identical to
/// BuildSlicesScalar by construction:
///   1. wide clip of the per-call SoA interval snapshot;
///   2. compaction into the clip list plus ONE combined endpoint stream
///      keyed (time, pos·kind) — sorting it once is order-equivalent to
///      the scalar path's two independent (time, pos) sorts because the
///      kind bit only breaks ties between a start and an end at equal
///      time, a pairing the scalar merge routes by stream anyway (starts
///      recorded before ends at each boundary);
///   3. the partitioned endpoint sort above;
///   4. one fused scan over the sorted stream recovering bounds[] (a new
///      bound whenever the time changes), first[]/past[], and the
///      per-stream sorted starts[]/ends[] arrays the payload pass reads
///      (stable partition on the kind bit preserves (time, pos) order);
///   5. live counts: same difference array, wide prefix scan.
template <typename M>
bool BuildSlicesVector(std::span<const TemporalItem<M>> inner,
                       const Interval& entry_interval, WarpScratch* s,
                       SimdLevel level, WarpStats* stats) {
  const size_t n = inner.size();
  GRAPHITE_CHECK(s->soa_start.size() == n);  // PrepareWarpSoA ran.
  const TimePoint es = entry_interval.start;
  const TimePoint ee = entry_interval.end;

  s->clip_start.ResizeUninitialized(n);
  s->clip_end.ResizeUninitialized(n);
  TimePoint* cs = s->clip_start.data();
  TimePoint* ce = s->clip_end.data();
  SimdClipI64(level, s->soa_start.data(), s->soa_end.data(), n, es, ee, cs,
              ce);

  auto& item = s->item;
  auto& comb = s->comb;
  item.clear();
  comb.ResizeUninitialized(2 * n);
  Endpoint* cb = comb.data();
  uint32_t c = 0;
  size_t w = 0;
  for (uint32_t j = 0; j < n; ++j) {
    if (cs[j] >= ce[j]) continue;
    item.push_back(j);
    cb[w] = {cs[j], c << 1};
    cb[w + 1] = {ce[j], (c << 1) | 1u};
    w += 2;
    ++c;
  }
  if (c == 0) return false;
  comb.Truncate(w);
  const size_t m = w;

  SortClippedEndpoints(comb, s->sort_tmp, es, ee, level, s->times, stats);
  const Endpoint* sorted = s->sort_tmp.data();

  auto& bounds = s->bounds;
  auto& first = s->first;
  auto& past = s->past;
  auto& starts = s->starts;
  auto& ends = s->ends;
  bounds.ResizeUninitialized(m);  // Truncated to the distinct count below.
  first.ResizeUninitialized(c);
  past.ResizeUninitialized(c);
  starts.ResizeUninitialized(c);
  ends.ResizeUninitialized(c);
  uint32_t num_bounds = 0;
  uint32_t si = 0;
  uint32_t ei = 0;
  TimePoint prev = 0;
  for (size_t i = 0; i < m; ++i) {
    const Endpoint ep = sorted[i];
    if (num_bounds == 0 || ep.time != prev) {
      bounds[num_bounds++] = ep.time;
      prev = ep.time;
    }
    const uint32_t slice = num_bounds - 1;
    const uint32_t pos = ep.pos >> 1;
    if (ep.pos & 1u) {
      past[pos] = slice;
      ends[ei++] = {ep.time, pos};
    } else {
      first[pos] = slice;
      starts[si++] = {ep.time, pos};
    }
  }
  // Every start precedes its end, so both streams drained completely.
  GRAPHITE_CHECK(si == c && ei == c);
  bounds.Truncate(num_bounds);
  const size_t num_slices = num_bounds - 1;

  auto& live_count = s->live_count;
  live_count.ResizeUninitialized(num_bounds);
  std::memset(live_count.data(), 0, num_bounds * sizeof(int32_t));
  for (uint32_t k = 0; k < c; ++k) {
    ++live_count[first[k]];
    --live_count[past[k]];
  }
  const int32_t last_diff = live_count[num_slices];
  SimdPrefixSumI32(level, live_count.data(), num_slices);
  GRAPHITE_CHECK((num_slices == 0 ? 0 : live_count[num_slices - 1]) +
                     last_diff ==
                 0);
  return true;
}

/// Endpoint-pass dispatcher: the scalar reference at SimdLevel::kScalar,
/// the vectorized equivalent otherwise. Callers resolve the level once
/// per kernel call (and run PrepareWarpSoA first for non-scalar levels).
template <typename M>
bool BuildSlices(std::span<const TemporalItem<M>> inner,
                 const Interval& entry_interval, WarpScratch* s,
                 SimdLevel level, WarpStats* stats) {
  if (level == SimdLevel::kScalar) {
    return BuildSlicesScalar(inner, entry_interval, s);
  }
  return BuildSlicesVector(inner, entry_interval, s, level, stats);
}

}  // namespace warp_internal

/// Time-warp over a temporally partitioned outer set and an arbitrary
/// inner set, into flat SoA output. Steady-state allocation-free: kernel
/// state and output grow out of the scratch/output arenas, which the
/// caller resets at superstep barriers.
///
/// The maximality merge (Property 4) is applied at emission time: a slice
/// whose (state value, message-value multiset) matches the previous tuple
/// and meets it in time extends that tuple in place. This is equivalent
/// to the formal post-pass merge because tuples are emitted in temporal
/// order and merging keeps the earlier tuple's (arrival-ordered) group.
template <typename S, typename M>
void TimeWarpInto(std::span<const typename IntervalMap<S>::Entry> outer,
                  std::span<const TemporalItem<M>> inner,
                  WarpScratch* scratch, WarpOutput* out,
                  WarpStats* stats = nullptr) {
  using warp_internal::kNoSlot;
  out->clear();
  if (outer.empty() || inner.empty()) return;
  // Dispatch is resolved once per kernel call; the SoA interval snapshot
  // feeding the wide clip is likewise built once and amortized over every
  // outer entry.
  const SimdLevel simd =
      warp_internal::ResolveKernelLevel(outer.size(), inner.size());
  if (simd != SimdLevel::kScalar) {
    warp_internal::PrepareWarpSoA(inner, scratch);
  }
  if (stats != nullptr) stats->simd_lanes = SimdLanes(simd);

  // Multiset equality of the previous tuple's group and a gathered live
  // set, by message value (only == required of the payload; identity
  // implies value equality). Quadratic, but it runs only where the
  // boundary-delta check cannot — chain breaks, i.e. entry boundaries.
  const auto multiset_equal = [&](std::span<const uint32_t> prev_group,
                                  std::span<const uint32_t> live) {
    auto& used = scratch->used;
    used.ResizeUninitialized(live.size());
    std::memset(used.data(), 0, live.size());
    for (const uint32_t ai : prev_group) {
      bool matched = false;
      for (size_t j = 0; j < live.size(); ++j) {
        if (used[j]) continue;
        if (ai == live[j] || inner[ai].value == inner[live[j]].value) {
          used[j] = 1;
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    return true;
  };

  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    const bool timed = stats != nullptr && stats->timed;
    const int64_t t0 = timed ? NowNanos() : 0;
    const bool any =
        warp_internal::BuildSlices(inner, entry.interval, scratch, simd, stats);
    const int64_t t1 = timed ? NowNanos() : 0;
    if (timed) stats->endpoint_ns += t1 - t0;
    if (!any) continue;
    const uint32_t outer_index =
        static_cast<uint32_t>(&entry - outer.data());

    const auto& item = scratch->item;
    const auto& starts = scratch->starts;
    const auto& ends = scratch->ends;
    const auto& bounds = scratch->bounds;
    const auto& first = scratch->first;
    const auto& past = scratch->past;
    const auto& live_count = scratch->live_count;
    const uint32_t c = static_cast<uint32_t>(item.size());
    const size_t num_slices = bounds.size() - 1;

    auto& cursor = scratch->cursor;
    cursor.ResizeUninitialized(num_slices);
    std::memset(cursor.data(), 0xFF, num_slices * sizeof(uint32_t));

    // Emission walk: boundary event runs are contiguous in the sorted
    // endpoint arrays, consumed by two cursors as the walk advances.
    uint32_t sp = 0;
    uint32_t ep = 0;
    for (size_t x = 0; x < num_slices; ++x) {
      const uint32_t s0 = sp;
      while (sp < c && starts[sp].time == bounds[x]) ++sp;
      const uint32_t e0 = ep;
      while (ep < c && ends[ep].time == bounds[x]) ++ep;
      const int32_t live_here = live_count[x];
      if (live_here == 0) continue;
      const Interval slice(bounds[x], bounds[x + 1]);
      FlatWarpTuple* last = out->last();
      bool merge = false;
      if (last != nullptr && last->interval.end == slice.start) {
        if (x > 0 && live_count[x - 1] > 0) {
          // Unbroken within-entry chain: the previous slice extended
          // `last` (its group is multiset-equal to that slice's live set),
          // so equality with this slice reduces to the boundary delta —
          // the values ending here must match the values starting here.
          // The outer value matched when the chain began, transitively.
          const uint32_t ns = sp - s0;
          const uint32_t ne = ep - e0;
          if (ns == ne) {
            merge = true;
            auto& used = scratch->used;
            used.ResizeUninitialized(ns);
            std::memset(used.data(), 0, ns);
            for (uint32_t e = e0; e < ep && merge; ++e) {
              bool matched = false;
              for (uint32_t k = 0; k < ns; ++k) {
                if (used[k]) continue;
                if (inner[item[ends[e].pos]].value ==
                    inner[item[starts[s0 + k].pos]].value) {
                  used[k] = 1;
                  matched = true;
                  break;
                }
              }
              merge = matched;
            }
          }
        } else if (outer[last->outer_index].value ==
                       outer[outer_index].value &&
                   last->group.count == static_cast<uint32_t>(live_here)) {
          // Chain break that still meets in time (an entry boundary):
          // gather this slice's live set and run the full multiset match.
          auto& live = scratch->live;
          live.clear();
          for (uint32_t k = 0; k < c; ++k) {
            if (first[k] <= x && x < past[k]) live.push_back(item[k]);
          }
          merge = multiset_equal(out->group(*last), live.span());
        }
      }
      if (merge) {
        last->interval.end = slice.end;
        if (stats != nullptr) ++stats->merge_hits;
      } else {
        cursor[x] = out->EmitReserve(slice, outer_index,
                                     static_cast<uint32_t>(live_here));
      }
      if (stats != nullptr) ++stats->slices;
    }

    // Payload pass: one counting scatter over the (arrival-ordered) clip
    // list fills every reserved group span in arrival order.
    uint32_t* pool = out->pool_data();
    for (uint32_t k = 0; k < c; ++k) {
      const uint32_t j = item[k];
      for (uint32_t x = first[k]; x < past[k]; ++x) {
        const uint32_t cur = cursor[x];
        if (cur == kNoSlot) continue;
        pool[cur] = j;
        cursor[x] = cur + 1;
      }
    }
    if (timed) stats->payload_ns += NowNanos() - t1;
  }
  if (stats != nullptr) stats->tuples += static_cast<int64_t>(out->size());
}

/// Legacy allocating time-warp: the vector-of-vectors API kept as a shim
/// over TimeWarpInto for tests, callers outside the superstep hot path,
/// and as the measured baseline of bench/bench_warp_alloc.
template <typename S, typename M>
std::vector<WarpTuple> TimeWarp(  // lint:allow(vector: legacy allocating shim over TimeWarpInto)
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput flat;
  flat.Attach(&arena);
  TimeWarpInto<S, M>(outer, inner, &scratch, &flat);

  std::vector<WarpTuple> out;  // lint:allow(vector: legacy allocating shim over TimeWarpInto)
  out.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    const std::span<const uint32_t> group = flat.group(i);
    out.push_back({flat[i].interval, flat[i].outer_index,
                   std::vector<uint32_t>(group.begin(), group.end())});  // lint:allow(vector: legacy allocating shim over TimeWarpInto)
  }
  return out;
}

/// One output triple of the combining time-warp: the message group is
/// folded to a single payload during the sweep (§VI inline warp combiner),
/// so no per-tuple index vectors are materialized.
template <typename M>
struct CombinedWarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  M combined;
  uint32_t group_size = 0;
};

/// Time-warp with an inline combiner, into a reused output vector
/// (SuperstepVec<CombinedWarpTuple<M>> in the engines; any container with
/// the same interface works). Identical slicing to TimeWarpInto, but each
/// tuple carries fold(combine, values of the live group). The maximality
/// merge coalesces — in place, at emission — adjacent tuples with equal
/// state value and equal combined payload: the compute call sequence is
/// exactly what the non-combining warp plus a post-fold would produce for
/// commutative/associative combiners.
template <typename S, typename M, typename Combine, typename OutVec>
void TimeWarpCombineInto(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner, Combine&& combine,
    WarpScratch* scratch, OutVec* out, WarpStats* stats = nullptr) {
  out->clear();
  if (outer.empty() || inner.empty()) return;
  const SimdLevel simd =
      warp_internal::ResolveKernelLevel(outer.size(), inner.size());
  if (simd != SimdLevel::kScalar) {
    warp_internal::PrepareWarpSoA(inner, scratch);
  }
  if (stats != nullptr) stats->simd_lanes = SimdLanes(simd);

  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    const bool timed = stats != nullptr && stats->timed;
    const int64_t t0 = timed ? NowNanos() : 0;
    const bool any =
        warp_internal::BuildSlices(inner, entry.interval, scratch, simd, stats);
    const int64_t t1 = timed ? NowNanos() : 0;
    if (timed) stats->endpoint_ns += t1 - t0;
    if (!any) continue;
    const uint32_t outer_index =
        static_cast<uint32_t>(&entry - outer.data());

    const auto& item = scratch->item;
    const auto& bounds = scratch->bounds;
    const auto& first = scratch->first;
    const auto& past = scratch->past;
    const auto& live_count = scratch->live_count;
    const uint32_t c = static_cast<uint32_t>(item.size());
    const size_t num_slices = bounds.size() - 1;

    // Materialize per-slice live runs (arrival order) with one counting
    // scatter; its total work equals the folds below, so nothing here is
    // asymptotically extra. After the scatter, cursor[x] is the END of
    // slice x's run (its start is cursor[x] - live_count[x]).
    auto& cursor = scratch->cursor;
    auto& runs = scratch->live;
    cursor.ResizeUninitialized(num_slices);
    uint32_t total = 0;
    for (size_t x = 0; x < num_slices; ++x) {
      cursor[x] = total;
      total += static_cast<uint32_t>(live_count[x]);
    }
    runs.ResizeUninitialized(total);
    for (uint32_t k = 0; k < c; ++k) {
      const uint32_t j = item[k];
      for (uint32_t x = first[k]; x < past[k]; ++x) runs[cursor[x]++] = j;
    }

    for (size_t x = 0; x < num_slices; ++x) {
      const int32_t live_here = live_count[x];
      if (live_here == 0) continue;
      const Interval slice(bounds[x], bounds[x + 1]);
      const uint32_t run_end = cursor[x];
      const uint32_t run_begin = run_end - static_cast<uint32_t>(live_here);
      M folded = inner[runs[run_begin]].value;
      for (uint32_t i = run_begin + 1; i < run_end; ++i) {
        folded = combine(folded, inner[runs[i]].value);
      }
      CombinedWarpTuple<M>* last = out->empty() ? nullptr : &out->back();
      if (last != nullptr && last->interval.Meets(slice) &&
          outer[last->outer_index].value == outer[outer_index].value &&
          last->combined == folded) {
        last->interval.end = slice.end;
        last->group_size += static_cast<uint32_t>(live_here);
        if (stats != nullptr) ++stats->merge_hits;
      } else {
        out->push_back({slice, outer_index, std::move(folded),
                        static_cast<uint32_t>(live_here)});
      }
      if (stats != nullptr) ++stats->slices;
    }
    if (timed) stats->payload_ns += NowNanos() - t1;
  }
  if (stats != nullptr) stats->tuples += static_cast<int64_t>(out->size());
}

/// Legacy allocating combine-warp shim (tests and non-hot-path callers).
template <typename S, typename M, typename Combine>
std::vector<CombinedWarpTuple<M>> TimeWarpCombine(  // lint:allow(vector: legacy allocating shim over TimeWarpCombineInto)
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner, Combine&& combine) {
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  SuperstepVec<CombinedWarpTuple<M>> flat;
  flat.Attach(&arena);
  TimeWarpCombineInto<S, M>(outer, inner,
                            std::forward<Combine>(combine), &scratch,
                            &flat);
  std::vector<CombinedWarpTuple<M>> out;  // lint:allow(vector: legacy allocating shim over TimeWarpCombineInto)
  out.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) out.push_back(flat[i]);
  return out;
}

}  // namespace graphite

#endif  // GRAPHITE_ICM_WARP_H_
