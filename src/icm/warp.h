// The time-join and time-warp operators (paper §IV-B).
//
// Time-join (Soo/Snodgrass/Jensen, ICDE'94) intersects every (interval,
// value) pair of an outer and an inner set. Time-warp is a temporal
// self-join over the time-join: it slices time at the boundary points of
// the join results and, per slice, groups every inner value live in that
// slice with the (unique) outer value live there. Warp output drives one
// Compute invocation per tuple and guarantees (paper, Properties 1-4):
//   1. Valid inclusion    — every overlapping (state, message) pair appears
//                           at each shared time-point;
//   2. No invalid inclusion — nothing appears at a time-point where either
//                           side does not exist;
//   3. No duplication     — an outer value covers each of its time-points
//                           in at most one tuple;
//   4. Maximal            — adjacent/overlapping tuples with equal state
//                           value and equal message group are merged, so
//                           the user logic is invoked minimally often.
//
// The implementation is a plane sweep over endpoint events (the merge
// step of the paper's merge-sort aggregation [26]): O(m log m) time and
// O(m) space for m inner items, plus output.
#ifndef GRAPHITE_ICM_WARP_H_
#define GRAPHITE_ICM_WARP_H_

#include <algorithm>
#include <span>
#include <vector>

#include "temporal/interval.h"
#include "temporal/interval_map.h"
#include "util/status.h"

namespace graphite {

/// One (interval, value) item of the inner set (e.g. a received message).
template <typename V>
struct TemporalItem {
  Interval interval;
  V value;

  bool operator==(const TemporalItem& other) const {
    return interval == other.interval && value == other.value;
  }
};

/// One output triple of the time-join.
template <typename S, typename M>
struct TimeJoinTuple {
  Interval interval;      ///< tau_s intersect tau_m.
  uint32_t outer_index;   ///< Index into the outer set.
  uint32_t inner_index;   ///< Index into the inner set.
};

/// One output triple of the time-warp: a maximal sub-interval, the outer
/// value live there (by index), and the group of inner values live there
/// (by index, in arrival order).
struct WarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  std::vector<uint32_t> inner_indices;
};

/// Time-join: all pairwise intersections, ordered by (outer, inner) index.
/// The outer set must be temporally partitioned (disjoint intervals).
template <typename S, typename M>
std::vector<TimeJoinTuple<S, M>> TimeJoin(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  std::vector<TimeJoinTuple<S, M>> out;
  for (uint32_t i = 0; i < outer.size(); ++i) {
    for (uint32_t j = 0; j < inner.size(); ++j) {
      const Interval isect = outer[i].interval.Intersect(inner[j].interval);
      if (isect.IsValid()) out.push_back({isect, i, j});
    }
  }
  return out;
}

namespace warp_internal {

/// Endpoint event of the sweep: at `time`, inner item `index` starts
/// (kStart) or stops (kEnd) being live within the current outer entry.
struct Event {
  TimePoint time;
  uint32_t index;
  bool is_start;
};

}  // namespace warp_internal

/// Time-warp over a temporally partitioned outer set and an arbitrary
/// inner set. `state_equal(i, j)` compares outer values and
/// `group_equal(a, b)` compares message groups (vectors of inner indices)
/// by value — both are needed only for the maximality merge.
///
/// The generic entry point below (TimeWarp) supplies equality from
/// operator== on the value types; engines with combiners use this raw form
/// to fold groups on the fly.
template <typename S, typename M>
std::vector<WarpTuple> TimeWarp(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner) {
  std::vector<WarpTuple> out;
  if (outer.empty() || inner.empty()) return out;

  // Sort inner items by start once; entries of `outer` are already ordered
  // and disjoint, so we can advance a window over the inner set.
  std::vector<uint32_t> by_start(inner.size());
  for (uint32_t j = 0; j < inner.size(); ++j) by_start[j] = j;
  std::sort(by_start.begin(), by_start.end(), [&](uint32_t a, uint32_t b) {
    if (inner[a].interval.start != inner[b].interval.start) {
      return inner[a].interval.start < inner[b].interval.start;
    }
    return a < b;
  });

  std::vector<warp_internal::Event> events;
  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    // Collect boundary events of inner items clipped to this outer entry.
    events.clear();
    for (uint32_t j : by_start) {
      const Interval clipped = inner[j].interval.Intersect(entry.interval);
      if (clipped.IsEmpty()) {
        if (inner[j].interval.start >= entry.interval.end) break;
        continue;
      }
      events.push_back({clipped.start, j, true});
      events.push_back({clipped.end, j, false});
    }
    if (events.empty()) continue;
    std::sort(events.begin(), events.end(),
              [](const warp_internal::Event& a,
                 const warp_internal::Event& b) {
                if (a.time != b.time) return a.time < b.time;
                // Ends before starts so zero-length gaps do not arise;
                // ties otherwise keep arrival order.
                if (a.is_start != b.is_start) return !a.is_start;
                return a.index < b.index;
              });

    // Sweep: between consecutive distinct event times, the live group is
    // constant; emit one tuple per non-empty slice.
    std::vector<uint32_t> live;  // inner indices, kept in arrival order
    const uint32_t outer_index =
        static_cast<uint32_t>(&entry - outer.data());
    size_t k = 0;
    TimePoint prev = events.front().time;
    while (k < events.size()) {
      const TimePoint now = events[k].time;
      if (now > prev && !live.empty()) {
        WarpTuple tuple;
        tuple.interval = Interval(prev, now);
        tuple.outer_index = outer_index;
        tuple.inner_indices = live;
        out.push_back(std::move(tuple));
      }
      while (k < events.size() && events[k].time == now) {
        const auto& ev = events[k];
        if (ev.is_start) {
          auto pos = std::lower_bound(live.begin(), live.end(), ev.index);
          live.insert(pos, ev.index);
        } else {
          auto pos = std::lower_bound(live.begin(), live.end(), ev.index);
          GRAPHITE_CHECK(pos != live.end() && *pos == ev.index);
          live.erase(pos);
        }
        ++k;
      }
      prev = now;
    }
    GRAPHITE_CHECK(live.empty());
  }

  // Maximality merge: adjacent tuples with equal outer value and equal
  // message group (compared by value, per the formal definition) coalesce.
  std::vector<WarpTuple> merged;
  merged.reserve(out.size());
  // Multiset equality of the groups' message values (only == required of
  // the payload type). Groups are small, so the quadratic matching is
  // cheaper than hashing or sorting payloads.
  std::vector<char> used;
  auto groups_equal = [&](const WarpTuple& a, const WarpTuple& b) {
    if (a.inner_indices.size() != b.inner_indices.size()) return false;
    used.assign(b.inner_indices.size(), 0);
    for (uint32_t ai : a.inner_indices) {
      bool matched = false;
      for (size_t j = 0; j < b.inner_indices.size(); ++j) {
        if (used[j]) continue;
        if (ai == b.inner_indices[j] ||
            inner[ai].value == inner[b.inner_indices[j]].value) {
          used[j] = 1;
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    return true;
  };
  for (WarpTuple& t : out) {
    if (!merged.empty()) {
      WarpTuple& prev = merged.back();
      if (prev.interval.Meets(t.interval) &&
          outer[prev.outer_index].value == outer[t.outer_index].value &&
          groups_equal(prev, t)) {
        prev.interval.end = t.interval.end;
        continue;
      }
    }
    merged.push_back(std::move(t));
  }
  return merged;
}

/// One output triple of the combining time-warp: the message group is
/// folded to a single payload during the sweep (§VI inline warp combiner),
/// so no per-tuple index vectors are materialized.
template <typename M>
struct CombinedWarpTuple {
  Interval interval;
  uint32_t outer_index = 0;
  M combined;
  uint32_t group_size = 0;
};

/// Time-warp with an inline combiner: identical slicing to TimeWarp, but
/// each tuple carries fold(combine, values of the live group). The
/// maximality merge coalesces adjacent tuples with equal state value and
/// equal combined payload — the compute call sequence is exactly what the
/// non-combining warp plus a post-fold would produce for
/// commutative/associative combiners.
template <typename S, typename M, typename Combine>
std::vector<CombinedWarpTuple<M>> TimeWarpCombine(
    std::span<const typename IntervalMap<S>::Entry> outer,
    std::span<const TemporalItem<M>> inner, Combine&& combine) {
  std::vector<CombinedWarpTuple<M>> out;
  if (outer.empty() || inner.empty()) return out;

  std::vector<uint32_t> by_start(inner.size());
  for (uint32_t j = 0; j < inner.size(); ++j) by_start[j] = j;
  std::sort(by_start.begin(), by_start.end(), [&](uint32_t a, uint32_t b) {
    if (inner[a].interval.start != inner[b].interval.start) {
      return inner[a].interval.start < inner[b].interval.start;
    }
    return a < b;
  });

  std::vector<warp_internal::Event> events;
  std::vector<uint32_t> live;
  for (const auto& entry : outer) {
    GRAPHITE_CHECK(entry.interval.IsValid());
    events.clear();
    for (uint32_t j : by_start) {
      const Interval clipped = inner[j].interval.Intersect(entry.interval);
      if (clipped.IsEmpty()) {
        if (inner[j].interval.start >= entry.interval.end) break;
        continue;
      }
      events.push_back({clipped.start, j, true});
      events.push_back({clipped.end, j, false});
    }
    if (events.empty()) continue;
    std::sort(events.begin(), events.end(),
              [](const warp_internal::Event& a,
                 const warp_internal::Event& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.is_start != b.is_start) return !a.is_start;
                return a.index < b.index;
              });
    live.clear();
    const uint32_t outer_index = static_cast<uint32_t>(&entry - outer.data());
    size_t k = 0;
    TimePoint prev = events.front().time;
    while (k < events.size()) {
      const TimePoint now = events[k].time;
      if (now > prev && !live.empty()) {
        CombinedWarpTuple<M> tuple;
        tuple.interval = Interval(prev, now);
        tuple.outer_index = outer_index;
        tuple.combined = inner[live[0]].value;
        for (size_t i = 1; i < live.size(); ++i) {
          tuple.combined = combine(tuple.combined, inner[live[i]].value);
        }
        tuple.group_size = static_cast<uint32_t>(live.size());
        out.push_back(std::move(tuple));
      }
      while (k < events.size() && events[k].time == now) {
        const auto& ev = events[k];
        auto pos = std::lower_bound(live.begin(), live.end(), ev.index);
        if (ev.is_start) {
          live.insert(pos, ev.index);
        } else {
          GRAPHITE_CHECK(pos != live.end() && *pos == ev.index);
          live.erase(pos);
        }
        ++k;
      }
      prev = now;
    }
    GRAPHITE_CHECK(live.empty());
  }

  // Maximality merge on (state value, combined payload).
  std::vector<CombinedWarpTuple<M>> merged;
  merged.reserve(out.size());
  for (CombinedWarpTuple<M>& t : out) {
    if (!merged.empty()) {
      CombinedWarpTuple<M>& prev = merged.back();
      if (prev.interval.Meets(t.interval) &&
          outer[prev.outer_index].value == outer[t.outer_index].value &&
          prev.combined == t.combined) {
        prev.interval.end = t.interval.end;
        prev.group_size += t.group_size;
        continue;
      }
    }
    merged.push_back(std::move(t));
  }
  return merged;
}

}  // namespace graphite

#endif  // GRAPHITE_ICM_WARP_H_
