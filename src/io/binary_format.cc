#include "io/binary_format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "graph/builder.h"
#include "icm/message.h"
#include "util/serde.h"

namespace graphite {

namespace {

constexpr char kMagic[4] = {'G', 'T', 'G', '1'};

// Sorted copies keep the delta coding small and the output canonical.
template <typename T, typename Key>
std::vector<T> Sorted(std::vector<T> items, Key&& key) {
  std::sort(items.begin(), items.end(),
            [&](const T& a, const T& b) { return key(a) < key(b); });
  return items;
}

struct PropRecord {
  int64_t entity;
  LabelId label;
  Interval interval;
  PropValue value;
};

void WriteProps(Writer& w, const std::vector<PropRecord>& props) {
  w.WriteU64(props.size());
  int64_t prev = 0;
  for (const PropRecord& p : props) {
    w.WriteI64(p.entity - prev);
    prev = p.entity;
    w.WriteU64(p.label);
    WriteInterval(w, p.interval);
    w.WriteI64(p.value);
  }
}

}  // namespace

uint64_t Fnv1a64(const std::string& bytes, size_t offset) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = offset; i < bytes.size(); ++i) {
    h ^= static_cast<uint8_t>(bytes[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string WriteBinaryGraph(const TemporalGraph& g) {
  Writer payload;
  payload.WriteI64(g.horizon());

  payload.WriteU64(g.num_labels());
  for (LabelId l = 0; l < g.num_labels(); ++l) {
    payload.WriteBytes(g.LabelName(l));
  }

  // Vertices, sorted by external id.
  struct V {
    VertexId vid;
    Interval interval;
  };
  std::vector<V> vertices;
  vertices.reserve(g.num_vertices());
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    vertices.push_back({g.vertex_id(v), g.vertex_interval(v)});
  }
  vertices = Sorted(std::move(vertices), [](const V& v) { return v.vid; });
  payload.WriteU64(vertices.size());
  int64_t prev = 0;
  for (const V& v : vertices) {
    payload.WriteI64(v.vid - prev);
    prev = v.vid;
    WriteInterval(payload, v.interval);
  }

  // Edges, sorted by external id.
  struct E {
    EdgeId eid;
    VertexId src;
    VertexId dst;
    Interval interval;
  };
  std::vector<E> edges;
  edges.reserve(g.num_edges());
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    edges.push_back(
        {e.eid, g.vertex_id(e.src), g.vertex_id(e.dst), e.interval});
  }
  edges = Sorted(std::move(edges), [](const E& e) { return e.eid; });
  payload.WriteU64(edges.size());
  prev = 0;
  for (const E& e : edges) {
    payload.WriteI64(e.eid - prev);
    prev = e.eid;
    payload.WriteI64(e.src);
    payload.WriteI64(e.dst);
    WriteInterval(payload, e.interval);
  }

  // Properties, grouped by entity id.
  std::vector<PropRecord> vprops, eprops;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& [label, map] : g.VertexProperties(v)) {
      for (const auto& entry : map.entries()) {
        vprops.push_back({g.vertex_id(v), label, entry.interval, entry.value});
      }
    }
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    for (const auto& [label, map] : g.EdgeProperties(pos)) {
      for (const auto& entry : map.entries()) {
        eprops.push_back({g.edge(pos).eid, label, entry.interval, entry.value});
      }
    }
  }
  auto key = [](const PropRecord& p) {
    return std::make_tuple(p.entity, p.label, p.interval.start);
  };
  std::sort(vprops.begin(), vprops.end(),
            [&](const PropRecord& a, const PropRecord& b) {
              return key(a) < key(b);
            });
  std::sort(eprops.begin(), eprops.end(),
            [&](const PropRecord& a, const PropRecord& b) {
              return key(a) < key(b);
            });
  WriteProps(payload, vprops);
  WriteProps(payload, eprops);

  // Envelope.
  std::string out(kMagic, sizeof(kMagic));
  Writer head;
  head.WriteU64(Fnv1a64(payload.buffer()));
  out += head.buffer();
  out += payload.buffer();
  return out;
}

Result<TemporalGraph> ReadBinaryGraph(const std::string& bytes) {
  if (bytes.size() < 5 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("not a graphite binary graph (bad magic)");
  }
  size_t pos = 4;
  uint64_t checksum = 0;
  if (!GetVarint64(bytes, &pos, &checksum)) {
    return Status::DataLoss("truncated header at byte " + std::to_string(pos) +
                            " of " + std::to_string(bytes.size()));
  }
  if (Fnv1a64(bytes, pos) != checksum) {
    return Status::DataLoss("checksum mismatch (corrupt file)");
  }
  // The checksum already vouched for the payload, but every read below
  // still carries byte-offset context (Try* reads): a hash collision or a
  // decoder bug surfaces as a located DataLoss, never a process abort.
  // Offsets in errors are relative to the payload (after the header).
  const std::string payload = bytes.substr(pos);
  Reader r(payload);

  TemporalGraphBuilder builder;
  BuilderOptions options;
  GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&options.horizon));

  uint64_t num_labels = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&num_labels));
  std::vector<std::string> labels;
  for (uint64_t i = 0; i < num_labels; ++i) {
    std::string name;
    GRAPHITE_RETURN_NOT_OK(r.TryReadBytes(&name));
    labels.push_back(std::move(name));
  }

  uint64_t num_vertices = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&num_vertices));
  int64_t prev = 0;
  int64_t delta = 0;
  Interval iv;
  for (uint64_t i = 0; i < num_vertices; ++i) {
    GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&delta));
    prev += delta;
    GRAPHITE_RETURN_NOT_OK(TryReadInterval(r, &iv));
    builder.AddVertex(prev, iv);
  }
  uint64_t num_edges = 0;
  GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&num_edges));
  prev = 0;
  for (uint64_t i = 0; i < num_edges; ++i) {
    GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&delta));
    prev += delta;
    VertexId src = 0;
    VertexId dst = 0;
    GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&src));
    GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&dst));
    GRAPHITE_RETURN_NOT_OK(TryReadInterval(r, &iv));
    builder.AddEdge(prev, src, dst, iv);
  }
  for (int kind = 0; kind < 2; ++kind) {
    uint64_t count = 0;
    GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&count));
    prev = 0;
    for (uint64_t i = 0; i < count; ++i) {
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&delta));
      prev += delta;
      uint64_t label = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadU64(&label));
      if (label >= labels.size()) {
        return Status::DataLoss("bad label index in property record at byte " +
                                std::to_string(r.position()));
      }
      GRAPHITE_RETURN_NOT_OK(TryReadInterval(r, &iv));
      int64_t value = 0;
      GRAPHITE_RETURN_NOT_OK(r.TryReadI64(&value));
      if (kind == 0) {
        builder.SetVertexProperty(prev, labels[label], iv, value);
      } else {
        builder.SetEdgeProperty(prev, labels[label], iv, value);
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("trailing bytes after graph payload at byte " +
                            std::to_string(r.position()));
  }
  return builder.Build(options);
}

Status WriteBinaryGraphFile(const TemporalGraph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string bytes = WriteBinaryGraph(g);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<TemporalGraph> ReadBinaryGraphFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return ReadBinaryGraph(bytes);
}

}  // namespace graphite
