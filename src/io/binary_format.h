// Compact binary serialization for temporal property graphs: varint
// delta-coded entity records with the interval codec, a versioned header
// and an FNV-1a payload checksum. Typically 4-8x smaller than the text
// format and the preferred at-rest representation for large datasets.
//
// Layout:
//   magic "GTG1" | u64 checksum(payload) | payload
//   payload := horizon
//            | #labels, label strings
//            | #vertices, per vertex: delta(vid), interval
//            | #edges,    per edge:   delta(eid), src vid, dst vid, interval
//            | vertex-prop records, edge-prop records
// Entities are sorted by id so deltas stay small.
#ifndef GRAPHITE_IO_BINARY_FORMAT_H_
#define GRAPHITE_IO_BINARY_FORMAT_H_

#include <string>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace graphite {

/// Serializes `g` to the binary format.
std::string WriteBinaryGraph(const TemporalGraph& g);

/// Parses a binary graph; validates magic, checksum and the temporal
/// constraints (via the builder).
Result<TemporalGraph> ReadBinaryGraph(const std::string& bytes);

/// Convenience file wrappers.
Status WriteBinaryGraphFile(const TemporalGraph& g, const std::string& path);
Result<TemporalGraph> ReadBinaryGraphFile(const std::string& path);

/// FNV-1a 64-bit hash (exposed for tests).
uint64_t Fnv1a64(const std::string& bytes, size_t offset = 0);

}  // namespace graphite

#endif  // GRAPHITE_IO_BINARY_FORMAT_H_
