#include "io/text_format.h"

#include <cstdio>
#include <sstream>

#include "graph/builder.h"

namespace graphite {

namespace {

std::string TpToString(TimePoint t) {
  if (t == kTimeMax) return "inf";
  if (t == kTimeMin) return "-inf";
  return std::to_string(t);
}

bool ParseTp(const std::string& tok, TimePoint* out) {
  if (tok == "inf" || tok == "+inf") {
    *out = kTimeMax;
    return true;
  }
  if (tok == "-inf") {
    *out = kTimeMin;
    return true;
  }
  try {
    size_t pos = 0;
    const long long v = std::stoll(tok, &pos);
    if (pos != tok.size()) return false;
    *out = static_cast<TimePoint>(v);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string WriteTextGraph(const TemporalGraph& g) {
  std::ostringstream out;
  out << "# graphite temporal graph\n";
  out << "H " << g.horizon() << "\n";
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    const Interval& iv = g.vertex_interval(v);
    out << "V " << g.vertex_id(v) << " " << TpToString(iv.start) << " "
        << TpToString(iv.end) << "\n";
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    out << "E " << e.eid << " " << g.vertex_id(e.src) << " "
        << g.vertex_id(e.dst) << " " << TpToString(e.interval.start) << " "
        << TpToString(e.interval.end) << "\n";
  }
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (const auto& [label, map] : g.VertexProperties(v)) {
      for (const auto& entry : map.entries()) {
        out << "VP " << g.vertex_id(v) << " " << g.LabelName(label) << " "
            << TpToString(entry.interval.start) << " "
            << TpToString(entry.interval.end) << " " << entry.value << "\n";
      }
    }
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    for (const auto& [label, map] : g.EdgeProperties(pos)) {
      for (const auto& entry : map.entries()) {
        out << "EP " << g.edge(pos).eid << " " << g.LabelName(label) << " "
            << TpToString(entry.interval.start) << " "
            << TpToString(entry.interval.end) << " " << entry.value << "\n";
      }
    }
  }
  return out.str();
}

Result<TemporalGraph> ReadTextGraph(const std::string& text) {
  TemporalGraphBuilder builder;
  BuilderOptions options;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto error = [&lineno](const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                   msg);
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    auto read_interval = [&ls](Interval* iv) {
      std::string a, b;
      if (!(ls >> a >> b)) return false;
      return ParseTp(a, &iv->start) && ParseTp(b, &iv->end) && iv->IsValid();
    };
    if (kind == "H") {
      if (!(ls >> options.horizon) || options.horizon <= 0) {
        return error("bad horizon");
      }
    } else if (kind == "V") {
      VertexId vid;
      Interval iv;
      if (!(ls >> vid) || !read_interval(&iv)) return error("bad V record");
      builder.AddVertex(vid, iv);
    } else if (kind == "E") {
      EdgeId eid;
      VertexId src, dst;
      Interval iv;
      if (!(ls >> eid >> src >> dst) || !read_interval(&iv)) {
        return error("bad E record");
      }
      builder.AddEdge(eid, src, dst, iv);
    } else if (kind == "VP" || kind == "EP") {
      int64_t id;
      std::string label;
      Interval iv;
      PropValue value;
      if (!(ls >> id >> label) || !read_interval(&iv) || !(ls >> value)) {
        return error("bad " + kind + " record");
      }
      if (kind == "VP") {
        builder.SetVertexProperty(id, label, iv, value);
      } else {
        builder.SetEdgeProperty(id, label, iv, value);
      }
    } else {
      return error("unknown record kind '" + kind + "'");
    }
  }
  return builder.Build(options);
}

Status WriteTextGraphFile(const TemporalGraph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const std::string text = WriteTextGraph(g);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<TemporalGraph> ReadTextGraphFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ReadTextGraph(text);
}

}  // namespace graphite
