// Line-oriented text format for temporal property graphs, so examples and
// user pipelines can persist and exchange datasets.
//
//   # comment / blank lines ignored
//   H  <horizon>
//   V  <vid> <start> <end>
//   E  <eid> <src-vid> <dst-vid> <start> <end>
//   VP <vid> <label> <start> <end> <value>
//   EP <eid> <label> <start> <end> <value>
//
// Time-points accept "inf" / "-inf". Labels must not contain whitespace.
#ifndef GRAPHITE_IO_TEXT_FORMAT_H_
#define GRAPHITE_IO_TEXT_FORMAT_H_

#include <string>

#include "graph/temporal_graph.h"
#include "util/status.h"

namespace graphite {

/// Serializes a graph to the text format.
std::string WriteTextGraph(const TemporalGraph& g);

/// Parses the text format (validates Constraints 1-3 via the builder).
Result<TemporalGraph> ReadTextGraph(const std::string& text);

/// Convenience file wrappers.
Status WriteTextGraphFile(const TemporalGraph& g, const std::string& path);
Result<TemporalGraph> ReadTextGraphFile(const std::string& path);

}  // namespace graphite

#endif  // GRAPHITE_IO_TEXT_FORMAT_H_
