#include "query/temporal_query.h"

#include <algorithm>
#include <unordered_set>

#include "graph/builder.h"

namespace graphite {

namespace {

// Rebuilds a temporal graph from entity keep/clip decisions. `clip` is
// the window lifespans are intersected with (Interval::All() = no clip).
TemporalGraph Rebuild(
    const TemporalGraph& g, const Interval& clip,
    const std::function<bool(VertexIdx)>& keep_vertex,
    const std::function<bool(EdgePos)>& keep_edge) {
  TemporalGraphBuilder builder;
  std::vector<uint8_t> vertex_kept(g.num_vertices(), 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (!keep_vertex(v)) continue;
    const Interval span = g.vertex_interval(v).Intersect(clip);
    if (span.IsEmpty()) continue;
    vertex_kept[v] = 1;
    builder.AddVertex(g.vertex_id(v), span);
    for (const auto& [label, map] : g.VertexProperties(v)) {
      for (const auto& entry : map.entries()) {
        const Interval pi = entry.interval.Intersect(span);
        if (pi.IsValid()) {
          builder.SetVertexProperty(g.vertex_id(v), g.LabelName(label), pi,
                                    entry.value);
        }
      }
    }
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    if (!vertex_kept[e.src] || !vertex_kept[e.dst] || !keep_edge(pos)) {
      continue;
    }
    // The edge must fit inside both clipped endpoint lifespans.
    Interval span = e.interval.Intersect(clip);
    span = span.Intersect(g.vertex_interval(e.src).Intersect(clip));
    span = span.Intersect(g.vertex_interval(e.dst).Intersect(clip));
    if (span.IsEmpty()) continue;
    builder.AddEdge(e.eid, g.vertex_id(e.src), g.vertex_id(e.dst), span);
    for (const auto& [label, map] : g.EdgeProperties(pos)) {
      for (const auto& entry : map.entries()) {
        const Interval pi = entry.interval.Intersect(span);
        if (pi.IsValid()) {
          builder.SetEdgeProperty(e.eid, g.LabelName(label), pi, entry.value);
        }
      }
    }
  }
  BuilderOptions options;
  options.horizon = g.horizon();
  auto result = builder.Build(options);
  GRAPHITE_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace

bool TemporalPredicate::Matches(const Interval& lifespan) const {
  switch (kind) {
    case Kind::kIntersects:
      return lifespan.Intersects(window);
    case Kind::kContainedIn:
      return lifespan.ContainedIn(window);
    case Kind::kContains:
      return window.ContainedIn(lifespan);
    case Kind::kAllen:
      return Classify(lifespan, window) == relation;
  }
  return false;
}

TemporalGraph TemporalSelect(const TemporalGraph& g,
                             const TemporalPredicate& pred) {
  return Rebuild(
      g, Interval::All(),
      [&](VertexIdx v) { return pred.Matches(g.vertex_interval(v)); },
      [&](EdgePos pos) { return pred.Matches(g.edge(pos).interval); });
}

TemporalGraph TimeSlice(const TemporalGraph& g, const Interval& window) {
  GRAPHITE_CHECK(window.IsValid());
  return Rebuild(
      g, window, [](VertexIdx) { return true; },
      [](EdgePos) { return true; });
}

TemporalGraph TemporalSubgraph(const TemporalGraph& g,
                               const SubgraphPredicates& preds) {
  return Rebuild(
      g, Interval::All(),
      [&](VertexIdx v) { return !preds.vertex || preds.vertex(g, v); },
      [&](EdgePos pos) { return !preds.edge || preds.edge(g, pos); });
}

TemporalHistogram CountOverTime(const TemporalGraph& g) {
  TemporalHistogram h;
  h.vertices.assign(static_cast<size_t>(g.horizon()), 0);
  h.edges.assign(static_cast<size_t>(g.horizon()), 0);
  auto bump = [&](std::vector<int64_t>& hist, const Interval& span) {
    const Interval clipped = g.ClipToHorizon(span);
    for (TimePoint t = clipped.start; t < clipped.end; ++t) {
      ++hist[static_cast<size_t>(t)];
    }
  };
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    bump(h.vertices, g.vertex_interval(v));
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    bump(h.edges, g.edge(pos).interval);
  }
  return h;
}

PropertyStats AggregateEdgeProperty(const TemporalGraph& g,
                                    const std::string& label,
                                    const Interval& window) {
  PropertyStats stats;
  const auto label_id = g.LabelIdOf(label);
  if (!label_id) return stats;
  double sum = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const auto* map = g.EdgeProperty(pos, *label_id);
    if (map == nullptr) continue;
    map->ForEachIntersecting(window, [&](const Interval& iv, PropValue v) {
      const Interval clipped = g.ClipToHorizon(iv);
      if (clipped.IsEmpty()) return;
      const int64_t points = clipped.end - clipped.start;
      if (stats.count == 0) {
        stats.min = stats.max = v;
      } else {
        stats.min = std::min(stats.min, v);
        stats.max = std::max(stats.max, v);
      }
      stats.count += points;
      sum += static_cast<double>(v) * static_cast<double>(points);
    });
  }
  if (stats.count > 0) sum /= static_cast<double>(stats.count);
  stats.mean = sum;
  return stats;
}

TimePoint FirstTimeWhere(
    const TemporalGraph& g,
    const std::function<bool(int64_t, int64_t)>& pred) {
  const TemporalHistogram h = CountOverTime(g);
  for (TimePoint t = 0; t < g.horizon(); ++t) {
    if (pred(h.vertices[static_cast<size_t>(t)],
             h.edges[static_cast<size_t>(t)])) {
      return t;
    }
  }
  return -1;
}

}  // namespace graphite
