// Temporal query layer (paper §VIII future work: "offer query capabilities
// over temporal property graphs"). A small set of composable, principled
// operators in the spirit of the Temporal Graph Algebra [7] the paper
// cites as complementary to ICM:
//
//   * TemporalSelect   — sigma: keep entities whose lifespan satisfies a
//                        temporal predicate (Allen relation vs a window).
//   * TimeSlice        — the induced subgraph alive throughout a window
//                        (a multi-point generalization of snapshots).
//   * TemporalSubgraph — keep entities passing vertex/edge predicates
//                        (structure + property aware), fixing referential
//                        integrity afterwards.
//   * Aggregations     — vertex/edge counts and property statistics per
//                        time-point or per window.
//
// All operators produce valid temporal graphs (Constraints 1-3 preserved),
// so their outputs feed straight back into ICM runs.
#ifndef GRAPHITE_QUERY_TEMPORAL_QUERY_H_
#define GRAPHITE_QUERY_TEMPORAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/temporal_graph.h"
#include "temporal/allen.h"

namespace graphite {

/// Temporal predicate on an entity lifespan vs a query window.
struct TemporalPredicate {
  enum class Kind {
    kIntersects,   ///< lifespan intersects the window.
    kContainedIn,  ///< lifespan within the window.
    kContains,     ///< lifespan covers the whole window.
    kAllen,        ///< exact Allen relation vs the window.
  };
  Kind kind = Kind::kIntersects;
  Interval window;
  AllenRelation relation = AllenRelation::kEquals;  ///< kAllen only.

  bool Matches(const Interval& lifespan) const;

  static TemporalPredicate Intersects(const Interval& w) {
    return {Kind::kIntersects, w, AllenRelation::kEquals};
  }
  static TemporalPredicate ContainedIn(const Interval& w) {
    return {Kind::kContainedIn, w, AllenRelation::kEquals};
  }
  static TemporalPredicate Contains(const Interval& w) {
    return {Kind::kContains, w, AllenRelation::kEquals};
  }
  static TemporalPredicate Allen(AllenRelation r, const Interval& w) {
    return {Kind::kAllen, w, r};
  }
};

/// sigma_T: keeps vertices whose lifespan satisfies `pred`; edges survive
/// iff both endpoints survive AND the edge lifespan satisfies `pred`.
/// Lifespans are not altered (selection, not slicing).
TemporalGraph TemporalSelect(const TemporalGraph& g,
                             const TemporalPredicate& pred);

/// tau: the subgraph alive during `window`, with every lifespan and
/// property interval clipped to it. TimeSlice(g, [t, t+1)) is snapshot
/// S_t materialized as a (degenerate) temporal graph.
TemporalGraph TimeSlice(const TemporalGraph& g, const Interval& window);

/// Structure/property-aware filter. Predicates receive the graph and the
/// entity; a dropped vertex drops its incident edges (referential
/// integrity).
struct SubgraphPredicates {
  std::function<bool(const TemporalGraph&, VertexIdx)> vertex;  // null = all
  std::function<bool(const TemporalGraph&, EdgePos)> edge;      // null = all
};
TemporalGraph TemporalSubgraph(const TemporalGraph& g,
                               const SubgraphPredicates& preds);

/// Per-time-point entity counts over [0, horizon).
struct TemporalHistogram {
  std::vector<int64_t> vertices;  ///< [t] = alive vertices.
  std::vector<int64_t> edges;     ///< [t] = alive edges.
};
TemporalHistogram CountOverTime(const TemporalGraph& g);

/// Statistics of an edge property over a window (across all edges and all
/// time-points where the property holds a value).
struct PropertyStats {
  int64_t count = 0;  ///< Number of (edge, time-point) samples.
  PropValue min = 0;
  PropValue max = 0;
  double mean = 0;
};
PropertyStats AggregateEdgeProperty(const TemporalGraph& g,
                                    const std::string& label,
                                    const Interval& window);

/// Earliest time-point in [0, horizon) at which `pred` over the alive
/// vertex count holds; -1 if never. Example: first time the graph has at
/// least k alive vertices.
TimePoint FirstTimeWhere(const TemporalGraph& g,
                         const std::function<bool(int64_t vertices,
                                                  int64_t edges)>& pred);

}  // namespace graphite

#endif  // GRAPHITE_QUERY_TEMPORAL_QUERY_H_
