#include "server/graph_registry.h"

namespace graphite {

uint64_t GraphRegistry::Add(const std::string& name, TemporalGraph g) {
  MutexLock lock(mu_);
  const uint64_t epoch = ++epochs_[name];
  graphs_[name] =
      std::make_shared<ResidentGraph>(name, epoch, std::move(g));
  return epoch;
}

std::shared_ptr<ResidentGraph> GraphRegistry::Get(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

bool GraphRegistry::Drop(const std::string& name) {
  MutexLock lock(mu_);
  return graphs_.erase(name) > 0;
}

std::vector<ResidentGraphInfo> GraphRegistry::List() const {
  MutexLock lock(mu_);
  std::vector<ResidentGraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) {
    const TemporalGraph& g = entry->workload.graph();
    out.push_back({name, entry->epoch, g.num_vertices(), g.num_edges(),
                   g.horizon()});
  }
  return out;
}

size_t GraphRegistry::size() const {
  MutexLock lock(mu_);
  return graphs_.size();
}

}  // namespace graphite
