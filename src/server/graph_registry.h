// Resident-graph registry: the serving layer keeps partitioned
// TemporalGraphs (wrapped in algorithm Workloads, so derived structures —
// reversed / undirected / transformed graphs — are built once and reused
// across requests) alive across requests instead of re-loading per run.
//
// Entries are handed out as shared_ptr so an in-flight job keeps its graph
// alive across a concurrent drop/reload; each load bumps a per-name epoch
// that the result cache keys embed, so stale cached payloads can never be
// served for a replaced graph.
//
// The registry itself is thread-safe. A ResidentGraph's Workload is NOT:
// its lazy derived-graph builders race if two runs touch the same entry
// concurrently, which is exactly why the JobScheduler serializes jobs
// per graph (one at a time per graph, overlap across graphs).
#ifndef GRAPHITE_SERVER_GRAPH_REGISTRY_H_
#define GRAPHITE_SERVER_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/runners.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace graphite {

struct ResidentGraph {
  std::string name;
  uint64_t epoch = 0;  ///< Bumped on every (re)load of this name.
  Workload workload;

  ResidentGraph(std::string n, uint64_t e, TemporalGraph g)
      : name(std::move(n)), epoch(e), workload(std::move(g)) {}
};

struct ResidentGraphInfo {
  std::string name;
  uint64_t epoch = 0;
  size_t vertices = 0;
  size_t edges = 0;
  TimePoint horizon = 0;
};

class GraphRegistry {
 public:
  /// Registers (or replaces) `name`; returns the new epoch.
  uint64_t Add(const std::string& name, TemporalGraph g);

  /// nullptr when absent. The returned entry stays valid (shared
  /// ownership) even if the name is dropped or replaced meanwhile.
  std::shared_ptr<ResidentGraph> Get(const std::string& name) const;

  /// True when the name was resident.
  bool Drop(const std::string& name);

  std::vector<ResidentGraphInfo> List() const;

  size_t size() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<ResidentGraph>> graphs_
      GRAPHITE_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> epochs_
      GRAPHITE_GUARDED_BY(mu_);  // survives drops
};

}  // namespace graphite

#endif  // GRAPHITE_SERVER_GRAPH_REGISTRY_H_
