#include "server/job_scheduler.h"

#include <algorithm>

#include "util/timer.h"

namespace graphite {

JobScheduler::JobScheduler(QueryService* service, SchedulerOptions options)
    : service_(service), options_(options) {
  workers_.reserve(static_cast<size_t>(std::max(options_.num_threads, 0)));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobScheduler::~JobScheduler() { Stop(); }

Status JobScheduler::Submit(QueryRequest req,
                            std::function<void(std::string)> done) {
  if (!QueryService::IsDataOp(req.op)) {
    return Status::InvalidArgument("not a data op: " + req.op);
  }
  // Cache fast path: answered inline on the submitting thread, no queue,
  // no supersteps. Registry and cache are thread-safe, so this never
  // touches a Workload and needs no per-graph serialization.
  if (auto hit = service_->TryServeFromCache(req)) {
    {
      MutexLock lock(mu_);
      if (stopping_) {
        return Status::OutOfRange("scheduler stopped");
      }
      ++submitted_;
      ++fastpath_hits_;
    }
    done(*hit);
    return Status::OK();
  }
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::OutOfRange("scheduler stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      ++rejected_;
      return Status::OutOfRange(
          "admission queue full (" + std::to_string(queue_.size()) +
          " queued)");
    }
    ++submitted_;
    queue_.push_back(Job{std::move(req), std::move(done), NowNanos()});
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

bool JobScheduler::AnyRunnable() const {
  for (const Job& j : queue_) {
    if (busy_graphs_.count(j.req.graph) == 0) return true;
  }
  return false;
}

bool JobScheduler::PickRunnable(Job* out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (busy_graphs_.count(it->req.graph) != 0) continue;
    *out = std::move(*it);
    queue_.erase(it);
    busy_graphs_.insert(out->req.graph);
    ++running_;
    return true;
  }
  return false;
}

void JobScheduler::RunJob(Job job) {
  const int64_t queue_wait_ns = NowNanos() - job.enqueued_ns;
  ExecStats stats;
  std::string response = service_->Execute(job.req, queue_wait_ns, &stats);
  job.done(std::move(response));
  // Counters must land in the same critical section that releases the
  // graph and wakes Drain(): a stats() read right after Drain() returns
  // has to see every completed job accounted for.
  {
    MutexLock lock(mu_);
    busy_graphs_.erase(job.req.graph);
    --running_;
    ++completed_;
    queue_wait_ns_ += queue_wait_ns;
    run_ns_ += stats.run_ns;
    supersteps_ += stats.supersteps;
  }
  // Freeing the graph may make a queued job runnable for ANY worker.
  work_cv_.NotifyAll();
  drain_cv_.NotifyAll();
}

void JobScheduler::WorkerLoop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && !AnyRunnable()) work_cv_.Wait(mu_);
      if (stopping_) return;
      if (!PickRunnable(&job)) continue;
    }
    RunJob(std::move(job));
  }
}

void JobScheduler::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_ != 0) drain_cv_.Wait(mu_);
}

void JobScheduler::Stop() {
  std::deque<Job> abandoned;
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    abandoned.swap(queue_);
  }
  work_cv_.NotifyAll();
  for (Job& job : abandoned) {
    job.done(QueryService::ErrorResponse(
        job.req.id, job.req.op,
        Status::OutOfRange("server shutting down")));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  drain_cv_.NotifyAll();
}

bool JobScheduler::RunOneForTest() {
  Job job;
  {
    MutexLock lock(mu_);
    if (!PickRunnable(&job)) return false;
  }
  RunJob(std::move(job));
  return true;
}

SchedulerStats JobScheduler::stats() const {
  MutexLock lock(mu_);
  SchedulerStats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.fastpath_hits = fastpath_hits_;
  s.queue_wait_ns = queue_wait_ns_;
  s.run_ns = run_ns_;
  s.supersteps = supersteps_;
  s.queued = queue_.size();
  s.running = running_;
  return s;
}

}  // namespace graphite
