// Bounded-admission job scheduler multiplexing many small queries over
// the resident graphs.
//
// Policy (the serving contract the tests pin down):
//   * Admission — a bounded FIFO queue; a full queue rejects the request
//     with OutOfRange instead of blocking the connection thread.
//   * Cache fast path — Submit() first consults the ResultCache; a hit is
//     answered inline on the submitting thread, without touching the
//     queue or running a single superstep. This is what makes repeated
//     requests an order of magnitude faster than cold runs.
//   * Per-graph serialization — at most one job runs against a graph at
//     a time (a Workload's lazy derived-graph builders are not
//     thread-safe), while jobs on *different* graphs overlap freely
//     across the worker pool. Workers scan the queue FIFO and pick the
//     first runnable job, so a busy graph never blocks another graph's
//     queued work (no head-of-line blocking across graphs).
//
// `num_threads == 0` is an admission-only mode used by tests: requests
// queue (or get rejected) deterministically and are executed by explicit
// RunOneForTest() calls or failed by Stop().
#ifndef GRAPHITE_SERVER_JOB_SCHEDULER_H_
#define GRAPHITE_SERVER_JOB_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/query_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace graphite {

struct SchedulerOptions {
  int num_threads = 4;    ///< 0 = admission-only (tests).
  size_t max_queue = 128; ///< Queued (not yet running) job bound.
};

/// Aggregate counters for the `metrics` control op and the bench report.
struct SchedulerStats {
  int64_t submitted = 0;      ///< Accepted jobs (queued or fast-pathed).
  int64_t rejected = 0;       ///< Admission rejections (queue full).
  int64_t completed = 0;      ///< Jobs run to completion by workers.
  int64_t fastpath_hits = 0;  ///< Served inline from the cache in Submit.
  int64_t queue_wait_ns = 0;  ///< Total queue wait across completed jobs.
  int64_t run_ns = 0;         ///< Total execution time across completed jobs.
  int64_t supersteps = 0;     ///< Total supersteps across completed jobs.
  size_t queued = 0;          ///< Currently queued.
  size_t running = 0;         ///< Currently running.
};

class JobScheduler {
 public:
  /// `service` must outlive the scheduler.
  JobScheduler(QueryService* service, SchedulerOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Submits one data-op request. On the cache fast path `done` is
  /// invoked inline before Submit returns; otherwise the job is queued
  /// and `done` fires on a worker thread with the response line.
  /// Returns OutOfRange (without calling `done`) when the queue is full,
  /// and InvalidArgument for non-data ops.
  Status Submit(QueryRequest req, std::function<void(std::string)> done);

  /// Blocks until every accepted job has completed.
  void Drain();

  /// Stops workers; every still-queued job's `done` fires with an
  /// OutOfRange "server shutting down" error response. Idempotent.
  void Stop();

  /// Admission-only mode: runs the first runnable queued job on the
  /// calling thread. Returns false when nothing is runnable.
  bool RunOneForTest();

  SchedulerStats stats() const;

 private:
  struct Job {
    QueryRequest req;
    std::function<void(std::string)> done;
    int64_t enqueued_ns = 0;
  };

  void WorkerLoop();
  /// Pops the first queued job whose graph is idle.
  bool PickRunnable(Job* out) GRAPHITE_REQUIRES(mu_);
  /// True when some queued job's graph is idle (the worker wake predicate).
  bool AnyRunnable() const GRAPHITE_REQUIRES(mu_);
  void RunJob(Job job);

  QueryService* service_;
  const SchedulerOptions options_;

  mutable Mutex mu_;
  CondVar work_cv_;   ///< Signals workers: queue changed.
  CondVar drain_cv_;  ///< Signals Drain/Stop: job finished.
  std::deque<Job> queue_ GRAPHITE_GUARDED_BY(mu_);
  std::set<std::string> busy_graphs_ GRAPHITE_GUARDED_BY(mu_);
  size_t running_ GRAPHITE_GUARDED_BY(mu_) = 0;
  bool stopping_ GRAPHITE_GUARDED_BY(mu_) = false;

  int64_t submitted_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t rejected_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t completed_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t fastpath_hits_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t queue_wait_ns_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t run_ns_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t supersteps_ GRAPHITE_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> workers_;
};

}  // namespace graphite

#endif  // GRAPHITE_SERVER_JOB_SCHEDULER_H_
