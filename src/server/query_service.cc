#include "server/query_service.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "query/temporal_query.h"
#include "util/timer.h"

namespace graphite {

namespace {

// ---------------------------------------------------------------------
// Small helpers.
// ---------------------------------------------------------------------

std::string Lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

Result<Algorithm> ParseAlgorithmName(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    if (Lower(AlgorithmName(a)) == name) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

Result<Platform> ParsePlatformName(const std::string& name) {
  for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                     Platform::kTgb, Platform::kGof}) {
    if (Lower(PlatformName(p)) == name) return p;
  }
  return Status::InvalidArgument("unknown platform: " + name);
}

bool NeedsSource(Algorithm a) {
  switch (a) {
    case Algorithm::kBfs:
    case Algorithm::kSssp:
    case Algorithm::kEat:
    case Algorithm::kFast:
    case Algorithm::kTmst:
    case Algorithm::kRh:
      return true;
    default:
      return false;
  }
}

/// FNV-1a 64 over the canonical result content; the digest lets clients
/// compare results across requests without shipping full listings.
class Digest {
 public:
  void MixInt(int64_t v) {
    for (int i = 0; i < 8; ++i) {
      Mix(static_cast<uint8_t>(static_cast<uint64_t>(v) >> (8 * i)));
    }
  }
  void MixDouble(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    MixInt(static_cast<int64_t>(bits));
  }
  std::string Hex() const {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h_));
    return buf;
  }

 private:
  void Mix(uint8_t b) { h_ = (h_ ^ b) * 1099511628211ULL; }
  uint64_t h_ = 14695981039346656037ULL;
};

Result<RunConfig> BuildConfig(const QueryRequest& req,
                              const ServiceOptions& options) {
  RunConfig c;
  c.num_workers = req.workers > 0 ? req.workers : options.default_workers;
  c.source = req.source;
  c.target = req.target;
  c.deadline = req.deadline;
  c.runtime = options.runtime;
  if (req.mode.empty()) {
    c.use_threads = options.default_use_threads;
  } else if (req.mode == "sequential") {
    c.use_threads = false;
  } else if (req.mode == "spawn") {
    c.use_threads = true;
    c.runtime.scheduling = Scheduling::kSpawn;
  } else if (req.mode == "pool") {
    c.use_threads = true;
    c.runtime.scheduling = Scheduling::kPool;
  } else if (req.mode == "stealing") {
    c.use_threads = true;
    c.runtime.scheduling = Scheduling::kStealing;
  } else {
    return Status::InvalidArgument("unknown mode: " + req.mode);
  }
  return c;
}

// ---------------------------------------------------------------------
// Canonical result rendering. Every emitter also feeds the digest over
// ALL content (the listing may be capped by max_vertices; the digest
// never is).
// ---------------------------------------------------------------------

template <typename T, typename EmitValue, typename MixValue>
void EmitTemporal(const TemporalGraph& g, const TemporalResult<T>& result,
                  int64_t max_vertices, JsonWriter* w, Digest* digest,
                  EmitValue emit_value, MixValue mix_value) {
  int64_t nonempty = 0;
  int64_t listed = 0;
  bool truncated = false;
  w->Key("vertices").BeginArray();
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    const auto& entries = result[v].entries();
    if (entries.empty()) continue;
    ++nonempty;
    digest->MixInt(g.vertex_id(v));
    for (const auto& e : entries) {
      digest->MixInt(e.interval.start);
      digest->MixInt(e.interval.end);
      mix_value(digest, e.value);
    }
    if (max_vertices > 0 && listed >= max_vertices) {
      truncated = true;
      continue;
    }
    ++listed;
    w->BeginArray().Int(g.vertex_id(v)).BeginArray();
    for (const auto& e : entries) {
      w->BeginArray().Int(e.interval.start).Int(e.interval.end);
      emit_value(w, e.value);
      w->EndArray();
    }
    w->EndArray().EndArray();
  }
  w->EndArray();
  w->Key("reached").Int(nonempty);
  if (truncated) w->Key("truncated").Bool(true);
}

void EmitTemporalInt(const TemporalGraph& g,
                     const TemporalResult<int64_t>& r, int64_t max_vertices,
                     JsonWriter* w, Digest* d) {
  EmitTemporal(
      g, r, max_vertices, w, d,
      [](JsonWriter* jw, int64_t v) { jw->Int(v); },
      [](Digest* dg, int64_t v) { dg->MixInt(v); });
}

void EmitTemporalDouble(const TemporalGraph& g,
                        const TemporalResult<double>& r,
                        int64_t max_vertices, JsonWriter* w, Digest* d) {
  EmitTemporal(
      g, r, max_vertices, w, d,
      [](JsonWriter* jw, double v) { jw->Double(v); },
      [](Digest* dg, double v) { dg->MixDouble(v); });
}

void EmitTemporalByte(const TemporalGraph& g,
                      const TemporalResult<uint8_t>& r, int64_t max_vertices,
                      JsonWriter* w, Digest* d) {
  EmitTemporal(
      g, r, max_vertices, w, d,
      [](JsonWriter* jw, uint8_t v) { jw->Int(v); },
      [](Digest* dg, uint8_t v) { dg->MixInt(v); });
}

/// Scalar per-vertex results (EAT/FAST/LD); `absent` entries are skipped.
void EmitScalar(const TemporalGraph& g, const std::vector<int64_t>& values,
                int64_t absent, int64_t max_vertices, JsonWriter* w,
                Digest* digest) {
  int64_t reached = 0;
  int64_t listed = 0;
  bool truncated = false;
  w->Key("values").BeginArray();
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (values[v] == absent) continue;
    ++reached;
    digest->MixInt(g.vertex_id(v));
    digest->MixInt(values[v]);
    if (max_vertices > 0 && listed >= max_vertices) {
      truncated = true;
      continue;
    }
    ++listed;
    w->BeginArray().Int(g.vertex_id(v)).Int(values[v]).EndArray();
  }
  w->EndArray();
  w->Key("reached").Int(reached);
  if (truncated) w->Key("truncated").Bool(true);
}

Status RenderRun(const QueryRequest& req, Workload& w,
                 const ServiceOptions& options, JsonWriter* out,
                 RunMetrics* metrics) {
  auto alg = ParseAlgorithmName(req.alg);
  GRAPHITE_RETURN_NOT_OK(alg.status());
  auto platform = ParsePlatformName(req.platform);
  GRAPHITE_RETURN_NOT_OK(platform.status());
  if (!Supports(*platform, *alg)) {
    return Status::InvalidArgument(
        std::string(PlatformName(*platform)) + " does not support " +
        AlgorithmName(*alg) + " (TI: icm/msb/chl; TD: icm/tgb/gof)");
  }
  auto config = BuildConfig(req, options);
  GRAPHITE_RETURN_NOT_OK(config.status());
  const TemporalGraph& g = w.graph();
  if (NeedsSource(*alg) && !g.IndexOf(req.source)) {
    return Status::NotFound("source vertex " + std::to_string(req.source) +
                            " not in graph");
  }

  out->Key("type").String("run");
  out->Key("alg").String(AlgorithmName(*alg));
  out->Key("platform").String(PlatformName(*platform));
  Digest digest;
  switch (*alg) {
    case Algorithm::kBfs:
      EmitTemporalInt(g, RunBfsOn(w, *platform, *config, metrics),
                      req.max_vertices, out, &digest);
      break;
    case Algorithm::kWcc:
      EmitTemporalInt(g, RunWccOn(w, *platform, *config, metrics),
                      req.max_vertices, out, &digest);
      break;
    case Algorithm::kScc:
      EmitTemporalInt(g, RunSccOn(w, *platform, *config, metrics),
                      req.max_vertices, out, &digest);
      break;
    case Algorithm::kPr:
      EmitTemporalDouble(g, RunPrOn(w, *platform, *config, metrics),
                         req.max_vertices, out, &digest);
      break;
    case Algorithm::kSssp:
      EmitTemporalInt(g, RunSsspOn(w, *platform, *config, metrics),
                      req.max_vertices, out, &digest);
      break;
    case Algorithm::kEat:
      EmitScalar(g, RunEatOn(w, *platform, *config, metrics), kInfCost,
                 req.max_vertices, out, &digest);
      break;
    case Algorithm::kFast:
      EmitScalar(g, RunFastOn(w, *platform, *config, metrics), kInfCost,
                 req.max_vertices, out, &digest);
      break;
    case Algorithm::kLd:
      EmitScalar(g, RunLdOn(w, *platform, *config, metrics), kNegInf,
                 req.max_vertices, out, &digest);
      break;
    case Algorithm::kTmst: {
      const auto tree = RunTmstOn(w, *platform, *config, metrics);
      int64_t reached = 0;
      int64_t listed = 0;
      bool truncated = false;
      out->Key("values").BeginArray();
      for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
        if (tree[v].first == kInfCost) continue;
        ++reached;
        digest.MixInt(g.vertex_id(v));
        digest.MixInt(tree[v].first);
        digest.MixInt(tree[v].second);
        if (req.max_vertices > 0 && listed >= req.max_vertices) {
          truncated = true;
          continue;
        }
        ++listed;
        out->BeginArray()
            .Int(g.vertex_id(v))
            .Int(tree[v].first)
            .Int(tree[v].second)
            .EndArray();
      }
      out->EndArray();
      out->Key("reached").Int(reached);
      if (truncated) out->Key("truncated").Bool(true);
      break;
    }
    case Algorithm::kRh:
      EmitTemporalByte(g, RunRhOn(w, *platform, *config, metrics),
                       req.max_vertices, out, &digest);
      break;
    case Algorithm::kLcc:
      EmitTemporalDouble(g, RunLccOn(w, *platform, *config, metrics),
                         req.max_vertices, out, &digest);
      break;
    case Algorithm::kTc:
      EmitTemporalInt(g, RunTcOn(w, *platform, *config, metrics),
                      req.max_vertices, out, &digest);
      break;
  }
  out->Key("digest").String(digest.Hex());
  return Status::OK();
}

Status RenderPath(const QueryRequest& req, Workload& w,
                  const ServiceOptions& options, JsonWriter* out,
                  RunMetrics* metrics) {
  auto config = BuildConfig(req, options);
  GRAPHITE_RETURN_NOT_OK(config.status());
  const TemporalGraph& g = w.graph();
  if (!g.IndexOf(req.source)) {
    return Status::NotFound("source vertex " + std::to_string(req.source) +
                            " not in graph");
  }
  if (req.target < 0) {
    return Status::InvalidArgument("path query requires \"target\"");
  }
  const auto tgt = g.IndexOf(req.target);
  if (!tgt) {
    return Status::NotFound("target vertex " + std::to_string(req.target) +
                            " not in graph");
  }

  out->Key("type").String("path");
  out->Key("kind").String(req.kind);
  out->Key("source").Int(req.source);
  out->Key("target").Int(req.target);

  auto emit_entries = [&](const IntervalMap<int64_t>& m) {
    out->Key("entries").BeginArray();
    for (const auto& e : m.entries()) {
      out->BeginArray().Int(e.interval.start).Int(e.interval.end).Int(
          e.value);
      out->EndArray();
    }
    out->EndArray();
  };

  if (req.kind == "eat") {
    const auto eat = RunEatOn(w, Platform::kIcm, *config, metrics);
    const bool ok = eat[*tgt] != kInfCost;
    out->Key("reachable").Bool(ok);
    if (ok) out->Key("value").Int(eat[*tgt]);
  } else if (req.kind == "sssp") {
    const auto costs = RunSsspOn(w, Platform::kIcm, *config, metrics);
    int64_t best = kInfCost;
    for (const auto& e : costs[*tgt].entries()) {
      best = std::min(best, e.value);
    }
    out->Key("reachable").Bool(best != kInfCost);
    if (best != kInfCost) out->Key("value").Int(best);
    emit_entries(costs[*tgt]);
  } else if (req.kind == "fast") {
    const auto fastest = RunFastOn(w, Platform::kIcm, *config, metrics);
    const bool ok = fastest[*tgt] != kInfCost;
    out->Key("reachable").Bool(ok);
    if (ok) out->Key("value").Int(fastest[*tgt]);
  } else if (req.kind == "ld") {
    // Latest departure FROM `source` that reaches `target` by `deadline`.
    const auto latest = RunLdOn(w, Platform::kIcm, *config, metrics);
    const auto src = g.IndexOf(req.source);
    const bool ok = latest[*src] != kNegInf;
    out->Key("reachable").Bool(ok);
    if (ok) out->Key("value").Int(latest[*src]);
  } else if (req.kind == "reach") {
    const auto reach = RunRhOn(w, Platform::kIcm, *config, metrics);
    const auto& entries = reach[*tgt].entries();
    out->Key("reachable").Bool(!entries.empty());
    out->Key("intervals").BeginArray();
    for (const auto& e : entries) {
      out->BeginArray().Int(e.interval.start).Int(e.interval.end).EndArray();
    }
    out->EndArray();
  } else {
    return Status::InvalidArgument(
        "unknown path kind: \"" + req.kind +
        "\" (want eat|sssp|fast|ld|reach)");
  }
  return Status::OK();
}

Status RenderReachAt(const QueryRequest& req, Workload& w,
                     const ServiceOptions& options, JsonWriter* out,
                     RunMetrics* metrics) {
  auto config = BuildConfig(req, options);
  GRAPHITE_RETURN_NOT_OK(config.status());
  const TemporalGraph& g = w.graph();
  if (!g.IndexOf(req.source)) {
    return Status::NotFound("source vertex " + std::to_string(req.source) +
                            " not in graph");
  }
  if (req.at < 0) {
    return Status::InvalidArgument("reach_at requires \"at\" >= 0");
  }
  const auto reach = RunRhOn(w, Platform::kIcm, *config, metrics);
  out->Key("type").String("reach_at");
  out->Key("source").Int(req.source);
  out->Key("at").Int(req.at);
  Digest digest;
  int64_t count = 0;
  int64_t listed = 0;
  bool truncated = false;
  out->Key("vertices").BeginArray();
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (ResultAt<uint8_t>(reach, v, req.at, 0) != 1) continue;
    ++count;
    digest.MixInt(g.vertex_id(v));
    if (req.max_vertices > 0 && listed >= req.max_vertices) {
      truncated = true;
      continue;
    }
    ++listed;
    out->Int(g.vertex_id(v));
  }
  out->EndArray();
  out->Key("count").Int(count);
  if (truncated) out->Key("truncated").Bool(true);
  out->Key("digest").String(digest.Hex());
  return Status::OK();
}

Status RenderBfsAt(const QueryRequest& req, Workload& w,
                   const ServiceOptions& options, JsonWriter* out,
                   RunMetrics* metrics) {
  auto config = BuildConfig(req, options);
  GRAPHITE_RETURN_NOT_OK(config.status());
  const TemporalGraph& g = w.graph();
  if (!g.IndexOf(req.source)) {
    return Status::NotFound("source vertex " + std::to_string(req.source) +
                            " not in graph");
  }
  if (req.at < 0) {
    return Status::InvalidArgument("bfs_at requires \"at\" >= 0");
  }
  const auto levels = RunBfsOn(w, Platform::kIcm, *config, metrics);
  out->Key("type").String("bfs_at");
  out->Key("source").Int(req.source);
  out->Key("at").Int(req.at);
  Digest digest;
  int64_t count = 0;
  int64_t listed = 0;
  bool truncated = false;
  out->Key("vertices").BeginArray();
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    const auto level = levels[v].Get(req.at);
    if (!level) continue;
    ++count;
    digest.MixInt(g.vertex_id(v));
    digest.MixInt(*level);
    if (req.max_vertices > 0 && listed >= req.max_vertices) {
      truncated = true;
      continue;
    }
    ++listed;
    out->BeginArray().Int(g.vertex_id(v)).Int(*level).EndArray();
  }
  out->EndArray();
  out->Key("count").Int(count);
  if (truncated) out->Key("truncated").Bool(true);
  out->Key("digest").String(digest.Hex());
  return Status::OK();
}

Status RenderStats(const QueryRequest& req, Workload& w, JsonWriter* out) {
  const TemporalGraph& g = w.graph();
  out->Key("type").String("stats");
  out->Key("vertices").Int(static_cast<int64_t>(g.num_vertices()));
  out->Key("edges").Int(static_cast<int64_t>(g.num_edges()));
  out->Key("horizon").Int(g.horizon());
  if (!req.label.empty()) {
    const PropertyStats stats =
        AggregateEdgeProperty(g, req.label, Interval(0, g.horizon()));
    out->Key("property").BeginObject();
    out->Key("label").String(req.label);
    out->Key("count").Int(stats.count);
    out->Key("min").Int(stats.min);
    out->Key("max").Int(stats.max);
    out->Key("mean").Double(stats.mean);
    out->EndObject();
  }
  return Status::OK();
}

Status RenderOps(const QueryRequest& req, Workload& w,
                 const ServiceOptions& options, JsonWriter* out,
                 RunMetrics* metrics) {
  out->BeginObject();
  Status s;
  if (req.op == "run") {
    s = RenderRun(req, w, options, out, metrics);
  } else if (req.op == "path") {
    s = RenderPath(req, w, options, out, metrics);
  } else if (req.op == "reach_at") {
    s = RenderReachAt(req, w, options, out, metrics);
  } else if (req.op == "bfs_at") {
    s = RenderBfsAt(req, w, options, out, metrics);
  } else if (req.op == "stats") {
    s = RenderStats(req, w, out);
  } else {
    s = Status::InvalidArgument("unknown data op: " + req.op);
  }
  if (s.ok()) out->EndObject();
  return s;
}

}  // namespace

// ---------------------------------------------------------------------
// QueryService.
// ---------------------------------------------------------------------

QueryService::QueryService(GraphRegistry* registry, ResultCache* cache,
                           ServiceOptions options)
    : registry_(registry), cache_(cache), options_(options) {}

bool QueryService::IsDataOp(const std::string& op) {
  return op == "run" || op == "path" || op == "reach_at" ||
         op == "bfs_at" || op == "stats";
}

Result<QueryRequest> QueryService::Parse(const std::string& line) {
  auto doc = ParseJson(line);
  GRAPHITE_RETURN_NOT_OK(doc.status());
  if (!doc->is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue* op = doc->Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request needs a string \"op\"");
  }
  QueryRequest r;
  r.op = op->AsString();
  r.id = doc->GetInt("id", -1);
  r.graph = doc->GetString("graph");
  r.alg = doc->GetString("alg");
  r.platform = doc->GetString("platform", "icm");
  r.kind = doc->GetString("kind");
  r.label = doc->GetString("label");
  r.source = doc->GetInt("source", 0);
  r.target = doc->GetInt("target", -1);
  r.deadline = doc->GetInt("deadline", -1);
  r.at = doc->GetInt("at", -1);
  r.workers = static_cast<int>(doc->GetInt("workers", 0));
  r.mode = doc->GetString("mode");
  r.use_cache = doc->GetBool("cache", true);
  r.want_metrics = doc->GetBool("metrics", false);
  r.max_vertices = doc->GetInt("max_vertices", 0);
  r.dataset = doc->GetString("dataset");
  r.scale = doc->GetDouble("scale", 1.0);
  r.file = doc->GetString("file");

  if (const JsonValue* win = doc->Find("window")) {
    if (!win->is_array() || win->items().size() != 2 ||
        !win->items()[0].is_number() || !win->items()[1].is_number()) {
      return Status::InvalidArgument(
          "\"window\" must be [from, to] with numeric bounds");
    }
    const Interval w(win->items()[0].AsInt(), win->items()[1].AsInt());
    if (!w.IsValid()) {
      return Status::InvalidArgument("empty window " + w.ToString());
    }
    r.window = w;
  }
  if (const JsonValue* sel = doc->Find("select")) {
    if (!sel->is_object()) {
      return Status::InvalidArgument("\"select\" must be an object");
    }
    const Interval w(sel->GetInt("from", 0), sel->GetInt("to", 0));
    if (!w.IsValid()) {
      return Status::InvalidArgument("empty select window " + w.ToString());
    }
    r.select_window = w;
    r.select_pred = sel->GetString("pred", "intersects");
    if (r.select_pred != "intersects" && r.select_pred != "contained_in" &&
        r.select_pred != "contains") {
      return Status::InvalidArgument(
          "unknown select pred: \"" + r.select_pred +
          "\" (want intersects|contained_in|contains)");
    }
  }
  return r;
}

Result<std::string> QueryService::RenderFragment(const QueryRequest& req,
                                                 Workload& base,
                                                 RunMetrics* metrics) {
  ServiceOptions options;  // static entry point: library defaults
  return RenderFragmentWith(req, base, options, metrics);
}

Result<std::string> QueryService::RenderFragmentWith(
    const QueryRequest& req, Workload& base, const ServiceOptions& options,
    RunMetrics* metrics) {
  RunMetrics local;
  if (metrics == nullptr) metrics = &local;
  JsonWriter w;
  if (!req.select_window && !req.window) {
    GRAPHITE_RETURN_NOT_OK(RenderOps(req, base, options, &w, metrics));
    return w.Take();
  }
  // Query-layer pre-filters build a request-local graph; derived
  // structures for it are built (and dropped) per request.
  std::optional<TemporalGraph> stage;
  const TemporalGraph* cur = &base.graph();
  if (req.select_window) {
    TemporalPredicate pred;
    if (req.select_pred == "contained_in") {
      pred = TemporalPredicate::ContainedIn(*req.select_window);
    } else if (req.select_pred == "contains") {
      pred = TemporalPredicate::Contains(*req.select_window);
    } else {
      pred = TemporalPredicate::Intersects(*req.select_window);
    }
    stage = TemporalSelect(*cur, pred);
    cur = &*stage;
  }
  if (req.window) {
    stage = TimeSlice(*cur, *req.window);
    cur = &*stage;
  }
  Workload filtered(std::move(*stage));
  GRAPHITE_RETURN_NOT_OK(RenderOps(req, filtered, options, &w, metrics));
  return w.Take();
}

std::string QueryService::GraphPrefix(const std::string& graph_name) {
  return graph_name + '\x1f';
}

std::string QueryService::CacheKey(const QueryRequest& req,
                                   const ResidentGraph& g) {
  std::string k = GraphPrefix(g.name);
  k += std::to_string(g.epoch);
  auto add = [&k](const std::string& s) {
    k += '\x1f';
    k += s;
  };
  add(req.op);
  add(req.alg);
  add(req.platform);
  add(req.kind);
  add(req.label);
  add(std::to_string(req.source));
  add(std::to_string(req.target));
  add(std::to_string(req.deadline));
  add(std::to_string(req.at));
  add(std::to_string(req.workers));
  add(std::to_string(req.max_vertices));
  if (req.window) {
    add("w" + std::to_string(req.window->start) + ":" +
        std::to_string(req.window->end));
  } else {
    add("-");
  }
  if (req.select_window) {
    add("s" + req.select_pred + ":" +
        std::to_string(req.select_window->start) + ":" +
        std::to_string(req.select_window->end));
  } else {
    add("-");
  }
  return k;
}

std::string QueryService::ErrorResponse(int64_t id, const std::string& op,
                                        const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").Int(id);
  w.Key("ok").Bool(false);
  if (!op.empty()) w.Key("op").String(op);
  w.Key("error").BeginObject();
  w.Key("code").String(StatusCodeName(status.code()));
  w.Key("message").String(status.message());
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string QueryService::Envelope(const QueryRequest& req,
                                   const std::string& fragment,
                                   const ExecStats& stats,
                                   int64_t queue_wait_ns,
                                   const RunMetrics* metrics) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("id").Int(req.id);
  w.Key("ok").Bool(true);
  w.Key("op").String(req.op);
  w.Key("graph").String(req.graph);
  w.Key("cached").Bool(stats.cached);
  w.Key("result").Raw(fragment);
  w.Key("server").BeginObject();
  w.Key("queue_ns").Int(queue_wait_ns);
  w.Key("run_ns").Int(stats.run_ns);
  w.Key("supersteps").Int(stats.supersteps);
  if (metrics != nullptr) {
    w.Key("metrics");
    metrics->AppendJson(&w);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::optional<std::string> QueryService::TryServeFromCache(
    const QueryRequest& req, ExecStats* stats) {
  if (cache_ == nullptr || !req.use_cache || !IsDataOp(req.op)) {
    return std::nullopt;
  }
  auto entry = registry_->Get(req.graph);
  if (entry == nullptr) return std::nullopt;
  auto hit = cache_->GetIfPresent(CacheKey(req, *entry));
  if (!hit) return std::nullopt;
  ExecStats es;
  es.cached = true;
  if (stats != nullptr) *stats = es;
  return Envelope(req, *hit, es, /*queue_wait_ns=*/0, nullptr);
}

std::string QueryService::Execute(const QueryRequest& req,
                                  int64_t queue_wait_ns, ExecStats* stats) {
  ExecStats es;
  if (stats == nullptr) stats = &es;
  *stats = ExecStats{};
  if (!IsDataOp(req.op)) {
    return ErrorResponse(req.id, req.op,
                         Status::InvalidArgument("unknown op: " + req.op));
  }
  auto entry = registry_->Get(req.graph);
  if (entry == nullptr) {
    return ErrorResponse(
        req.id, req.op,
        Status::NotFound("graph not resident: \"" + req.graph + "\""));
  }
  const std::string key = CacheKey(req, *entry);
  if (cache_ != nullptr && req.use_cache) {
    if (auto hit = cache_->Get(key)) {
      stats->cached = true;
      return Envelope(req, *hit, *stats, queue_wait_ns, nullptr);
    }
  }
  RunMetrics metrics;
  const int64_t t0 = NowNanos();
  auto fragment =
      RenderFragmentWith(req, entry->workload, options_, &metrics);
  stats->run_ns = NowNanos() - t0;
  if (!fragment.ok()) {
    return ErrorResponse(req.id, req.op, fragment.status());
  }
  stats->supersteps = metrics.supersteps;
  if (cache_ != nullptr && req.use_cache) cache_->Put(key, *fragment);
  return Envelope(req, *fragment, *stats, queue_wait_ns,
                  req.want_metrics ? &metrics : nullptr);
}

}  // namespace graphite
