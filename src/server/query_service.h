// Request model and execution core of the temporal query service.
//
// The service answers the Granite-style workload (PAPERS.md: many small
// temporal path/reachability queries compiled onto an ICM runtime) over
// graphs kept resident in a GraphRegistry:
//
//   run      — any of the twelve (algorithm, platform) runs from
//              algorithms/runners, optionally over a TimeSlice window or
//              a TemporalSelect pre-filter (src/query operators).
//   path     — single-pair temporal path query (EAT / SSSP / FAST / LD /
//              reachability via algorithms/icm_path) reporting the
//              target's value.
//   reach_at — point-in-time reachability: the set of vertices reachable
//              from the source at instant T ("state of the graph at T").
//   bfs_at   — BFS levels sampled at instant T.
//   stats    — entity counts and optional edge-property aggregation.
//
// Every data op renders a *canonical result fragment*: a deterministic
// JSON object independent of scheduling mode, transport, thread count and
// queue interleaving (the runtime determinism matrix pins the underlying
// result equality). The fragment is what the ResultCache stores and what
// the concurrency tests compare byte-for-byte against standalone runs;
// the per-request envelope (id, queue wait, run latency, cached flag) is
// assembled around it on every request.
#ifndef GRAPHITE_SERVER_QUERY_SERVICE_H_
#define GRAPHITE_SERVER_QUERY_SERVICE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "algorithms/runners.h"
#include "server/graph_registry.h"
#include "server/result_cache.h"
#include "temporal/interval.h"
#include "util/json.h"
#include "util/status.h"

namespace graphite {

/// A decoded protocol request (one JSON object per line on the wire).
struct QueryRequest {
  int64_t id = -1;          ///< Echoed in the response.
  std::string op;           ///< run | path | reach_at | bfs_at | stats |
                            ///< ping | load | drop | list | metrics |
                            ///< shutdown (control ops handled by Server).
  std::string graph;        ///< Registry name (data ops + load/drop).

  // run / path parameters.
  std::string alg;          ///< run: bfs wcc scc pr sssp eat fast ld tmst
                            ///<      rh lcc tc
  std::string platform = "icm";  ///< run: icm msb chl tgb gof
  std::string kind;         ///< path: eat | sssp | fast | ld | reach
  int64_t source = 0;
  int64_t target = -1;
  int64_t deadline = -1;    ///< LD deadline; -1 = graph horizon.
  int64_t at = -1;          ///< reach_at / bfs_at instant.

  // Query-layer pre-filters (applied before the run, in this order).
  std::optional<Interval> select_window;  ///< TemporalSelect window.
  std::string select_pred;  ///< intersects | contained_in | contains.
  std::optional<Interval> window;         ///< TimeSlice window.

  // stats parameters.
  std::string label;        ///< Edge property to aggregate (optional).

  // Execution knobs (these do NOT affect the result fragment: the
  // determinism matrix pins result equality across modes, so they are
  // excluded from the cache key).
  int workers = 0;          ///< Logical workers; 0 = service default.
  std::string mode;         ///< "" | sequential | spawn | pool | stealing.
  bool use_cache = true;
  bool want_metrics = false;  ///< Include full RunMetrics in the envelope.
  int64_t max_vertices = 0;   ///< Cap listed vertices; 0 = all. Part of
                              ///< the cache key (it changes the fragment).

  // load parameters.
  std::string dataset;      ///< Generator catalog name (e.g. "twitter").
  double scale = 1.0;
  std::string file;         ///< Text-format graph file path.
};

/// Defaults applied to requests that leave execution knobs unset.
struct ServiceOptions {
  int default_workers = 4;
  /// Engine threading default for requests with no "mode" field. Small
  /// queries are usually fastest sequential; the scheduler provides the
  /// cross-request parallelism.
  bool default_use_threads = false;
  RuntimeOptions runtime;
};

/// Per-execution bookkeeping surfaced in the response envelope and the
/// scheduler's job metrics.
struct ExecStats {
  bool cached = false;
  int64_t run_ns = 0;
  int64_t supersteps = 0;
};

class QueryService {
 public:
  QueryService(GraphRegistry* registry, ResultCache* cache,
               ServiceOptions options = {});

  /// Decodes one request line. Unknown fields are ignored; a missing or
  /// non-string "op" is an error (op semantics are checked at execution).
  static Result<QueryRequest> Parse(const std::string& line);

  /// True for ops that run a graph job (admitted through the scheduler);
  /// false for control ops the Server answers inline.
  static bool IsDataOp(const std::string& op);

  /// Cache fast path: the complete response when `req` is cacheable and
  /// present, else nullopt. Never runs supersteps.
  std::optional<std::string> TryServeFromCache(const QueryRequest& req,
                                               ExecStats* stats = nullptr);

  /// Executes a data op end to end (cache lookup, run, cache fill) and
  /// returns the response line. Errors become {"ok": false, ...} lines.
  std::string Execute(const QueryRequest& req, int64_t queue_wait_ns = 0,
                      ExecStats* stats = nullptr);

  /// Renders the canonical result fragment for `req` against `base` —
  /// the exact bytes a server response carries under "result". Exposed
  /// so tests can compute the standalone expectation, and so the cache
  /// stores precisely this. Pre-filters (select/window) are applied here.
  static Result<std::string> RenderFragment(const QueryRequest& req,
                                            Workload& base,
                                            RunMetrics* metrics = nullptr);

  /// RenderFragment with explicit execution defaults (the instance path).
  static Result<std::string> RenderFragmentWith(const QueryRequest& req,
                                                Workload& base,
                                                const ServiceOptions& options,
                                                RunMetrics* metrics);

  /// Canonical cache key; starts with GraphPrefix(name) so a drop/reload
  /// can invalidate by prefix.
  static std::string CacheKey(const QueryRequest& req,
                              const ResidentGraph& g);
  static std::string GraphPrefix(const std::string& graph_name);

  static std::string ErrorResponse(int64_t id, const std::string& op,
                                   const Status& status);

  GraphRegistry* registry() const { return registry_; }
  ResultCache* cache() const { return cache_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::string Envelope(const QueryRequest& req, const std::string& fragment,
                       const ExecStats& stats, int64_t queue_wait_ns,
                       const RunMetrics* metrics) const;

  GraphRegistry* registry_;
  ResultCache* cache_;
  ServiceOptions options_;
};

}  // namespace graphite

#endif  // GRAPHITE_SERVER_QUERY_SERVICE_H_
