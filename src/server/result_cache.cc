#include "server/result_cache.h"

namespace graphite {

std::optional<std::string> ResultCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

std::optional<std::string> ResultCache::GetIfPresent(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ResultCache::Put(const std::string& key, std::string payload) {
  if (max_entries_ == 0) return;
  const size_t cost = key.size() + payload.size();
  if (cost > max_bytes_) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->payload.size();
    bytes_ += payload.size();
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front({key, std::move(payload)});
    index_[key] = lru_.begin();
    bytes_ += cost;
    ++inserts_;
  }
  EvictToCapacity();
}

void ResultCache::EvictToCapacity() {
  while (!lru_.empty() &&
         (index_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.payload.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

int64_t ResultCache::ErasePrefix(const std::string& prefix) {
  MutexLock lock(mu_);
  int64_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      bytes_ -= it->key.size() + it->payload.size();
      index_.erase(it->key);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.inserts = inserts_;
  s.entries = static_cast<int64_t>(index_.size());
  s.bytes = static_cast<int64_t>(bytes_);
  return s;
}

}  // namespace graphite
