// LRU cache for rendered query results (the serving layer's answer to
// "millions of users re-ask the same questions"). Keys are canonical
// request strings built by the query service — (graph, epoch, op,
// algorithm, source, window, params) — so a reloaded graph (new epoch)
// never serves stale payloads. Values are the cacheable `result` JSON
// fragment of a response; the per-request envelope (id, queue wait, run
// latency) is assembled around the fragment on every request, cached or
// not, which keeps hit and miss responses byte-identical in their result
// portion.
//
// Thread-safe; eviction is strict LRU over entries with an additional
// byte-capacity bound. Hit/miss/eviction counters feed the server's
// `metrics` op and the bench gate (a repeated request must be a hit).
#ifndef GRAPHITE_SERVER_RESULT_CACHE_H_
#define GRAPHITE_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace graphite {

struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t inserts = 0;
  int64_t entries = 0;  ///< Current resident entries.
  int64_t bytes = 0;    ///< Current resident key+payload bytes.
};

class ResultCache {
 public:
  /// `max_entries` == 0 disables caching (every Get is a miss, Put is a
  /// no-op); `max_bytes` additionally bounds resident key+payload bytes.
  explicit ResultCache(size_t max_entries,
                       size_t max_bytes = static_cast<size_t>(-1))
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Returns the payload and refreshes recency; counts a hit or miss.
  std::optional<std::string> Get(const std::string& key);

  /// Like Get but an absent key does NOT count as a miss. Used by the
  /// scheduler's pre-admission fast path, which is followed by a real
  /// Get on the worker — counting both would double-count every miss.
  std::optional<std::string> GetIfPresent(const std::string& key);

  /// Inserts or refreshes `key`; evicts least-recently-used entries until
  /// both capacity bounds hold. A payload larger than max_bytes is not
  /// admitted (it would evict everything and still not fit).
  void Put(const std::string& key, std::string payload);

  /// Drops every entry whose key starts with `prefix` (graph drop/reload).
  /// Returns the number of entries removed (not counted as evictions).
  int64_t ErasePrefix(const std::string& prefix);

  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };

  void EvictToCapacity() GRAPHITE_REQUIRES(mu_);

  const size_t max_entries_;
  const size_t max_bytes_;

  mutable Mutex mu_;
  std::list<Entry> lru_ GRAPHITE_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GRAPHITE_GUARDED_BY(mu_);
  size_t bytes_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t hits_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t misses_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t evictions_ GRAPHITE_GUARDED_BY(mu_) = 0;
  int64_t inserts_ GRAPHITE_GUARDED_BY(mu_) = 0;
};

}  // namespace graphite

#endif  // GRAPHITE_SERVER_RESULT_CACHE_H_
