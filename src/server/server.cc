#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>

#include "gen/generators.h"
#include "io/text_format.h"

namespace graphite {

namespace {

std::string Lower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

Status ErrnoError(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Per-connection response plumbing shared between the read loop and the
/// scheduler workers: serializes writes and counts in-flight responses so
/// the connection is not closed under an async data-op response.
struct ConnState {
  explicit ConnState(int fd) : fd(fd) {}
  Mutex mu;
  CondVar cv;
  int fd;  // Immutable; writes through it serialize under mu.
  int64_t pending GRAPHITE_GUARDED_BY(mu) = 0;
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cache_entries, options.cache_bytes),
      service_(&registry_, &cache_, options.service),
      scheduler_(&service_, options.scheduler) {}

Server::~Server() {
  scheduler_.Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Server::LoadDataset(const std::string& name,
                           const std::string& dataset, double scale) {
  if (name.empty()) {
    return Status::InvalidArgument("load needs a graph name");
  }
  const std::string want = Lower(dataset);
  for (DatasetSpec& spec : DatasetCatalog(scale)) {
    if (Lower(spec.name).rfind(want, 0) != 0) continue;
    TemporalGraph g = Generate(spec.options);
    cache_.ErasePrefix(QueryService::GraphPrefix(name));
    registry_.Add(name, std::move(g));
    return Status::OK();
  }
  return Status::NotFound("unknown dataset: \"" + dataset +
                          "\" (want a catalog prefix, e.g. twitter)");
}

Status Server::LoadFile(const std::string& name, const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("load needs a graph name");
  }
  auto g = ReadTextGraphFile(path);
  GRAPHITE_RETURN_NOT_OK(g.status());
  cache_.ErasePrefix(QueryService::GraphPrefix(name));
  registry_.Add(name, std::move(*g));
  return Status::OK();
}

std::string Server::LoadResponse(const QueryRequest& req) {
  Status s;
  if (!req.file.empty()) {
    s = LoadFile(req.graph, req.file);
  } else if (!req.dataset.empty()) {
    s = LoadDataset(req.graph, req.dataset, req.scale);
  } else {
    s = Status::InvalidArgument("load needs \"dataset\" or \"file\"");
  }
  if (!s.ok()) return QueryService::ErrorResponse(req.id, req.op, s);
  auto entry = registry_.Get(req.graph);
  GRAPHITE_CHECK(entry != nullptr);
  const TemporalGraph& g = entry->workload.graph();
  JsonWriter w;
  w.BeginObject();
  w.Key("id").Int(req.id);
  w.Key("ok").Bool(true);
  w.Key("op").String("load");
  w.Key("graph").String(req.graph);
  w.Key("epoch").UInt(entry->epoch);
  w.Key("vertices").UInt(g.num_vertices());
  w.Key("edges").UInt(g.num_edges());
  w.Key("horizon").Int(g.horizon());
  w.EndObject();
  return w.Take();
}

std::string Server::HandleControl(const QueryRequest& req) {
  if (req.op == "ping") {
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(req.id);
    w.Key("ok").Bool(true);
    w.Key("op").String("ping");
    w.EndObject();
    return w.Take();
  }
  if (req.op == "load") return LoadResponse(req);
  if (req.op == "drop") {
    const bool existed = registry_.Drop(req.graph);
    const int64_t invalidated =
        cache_.ErasePrefix(QueryService::GraphPrefix(req.graph));
    if (!existed) {
      return QueryService::ErrorResponse(
          req.id, req.op,
          Status::NotFound("graph not resident: \"" + req.graph + "\""));
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(req.id);
    w.Key("ok").Bool(true);
    w.Key("op").String("drop");
    w.Key("graph").String(req.graph);
    w.Key("invalidated").Int(invalidated);
    w.EndObject();
    return w.Take();
  }
  if (req.op == "list") {
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(req.id);
    w.Key("ok").Bool(true);
    w.Key("op").String("list");
    w.Key("graphs").BeginArray();
    for (const ResidentGraphInfo& info : registry_.List()) {
      w.BeginObject();
      w.Key("name").String(info.name);
      w.Key("epoch").UInt(info.epoch);
      w.Key("vertices").UInt(info.vertices);
      w.Key("edges").UInt(info.edges);
      w.Key("horizon").Int(info.horizon);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.Take();
  }
  if (req.op == "metrics") {
    const SchedulerStats sched = scheduler_.stats();
    const ResultCacheStats cache = cache_.stats();
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(req.id);
    w.Key("ok").Bool(true);
    w.Key("op").String("metrics");
    w.Key("scheduler").BeginObject();
    w.Key("submitted").Int(sched.submitted);
    w.Key("rejected").Int(sched.rejected);
    w.Key("completed").Int(sched.completed);
    w.Key("fastpath_hits").Int(sched.fastpath_hits);
    w.Key("queue_wait_ns").Int(sched.queue_wait_ns);
    w.Key("run_ns").Int(sched.run_ns);
    w.Key("supersteps").Int(sched.supersteps);
    w.Key("queued").UInt(sched.queued);
    w.Key("running").UInt(sched.running);
    w.EndObject();
    w.Key("cache").BeginObject();
    w.Key("hits").Int(cache.hits);
    w.Key("misses").Int(cache.misses);
    w.Key("evictions").Int(cache.evictions);
    w.Key("inserts").Int(cache.inserts);
    w.Key("entries").Int(cache.entries);
    w.Key("bytes").Int(cache.bytes);
    const int64_t lookups = cache.hits + cache.misses;
    w.Key("hit_rate").Double(
        lookups == 0 ? 0.0
                     : static_cast<double>(cache.hits) /
                           static_cast<double>(lookups));
    w.EndObject();
    w.Key("graphs").UInt(registry_.size());
    w.EndObject();
    return w.Take();
  }
  if (req.op == "shutdown") {
    RequestShutdown();
    JsonWriter w;
    w.BeginObject();
    w.Key("id").Int(req.id);
    w.Key("ok").Bool(true);
    w.Key("op").String("shutdown");
    w.EndObject();
    return w.Take();
  }
  return QueryService::ErrorResponse(
      req.id, req.op, Status::InvalidArgument("unknown op: " + req.op));
}

void Server::HandleLine(const std::string& line,
                        std::function<void(std::string)> respond) {
  auto req = QueryService::Parse(line);
  if (!req.ok()) {
    respond(QueryService::ErrorResponse(-1, "", req.status()));
    return;
  }
  if (QueryService::IsDataOp(req->op)) {
    const int64_t id = req->id;
    const std::string op = req->op;
    const Status s = scheduler_.Submit(std::move(*req), respond);
    if (!s.ok()) respond(QueryService::ErrorResponse(id, op, s));
    return;
  }
  respond(HandleControl(*req));
}

int64_t Server::ServeStream(std::istream& in, std::ostream& out) {
  struct StreamState {
    Mutex mu;
    CondVar cv;
    std::ostream* out;  // Immutable; writes through it serialize under mu.
    int64_t pending GRAPHITE_GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<StreamState>();
  state->out = &out;
  auto respond = [state](std::string line) {
    MutexLock lock(state->mu);
    (*state->out) << line << '\n';
    state->out->flush();
    --state->pending;
    state->cv.NotifyAll();
  };
  int64_t handled = 0;
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++handled;
    {
      MutexLock lock(state->mu);
      ++state->pending;
    }
    HandleLine(line, respond);
  }
  scheduler_.Drain();
  MutexLock lock(state->mu);
  while (state->pending != 0) state->cv.Wait(state->mu);
  return handled;
}

Result<int> Server::ListenTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return ErrnoError("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return ErrnoError("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return ErrnoError("getsockname");
  }
  listen_fd_ = fd;
  return static_cast<int>(ntohs(addr.sin_port));
}

void Server::ServeTcp() {
  GRAPHITE_CHECK(listen_fd_ >= 0);
  for (;;) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR && !shutdown_requested()) continue;
      break;
    }
    if (shutdown_requested()) {
      ::close(cfd);
      break;
    }
    MutexLock lock(conn_mu_);
    conn_fds_.push_back(cfd);
    conn_threads_.emplace_back([this, cfd] { ConnectionLoop(cfd); });
  }
  std::vector<std::thread> threads;
  {
    MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  scheduler_.Drain();
}

void Server::ConnectionLoop(int fd) {
  auto state = std::make_shared<ConnState>(fd);
  auto respond = [state](std::string line) {
    line.push_back('\n');
    MutexLock lock(state->mu);
    WriteAll(state->fd, line);
    --state->pending;
    state->cv.NotifyAll();
  };
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      {
        MutexLock lock(state->mu);
        ++state->pending;
      }
      HandleLine(line, respond);
    }
    buffer.erase(0, start);
  }
  {
    // Wait out async data-op responses before closing the socket.
    MutexLock lock(state->mu);
    while (state->pending != 0) state->cv.Wait(state->mu);
  }
  {
    MutexLock lock(conn_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

void Server::RequestShutdown() {
  if (shutdown_.exchange(true)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  MutexLock lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

}  // namespace graphite
