// graphite_server: the always-on temporal query service (ROADMAP
// "serving" item). Wires the pieces of src/server/ together:
//
//   GraphRegistry  — partitioned TemporalGraphs resident across requests
//   ResultCache    — LRU over canonical result fragments
//   QueryService   — request decoding + canonical execution
//   JobScheduler   — bounded admission, per-graph serialization
//
// and speaks a line-delimited JSON protocol over two fronts:
//
//   * TCP (loopback): one JSON object per line in, one per line out.
//     Requests on a connection may be answered out of order (responses
//     carry the request "id"); control ops answer inline, data ops run
//     through the scheduler.
//   * stdio: the same protocol over stdin/stdout for scripting and
//     debugging without a socket.
//
// Example session:
//   > {"id":1,"op":"load","graph":"t","dataset":"twitter","scale":0.1}
//   < {"id": 1, "ok": true, "op": "load", "graph": "t", "epoch": 1, ...}
//   > {"id":2,"op":"run","graph":"t","alg":"bfs","source":0}
//   < {"id": 2, "ok": true, ..., "cached": false, "result": {...}, ...}
#ifndef GRAPHITE_SERVER_SERVER_H_
#define GRAPHITE_SERVER_SERVER_H_

#include <atomic>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "server/graph_registry.h"
#include "server/job_scheduler.h"
#include "server/query_service.h"
#include "server/result_cache.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace graphite {

struct ServerOptions {
  SchedulerOptions scheduler;
  ServiceOptions service;
  size_t cache_entries = 1024;
  size_t cache_bytes = 64ull << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request line. `respond` receives exactly one response
  /// line per call (no trailing newline): inline for control ops, parse
  /// errors, admission rejections and cache fast-path hits; from a worker
  /// thread for executed data ops. `respond` must be thread-safe.
  void HandleLine(const std::string& line,
                  std::function<void(std::string)> respond);

  /// Generates a catalog dataset (case-insensitive prefix, e.g.
  /// "twitter") and registers it under `name`.
  Status LoadDataset(const std::string& name, const std::string& dataset,
                     double scale);
  /// Loads a text-format graph file and registers it under `name`.
  Status LoadFile(const std::string& name, const std::string& path);

  /// Serves the protocol over an istream/ostream pair until EOF or a
  /// shutdown op; drains in-flight jobs before returning. Returns the
  /// number of requests handled.
  int64_t ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback listener; `port` 0 picks an ephemeral port.
  /// Returns the bound port.
  Result<int> ListenTcp(int port);
  /// Accept loop; returns after RequestShutdown() (or a "shutdown" op),
  /// once every connection thread has finished.
  void ServeTcp();
  /// Unblocks ServeTcp and in-progress connection reads. Thread-safe.
  void RequestShutdown();
  bool shutdown_requested() const { return shutdown_.load(); }

  GraphRegistry& registry() { return registry_; }
  ResultCache& cache() { return cache_; }
  QueryService& service() { return service_; }
  JobScheduler& scheduler() { return scheduler_; }

 private:
  std::string HandleControl(const QueryRequest& req);
  std::string LoadResponse(const QueryRequest& req);
  void ConnectionLoop(int fd);

  ServerOptions options_;
  GraphRegistry registry_;
  ResultCache cache_;
  QueryService service_;
  JobScheduler scheduler_;

  std::atomic<bool> shutdown_{false};
  int listen_fd_ = -1;
  Mutex conn_mu_;
  std::vector<int> conn_fds_ GRAPHITE_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ GRAPHITE_GUARDED_BY(conn_mu_);
};

}  // namespace graphite

#endif  // GRAPHITE_SERVER_SERVER_H_
