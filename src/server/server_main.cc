// graphite_server — line-delimited JSON temporal query service.
//
//   graphite_server --stdio --preload t=twitter:0.1
//   graphite_server --port 7171 --threads 4 --preload t=twitter --preload
//       r=reddit
//
// Protocol: one JSON object per line; see src/server/server.h and the
// README "serving" quickstart.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/server.h"
#include "util/json.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: graphite_server [--port N | --stdio] [options]\n"
               "  --port N           listen on 127.0.0.1:N (0 = ephemeral)\n"
               "  --stdio            serve stdin/stdout instead of TCP\n"
               "  --threads N        scheduler worker threads (default 4)\n"
               "  --queue N          admission queue bound (default 128)\n"
               "  --cache-entries N  result cache entries (default 1024)\n"
               "  --cache-mb N       result cache size bound in MiB\n"
               "  --workers N        default per-request workers (default 4)\n"
               "  --preload NAME=DATASET[:SCALE]  generate + register a\n"
               "                     catalog dataset before serving\n"
               "  --preload NAME=@FILE            load a text-format graph\n");
}

struct Preload {
  std::string name;
  std::string source;  // dataset[:scale] or @file
};

}  // namespace

int main(int argc, char** argv) {
  graphite::ServerOptions options;
  int port = -1;
  bool stdio = false;
  std::vector<Preload> preloads;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--threads") {
      options.scheduler.num_threads = std::atoi(next());
    } else if (arg == "--queue") {
      options.scheduler.max_queue =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--cache-entries") {
      options.cache_entries = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--cache-mb") {
      options.cache_bytes =
          static_cast<size_t>(std::atoll(next())) << 20;
    } else if (arg == "--workers") {
      options.service.default_workers = std::atoi(next());
    } else if (arg == "--preload") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "bad --preload spec: %s\n", spec.c_str());
        return 2;
      }
      preloads.push_back({spec.substr(0, eq), spec.substr(eq + 1)});
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (stdio == (port >= 0)) {
    std::fprintf(stderr, "pick exactly one of --stdio / --port\n");
    Usage();
    return 2;
  }

  graphite::Server server(options);
  for (const Preload& p : preloads) {
    graphite::Status s;
    if (!p.source.empty() && p.source[0] == '@') {
      s = server.LoadFile(p.name, p.source.substr(1));
    } else {
      double scale = 1.0;
      std::string dataset = p.source;
      const size_t colon = dataset.rfind(':');
      if (colon != std::string::npos) {
        scale = std::atof(dataset.c_str() + colon + 1);
        dataset.resize(colon);
      }
      s = server.LoadDataset(p.name, dataset, scale);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "preload %s failed: %s\n", p.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "preloaded %s (%s)\n", p.name.c_str(),
                 p.source.c_str());
  }

  if (stdio) {
    server.ServeStream(std::cin, std::cout);
    return 0;
  }
  auto bound = server.ListenTcp(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  // Machine-readable startup line (tests and scripts parse this).
  graphite::JsonWriter ready;
  ready.BeginObject();
  ready.Key("ready").Bool(true);
  ready.Key("port").Int(*bound);
  ready.EndObject();
  std::fprintf(stdout, "%s\n", ready.str().c_str());
  std::fflush(stdout);
  server.ServeTcp();
  return 0;
}
