#include "stream/update_stream.h"

#include <algorithm>

#include "algorithms/common.h"
#include "util/rng.h"

namespace graphite {

GraphUpdate GraphUpdate::AddVertex(TimePoint t, VertexId id) {
  GraphUpdate u;
  u.kind = Kind::kAddVertex;
  u.time = t;
  u.id = id;
  return u;
}
GraphUpdate GraphUpdate::RemoveVertex(TimePoint t, VertexId id) {
  GraphUpdate u;
  u.kind = Kind::kRemoveVertex;
  u.time = t;
  u.id = id;
  return u;
}
GraphUpdate GraphUpdate::AddEdge(TimePoint t, EdgeId id, VertexId src,
                                 VertexId dst) {
  GraphUpdate u;
  u.kind = Kind::kAddEdge;
  u.time = t;
  u.id = id;
  u.src = src;
  u.dst = dst;
  return u;
}
GraphUpdate GraphUpdate::RemoveEdge(TimePoint t, EdgeId id) {
  GraphUpdate u;
  u.kind = Kind::kRemoveEdge;
  u.time = t;
  u.id = id;
  return u;
}
GraphUpdate GraphUpdate::SetVertexProp(TimePoint t, VertexId id,
                                       std::string label, PropValue value) {
  GraphUpdate u;
  u.kind = Kind::kSetVertexProp;
  u.time = t;
  u.id = id;
  u.label = std::move(label);
  u.value = value;
  return u;
}
GraphUpdate GraphUpdate::SetEdgeProp(TimePoint t, EdgeId id, std::string label,
                                     PropValue value) {
  GraphUpdate u;
  u.kind = Kind::kSetEdgeProp;
  u.time = t;
  u.id = id;
  u.label = std::move(label);
  u.value = value;
  return u;
}

bool StreamingGraphBuilder::VertexAlive(VertexId id) const {
  auto it = vertices_.find(id);
  return it != vertices_.end() && it->second.end == kTimeMax;
}

Status StreamingGraphBuilder::Apply(const GraphUpdate& update) {
  if (update.time < now_) {
    return Status::InvalidArgument(
        "out-of-order event: time " + std::to_string(update.time) +
        " < stream clock " + std::to_string(now_));
  }
  switch (update.kind) {
    case GraphUpdate::Kind::kAddVertex: {
      if (vertices_.count(update.id) > 0) {
        return Status::ConstraintViolation(
            "Constraint 1: vertex " + std::to_string(update.id) +
            " already exists (ids never re-occur)");
      }
      VertexRecord rec;
      rec.start = update.time;
      vertices_.emplace(update.id, std::move(rec));
      break;
    }
    case GraphUpdate::Kind::kRemoveVertex: {
      auto it = vertices_.find(update.id);
      if (it == vertices_.end() || it->second.end != kTimeMax) {
        return Status::NotFound("vertex " + std::to_string(update.id) +
                                " is not alive");
      }
      if (update.time <= it->second.start) {
        return Status::InvalidArgument("vertex would have empty lifespan");
      }
      // Removing a vertex retires its live edges and property runs too
      // (referential integrity, Constraints 2-3).
      for (auto& [eid, e] : edges_) {
        (void)eid;
        if (e.end == kTimeMax && (e.src == update.id || e.dst == update.id)) {
          e.end = update.time;
          for (auto& run : e.props) {
            if (run.end == kTimeMax) run.end = update.time;
          }
        }
      }
      for (auto& run : it->second.props) {
        if (run.end == kTimeMax) run.end = update.time;
      }
      it->second.end = update.time;
      break;
    }
    case GraphUpdate::Kind::kAddEdge: {
      if (edges_.count(update.id) > 0) {
        return Status::ConstraintViolation(
            "Constraint 1: edge " + std::to_string(update.id) +
            " already exists (ids never re-occur)");
      }
      if (!VertexAlive(update.src) || !VertexAlive(update.dst)) {
        return Status::ConstraintViolation(
            "Constraint 2: edge " + std::to_string(update.id) +
            " endpoints must both be alive");
      }
      EdgeRecord rec;
      rec.src = update.src;
      rec.dst = update.dst;
      rec.start = update.time;
      edges_.emplace(update.id, std::move(rec));
      break;
    }
    case GraphUpdate::Kind::kRemoveEdge: {
      auto it = edges_.find(update.id);
      if (it == edges_.end() || it->second.end != kTimeMax) {
        return Status::NotFound("edge " + std::to_string(update.id) +
                                " is not alive");
      }
      if (update.time <= it->second.start) {
        return Status::InvalidArgument("edge would have empty lifespan");
      }
      for (auto& run : it->second.props) {
        if (run.end == kTimeMax) run.end = update.time;
      }
      it->second.end = update.time;
      break;
    }
    case GraphUpdate::Kind::kSetVertexProp: {
      auto it = vertices_.find(update.id);
      if (it == vertices_.end() || it->second.end != kTimeMax) {
        return Status::ConstraintViolation(
            "Constraint 3: property on missing/dead vertex " +
            std::to_string(update.id));
      }
      for (auto& run : it->second.props) {
        if (run.label == update.label && run.end == kTimeMax) {
          if (run.start == update.time) {
            // Same-instant overwrite: replace the value in place.
            run.value = update.value;
            now_ = update.time;
            return Status::OK();
          }
          run.end = update.time;
        }
      }
      it->second.props.push_back(
          {update.label, update.time, kTimeMax, update.value});
      break;
    }
    case GraphUpdate::Kind::kSetEdgeProp: {
      auto it = edges_.find(update.id);
      if (it == edges_.end() || it->second.end != kTimeMax) {
        return Status::ConstraintViolation(
            "Constraint 3: property on missing/dead edge " +
            std::to_string(update.id));
      }
      for (auto& run : it->second.props) {
        if (run.label == update.label && run.end == kTimeMax) {
          if (run.start == update.time) {
            run.value = update.value;
            now_ = update.time;
            return Status::OK();
          }
          run.end = update.time;
        }
      }
      it->second.props.push_back(
          {update.label, update.time, kTimeMax, update.value});
      break;
    }
  }
  now_ = update.time;
  return Status::OK();
}

Status StreamingGraphBuilder::ApplyAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    GRAPHITE_RETURN_NOT_OK(Apply(u));
  }
  return Status::OK();
}

Result<TemporalGraph> StreamingGraphBuilder::Seal(TimePoint horizon) const {
  if (horizon <= now_) {
    return Status::InvalidArgument("horizon must be beyond the stream clock");
  }
  TemporalGraphBuilder builder;
  auto clip_end = [horizon](TimePoint end) {
    return end == kTimeMax ? horizon : std::min(end, horizon);
  };
  for (const auto& [vid, rec] : vertices_) {
    const Interval span(rec.start, clip_end(rec.end));
    if (!span.IsValid()) continue;
    builder.AddVertex(vid, span);
    for (const auto& run : rec.props) {
      const Interval ri(run.start, clip_end(run.end));
      if (ri.IsValid()) builder.SetVertexProperty(vid, run.label, ri, run.value);
    }
  }
  for (const auto& [eid, rec] : edges_) {
    const Interval span(rec.start, clip_end(rec.end));
    if (!span.IsValid()) continue;
    builder.AddEdge(eid, rec.src, rec.dst, span);
    for (const auto& run : rec.props) {
      const Interval ri(run.start, clip_end(run.end));
      if (ri.IsValid()) builder.SetEdgeProperty(eid, run.label, ri, run.value);
    }
  }
  BuilderOptions options;
  options.horizon = horizon;
  return builder.Build(options);
}

size_t StreamingGraphBuilder::num_live_vertices() const {
  size_t count = 0;
  for (const auto& [vid, rec] : vertices_) {
    (void)vid;
    if (rec.end == kTimeMax) ++count;
  }
  return count;
}

size_t StreamingGraphBuilder::num_live_edges() const {
  size_t count = 0;
  for (const auto& [eid, rec] : edges_) {
    (void)eid;
    if (rec.end == kTimeMax) ++count;
  }
  return count;
}

std::vector<GraphUpdate> SyntheticUpdateStream(uint64_t seed, int num_vertices,
                                               int num_events,
                                               TimePoint horizon,
                                               double churn) {
  Rng rng(seed);
  std::vector<GraphUpdate> out;
  out.reserve(static_cast<size_t>(num_events) + num_vertices);
  for (int v = 0; v < num_vertices; ++v) {
    out.push_back(GraphUpdate::AddVertex(0, v));
  }
  struct LiveEdge {
    EdgeId id;
    TimePoint since;
  };
  std::vector<LiveEdge> live;
  EdgeId next_eid = 0;
  for (int i = 0; i < num_events; ++i) {
    // Events spread uniformly over (0, horizon).
    const TimePoint t =
        1 + (static_cast<TimePoint>(i) * (horizon - 1)) / num_events;
    // Removal must leave a non-empty lifespan: pick an edge added earlier.
    size_t candidate = live.size();
    if (!live.empty() && rng.Bernoulli(churn)) {
      const size_t k = rng.Uniform(live.size());
      if (live[k].since < t) candidate = k;
    }
    if (candidate < live.size()) {
      out.push_back(GraphUpdate::RemoveEdge(t, live[candidate].id));
      live[candidate] = live.back();
      live.pop_back();
    } else {
      const VertexId src = static_cast<VertexId>(rng.Uniform(num_vertices));
      VertexId dst = static_cast<VertexId>(rng.Uniform(num_vertices));
      if (src == dst) dst = (dst + 1) % num_vertices;
      const EdgeId eid = next_eid++;
      out.push_back(GraphUpdate::AddEdge(t, eid, src, dst));
      out.push_back(GraphUpdate::SetEdgeProp(t, eid, kTravelTimeLabel,
                                             1 + rng.UniformRange(0, 2)));
      out.push_back(GraphUpdate::SetEdgeProp(t, eid, kTravelCostLabel,
                                             1 + rng.UniformRange(0, 9)));
      live.push_back({eid, t});
    }
  }
  return out;
}

}  // namespace graphite
