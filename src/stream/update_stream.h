// Streaming ingestion (paper §VIII future work: "extend ICM to process
// real-time temporal graphs of a streaming nature").
//
// A StreamingGraphBuilder consumes a totally ordered stream of timestamped
// structural and property events (vertex/edge add & remove, property
// assignment) and maintains the evolving graph. At any time it can seal a
// fully evolved interval graph for ICM processing — the bridge between a
// live feed and the paper's "fully evolved, ready for processing" model —
// and it enforces the §III soundness constraints on the fly, rejecting
// events that would violate them.
#ifndef GRAPHITE_STREAM_UPDATE_STREAM_H_
#define GRAPHITE_STREAM_UPDATE_STREAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/builder.h"
#include "graph/temporal_graph.h"

namespace graphite {

/// One timestamped event of the update stream.
struct GraphUpdate {
  enum class Kind {
    kAddVertex,     ///< Vertex `id` comes alive at `time`.
    kRemoveVertex,  ///< Vertex `id` ceases to exist at `time` (exclusive).
    kAddEdge,       ///< Edge `id` (src -> dst) comes alive at `time`.
    kRemoveEdge,    ///< Edge `id` ceases to exist at `time` (exclusive).
    kSetVertexProp, ///< Vertex `id` property `label` = `value` from `time`.
    kSetEdgeProp,   ///< Edge `id` property `label` = `value` from `time`.
  };

  Kind kind;
  TimePoint time = 0;
  int64_t id = 0;        ///< VertexId or EdgeId.
  VertexId src = 0;      ///< kAddEdge only.
  VertexId dst = 0;      ///< kAddEdge only.
  std::string label;     ///< Property events only.
  PropValue value = 0;   ///< Property events only.

  static GraphUpdate AddVertex(TimePoint t, VertexId id);
  static GraphUpdate RemoveVertex(TimePoint t, VertexId id);
  static GraphUpdate AddEdge(TimePoint t, EdgeId id, VertexId src,
                             VertexId dst);
  static GraphUpdate RemoveEdge(TimePoint t, EdgeId id);
  static GraphUpdate SetVertexProp(TimePoint t, VertexId id,
                                   std::string label, PropValue value);
  static GraphUpdate SetEdgeProp(TimePoint t, EdgeId id, std::string label,
                                 PropValue value);
};

/// Incrementally folds an ordered update stream into an interval graph.
///
/// Apply() returns an error (and leaves the builder unchanged) for events
/// that violate the temporal-graph constraints: re-adding a live or dead
/// entity (Constraint 1), edges on missing/dead endpoints (Constraint 2),
/// properties on missing entities (Constraint 3), or timestamps that go
/// backwards.
class StreamingGraphBuilder {
 public:
  /// Applies one event. Events must be non-decreasing in time.
  Status Apply(const GraphUpdate& update);

  /// Applies a batch, stopping at the first error.
  Status ApplyAll(const std::vector<GraphUpdate>& updates);

  /// Seals the stream at `horizon` (every still-alive entity's lifespan
  /// closes at the horizon) and builds the fully evolved interval graph.
  /// The builder remains usable; sealing is a snapshot operation.
  Result<TemporalGraph> Seal(TimePoint horizon) const;

  /// Latest event time applied so far.
  TimePoint now() const { return now_; }
  size_t num_live_vertices() const;
  size_t num_live_edges() const;

 private:
  struct VertexRecord {
    TimePoint start = 0;
    TimePoint end = kTimeMax;  ///< kTimeMax while alive.
    // Property runs: (label, start, end|kTimeMax, value).
    struct PropRun {
      std::string label;
      TimePoint start;
      TimePoint end;
      PropValue value;
    };
    std::vector<PropRun> props;
  };
  struct EdgeRecord {
    VertexId src = 0;
    VertexId dst = 0;
    TimePoint start = 0;
    TimePoint end = kTimeMax;
    std::vector<VertexRecord::PropRun> props;
  };

  bool VertexAlive(VertexId id) const;

  TimePoint now_ = 0;
  std::unordered_map<VertexId, VertexRecord> vertices_;
  std::unordered_map<EdgeId, EdgeRecord> edges_;
};

/// Generates a deterministic random update stream (used by tests and the
/// streaming example): `churn` controls how often live edges are removed.
std::vector<GraphUpdate> SyntheticUpdateStream(uint64_t seed,
                                               int num_vertices,
                                               int num_events,
                                               TimePoint horizon,
                                               double churn = 0.3);

}  // namespace graphite

#endif  // GRAPHITE_STREAM_UPDATE_STREAM_H_
