#include "temporal/allen.h"

namespace graphite {

AllenRelation Classify(const Interval& a, const Interval& b) {
  GRAPHITE_CHECK(a.IsValid() && b.IsValid());
  if (a.end < b.start) return AllenRelation::kBefore;
  if (a.end == b.start) return AllenRelation::kMeets;
  if (b.end < a.start) return AllenRelation::kAfter;
  if (b.end == a.start) return AllenRelation::kMetBy;
  // From here the intervals intersect.
  if (a.start == b.start) {
    if (a.end == b.end) return AllenRelation::kEquals;
    return a.end < b.end ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.end == b.end) {
    return a.start > b.start ? AllenRelation::kFinishes
                             : AllenRelation::kFinishedBy;
  }
  if (a.start > b.start && a.end < b.end) return AllenRelation::kDuring;
  if (b.start > a.start && b.end < a.end) return AllenRelation::kContains;
  return a.start < b.start ? AllenRelation::kOverlaps
                           : AllenRelation::kOverlappedBy;
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "unknown";
}

AllenRelation Inverse(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
  }
  return AllenRelation::kEquals;
}

}  // namespace graphite
