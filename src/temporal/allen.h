// Full Allen interval algebra (Allen, CACM 1983) between half-open
// intervals. The ICM core only needs the subset exposed on Interval, but
// the complete classification is provided for temporal analytics and to
// validate the subset against the algebra in tests.
#ifndef GRAPHITE_TEMPORAL_ALLEN_H_
#define GRAPHITE_TEMPORAL_ALLEN_H_

#include "temporal/interval.h"

namespace graphite {

/// The thirteen basic Allen relations, a `Classify(a, b)` result reading
/// "a <relation> b". Exactly one holds for any pair of valid intervals.
enum class AllenRelation {
  kBefore,         ///< a ends strictly before b starts.
  kMeets,          ///< a.end == b.start.
  kOverlaps,       ///< a starts first, they intersect, a ends inside b.
  kStarts,         ///< same start, a ends first.
  kDuring,         ///< a strictly inside b.
  kFinishes,       ///< same end, a starts later.
  kEquals,         ///< identical.
  kFinishedBy,     ///< inverse of kFinishes.
  kContains,       ///< inverse of kDuring.
  kStartedBy,      ///< inverse of kStarts.
  kOverlappedBy,   ///< inverse of kOverlaps.
  kMetBy,          ///< inverse of kMeets.
  kAfter,          ///< inverse of kBefore.
};

/// Returns the unique Allen relation of `a` with respect to `b`.
/// Both intervals must be valid (non-empty).
AllenRelation Classify(const Interval& a, const Interval& b);

/// Human-readable name ("before", "meets", ...).
const char* AllenRelationName(AllenRelation r);

/// Returns the inverse relation (Classify(b, a) == Inverse(Classify(a, b))).
AllenRelation Inverse(AllenRelation r);

}  // namespace graphite

#endif  // GRAPHITE_TEMPORAL_ALLEN_H_
