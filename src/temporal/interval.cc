#include "temporal/interval.h"

#include <cctype>
#include <cstdlib>

namespace graphite {

namespace {

std::string TimePointToString(TimePoint t) {
  if (t == kTimeMax) return "inf";
  if (t == kTimeMin) return "-inf";
  return std::to_string(t);
}

// Parses one time-point token, allowing "inf" / "-inf" / "+inf".
bool ParseTimePoint(const std::string& tok, TimePoint* out) {
  if (tok == "inf" || tok == "+inf") {
    *out = kTimeMax;
    return true;
  }
  if (tok == "-inf") {
    *out = kTimeMin;
    return true;
  }
  if (tok.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<TimePoint>(v);
  return true;
}

}  // namespace

std::string Interval::ToString() const {
  return "[" + TimePointToString(start) + ", " + TimePointToString(end) + ")";
}

Result<Interval> ParseInterval(const std::string& text) {
  // Strip brackets/parens/commas into whitespace, then split on whitespace.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (c == '[' || c == ']' || c == '(' || c == ')' || c == ',') {
      cleaned.push_back(' ');
    } else {
      cleaned.push_back(c);
    }
  }
  std::string a, b;
  size_t i = 0;
  auto next_token = [&](std::string* out) {
    while (i < cleaned.size() && std::isspace(static_cast<uint8_t>(cleaned[i])))
      ++i;
    out->clear();
    while (i < cleaned.size() &&
           !std::isspace(static_cast<uint8_t>(cleaned[i]))) {
      out->push_back(cleaned[i++]);
    }
    return !out->empty();
  };
  if (!next_token(&a) || !next_token(&b)) {
    return Status::InvalidArgument("expected two time-points in: " + text);
  }
  Interval out;
  if (!ParseTimePoint(a, &out.start) || !ParseTimePoint(b, &out.end)) {
    return Status::InvalidArgument("bad time-point in: " + text);
  }
  if (!out.IsValid()) {
    return Status::InvalidArgument("invalid interval (start >= end): " + text);
  }
  return out;
}

}  // namespace graphite
