// Half-open time-intervals [start, end) over the discrete time domain
// (paper §III). Interval relations follow Allen's conventions; the subset
// the paper names is: during, during-or-equals (containment), intersects,
// equals, and meets, plus the intersection operator.
#ifndef GRAPHITE_TEMPORAL_INTERVAL_H_
#define GRAPHITE_TEMPORAL_INTERVAL_H_

#include <algorithm>
#include <string>

#include "temporal/time.h"
#include "util/status.h"

namespace graphite {

/// A half-open time-interval [start, end). Valid iff start < end; the empty
/// interval is represented canonically as [0, 0).
struct Interval {
  TimePoint start = 0;
  TimePoint end = 0;

  constexpr Interval() = default;
  constexpr Interval(TimePoint s, TimePoint e) : start(s), end(e) {}

  /// The canonical empty interval.
  static constexpr Interval Empty() { return Interval(0, 0); }
  /// The whole time axis [kTimeMin, kTimeMax).
  static constexpr Interval All() { return Interval(kTimeMin, kTimeMax); }

  /// True iff the interval contains at least one time-point.
  constexpr bool IsValid() const { return start < end; }
  constexpr bool IsEmpty() const { return !IsValid(); }
  /// True iff the interval extends to +infinity.
  constexpr bool IsOpenEnded() const { return end == kTimeMax; }
  /// True iff the interval covers exactly one time-point. Phrased as an
  /// addition: IsValid() gives start < end <= kTimeMax, so start + 1
  /// cannot overflow, while end - start does for [kTimeMin, e).
  constexpr bool IsUnit() const { return IsValid() && end == start + 1; }

  /// Number of time-points covered; kTimeMax for open-ended intervals.
  constexpr TimePoint Length() const {
    if (IsEmpty()) return 0;
    if (IsOpenEnded() || start == kTimeMin) return kTimeMax;
    return end - start;
  }

  /// True iff time-point t lies in [start, end).
  constexpr bool Contains(TimePoint t) const { return start <= t && t < end; }

  /// During-or-equals: *this is fully contained in `other` (Allen's "during
  /// or equals", written with a square-subset in the paper).
  constexpr bool ContainedIn(const Interval& other) const {
    return IsValid() && other.start <= start && end <= other.end;
  }

  /// Strict during: contained in `other` and not equal to it.
  constexpr bool During(const Interval& other) const {
    return ContainedIn(other) && !(*this == other);
  }

  /// Intersects: the two intervals share at least one time-point.
  constexpr bool Intersects(const Interval& other) const {
    return IsValid() && other.IsValid() && start < other.end &&
           other.start < end;
  }

  /// Meets: *this ends exactly where `other` starts.
  constexpr bool Meets(const Interval& other) const {
    return IsValid() && other.IsValid() && end == other.start;
  }

  /// Intersection; empty if the intervals are disjoint.
  constexpr Interval Intersect(const Interval& other) const {
    Interval out(std::max(start, other.start), std::min(end, other.end));
    return out.IsValid() ? out : Empty();
  }

  constexpr bool operator==(const Interval& other) const {
    return start == other.start && end == other.end;
  }
  constexpr bool operator!=(const Interval& other) const {
    return !(*this == other);
  }
  /// Orders by start, then end; lets intervals key ordered containers.
  constexpr bool operator<(const Interval& other) const {
    return start != other.start ? start < other.start : end < other.end;
  }

  /// "[3, 7)"; infinities render as "-inf"/"inf".
  std::string ToString() const;
};

/// Parses "[a, b)" (or "a b"); accepts "inf"/"-inf". Used by the text IO.
Result<Interval> ParseInterval(const std::string& text);

}  // namespace graphite

#endif  // GRAPHITE_TEMPORAL_INTERVAL_H_
