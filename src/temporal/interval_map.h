// IntervalMap<V>: an ordered piecewise-constant map from disjoint
// half-open intervals to values. This is the storage behind both
//   * dynamically partitioned vertex states (paper §IV-A1) — where the
//     entries tile the vertex lifespan with no gaps and Set() performs the
//     automatic repartition-on-update, and
//   * temporal properties (Def. 1, A_V / A_E) — where gaps are allowed.
#ifndef GRAPHITE_TEMPORAL_INTERVAL_MAP_H_
#define GRAPHITE_TEMPORAL_INTERVAL_MAP_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "temporal/interval.h"
#include "util/status.h"

namespace graphite {

template <typename V>
class IntervalMap {
 public:
  struct Entry {
    Interval interval;
    V value;

    bool operator==(const Entry& other) const {
      return interval == other.interval && value == other.value;
    }
  };

  IntervalMap() = default;

  /// Constructs a map with a single entry covering `interval`.
  IntervalMap(const Interval& interval, V value) {
    if (interval.IsValid()) entries_.push_back({interval, std::move(value)});
  }

  /// Adopts `entries` verbatim (must be sorted by start and disjoint) —
  /// the deserialization path. Rebuilding via Set() would be quadratic and
  /// the entries of a persisted map are already canonical; restoring them
  /// unchanged is what makes checkpoint round-trips byte-exact.
  static IntervalMap FromEntries(std::vector<Entry> entries) {
    IntervalMap m;
    m.entries_ = std::move(entries);
    GRAPHITE_CHECK(m.IsWellFormed());
    return m;
  }

  /// Assigns `value` over `interval`, splitting any overlapped entries so
  /// that portions outside `interval` keep their previous values. This is
  /// the paper's dynamic state repartitioning: updating a sub-interval of a
  /// partitioned state splits it, leaving the remainder intact.
  void Set(const Interval& interval, const V& value) {
    if (interval.IsEmpty()) return;
    // Fast paths for the engine's hot case: the written interval lines up
    // with an existing entry (dynamic repartitioning converges quickly,
    // so most updates hit an already-split slice).
    {
      auto it = std::upper_bound(
          entries_.begin(), entries_.end(), interval.start,
          [](TimePoint tp, const Entry& e) { return tp < e.interval.start; });
      if (it != entries_.begin()) {
        Entry& e = *(it - 1);
        if (e.interval == interval) {
          e.value = value;
          return;
        }
      }
    }
    std::vector<Entry> out;
    out.reserve(entries_.size() + 2);
    bool inserted = false;
    auto insert_new = [&] {
      if (!inserted) {
        out.push_back({interval, value});
        inserted = true;
      }
    };
    for (const Entry& e : entries_) {
      if (e.interval.end <= interval.start) {
        out.push_back(e);
      } else if (e.interval.start >= interval.end) {
        insert_new();
        out.push_back(e);
      } else {
        // Overlap: keep the non-overlapped fringes of `e`.
        if (e.interval.start < interval.start) {
          out.push_back({{e.interval.start, interval.start}, e.value});
        }
        insert_new();
        if (e.interval.end > interval.end) {
          out.push_back({{interval.end, e.interval.end}, e.value});
        }
      }
    }
    insert_new();
    entries_ = std::move(out);
  }

  /// Removes all values over `interval`, splitting boundary entries.
  void Erase(const Interval& interval) {
    if (interval.IsEmpty()) return;
    std::vector<Entry> out;
    out.reserve(entries_.size() + 1);
    for (const Entry& e : entries_) {
      if (!e.interval.Intersects(interval)) {
        out.push_back(e);
        continue;
      }
      if (e.interval.start < interval.start) {
        out.push_back({{e.interval.start, interval.start}, e.value});
      }
      if (e.interval.end > interval.end) {
        out.push_back({{interval.end, e.interval.end}, e.value});
      }
    }
    entries_ = std::move(out);
  }

  /// Value at time-point t, if any entry covers it.
  std::optional<V> Get(TimePoint t) const {
    const Entry* e = Find(t);
    if (e == nullptr) return std::nullopt;
    return e->value;
  }

  /// Entry covering time-point t, or nullptr.
  const Entry* Find(TimePoint t) const {
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), t,
        [](TimePoint tp, const Entry& e) { return tp < e.interval.start; });
    if (it == entries_.begin()) return nullptr;
    --it;
    return it->interval.Contains(t) ? &*it : nullptr;
  }

  /// Invokes fn(clipped_interval, value) for every entry intersecting
  /// `query`, clipped to the query window, in temporal order.
  template <typename Fn>
  void ForEachIntersecting(const Interval& query, Fn&& fn) const {
    if (query.IsEmpty()) return;
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), query.start,
        [](TimePoint tp, const Entry& e) { return tp < e.interval.start; });
    if (it != entries_.begin()) --it;
    for (; it != entries_.end() && it->interval.start < query.end; ++it) {
      Interval clipped = it->interval.Intersect(query);
      if (clipped.IsValid()) fn(clipped, it->value);
    }
  }

  /// Merges adjacent entries whose intervals meet and whose values compare
  /// equal. Keeps the representation minimal (paper: states may be split
  /// without semantic change; coalescing is the inverse).
  void Coalesce() {
    if (entries_.size() < 2) return;
    // In-place compaction; allocation-free, and a pure scan when nothing
    // is mergeable (the common case on the engine's per-vertex hot path).
    size_t write = 0;
    for (size_t read = 1; read < entries_.size(); ++read) {
      Entry& prev = entries_[write];
      Entry& cur = entries_[read];
      if (prev.interval.end == cur.interval.start && prev.value == cur.value) {
        prev.interval.end = cur.interval.end;
      } else {
        ++write;
        if (write != read) entries_[write] = std::move(cur);
      }
    }
    entries_.resize(write + 1);
  }

  /// True iff the entries tile `span` exactly: first starts at span.start,
  /// last ends at span.end, and consecutive entries meet with no gaps.
  /// This is the invariant of a partitioned vertex state S(tau).
  bool CoversExactly(const Interval& span) const {
    if (entries_.empty()) return span.IsEmpty();
    if (entries_.front().interval.start != span.start) return false;
    if (entries_.back().interval.end != span.end) return false;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i - 1].interval.end != entries_[i].interval.start) {
        return false;
      }
    }
    return true;
  }

  /// Verifies ordering + disjointness. Engine-internal sanity check.
  bool IsWellFormed() const {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].interval.IsValid()) return false;
      if (i > 0 && entries_[i - 1].interval.end > entries_[i].interval.start) {
        return false;
      }
    }
    return true;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// The hull [first.start, last.end); empty if the map is empty.
  Interval Span() const {
    if (entries_.empty()) return Interval::Empty();
    return Interval(entries_.front().interval.start,
                    entries_.back().interval.end);
  }

  bool operator==(const IntervalMap& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<Entry> entries_;  // Sorted by interval.start, disjoint.
};

}  // namespace graphite

#endif  // GRAPHITE_TEMPORAL_INTERVAL_MAP_H_
