// Time domain (paper §III): a linearly ordered discrete domain Omega over
// non-negative whole numbers. One time unit maps to a user-defined
// wall-clock quantum. kTimeMax plays the role of +infinity for open-ended
// intervals such as [t, inf).
#ifndef GRAPHITE_TEMPORAL_TIME_H_
#define GRAPHITE_TEMPORAL_TIME_H_

#include <cstdint>
#include <limits>

namespace graphite {

/// A discrete instant in the time domain Omega.
using TimePoint = int64_t;

/// Sentinel for +infinity (exclusive upper bound of open-ended intervals).
inline constexpr TimePoint kTimeMax = std::numeric_limits<int64_t>::max();

/// Sentinel for -infinity (used by LD's reverse traversal over time).
inline constexpr TimePoint kTimeMin = std::numeric_limits<int64_t>::min();

}  // namespace graphite

#endif  // GRAPHITE_TEMPORAL_TIME_H_
