// Monotonic bump allocator backing the superstep hot path. The engines
// give every logical worker (inbox storage) and every OS thread (warp
// scratch/output) one Arena; allocations are pointer bumps, nothing is
// freed individually, and the whole arena is reset at superstep barriers.
// Reset() keeps a single block sized by the decaying high-water mark of
// recent supersteps (the same BufferTuning knob as Writer::Clear), so in
// steady state a superstep performs zero heap allocations: everything the
// warp sweep and the flat inboxes need comes out of the retained block.
//
// Lifetime invariant (see DESIGN.md §4f): arena memory allocated during a
// superstep's messaging phase stays valid through the next superstep's
// compute phase and any barrier checkpoint encode, and is reclaimed only
// by the owner's Reset() at the superstep barrier.
//
// Under AddressSanitizer the invariant is *instrumented*, not just
// documented: block capacity is manually poisoned and only the bytes a
// bump allocation hands out are unpoisoned, so a span that outlives its
// superstep (read after the barrier Reset) or strays into the alignment
// padding between allocations faults immediately as a use-after-poison
// instead of silently reading recycled bytes. See DESIGN.md §4k.
#ifndef GRAPHITE_UTIL_ARENA_H_
#define GRAPHITE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "engine/buffer_tuning.h"
#include "util/status.h"

// ASan detection: GCC defines __SANITIZE_ADDRESS__; Clang exposes it via
// __has_feature. GRAPHITE_ASAN gates both the poisoning calls below and
// the use-after-reset death test in tests/arena_test.cc.
#if defined(__SANITIZE_ADDRESS__)
#define GRAPHITE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAPHITE_ASAN 1
#endif
#endif

#if defined(GRAPHITE_ASAN)
#include <sanitizer/asan_interface.h>
#define GRAPHITE_ASAN_POISON(addr, size) \
  __asan_poison_memory_region((addr), (size))
#define GRAPHITE_ASAN_UNPOISON(addr, size) \
  __asan_unpoison_memory_region((addr), (size))
#else
#define GRAPHITE_ASAN_POISON(addr, size) ((void)(addr), (void)(size))
#define GRAPHITE_ASAN_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace graphite {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() {
    // ASan: hand memory back to the allocator unpoisoned.
    for (Block& b : blocks_) GRAPHITE_ASAN_UNPOISON(b.data.get(), b.size);
  }

  /// Bump-allocates `bytes` aligned to `align` (a power of two, at most
  /// alignof(max_align_t) — block bases are only new[]-aligned).
  void* Allocate(size_t bytes, size_t align) {
    GRAPHITE_CHECK((align & (align - 1)) == 0 &&
                   align <= alignof(std::max_align_t));
    if (blocks_.empty()) AddBlock(bytes + align);
    Block& top = blocks_.back();
    size_t at = (top.used + align - 1) & ~(align - 1);
    if (at + bytes > top.size) {
      AddBlock(bytes + align);
      Block& fresh = blocks_.back();
      const uintptr_t base = reinterpret_cast<uintptr_t>(fresh.data.get());
      at = ((base + align - 1) & ~(uintptr_t{align} - 1)) - base;
      fresh.used = at + bytes;
      GRAPHITE_ASAN_UNPOISON(fresh.data.get() + at, bytes);
      return fresh.data.get() + at;
    }
    top.used = at + bytes;
    GRAPHITE_ASAN_UNPOISON(top.data.get() + at, bytes);
    return top.data.get() + at;
  }

  /// Typed array allocation; arena memory is never destructed, so only
  /// trivially destructible element types may live here.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Grows the array at `ptr` from `old_n` to `new_n` elements in place if
  /// it is the top allocation of the current block and the block has room.
  /// Returns false (allocation untouched) otherwise.
  template <typename T>
  bool TryExtendArray(T* ptr, size_t old_n, size_t new_n) {
    if (blocks_.empty()) return false;
    Block& top = blocks_.back();
    char* end = reinterpret_cast<char*>(ptr) + old_n * sizeof(T);
    if (end != top.data.get() + top.used) return false;
    const size_t extra = (new_n - old_n) * sizeof(T);
    if (top.used + extra > top.size) return false;
    top.used += extra;
    GRAPHITE_ASAN_UNPOISON(end, extra);
    return true;
  }

  /// Reclaims everything. Keeps exactly one block, sized by the decaying
  /// high-water mark of recent supersteps: a one-off spike fades, steady
  /// usage allocates nothing. Every pointer previously handed out dangles
  /// after this — callers (ArenaVec, FlatInbox) must drop theirs first.
  void Reset() {
    size_t used = 0;
    for (const Block& b : blocks_) used += b.used;
    high_water_ = BufferTuning::Decay(high_water_, used);
    const size_t want = high_water_ + BufferTuning::kRetainBytes;
    if (blocks_.size() == 1 &&
        !BufferTuning::ShouldShrink(blocks_[0].size, high_water_)) {
      // ASan: re-poison the retained block wholesale. Any pointer handed
      // out before this barrier now faults on first touch instead of
      // silently reading bytes the next superstep recycles.
      GRAPHITE_ASAN_POISON(blocks_[0].data.get(), blocks_[0].size);
      blocks_[0].used = 0;
      return;
    }
    for (Block& b : blocks_) GRAPHITE_ASAN_UNPOISON(b.data.get(), b.size);
    blocks_.clear();
    AddBlock(want);
  }

  /// Bytes bump-allocated since the last Reset (diagnostics / tests).
  size_t used() const {
    size_t used = 0;
    for (const Block& b : blocks_) used += b.used;
    return used;
  }
  /// Total block capacity currently held (diagnostics / tests).
  size_t capacity() const {
    size_t cap = 0;
    for (const Block& b : blocks_) cap += b.size;
    return cap;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void AddBlock(size_t at_least) {
    size_t size = blocks_.empty() ? BufferTuning::kRetainBytes
                                  : blocks_.back().size * 2;
    size = std::max(size, at_least);
    blocks_.push_back({std::make_unique<char[]>(size), size, 0});
    // ASan: fresh capacity starts poisoned; Allocate unpoisons exactly
    // the bytes it hands out (alignment padding stays poisoned).
    GRAPHITE_ASAN_POISON(blocks_.back().data.get(), size);
  }

  std::vector<Block> blocks_;
  size_t high_water_ = 0;  // Decaying peak of per-superstep usage.
};

/// Growable array over an Arena. push_back grows geometrically, extending
/// in place when it is the arena's top allocation and otherwise copying to
/// a fresh slab (the old one is reclaimed wholesale at Arena::Reset). The
/// element type must be trivially copyable: slabs relocate by memcpy and
/// are never destructed.
///
/// clear() keeps the slab (reuse within a superstep); Release() must be
/// called before the backing arena resets — it forgets the slab so the
/// next push_back starts from the freshly reset arena.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  void Attach(Arena* arena) {
    GRAPHITE_CHECK(arena != nullptr);
    arena_ = arena;
  }

  /// Forgets the slab. Required before (or right after) the backing
  /// arena's Reset, which invalidates it.
  void Release() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = v;
  }

  /// Appends a contiguous range.
  void Append(const T* src, size_t n) {
    if (size_ + n > capacity_) Grow(size_ + n);
    std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

  /// Sets size to exactly `n` without initializing new elements (the
  /// caller overwrites them all, e.g. the inbox scatter pass).
  void ResizeUninitialized(size_t n) {
    if (n > capacity_) Grow(n);
    size_ = n;
  }

  /// Drops elements from `n` to the end (n <= size()).
  void Truncate(size_t n) {
    GRAPHITE_CHECK(n <= size_);
    size_ = n;
  }

  /// Inserts `v` at position `pos`, shifting the tail (pos <= size()).
  void InsertAt(size_t pos, const T& v) {
    GRAPHITE_CHECK(pos <= size_);
    if (size_ == capacity_) Grow(size_ + 1);
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = v;
    ++size_;
  }

  /// Removes the element at `pos`, shifting the tail (pos < size()).
  void EraseAt(size_t pos) {
    GRAPHITE_CHECK(pos < size_);
    std::memmove(data_ + pos, data_ + pos + 1,
                 (size_ - pos - 1) * sizeof(T));
    --size_;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const T> span() const { return {data_, size_}; }
  std::span<const T> subspan(size_t offset, size_t count) const {
    return {data_ + offset, count};
  }

 private:
  void Grow(size_t need) {
    GRAPHITE_CHECK(arena_ != nullptr);
    size_t cap = capacity_ == 0 ? 8 : capacity_ * 2;
    cap = std::max(cap, need);
    if (data_ != nullptr && arena_->TryExtendArray(data_, capacity_, cap)) {
      capacity_ = cap;
      return;
    }
    T* fresh = arena_->AllocateArray<T>(cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Heap-backed stand-in for ArenaVec when the element type is not
/// trivially copyable (e.g. messages carrying vectors): same interface, a
/// std::vector underneath, and Release() decays retained capacity with the
/// shared BufferTuning knob so both storage kinds age identically.
template <typename T>
class RecycledVec {
 public:
  void Attach(Arena*) {}  // Storage is owned; the arena is not used.

  void Release() {
    high_water_ = BufferTuning::Decay(high_water_, v_.size());
    v_.clear();
    if (BufferTuning::ShouldShrink(v_.capacity() * sizeof(T),
                                   high_water_ * sizeof(T))) {
      v_.shrink_to_fit();
      v_.reserve(high_water_);
    }
  }

  void clear() { v_.clear(); }
  void push_back(const T& v) { v_.push_back(v); }
  void push_back(T&& v) { v_.push_back(std::move(v)); }
  void Append(const T* src, size_t n) { v_.insert(v_.end(), src, src + n); }
  void ResizeUninitialized(size_t n) { v_.resize(n); }
  void Truncate(size_t n) {
    GRAPHITE_CHECK(n <= v_.size());
    v_.resize(n);
  }

  T& operator[](size_t i) { return v_[i]; }
  const T& operator[](size_t i) const { return v_[i]; }
  T& back() { return v_.back(); }
  T* data() { return v_.data(); }
  const T* data() const { return v_.data(); }
  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  std::span<const T> span() const { return {v_.data(), v_.size()}; }
  std::span<const T> subspan(size_t offset, size_t count) const {
    return {v_.data() + offset, count};
  }

 private:
  std::vector<T> v_;
  size_t high_water_ = 0;
};

/// Storage for superstep-lifetime element runs: arena-backed whenever the
/// type allows it, heap-backed (with the same capacity aging) otherwise.
template <typename T>
using SuperstepVec =
    std::conditional_t<std::is_trivially_copyable_v<T> &&
                           std::is_trivially_destructible_v<T>,
                       ArenaVec<T>, RecycledVec<T>>;

}  // namespace graphite

#endif  // GRAPHITE_UTIL_ARENA_H_
