#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace graphite {

// ---------------------------------------------------------------------
// JsonWriter.
// ---------------------------------------------------------------------

void JsonWriter::NewlineIndent() {
  out_.push_back('\n');
  out_.append(static_cast<size_t>(indent_) * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  Scope& top = stack_.back();
  if (top.kind == '{') {
    // Inside an object a value may only follow a Key() (which clears the
    // pending flag itself before writing the separator).
    GRAPHITE_CHECK(key_pending_);
    key_pending_ = false;
    return;
  }
  if (top.count++ > 0) out_.push_back(',');
  if (indent_ > 0) {
    NewlineIndent();
  } else if (top.count > 1) {
    out_.push_back(' ');
  }
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  GRAPHITE_CHECK(!stack_.empty() && stack_.back().kind == '{');
  GRAPHITE_CHECK(!key_pending_);
  Scope& top = stack_.back();
  if (top.count++ > 0) out_.push_back(',');
  if (indent_ > 0) {
    NewlineIndent();
  } else if (top.count > 1) {
    out_.push_back(' ');
  }
  out_.push_back('"');
  JsonEscape(key, &out_);
  out_.append("\": ");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back({'{', 0});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  GRAPHITE_CHECK(!stack_.empty() && stack_.back().kind == '{');
  GRAPHITE_CHECK(!key_pending_);
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (indent_ > 0 && !empty) NewlineIndent();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back({'[', 0});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  GRAPHITE_CHECK(!stack_.empty() && stack_.back().kind == '[');
  const bool empty = stack_.back().count == 0;
  stack_.pop_back();
  if (indent_ > 0 && !empty) NewlineIndent();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  JsonEscape(value, &out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {  // JSON has no inf/nan; emit null.
    out_.append("null");
    return *this;
  }
  char buf[40];
  // Shortest %g that round-trips a double; force a ".0" for integral
  // values so the token parses back as a double-typed number.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == value) {
    for (int prec = 1; prec < 17; ++prec) {
      char probe[40];
      std::snprintf(probe, sizeof(probe), "%.*g", prec, value);
      std::sscanf(probe, "%lf", &parsed);
      if (parsed == value) {
        std::memcpy(buf, probe, sizeof(probe));
        break;
      }
    }
  }
  out_.append(buf);
  if (out_.find_first_of(".eEn", out_.size() - std::strlen(buf)) ==
      std::string::npos) {
    out_.append(".0");
  }
  return *this;
}

JsonWriter& JsonWriter::Fixed(double value, int decimals) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_.append(json);
  return *this;
}

void JsonEscape(std::string_view value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

// ---------------------------------------------------------------------
// JsonValue.
// ---------------------------------------------------------------------

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::MakeInt(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}
JsonValue JsonValue::MakeDouble(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}
JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}
JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool(bool def) const {
  return type_ == Type::kBool ? bool_ : def;
}
int64_t JsonValue::AsInt(int64_t def) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return def;
}
double JsonValue::AsDouble(double def) const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return def;
}
const std::string& JsonValue::AsString() const { return string_; }

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : def;
}
int64_t JsonValue::GetInt(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : def;
}
double JsonValue::GetDouble(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : def;
}
std::string JsonValue::GetString(std::string_view key,
                                 std::string def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::move(def);
}

void JsonValue::Add(std::string key, JsonValue v) {
  GRAPHITE_CHECK(type_ == Type::kObject);
  object_.emplace_back(std::move(key), std::move(v));
}
void JsonValue::Push(JsonValue v) {
  GRAPHITE_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

void JsonValue::WriteTo(JsonWriter* w) const {
  switch (type_) {
    case Type::kNull: w->Null(); break;
    case Type::kBool: w->Bool(bool_); break;
    case Type::kInt: w->Int(int_); break;
    case Type::kDouble: w->Double(double_); break;
    case Type::kString: w->String(string_); break;
    case Type::kArray:
      w->BeginArray();
      for (const JsonValue& v : array_) v.WriteTo(w);
      w->EndArray();
      break;
    case Type::kObject:
      w->BeginObject();
      for (const Member& m : object_) {
        w->Key(m.first);
        m.second.WriteTo(w);
      }
      w->EndObject();
      break;
  }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    GRAPHITE_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  // GRAPHITE_RETURN_NOT_OK works on Status; helpers below return Status
  // and the top level converts to Result.
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const size_t n = std::strlen(w);
    if (text_.substr(pos_, n) == w) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      std::string s;
      GRAPHITE_RETURN_NOT_OK(ParseString(&s));
      *out = JsonValue::MakeString(std::move(s));
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue::MakeBool(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue::MakeBool(false);
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      std::string key;
      GRAPHITE_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      JsonValue v;
      GRAPHITE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Add(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue v;
      GRAPHITE_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Push(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          GRAPHITE_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (!(Consume('\\') && Consume('u'))) {
              return Err("unpaired surrogate");
            }
            uint32_t lo = 0;
            GRAPHITE_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) return Err("invalid surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Err("bad \\u escape");
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    if (token.empty() || token == "-") return Err("expected a value");
    if (!is_double) {
      // Out-of-int64-range literals fall back to double.
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = JsonValue::MakeInt(v);
        return Status::OK();
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("bad number");
    *out = JsonValue::MakeDouble(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace graphite
