// Minimal JSON support shared by the benchmark reports, the serving
// protocol (src/server/), and the CLI client.
//
//   JsonWriter — streaming emitter with automatic comma/nesting handling,
//                fixed-precision doubles for the bench reports, and an
//                opt-in pretty mode for human-facing output. Replaces the
//                hand-rolled snprintf emission the bench binaries used to
//                duplicate (whose fixed-size buffers silently truncated —
//                the PR-3 bug class this type exists to retire).
//   JsonValue  — an owning DOM (null/bool/int/double/string/array/object,
//                object key order preserved) with a recursive-descent
//                parser, used to decode protocol requests/responses.
//
// The dialect is RFC 8259 minus exotica: no duplicate-key policing, \uXXXX
// escapes decode to UTF-8 (surrogate pairs supported), parse depth capped.
#ifndef GRAPHITE_UTIL_JSON_H_
#define GRAPHITE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace graphite {

/// Streaming JSON emitter. Scope calls must nest correctly (checked);
/// values inside objects must be preceded by Key().
///
///   JsonWriter w;
///   w.BeginObject().Key("wall_ms").Fixed(3.25, 3).Key("modes").BeginArray()
///    .Int(1).Int(2).EndArray().EndObject();
///   w.str()  // {"wall_ms": 3.250, "modes": [1, 2]}
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level; 0 emits
  /// the compact one-line form used on the wire (with a space after ':'
  /// and ',' for readability, matching the committed bench reports).
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Shortest form that round-trips ("%.17g", trimmed): protocol payloads.
  JsonWriter& Double(double value);
  /// Fixed decimals ("%.*f"): the bench-report style, stable diffs.
  JsonWriter& Fixed(double value, int decimals);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Emits an already-serialized JSON fragment verbatim in value position
  /// (e.g. a cached result object). The caller vouches for its validity.
  JsonWriter& Raw(std::string_view json);

  /// The output so far. Valid JSON once every scope is closed.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  void NewlineIndent();

  struct Scope {
    char kind;    // '{' or '['
    int count;    // values emitted so far
  };
  std::string out_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
  int indent_;
};

/// Escapes `value` per JSON string rules (quotes not included).
void JsonEscape(std::string_view value, std::string* out);

/// An owning JSON document node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  static JsonValue MakeBool(bool b);
  static JsonValue MakeInt(int64_t i);
  static JsonValue MakeDouble(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool def = false) const;
  int64_t AsInt(int64_t def = 0) const;     // truncates doubles
  double AsDouble(double def = 0.0) const;
  const std::string& AsString() const;      // empty when not a string

  const std::vector<JsonValue>& items() const { return array_; }
  const std::vector<Member>& members() const { return object_; }
  std::vector<JsonValue>* mutable_items() { return &array_; }

  /// Object lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Typed convenience lookups with defaults (absent/mistyped → default).
  bool GetBool(std::string_view key, bool def = false) const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  double GetDouble(std::string_view key, double def = 0.0) const;
  std::string GetString(std::string_view key, std::string def = "") const;

  /// Appends/sets members (object) or items (array).
  void Add(std::string key, JsonValue v);
  void Push(JsonValue v);

  /// Re-serializes through `w` (used by the CLI pretty-printer).
  void WriteTo(JsonWriter* w) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace graphite

#endif  // GRAPHITE_UTIL_JSON_H_
