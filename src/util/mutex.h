// The repo's one blessed locking vocabulary: an annotated Mutex, an RAII
// MutexLock, and a CondVar that waits on a Mutex. Everything concurrent in
// the tree locks through these three types — tools/graphite_lint.py
// rejects raw std::mutex / std::lock_guard / std::condition_variable
// anywhere else — so Clang's -Wthread-safety analysis (see
// util/thread_annotations.h) can verify the whole tree's lock discipline
// at compile time: guarded members, REQUIRES contracts, scoped
// acquire/release. Under GCC the annotations vanish and this is a
// zero-cost veneer over the std primitives.
//
// Condition waits are written as explicit loops at the call site,
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);
//
// rather than predicate lambdas: the analysis checks the guarded reads in
// the loop condition against the held capability, which a lambda body
// (analyzed as a separate function) would defeat.
#ifndef GRAPHITE_UTIL_MUTEX_H_
#define GRAPHITE_UTIL_MUTEX_H_

#include <condition_variable>  // lint:allow(mutex: the wrapped primitives)
#include <mutex>               // lint:allow(mutex: the wrapped primitives)

#include "util/thread_annotations.h"

namespace graphite {

/// Annotated exclusive lock. Prefer MutexLock over manual Lock/Unlock.
class GRAPHITE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GRAPHITE_ACQUIRE() { mu_.lock(); }
  void Unlock() GRAPHITE_RELEASE() { mu_.unlock(); }
  bool TryLock() GRAPHITE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint:allow(mutex: the one wrapped instance)
};

/// RAII scoped lock over Mutex (the std::lock_guard shape, annotated so
/// the analysis knows the capability is held for the scope's extent).
class GRAPHITE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRAPHITE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() GRAPHITE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex at each Wait. Waiters must hold the
/// Mutex; Wait atomically releases it, blocks, and reacquires before
/// returning — invisible to the analysis, which (correctly) still
/// considers the capability held across the call, so guarded state read
/// in the re-checked loop condition type-checks.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One shot of the wait loop: unlock, block until notified, relock.
  /// Spurious wakeups happen — always re-check the condition in a loop.
  void Wait(Mutex& mu) GRAPHITE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking: ownership stays with the caller's
    // MutexLock, exactly as the annotations describe.
    std::unique_lock<std::mutex> native(  // lint:allow(mutex: adapter)
        mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(mutex: the wrapped primitive)
};

}  // namespace graphite

#endif  // GRAPHITE_UTIL_MUTEX_H_
