// Deterministic pseudo-random number generation for synthetic dataset
// generators and property tests. All experiments are reproducible from a
// seed; we never consult global randomness.
#ifndef GRAPHITE_UTIL_RNG_H_
#define GRAPHITE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/status.h"

namespace graphite {

/// splitmix64: tiny, fast, full-period 2^64 generator. Good enough for
/// workload synthesis; not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    GRAPHITE_CHECK(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi). Requires lo < hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    GRAPHITE_CHECK(lo < hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric with success probability p (>=1 trials); clamped to >= 1.
  int64_t Geometric(double p) {
    GRAPHITE_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 1;
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    int64_t k = static_cast<int64_t>(std::ceil(std::log(u) / std::log1p(-p)));
    return k < 1 ? 1 : k;
  }

  /// Zipf-like rank in [0, n): draws rank r with probability ~ 1/(r+1)^alpha
  /// via inverse-CDF approximation (bounded Pareto). Used for power-law
  /// degree targets.
  uint64_t Zipf(uint64_t n, double alpha) {
    GRAPHITE_CHECK(n > 0);
    if (n == 1) return 0;
    double u = NextDouble();
    double exp = 1.0 - alpha;
    double nn = static_cast<double>(n);
    double r;
    if (std::fabs(exp) < 1e-9) {
      r = std::pow(nn, u) - 1.0;
    } else {
      r = std::pow(u * (std::pow(nn, exp) - 1.0) + 1.0, 1.0 / exp) - 1.0;
    }
    if (r < 0) r = 0;
    uint64_t out = static_cast<uint64_t>(r);
    return out >= n ? n - 1 : out;
  }

 private:
  uint64_t state_;
};

}  // namespace graphite

#endif  // GRAPHITE_UTIL_RNG_H_
