// Lightweight byte-buffer writer/reader used to serialize messages that
// cross worker boundaries in the BSP engine. Cross-worker traffic passes
// through this codec so message-byte metrics reflect real wire sizes.
#ifndef GRAPHITE_UTIL_SERDE_H_
#define GRAPHITE_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/buffer_tuning.h"
#include "util/status.h"
#include "util/varint.h"

namespace graphite {

/// Append-only encoder over a std::string buffer.
class Writer {
 public:
  /// Appends an unsigned varint.
  void WriteU64(uint64_t v) { PutVarint64(&buf_, v); }
  /// Appends a zig-zag signed varint.
  void WriteI64(int64_t v) { PutVarint64Signed(&buf_, v); }
  /// Appends a single raw byte.
  void WriteByte(uint8_t b) { buf_.push_back(static_cast<char>(b)); }
  /// Appends a length-prefixed byte string.
  void WriteBytes(const std::string& s) {
    WriteU64(s.size());
    buf_.append(s);
  }
  /// Appends raw bytes with NO length prefix. For transport framing that
  /// carries its own envelope (the payload is already self-describing).
  void Append(std::string_view s) { buf_.append(s); }
  /// Appends a length-prefixed vector of signed varints.
  void WriteI64Vec(const std::vector<int64_t>& v) {
    WriteU64(v.size());
    for (int64_t x : v) WriteI64(x);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  /// Empties the buffer but keeps (most of) its capacity — the engines
  /// drain and refill wire buffers every superstep, so reuse beats
  /// Release() + reconstruct (which reallocates from scratch each time).
  /// Capacity is bounded by a decaying high-water mark (the shared
  /// BufferTuning knob, also used by the superstep arenas): one
  /// pathologically large superstep no longer pins its peak allocation for
  /// the rest of a long run — once recent fills stay small, the buffer
  /// shrinks back.
  void Clear() {
    high_water_ = BufferTuning::Decay(high_water_, buf_.size());
    buf_.clear();
    if (BufferTuning::ShouldShrink(buf_.capacity(), high_water_)) {
      buf_.shrink_to_fit();
      buf_.reserve(high_water_);
    }
  }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
  size_t high_water_ = 0;  // Decaying peak of recent fill sizes.
};

/// Sequential decoder over a byte buffer. All reads abort on malformed
/// input via GRAPHITE_CHECK: buffers are produced by Writer in-process, so
/// corruption indicates an engine bug, not bad user data.
class Reader {
 public:
  /// Accepts any contiguous byte range (std::string converts implicitly).
  /// The bytes must outlive the Reader — frames sliced out of a transport
  /// stream stay valid until that channel is consumed.
  explicit Reader(std::string_view buf) : buf_(buf) {}

  uint64_t ReadU64() {
    uint64_t v = 0;
    GRAPHITE_CHECK(GetVarint64(buf_, &pos_, &v));
    return v;
  }
  int64_t ReadI64() {
    int64_t v = 0;
    GRAPHITE_CHECK(GetVarint64Signed(buf_, &pos_, &v));
    return v;
  }
  uint8_t ReadByte() {
    GRAPHITE_CHECK(pos_ < buf_.size());
    return static_cast<uint8_t>(buf_[pos_++]);
  }
  std::string ReadBytes() {
    uint64_t n = ReadU64();
    GRAPHITE_CHECK(pos_ + n <= buf_.size());
    std::string out(buf_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  std::vector<int64_t> ReadI64Vec() {
    uint64_t n = ReadU64();
    std::vector<int64_t> out;
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) out.push_back(ReadI64());
    return out;
  }

  // Status-returning reads for untrusted at-rest bytes (graph files,
  // checkpoints): a truncated or malformed buffer yields a DataLoss error
  // carrying the byte offset instead of aborting the process. On failure
  // the cursor stays at the failed field, so the offset in the message
  // points at it.
  Status TryReadU64(uint64_t* v) {
    if (!GetVarint64(buf_, &pos_, v)) return CorruptAt("varint");
    return Status::OK();
  }
  Status TryReadI64(int64_t* v) {
    if (!GetVarint64Signed(buf_, &pos_, v)) return CorruptAt("varint");
    return Status::OK();
  }
  Status TryReadByte(uint8_t* b) {
    if (pos_ >= buf_.size()) return CorruptAt("byte");
    *b = static_cast<uint8_t>(buf_[pos_++]);
    return Status::OK();
  }
  Status TryReadBytes(std::string* s) {
    const size_t at = pos_;
    uint64_t n = 0;
    GRAPHITE_RETURN_NOT_OK(TryReadU64(&n));
    if (n > buf_.size() - pos_) {
      pos_ = at;
      return CorruptAt("length-prefixed bytes");
    }
    *s = std::string(buf_.substr(pos_, n));
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t position() const { return pos_; }

 private:
  Status CorruptAt(const char* what) const {
    return Status::DataLoss("truncated or malformed " + std::string(what) +
                            " at byte " + std::to_string(pos_) + " of " +
                            std::to_string(buf_.size()));
  }

  std::string_view buf_;
  size_t pos_ = 0;
};

}  // namespace graphite

#endif  // GRAPHITE_UTIL_SERDE_H_
