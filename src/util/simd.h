// Runtime-dispatched SIMD primitives for the warp kernel's endpoint pass
// (icm/warp.h) and the engines' prefetch plumbing (engine/flat_inbox.h).
//
// Design rules (DESIGN.md §4j):
//   * Every primitive has a scalar body that is the portable reference;
//     the SSE2/AVX2 bodies compute bit-identical results (all operations
//     are exact integer compares/adds), so switching the dispatch level
//     can never change a result byte. tests/simd_test.cc pins each
//     primitive against the scalar body and tests/warp_soa_test.cc pins
//     the whole kernel across the dispatch matrix.
//   * Dispatch is decided once per process: the GRAPHITE_SIMD environment
//     variable ("scalar", "sse2", "avx2", or "native"/"best") wins,
//     otherwise a GRAPHITE_NATIVE build dispatches to the best level the
//     CPU supports and the portable default build stays scalar. Tests and
//     benches may override with SimdSetDispatch (clamped to CPU support).
//   * The AVX2 bodies are compiled with a function-level target attribute,
//     so every build — including the portable default — contains all
//     levels and any binary can execute any supported level. This is what
//     lets the default/asan/tsan test builds run the full dispatch matrix
//     on capable hosts while still defaulting to the scalar path.
//
// On non-x86-64 targets (or non-GNU compilers) only the scalar level
// exists and every dispatch request clamps to it.
#ifndef GRAPHITE_UTIL_SIMD_H_
#define GRAPHITE_UTIL_SIMD_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GRAPHITE_SIMD_X86 1
#include <immintrin.h>
#endif

// Best-effort software prefetch (read, high temporal locality); a no-op
// where the builtin is unavailable.
#if defined(__GNUC__) || defined(__clang__)
#define GRAPHITE_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define GRAPHITE_PREFETCH(addr) ((void)0)
#endif

namespace graphite {

/// Instruction-set level of the wide kernels. Ordered: a CPU supporting a
/// level supports every lower one.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// 64-bit lanes processed per step at the level (1 / 2 / 4).
constexpr int SimdLanes(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return 2;
    case SimdLevel::kAvx2:
      return 4;
    default:
      return 1;
  }
}

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

/// Best level this CPU can execute (compile-target permitting).
inline SimdLevel SimdMaxSupported() {
#if GRAPHITE_SIMD_X86
  // SSE2 is part of the x86-64 baseline; AVX2 is a runtime cpuid check.
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2 : SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
}

/// Parses a GRAPHITE_SIMD value. "native"/"best"/"max" request the CPU's
/// best level; unknown or null values return `fallback` unchanged. The
/// result is NOT yet clamped to CPU support.
inline SimdLevel SimdLevelFromName(const char* name, SimdLevel fallback) {
  if (name == nullptr || *name == '\0') return fallback;
  if (std::strcmp(name, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(name, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(name, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(name, "native") == 0 || std::strcmp(name, "best") == 0 ||
      std::strcmp(name, "max") == 0) {
    return SimdMaxSupported();
  }
  return fallback;
}

namespace simd_internal {

/// The process-default dispatch policy: GRAPHITE_SIMD env override first,
/// else best-supported under GRAPHITE_NATIVE builds, else scalar.
inline SimdLevel InitialDispatch() {
#ifdef GRAPHITE_NATIVE
  const SimdLevel fallback = SimdMaxSupported();
#else
  const SimdLevel fallback = SimdLevel::kScalar;
#endif
  const SimdLevel want =
      SimdLevelFromName(std::getenv("GRAPHITE_SIMD"), fallback);
  return want <= SimdMaxSupported() ? want : SimdMaxSupported();
}

inline std::atomic<int>& DispatchState() {
  static std::atomic<int> level{static_cast<int>(InitialDispatch())};
  return level;
}

}  // namespace simd_internal

/// The process-wide dispatch level the kernels run at. Decided once (env
/// override / build default), overridable via SimdSetDispatch.
inline SimdLevel SimdDispatchLevel() {
  return static_cast<SimdLevel>(
      simd_internal::DispatchState().load(std::memory_order_relaxed));
}

/// Forces the dispatch level (tests, benches), clamped to what the CPU
/// supports; returns the level actually applied.
inline SimdLevel SimdSetDispatch(SimdLevel want) {
  const SimdLevel applied = want <= SimdMaxSupported() ? want
                                                       : SimdMaxSupported();
  simd_internal::DispatchState().store(static_cast<int>(applied),
                                       std::memory_order_relaxed);
  return applied;
}

// ---------------------------------------------------------------------------
// Wide primitives. Each takes the level explicitly so a kernel resolves
// dispatch once and stays on that level for the whole call.
// ---------------------------------------------------------------------------

namespace simd_internal {

inline void PrefixSumI32Scalar(int32_t* a, size_t n) {
  int32_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += a[i];
    a[i] = run;
  }
}

inline void NeqFlagsI64Scalar(const int64_t* t, size_t n, int32_t* flags) {
  if (n == 0) return;
  flags[0] = 1;
  for (size_t i = 1; i < n; ++i) flags[i] = t[i] != t[i - 1] ? 1 : 0;
}

inline void ClipI64Scalar(const int64_t* s, const int64_t* e, size_t n,
                          int64_t lo, int64_t hi, int64_t* cs, int64_t* ce) {
  for (size_t i = 0; i < n; ++i) {
    cs[i] = s[i] > lo ? s[i] : lo;
    ce[i] = e[i] < hi ? e[i] : hi;
  }
}

/// times[i] = *(const int64_t*)(base + stride16 * i) — the strided key
/// gather over a 16-byte {int64 key, uint32 tag} record array.
inline void GatherKeysScalar(const void* base, size_t n, int64_t* times) {
  const char* p = static_cast<const char*>(base);
  for (size_t i = 0; i < n; ++i) {
    int64_t t;
    std::memcpy(&t, p + 16 * i, sizeof(t));
    times[i] = t;
  }
}

inline bool IsSortedI64Scalar(const int64_t* a, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (a[i - 1] > a[i]) return false;
  }
  return true;
}

#if GRAPHITE_SIMD_X86

inline void PrefixSumI32Sse2(int32_t* a, size_t n) {
  __m128i carry = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  int32_t run = _mm_cvtsi128_si32(carry);
  for (; i < n; ++i) {
    run += a[i];
    a[i] = run;
  }
}

inline void NeqFlagsI64Sse2(const int64_t* t, size_t n, int32_t* flags) {
  if (n == 0) return;
  flags[0] = 1;
  size_t i = 1;
  const __m128i one = _mm_set1_epi32(1);
  for (; i + 2 <= n; i += 2) {
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t + i - 1));
    // SSE2 has no 64-bit compare: AND the 32-bit equality halves.
    const __m128i eq32 = _mm_cmpeq_epi32(cur, prev);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    // Dwords 0 and 2 carry the per-qword mask (-1 equal / 0 not); flag is
    // 1 + mask. Pack them into lanes 0..1 and store the low 8 bytes.
    const __m128i packed = _mm_shuffle_epi32(eq64, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128i f = _mm_add_epi32(one, packed);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(flags + i), f);
  }
  for (; i < n; ++i) flags[i] = t[i] != t[i - 1] ? 1 : 0;
}

inline void GatherKeysSse2(const void* base, size_t n, int64_t* times) {
  const char* p = static_cast<const char*>(base);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i t0 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p + 16 * i));
    const __m128i t1 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p + 16 * i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(times + i),
                     _mm_unpacklo_epi64(t0, t1));
  }
  for (; i < n; ++i) {
    std::memcpy(times + i, p + 16 * i, sizeof(int64_t));
  }
}

__attribute__((target("avx2"))) inline void PrefixSumI32Avx2(int32_t* a,
                                                             size_t n) {
  __m256i carry = _mm256_setzero_si256();  // every lane = running total
  const __m256i pick3 = _mm256_set1_epi32(3);
  const __m256i pick7 = _mm256_set1_epi32(7);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));  // scan per 128 lane
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Carry the low half's total (element 3) into the high half.
    __m256i low3 = _mm256_permutevar8x32_epi32(x, pick3);
    low3 = _mm256_blend_epi32(_mm256_setzero_si256(), low3, 0xF0);
    x = _mm256_add_epi32(x, low3);
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), x);
    carry = _mm256_permutevar8x32_epi32(x, pick7);  // every lane = x[7]
  }
  int32_t run = _mm_cvtsi128_si32(_mm256_castsi256_si128(carry));
  for (; i < n; ++i) {
    run += a[i];
    a[i] = run;
  }
}

__attribute__((target("avx2"))) inline void NeqFlagsI64Avx2(const int64_t* t,
                                                            size_t n,
                                                            int32_t* flags) {
  if (n == 0) return;
  flags[0] = 1;
  size_t i = 1;
  const __m128i one = _mm_set1_epi32(1);
  const __m256i pack = _mm256_set_epi32(0, 0, 0, 0, 6, 4, 2, 0);
  for (; i + 4 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i - 1));
    const __m256i eq = _mm256_cmpeq_epi64(cur, prev);
    // Low dword of each qword mask, packed into the low 128 bits.
    const __m256i packed = _mm256_permutevar8x32_epi32(eq, pack);
    const __m128i f = _mm_add_epi32(one, _mm256_castsi256_si128(packed));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(flags + i), f);
  }
  for (; i < n; ++i) flags[i] = t[i] != t[i - 1] ? 1 : 0;
}

__attribute__((target("avx2"))) inline void ClipI64Avx2(
    const int64_t* s, const int64_t* e, size_t n, int64_t lo, int64_t hi,
    int64_t* cs, int64_t* ce) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i ve =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + i));
    // AVX2 lacks 64-bit min/max: compare + blend (signed compare, exact).
    const __m256i smax =
        _mm256_blendv_epi8(vlo, vs, _mm256_cmpgt_epi64(vs, vlo));
    const __m256i emin =
        _mm256_blendv_epi8(vhi, ve, _mm256_cmpgt_epi64(vhi, ve));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cs + i), smax);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(ce + i), emin);
  }
  for (; i < n; ++i) {
    cs[i] = s[i] > lo ? s[i] : lo;
    ce[i] = e[i] < hi ? e[i] : hi;
  }
}

__attribute__((target("avx2"))) inline void GatherKeysAvx2(const void* base,
                                                           size_t n,
                                                           int64_t* times) {
  const char* p = static_cast<const char*>(base);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Two 32-byte loads cover 4 records; keys sit in qwords 0 and 2.
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 16 * i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 16 * i + 32));
    const __m256i ka = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i kb = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(times + i),
                        _mm256_permute2x128_si256(ka, kb, 0x20));
  }
  for (; i < n; ++i) {
    std::memcpy(times + i, p + 16 * i, sizeof(int64_t));
  }
}

__attribute__((target("avx2"))) inline bool IsSortedI64Avx2(const int64_t* a,
                                                            size_t n) {
  size_t i = 0;
  // Overlapping loads a[i..i+3] vs a[i+1..i+4]: any lane with prev > next
  // breaks sortedness (movemask folds the 4 compares into one test).
  for (; i + 5 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i nxt =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 1));
    if (_mm256_movemask_epi8(_mm256_cmpgt_epi64(cur, nxt)) != 0) return false;
  }
  for (; i + 1 < n; ++i) {
    if (a[i] > a[i + 1]) return false;
  }
  return true;
}

#endif  // GRAPHITE_SIMD_X86

}  // namespace simd_internal

/// In-place inclusive prefix sum over int32.
inline void SimdPrefixSumI32(SimdLevel level, int32_t* a, size_t n) {
#if GRAPHITE_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return simd_internal::PrefixSumI32Avx2(a, n);
  }
  if (level == SimdLevel::kSse2) return simd_internal::PrefixSumI32Sse2(a, n);
#endif
  (void)level;
  simd_internal::PrefixSumI32Scalar(a, n);
}

/// flags[0] = 1; flags[i] = (t[i] != t[i-1]). Prefix-summing the flags
/// yields each element's 1-based distinct rank in a sorted array.
inline void SimdNeqFlagsI64(SimdLevel level, const int64_t* t, size_t n,
                            int32_t* flags) {
#if GRAPHITE_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return simd_internal::NeqFlagsI64Avx2(t, n, flags);
  }
  if (level == SimdLevel::kSse2) {
    return simd_internal::NeqFlagsI64Sse2(t, n, flags);
  }
#endif
  (void)level;
  simd_internal::NeqFlagsI64Scalar(t, n, flags);
}

/// cs[i] = max(s[i], lo), ce[i] = min(e[i], hi) — the interval clip's
/// branch-free half; the caller tests cs < ce itself.
inline void SimdClipI64(SimdLevel level, const int64_t* s, const int64_t* e,
                        size_t n, int64_t lo, int64_t hi, int64_t* cs,
                        int64_t* ce) {
#if GRAPHITE_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return simd_internal::ClipI64Avx2(s, e, n, lo, hi, cs, ce);
  }
#endif
  (void)level;  // SSE2 lacks 64-bit compares; its clip is the scalar body.
  simd_internal::ClipI64Scalar(s, e, n, lo, hi, cs, ce);
}

/// Strided key gather: times[i] = the leading int64 of the i-th 16-byte
/// record at `base` (layout of warp_internal::Endpoint).
inline void SimdGatherKeysI64(SimdLevel level, const void* base, size_t n,
                              int64_t* times) {
#if GRAPHITE_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return simd_internal::GatherKeysAvx2(base, n, times);
  }
  if (level == SimdLevel::kSse2) {
    return simd_internal::GatherKeysSse2(base, n, times);
  }
#endif
  (void)level;
  simd_internal::GatherKeysScalar(base, n, times);
}

/// True when a[] is non-decreasing.
inline bool SimdIsSortedI64(SimdLevel level, const int64_t* a, size_t n) {
#if GRAPHITE_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return simd_internal::IsSortedI64Avx2(a, n);
  }
#endif
  (void)level;  // SSE2 lacks 64-bit compares; early-exit scalar is fine.
  return simd_internal::IsSortedI64Scalar(a, n);
}

}  // namespace graphite

#endif  // GRAPHITE_UTIL_SIMD_H_
