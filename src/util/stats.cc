#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace graphite {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) {
    GRAPHITE_CHECK(x > 0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  GRAPHITE_CHECK(xs.size() == ys.size());
  GRAPHITE_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx == 0) {
    fit.slope = 0;
    fit.intercept = my;
    fit.r2 = 0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // R^2 = 1 - SSE/SST; degenerate (constant y) counts as perfect fit.
  if (syy == 0) {
    fit.r2 = 1.0;
    return fit;
  }
  double sse = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    sse += e * e;
  }
  fit.r2 = 1.0 - sse / syy;
  (void)n;
  return fit;
}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  if (rows_.empty()) return "";
  size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out += cell;
      if (c + 1 < cols) out.append(width[c] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(rows_[0]);
  size_t rule = 0;
  for (size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 < cols ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (size_t i = 1; i < rows_.size(); ++i) emit_row(rows_[i]);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatCount(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace graphite
