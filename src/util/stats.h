// Small statistics helpers used by the benchmark harness: means, linear
// regression / R^2 (Fig. 4 correlation plots), and text-table rendering.
#ifndef GRAPHITE_UTIL_STATS_H_
#define GRAPHITE_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphite {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Geometric mean; 0 for an empty vector. Values must be positive.
double GeoMean(const std::vector<double>& xs);

/// Ordinary least squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;  ///< Coefficient of determination.
};

/// Fits y against x. Requires xs.size() == ys.size() and size >= 2.
LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

/// Plain-text table renderer for benchmark output. Columns are sized to
/// their widest cell; the first row is treated as a header.
class TextTable {
 public:
  /// Appends a row of cells.
  void AddRow(std::vector<std::string> cells);
  /// Renders the table with aligned columns and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 2);

/// Formats a count with thousands separators (e.g. 1,234,567).
std::string FormatCount(int64_t v);

}  // namespace graphite

#endif  // GRAPHITE_UTIL_STATS_H_
