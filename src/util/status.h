// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
// The library does not throw exceptions; fallible operations return a
// Status (or a Result<T> carrying a value on success).
#ifndef GRAPHITE_UTIL_STATUS_H_
#define GRAPHITE_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace graphite {

/// Broad machine-inspectable error categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kConstraintViolation,  ///< Temporal-graph soundness constraint broken.
  kIoError,
  kInternal,
  kDataLoss,  ///< At-rest bytes are corrupt/truncated (checksum, codec).
};

/// Returns a human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error outcome. Accessing the value of an error Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK Status: failure. Passing an OK status is a bug.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK Status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the outcome; OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define GRAPHITE_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::graphite::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define GRAPHITE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace graphite

#endif  // GRAPHITE_UTIL_STATUS_H_
