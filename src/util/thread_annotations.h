// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These let the compiler *prove* the lock discipline the concurrent
// classes (engine/thread_pool.h, src/server/) otherwise only promise in
// comments: a member declared GRAPHITE_GUARDED_BY(mu_) may only be touched
// while mu_ is held, a function annotated GRAPHITE_REQUIRES(mu_) may only
// be called with mu_ held, and a scoped lock type (util/mutex.h) tells the
// analysis where capabilities are acquired and released. Under Clang the
// analysis runs as part of normal compilation via -Wthread-safety (added
// automatically by the top-level CMakeLists.txt; promoted to an error by
// the GRAPHITE_WERROR knob). GCC has no such analysis, so every macro
// expands to nothing there and the annotated code compiles unchanged.
//
// Naming follows the "capability" vocabulary of the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// GRAPHITE_ to stay out of other headers' way.
#ifndef GRAPHITE_UTIL_THREAD_ANNOTATIONS_H_
#define GRAPHITE_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define GRAPHITE_THREAD_ATTR_(x) __attribute__((x))
#else
#define GRAPHITE_THREAD_ATTR_(x)  // GCC/MSVC: no analysis, no attribute.
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define GRAPHITE_CAPABILITY(x) GRAPHITE_THREAD_ATTR_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define GRAPHITE_SCOPED_CAPABILITY GRAPHITE_THREAD_ATTR_(scoped_lockable)

/// Data member readable/writable only while the given lock is held.
#define GRAPHITE_GUARDED_BY(x) GRAPHITE_THREAD_ATTR_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given lock.
#define GRAPHITE_PT_GUARDED_BY(x) GRAPHITE_THREAD_ATTR_(pt_guarded_by(x))

/// Function callable only while holding the given lock(s).
#define GRAPHITE_REQUIRES(...) \
  GRAPHITE_THREAD_ATTR_(requires_capability(__VA_ARGS__))

/// Function callable only while holding the lock(s) in shared mode.
#define GRAPHITE_REQUIRES_SHARED(...) \
  GRAPHITE_THREAD_ATTR_(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define GRAPHITE_ACQUIRE(...) \
  GRAPHITE_THREAD_ATTR_(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define GRAPHITE_RELEASE(...) \
  GRAPHITE_THREAD_ATTR_(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define GRAPHITE_TRY_ACQUIRE(ret, ...) \
  GRAPHITE_THREAD_ATTR_(try_acquire_capability(ret, __VA_ARGS__))

/// Function callable only while NOT holding the given lock(s).
#define GRAPHITE_EXCLUDES(...) \
  GRAPHITE_THREAD_ATTR_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (no acquire/release).
#define GRAPHITE_ASSERT_CAPABILITY(x) \
  GRAPHITE_THREAD_ATTR_(assert_capability(x))

/// Function returning a reference to the given capability.
#define GRAPHITE_RETURN_CAPABILITY(x) \
  GRAPHITE_THREAD_ATTR_(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (e.g. CondVar::Wait, which unlocks and relocks internally).
#define GRAPHITE_NO_THREAD_SAFETY_ANALYSIS \
  GRAPHITE_THREAD_ATTR_(no_thread_safety_analysis)

#endif  // GRAPHITE_UTIL_THREAD_ANNOTATIONS_H_
