// Wall-clock timers for runtime metrics (makespan, compute+ time,
// messaging time, barrier time).
#ifndef GRAPHITE_UTIL_TIMER_H_
#define GRAPHITE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace graphite {

/// Monotonic nanosecond clock reading.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulating stopwatch. Start/Stop may be called repeatedly; elapsed
/// time across all Start..Stop windows is summed.
class Stopwatch {
 public:
  void Start() { start_ = NowNanos(); }
  void Stop() { total_ += NowNanos() - start_; }
  /// Total accumulated nanoseconds.
  int64_t ElapsedNanos() const { return total_; }
  double ElapsedMillis() const { return static_cast<double>(total_) / 1e6; }
  void Reset() { total_ = 0; }

 private:
  int64_t start_ = 0;
  int64_t total_ = 0;
};

/// RAII region timer adding its lifetime to a counter in nanoseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

}  // namespace graphite

#endif  // GRAPHITE_UTIL_TIMER_H_
