#include "util/varint.h"

#include <string_view>

namespace graphite {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view buf, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < buf.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(buf[p++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // Truncated or overlong.
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace graphite
