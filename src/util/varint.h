// Variable-byte integer codec used for interval messages (paper §VI:
// "we use variable byte-length numbers to represent them, and observe that
// the overall message sizes drop by 59-78%").
//
// Unsigned values use LEB128; signed values are zig-zag mapped first.
#ifndef GRAPHITE_UTIL_VARINT_H_
#define GRAPHITE_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace graphite {

/// Appends `value` to `out` as LEB128 (7 bits per byte, MSB = continuation).
void PutVarint64(std::string* out, uint64_t value);

/// Decodes a varint from [*pos, buf.size()). Advances *pos past the varint.
/// Returns false on truncated input or overlong (>10 byte) encodings.
/// Takes a view so callers can decode frames sliced out of a larger
/// transport stream without copying.
bool GetVarint64(std::string_view buf, size_t* pos, uint64_t* value);

/// Zig-zag maps a signed value so small magnitudes encode compactly.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends a zig-zag varint.
inline void PutVarint64Signed(std::string* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

/// Decodes a zig-zag varint.
inline bool GetVarint64Signed(std::string_view buf, size_t* pos,
                              int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint64(buf, pos, &raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

/// Number of bytes PutVarint64 would emit for `value`.
size_t VarintLength(uint64_t value);

}  // namespace graphite

#endif  // GRAPHITE_UTIL_VARINT_H_
