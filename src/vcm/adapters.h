// Graph adapters binding the VCM engine to concrete graph views:
//   SnapshotAdapter    — the temporal graph at one time-point (MSB,
//                        Chlonos batches, GoFFish inner loop).
//   TransformedAdapter — the time-expanded transformed graph (TGB).
#ifndef GRAPHITE_VCM_ADAPTERS_H_
#define GRAPHITE_VCM_ADAPTERS_H_

#include "graph/snapshot.h"
#include "graph/temporal_graph.h"
#include "graph/transformed_graph.h"

namespace graphite {

/// Units are the temporal graph's vertex indices; only vertices alive at
/// the snapshot time exist. Edges are the out-edges alive at that time.
class SnapshotAdapter {
 public:
  explicit SnapshotAdapter(SnapshotView view) : view_(view) {}

  size_t NumUnits() const { return view_.graph().num_vertices(); }
  bool UnitExists(uint32_t u) const { return view_.VertexActive(u); }
  int64_t PartitionId(uint32_t u) const { return view_.graph().vertex_id(u); }

  /// fn(dst_unit, const StoredEdge&, EdgePos) per live out-edge.
  template <typename Fn>
  void ForEachOutEdge(uint32_t u, Fn&& fn) const {
    view_.ForEachOutEdge(u, [&](const StoredEdge& e, EdgePos pos) {
      fn(static_cast<uint32_t>(e.dst), e, pos);
    });
  }

  const SnapshotView& view() const { return view_; }

 private:
  SnapshotView view_;
};

/// Units are transformed-graph replicas. Replicas of one original vertex
/// hash to the same worker (they share PartitionId), mirroring how a
/// Giraph deployment would partition the transformed graph by vertex name.
class TransformedAdapter {
 public:
  TransformedAdapter(const TransformedGraph* tg, const TemporalGraph* g)
      : tg_(tg), g_(g) {}

  size_t NumUnits() const { return tg_->num_replicas(); }
  bool UnitExists(uint32_t) const { return true; }
  int64_t PartitionId(uint32_t r) const {
    return g_->vertex_id(tg_->replica_vertex(static_cast<ReplicaIdx>(r)));
  }

  /// fn(dst_unit, const TransformedGraph::TransitEdge&) per out-edge.
  template <typename Fn>
  void ForEachOutEdge(uint32_t r, Fn&& fn) const {
    for (const auto& e : tg_->OutEdges(static_cast<ReplicaIdx>(r))) {
      fn(static_cast<uint32_t>(e.dst), e);
    }
  }

  const TransformedGraph& transformed() const { return *tg_; }
  const TemporalGraph& graph() const { return *g_; }

 private:
  const TransformedGraph* tg_;
  const TemporalGraph* g_;
};

}  // namespace graphite

#endif  // GRAPHITE_VCM_ADAPTERS_H_
