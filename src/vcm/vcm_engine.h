// Vertex-centric (Pregel-style) BSP engine. This is the stand-in for stock
// Apache Giraph: every baseline platform in the paper (MSB, Chlonos, TGB,
// GoFFish) is implemented over this engine, so — as in the paper — "the
// primitives are the key distinction and not the ... engine" (§VII-A3).
//
// A Program defines:
//   using Value   = ...;   // per-unit state
//   using Message = ...;   // payload (needs MessageTraits<Message>)
//   Value Init(uint32_t unit) const;
//   void Compute(VcmContext<...>& ctx, uint32_t unit, Value& value,
//                std::span<const Message> msgs);
//
// An Adapter abstracts the graph view the programs run on — a snapshot of
// the temporal graph (MSB/Chlonos/GoFFish) or the transformed graph (TGB):
//   size_t NumUnits() const;
//   bool UnitExists(uint32_t unit) const;
//   int64_t PartitionId(uint32_t unit) const;   // id hashed for placement
//
// Execution follows the paper's activation rule (§IV-A2): units implicitly
// vote to halt after every superstep and reactivate on message receipt. In
// superstep 0 every existing unit runs once with no messages (Pregel's
// initialization superstep). `always_active` keeps every unit live for
// fixed-iteration algorithms like PageRank.
#ifndef GRAPHITE_VCM_VCM_ENGINE_H_
#define GRAPHITE_VCM_VCM_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "ckpt/fault_injector.h"
#include "engine/flat_inbox.h"
#include "engine/message_traits.h"
#include "engine/metrics.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "util/serde.h"
#include "util/timer.h"

namespace graphite {

struct VcmOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling when use_threads is set (engine/parallel.h).
  RuntimeOptions runtime;
  bool always_active = false;
  int max_supersteps = std::numeric_limits<int>::max();
};

/// Per-worker send-side context handed to Program::Compute.
template <typename Message>
class VcmContext {
 public:
  VcmContext(int superstep, int my_worker, const std::vector<int>& worker_of,
             std::vector<Writer>* wire, int64_t* messages_sent)
      : superstep_(superstep),
        my_worker_(my_worker),
        worker_of_(worker_of),
        wire_(wire),
        messages_sent_(messages_sent) {}

  /// Current superstep, starting at 0.
  int superstep() const { return superstep_; }

  /// Sends `msg` to unit `dst`, delivered at the start of the next
  /// superstep. Serialized immediately into the destination worker's wire
  /// buffer so byte metrics reflect the wire format.
  void Send(uint32_t dst, const Message& msg) {
    Writer& w = (*wire_)[worker_of_[dst]];
    w.WriteU64(dst);
    MessageTraits<Message>::Write(w, msg);
    ++*messages_sent_;
  }

  int my_worker() const { return my_worker_; }

 private:
  int superstep_;
  int my_worker_;
  const std::vector<int>& worker_of_;
  std::vector<Writer>* wire_;
  int64_t* messages_sent_;
};

/// Runs `program` over `adapter` to convergence (or max_supersteps).
/// Final unit values are moved into *out_values if non-null.
/// `initial_messages` seed the superstep-0 inboxes — used by GoFFish to
/// carry temporal messages from the previous snapshot; units with seed
/// messages receive them in superstep 0 (all existing units run then).
/// `recovery` connects the run to the checkpoint subsystem (ckpt/):
/// checkpoints are written where options.runtime.checkpoint says, into
/// recovery.store; with recovery.resume the run restarts from the newest
/// valid checkpoint (initial_messages are then ignored — the frame holds
/// the delivered inboxes). Requires MessageTraits for Value when used.
template <typename Program, typename Adapter>
RunMetrics RunVcm(
    const Adapter& adapter, Program& program, const VcmOptions& options,
    std::vector<typename Program::Value>* out_values = nullptr,
    const std::vector<std::pair<uint32_t, typename Program::Message>>&
        initial_messages = {},
    const RecoveryContext& recovery = {}) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  const size_t n = adapter.NumUnits();
  const int num_workers = options.num_workers;
  GRAPHITE_CHECK(num_workers >= 1);
  HashPartitioner partitioner(num_workers);

  // Placement.
  std::vector<int> worker_of(n);
  std::vector<std::vector<uint32_t>> units_by_worker(num_workers);
  for (uint32_t u = 0; u < n; ++u) {
    if (!adapter.UnitExists(u)) {
      worker_of[u] = 0;
      continue;
    }
    const int w = partitioner.WorkerOf(adapter.PartitionId(u));
    worker_of[u] = w;
    units_by_worker[w].push_back(u);
  }

  // State.
  std::vector<Value> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    if (adapter.UnitExists(u)) values[u] = program.Init(u);
  }
  std::vector<uint8_t> has_mail(n, 0);
  // Units holding unconsumed mail, per destination worker: the barrier
  // clears exactly these inboxes, each list is written only by its
  // destination's delivery lane, and the list doubles as the unit layout
  // order for FlatInbox::Seal.
  std::vector<std::vector<uint32_t>> mailed(num_workers);

  std::vector<size_t> worker_sizes(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    worker_sizes[w] = units_by_worker[w].size();
  }
  // Persistent pool + fixed chunk table, reused across supersteps.
  SuperstepRuntime rt(num_workers, options.use_threads, options.runtime,
                      worker_sizes);
  const int num_chunks = rt.num_chunks();

  // Flat per-worker inboxes (engine/flat_inbox.h): one contiguous
  // arena-backed buffer per destination worker, per-unit message runs as
  // zero-copy spans; nothing allocates on this path in steady state.
  InboxSpanTable inbox_spans(n);
  std::vector<FlatInbox<Message>> inbox(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    inbox[w].Init(&rt.worker_arena(w), &inbox_spans);
  }

  // Checkpointing needs the unit Value on the wire too (the Message
  // already has traits by the engine contract); see ckpt/checkpoint.h.
  constexpr bool kCheckpointable = HasWireTraits<Value>;
  // A VCM worker section: per owned unit, the mail flag, the value and the
  // undelivered inbox for the next superstep.
  // (The bodies sit behind if constexpr so a Value without wire traits
  // still compiles — the lambdas are then never called.)
  auto encode_section = [&](int w) {
    Writer enc;
    if constexpr (kCheckpointable) {
      for (const uint32_t u : units_by_worker[w]) {
        enc.WriteU64(u);
        enc.WriteByte(has_mail[u]);
        MessageTraits<Value>::Write(enc, values[u]);
        enc.WriteU64(inbox[w].CountFor(u));
        for (const Message& m : inbox[w].MessagesFor(u)) {
          MessageTraits<Message>::Write(enc, m);
        }
      }
    }
    return enc.Release();
  };
  // Inverse; the store's CRC already vouched for the bytes, so reads are
  // the fast aborting kind. Messages are staged into worker w's flat
  // inbox; the caller Seals after rebuilding the mailed lists.
  auto decode_section = [&](int w, const std::string& bytes) {
    if constexpr (kCheckpointable) {
      Reader r(bytes);
      while (!r.AtEnd()) {
        const uint32_t u = static_cast<uint32_t>(r.ReadU64());
        GRAPHITE_CHECK(u < n);
        has_mail[u] = r.ReadByte();
        values[u] = MessageTraits<Value>::Read(r);
        const uint64_t num_msgs = r.ReadU64();
        for (uint64_t i = 0; i < num_msgs; ++i) {
          inbox[w].Deliver(u, MessageTraits<Message>::Read(r));
        }
      }
    }
  };

  // Recovery (ckpt/): restore the exact input of a checkpointed superstep,
  // or fall through to a cold start (which still seeds initial_messages).
  int start_superstep = 0;
  bool resumed = false;
  CheckpointStore* store = recovery.store;
  RunMetrics metrics;
  if constexpr (kCheckpointable) {
    if (store != nullptr && recovery.resume) {
      Result<CheckpointBlob> blob =
          recovery.resume_from >= 0 ? store->Load(recovery.resume_from)
                                    : store->LoadLatestValid();
      if (blob.ok()) {
        Result<CheckpointFrame> frame = DecodeFrame(blob.value().payload);
        GRAPHITE_CHECK(frame.ok());
        const CheckpointFrame& f = frame.value();
        GRAPHITE_CHECK(f.num_units == n);
        GRAPHITE_CHECK(static_cast<int>(f.sections.size()) == num_workers);
        // Sections cover disjoint owned-unit sets: decode in parallel.
        std::vector<int64_t> unused_ns;
        rt.ParallelFor(num_workers, &unused_ns,
                       [&](int w, int) { decode_section(w, f.sections[w]); });
        // Rebuild the per-destination mailed lists in owner order (their
        // order only affects buffer layout and barrier clearing, not
        // results), then group the decoded messages for compute.
        for (int w = 0; w < num_workers; ++w) {
          for (const uint32_t u : units_by_worker[w]) {
            if (has_mail[u]) mailed[w].push_back(u);
          }
          inbox[w].Seal(mailed[w]);
        }
        start_superstep = f.superstep;
        resumed = true;
        metrics.resumed_from = f.superstep;
        metrics.supersteps = f.counters.supersteps;
        metrics.compute_calls = f.counters.compute_calls;
        metrics.scatter_calls = f.counters.scatter_calls;
        metrics.messages = f.counters.messages;
        metrics.message_bytes = f.counters.message_bytes;
      }
    }
  } else {
    // Programs without wire traits for Value can run, but cannot
    // checkpoint or resume.
    GRAPHITE_CHECK(store == nullptr && !recovery.resume);
  }
  if (!resumed) {
    for (const auto& [unit, msg] : initial_messages) {
      GRAPHITE_CHECK(unit < n && adapter.UnitExists(unit));
      inbox[worker_of[unit]].Deliver(unit, msg);
      if (!has_mail[unit]) {
        has_mail[unit] = 1;
        mailed[worker_of[unit]].push_back(unit);
      }
    }
    for (int w = 0; w < num_workers; ++w) inbox[w].Seal(mailed[w]);
  }

  // Wire buffers, indexed [chunk][dst_worker]; chunk rows concatenate in
  // chunk order to exactly sequential mode's per-worker buffers. Reused
  // across supersteps (Clear keeps capacity).
  std::vector<std::vector<Writer>> wire(num_chunks);
  for (auto& row : wire) row.resize(num_workers);
  std::vector<int64_t> chunk_messages(num_chunks, 0);
  std::vector<int64_t> chunk_calls(num_chunks, 0);
  std::vector<int64_t> chunk_ns(num_chunks, 0);
  std::vector<int64_t> col_bytes(num_workers, 0);
  std::vector<uint8_t> col_any(num_workers, 0);

  std::atomic<bool> killed{false};
  const int64_t run_start = NowNanos();
  [[maybe_unused]] int64_t last_checkpoint_t = run_start;

  for (int superstep = start_superstep; superstep < options.max_supersteps;
       ++superstep) {
    SuperstepMetrics ss;
    ss.worker_compute_ns.assign(num_workers, 0);
    ss.worker_in_bytes.assign(num_workers, 0);
    ss.worker_compute_calls.assign(num_workers, 0);
    std::fill(chunk_messages.begin(), chunk_messages.end(), int64_t{0});
    std::fill(chunk_calls.begin(), chunk_calls.end(), int64_t{0});

    // --- Compute phase: chunked, work-stealing when configured. ---
    ss.steals = rt.ComputePhase(
        &ss.thread_compute_ns, [&](int c, const WorkChunk& chunk, int) {
          if (killed.load(std::memory_order_relaxed)) return;
          if (recovery.fault != nullptr &&
              recovery.fault->Fire(superstep, chunk.worker)) {
            killed.store(true, std::memory_order_relaxed);
            return;
          }
          const int64_t t0 = NowNanos();
          VcmContext<Message> ctx(superstep, chunk.worker, worker_of, &wire[c],
                                  &chunk_messages[c]);
          const std::vector<uint32_t>& mine = units_by_worker[chunk.worker];
          for (size_t i = chunk.begin; i < chunk.end; ++i) {
            const uint32_t u = mine[i];
            const bool active =
                superstep == 0 || options.always_active || has_mail[u];
            if (!active) continue;
            program.Compute(ctx, u, values[u],
                            inbox[chunk.worker].MessagesFor(u));
            ++chunk_calls[c];
          }
          chunk_ns[c] = NowNanos() - t0;
        });
    if (killed.load(std::memory_order_relaxed)) {
      // Simulated crash (ckpt/fault_injector.h): return exactly as a dead
      // process would look to a restarting one — nothing from the killed
      // superstep is accumulated, checkpointed or trusted.
      metrics.interrupted = true;
      metrics.makespan_ns = NowNanos() - run_start;
      if (out_values != nullptr) *out_values = std::move(values);
      return metrics;
    }
    for (int c = 0; c < num_chunks; ++c) {
      const int w = rt.chunk(c).worker;
      ss.worker_compute_ns[w] += chunk_ns[c];
      ss.worker_compute_calls[w] += chunk_calls[c];
      ss.compute_calls += chunk_calls[c];
      ss.messages += chunk_messages[c];
    }

    // --- Barrier: drop the consumed flat inboxes and reset the superstep
    // arenas. Arenas reset only here (see DESIGN.md §4f) — the messaging
    // phase below refills them for superstep+1, and a checkpoint encoded
    // after messaging may still reference arena-backed storage. ---
    const int64_t barrier_t = NowNanos();
    for (int w = 0; w < num_workers; ++w) {
      for (const uint32_t u : mailed[w]) has_mail[u] = 0;
      inbox[w].ResetAtBarrier(mailed[w]);
      mailed[w].clear();
      rt.worker_arena(w).Reset();
    }
    ss.barrier_ns = NowNanos() - barrier_t;

    // --- Messaging: per-destination columns delivered concurrently. ---
    const int64_t msg_t = NowNanos();
    std::fill(col_bytes.begin(), col_bytes.end(), int64_t{0});
    std::fill(col_any.begin(), col_any.end(), uint8_t{0});
    rt.ParallelFor(num_workers, &ss.thread_messaging_ns, [&](int dst, int) {
      for (int src = 0; src < num_workers; ++src) {
        const auto [c0, c1] = rt.ChunkRange(src);
        for (int c = c0; c < c1; ++c) {
          Writer& buf = wire[c][dst];
          if (buf.size() == 0) continue;
          col_bytes[dst] += static_cast<int64_t>(buf.size());
          if (src != dst) {
            ss.worker_in_bytes[dst] += static_cast<int64_t>(buf.size());
          }
          Reader reader(buf.buffer());
          while (!reader.AtEnd()) {
            const uint32_t unit = static_cast<uint32_t>(reader.ReadU64());
            Message msg = MessageTraits<Message>::Read(reader);
            inbox[dst].Deliver(unit, std::move(msg));
            if (!has_mail[unit]) {
              has_mail[unit] = 1;
              mailed[dst].push_back(unit);
            }
          }
          col_any[dst] = 1;
          buf.Clear();
        }
      }
      // Group this worker's staged messages by unit: per-unit runs become
      // spans for the next compute phase (and checkpoint encode).
      inbox[dst].Seal(mailed[dst]);
    });
    ss.messaging_ns = NowNanos() - msg_t;
    bool any_message = false;
    for (int dst = 0; dst < num_workers; ++dst) {
      ss.message_bytes += col_bytes[dst];
      if (col_any[dst]) any_message = true;
    }

    metrics.Accumulate(ss);
    // Always-active programs run to max_supersteps (the loop bound);
    // message-driven ones halt on the first quiet superstep.
    const bool halting = !any_message && !options.always_active;
    if constexpr (kCheckpointable) {
      // Barrier checkpoint: the messaging phase has delivered the inboxes
      // of superstep+1, so the frame captures exactly that superstep's
      // input. The final barrier is never checkpointed.
      if (store != nullptr && !halting &&
          superstep + 1 < options.max_supersteps &&
          options.runtime.checkpoint.ShouldCheckpoint(
              superstep, NowNanos() - last_checkpoint_t)) {
        const int64_t ckpt_t0 = NowNanos();
        CheckpointFrame frame;
        frame.superstep = superstep + 1;
        frame.num_units = n;
        frame.counters = {metrics.supersteps, metrics.compute_calls,
                          metrics.scatter_calls, metrics.messages,
                          metrics.message_bytes, 0, 0};
        frame.sections.resize(num_workers);
        // Sections cover disjoint owned-unit sets: encode in parallel on
        // the run's pool.
        std::vector<int64_t> unused_ns;
        rt.ParallelFor(num_workers, &unused_ns, [&](int w, int) {
          frame.sections[w] = encode_section(w);
        });
        const Status committed =
            store->Commit(frame.superstep, EncodeFrame(frame));
        GRAPHITE_CHECK(committed.ok());
        last_checkpoint_t = NowNanos();
        SuperstepMetrics& back = metrics.per_superstep.back();
        back.checkpoint_ns = last_checkpoint_t - ckpt_t0;
        back.checkpoint_bytes = store->last_commit_bytes();
        ++metrics.checkpoints;
        metrics.checkpoint_ns += back.checkpoint_ns;
        metrics.checkpoint_bytes += back.checkpoint_bytes;
      }
    }
    if (halting) break;
  }

  metrics.makespan_ns = NowNanos() - run_start;
  if (out_values != nullptr) *out_values = std::move(values);
  return metrics;
}

}  // namespace graphite

#endif  // GRAPHITE_VCM_VCM_ENGINE_H_
