// Vertex-centric (Pregel-style) BSP engine. This is the stand-in for stock
// Apache Giraph: every baseline platform in the paper (MSB, Chlonos, TGB,
// GoFFish) is implemented over this engine, so — as in the paper — "the
// primitives are the key distinction and not the ... engine" (§VII-A3).
//
// A Program defines:
//   using Value   = ...;   // per-unit state
//   using Message = ...;   // payload (needs MessageTraits<Message>)
//   Value Init(uint32_t unit) const;
//   void Compute(VcmContext<...>& ctx, uint32_t unit, Value& value,
//                std::span<const Message> msgs);
//
// An Adapter abstracts the graph view the programs run on — a snapshot of
// the temporal graph (MSB/Chlonos/GoFFish) or the transformed graph (TGB):
//   size_t NumUnits() const;
//   bool UnitExists(uint32_t unit) const;
//   int64_t PartitionId(uint32_t unit) const;   // id hashed for placement
//
// Execution follows the paper's activation rule (§IV-A2): units implicitly
// vote to halt after every superstep and reactivate on message receipt. In
// superstep 0 every existing unit runs once with no messages (Pregel's
// initialization superstep). `always_active` keeps every unit live for
// fixed-iteration algorithms like PageRank.
#ifndef GRAPHITE_VCM_VCM_ENGINE_H_
#define GRAPHITE_VCM_VCM_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "ckpt/fault_injector.h"
#include "engine/delivery.h"
#include "engine/message_traits.h"
#include "engine/metrics.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "util/serde.h"
#include "util/timer.h"

namespace graphite {

struct VcmOptions {
  int num_workers = 4;
  bool use_threads = false;
  /// OS-thread scheduling when use_threads is set (engine/parallel.h).
  RuntimeOptions runtime;
  bool always_active = false;
  int max_supersteps = std::numeric_limits<int>::max();
  /// Unit->worker placement policy (graph/partitioner.h): hash of the
  /// adapter's PartitionId by default, or any strategy/explicit map.
  Placement placement;
};

/// Per-worker send-side context handed to Program::Compute.
template <typename Message>
class VcmContext {
 public:
  VcmContext(int superstep, int my_worker, const std::vector<int>& worker_of,
             std::vector<Writer>* wire, int64_t* messages_sent)
      : superstep_(superstep),
        my_worker_(my_worker),
        worker_of_(worker_of),
        wire_(wire),
        messages_sent_(messages_sent) {}

  /// Current superstep, starting at 0.
  int superstep() const { return superstep_; }

  /// Sends `msg` to unit `dst`, delivered at the start of the next
  /// superstep. Serialized immediately into the destination worker's wire
  /// buffer so byte metrics reflect the wire format.
  void Send(uint32_t dst, const Message& msg) {
    Writer& w = (*wire_)[worker_of_[dst]];
    w.WriteU64(dst);
    MessageTraits<Message>::Write(w, msg);
    ++*messages_sent_;
  }

  int my_worker() const { return my_worker_; }

 private:
  int superstep_;
  int my_worker_;
  const std::vector<int>& worker_of_;
  std::vector<Writer>* wire_;
  int64_t* messages_sent_;
};

/// Runs `program` over `adapter` to convergence (or max_supersteps).
/// Final unit values are moved into *out_values if non-null.
/// `initial_messages` seed the superstep-0 inboxes — used by GoFFish to
/// carry temporal messages from the previous snapshot; units with seed
/// messages receive them in superstep 0 (all existing units run then).
/// `recovery` connects the run to the checkpoint subsystem (ckpt/):
/// checkpoints are written where options.runtime.checkpoint says, into
/// recovery.store; with recovery.resume the run restarts from the newest
/// valid checkpoint (initial_messages are then ignored — the frame holds
/// the delivered inboxes). Requires MessageTraits for Value when used.
template <typename Program, typename Adapter>
RunMetrics RunVcm(
    const Adapter& adapter, Program& program, const VcmOptions& options,
    std::vector<typename Program::Value>* out_values = nullptr,
    const std::vector<std::pair<uint32_t, typename Program::Message>>&
        initial_messages = {},
    const RecoveryContext& recovery = {}) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  const size_t n = adapter.NumUnits();
  const int num_workers = options.num_workers;
  GRAPHITE_CHECK(num_workers >= 1);

  // Delivery plane (engine/delivery.h): materializes the placement policy
  // over the adapter's unit universe (non-existent units stay off every
  // owner list) and owns inboxes, mail tracking and the messaging loop.
  DeliveryPlane<Message> plane(WorkerMap(
      n, num_workers, options.placement,
      [&adapter](uint32_t u) { return adapter.PartitionId(u); },
      [&adapter](uint32_t u) { return adapter.UnitExists(u); }));
  plane.set_frontier_density(options.runtime.frontier_density);

  // State.
  std::vector<Value> values(n);  // lint:allow(vector: per-run vertex values, live across supersteps)
  for (uint32_t u = 0; u < n; ++u) {
    if (adapter.UnitExists(u)) values[u] = program.Init(u);
  }

  // Persistent pool + fixed chunk table, reused across supersteps.
  SuperstepRuntime rt(num_workers, options.use_threads, options.runtime,
                      plane.map().worker_sizes());
  plane.Bind(&rt);
  const std::unique_ptr<Transport> transport =
      MakeTransport(options.runtime.transport, num_workers);
  const int num_chunks = rt.num_chunks();

  // Checkpointing needs the unit Value on the wire too (the Message
  // already has traits by the engine contract); see ckpt/checkpoint.h.
  constexpr bool kCheckpointable = HasWireTraits<Value>;
  // A VCM worker section: per owned unit, the mail flag, the value and the
  // undelivered inbox for the next superstep.
  // (The bodies sit behind if constexpr so a Value without wire traits
  // still compiles — the lambdas are then never called.)
  auto encode_section = [&](int w) {
    Writer enc;
    if constexpr (kCheckpointable) {
      for (const uint32_t u : plane.map().units_of(w)) {
        enc.WriteU64(u);
        enc.WriteByte(plane.MailFlag(u));
        MessageTraits<Value>::Write(enc, values[u]);
        enc.WriteU64(plane.InboxCountFor(w, u));
        for (const Message& m : plane.MessagesFor(w, u)) {
          MessageTraits<Message>::Write(enc, m);
        }
      }
    }
    return enc.Release();
  };
  // Inverse; the store's CRC already vouched for the bytes, so reads are
  // the fast aborting kind. Messages are restored through plane.Deliver in
  // section order (owner order), which rebuilds the mail flags and mailed
  // list exactly as the encoding run had them; the caller Seals after.
  auto decode_section = [&](int w, const std::string& bytes) {
    if constexpr (kCheckpointable) {
      Reader r(bytes);
      while (!r.AtEnd()) {
        const uint32_t u = static_cast<uint32_t>(r.ReadU64());
        GRAPHITE_CHECK(u < n);
        const uint8_t mail_flag = r.ReadByte();
        values[u] = MessageTraits<Value>::Read(r);
        const uint64_t num_msgs = r.ReadU64();
        GRAPHITE_CHECK((mail_flag != 0) == (num_msgs > 0));
        for (uint64_t i = 0; i < num_msgs; ++i) {
          plane.Deliver(w, u, MessageTraits<Message>::Read(r));
        }
      }
    }
  };

  // Recovery (ckpt/): restore the exact input of a checkpointed superstep,
  // or fall through to a cold start (which still seeds initial_messages).
  int start_superstep = 0;
  bool resumed = false;
  CheckpointStore* store = recovery.store;
  RunMetrics metrics;
  if constexpr (kCheckpointable) {
    if (store != nullptr && recovery.resume) {
      Result<CheckpointBlob> blob =
          recovery.resume_from >= 0 ? store->Load(recovery.resume_from)
                                    : store->LoadLatestValid();
      if (blob.ok()) {
        Result<CheckpointFrame> frame = DecodeFrame(blob.value().payload);
        GRAPHITE_CHECK(frame.ok());
        const CheckpointFrame& f = frame.value();
        GRAPHITE_CHECK(f.num_units == n);
        GRAPHITE_CHECK(static_cast<int>(f.sections.size()) == num_workers);
        // Sections cover disjoint owned-unit sets: decode in parallel.
        // Each lane Delivers into its own worker's inbox and Seals.
        std::vector<int64_t> unused_ns;  // lint:allow(vector: recovery decode only, not superstep-rate)
        rt.ParallelFor(num_workers, &unused_ns, [&](int w, int) {
          decode_section(w, f.sections[w]);
          plane.Seal(w);
        });
        start_superstep = f.superstep;
        resumed = true;
        metrics.resumed_from = f.superstep;
        metrics.supersteps = f.counters.supersteps;
        metrics.compute_calls = f.counters.compute_calls;
        metrics.scatter_calls = f.counters.scatter_calls;
        metrics.messages = f.counters.messages;
        metrics.message_bytes = f.counters.message_bytes;
      }
    }
  } else {
    // Programs without wire traits for Value can run, but cannot
    // checkpoint or resume.
    GRAPHITE_CHECK(store == nullptr && !recovery.resume);
  }
  if (!resumed) {
    for (const auto& [unit, msg] : initial_messages) {
      GRAPHITE_CHECK(unit < n && adapter.UnitExists(unit));
      plane.Deliver(plane.map().WorkerOf(unit), unit, msg);
    }
    plane.SealAll();
  }

  // Wire buffers, indexed [chunk][dst_worker]; chunk rows concatenate in
  // chunk order to exactly sequential mode's per-worker buffers. Reused
  // across supersteps (Clear keeps capacity).
  std::vector<std::vector<Writer>> wire(num_chunks);  // lint:allow(vector: per-run wire matrix; Writer::Clear reuses capacity)
  for (auto& row : wire) row.resize(num_workers);
  std::vector<int> row_src(num_chunks);  // lint:allow(vector: per-run chunk map, sized once)
  for (int c = 0; c < num_chunks; ++c) row_src[c] = rt.chunk(c).worker;
  std::vector<int64_t> chunk_messages(num_chunks, 0);  // lint:allow(vector: per-run counters, sized once)
  std::vector<int64_t> chunk_calls(num_chunks, 0);  // lint:allow(vector: per-run counters, sized once)
  std::vector<int64_t> chunk_ns(num_chunks, 0);  // lint:allow(vector: per-run timings, sized once)

  std::atomic<bool> killed{false};
  const int64_t run_start = NowNanos();
  [[maybe_unused]] int64_t last_checkpoint_t = run_start;

  for (int superstep = start_superstep; superstep < options.max_supersteps;
       ++superstep) {
    SuperstepMetrics ss;
    ss.worker_compute_ns.assign(num_workers, 0);
    ss.worker_in_bytes.assign(num_workers, 0);
    ss.worker_compute_calls.assign(num_workers, 0);
    std::fill(chunk_messages.begin(), chunk_messages.end(), int64_t{0});
    std::fill(chunk_calls.begin(), chunk_calls.end(), int64_t{0});

    // --- Compute phase: chunked, work-stealing when configured. ---
    ss.steals = rt.ComputePhase(
        &ss.thread_compute_ns, [&](int c, const WorkChunk& chunk, int) {
          if (killed.load(std::memory_order_relaxed)) return;
          if (recovery.fault != nullptr &&
              recovery.fault->Fire(superstep, chunk.worker)) {
            killed.store(true, std::memory_order_relaxed);
            return;
          }
          const int64_t t0 = NowNanos();
          VcmContext<Message> ctx(superstep, chunk.worker,
                                  plane.map().worker_of(), &wire[c],
                                  &chunk_messages[c]);
          const std::vector<uint32_t>& mine =
              plane.map().units_of(chunk.worker);
          const auto process = [&](uint32_t u) {
            program.Compute(ctx, u, values[u],
                            plane.MessagesFor(chunk.worker, u));
            ++chunk_calls[c];
          };
          const bool every_unit = superstep == 0 || options.always_active;
          if (every_unit || plane.FrontierIsDense(chunk.worker)) {
            for (size_t i = chunk.begin; i < chunk.end; ++i) {
              const uint32_t u = mine[i];
              if (!every_unit && !plane.HasMail(u)) continue;
              if (i + 1 < chunk.end) plane.Prefetch(chunk.worker, mine[i + 1]);
              process(u);
            }
          } else {
            // Frontier path: the sorted mailed-unit list sliced to this
            // chunk's unit range — the dense scan's activation set in the
            // dense scan's order, without the per-unit flag sweep. The
            // next unit's inbox span is prefetched behind the current
            // compute call.
            const uint32_t lo = mine[chunk.begin];
            const uint32_t hi = chunk.end < mine.size()
                                    ? mine[chunk.end]
                                    : std::numeric_limits<uint32_t>::max();
            const std::span<const uint32_t> fs =
                plane.FrontierSlice(chunk.worker, lo, hi);
            for (size_t i = 0; i < fs.size(); ++i) {
              if (i + 1 < fs.size()) plane.Prefetch(chunk.worker, fs[i + 1]);
              process(fs[i]);
            }
          }
          chunk_ns[c] = NowNanos() - t0;
        });
    if (killed.load(std::memory_order_relaxed)) {
      // Simulated crash (ckpt/fault_injector.h): return exactly as a dead
      // process would look to a restarting one — nothing from the killed
      // superstep is accumulated, checkpointed or trusted.
      metrics.interrupted = true;
      metrics.makespan_ns = NowNanos() - run_start;
      if (out_values != nullptr) *out_values = std::move(values);
      return metrics;
    }
    for (int c = 0; c < num_chunks; ++c) {
      const int w = rt.chunk(c).worker;
      ss.worker_compute_ns[w] += chunk_ns[c];
      ss.worker_compute_calls[w] += chunk_calls[c];
      ss.compute_calls += chunk_calls[c];
      ss.messages += chunk_messages[c];
    }

    // --- Barrier: drop the consumed flat inboxes and reset the superstep
    // arenas. Arenas reset only here (see DESIGN.md §4f) — the messaging
    // phase below refills them for superstep+1, and a checkpoint encoded
    // after messaging may still reference arena-backed storage. ---
    const int64_t barrier_t = NowNanos();
    plane.Barrier();
    ss.barrier_ns = NowNanos() - barrier_t;

    // --- Messaging: the plane routes every wire row through the transport
    // and each destination lane decodes its own frames. ---
    const int64_t msg_t = NowNanos();
    const bool any_message = plane.Route(
        *transport, std::span<std::vector<Writer>>(wire), row_src, &ss,
        [&plane](Reader& reader, int dst) {
          const uint32_t unit = static_cast<uint32_t>(reader.ReadU64());
          Message msg = MessageTraits<Message>::Read(reader);
          plane.Deliver(dst, unit, std::move(msg));
        });
    ss.messaging_ns = NowNanos() - msg_t;
    // The mailed lists now hold superstep+1's activation set (sealed by
    // Route above); record its size before the next barrier clears it.
    plane.CountFrontier(&ss.frontier_units, &ss.frontier_dense_workers);

    metrics.Accumulate(ss);
    // Always-active programs run to max_supersteps (the loop bound);
    // message-driven ones halt on the first quiet superstep.
    const bool halting = !any_message && !options.always_active;
    if constexpr (kCheckpointable) {
      // Barrier checkpoint: the messaging phase has delivered the inboxes
      // of superstep+1, so the frame captures exactly that superstep's
      // input. The final barrier is never checkpointed.
      if (store != nullptr && !halting &&
          superstep + 1 < options.max_supersteps &&
          options.runtime.checkpoint.ShouldCheckpoint(
              superstep, NowNanos() - last_checkpoint_t)) {
        const int64_t ckpt_t0 = NowNanos();
        CheckpointFrame frame;
        frame.superstep = superstep + 1;
        frame.num_units = n;
        frame.counters = {metrics.supersteps, metrics.compute_calls,
                          metrics.scatter_calls, metrics.messages,
                          metrics.message_bytes, 0, 0};
        frame.sections.resize(num_workers);
        // Sections cover disjoint owned-unit sets: encode in parallel on
        // the run's pool.
        std::vector<int64_t> unused_ns;  // lint:allow(vector: checkpoint barrier only, not superstep-rate)
        rt.ParallelFor(num_workers, &unused_ns, [&](int w, int) {
          frame.sections[w] = encode_section(w);
        });
        const Status committed =
            store->Commit(frame.superstep, EncodeFrame(frame));
        GRAPHITE_CHECK(committed.ok());
        last_checkpoint_t = NowNanos();
        SuperstepMetrics& back = metrics.per_superstep.back();
        back.checkpoint_ns = last_checkpoint_t - ckpt_t0;
        back.checkpoint_bytes = store->last_commit_bytes();
        ++metrics.checkpoints;
        metrics.checkpoint_ns += back.checkpoint_ns;
        metrics.checkpoint_bytes += back.checkpoint_bytes;
      }
    }
    if (halting) break;
  }

  metrics.makespan_ns = NowNanos() - run_start;
  if (out_values != nullptr) *out_values = std::move(values);
  return metrics;
}

}  // namespace graphite

#endif  // GRAPHITE_VCM_VCM_ENGINE_H_
