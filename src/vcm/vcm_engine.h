// Vertex-centric (Pregel-style) BSP engine. This is the stand-in for stock
// Apache Giraph: every baseline platform in the paper (MSB, Chlonos, TGB,
// GoFFish) is implemented over this engine, so — as in the paper — "the
// primitives are the key distinction and not the ... engine" (§VII-A3).
//
// A Program defines:
//   using Value   = ...;   // per-unit state
//   using Message = ...;   // payload (needs MessageTraits<Message>)
//   Value Init(uint32_t unit) const;
//   void Compute(VcmContext<...>& ctx, uint32_t unit, Value& value,
//                std::span<const Message> msgs);
//
// An Adapter abstracts the graph view the programs run on — a snapshot of
// the temporal graph (MSB/Chlonos/GoFFish) or the transformed graph (TGB):
//   size_t NumUnits() const;
//   bool UnitExists(uint32_t unit) const;
//   int64_t PartitionId(uint32_t unit) const;   // id hashed for placement
//
// Execution follows the paper's activation rule (§IV-A2): units implicitly
// vote to halt after every superstep and reactivate on message receipt. In
// superstep 0 every existing unit runs once with no messages (Pregel's
// initialization superstep). `always_active` keeps every unit live for
// fixed-iteration algorithms like PageRank.
#ifndef GRAPHITE_VCM_VCM_ENGINE_H_
#define GRAPHITE_VCM_VCM_ENGINE_H_

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "engine/message_traits.h"
#include "engine/metrics.h"
#include "engine/parallel.h"
#include "graph/partitioner.h"
#include "util/serde.h"
#include "util/timer.h"

namespace graphite {

struct VcmOptions {
  int num_workers = 4;
  bool use_threads = false;
  bool always_active = false;
  int max_supersteps = std::numeric_limits<int>::max();
};

/// Per-worker send-side context handed to Program::Compute.
template <typename Message>
class VcmContext {
 public:
  VcmContext(int superstep, int my_worker, const std::vector<int>& worker_of,
             std::vector<Writer>* wire, int64_t* messages_sent)
      : superstep_(superstep),
        my_worker_(my_worker),
        worker_of_(worker_of),
        wire_(wire),
        messages_sent_(messages_sent) {}

  /// Current superstep, starting at 0.
  int superstep() const { return superstep_; }

  /// Sends `msg` to unit `dst`, delivered at the start of the next
  /// superstep. Serialized immediately into the destination worker's wire
  /// buffer so byte metrics reflect the wire format.
  void Send(uint32_t dst, const Message& msg) {
    Writer& w = (*wire_)[worker_of_[dst]];
    w.WriteU64(dst);
    MessageTraits<Message>::Write(w, msg);
    ++*messages_sent_;
  }

  int my_worker() const { return my_worker_; }

 private:
  int superstep_;
  int my_worker_;
  const std::vector<int>& worker_of_;
  std::vector<Writer>* wire_;
  int64_t* messages_sent_;
};

/// Runs `program` over `adapter` to convergence (or max_supersteps).
/// Final unit values are moved into *out_values if non-null.
/// `initial_messages` seed the superstep-0 inboxes — used by GoFFish to
/// carry temporal messages from the previous snapshot; units with seed
/// messages receive them in superstep 0 (all existing units run then).
template <typename Program, typename Adapter>
RunMetrics RunVcm(
    const Adapter& adapter, Program& program, const VcmOptions& options,
    std::vector<typename Program::Value>* out_values = nullptr,
    const std::vector<std::pair<uint32_t, typename Program::Message>>&
        initial_messages = {}) {
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  const size_t n = adapter.NumUnits();
  const int num_workers = options.num_workers;
  GRAPHITE_CHECK(num_workers >= 1);
  HashPartitioner partitioner(num_workers);

  // Placement.
  std::vector<int> worker_of(n);
  std::vector<std::vector<uint32_t>> units_by_worker(num_workers);
  for (uint32_t u = 0; u < n; ++u) {
    if (!adapter.UnitExists(u)) {
      worker_of[u] = 0;
      continue;
    }
    const int w = partitioner.WorkerOf(adapter.PartitionId(u));
    worker_of[u] = w;
    units_by_worker[w].push_back(u);
  }

  // State.
  std::vector<Value> values(n);
  for (uint32_t u = 0; u < n; ++u) {
    if (adapter.UnitExists(u)) values[u] = program.Init(u);
  }
  std::vector<std::vector<Message>> inbox(n);
  std::vector<uint8_t> has_mail(n, 0);
  for (const auto& [unit, msg] : initial_messages) {
    GRAPHITE_CHECK(unit < n && adapter.UnitExists(unit));
    inbox[unit].push_back(msg);
    has_mail[unit] = 1;
  }

  // Wire buffers, indexed [src_worker][dst_worker].
  std::vector<std::vector<Writer>> wire(num_workers);
  for (auto& row : wire) row.resize(num_workers);

  RunMetrics metrics;
  const int64_t run_start = NowNanos();

  for (int superstep = 0; superstep < options.max_supersteps; ++superstep) {
    SuperstepMetrics ss;
    ss.worker_compute_ns.assign(num_workers, 0);
    ss.worker_in_bytes.assign(num_workers, 0);
    std::vector<int64_t> worker_messages(num_workers, 0);
    std::vector<int64_t> worker_calls(num_workers, 0);

    // --- Compute phase. ---
    RunWorkers(num_workers, options.use_threads, [&](int w) {
      const int64_t t0 = NowNanos();
      VcmContext<Message> ctx(superstep, w, worker_of, &wire[w],
                              &worker_messages[w]);
      for (uint32_t u : units_by_worker[w]) {
        const bool active =
            superstep == 0 || options.always_active || has_mail[u];
        if (!active) continue;
        program.Compute(ctx, u, values[u],
                        std::span<const Message>(inbox[u]));
        ++worker_calls[w];
      }
      ss.worker_compute_ns[w] = NowNanos() - t0;
    });
    ss.worker_compute_calls = worker_calls;
    for (int w = 0; w < num_workers; ++w) {
      ss.compute_calls += worker_calls[w];
      ss.messages += worker_messages[w];
    }

    // --- Barrier + messaging phase: drain wire buffers into inboxes. ---
    const int64_t barrier_t = NowNanos();
    for (uint32_t u = 0; u < n; ++u) {
      if (has_mail[u]) inbox[u].clear();
      has_mail[u] = 0;
    }
    ss.barrier_ns = NowNanos() - barrier_t;

    const int64_t msg_t = NowNanos();
    bool any_message = false;
    for (int dst = 0; dst < num_workers; ++dst) {
      for (int src = 0; src < num_workers; ++src) {
        Writer& buf = wire[src][dst];
        if (buf.size() == 0) continue;
        ss.message_bytes += static_cast<int64_t>(buf.size());
        if (src != dst) {
          ss.worker_in_bytes[dst] += static_cast<int64_t>(buf.size());
        }
        const std::string bytes = buf.Release();
        buf = Writer();
        Reader reader(bytes);
        while (!reader.AtEnd()) {
          const uint32_t unit = static_cast<uint32_t>(reader.ReadU64());
          Message msg = MessageTraits<Message>::Read(reader);
          inbox[unit].push_back(std::move(msg));
          has_mail[unit] = 1;
          any_message = true;
        }
      }
    }
    ss.messaging_ns = NowNanos() - msg_t;

    metrics.Accumulate(ss);
    // Always-active programs run to max_supersteps (the loop bound);
    // message-driven ones halt on the first quiet superstep.
    if (!any_message && !options.always_active) break;
  }

  metrics.makespan_ns = NowNanos() - run_start;
  if (out_values != nullptr) *out_values = std::move(values);
  return metrics;
}

}  // namespace graphite

#endif  // GRAPHITE_VCM_VCM_ENGINE_H_
