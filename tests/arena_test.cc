// Unit tests for the superstep arena (util/arena.h): bump allocation and
// alignment, in-place array extension, the barrier Reset with decaying
// high-water retention (shared BufferTuning knob), and the ArenaVec /
// RecycledVec containers built on top. These suites are part of the
// sanitizer matrix (tests/CMakeLists.txt, label `asan`): every slab
// relocation, memmove shift, and post-Reset reuse runs under ASan there.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "engine/buffer_tuning.h"
#include "util/arena.h"

namespace graphite {
namespace {

TEST(ArenaTest, AllocateRespectsAlignment) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                       alignof(std::max_align_t)}) {
    for (size_t bytes : {size_t{1}, size_t{3}, size_t{17}, size_t{4096}}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
    }
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  std::vector<char*> ptrs;
  for (int i = 0; i < 64; ++i) {
    char* p = static_cast<char*>(arena.Allocate(24, 8));
    std::memset(p, i, 24);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    for (int k = 0; k < 24; ++k) EXPECT_EQ(ptrs[i][k], static_cast<char>(i));
  }
}

TEST(ArenaTest, TryExtendArrayGrowsTopAllocationInPlace) {
  Arena arena;
  // A small first request so the block has plenty of headroom after it.
  uint32_t* a = arena.AllocateArray<uint32_t>(4);
  EXPECT_TRUE(arena.TryExtendArray(a, 4, 16));
  // `a` is no longer the top allocation once something else is bumped.
  arena.AllocateArray<uint32_t>(1);
  EXPECT_FALSE(arena.TryExtendArray(a, 16, 32));
}

TEST(ArenaTest, ResetKeepsOneBlockAndReusesIt) {
  Arena arena;
  // Force several blocks.
  for (int i = 0; i < 8; ++i) arena.Allocate(2048, 8);
  EXPECT_GT(arena.used(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  const size_t cap_after_reset = arena.capacity();
  // Steady state: the same usage pattern fits the retained block, so
  // capacity never changes again (zero heap allocations per superstep).
  for (int superstep = 0; superstep < 16; ++superstep) {
    for (int i = 0; i < 8; ++i) arena.Allocate(1024, 8);
    arena.Reset();
    EXPECT_EQ(arena.capacity(), cap_after_reset) << "superstep " << superstep;
  }
}

TEST(ArenaTest, ResetDecaysHighWaterAfterSpike) {
  Arena arena;
  arena.Allocate(1 << 20, 8);  // One-off 1 MiB spike.
  arena.Reset();
  const size_t spiked = arena.capacity();
  // Idle supersteps: the high-water mark decays by 1/kDecayDivisor per
  // reset, so the retained block eventually shrinks well below the spike.
  for (int i = 0; i < 200; ++i) {
    arena.Allocate(256, 8);
    arena.Reset();
  }
  EXPECT_LT(arena.capacity(), spiked / 4);
  EXPECT_GE(arena.capacity(), BufferTuning::kRetainBytes);
}

TEST(ArenaVecTest, PushBackPreservesValuesAcrossGrowth) {
  Arena arena;
  ArenaVec<uint64_t> v;
  v.Attach(&arena);
  for (uint64_t i = 0; i < 10000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i * 3);
}

TEST(ArenaVecTest, InterleavedVecsRelocateCorrectly) {
  // Two vecs bumping the same arena: each Grow call finds the other vec on
  // top of the block, forcing the memcpy-relocation path.
  Arena arena;
  ArenaVec<uint32_t> a, b;
  a.Attach(&arena);
  b.Attach(&arena);
  for (uint32_t i = 0; i < 4096; ++i) {
    a.push_back(i);
    b.push_back(i ^ 0xffffffffu);
  }
  for (uint32_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(a[i], i);
    ASSERT_EQ(b[i], i ^ 0xffffffffu);
  }
}

TEST(ArenaVecTest, InsertAtAndEraseAtShiftTails) {
  Arena arena;
  ArenaVec<uint32_t> v;
  v.Attach(&arena);
  std::vector<uint32_t> ref;
  for (uint32_t i = 0; i < 100; ++i) {
    const size_t pos = (i * 7) % (ref.size() + 1);
    v.InsertAt(pos, i);
    ref.insert(ref.begin() + pos, i);
  }
  for (uint32_t i = 0; i < 40; ++i) {
    const size_t pos = (i * 13) % ref.size();
    v.EraseAt(pos);
    ref.erase(ref.begin() + pos);
  }
  ASSERT_EQ(v.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(v[i], ref[i]);
}

TEST(ArenaVecTest, AppendTruncateAndResizeUninitialized) {
  Arena arena;
  ArenaVec<uint16_t> v;
  v.Attach(&arena);
  const uint16_t chunk[5] = {1, 2, 3, 4, 5};
  v.Append(chunk, 5);
  v.Append(chunk, 5);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(v[7], 3);
  v.Truncate(6);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v.back(), 1);
  v.ResizeUninitialized(64);
  ASSERT_EQ(v.size(), 64u);
  for (size_t i = 0; i < 64; ++i) v[i] = static_cast<uint16_t>(i);
  EXPECT_EQ(v[63], 63);
}

TEST(ArenaVecTest, ReleaseThenResetRestartsFromFreshArena) {
  Arena arena;
  ArenaVec<uint64_t> v;
  v.Attach(&arena);
  for (int superstep = 0; superstep < 10; ++superstep) {
    for (uint64_t i = 0; i < 500; ++i) v.push_back(i + superstep);
    ASSERT_EQ(v.size(), 500u);
    for (uint64_t i = 0; i < 500; ++i) ASSERT_EQ(v[i], i + superstep);
    v.Release();  // Barrier order: drop the slab, then reset the arena.
    arena.Reset();
    EXPECT_TRUE(v.empty());
  }
}

TEST(ArenaVecTest, ClearKeepsSlabWithinSuperstep) {
  Arena arena;
  ArenaVec<uint32_t> v;
  v.Attach(&arena);
  for (uint32_t i = 0; i < 100; ++i) v.push_back(i);
  const size_t used_before = arena.used();
  v.clear();
  for (uint32_t i = 0; i < 100; ++i) v.push_back(i * 2);
  // Same slab, no extra arena usage.
  EXPECT_EQ(arena.used(), used_before);
  EXPECT_EQ(v[99], 198u);
}

TEST(RecycledVecTest, ReleaseDecaysRetainedCapacity) {
  RecycledVec<std::vector<int>> v;  // Non-trivial type: heap fallback.
  v.Attach(nullptr);
  for (int i = 0; i < 50000; ++i) v.push_back(std::vector<int>{i});
  v.Release();
  EXPECT_TRUE(v.empty());
  // Idle releases decay the high-water mark on the same BufferTuning
  // schedule as Arena::Reset; afterwards the vec must still fill cleanly.
  for (int i = 0; i < 200; ++i) {
    v.push_back(std::vector<int>{i});
    v.Release();
  }
  for (int i = 0; i < 100; ++i) v.push_back(std::vector<int>{i});
  ASSERT_EQ(v.size(), 100u);
  EXPECT_EQ(v[42][0], 42);
}

TEST(SuperstepVecTest, PicksArenaBackingForTrivialTypes) {
  static_assert(
      std::is_same_v<SuperstepVec<uint32_t>, ArenaVec<uint32_t>>);
  static_assert(std::is_same_v<SuperstepVec<std::vector<int>>,
                               RecycledVec<std::vector<int>>>);
}

#if defined(GRAPHITE_ASAN)
// The poisoning contract of DESIGN.md §4k, proven from both sides under
// the asan preset (these suites carry the `asan` ctest label):
// use-after-reset faults immediately, while the legal lifetime — reads up
// to the barrier, reuse after re-allocation — stays clean.

TEST(ArenaPoisonDeathTest, UseAfterResetFaults) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A span that escapes its superstep: reading it after the barrier
  // Reset must die with ASan's use-after-poison report, not return
  // recycled bytes.
  ASSERT_DEATH(
      {
        Arena arena;
        uint32_t* span = arena.AllocateArray<uint32_t>(64);
        for (uint32_t i = 0; i < 64; ++i) span[i] = i;
        arena.Reset();  // superstep barrier
        volatile uint32_t leak = span[7];
        (void)leak;
      },
      "use-after-poison");
}

TEST(ArenaPoisonDeathTest, AlignmentPaddingStaysPoisoned) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The padding between a 1-byte allocation and the next max-aligned one
  // was never handed out, so touching it is a fault even mid-superstep.
  ASSERT_DEATH(
      {
        Arena arena;
        char* a = static_cast<char*>(arena.Allocate(1, 1));
        arena.Allocate(64, alignof(std::max_align_t));
        volatile char pad = a[8];  // first byte past a's granule
        (void)pad;
      },
      "use-after-poison");
}

TEST(ArenaPoisonTest, LegalLifetimeIsNotPoisoned) {
  // Within-superstep reads, in-place extension, and post-Reset
  // re-allocation of the recycled block must all be clean.
  Arena arena;
  uint32_t* a = arena.AllocateArray<uint32_t>(16);
  for (uint32_t i = 0; i < 16; ++i) a[i] = i;
  ASSERT_TRUE(arena.TryExtendArray(a, 16, 32));
  for (uint32_t i = 16; i < 32; ++i) a[i] = i;
  for (uint32_t i = 0; i < 32; ++i) EXPECT_EQ(a[i], i);
  arena.Reset();
  uint32_t* b = arena.AllocateArray<uint32_t>(32);  // recycled block
  for (uint32_t i = 0; i < 32; ++i) b[i] = 2 * i;
  for (uint32_t i = 0; i < 32; ++i) EXPECT_EQ(b[i], 2 * i);
}
#endif  // GRAPHITE_ASAN

}  // namespace
}  // namespace graphite
