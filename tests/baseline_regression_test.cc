// Regression tests for baseline-platform pathologies found during
// development, plus grid-topology (road-network) coverage for all TD
// platforms — bidirectional grids have 2-cycles everywhere, which once
// made GoFFish-LD's intra-snapshot candidate exchange ping-pong forever.
#include <gtest/gtest.h>

#include "algorithms/oracle.h"
#include "algorithms/runners.h"
#include "gen/generators.h"

namespace graphite {
namespace {

Workload GridWorkload() {
  GenOptions opt;
  opt.seed = 3131;
  opt.topology = GenOptions::Topology::kGrid;
  opt.num_vertices = 36;  // 6x6 bidirectional grid.
  opt.snapshots = 12;
  opt.edge_lifespan = GenOptions::Lifespan::kFull;
  opt.prop_segments = 3;
  return Workload(Generate(opt));
}

TEST(GridRegressionTest, LdTerminatesAndAgreesOnAllPlatforms) {
  Workload w = GridWorkload();
  RunConfig config;
  config.target = w.graph().vertex_id(
      static_cast<VertexIdx>(w.graph().num_vertices() - 1));
  const auto icm = RunLdOn(w, Platform::kIcm, config);
  const auto tgb = RunLdOn(w, Platform::kTgb, config);
  const auto gof = RunLdOn(w, Platform::kGof, config);
  const auto oracle = OracleLatestDeparture(w.graph(), config.target,
                                            w.graph().horizon());
  EXPECT_EQ(icm, oracle);
  EXPECT_EQ(tgb, oracle);
  EXPECT_EQ(gof, oracle);
}

TEST(GridRegressionTest, GofLdMessageCountIsBounded) {
  Workload w = GridWorkload();
  RunConfig config;
  RunMetrics metrics;
  RunLdOn(w, Platform::kGof, config, &metrics);
  // Without change-gating the 2-cycles exchange candidates forever; with
  // it, per snapshot each vertex sends at most twice (seed + change).
  const int64_t bound = 4 * static_cast<int64_t>(w.graph().num_edges() + w.graph().num_vertices()) *
                        w.graph().horizon();
  EXPECT_LT(metrics.messages, bound);
  EXPECT_LT(metrics.supersteps, 4 * w.graph().horizon());
}

TEST(GridRegressionTest, PathAlgorithmsAgreeOnGrid) {
  Workload w = GridWorkload();
  RunConfig config;
  const auto icm_sssp = RunSsspOn(w, Platform::kIcm, config);
  const auto tgb_sssp = RunSsspOn(w, Platform::kTgb, config);
  const auto gof_sssp = RunSsspOn(w, Platform::kGof, config);
  const auto oracle = OracleSsspCosts(w.graph(), config.source);
  for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
    for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
      const int64_t want = oracle[v][static_cast<size_t>(t)];
      ASSERT_EQ(ResultAt<int64_t>(icm_sssp, v, t, kInfCost), want);
      ASSERT_EQ(ResultAt<int64_t>(tgb_sssp, v, t, kInfCost), want);
      ASSERT_EQ(ResultAt<int64_t>(gof_sssp, v, t, kInfCost), want);
    }
  }
  EXPECT_EQ(RunEatOn(w, Platform::kGof, config),
            OracleEat(w.graph(), config.source));
  EXPECT_EQ(RunFastOn(w, Platform::kGof, config),
            OracleFastest(w.graph(), config.source));
}

TEST(GridRegressionTest, TiAlgorithmsAgreeOnGrid) {
  Workload w = GridWorkload();
  RunConfig config;
  const auto icm = RunSccOn(w, Platform::kIcm, config);
  const auto oracle = OracleScc(w.graph());
  for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
    for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
      ASSERT_EQ(ResultAt<int64_t>(icm, v, t, kInfCost),
                oracle[v][static_cast<size_t>(t)]);
    }
  }
}

// Chlonos with a batch size of 1 degenerates to MSB (no adjacent
// snapshots to share across): identical counts.
TEST(ChlonosBatchTest, BatchOfOneMatchesMsbCounts) {
  GenOptions opt;
  opt.seed = 88;
  opt.num_vertices = 60;
  opt.num_edges = 240;
  opt.snapshots = 8;
  opt.edge_lifespan = GenOptions::Lifespan::kLong;
  opt.mean_edge_lifespan = 6;
  Workload w(Generate(opt));
  RunConfig msb_cfg;
  RunConfig chl_cfg;
  chl_cfg.chlonos_batch_size = 1;
  RunMetrics msb, chl;
  RunBfsOn(w, Platform::kMsb, msb_cfg, &msb);
  RunBfsOn(w, Platform::kChl, chl_cfg, &chl);
  EXPECT_EQ(msb.compute_calls, chl.compute_calls);
  EXPECT_EQ(msb.messages, chl.messages);
}

// With the whole horizon in one batch, Chlonos must send no more
// messages than MSB (sharing can only help), and on long-lifespan graphs
// strictly fewer.
TEST(ChlonosBatchTest, FullBatchSharesMessages) {
  GenOptions opt;
  opt.seed = 89;
  opt.num_vertices = 60;
  opt.num_edges = 240;
  opt.snapshots = 8;
  opt.edge_lifespan = GenOptions::Lifespan::kFull;
  Workload w(Generate(opt));
  RunConfig msb_cfg;
  RunConfig chl_cfg;
  chl_cfg.chlonos_batch_size = 8;
  RunMetrics msb, chl;
  RunBfsOn(w, Platform::kMsb, msb_cfg, &msb);
  RunBfsOn(w, Platform::kChl, chl_cfg, &chl);
  EXPECT_EQ(msb.compute_calls, chl.compute_calls);  // No compute sharing.
  EXPECT_LT(chl.messages, msb.messages);            // Message sharing.
}

// ICM on a static-topology graph must use far fewer compute calls than
// per-snapshot execution (the USRN effect, §VII-B6).
TEST(StaticTopologyTest, IcmSharesAcrossAllSnapshots) {
  Workload w = GridWorkload();
  RunConfig config;
  RunMetrics icm, msb;
  RunBfsOn(w, Platform::kIcm, config, &icm);
  RunBfsOn(w, Platform::kMsb, config, &msb);
  // Same per-(v,t) answers with ~T-fold fewer calls.
  EXPECT_LT(icm.compute_calls * 4, msb.compute_calls);
  EXPECT_LT(icm.messages * 4, msb.messages);
}

}  // namespace
}  // namespace graphite
