// Tests for the binary graph format: round-trips, canonical form,
// compactness vs text, and corruption rejection.
#include "io/binary_format.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "io/text_format.h"
#include "testutil.h"

namespace graphite {
namespace {

TEST(BinaryFormatTest, RoundTripTransitGraph) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const std::string bytes = WriteBinaryGraph(g);
  auto parsed = ReadBinaryGraph(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vertices(), g.num_vertices());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  EXPECT_EQ(parsed->horizon(), g.horizon());
  // Same semantic content as the text round-trip.
  EXPECT_EQ(WriteTextGraph(*parsed), WriteTextGraph(g));
  // Canonical: re-encoding the parse is byte-identical.
  EXPECT_EQ(WriteBinaryGraph(*parsed), bytes);
}

TEST(BinaryFormatTest, RoundTripRandomGraphs) {
  for (uint64_t seed : {1u, 17u, 99u}) {
    const TemporalGraph g = testutil::MakeRandomGraph(seed);
    auto parsed = ReadBinaryGraph(WriteBinaryGraph(g));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(WriteTextGraph(*parsed), WriteTextGraph(g)) << seed;
  }
}

TEST(BinaryFormatTest, MuchSmallerThanText) {
  GenOptions opt;
  opt.num_vertices = 1000;
  opt.num_edges = 5000;
  const TemporalGraph g = Generate(opt);
  const size_t binary = WriteBinaryGraph(g).size();
  const size_t text = WriteTextGraph(g).size();
  EXPECT_LT(binary * 3, text);  // At least 3x smaller.
}

TEST(BinaryFormatTest, RejectsBadMagic) {
  std::string bytes = WriteBinaryGraph(testutil::MakeTransitGraph());
  bytes[0] = 'X';
  EXPECT_FALSE(ReadBinaryGraph(bytes).ok());
  EXPECT_FALSE(ReadBinaryGraph("").ok());
  EXPECT_FALSE(ReadBinaryGraph("GT").ok());
}

TEST(BinaryFormatTest, RejectsCorruptPayload) {
  std::string bytes = WriteBinaryGraph(testutil::MakeTransitGraph());
  // Flip a byte deep in the payload: checksum must catch it.
  bytes[bytes.size() / 2] ^= 0x40;
  auto parsed = ReadBinaryGraph(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("checksum"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsTrailingGarbage) {
  // Appending bytes invalidates the checksum over the payload region.
  std::string bytes = WriteBinaryGraph(testutil::MakeTransitGraph());
  bytes += "garbage";
  EXPECT_FALSE(ReadBinaryGraph(bytes).ok());
}

TEST(BinaryFormatTest, FileRoundTrip) {
  const TemporalGraph g = testutil::MakeRandomGraph(5);
  const std::string path = ::testing::TempDir() + "/graph.gtg";
  ASSERT_TRUE(WriteBinaryGraphFile(g, path).ok());
  auto parsed = ReadBinaryGraphFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  EXPECT_FALSE(ReadBinaryGraphFile("/no/such/file.gtg").ok());
}

TEST(Fnv1aTest, KnownVectorsAndOffsets) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  // "a" -> known constant.
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  // Offset skips the prefix.
  EXPECT_EQ(Fnv1a64("xxa", 2), Fnv1a64("a"));
}

}  // namespace
}  // namespace graphite
