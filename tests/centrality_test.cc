// Tests for the TD centrality module: closeness vs a hand-computed case
// and the EAT oracle, propagation ramps, and degree centrality.
#include "algorithms/centrality.h"

#include <gtest/gtest.h>

#include "algorithms/oracle.h"
#include "testutil.h"

namespace graphite {
namespace {

TEST(TemporalClosenessTest, TransitGraphHandComputed) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  ClosenessOptions options;
  options.num_samples = 0;  // Exhaustive.
  const ClosenessResult r = TemporalCloseness(g, options);
  ASSERT_EQ(r.sources.size(), g.num_vertices());

  // From A (start 0): EATs are B=4, C=2, D=3, E=6; F unreachable.
  // C(A) = 1/5 + 1/3 + 1/4 + 1/7.
  const double want_a = 1.0 / 5 + 1.0 / 3 + 1.0 / 4 + 1.0 / 7;
  EXPECT_NEAR(r.closeness[*g.IndexOf(testutil::kA)], want_a, 1e-12);
  // F reaches nobody.
  EXPECT_DOUBLE_EQ(r.closeness[*g.IndexOf(testutil::kF)], 0.0);
  // D reaches only F... D's edge to F is [1,2) and D itself starts at 0:
  // departure at 1, arrival 2: C(D) = 1/3.
  EXPECT_NEAR(r.closeness[*g.IndexOf(testutil::kD)], 1.0 / 3, 1e-12);
}

TEST(TemporalClosenessTest, AgreesWithOracleEat) {
  const TemporalGraph g = testutil::MakeRandomGraph(777);
  ClosenessOptions options;
  options.num_samples = 0;
  const ClosenessResult r = TemporalCloseness(g, options);
  for (VertexIdx s = 0; s < g.num_vertices(); ++s) {
    const auto eat = OracleEat(g, g.vertex_id(s));
    const TimePoint start =
        std::max<TimePoint>(0, g.vertex_interval(s).start);
    double want = 0;
    for (VertexIdx u = 0; u < g.num_vertices(); ++u) {
      if (u == s || eat[u] == kInfCost) continue;
      want += 1.0 / static_cast<double>(eat[u] - start + 1);
    }
    ASSERT_NEAR(r.closeness[s], want, 1e-12) << "s=" << s;
  }
}

TEST(TemporalClosenessTest, SamplingIsDeterministicSubset) {
  const TemporalGraph g = testutil::MakeRandomGraph(778);
  ClosenessOptions options;
  options.num_samples = 5;
  const ClosenessResult a = TemporalCloseness(g, options);
  const ClosenessResult b = TemporalCloseness(g, options);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.sources.size(), 5u);
  int computed = 0;
  for (double c : a.closeness) {
    if (c >= 0) ++computed;
  }
  EXPECT_EQ(computed, 5);
}

TEST(PropagationRampTest, MonotoneAndMatchesEat) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const auto ramp = PropagationRamp(g, testutil::kA);
  ASSERT_EQ(ramp.size(), 10u);
  // A itself reached at 0; C at 2, D at 3, B at 4, E at 6.
  EXPECT_EQ(ramp[0], 1);
  EXPECT_EQ(ramp[2], 2);
  EXPECT_EQ(ramp[3], 3);
  EXPECT_EQ(ramp[4], 4);
  EXPECT_EQ(ramp[6], 5);
  EXPECT_EQ(ramp[9], 5);  // F never joins.
  for (size_t t = 1; t < ramp.size(); ++t) EXPECT_GE(ramp[t], ramp[t - 1]);
}

TEST(TemporalDegreeCentralityTest, SumsEdgeLifespans) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const auto degree = TemporalDegreeCentrality(g);
  // A's edges: [3,6) + [1,2) + [2,4) = 3 + 1 + 2 = 6 time-points.
  EXPECT_EQ(degree[*g.IndexOf(testutil::kA)], 6);
  EXPECT_EQ(degree[*g.IndexOf(testutil::kE)], 0);
  EXPECT_EQ(degree[*g.IndexOf(testutil::kD)], 1);
}

}  // namespace
}  // namespace graphite
