// Checkpoint/recovery subsystem tests (src/ckpt/): store envelope and
// retention semantics, frame codec robustness, policy arithmetic, and the
// acceptance matrix — a run killed deterministically mid-superstep and
// resumed from its latest checkpoint must produce byte-identical final
// states and model-intrinsic counter totals versus an uninterrupted run,
// for both engines, across worker counts and every scheduling mode; a
// corrupted latest checkpoint must fall back to the previous valid one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "algorithms/icm_path.h"
#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_policy.h"
#include "ckpt/checkpoint_store.h"
#include "ckpt/fault_injector.h"
#include "icm/icm_engine.h"
#include "testutil.h"
#include "vcm/vcm_engine.h"

namespace graphite {
namespace {

/// Fresh scratch directory under the test temp root.
std::string NewDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "graphite_ckpt_" + tag + "_" +
                          std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

// --- CRC and store envelope ---

TEST(Crc32Test, KnownAnswer) {
  // The ISO-HDLC check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(CheckpointStoreTest, CommitLoadRoundTrip) {
  CheckpointStore store(NewDir("roundtrip"));
  const std::string payload = "superstep four's frame bytes \x01\x02\xff";
  ASSERT_TRUE(store.Commit(4, payload).ok());
  EXPECT_GT(store.last_commit_bytes(),
            static_cast<int64_t>(payload.size()));  // envelope adds a header

  const auto blob = store.Load(4);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(blob.value().superstep, 4);
  EXPECT_EQ(blob.value().payload, payload);
  EXPECT_EQ(store.ListCheckpoints(), std::vector<int>{4});
  // No stray .tmp left behind by the atomic commit.
  for (const auto& e : std::filesystem::directory_iterator(store.dir())) {
    EXPECT_EQ(e.path().extension(), ".gck") << e.path();
  }
}

TEST(CheckpointStoreTest, MissingCheckpointIsNotFound) {
  CheckpointStore store(NewDir("missing"));
  const auto blob = store.Load(7);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.LoadLatestValid().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, RetentionPrunesOldest) {
  CheckpointStore store(NewDir("retain"), /*retain=*/2);
  for (int s : {1, 2, 3, 4}) {
    ASSERT_TRUE(store.Commit(s, "frame-" + std::to_string(s)).ok());
  }
  EXPECT_EQ(store.ListCheckpoints(), (std::vector<int>{3, 4}));
  // Pruned checkpoints are really gone, survivors still validate.
  EXPECT_FALSE(store.Load(1).ok());
  EXPECT_TRUE(store.Load(3).ok());
  const auto latest = store.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().superstep, 4);
}

TEST(CheckpointStoreTest, RecommitReplaces) {
  CheckpointStore store(NewDir("recommit"));
  ASSERT_TRUE(store.Commit(2, "old").ok());
  ASSERT_TRUE(store.Commit(2, "new").ok());
  const auto blob = store.Load(2);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value().payload, "new");
  EXPECT_EQ(store.ListCheckpoints(), std::vector<int>{2});
}

TEST(CheckpointStoreTest, CorruptByteIsDataLossWithChecksumMessage) {
  CheckpointStore store(NewDir("corrupt"));
  ASSERT_TRUE(store.Commit(3, "some payload to damage").ok());
  ASSERT_TRUE(FaultInjector::CorruptByte(store, 3, /*offset=*/9).ok());
  const auto blob = store.Load(3);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(blob.status().message().find("checksum"), std::string::npos)
      << blob.status().ToString();
}

TEST(CheckpointStoreTest, TruncatedFileIsDataLoss) {
  CheckpointStore store(NewDir("trunc"));
  ASSERT_TRUE(store.Commit(5, "a payload that will lose its tail").ok());
  ASSERT_TRUE(FaultInjector::Truncate(store, 5, /*keep_bytes=*/8).ok());
  const auto blob = store.Load(5);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointStoreTest, ForeignAndGarbageFilesAreIgnoredOrRejected) {
  CheckpointStore store(NewDir("foreign"));
  ASSERT_TRUE(store.Commit(1, "good").ok());
  // A foreign file in the directory is not listed as a checkpoint.
  {
    std::FILE* f =
        std::fopen((store.dir() + "/README.txt").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  // A checkpoint-named file with a bogus envelope is DataLoss, and
  // LoadLatestValid skips over it to the good one.
  {
    std::FILE* f = std::fopen(store.PathFor(9).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("BAD!garbage", f);
    std::fclose(f);
  }
  EXPECT_EQ(store.ListCheckpoints(), (std::vector<int>{1, 9}));
  EXPECT_EQ(store.Load(9).status().code(), StatusCode::kDataLoss);
  const auto latest = store.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().superstep, 1);
}

TEST(CheckpointStoreTest, LatestValidFallsBackPastCorruption) {
  CheckpointStore store(NewDir("fallback"), /*retain=*/3);
  for (int s : {1, 2, 3}) {
    ASSERT_TRUE(store.Commit(s, "frame-" + std::to_string(s)).ok());
  }
  ASSERT_TRUE(FaultInjector::CorruptByte(store, 3, 11).ok());
  auto latest = store.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().superstep, 2);

  ASSERT_TRUE(FaultInjector::Truncate(store, 2, 6).ok());
  latest = store.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().superstep, 1);

  ASSERT_TRUE(FaultInjector::CorruptByte(store, 1, 0).ok());
  EXPECT_EQ(store.LoadLatestValid().status().code(), StatusCode::kNotFound);
}

// --- Frame codec ---

CheckpointFrame SampleFrame() {
  CheckpointFrame frame;
  frame.superstep = 12;
  frame.num_units = 345;
  frame.counters = {12, 3456, 789, 1011, 121314, 555, 7};
  frame.sections = {"worker zero bytes", "", std::string(300, '\x7f'),
                    std::string("\x00\x01\x02", 3)};
  return frame;
}

TEST(CheckpointFrameTest, RoundTrip) {
  const CheckpointFrame frame = SampleFrame();
  const auto got = DecodeFrame(EncodeFrame(frame));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const CheckpointFrame& f = got.value();
  EXPECT_EQ(f.superstep, frame.superstep);
  EXPECT_EQ(f.num_units, frame.num_units);
  EXPECT_EQ(f.counters.supersteps, frame.counters.supersteps);
  EXPECT_EQ(f.counters.compute_calls, frame.counters.compute_calls);
  EXPECT_EQ(f.counters.scatter_calls, frame.counters.scatter_calls);
  EXPECT_EQ(f.counters.messages, frame.counters.messages);
  EXPECT_EQ(f.counters.message_bytes, frame.counters.message_bytes);
  EXPECT_EQ(f.counters.active_compute_calls,
            frame.counters.active_compute_calls);
  EXPECT_EQ(f.counters.suppressed_vertices, frame.counters.suppressed_vertices);
  EXPECT_EQ(f.sections, frame.sections);
}

TEST(CheckpointFrameTest, EveryTruncationIsRejectedWithoutAborting) {
  const std::string bytes = EncodeFrame(SampleFrame());
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    const auto got = DecodeFrame(bytes.substr(0, keep));
    ASSERT_FALSE(got.ok()) << "prefix of " << keep << " bytes decoded";
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss) << keep;
  }
}

TEST(CheckpointFrameTest, TrailingBytesRejected) {
  const std::string bytes = EncodeFrame(SampleFrame()) + "x";
  const auto got = DecodeFrame(bytes);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("trailing"), std::string::npos);
}

// --- Policy ---

TEST(CheckpointPolicyTest, ModesDecideBarriers) {
  EXPECT_FALSE(CheckpointPolicy::None().enabled());
  EXPECT_FALSE(CheckpointPolicy::None().ShouldCheckpoint(0, 1 << 30));

  const CheckpointPolicy k3 = CheckpointPolicy::EveryK(3);
  ASSERT_TRUE(k3.enabled());
  std::vector<int> hits;
  for (int s = 0; s < 9; ++s) {
    if (k3.ShouldCheckpoint(s, 0)) hits.push_back(s);
  }
  EXPECT_EQ(hits, (std::vector<int>{2, 5, 8}));

  const CheckpointPolicy wall = CheckpointPolicy::WallClock(1000);
  ASSERT_TRUE(wall.enabled());
  EXPECT_FALSE(wall.ShouldCheckpoint(0, 999));
  EXPECT_TRUE(wall.ShouldCheckpoint(0, 1000));
  // 0 means every barrier; negative input is clamped.
  EXPECT_TRUE(CheckpointPolicy::WallClock(0).ShouldCheckpoint(5, 0));
  EXPECT_TRUE(CheckpointPolicy::WallClock(-7).ShouldCheckpoint(5, 0));
  EXPECT_EQ(CheckpointPolicy::EveryK(0).every_k, 1);
}

// --- Recovery exactness: ICM ---

struct ModeSpec {
  const char* name;
  Scheduling scheduling;
  int num_threads;
  int chunk_size;
};

// The container may expose a single core; explicit thread counts keep the
// pool modes honest (and the matrix identical everywhere).
const ModeSpec kModes[] = {
    {"spawn", Scheduling::kSpawn, 0, 64},
    {"pool", Scheduling::kPool, 2, 64},
    {"stealing", Scheduling::kStealing, 4, 4},
};

IcmOptions MakeIcmOptions(const ModeSpec& mode, int workers) {
  IcmOptions options;
  options.num_workers = workers;
  options.use_threads = true;
  options.runtime.scheduling = mode.scheduling;
  options.runtime.num_threads = mode.num_threads;
  options.runtime.chunk_size = mode.chunk_size;
  return options;
}

template <typename P>
void ExpectSameOutcome(const IcmResult<P>& want, const IcmResult<P>& got,
                       const std::string& what) {
  ASSERT_EQ(want.states.size(), got.states.size()) << what;
  for (size_t v = 0; v < want.states.size(); ++v) {
    ASSERT_EQ(want.states[v].entries(), got.states[v].entries())
        << what << " v=" << v;
  }
  EXPECT_EQ(want.metrics.supersteps, got.metrics.supersteps) << what;
  EXPECT_EQ(want.metrics.compute_calls, got.metrics.compute_calls) << what;
  EXPECT_EQ(want.metrics.scatter_calls, got.metrics.scatter_calls) << what;
  EXPECT_EQ(want.metrics.messages, got.metrics.messages) << what;
  EXPECT_EQ(want.metrics.message_bytes, got.metrics.message_bytes) << what;
  EXPECT_EQ(want.active_compute_calls, got.active_compute_calls) << what;
  EXPECT_EQ(want.suppressed_vertices, got.suppressed_vertices) << what;
}

TemporalGraph RecoveryGraph() {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 60;
  opt.num_edges = 220;
  return testutil::MakeRandomGraph(7, opt);
}

// A run killed mid-superstep and resumed from its latest checkpoint must
// be indistinguishable — final interval states and cumulative counters —
// from one that never died, in every scheduling mode and worker count.
TEST(CheckpointRecoveryIcmTest, KilledAndResumedMatchesUninterrupted) {
  const TemporalGraph g = RecoveryGraph();
  for (int workers : {1, 3, 7}) {
    for (const ModeSpec& mode : kModes) {
      const std::string what =
          std::string(mode.name) + " w=" + std::to_string(workers);
      IcmOptions options = MakeIcmOptions(mode, workers);
      options.runtime.checkpoint = CheckpointPolicy::EveryK(1);

      IcmSssp baseline_program(g, g.vertex_id(0));
      const auto baseline =
          IcmEngine<IcmSssp>::Run(g, baseline_program, options);
      ASSERT_GE(baseline.metrics.supersteps, 3) << what;
      ASSERT_FALSE(baseline.metrics.interrupted) << what;

      CheckpointStore store(NewDir("icm_kill"));
      FaultInjector fault;
      fault.ScheduleKill(/*superstep=*/2, /*worker=*/0);
      RecoveryContext crash;
      crash.store = &store;
      crash.fault = &fault;
      IcmSssp killed_program(g, g.vertex_id(0));
      const auto killed =
          IcmEngine<IcmSssp>::Run(g, killed_program, options, crash);
      ASSERT_TRUE(fault.triggered()) << what;
      ASSERT_TRUE(killed.metrics.interrupted) << what;
      // The kill predates the run's end: supersteps 0 and 1 checkpointed.
      ASSERT_FALSE(store.ListCheckpoints().empty()) << what;

      RecoveryContext resume;
      resume.store = &store;
      resume.resume = true;
      IcmSssp resumed_program(g, g.vertex_id(0));
      const auto resumed =
          IcmEngine<IcmSssp>::Run(g, resumed_program, options, resume);
      EXPECT_EQ(resumed.metrics.resumed_from, 2) << what;
      EXPECT_FALSE(resumed.metrics.interrupted) << what;
      ExpectSameOutcome(baseline, resumed, what);
    }
  }
}

// A corrupted latest checkpoint is detected by its checksum and recovery
// silently falls back to the previous valid snapshot.
TEST(CheckpointRecoveryIcmTest, CorruptLatestFallsBackToPreviousValid) {
  const TemporalGraph g = RecoveryGraph();
  IcmOptions options = MakeIcmOptions(kModes[2], 3);
  options.runtime.checkpoint = CheckpointPolicy::EveryK(1);

  IcmSssp baseline_program(g, g.vertex_id(0));
  const auto baseline = IcmEngine<IcmSssp>::Run(g, baseline_program, options);
  ASSERT_GE(baseline.metrics.supersteps, 3);

  CheckpointStore store(NewDir("icm_corrupt"), /*retain=*/3);
  FaultInjector fault;
  fault.ScheduleKill(/*superstep=*/baseline.metrics.supersteps - 1,
                     /*worker=*/0);
  RecoveryContext crash;
  crash.store = &store;
  crash.fault = &fault;
  IcmSssp killed_program(g, g.vertex_id(0));
  const auto killed =
      IcmEngine<IcmSssp>::Run(g, killed_program, options, crash);
  ASSERT_TRUE(killed.metrics.interrupted);
  const std::vector<int> ckpts = store.ListCheckpoints();
  ASSERT_GE(ckpts.size(), 2u);

  // Damage the newest snapshot; resume must land on the one before it.
  ASSERT_TRUE(FaultInjector::CorruptByte(store, ckpts.back(), 23).ok());
  RecoveryContext resume;
  resume.store = &store;
  resume.resume = true;
  IcmSssp resumed_program(g, g.vertex_id(0));
  const auto resumed =
      IcmEngine<IcmSssp>::Run(g, resumed_program, options, resume);
  EXPECT_EQ(resumed.metrics.resumed_from, ckpts[ckpts.size() - 2]);
  ExpectSameOutcome(baseline, resumed, "corrupt-fallback");
}

TEST(CheckpointRecoveryIcmTest, ResumeOnEmptyStoreIsColdStart) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmOptions options;
  options.num_workers = 3;
  options.runtime.checkpoint = CheckpointPolicy::EveryK(1);

  IcmSssp baseline_program(g, testutil::kA);
  const auto baseline = IcmEngine<IcmSssp>::Run(g, baseline_program, options);

  CheckpointStore store(NewDir("icm_cold"));
  RecoveryContext resume;
  resume.store = &store;
  resume.resume = true;
  IcmSssp program(g, testutil::kA);
  const auto got = IcmEngine<IcmSssp>::Run(g, program, options, resume);
  EXPECT_EQ(got.metrics.resumed_from, -1);
  ExpectSameOutcome(baseline, got, "cold-start");
  // The run itself wrote checkpoints: every barrier but the halting one.
  const std::vector<int> ckpts = store.ListCheckpoints();
  ASSERT_FALSE(ckpts.empty());
  EXPECT_EQ(ckpts.back(),
            static_cast<int>(baseline.metrics.supersteps) - 1);
  EXPECT_EQ(got.metrics.checkpoints,
            baseline.metrics.supersteps - 1);
}

TEST(CheckpointRecoveryIcmTest, ResumeFromSpecificSuperstep) {
  const TemporalGraph g = RecoveryGraph();
  IcmOptions options = MakeIcmOptions(kModes[1], 3);
  options.runtime.checkpoint = CheckpointPolicy::EveryK(1);

  IcmSssp baseline_program(g, g.vertex_id(0));
  const auto baseline = IcmEngine<IcmSssp>::Run(g, baseline_program, options);
  ASSERT_GE(baseline.metrics.supersteps, 3);

  CheckpointStore store(NewDir("icm_pick"), /*retain=*/64);
  RecoveryContext save;
  save.store = &store;
  IcmSssp run_program(g, g.vertex_id(0));
  IcmEngine<IcmSssp>::Run(g, run_program, options, save);
  ASSERT_GE(store.ListCheckpoints().size(), 2u);

  RecoveryContext resume;
  resume.store = &store;
  resume.resume = true;
  resume.resume_from = 1;  // replay everything from superstep 1
  IcmSssp resumed_program(g, g.vertex_id(0));
  const auto resumed =
      IcmEngine<IcmSssp>::Run(g, resumed_program, options, resume);
  EXPECT_EQ(resumed.metrics.resumed_from, 1);
  ExpectSameOutcome(baseline, resumed, "resume-from-1");
}

TEST(CheckpointRecoveryIcmTest, WallClockPolicyBounds) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmOptions options;
  options.num_workers = 2;

  // interval 0: every barrier except the halting one checkpoints.
  options.runtime.checkpoint = CheckpointPolicy::WallClock(0);
  CheckpointStore every(NewDir("icm_wall0"));
  RecoveryContext ctx_every;
  ctx_every.store = &every;
  IcmSssp p1(g, testutil::kA);
  const auto r1 = IcmEngine<IcmSssp>::Run(g, p1, options, ctx_every);
  EXPECT_EQ(r1.metrics.checkpoints, r1.metrics.supersteps - 1);
  EXPECT_GT(r1.metrics.checkpoint_bytes, 0);

  // An unreachable interval: no barrier qualifies.
  options.runtime.checkpoint =
      CheckpointPolicy::WallClock(int64_t{1} << 60);
  CheckpointStore never(NewDir("icm_wallmax"));
  RecoveryContext ctx_never;
  ctx_never.store = &never;
  IcmSssp p2(g, testutil::kA);
  const auto r2 = IcmEngine<IcmSssp>::Run(g, p2, options, ctx_never);
  EXPECT_EQ(r2.metrics.checkpoints, 0);
  EXPECT_TRUE(never.ListCheckpoints().empty());

  // No store: the policy alone must not checkpoint anything.
  options.runtime.checkpoint = CheckpointPolicy::EveryK(1);
  IcmSssp p3(g, testutil::kA);
  const auto r3 = IcmEngine<IcmSssp>::Run(g, p3, options);
  EXPECT_EQ(r3.metrics.checkpoints, 0);
}

// --- Recovery exactness: VCM ---

/// Trivial adapter: n always-existing units, partitioned by unit id.
struct LineAdapter {
  size_t n;
  size_t NumUnits() const { return n; }
  bool UnitExists(uint32_t) const { return true; }
  int64_t PartitionId(uint32_t u) const { return u; }
};

/// A token relay: unit 0 fires in superstep 0, each message wakes the
/// next unit. Runs exactly n supersteps with one message per superstep —
/// long enough to kill anywhere, deterministic everywhere.
class RelayProgram {
 public:
  using Value = int64_t;
  using Message = int64_t;

  explicit RelayProgram(uint32_t n) : n_(n) {}

  Value Init(uint32_t u) const { return u == 0 ? 1 : 0; }

  template <typename Ctx>
  void Compute(Ctx& ctx, uint32_t u, Value& value,
               std::span<const Message> msgs) {
    for (const Message& m : msgs) value += m;
    const bool holds_token = (ctx.superstep() == 0 && u == 0) || !msgs.empty();
    if (holds_token && u + 1 < n_) ctx.Send(u + 1, value + 1);
  }

 private:
  uint32_t n_;
};

VcmOptions MakeVcmOptions(const ModeSpec& mode, int workers) {
  VcmOptions options;
  options.num_workers = workers;
  options.use_threads = true;
  options.runtime.scheduling = mode.scheduling;
  options.runtime.num_threads = mode.num_threads;
  options.runtime.chunk_size = mode.chunk_size;
  return options;
}

void ExpectSameVcmOutcome(const RunMetrics& want_m,
                          const std::vector<int64_t>& want_v,
                          const RunMetrics& got_m,
                          const std::vector<int64_t>& got_v,
                          const std::string& what) {
  ASSERT_EQ(want_v, got_v) << what;
  EXPECT_EQ(want_m.supersteps, got_m.supersteps) << what;
  EXPECT_EQ(want_m.compute_calls, got_m.compute_calls) << what;
  EXPECT_EQ(want_m.messages, got_m.messages) << what;
  EXPECT_EQ(want_m.message_bytes, got_m.message_bytes) << what;
}

TEST(CheckpointRecoveryVcmTest, KilledAndResumedMatchesUninterrupted) {
  constexpr uint32_t kUnits = 40;
  const LineAdapter adapter{kUnits};
  for (int workers : {1, 3, 7}) {
    for (const ModeSpec& mode : kModes) {
      const std::string what =
          std::string(mode.name) + " w=" + std::to_string(workers);
      VcmOptions options = MakeVcmOptions(mode, workers);
      options.runtime.checkpoint = CheckpointPolicy::EveryK(3);

      RelayProgram baseline_program(kUnits);
      std::vector<int64_t> baseline_values;
      const RunMetrics baseline =
          RunVcm(adapter, baseline_program, options, &baseline_values);
      ASSERT_EQ(baseline.supersteps, kUnits) << what;

      CheckpointStore store(NewDir("vcm_kill"));
      FaultInjector fault;
      fault.ScheduleKill(/*superstep=*/10, /*worker=*/0);
      RecoveryContext crash;
      crash.store = &store;
      crash.fault = &fault;
      RelayProgram killed_program(kUnits);
      std::vector<int64_t> killed_values;
      const RunMetrics killed = RunVcm(adapter, killed_program, options,
                                       &killed_values, {}, crash);
      ASSERT_TRUE(fault.triggered()) << what;
      ASSERT_TRUE(killed.interrupted) << what;
      ASSERT_FALSE(store.ListCheckpoints().empty()) << what;

      RecoveryContext resume;
      resume.store = &store;
      resume.resume = true;
      RelayProgram resumed_program(kUnits);
      std::vector<int64_t> resumed_values;
      const RunMetrics resumed = RunVcm(adapter, resumed_program, options,
                                        &resumed_values, {}, resume);
      // EveryK(3) commits after supersteps 2, 5, 8, ... — the newest
      // barrier at or before the kill point is superstep 9's.
      EXPECT_EQ(resumed.resumed_from, 9) << what;
      ExpectSameVcmOutcome(baseline, baseline_values, resumed, resumed_values,
                           what);
    }
  }
}

TEST(CheckpointRecoveryVcmTest, CorruptLatestFallsBackToPreviousValid) {
  constexpr uint32_t kUnits = 24;
  const LineAdapter adapter{kUnits};
  VcmOptions options = MakeVcmOptions(kModes[2], 3);
  options.runtime.checkpoint = CheckpointPolicy::EveryK(2);

  RelayProgram baseline_program(kUnits);
  std::vector<int64_t> baseline_values;
  const RunMetrics baseline =
      RunVcm(adapter, baseline_program, options, &baseline_values);

  CheckpointStore store(NewDir("vcm_corrupt"), /*retain=*/4);
  RecoveryContext save;
  save.store = &store;
  RelayProgram run_program(kUnits);
  RunVcm(adapter, run_program, options, nullptr, {}, save);
  const std::vector<int> ckpts = store.ListCheckpoints();
  ASSERT_GE(ckpts.size(), 2u);

  ASSERT_TRUE(FaultInjector::Truncate(store, ckpts.back(), 10).ok());
  RecoveryContext resume;
  resume.store = &store;
  resume.resume = true;
  RelayProgram resumed_program(kUnits);
  std::vector<int64_t> resumed_values;
  const RunMetrics resumed =
      RunVcm(adapter, resumed_program, options, &resumed_values, {}, resume);
  EXPECT_EQ(resumed.resumed_from, ckpts[ckpts.size() - 2]);
  ExpectSameVcmOutcome(baseline, baseline_values, resumed, resumed_values,
                       "vcm-corrupt-fallback");
}

}  // namespace
}  // namespace graphite
