// Additional cross-cutting coverage: runner config plumbing, baseline
// option windows, oracle self-consistency, centrality sampling bounds,
// text-format corner cases, and ICM context accessors.
#include <gtest/gtest.h>

#include "algorithms/centrality.h"
#include "algorithms/oracle.h"
#include "algorithms/runners.h"
#include "baselines/tgb.h"
#include "io/text_format.h"
#include "testutil.h"

namespace graphite {
namespace {

TEST(RunConfigTest, TranslatesToEngineOptions) {
  RunConfig config;
  config.num_workers = 6;
  config.use_threads = true;
  config.icm_combiner = false;
  config.icm_suppression = false;
  config.icm_suppression_threshold = 0.5;
  config.chlonos_batch_size = 3;

  const IcmOptions icm = config.ToIcm();
  EXPECT_EQ(icm.num_workers, 6);
  EXPECT_TRUE(icm.use_threads);
  EXPECT_FALSE(icm.enable_combiner);
  EXPECT_FALSE(icm.enable_suppression);
  EXPECT_DOUBLE_EQ(icm.suppression_threshold, 0.5);

  const VcmOptions vcm = config.ToVcm();
  EXPECT_EQ(vcm.num_workers, 6);
  const ChlonosOptions chl = config.ToChlonos();
  EXPECT_EQ(chl.batch_size, 3);
  const GoffishOptions gof = config.ToGoffish();
  EXPECT_EQ(gof.num_workers, 6);
}

TEST(OracleSelfConsistencyTest, ReachEqualsFiniteSsspCost) {
  const TemporalGraph g = testutil::MakeRandomGraph(611);
  const auto costs = OracleSsspCosts(g, 0);
  const auto reach = OracleReach(g, 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    for (size_t t = 0; t < costs[v].size(); ++t) {
      EXPECT_EQ(reach[v][t] == 1, costs[v][t] != kInfCost);
    }
  }
}

TEST(OracleSelfConsistencyTest, EatIsFirstReachableInstant) {
  const TemporalGraph g = testutil::MakeRandomGraph(612);
  const auto reach = OracleReach(g, 0);
  const auto eat = OracleEat(g, 0);
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (eat[v] == kInfCost) {
      for (uint8_t r : reach[v]) EXPECT_EQ(r, 0);
    } else {
      EXPECT_EQ(reach[v][static_cast<size_t>(eat[v])], 1);
      if (eat[v] > 0) {
        EXPECT_EQ(reach[v][static_cast<size_t>(eat[v] - 1)], 0);
      }
    }
  }
}

TEST(OracleSelfConsistencyTest, FastestNeverBeatsEatDelta) {
  // Duration from the best EAT run is an upper bound on FAST.
  const TemporalGraph g = testutil::MakeRandomGraph(613);
  const auto eat = OracleEat(g, 0);
  const auto fast = OracleFastest(g, 0);
  const TimePoint start = std::max<TimePoint>(0, g.vertex_interval(0).start);
  for (VertexIdx v = 1; v < g.num_vertices(); ++v) {
    if (eat[v] == kInfCost) {
      EXPECT_EQ(fast[v], kInfCost);
    } else {
      EXPECT_LE(fast[v], eat[v] - start);
      EXPECT_GE(fast[v], 0);
    }
  }
}

TEST(CentralityBoundsTest, OversamplingFallsBackToExhaustive) {
  const TemporalGraph g = testutil::MakeRandomGraph(614);
  ClosenessOptions options;
  options.num_samples = static_cast<int>(g.num_vertices()) + 100;
  const ClosenessResult r = TemporalCloseness(g, options);
  EXPECT_EQ(r.sources.size(), g.num_vertices());
  for (double c : r.closeness) EXPECT_GE(c, 0.0);
}

TEST(TextFormatTest, HorizonDerivedWhenHeaderAbsent) {
  auto g = ReadTextGraph("V 1 0 6\nV 2 0 9\nE 5 1 2 2 4\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->horizon(), 9);  // Max finite end.
}

TEST(TextFormatTest, InfiniteLifespansRoundTrip) {
  auto g = ReadTextGraph("H 12\nV 1 0 inf\nV 2 -inf inf\nE 5 1 2 3 7\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->vertex_interval(*g->IndexOf(1)), Interval(0, kTimeMax));
  EXPECT_EQ(g->vertex_interval(*g->IndexOf(2)),
            Interval(kTimeMin, kTimeMax));
  auto round = ReadTextGraph(WriteTextGraph(*g));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(WriteTextGraph(*round), WriteTextGraph(*g));
}

TEST(ReversedTransformedTest, EdgesAreExactInverses) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TransformedGraph tg = BuildTransformedGraph(g);
  ReversedTransformedAdapter reversed(&tg, &g);
  // Every forward edge appears exactly once reversed.
  size_t forward_edges = 0, reversed_edges = 0;
  for (ReplicaIdx r = 0; r < tg.num_replicas(); ++r) {
    forward_edges += tg.OutEdges(r).size();
    reversed.ForEachOutEdge(r, [&](uint32_t dst,
                                   const TransformedGraph::TransitEdge& e) {
      ++reversed_edges;
      // The reverse of (dst -> r) must exist forward.
      bool found = false;
      for (const auto& fwd : tg.OutEdges(dst)) {
        if (fwd.dst == r && fwd.cost == e.cost &&
            fwd.is_chain == e.is_chain) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
    });
  }
  EXPECT_EQ(forward_edges, reversed_edges);
}

TEST(ChlonosWindowTest, WindowRestrictsProcessedSnapshots) {
  const TemporalGraph g = testutil::MakeRandomGraph(615);
  ChlonosOptions options;
  options.window_begin = 3;
  options.window_end = 7;
  auto out = RunChlonos<VcmWcc>(
      MakeUndirected(g), options,
      [&](const SnapshotAdapter& a) { return VcmWcc(a); });
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(out.result[v].Get(2), std::nullopt);
    EXPECT_EQ(out.result[v].Get(7), std::nullopt);
  }
}

TEST(IcmContextTest, AccessorsExposeGraphFacts) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  struct Probe {
    using State = int64_t;
    using Message = int64_t;
    const TemporalGraph* graph;
    bool checked = false;
    State Init(VertexIdx) const { return 0; }
    void Compute(IcmVertexContext<Probe>& ctx, std::span<const Message>) {
      if (ctx.vertex_id() != testutil::kA) return;
      EXPECT_EQ(ctx.superstep(), 0);
      EXPECT_EQ(&ctx.graph(), graph);
      EXPECT_EQ(ctx.vertex_interval(), Interval(0, kTimeMax));
      EXPECT_EQ(ctx.interval(), Interval(0, kTimeMax));
      EXPECT_EQ(ctx.state(), 0);
      checked = true;
    }
    void Scatter(IcmScatterContext<Probe>&, const State&) {}
  } probe{&g};
  IcmEngine<Probe>::Run(g, probe);
  EXPECT_TRUE(probe.checked);
}

TEST(ScatterContextTest, PropertySlicesAreConstant) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const auto cost_label = *g.LabelIdOf("travel-cost");
  struct Probe {
    using State = int64_t;
    using Message = int64_t;
    LabelId cost;
    int slices = 0;
    State Init(VertexIdx) const { return 0; }
    void Compute(IcmVertexContext<Probe>& ctx, std::span<const Message>) {
      if (ctx.vertex_id() == testutil::kA) ctx.SetState(ctx.interval(), 1);
    }
    void Scatter(IcmScatterContext<Probe>& ctx, const State&) {
      if (ctx.edge().eid != 10) return;  // A->B, cost changes at t=5.
      auto value = ctx.EdgeProp(cost);
      ASSERT_TRUE(value.has_value());
      // Slice [3,5) must see 4; [5,6) must see 3 — never a mix.
      if (ctx.interval().start < 5) {
        EXPECT_EQ(*value, 4);
        EXPECT_LE(ctx.interval().end, 5);
      } else {
        EXPECT_EQ(*value, 3);
      }
      ++slices;
    }
  } probe{cost_label};
  IcmEngine<Probe>::Run(g, probe);
  EXPECT_EQ(probe.slices, 2);  // One per property run of A->B.
}

}  // namespace
}  // namespace graphite
