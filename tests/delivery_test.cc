// Unit suite for the shared delivery plane (engine/delivery.h) and its
// transport backends (engine/transport.h): WorkerMap placement semantics
// (hash default vs explicit maps, sparse external ids), Deliver/Seal
// grouping order, empty-superstep seals, barrier cleanup, checkpoint
// drain/restore through the plane's accessors, and the in-process vs
// loopback-wire transport contract (aliasing vs copying).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/delivery.h"
#include "engine/transport.h"
#include "graph/partitioner.h"
#include "util/serde.h"

namespace graphite {
namespace {

// --- WorkerMap / Placement ---

TEST(WorkerMapTest, HashPolicyMatchesHashPartitioner) {
  const int kWorkers = 5;
  const size_t kUnits = 200;
  auto key_of = [](uint32_t u) { return static_cast<VertexId>(u * 13 + 1); };
  const WorkerMap map(kUnits, kWorkers, Placement::Hash(), key_of);
  HashPartitioner reference(kWorkers);
  size_t listed = 0;
  for (uint32_t u = 0; u < kUnits; ++u) {
    EXPECT_EQ(map.WorkerOf(u), reference.WorkerOf(key_of(u))) << "u=" << u;
  }
  for (int w = 0; w < kWorkers; ++w) listed += map.units_of(w).size();
  EXPECT_EQ(listed, kUnits);
}

// Regression (ISSUE 5 satellite): non-contiguous / sparse external vertex
// ids. Placement hashes the external id, never the dense index, so ids
// far apart (and far beyond the unit count) must land exactly where
// HashPartitioner puts them, with every unit owned exactly once.
TEST(WorkerMapTest, SparseNonContiguousIdsMatchHashPartitioner) {
  const std::vector<VertexId> ids = {
      1, 42, 999, 1'000'000'007, 3'000'000'000LL, 7, 123'456'789'012'345LL};
  const int kWorkers = 3;
  auto key_of = [&ids](uint32_t u) { return ids[u]; };
  const WorkerMap map(ids.size(), kWorkers, Placement::Hash(), key_of);
  HashPartitioner reference(kWorkers);
  std::vector<int> seen(ids.size(), 0);
  for (int w = 0; w < kWorkers; ++w) {
    for (const uint32_t u : map.units_of(w)) {
      EXPECT_EQ(w, reference.WorkerOf(ids[u])) << "u=" << u;
      ++seen[u];
    }
  }
  for (size_t u = 0; u < ids.size(); ++u) EXPECT_EQ(seen[u], 1) << u;
}

TEST(WorkerMapTest, ExplicitPlacementIndexesByUnit) {
  const std::vector<int> assignment = {2, 0, 1, 1, 2, 0};
  const WorkerMap map(assignment.size(), 3, Placement::Explicit(&assignment),
                      [](uint32_t u) { return static_cast<VertexId>(u); });
  for (uint32_t u = 0; u < assignment.size(); ++u) {
    EXPECT_EQ(map.WorkerOf(u), assignment[u]);
  }
  // Owner lists are in unit order — the compute iteration order.
  EXPECT_EQ(map.units_of(0), (std::vector<uint32_t>{1, 5}));
  EXPECT_EQ(map.units_of(1), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(map.units_of(2), (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(map.worker_sizes(), (std::vector<size_t>{2, 2, 2}));
}

TEST(WorkerMapTest, NonExistentUnitsStayUnlisted) {
  const WorkerMap map(
      6, 2, Placement::Hash(), [](uint32_t u) { return VertexId{u}; },
      [](uint32_t u) { return u % 2 == 0; });  // odd units don't exist
  size_t listed = 0;
  for (int w = 0; w < 2; ++w) {
    for (const uint32_t u : map.units_of(w)) EXPECT_EQ(u % 2, 0u);
    listed += map.units_of(w).size();
  }
  EXPECT_EQ(listed, 3u);
}

// --- DeliveryPlane ---

// A plane over an explicit 2-worker placement, bound to a sequential
// runtime; the fixture is the steady-state lifecycle every engine runs.
class DeliveryPlaneTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 2;
  // Units 0,2,4 on worker 0; units 1,3,5 on worker 1.
  DeliveryPlaneTest()
      : assignment_{0, 1, 0, 1, 0, 1},
        plane_(WorkerMap(assignment_.size(), kWorkers,
                         Placement::Explicit(&assignment_),
                         [](uint32_t u) { return static_cast<VertexId>(u); })),
        rt_(kWorkers, /*use_threads=*/false, RuntimeOptions{},
            plane_.map().worker_sizes()) {
    plane_.Bind(&rt_);
  }

  std::vector<int> assignment_;
  DeliveryPlane<int64_t> plane_;
  SuperstepRuntime rt_;
};

TEST_F(DeliveryPlaneTest, DeliverSealGroupsInFirstArrivalOrder) {
  // Interleave units; groups must come back per unit, values in
  // delivery order.
  plane_.Deliver(0, 2, 10);
  plane_.Deliver(0, 0, 20);
  plane_.Deliver(0, 2, 11);
  plane_.Deliver(1, 5, 30);
  plane_.Deliver(0, 2, 12);
  plane_.SealAll();

  ASSERT_EQ(plane_.InboxCountFor(0, 2), 3u);
  const auto u2 = plane_.MessagesFor(0, 2);
  EXPECT_EQ((std::vector<int64_t>(u2.begin(), u2.end())),
            (std::vector<int64_t>{10, 11, 12}));
  const auto u0 = plane_.MessagesFor(0, 0);
  EXPECT_EQ((std::vector<int64_t>(u0.begin(), u0.end())),
            (std::vector<int64_t>{20}));
  const auto u5 = plane_.MessagesFor(1, 5);
  EXPECT_EQ((std::vector<int64_t>(u5.begin(), u5.end())),
            (std::vector<int64_t>{30}));
  EXPECT_TRUE(plane_.HasMail(0));
  EXPECT_TRUE(plane_.HasMail(2));
  EXPECT_TRUE(plane_.HasMail(5));
  EXPECT_FALSE(plane_.HasMail(1));
  EXPECT_FALSE(plane_.HasMail(4));
}

TEST_F(DeliveryPlaneTest, EmptySuperstepSealIsSafe) {
  // No deliveries at all: sealing and reading must behave, repeatedly.
  for (int cycle = 0; cycle < 3; ++cycle) {
    plane_.SealAll();
    for (uint32_t u = 0; u < 6; ++u) {
      EXPECT_FALSE(plane_.HasMail(u));
      EXPECT_TRUE(plane_.MessagesFor(assignment_[u], u).empty());
    }
    plane_.Barrier();
  }
}

TEST_F(DeliveryPlaneTest, BarrierClearsMailAndInboxes) {
  plane_.Deliver(0, 0, 1);
  plane_.Deliver(1, 3, 2);
  plane_.SealAll();
  plane_.Barrier();
  for (uint32_t u = 0; u < 6; ++u) EXPECT_FALSE(plane_.HasMail(u));
  EXPECT_EQ(plane_.InboxCountFor(0, 0), 0u);
  EXPECT_EQ(plane_.InboxCountFor(1, 3), 0u);
  // The plane is immediately reusable for the next superstep.
  plane_.Deliver(0, 4, 7);
  plane_.SealAll();
  ASSERT_EQ(plane_.InboxCountFor(0, 4), 1u);
  EXPECT_EQ(plane_.MessagesFor(0, 4)[0], 7);
}

// --- Frontier protocol (frontier-driven supersteps) ---
// Seal publishes each worker's mailed units as a sorted frontier unless
// the mailed set exceeds FrontierLimit (density * owned units), in which
// case the worker is marked dense and compute falls back to its
// activation scan. These tests pin the switch boundary, the sort/slice
// contract, and the empty-superstep behavior the engines rely on.

using DeliveryPlaneFrontierTest = DeliveryPlaneTest;

TEST_F(DeliveryPlaneFrontierTest, FrontierIsSortedMailedUnits) {
  // Deliver out of unit order; the frontier must come back sorted — the
  // same visit order as the dense scan. (High density: this test is about
  // ordering, not the switch.)
  plane_.set_frontier_density(1e9);
  plane_.Deliver(0, 4, 1);
  plane_.Deliver(0, 0, 2);
  plane_.Deliver(1, 5, 3);
  plane_.Deliver(1, 1, 4);
  plane_.SealAll();
  EXPECT_FALSE(plane_.FrontierIsDense(0));
  EXPECT_FALSE(plane_.FrontierIsDense(1));
  const auto f0 = plane_.Frontier(0);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0], 0u);
  EXPECT_EQ(f0[1], 4u);
  const auto f1 = plane_.Frontier(1);
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_EQ(f1[0], 1u);
  EXPECT_EQ(f1[1], 5u);
}

TEST_F(DeliveryPlaneFrontierTest, DensitySwitchBoundaryIsExact) {
  // Worker 0 owns 3 units; density 0.5 puts the limit at floor(1.5) = 1
  // mailed unit. Exactly at the limit: frontier. One past: dense.
  plane_.set_frontier_density(0.5);
  ASSERT_EQ(plane_.FrontierLimit(0), 1u);

  plane_.Deliver(0, 2, 10);
  plane_.SealAll();
  EXPECT_FALSE(plane_.FrontierIsDense(0));
  ASSERT_EQ(plane_.Frontier(0).size(), 1u);
  EXPECT_EQ(plane_.Frontier(0)[0], 2u);
  plane_.Barrier();

  plane_.Deliver(0, 2, 10);
  plane_.Deliver(0, 4, 11);
  plane_.SealAll();
  EXPECT_TRUE(plane_.FrontierIsDense(0));
  EXPECT_TRUE(plane_.Frontier(0).empty());  // never materialized
  // Worker 1 had no mail: not dense, empty frontier.
  EXPECT_FALSE(plane_.FrontierIsDense(1));
  EXPECT_TRUE(plane_.Frontier(1).empty());
}

TEST_F(DeliveryPlaneFrontierTest, DensityZeroDisablesFrontier) {
  plane_.set_frontier_density(0.0);
  EXPECT_EQ(plane_.FrontierLimit(0), 0u);
  plane_.Deliver(0, 0, 1);
  plane_.SealAll();
  // A single mailed unit already exceeds the zero limit: dense fallback.
  EXPECT_TRUE(plane_.FrontierIsDense(0));
  EXPECT_TRUE(plane_.Frontier(0).empty());
}

TEST_F(DeliveryPlaneFrontierTest, HighDensityNeverGoesDense) {
  plane_.set_frontier_density(1e9);
  for (uint32_t u = 0; u < 6; ++u) {
    plane_.Deliver(assignment_[u], u, static_cast<int64_t>(u));
  }
  plane_.SealAll();
  EXPECT_FALSE(plane_.FrontierIsDense(0));
  EXPECT_FALSE(plane_.FrontierIsDense(1));
  EXPECT_EQ(plane_.Frontier(0).size(), 3u);
  EXPECT_EQ(plane_.Frontier(1).size(), 3u);
}

TEST_F(DeliveryPlaneFrontierTest, FrontierSliceRestrictsByUnitRange) {
  plane_.set_frontier_density(1e9);
  plane_.Deliver(0, 0, 1);
  plane_.Deliver(0, 2, 2);
  plane_.Deliver(0, 4, 3);
  plane_.SealAll();
  // [0, 6) — everything; [1, 4) — only unit 2; [5, 6) — nothing.
  const auto all = plane_.FrontierSlice(0, 0, 6);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 0u);
  EXPECT_EQ(all[2], 4u);
  const auto mid = plane_.FrontierSlice(0, 1, 4);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0], 2u);
  EXPECT_TRUE(plane_.FrontierSlice(0, 5, 6).empty());
  // Half-open upper bound: unit_end itself is excluded.
  EXPECT_EQ(plane_.FrontierSlice(0, 0, 4).size(), 2u);
}

// Regression: a superstep where no worker receives mail must seal to an
// empty, non-dense frontier — and stay well-behaved across barriers
// (the engines probe Frontier/FrontierIsDense every superstep).
TEST_F(DeliveryPlaneFrontierTest, EmptySuperstepSealsEmptyFrontier) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    plane_.SealAll();
    for (int w = 0; w < kWorkers; ++w) {
      EXPECT_FALSE(plane_.FrontierIsDense(w)) << "cycle " << cycle;
      EXPECT_TRUE(plane_.Frontier(w).empty()) << "cycle " << cycle;
      EXPECT_TRUE(plane_.FrontierSlice(w, 0, 6).empty()) << "cycle " << cycle;
    }
    int64_t units = 0, dense = 0;
    plane_.CountFrontier(&units, &dense);
    EXPECT_EQ(units, 0);
    EXPECT_EQ(dense, 0);
    plane_.Barrier();
  }
}

TEST_F(DeliveryPlaneFrontierTest, BarrierResetsDenseFlag) {
  plane_.set_frontier_density(0.0);
  plane_.Deliver(0, 0, 1);
  plane_.SealAll();
  EXPECT_TRUE(plane_.FrontierIsDense(0));
  plane_.Barrier();
  // Next superstep with a permissive density must rebuild the frontier.
  plane_.set_frontier_density(1e9);
  plane_.Deliver(0, 0, 1);
  plane_.SealAll();
  EXPECT_FALSE(plane_.FrontierIsDense(0));
  EXPECT_EQ(plane_.Frontier(0).size(), 1u);
}

TEST_F(DeliveryPlaneFrontierTest, CountFrontierSumsMailedAndDense) {
  // Worker 0 dense (2 mailed > limit 1 at density 0.5), worker 1 sparse.
  plane_.set_frontier_density(0.5);
  plane_.Deliver(0, 0, 1);
  plane_.Deliver(0, 2, 2);
  plane_.Deliver(1, 3, 3);
  plane_.SealAll();
  int64_t units = 0, dense = 0;
  plane_.CountFrontier(&units, &dense);
  EXPECT_EQ(units, 3);  // mailed-unit total is density-independent
  EXPECT_EQ(dense, 1);
}

// Checkpoint drain/restore through the plane: encode what the engines'
// EncodeSection reads (mail flag + undelivered messages per owned unit),
// then rebuild a fresh plane the way recovery does (Deliver per message,
// Seal per worker) and verify it is indistinguishable.
TEST_F(DeliveryPlaneTest, CheckpointDrainRestoreRoundTrips) {
  plane_.Deliver(0, 2, 100);
  plane_.Deliver(0, 2, 101);
  plane_.Deliver(1, 1, 200);
  plane_.SealAll();

  // Drain (engine checkpoint encode shape).
  Writer section;
  for (int w = 0; w < kWorkers; ++w) {
    for (const uint32_t u : plane_.map().units_of(w)) {
      section.WriteU64(u);
      section.WriteU64(plane_.MailFlag(u));
      const auto msgs = plane_.MessagesFor(w, u);
      GRAPHITE_CHECK(msgs.size() == plane_.InboxCountFor(w, u));
      section.WriteU64(msgs.size());
      for (const int64_t m : msgs) section.WriteI64(m);
    }
  }

  // Restore into a fresh plane (engine recovery shape).
  DeliveryPlane<int64_t> restored(
      WorkerMap(assignment_.size(), kWorkers, Placement::Explicit(&assignment_),
                [](uint32_t u) { return static_cast<VertexId>(u); }));
  SuperstepRuntime rt2(kWorkers, false, RuntimeOptions{},
                       restored.map().worker_sizes());
  restored.Bind(&rt2);
  Reader r(section.buffer());
  for (int w = 0; w < kWorkers; ++w) {
    for (size_t i = 0; i < plane_.map().units_of(w).size(); ++i) {
      const uint32_t u = static_cast<uint32_t>(r.ReadU64());
      const uint64_t mail_flag = r.ReadU64();
      const uint64_t num_msgs = r.ReadU64();
      // The invariant every engine's DecodeSection checks.
      ASSERT_EQ(mail_flag != 0, num_msgs > 0);
      for (uint64_t k = 0; k < num_msgs; ++k) {
        restored.Deliver(w, u, r.ReadI64());
      }
    }
    restored.Seal(w);
  }
  EXPECT_TRUE(r.AtEnd());

  for (int w = 0; w < kWorkers; ++w) {
    for (const uint32_t u : plane_.map().units_of(w)) {
      EXPECT_EQ(plane_.MailFlag(u), restored.MailFlag(u)) << "u=" << u;
      const auto a = plane_.MessagesFor(w, u);
      const auto b = restored.MessagesFor(w, u);
      ASSERT_EQ(a.size(), b.size()) << "u=" << u;
      for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]) << "u=" << u;
    }
  }
}

// --- Transport contract ---

TEST(TransportTest, KindNamesAreStable) {
  EXPECT_STREQ(TransportKindName(TransportKind::kInProcess), "in_process");
  EXPECT_STREQ(TransportKindName(TransportKind::kLoopbackWire),
               "loopback_wire");
  EXPECT_EQ(MakeTransport(TransportKind::kInProcess, 2)->kind(),
            TransportKind::kInProcess);
  EXPECT_EQ(MakeTransport(TransportKind::kLoopbackWire, 2)->kind(),
            TransportKind::kLoopbackWire);
}

TEST(TransportTest, InProcessAliasesSenderRowAndClearsOnConsume) {
  auto transport = MakeTransport(TransportKind::kInProcess, 2);
  Writer row;
  row.WriteU64(7);
  transport->Ship(0, 1, &row);
  ASSERT_EQ(transport->NumFrames(1), 1u);
  // Zero-copy: the frame IS the sender's buffer.
  EXPECT_EQ(transport->Frame(1, 0).data(), row.buffer().data());
  transport->Consume(1);
  EXPECT_EQ(transport->NumFrames(1), 0u);
  EXPECT_EQ(row.size(), 0u);  // consumed rows are reset for refill
}

TEST(TransportTest, LoopbackCopiesBytesOutOfSender) {
  auto transport = MakeTransport(TransportKind::kLoopbackWire, 2);
  Writer row;
  row.WriteU64(41);
  row.WriteU64(42);
  const std::string sent = row.buffer();
  transport->Ship(0, 1, &row);
  // Send semantics: the bytes left the sender immediately...
  EXPECT_EQ(row.size(), 0u);
  row.WriteU64(999);  // ...so sender reuse cannot corrupt the frame.
  ASSERT_EQ(transport->NumFrames(1), 1u);
  EXPECT_EQ(std::string(transport->Frame(1, 0)), sent);
  transport->Consume(1);
  EXPECT_EQ(transport->NumFrames(1), 0u);
}

TEST(TransportTest, LoopbackPreservesFrameBoundariesAndOrder) {
  auto transport = MakeTransport(TransportKind::kLoopbackWire, 3);
  Writer a, b, c;
  a.WriteU64(1);
  b.WriteU64(2);
  b.WriteU64(22);
  c.WriteU64(3);
  transport->Ship(0, 2, &a);
  transport->Ship(1, 2, &b);
  transport->Ship(0, 1, &c);
  ASSERT_EQ(transport->NumFrames(2), 2u);
  ASSERT_EQ(transport->NumFrames(1), 1u);
  Reader ra(transport->Frame(2, 0));
  EXPECT_EQ(ra.ReadU64(), 1u);
  EXPECT_TRUE(ra.AtEnd());
  Reader rb(transport->Frame(2, 1));
  EXPECT_EQ(rb.ReadU64(), 2u);
  EXPECT_EQ(rb.ReadU64(), 22u);
  EXPECT_TRUE(rb.AtEnd());
  Reader rc(transport->Frame(1, 0));
  EXPECT_EQ(rc.ReadU64(), 3u);
  transport->Consume(2);
  transport->Consume(1);
}

// Route end to end: both transports must produce identical sealed inboxes
// and identical byte metrics from the same wire rows.
TEST(TransportTest, RouteIdenticalAcrossBackends) {
  const std::vector<int> assignment = {0, 1, 0, 1};
  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kLoopbackWire}) {
    DeliveryPlane<int64_t> plane(
        WorkerMap(assignment.size(), 2, Placement::Explicit(&assignment),
                  [](uint32_t u) { return static_cast<VertexId>(u); }));
    SuperstepRuntime rt(2, false, RuntimeOptions{},
                        plane.map().worker_sizes());
    plane.Bind(&rt);
    auto transport = MakeTransport(kind, 2);

    // Two source rows (one per worker), messages as (unit, value) pairs.
    std::vector<std::vector<Writer>> wire(2);
    for (auto& row : wire) row.resize(2);
    wire[0][1].WriteU64(1);
    wire[0][1].WriteI64(100);
    wire[0][0].WriteU64(2);
    wire[0][0].WriteI64(200);
    wire[1][1].WriteU64(1);
    wire[1][1].WriteI64(101);
    const std::vector<int> row_src = {0, 1};

    SuperstepMetrics ss;
    ss.worker_in_bytes.assign(2, 0);
    const bool any = plane.Route(
        *transport, std::span<std::vector<Writer>>(wire), row_src, &ss,
        [&plane](Reader& reader, int dst) {
          const uint32_t unit = static_cast<uint32_t>(reader.ReadU64());
          plane.Deliver(dst, unit, reader.ReadI64());
        });
    EXPECT_TRUE(any) << TransportKindName(kind);
    ASSERT_EQ(plane.InboxCountFor(1, 1), 2u) << TransportKindName(kind);
    // Row order == worker order: worker 0's message precedes worker 1's.
    EXPECT_EQ(plane.MessagesFor(1, 1)[0], 100);
    EXPECT_EQ(plane.MessagesFor(1, 1)[1], 101);
    ASSERT_EQ(plane.InboxCountFor(0, 2), 1u);
    EXPECT_EQ(plane.MessagesFor(0, 2)[0], 200);
    EXPECT_GT(ss.message_bytes, 0);
    // Cross-worker bytes: only wire[0][1] and nothing into worker 0.
    EXPECT_EQ(ss.worker_in_bytes[0], 0);
    EXPECT_GT(ss.worker_in_bytes[1], 0);
    // Rows were consumed (cleared) by the transport.
    for (auto& rows : wire) {
      for (Writer& row : rows) EXPECT_EQ(row.size(), 0u);
    }
  }
}

// An empty Route (quiet superstep) must report no messages over both
// backends — the engines' halt signal.
TEST(TransportTest, RouteEmptyIsQuiet) {
  const std::vector<int> assignment = {0, 1};
  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kLoopbackWire}) {
    DeliveryPlane<int64_t> plane(
        WorkerMap(assignment.size(), 2, Placement::Explicit(&assignment),
                  [](uint32_t u) { return static_cast<VertexId>(u); }));
    SuperstepRuntime rt(2, false, RuntimeOptions{},
                        plane.map().worker_sizes());
    plane.Bind(&rt);
    auto transport = MakeTransport(kind, 2);
    std::vector<std::vector<Writer>> wire(2);
    for (auto& row : wire) row.resize(2);
    const std::vector<int> row_src = {0, 1};
    SuperstepMetrics ss;
    ss.worker_in_bytes.assign(2, 0);
    const bool any =
        plane.Route(*transport, std::span<std::vector<Writer>>(wire), row_src,
                    &ss, [](Reader&, int) { FAIL() << "decode on empty"; });
    EXPECT_FALSE(any) << TransportKindName(kind);
    EXPECT_EQ(ss.message_bytes, 0);
  }
}

}  // namespace
}  // namespace graphite
