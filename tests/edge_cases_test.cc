// Edge-case battery: degenerate graphs (empty, single vertex, isolated
// vertices, missing sources), extreme intervals (negative times, kTimeMin
// bounds), and engine behavior at the boundaries.
#include <gtest/gtest.h>

#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "algorithms/oracle.h"
#include "algorithms/runners.h"
#include "icm/icm_engine.h"
#include "icm/warp.h"
#include "io/text_format.h"
#include "testutil.h"

namespace graphite {
namespace {

TemporalGraph SingleVertexGraph() {
  TemporalGraphBuilder b;
  b.AddVertex(7, Interval(0, 5));
  BuilderOptions options;
  options.horizon = 5;
  return std::move(b.Build()).value();
}

TEST(EdgeCaseTest, EmptyGraphRunsAllIcmAlgorithms) {
  TemporalGraphBuilder b;
  BuilderOptions options;
  options.horizon = 4;
  const TemporalGraph g = std::move(b.Build()).value();
  IcmSssp sssp(g, 0);
  auto r = IcmEngine<IcmSssp>::Run(g, sssp);
  EXPECT_EQ(r.metrics.compute_calls, 0);
  EXPECT_EQ(r.metrics.messages, 0);
  EXPECT_EQ(r.metrics.supersteps, 1);  // One empty superstep, then halt.
}

TEST(EdgeCaseTest, SingleVertexGraph) {
  const TemporalGraph g = SingleVertexGraph();
  IcmSssp sssp(g, 7);
  auto r = IcmEngine<IcmSssp>::Run(g, sssp);
  EXPECT_EQ(r.states[0].entries().size(), 1u);
  EXPECT_EQ(r.states[0].entries()[0].value, 0);  // Source, no edges.
  EXPECT_EQ(r.metrics.messages, 0);
}

TEST(EdgeCaseTest, MissingSourceHaltsImmediately) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmSssp sssp(g, /*source=*/999);  // No such vertex.
  auto r = IcmEngine<IcmSssp>::Run(g, sssp);
  EXPECT_EQ(r.metrics.messages, 0);
  EXPECT_EQ(r.active_compute_calls, 0);
  for (const auto& states : r.states) {
    for (const auto& e : states.entries()) EXPECT_EQ(e.value, kInfCost);
  }
}

TEST(EdgeCaseTest, IsolatedVerticesStayUnreached) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 8));
  b.AddVertex(1, Interval(0, 8));
  b.AddVertex(2, Interval(0, 8));  // Isolated.
  b.AddEdge(1, 0, 1, Interval(0, 8));
  const TemporalGraph g = std::move(b.Build()).value();
  IcmReach reach(g, 0);
  auto r = IcmEngine<IcmReach>::Run(g, reach);
  EXPECT_EQ(r.states[*g.IndexOf(1)].Get(2).value_or(0), 1);
  EXPECT_EQ(r.states[*g.IndexOf(2)].Get(2).value_or(0), 0);
}

TEST(EdgeCaseTest, NegativeTimePointsSupported) {
  // Nothing in the model requires non-negative times except the default
  // horizon window; Allen algebra and warp work on the full axis.
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(-10, 10));
  b.AddVertex(1, Interval(-10, 10));
  b.AddEdge(1, 0, 1, Interval(-5, -2));
  BuilderOptions options;
  options.horizon = 10;
  const TemporalGraph g = std::move(b.Build()).value();
  EXPECT_EQ(g.edge(0).interval, Interval(-5, -2));
  // Text round-trip preserves negative times.
  auto round = ReadTextGraph(WriteTextGraph(g));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->edge(0).interval, Interval(-5, -2));
}

TEST(EdgeCaseTest, WarpWithKTimeMinMessages) {
  // LD-style messages open at the left: [-inf, t).
  std::vector<IntervalMap<int64_t>::Entry> outer = {{{0, 20}, 1}};
  std::vector<TemporalItem<int64_t>> inner = {{{kTimeMin, 7}, 100},
                                              {{kTimeMin, 12}, 200}};
  auto warp = TimeWarp<int64_t, int64_t>(outer, inner);
  ASSERT_EQ(warp.size(), 2u);
  EXPECT_EQ(warp[0].interval, Interval(0, 7));
  EXPECT_EQ(warp[0].inner_indices.size(), 2u);
  EXPECT_EQ(warp[1].interval, Interval(7, 12));
  EXPECT_EQ(warp[1].inner_indices, (std::vector<uint32_t>{1}));
}

TEST(EdgeCaseTest, SelfLoopCountsInDegreesButNotTriangles) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 4));
  b.AddVertex(1, Interval(0, 4));
  b.AddEdge(1, 0, 0, Interval(0, 4));  // Self loop.
  b.AddEdge(2, 0, 1, Interval(0, 4));
  const TemporalGraph g = std::move(b.Build()).value();
  const auto profiles = OutDegreeProfiles(g);
  EXPECT_EQ(profiles[*g.IndexOf(0)].Get(1), 2);
  IcmTriangleCount tc;
  auto r = IcmEngine<IcmTriangleCount>::Run(g, tc, TriangleOptions());
  const auto counts = TriangleCounts(r.states);
  EXPECT_EQ(ResultAt<int64_t>(counts, *g.IndexOf(0), 1, 0), 0);
}

TEST(EdgeCaseTest, ZeroCostEdgesAndZeroTravelCostProperties) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 6));
  b.AddVertex(1, Interval(0, 6));
  b.AddEdge(1, 0, 1, Interval(0, 5));
  b.SetEdgeProperty(1, kTravelCostLabel, Interval(0, 5), 0);  // Free hop.
  b.SetEdgeProperty(1, kTravelTimeLabel, Interval(0, 5), 1);
  const TemporalGraph g = std::move(b.Build()).value();
  IcmSssp sssp(g, 0);
  auto r = IcmEngine<IcmSssp>::Run(g, sssp);
  EXPECT_EQ(r.states[*g.IndexOf(1)].Get(1).value_or(kInfCost), 0);
}

TEST(EdgeCaseTest, LongTravelTimesSkipDeadSinks) {
  // Arrival beyond the sink's lifespan must not register anywhere.
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 10));
  b.AddVertex(1, Interval(0, 4));
  b.AddEdge(1, 0, 1, Interval(0, 4));
  b.SetEdgeProperty(1, kTravelTimeLabel, Interval(0, 4), 7);
  const TemporalGraph g = std::move(b.Build()).value();
  IcmEat eat(g, 0);
  auto r = IcmEngine<IcmEat>::Run(g, eat);
  for (const auto& e : r.states[*g.IndexOf(1)].entries()) {
    EXPECT_EQ(e.value, kInfCost);
  }
}

TEST(EdgeCaseTest, DeadlineZeroLdMatchesOracle) {
  Workload w(testutil::MakeRandomGraph(321));
  RunConfig config;
  config.deadline = 0;  // Nothing can arrive by time 0.
  const auto ld = RunLdOn(w, Platform::kIcm, config);
  const auto oracle =
      OracleLatestDeparture(w.graph(),
                            w.graph().vertex_id(static_cast<VertexIdx>(
                                w.graph().num_vertices() - 1)),
                            0);
  EXPECT_EQ(ld, oracle);
}

TEST(EdgeCaseTest, PageRankOnEdgelessGraphIsBaseline) {
  const TemporalGraph g = SingleVertexGraph();
  IcmPageRank pr(g);
  auto r = IcmEngine<IcmPageRank>::Run(g, pr, PageRankOptions());
  // No in-shares ever: rank settles at 0.15 after the first iteration.
  EXPECT_NEAR(r.states[0].Get(2).value_or(-1), 0.15, 1e-12);
}

TEST(EdgeCaseTest, MultigraphParallelEdgesBothTraversed) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 6));
  b.AddVertex(1, Interval(0, 6));
  b.AddEdge(1, 0, 1, Interval(0, 5));
  b.AddEdge(2, 0, 1, Interval(0, 5));
  b.SetEdgeProperty(1, kTravelCostLabel, Interval(0, 5), 9);
  b.SetEdgeProperty(2, kTravelCostLabel, Interval(0, 5), 2);  // Cheaper.
  const TemporalGraph g = std::move(b.Build()).value();
  IcmSssp sssp(g, 0);
  auto r = IcmEngine<IcmSssp>::Run(g, sssp);
  EXPECT_EQ(r.states[*g.IndexOf(1)].Get(2).value_or(kInfCost), 2);
}

}  // namespace
}  // namespace graphite
