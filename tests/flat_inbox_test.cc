// Unit tests for the flat per-worker inbox (engine/flat_inbox.h): staging
// in wire-arrival order, Seal grouping by mailed-unit (first-arrival)
// order with a stable scatter, zero-copy span views, stale-offset safety
// for unmailed units, and the superstep barrier lifecycle against the
// backing arena. Part of the sanitizer matrix (label `asan`).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/flat_inbox.h"
#include "util/arena.h"

namespace graphite {
namespace {

struct Msg {
  uint32_t src;
  uint32_t payload;
};

TEST(FlatInboxTest, SealGroupsByMailedOrderAndKeepsArrivalOrder) {
  Arena arena;
  InboxSpanTable table(6);
  FlatInbox<Msg> inbox;
  inbox.Init(&arena, &table);

  // Wire arrival interleaves three units; unit 4 is seen first, then 1,
  // then 3. The mailed list records first-arrival order.
  inbox.Deliver(4, {10, 100});
  inbox.Deliver(1, {11, 200});
  inbox.Deliver(4, {12, 101});
  inbox.Deliver(3, {13, 300});
  inbox.Deliver(1, {14, 201});
  inbox.Deliver(4, {15, 102});
  const std::vector<uint32_t> mailed = {4, 1, 3};
  inbox.Seal(mailed);

  EXPECT_EQ(inbox.total_items(), 6u);
  const auto m4 = inbox.MessagesFor(4);
  ASSERT_EQ(m4.size(), 3u);
  EXPECT_EQ(m4[0].payload, 100u);
  EXPECT_EQ(m4[1].payload, 101u);
  EXPECT_EQ(m4[2].payload, 102u);
  const auto m1 = inbox.MessagesFor(1);
  ASSERT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1[0].payload, 200u);
  EXPECT_EQ(m1[1].payload, 201u);
  const auto m3 = inbox.MessagesFor(3);
  ASSERT_EQ(m3.size(), 1u);
  EXPECT_EQ(m3[0].payload, 300u);

  // Units are laid out in mailed order: 4's block, then 1's, then 3's —
  // this is what makes the checkpoint encode and delivery deterministic.
  EXPECT_EQ(table.offset[4], 0u);
  EXPECT_EQ(table.offset[1], 3u);
  EXPECT_EQ(table.offset[3], 5u);
}

TEST(FlatInboxTest, UnmailedUnitGetsEmptySpan) {
  Arena arena;
  InboxSpanTable table(4);
  FlatInbox<Msg> inbox;
  inbox.Init(&arena, &table);
  inbox.Deliver(2, {1, 7});
  const std::vector<uint32_t> mailed = {2};
  inbox.Seal(mailed);
  EXPECT_TRUE(inbox.MessagesFor(0).empty());
  EXPECT_TRUE(inbox.MessagesFor(3).empty());
  EXPECT_EQ(inbox.CountFor(2), 1u);
  EXPECT_EQ(inbox.CountFor(0), 0u);
}

TEST(FlatInboxTest, StaleOffsetsAreNeverReadAfterBarrier) {
  Arena arena;
  InboxSpanTable table(3);
  FlatInbox<Msg> inbox;
  inbox.Init(&arena, &table);

  // Superstep 1: unit 0 gets mail at offset 0, unit 2 at offset 2.
  inbox.Deliver(0, {1, 10});
  inbox.Deliver(0, {1, 11});
  inbox.Deliver(2, {1, 20});
  std::vector<uint32_t> mailed = {0, 2};
  inbox.Seal(mailed);
  ASSERT_EQ(inbox.MessagesFor(2).size(), 1u);

  inbox.ResetAtBarrier(mailed);
  arena.Reset();

  // Superstep 2: only unit 2 is mailed. Unit 0's table row still holds a
  // stale offset from superstep 1, but its count is 0, so MessagesFor
  // must return empty without touching the offset.
  inbox.Deliver(2, {1, 21});
  mailed = {2};
  inbox.Seal(mailed);
  EXPECT_TRUE(inbox.MessagesFor(0).empty());
  const auto m2 = inbox.MessagesFor(2);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2[0].payload, 21u);
}

TEST(FlatInboxTest, SteadyStateReusesArenaAcrossSupersteps) {
  Arena arena;
  InboxSpanTable table(16);
  FlatInbox<Msg> inbox;
  inbox.Init(&arena, &table);

  size_t warm_capacity = 0;
  for (int superstep = 0; superstep < 20; ++superstep) {
    std::vector<uint32_t> mailed;
    for (uint32_t u = 0; u < 16; ++u) {
      if ((u + superstep) % 3 == 0) continue;  // Some units idle.
      mailed.push_back(u);
      for (uint32_t k = 0; k <= u % 4; ++k) {
        inbox.Deliver(u, {u, superstep * 1000u + u * 10u + k});
      }
    }
    inbox.Seal(mailed);
    for (const uint32_t u : mailed) {
      const auto msgs = inbox.MessagesFor(u);
      ASSERT_EQ(msgs.size(), u % 4 + 1u);
      for (uint32_t k = 0; k < msgs.size(); ++k) {
        EXPECT_EQ(msgs[k].payload, superstep * 1000u + u * 10u + k);
      }
    }
    inbox.ResetAtBarrier(mailed);
    arena.Reset();
    if (superstep == 4) warm_capacity = arena.capacity();
    if (superstep > 4) {
      // Once warm, the identical-shape workload never grows the arena:
      // the zero-allocation steady state of the ISSUE's tentpole.
      EXPECT_EQ(arena.capacity(), warm_capacity) << "superstep " << superstep;
    }
  }
}

TEST(FlatInboxTest, HeapBackedItemsFollowTheSameProtocol) {
  // Non-trivially-copyable message type: SuperstepVec falls back to
  // RecycledVec storage, but the staging/Seal/span protocol is identical.
  Arena arena;
  InboxSpanTable table(3);
  FlatInbox<std::string> inbox;
  inbox.Init(&arena, &table);
  inbox.Deliver(1, "a long enough string to defeat SSO optimization 1");
  inbox.Deliver(0, "b");
  inbox.Deliver(1, "c long enough string to defeat SSO optimization 2");
  const std::vector<uint32_t> mailed = {1, 0};
  inbox.Seal(mailed);
  const auto m1 = inbox.MessagesFor(1);
  ASSERT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1[0][0], 'a');
  EXPECT_EQ(m1[1][0], 'c');
  EXPECT_EQ(inbox.MessagesFor(0)[0], "b");
  inbox.ResetAtBarrier(mailed);
  arena.Reset();
  EXPECT_TRUE(inbox.MessagesFor(1).empty());
}

}  // namespace
}  // namespace graphite
