// Tests for the dataset generators (validity, shape fidelity to the real
// datasets they model) and the text IO round-trip.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "io/text_format.h"
#include "testutil.h"

namespace graphite {
namespace {

// Rebuilds a generated graph through the validating builder: the
// generators skip validation for speed, so this proves they only emit
// sound graphs (Constraints 1-3).
void ExpectValid(const TemporalGraph& g) {
  TemporalGraphBuilder b;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    b.AddVertex(g.vertex_id(v), g.vertex_interval(v));
  }
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    const StoredEdge& e = g.edge(pos);
    b.AddEdge(e.eid, g.vertex_id(e.src), g.vertex_id(e.dst), e.interval);
    for (const auto& [label, map] : g.EdgeProperties(pos)) {
      for (const auto& entry : map.entries()) {
        b.SetEdgeProperty(e.eid, g.LabelName(label), entry.interval,
                          entry.value);
      }
    }
  }
  BuilderOptions options;
  options.validate = true;
  auto result = b.Build(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST(GeneratorTest, AllCatalogGraphsAreValid) {
  for (const DatasetSpec& spec : DatasetCatalog(/*scale=*/0.05)) {
    SCOPED_TRACE(spec.name);
    const TemporalGraph g = Generate(spec.options);
    EXPECT_GT(g.num_vertices(), 0u);
    EXPECT_GT(g.num_edges(), 0u);
    ExpectValid(g);
  }
}

TEST(GeneratorTest, DeterministicFromSeed) {
  GenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 800;
  const TemporalGraph a = Generate(opt);
  const TemporalGraph b = Generate(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgePos pos = 0; pos < a.num_edges(); ++pos) {
    EXPECT_EQ(a.edge(pos).src, b.edge(pos).src);
    EXPECT_EQ(a.edge(pos).interval, b.edge(pos).interval);
  }
}

TEST(GeneratorTest, GPlusShapeIsUnitLifespan) {
  const DatasetSpec spec = DatasetByName("gplus", 0.05);
  const TemporalGraph g = Generate(spec.options);
  const GraphStats s = ComputeGraphStats(g, /*include_transformed=*/false);
  EXPECT_EQ(s.num_snapshots, 4);
  EXPECT_DOUBLE_EQ(s.avg_edge_lifespan, 1.0);
}

TEST(GeneratorTest, RedditShapeIsUnitHeavyMix) {
  const DatasetSpec spec = DatasetByName("reddit", 0.05);
  const TemporalGraph g = Generate(spec.options);
  size_t unit = 0;
  for (EdgePos pos = 0; pos < g.num_edges(); ++pos) {
    if (g.edge(pos).interval.IsUnit()) ++unit;
  }
  EXPECT_GT(static_cast<double>(unit) / static_cast<double>(g.num_edges()),
            0.85);
}

TEST(GeneratorTest, UsrnShapeIsStaticTopology) {
  const DatasetSpec spec = DatasetByName("usrn", 0.05);
  const TemporalGraph g = Generate(spec.options);
  const GraphStats s = ComputeGraphStats(g, /*include_transformed=*/false);
  // Every edge spans the whole horizon; properties churn within it.
  EXPECT_DOUBLE_EQ(s.avg_edge_lifespan,
                   static_cast<double>(spec.options.snapshots));
  EXPECT_LT(s.avg_prop_lifespan, s.avg_edge_lifespan);
  EXPECT_EQ(s.largest_snapshot_e, g.num_edges());
}

TEST(GeneratorTest, TwitterShapeHasLongLifespans) {
  const DatasetSpec spec = DatasetByName("twitter", 0.05);
  const TemporalGraph g = Generate(spec.options);
  const GraphStats s = ComputeGraphStats(g, /*include_transformed=*/false);
  // Edge lifespans approach the graph lifetime (paper: 28.4 of 30).
  EXPECT_GT(s.avg_edge_lifespan,
            0.6 * static_cast<double>(spec.options.snapshots));
}

TEST(GeneratorTest, PowerLawHasSkewedDegrees) {
  GenOptions opt;
  opt.num_vertices = 2000;
  opt.num_edges = 10000;
  const TemporalGraph g = Generate(opt);
  size_t max_deg = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutEdges(v).size());
  }
  // A hub should far exceed the mean degree of 5.
  EXPECT_GT(max_deg, 50u);
}

TEST(GeneratorTest, WeakScalingSizesScaleLinearly) {
  const GenOptions one = WeakScalingOptions(1, 0.05);
  const GenOptions four = WeakScalingOptions(4, 0.05);
  EXPECT_EQ(four.num_vertices, 4 * one.num_vertices);
  EXPECT_EQ(four.num_edges, 4 * one.num_edges);
  const TemporalGraph g = Generate(one);
  ExpectValid(g);
}

TEST(TextFormatTest, RoundTripTransitGraph) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const std::string text = WriteTextGraph(g);
  auto parsed = ReadTextGraph(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vertices(), g.num_vertices());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
  EXPECT_EQ(parsed->horizon(), g.horizon());
  // Round-trip again: text must be identical (canonical form).
  EXPECT_EQ(WriteTextGraph(*parsed), text);
}

TEST(TextFormatTest, RoundTripRandomGraph) {
  const TemporalGraph g = testutil::MakeRandomGraph(77);
  auto parsed = ReadTextGraph(WriteTextGraph(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WriteTextGraph(*parsed), WriteTextGraph(g));
}

TEST(TextFormatTest, RejectsMalformedRecords) {
  EXPECT_FALSE(ReadTextGraph("V 1").ok());
  EXPECT_FALSE(ReadTextGraph("X 1 2 3").ok());
  EXPECT_FALSE(ReadTextGraph("V 1 5 2").ok());   // start >= end
  EXPECT_FALSE(ReadTextGraph("E 1 1 2 0 5").ok());  // missing vertices
  EXPECT_TRUE(ReadTextGraph("# only a comment\nV 1 0 5").ok());
}

TEST(TextFormatTest, FileRoundTrip) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const std::string path = ::testing::TempDir() + "/graph.txt";
  ASSERT_TRUE(WriteTextGraphFile(g, path).ok());
  auto parsed = ReadTextGraphFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), g.num_edges());
}

}  // namespace
}  // namespace graphite
