// Unit tests for the GoFFish-TS engine: outer snapshot loop, temporal
// message routing (forward and reverse), inner superstep loop, and the
// per-(vertex, time) result recording.
#include "baselines/goffish.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace graphite {
namespace {

// Relays a token one snapshot into the future from vertex id 0 at t=0:
// value = the time at which the token arrived.
struct RelayProgram {
  using Value = int64_t;
  using Message = int64_t;

  Value Init(VertexIdx) const { return -1; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == 0 && t == 0;
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    (void)view;
    if (val == -1) val = ctx.time();
    for (const Message& m : msgs) val = std::max(val, m);
    // Pass to self in the next snapshot.
    ctx.SendTemporal(v, ctx.time() + 1, ctx.time() + 1);
  }
};

TemporalGraph TinyGraph(TimePoint horizon) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, horizon));
  b.AddVertex(1, Interval(0, horizon));
  b.AddEdge(1, 0, 1, Interval(0, horizon));
  BuilderOptions options;
  options.horizon = horizon;
  return std::move(b.Build()).value();
}

TEST(GoffishEngineTest, TemporalSelfMessagesAdvanceTime) {
  const TemporalGraph g = TinyGraph(5);
  RelayProgram program;
  auto out = RunGoffish(g, program, GoffishOptions{});
  // Vertex 0 is active at every snapshot; its recorded value at time t is
  // t (token forwarded each step).
  const VertexIdx v0 = *g.IndexOf(0);
  for (TimePoint t = 0; t < 5; ++t) {
    EXPECT_EQ(out.result[v0].Get(t).value_or(-100), t) << t;
  }
  // Vertex 1 never receives anything: value stays -1 at every snapshot.
  EXPECT_EQ(out.result[*g.IndexOf(1)].Get(4).value_or(-100), -1);
  // One compute per active (vertex, snapshot): vertex 0 five times.
  EXPECT_EQ(out.metrics.compute_calls, 5);
  // Messages addressed beyond the horizon are counted but undeliverable.
  EXPECT_EQ(out.metrics.messages, 5);
}

// Reverse-time processing: a token starting at the LAST snapshot flows
// toward t=0.
struct ReverseRelayProgram {
  using Value = int64_t;
  using Message = int64_t;
  TimePoint horizon;

  Value Init(VertexIdx) const { return -1; }

  bool InitialActive(VertexIdx v, TimePoint t, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == 0 && t == horizon - 1;
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message>, const SnapshotView&) {
    if (val == -1) val = ctx.time();
    ctx.SendTemporal(v, ctx.time() - 1, ctx.time() - 1);
  }
};

TEST(GoffishEngineTest, ReverseTimeProcessesSnapshotsBackward) {
  const TemporalGraph g = TinyGraph(5);
  ReverseRelayProgram program{5};
  GoffishOptions options;
  options.reverse_time = true;
  auto out = RunGoffish(g, program, options);
  const VertexIdx v0 = *g.IndexOf(0);
  // Snapshots are processed t=4 down to 0: the value pinned at first
  // activation (t=4) is already visible at every EARLIER snapshot's
  // recording — impossible under forward processing.
  for (TimePoint t = 0; t < 5; ++t) {
    EXPECT_EQ(out.result[v0].Get(t).value_or(-100), 4);
  }
  // The self-relay reactivated vertex 0 at every earlier snapshot.
  EXPECT_EQ(out.metrics.compute_calls, 5);
}

// Intra-snapshot messages run the inner VCM loop within one snapshot.
struct IntraProgram {
  using Value = int64_t;
  using Message = int64_t;

  Value Init(VertexIdx) const { return 0; }

  bool InitialActive(VertexIdx v, TimePoint, const SnapshotView& view) const {
    return view.graph().vertex_id(v) == 0;
  }

  void Compute(GofContext<Message>& ctx, VertexIdx v, Value& val,
               std::span<const Message> msgs, const SnapshotView& view) {
    if (ctx.superstep() == 0 && view.graph().vertex_id(v) == 0) {
      // Ping the neighbor within this snapshot.
      view.ForEachOutEdge(v, [&](const StoredEdge& e, EdgePos) {
        ctx.SendTemporal(e.dst, ctx.time(), 1);
      });
      return;
    }
    for (const Message& m : msgs) val += m;
  }
};

TEST(GoffishEngineTest, IntraSnapshotMessagesUseInnerSupersteps) {
  const TemporalGraph g = TinyGraph(3);
  IntraProgram program;
  auto out = RunGoffish(g, program, GoffishOptions{});
  // Vertex 1 accumulates one ping per snapshot.
  const VertexIdx v1 = *g.IndexOf(1);
  EXPECT_EQ(out.result[v1].Get(0).value_or(-1), 1);
  EXPECT_EQ(out.result[v1].Get(2).value_or(-1), 3);
  // Two inner supersteps per snapshot (ping, then apply + quiesce check).
  EXPECT_GE(out.metrics.supersteps, 6);
}

TEST(GoffishEngineTest, InactiveVerticesGetNoResultEntries) {
  TemporalGraphBuilder b;
  b.AddVertex(0, Interval(0, 6));
  b.AddVertex(1, Interval(2, 4));  // Alive only over [2, 4).
  b.AddEdge(1, 0, 1, Interval(2, 4));
  BuilderOptions options;
  options.horizon = 6;
  const TemporalGraph g = std::move(b.Build()).value();
  RelayProgram program;
  auto out = RunGoffish(g, program, GoffishOptions{});
  const VertexIdx v1 = *g.IndexOf(1);
  EXPECT_EQ(out.result[v1].Get(0), std::nullopt);
  EXPECT_EQ(out.result[v1].Get(5), std::nullopt);
}

}  // namespace
}  // namespace graphite
