// Tests for the temporal graph model: builder validation of the paper's
// Constraints 1-3 (§III), CSR adjacency, snapshots and Table-1 statistics.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/partitioner.h"
#include "graph/snapshot.h"
#include "testutil.h"

namespace graphite {
namespace {

TEST(BuilderTest, BuildsValidGraph) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 10));
  b.AddVertex(2, Interval(2, 8));
  b.AddEdge(100, 1, 2, Interval(3, 6));
  b.SetEdgeProperty(100, "w", Interval(3, 5), 7);
  b.SetVertexProperty(1, "color", Interval(0, 10), 1);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(g->horizon(), 10);
  auto v1 = g->IndexOf(1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(g->OutEdges(*v1).size(), 1u);
  EXPECT_EQ(g->OutEdges(*v1)[0].eid, 100);
  auto v2 = g->IndexOf(2);
  EXPECT_EQ(g->InEdgePositions(*v2).size(), 1u);
  auto label = g->LabelIdOf("w");
  ASSERT_TRUE(label.has_value());
  const auto* prop = g->EdgeProperty(0, *label);
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->Get(4), 7);
  EXPECT_EQ(prop->Get(5), std::nullopt);
}

TEST(BuilderTest, Constraint1DuplicateVertex) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 5));
  b.AddVertex(1, Interval(5, 9));  // Same vid reappearing: forbidden.
  auto g = b.Build();
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kConstraintViolation);
}

TEST(BuilderTest, Constraint1DuplicateEdge) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 9));
  b.AddVertex(2, Interval(0, 9));
  b.AddEdge(7, 1, 2, Interval(0, 3));
  b.AddEdge(7, 1, 2, Interval(4, 6));
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, Constraint2EdgeOutsideEndpointLifespan) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 5));
  b.AddVertex(2, Interval(0, 9));
  b.AddEdge(7, 1, 2, Interval(3, 8));  // Ends after vertex 1 dies.
  auto g = b.Build();
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kConstraintViolation);
}

TEST(BuilderTest, Constraint2MissingEndpoint) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 5));
  b.AddEdge(7, 1, 99, Interval(1, 3));
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, Constraint3PropertyOutsideLifespan) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(2, 5));
  b.SetVertexProperty(1, "p", Interval(0, 4), 1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, Def1OverlappingPropertyValues) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 10));
  b.SetVertexProperty(1, "p", Interval(0, 5), 1);
  b.SetVertexProperty(1, "p", Interval(3, 8), 2);  // Overlaps [3,5).
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, DistinctLabelsMayOverlap) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 10));
  b.SetVertexProperty(1, "p", Interval(0, 5), 1);
  b.SetVertexProperty(1, "q", Interval(3, 8), 2);
  EXPECT_TRUE(b.Build().ok());
}

TEST(BuilderTest, InvalidIntervalRejected) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(5, 5));
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, HorizonDerivedFromEntities) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 7));
  b.AddVertex(2, Interval(0, kTimeMax));  // Open-ended ignored for horizon.
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->horizon(), 7);
}

TEST(BuilderTest, MultiGraphParallelEdges) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 9));
  b.AddVertex(2, Interval(0, 9));
  b.AddEdge(1, 1, 2, Interval(0, 4));
  b.AddEdge(2, 1, 2, Interval(2, 6));  // Parallel edge: allowed.
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutEdges(*g->IndexOf(1)).size(), 2u);
}

TEST(SnapshotTest, ActiveEntitiesAtTimePoint) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  SnapshotView s4(&g, 4);
  size_t nv = 0, ne = 0;
  s4.CountActive(&nv, &ne);
  EXPECT_EQ(nv, 6u);  // All vertices are perpetual.
  EXPECT_EQ(ne, 1u);  // Only A->B [3,6) is alive at 4.
  SnapshotView s1(&g, 1);
  s1.CountActive(&nv, &ne);
  EXPECT_EQ(ne, 2u);  // A->C [1,2) and D->F [1,2).
}

TEST(SnapshotTest, EdgePropertyAtTime) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  SnapshotView s(&g, 4);
  const auto cost = g.LabelIdOf("travel-cost");
  ASSERT_TRUE(cost.has_value());
  // Edge A->B is stored first for vertex A (eid 10 is its smallest).
  const VertexIdx a = *g.IndexOf(testutil::kA);
  bool found = false;
  s.ForEachOutEdge(a, [&](const StoredEdge& e, EdgePos pos) {
    EXPECT_EQ(e.eid, 10);
    EXPECT_EQ(s.EdgePropertyAt(pos, *cost), 4);  // [3,5) costs 4.
    found = true;
  });
  EXPECT_TRUE(found);
}

TEST(GraphStatsTest, TransitGraphStats) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_snapshots, 10);
  EXPECT_EQ(s.interval_v, 6u);
  EXPECT_EQ(s.interval_e, 6u);
  EXPECT_EQ(s.largest_snapshot_v, 6u);
  // Edges alive per t: t=1:2, t=2:1, t=3:2, t=4:1, t=5:2, t=8:1.
  EXPECT_EQ(s.largest_snapshot_e, 2u);
  EXPECT_EQ(s.multi_snapshot_e, 9u);  // Sum of clipped edge lifespans.
  EXPECT_EQ(s.multi_snapshot_v, 60u);
  EXPECT_DOUBLE_EQ(s.avg_edge_lifespan, 9.0 / 6.0);
  EXPECT_GT(s.transformed_v, 0u);
  EXPECT_GT(s.transformed_e, 0u);
}

TEST(PartitionerTest, DeterministicAndComplete) {
  HashPartitioner p(4);
  for (VertexId v = 0; v < 1000; ++v) {
    const int w = p.WorkerOf(v);
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
    EXPECT_EQ(w, p.WorkerOf(v));
  }
}

TEST(PartitionerTest, RoughBalance) {
  HashPartitioner p(8);
  std::vector<int> counts(8, 0);
  for (VertexId v = 0; v < 8000; ++v) ++counts[p.WorkerOf(v)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(ReverseGraphTest, EdgesSwappedPropertiesKept) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TemporalGraph r = ReverseGraph(g);
  EXPECT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  // Original A->B becomes B->A with the same cost profile.
  const VertexIdx b = *r.IndexOf(testutil::kB);
  bool found = false;
  for (size_t k = 0; k < r.OutEdges(b).size(); ++k) {
    const StoredEdge& e = r.OutEdges(b)[k];
    if (e.eid == 10) {
      EXPECT_EQ(r.vertex_id(e.dst), testutil::kA);
      EXPECT_EQ(e.interval, Interval(3, 6));
      const auto cost = r.LabelIdOf("travel-cost");
      const auto* map = r.EdgeProperty(r.OutEdgePos(b, k), *cost);
      ASSERT_NE(map, nullptr);
      EXPECT_EQ(map->Get(3), 4);
      EXPECT_EQ(map->Get(5), 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MakeUndirectedTest, DoublesEdges) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TemporalGraph u = MakeUndirected(g);
  EXPECT_EQ(u.num_edges(), 2 * g.num_edges());
}

TEST(OutDegreeProfilesTest, TransitGraph) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const auto profiles = OutDegreeProfiles(g);
  const VertexIdx a = *g.IndexOf(testutil::kA);
  // A's out-edges: [3,6), [1,2), [2,4): degree 1 on [1,3), 2 on [3,4),
  // 1 on [4,6).
  EXPECT_EQ(profiles[a].Get(0), std::nullopt);
  EXPECT_EQ(profiles[a].Get(1), 1);
  EXPECT_EQ(profiles[a].Get(3), 2);
  EXPECT_EQ(profiles[a].Get(4), 1);
  EXPECT_EQ(profiles[a].Get(6), std::nullopt);
}

}  // namespace
}  // namespace graphite
