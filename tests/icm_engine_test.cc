// End-to-end tests of the ICM engine on the paper's Fig. 1 transit
// network: reproduces the Fig. 2 superstep walk-through, the final SSSP
// fixpoint, and the intro's headline counts (7 interval-vertex visits and
// 6 edge traversals). Also checks that worker count, threading, combiner
// and suppression do not change results.
#include "icm/icm_engine.h"

#include <gtest/gtest.h>

#include "algorithms/icm_path.h"
#include "testutil.h"

namespace graphite {
namespace {

using testutil::kA;
using testutil::kB;
using testutil::kC;
using testutil::kD;
using testutil::kE;
using testutil::kF;

IcmResult<IcmSssp> RunSssp(const TemporalGraph& g, const IcmOptions& options) {
  IcmSssp program(g, kA);
  return IcmEngine<IcmSssp>::Run(g, program, options);
}

TEST(IcmSsspTransitTest, FinalStatesMatchPaper) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  auto result = RunSssp(g, IcmOptions{});
  auto& states = result.states;
  auto idx = [&](VertexId v) { return *g.IndexOf(v); };

  // A: source, cost 0 for its whole lifespan.
  ASSERT_EQ(states[idx(kA)].size(), 1u);
  EXPECT_EQ(states[idx(kA)].entries()[0].value, 0);

  // B: unreachable before 4; cost 4 during [4,6); cost 3 from 6 on.
  const auto& b = states[idx(kB)];
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.entries()[0].interval, Interval(0, 4));
  EXPECT_EQ(b.entries()[0].value, kInfCost);
  EXPECT_EQ(b.entries()[1].interval, Interval(4, 6));
  EXPECT_EQ(b.entries()[1].value, 4);
  EXPECT_EQ(b.entries()[2].interval, Interval(6, kTimeMax));
  EXPECT_EQ(b.entries()[2].value, 3);

  // C: one contiguous reachable interval, cost 3 (paper).
  const auto& c = states[idx(kC)];
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.entries()[1].interval, Interval(2, kTimeMax));
  EXPECT_EQ(c.entries()[1].value, 3);

  // D: one contiguous reachable interval, cost 2 (paper).
  const auto& d = states[idx(kD)];
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.entries()[1].interval, Interval(3, kTimeMax));
  EXPECT_EQ(d.entries()[1].value, 2);

  // E: two reachable intervals with different lowest costs (paper §IV-B:
  // warp returns <[6,9), inf, {7}> and <[9,inf), inf, {5,7}>).
  const auto& e = states[idx(kE)];
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.entries()[0].interval, Interval(0, 6));
  EXPECT_EQ(e.entries()[0].value, kInfCost);
  EXPECT_EQ(e.entries()[1].interval, Interval(6, 9));
  EXPECT_EQ(e.entries()[1].value, 7);
  EXPECT_EQ(e.entries()[2].interval, Interval(9, kTimeMax));
  EXPECT_EQ(e.entries()[2].value, 5);

  // F: never reached.
  ASSERT_EQ(states[idx(kF)].size(), 1u);
  EXPECT_EQ(states[idx(kF)].entries()[0].value, kInfCost);
}

TEST(IcmSsspTransitTest, HeadlineCountsMatchIntro) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  auto result = RunSssp(g, IcmOptions{});
  // "...with just 7 interval vertex visits and 6 edge traversals" (§I).
  EXPECT_EQ(result.active_compute_calls, 7);
  EXPECT_EQ(result.metrics.scatter_calls, 6);
  EXPECT_EQ(result.metrics.messages, 6);
  // Superstep-0 Compute runs on every vertex (6) plus the active calls in
  // supersteps 1 (B twice, C, D) and 2 (E twice).
  EXPECT_EQ(result.metrics.compute_calls, 12);
  EXPECT_EQ(result.metrics.supersteps, 3);
}

TEST(IcmSsspTransitTest, InvariantToWorkersThreadsAndOptimizations) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const auto baseline = RunSssp(g, IcmOptions{});
  for (int workers : {1, 2, 3, 8}) {
    for (bool threads : {false, true}) {
      for (bool combiner : {false, true}) {
        for (bool suppression : {false, true}) {
          IcmOptions options;
          options.num_workers = workers;
          options.use_threads = threads;
          options.enable_combiner = combiner;
          options.enable_suppression = suppression;
          auto result = RunSssp(g, options);
          for (size_t v = 0; v < g.num_vertices(); ++v) {
            auto got = result.states[v];
            auto want = baseline.states[v];
            got.Coalesce();
            want.Coalesce();
            EXPECT_EQ(got.entries(), want.entries())
                << "v=" << v << " workers=" << workers
                << " threads=" << threads << " combiner=" << combiner
                << " suppression=" << suppression;
          }
          // Model-intrinsic counts must not depend on engine knobs
          // (workers/threads); combiner/suppression change call shape
          // but not message counts here (no unit messages in this graph).
          EXPECT_EQ(result.metrics.messages, baseline.metrics.messages);
          EXPECT_EQ(result.metrics.compute_calls,
                    baseline.metrics.compute_calls);
        }
      }
    }
  }
}

TEST(IcmSsspTransitTest, MakespanAndByteMetricsPopulated) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  auto result = RunSssp(g, IcmOptions{});
  EXPECT_GT(result.metrics.makespan_ns, 0);
  EXPECT_GT(result.metrics.message_bytes, 0);
  EXPECT_EQ(result.metrics.per_superstep.size(),
            static_cast<size_t>(result.metrics.supersteps));
  EXPECT_GT(result.metrics.SimulatedMakespanNs(), 0);
}

// EAT on the transit graph: B first reachable at 4, C at 2, D at 3, E at 6.
TEST(IcmEatTransitTest, EarliestArrivals) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmEat program(g, kA);
  auto result = IcmEngine<IcmEat>::Run(g, program);
  auto eat = [&](VertexId v) -> int64_t {
    int64_t best = kInfCost;
    for (const auto& entry : result.states[*g.IndexOf(v)].entries()) {
      best = std::min(best, entry.value);
    }
    return best;
  };
  EXPECT_EQ(eat(kA), 0);
  EXPECT_EQ(eat(kB), 4);
  EXPECT_EQ(eat(kC), 2);
  EXPECT_EQ(eat(kD), 3);
  EXPECT_EQ(eat(kE), 6);
  EXPECT_EQ(eat(kF), kInfCost);
}

// Reachability mirrors EAT's reachable set.
TEST(IcmReachTransitTest, ReachabilityIntervals) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmReach program(g, kA);
  auto result = IcmEngine<IcmReach>::Run(g, program);
  auto reached_from = [&](VertexId v) -> TimePoint {
    for (const auto& entry : result.states[*g.IndexOf(v)].entries()) {
      if (entry.value == 1) return entry.interval.start;
    }
    return -1;
  };
  EXPECT_EQ(reached_from(kA), 0);
  EXPECT_EQ(reached_from(kB), 4);
  EXPECT_EQ(reached_from(kC), 2);
  EXPECT_EQ(reached_from(kD), 3);
  EXPECT_EQ(reached_from(kE), 6);
  EXPECT_EQ(reached_from(kF), -1);
}

// TMST parents on the transit graph: B,C,D hang off A; E's earliest
// arrival (6) comes through C.
TEST(IcmTmstTransitTest, ParentPointersRebuildTree) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmTmst program(g, kA);
  auto result = IcmEngine<IcmTmst>::Run(g, program);
  auto best = [&](VertexId v) {
    std::pair<int64_t, int64_t> best_state = {kInfCost, -1};
    for (const auto& entry : result.states[*g.IndexOf(v)].entries()) {
      if (entry.value < best_state) best_state = entry.value;
    }
    return best_state;
  };
  EXPECT_EQ(best(kB), (std::pair<int64_t, int64_t>{4, kA}));
  EXPECT_EQ(best(kC), (std::pair<int64_t, int64_t>{2, kA}));
  EXPECT_EQ(best(kD), (std::pair<int64_t, int64_t>{3, kA}));
  EXPECT_EQ(best(kE), (std::pair<int64_t, int64_t>{6, kC}));
  EXPECT_EQ(best(kF).second, -1);
}

// LD to target E with deadline 10: B can leave as late as 8 (edge B->E at
// [8,9)), C as late as 5, A as late as 5 (A->B at 5 costs 3 arriving 6,
// then B->E at 8; or A->C at 1).
TEST(IcmLatestDepartureTransitTest, LatestDepartures) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TemporalGraph reversed = ReverseGraph(g);
  IcmLatestDeparture program(reversed, kE, /*deadline=*/10);
  auto result = IcmEngine<IcmLatestDeparture>::Run(reversed, program);
  auto latest = [&](VertexId v) -> int64_t {
    int64_t best = kNegInf;
    for (const auto& entry : result.states[*reversed.IndexOf(v)].entries()) {
      best = std::max(best, entry.value);
    }
    return best;
  };
  EXPECT_EQ(latest(kE), 10);
  EXPECT_EQ(latest(kB), 8);
  EXPECT_EQ(latest(kC), 5);
  EXPECT_EQ(latest(kA), 5);
  EXPECT_EQ(latest(kF), kNegInf);
}

// FAST from A: E is reachable with duration 4 (depart A at 5: A5->B6,
// wait, B8->E9) versus duration 5 via C (A1->C2, C5->E6).
TEST(IcmFastTransitTest, FastestDurations) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmFast program(g, kA);
  auto result = IcmEngine<IcmFast>::Run(g, program);
  auto fastest = [&](VertexId v) -> int64_t {
    int64_t best = kInfCost;
    for (const auto& entry : result.states[*g.IndexOf(v)].entries()) {
      if (entry.value == kNegInf) continue;
      best = std::min(best, entry.interval.start - entry.value);
    }
    return best;
  };
  EXPECT_EQ(fastest(kB), 1);  // Depart A at 3/4/5, arrive B next step.
  EXPECT_EQ(fastest(kC), 1);
  EXPECT_EQ(fastest(kD), 1);
  EXPECT_EQ(fastest(kE), 4);
  EXPECT_EQ(fastest(kF), kInfCost);
}

}  // namespace
}  // namespace graphite
