// Semantics-preservation tests for the §VI engine optimizations across
// randomized graphs and every ICM algorithm family: combiner on/off,
// suppression on/off with threshold sweeps, the property-use trait, and
// worker/thread counts must never change results ("The correctness is not
// affected").
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/icm_clustering.h"
#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "testutil.h"

namespace graphite {
namespace {

struct OptionCase {
  uint64_t seed;
  bool combiner;
  bool suppression;
  double threshold;
  int workers;
};

class IcmOptionsTest : public ::testing::TestWithParam<OptionCase> {
 protected:
  IcmOptions Options() const {
    IcmOptions o;
    o.enable_combiner = GetParam().combiner;
    o.enable_suppression = GetParam().suppression;
    o.suppression_threshold = GetParam().threshold;
    o.num_workers = GetParam().workers;
    return o;
  }
  // Unit-heavy graphs make suppression actually fire.
  TemporalGraph MakeGraph() const {
    testutil::RandomGraphOptions opt;
    opt.unit_lifespan_prob = 0.8;
    opt.full_lifespan_prob = 0.5;
    return testutil::MakeRandomGraph(GetParam().seed, opt);
  }
};

TEST_P(IcmOptionsTest, SsspInvariant) {
  const TemporalGraph g = MakeGraph();
  IcmSssp baseline_prog(g, 0), prog(g, 0);
  auto want = IcmEngine<IcmSssp>::Run(g, baseline_prog, IcmOptions{});
  auto got = IcmEngine<IcmSssp>::Run(g, prog, Options());
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    auto a = want.states[v];
    auto b = got.states[v];
    a.Coalesce();
    b.Coalesce();
    ASSERT_EQ(a.entries(), b.entries()) << "v=" << v;
  }
  // Optimizations never change what is sent, only how it is computed —
  // except suppression, which may alter call counts, never messages.
  EXPECT_EQ(want.metrics.messages, got.metrics.messages);
}

TEST_P(IcmOptionsTest, PageRankInvariant) {
  const TemporalGraph g = MakeGraph();
  IcmPageRank baseline_prog(g), prog(g);
  auto want =
      IcmEngine<IcmPageRank>::Run(g, baseline_prog, PageRankOptions());
  auto got = IcmEngine<IcmPageRank>::Run(g, prog, PageRankOptions(Options()));
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    for (TimePoint t = 0; t < g.horizon(); ++t) {
      const double a = want.states[v].Get(t).value_or(-1);
      const double b = got.states[v].Get(t).value_or(-1);
      ASSERT_NEAR(a, b, 1e-9 * std::max(1.0, std::fabs(a)))
          << "v=" << v << " t=" << t;
    }
  }
}

TEST_P(IcmOptionsTest, TriangleCountInvariant) {
  const TemporalGraph g = MakeGraph();
  IcmTriangleCount baseline_prog, prog;
  auto want =
      IcmEngine<IcmTriangleCount>::Run(g, baseline_prog, TriangleOptions());
  auto got =
      IcmEngine<IcmTriangleCount>::Run(g, prog, TriangleOptions(Options()));
  EXPECT_EQ(TriangleCounts(want.states), TriangleCounts(got.states));
}

TEST_P(IcmOptionsTest, LatestDepartureInvariant) {
  const TemporalGraph g = MakeGraph();
  const TemporalGraph reversed = ReverseGraph(g);
  IcmLatestDeparture baseline_prog(reversed, 3, g.horizon());
  IcmLatestDeparture prog(reversed, 3, g.horizon());
  auto want =
      IcmEngine<IcmLatestDeparture>::Run(reversed, baseline_prog, IcmOptions{});
  auto got = IcmEngine<IcmLatestDeparture>::Run(reversed, prog, Options());
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    int64_t wa = kNegInf, ga = kNegInf;
    for (const auto& e : want.states[v].entries()) wa = std::max(wa, e.value);
    for (const auto& e : got.states[v].entries()) ga = std::max(ga, e.value);
    ASSERT_EQ(wa, ga) << "v=" << v;
  }
}

std::vector<OptionCase> MakeCases() {
  std::vector<OptionCase> cases;
  uint64_t seed = 9000;
  for (bool combiner : {false, true}) {
    for (double threshold : {0.0, 0.7, 2.0}) {  // 2.0 ~ suppression off.
      for (int workers : {1, 4}) {
        cases.push_back({seed++, combiner, threshold <= 1.0, threshold,
                         workers});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IcmOptionsTest,
                         ::testing::ValuesIn(MakeCases()));

// Suppression must actually engage on unit-message workloads (the
// counter is observable), and threshold 0 suppresses more than 0.9.
TEST(SuppressionEngagementTest, FiresOnUnitLifespanGraphs) {
  testutil::RandomGraphOptions opt;
  opt.unit_lifespan_prob = 1.0;
  opt.full_lifespan_prob = 0.0;
  opt.num_vertices = 40;
  opt.num_edges = 160;
  const TemporalGraph g = testutil::MakeRandomGraph(31337, opt);

  IcmOptions on;
  on.suppression_threshold = 0.0;
  IcmWcc prog_on;
  const TemporalGraph u = MakeUndirected(g);
  auto with = IcmEngine<IcmWcc>::Run(u, prog_on, on);
  EXPECT_GT(with.suppressed_vertices, 0);

  IcmOptions off;
  off.enable_suppression = false;
  IcmWcc prog_off;
  auto without = IcmEngine<IcmWcc>::Run(u, prog_off, off);
  EXPECT_EQ(without.suppressed_vertices, 0);
}

}  // namespace
}  // namespace graphite
