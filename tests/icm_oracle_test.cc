// Cross-validation of every ICM algorithm against an independent
// sequential oracle, per (vertex, time-point), on randomized temporal
// multi-graphs. Vertex lifespans are bounded by the horizon, so every
// feasible arrival lands inside the oracle's (v, t) grid and the
// comparison is exact.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/icm_clustering.h"
#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "algorithms/oracle.h"
#include "testutil.h"

namespace graphite {
namespace {

class IcmOracleTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    testutil::RandomGraphOptions opt;
    opt.full_lifespan_prob = 0.6;
    graph_ = testutil::MakeRandomGraph(GetParam(), opt);
    source_ = 0;  // Vertex id 0 always exists.
  }

  TemporalGraph graph_;
  VertexId source_;
};

TEST_P(IcmOracleTest, SsspMatchesProductSpaceDijkstra) {
  IcmSssp program(graph_, source_);
  auto result = IcmEngine<IcmSssp>::Run(graph_, program);
  const auto oracle = OracleSsspCosts(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const int64_t got =
          result.states[v].Get(t).value_or(kInfCost);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, ReachMatchesOracle) {
  IcmReach program(graph_, source_);
  auto result = IcmEngine<IcmReach>::Run(graph_, program);
  const auto oracle = OracleReach(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const uint8_t got = result.states[v].Get(t).value_or(0);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, EatMatchesOracle) {
  IcmEat program(graph_, source_);
  auto result = IcmEngine<IcmEat>::Run(graph_, program);
  const auto oracle = OracleEat(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    int64_t got = kInfCost;
    for (const auto& entry : result.states[v].entries()) {
      got = std::min(got, entry.value);
    }
    ASSERT_EQ(got, oracle[v]) << "v=" << v << " seed=" << GetParam();
  }
}

TEST_P(IcmOracleTest, TmstArrivalsMatchEatAndParentsAreConsistent) {
  IcmTmst program(graph_, source_);
  auto result = IcmEngine<IcmTmst>::Run(graph_, program);
  const auto eat = OracleEat(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    std::pair<int64_t, int64_t> best = {kInfCost, -1};
    for (const auto& entry : result.states[v].entries()) {
      if (entry.value < best) best = entry.value;
    }
    ASSERT_EQ(best.first == kInfCost ? kInfCost : best.first, eat[v])
        << "v=" << v << " seed=" << GetParam();
    if (best.first != kInfCost && graph_.vertex_id(v) != source_) {
      // The parent must itself be reachable no later than the child.
      auto p = graph_.IndexOf(best.second);
      ASSERT_TRUE(p.has_value());
      ASSERT_LE(eat[*p], best.first);
    }
  }
}

TEST_P(IcmOracleTest, LatestDepartureMatchesOracle) {
  const TemporalGraph reversed = ReverseGraph(graph_);
  const TimePoint deadline = graph_.horizon();
  // Pick the highest vertex id as target for variety.
  const VertexId target =
      graph_.vertex_id(static_cast<VertexIdx>(graph_.num_vertices() - 1));
  IcmLatestDeparture program(reversed, target, deadline);
  auto result = IcmEngine<IcmLatestDeparture>::Run(reversed, program);
  const auto oracle = OracleLatestDeparture(graph_, target, deadline);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    int64_t got = kNegInf;
    for (const auto& entry : result.states[v].entries()) {
      got = std::max(got, entry.value);
    }
    ASSERT_EQ(got, oracle[v]) << "v=" << v << " seed=" << GetParam();
  }
}

TEST_P(IcmOracleTest, FastestMatchesOracle) {
  IcmFast program(graph_, source_);
  auto result = IcmEngine<IcmFast>::Run(graph_, program);
  const auto oracle = OracleFastest(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    int64_t got = graph_.vertex_id(v) == source_ ? 0 : kInfCost;
    if (graph_.vertex_id(v) != source_) {
      for (const auto& entry : result.states[v].entries()) {
        if (entry.value == kNegInf) continue;
        got = std::min(got, entry.interval.start - entry.value);
      }
    }
    ASSERT_EQ(got, oracle[v]) << "v=" << v << " seed=" << GetParam();
  }
}

TEST_P(IcmOracleTest, BfsMatchesPerSnapshotBfs) {
  IcmBfs program(source_);
  auto result = IcmEngine<IcmBfs>::Run(graph_, program);
  const auto oracle = OracleBfs(graph_, source_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const int64_t got = result.states[v].Get(t).value_or(kInfCost);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, WccMatchesPerSnapshotUnionFind) {
  const TemporalGraph undirected = MakeUndirected(graph_);
  IcmWcc program;
  auto result = IcmEngine<IcmWcc>::Run(undirected, program);
  const auto oracle = OracleWcc(graph_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const int64_t got = result.states[v].Get(t).value_or(kInfCost);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, SccMatchesPerSnapshotTarjan) {
  const TemporalGraph reversed = ReverseGraph(graph_);
  auto run = RunIcmScc(graph_, reversed, IcmOptions{});
  const auto oracle = OracleScc(graph_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const int64_t got = run.components[v].Get(t).value_or(kInfCost);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
  EXPECT_GE(run.rounds, 1);
}

TEST_P(IcmOracleTest, PageRankMatchesPerSnapshotPowerIteration) {
  IcmPageRank program(graph_);
  auto result =
      IcmEngine<IcmPageRank>::Run(graph_, program, PageRankOptions());
  const auto oracle = OraclePageRank(graph_, IcmPageRank::kIterations);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      if (!graph_.vertex_interval(v).Contains(t)) continue;
      const double got = result.states[v].Get(t).value_or(-1.0);
      const double want = oracle[v][static_cast<size_t>(t)];
      ASSERT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, TriangleCountMatchesPerSnapshotEnumeration) {
  IcmTriangleCount program;
  auto result =
      IcmEngine<IcmTriangleCount>::Run(graph_, program, TriangleOptions());
  const auto counts = TriangleCounts(result.states);
  const auto oracle = OracleTriangles(graph_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      const int64_t got = ResultAt<int64_t>(counts, v, t, 0);
      ASSERT_EQ(got, oracle[v][static_cast<size_t>(t)])
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

TEST_P(IcmOracleTest, LccMatchesTrianglesOverDegree) {
  auto run = RunIcmLcc(graph_, IcmOptions{});
  const auto tri = OracleTriangles(graph_);
  const auto degrees = OutDegreeProfiles(graph_);
  for (VertexIdx v = 0; v < graph_.num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph_.horizon(); ++t) {
      if (!graph_.vertex_interval(v).Contains(t)) continue;
      const int64_t d = degrees[v].Get(t).value_or(0);
      const double want =
          (d >= 2 && tri[v][static_cast<size_t>(t)] > 0)
              ? static_cast<double>(tri[v][static_cast<size_t>(t)]) /
                    static_cast<double>(d * (d - 1))
              : 0.0;
      const double got = ResultAt<double>(run.lcc, v, t, 0.0);
      ASSERT_NEAR(got, want, 1e-12)
          << "v=" << v << " t=" << t << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcmOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace graphite
