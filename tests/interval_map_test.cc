// Unit + property tests for IntervalMap, the partitioned-vertex-state
// store with dynamic repartitioning (§IV-A1).
#include "temporal/interval_map.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace graphite {
namespace {

TEST(IntervalMapTest, SingleEntryConstruction) {
  IntervalMap<int> m(Interval(0, 10), 42);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.Get(0), 42);
  EXPECT_EQ(m.Get(9), 42);
  EXPECT_EQ(m.Get(10), std::nullopt);
  EXPECT_TRUE(m.CoversExactly(Interval(0, 10)));
}

TEST(IntervalMapTest, SetSplitsPrefix) {
  // The paper's repartition example: updating an initial sub-interval of a
  // partitioned state splits it in two.
  IntervalMap<int> m(Interval(0, 10), 5);
  m.Set(Interval(0, 4), 7);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.entries()[0].interval, Interval(0, 4));
  EXPECT_EQ(m.entries()[0].value, 7);
  EXPECT_EQ(m.entries()[1].interval, Interval(4, 10));
  EXPECT_EQ(m.entries()[1].value, 5);
  EXPECT_TRUE(m.CoversExactly(Interval(0, 10)));
}

TEST(IntervalMapTest, SetSplitsMiddle) {
  IntervalMap<int> m(Interval(0, 10), 5);
  m.Set(Interval(3, 6), 9);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.Get(2), 5);
  EXPECT_EQ(m.Get(3), 9);
  EXPECT_EQ(m.Get(5), 9);
  EXPECT_EQ(m.Get(6), 5);
  EXPECT_TRUE(m.CoversExactly(Interval(0, 10)));
}

TEST(IntervalMapTest, SetAcrossMultipleEntries) {
  IntervalMap<int> m(Interval(0, 12), 1);
  m.Set(Interval(0, 4), 2);
  m.Set(Interval(8, 12), 3);
  m.Set(Interval(2, 10), 4);  // Overwrites tails of all three regions.
  EXPECT_EQ(m.Get(0), 2);
  EXPECT_EQ(m.Get(1), 2);
  EXPECT_EQ(m.Get(2), 4);
  EXPECT_EQ(m.Get(9), 4);
  EXPECT_EQ(m.Get(10), 3);
  EXPECT_TRUE(m.CoversExactly(Interval(0, 12)));
  EXPECT_TRUE(m.IsWellFormed());
}

TEST(IntervalMapTest, SetIntoEmptyMapAndGaps) {
  IntervalMap<int> m;
  m.Set(Interval(5, 8), 1);
  m.Set(Interval(10, 12), 2);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Get(8), std::nullopt);  // gap allowed for properties
  EXPECT_EQ(m.Get(11), 2);
  EXPECT_FALSE(m.CoversExactly(Interval(5, 12)));
}

TEST(IntervalMapTest, SetOpenEndedInterval) {
  IntervalMap<int> m(Interval(0, kTimeMax), 0);
  m.Set(Interval(9, kTimeMax), 5);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Get(8), 0);
  EXPECT_EQ(m.Get(1'000'000'000), 5);
  EXPECT_TRUE(m.CoversExactly(Interval(0, kTimeMax)));
}

TEST(IntervalMapTest, EraseSplitsBoundaries) {
  IntervalMap<int> m(Interval(0, 10), 1);
  m.Erase(Interval(3, 6));
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Get(2), 1);
  EXPECT_EQ(m.Get(3), std::nullopt);
  EXPECT_EQ(m.Get(6), 1);
}

TEST(IntervalMapTest, CoalesceMergesEqualAdjacent) {
  IntervalMap<int> m(Interval(0, 10), 1);
  m.Set(Interval(3, 6), 1);  // Same value: split then re-merged.
  m.Coalesce();
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.entries()[0].interval, Interval(0, 10));
}

TEST(IntervalMapTest, CoalesceKeepsDistinctValues) {
  IntervalMap<int> m(Interval(0, 10), 1);
  m.Set(Interval(3, 6), 2);
  m.Coalesce();
  EXPECT_EQ(m.size(), 3u);
}

TEST(IntervalMapTest, ForEachIntersectingClipsToQuery) {
  IntervalMap<int> m(Interval(0, 10), 1);
  m.Set(Interval(4, 7), 2);
  std::vector<std::pair<Interval, int>> seen;
  m.ForEachIntersecting(Interval(5, 9), [&](const Interval& iv, int v) {
    seen.emplace_back(iv, v);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(Interval(5, 7), 2));
  EXPECT_EQ(seen[1], std::make_pair(Interval(7, 9), 1));
}

TEST(IntervalMapTest, FindReturnsCoveringEntry) {
  IntervalMap<int> m;
  m.Set(Interval(2, 5), 1);
  m.Set(Interval(8, 9), 2);
  EXPECT_EQ(m.Find(1), nullptr);
  ASSERT_NE(m.Find(4), nullptr);
  EXPECT_EQ(m.Find(4)->value, 1);
  EXPECT_EQ(m.Find(6), nullptr);
  EXPECT_EQ(m.Find(8)->value, 2);
}

TEST(IntervalMapTest, SpanIsHull) {
  IntervalMap<int> m;
  EXPECT_TRUE(m.Span().IsEmpty());
  m.Set(Interval(3, 5), 1);
  m.Set(Interval(9, 12), 2);
  EXPECT_EQ(m.Span(), Interval(3, 12));
}

// Property test: a long random sequence of Set operations agrees with a
// brute-force per-time-point model, and the map stays well-formed.
class IntervalMapRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalMapRandomTest, AgreesWithPointwiseModel) {
  Rng rng(GetParam());
  constexpr TimePoint kHorizon = 40;
  IntervalMap<int> m(Interval(0, kHorizon), -1);
  std::map<TimePoint, int> model;
  for (TimePoint t = 0; t < kHorizon; ++t) model[t] = -1;

  for (int op = 0; op < 200; ++op) {
    const TimePoint s = rng.UniformRange(0, kHorizon - 1);
    const TimePoint e = rng.UniformRange(s + 1, kHorizon + 1);
    const int val = static_cast<int>(rng.Uniform(5));
    m.Set(Interval(s, e), val);
    for (TimePoint t = s; t < e; ++t) model[t] = val;

    ASSERT_TRUE(m.IsWellFormed());
    ASSERT_TRUE(m.CoversExactly(Interval(0, kHorizon)));
    if (op % 10 == 0) {
      m.Coalesce();
      ASSERT_TRUE(m.IsWellFormed());
    }
    for (TimePoint t = 0; t < kHorizon; ++t) {
      ASSERT_EQ(m.Get(t), model[t]) << "t=" << t << " op=" << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 1234));

}  // namespace
}  // namespace graphite
