// Unit tests for the time domain, Interval relations and parsing (§III).
#include "temporal/interval.h"

#include <gtest/gtest.h>

#include "temporal/allen.h"

namespace graphite {
namespace {

TEST(IntervalTest, ValidityAndEmptiness) {
  EXPECT_TRUE(Interval(0, 1).IsValid());
  EXPECT_TRUE(Interval(-5, 5).IsValid());
  EXPECT_FALSE(Interval(3, 3).IsValid());
  EXPECT_FALSE(Interval(4, 3).IsValid());
  EXPECT_TRUE(Interval::Empty().IsEmpty());
  EXPECT_TRUE(Interval::All().IsValid());
}

TEST(IntervalTest, UnitAndOpenEnded) {
  EXPECT_TRUE(Interval(7, 8).IsUnit());
  EXPECT_FALSE(Interval(7, 9).IsUnit());
  EXPECT_TRUE(Interval(3, kTimeMax).IsOpenEnded());
  EXPECT_FALSE(Interval(3, 9).IsOpenEnded());
}

TEST(IntervalTest, Length) {
  EXPECT_EQ(Interval(2, 10).Length(), 8);
  EXPECT_EQ(Interval(0, kTimeMax).Length(), kTimeMax);
  EXPECT_EQ(Interval::Empty().Length(), 0);
}

TEST(IntervalTest, ContainsTimePoint) {
  Interval iv(3, 7);
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(6));
  EXPECT_FALSE(iv.Contains(7));  // Half-open: end excluded.
}

TEST(IntervalTest, ContainedIn) {
  EXPECT_TRUE(Interval(3, 5).ContainedIn(Interval(3, 5)));
  EXPECT_TRUE(Interval(4, 5).ContainedIn(Interval(3, 6)));
  EXPECT_FALSE(Interval(2, 5).ContainedIn(Interval(3, 6)));
  EXPECT_FALSE(Interval(5, 7).ContainedIn(Interval(3, 6)));
}

TEST(IntervalTest, DuringIsStrict) {
  EXPECT_TRUE(Interval(4, 5).During(Interval(3, 6)));
  EXPECT_FALSE(Interval(3, 6).During(Interval(3, 6)));
}

TEST(IntervalTest, Intersects) {
  EXPECT_TRUE(Interval(0, 5).Intersects(Interval(4, 9)));
  EXPECT_FALSE(Interval(0, 4).Intersects(Interval(4, 9)));  // meets only
  EXPECT_FALSE(Interval(0, 4).Intersects(Interval(8, 9)));
  EXPECT_TRUE(Interval(0, kTimeMax).Intersects(Interval(100, 101)));
}

TEST(IntervalTest, Meets) {
  EXPECT_TRUE(Interval(0, 4).Meets(Interval(4, 9)));
  EXPECT_FALSE(Interval(0, 4).Meets(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 4).Meets(Interval(3, 9)));
}

TEST(IntervalTest, Intersection) {
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_TRUE(Interval(0, 3).Intersect(Interval(3, 9)).IsEmpty());
  EXPECT_EQ(Interval(0, kTimeMax).Intersect(Interval(3, 9)), Interval(3, 9));
}

TEST(IntervalTest, Ordering) {
  EXPECT_LT(Interval(1, 5), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 5));
}

TEST(IntervalTest, ToStringRendersInfinities) {
  EXPECT_EQ(Interval(3, 7).ToString(), "[3, 7)");
  EXPECT_EQ(Interval(3, kTimeMax).ToString(), "[3, inf)");
  EXPECT_EQ(Interval(kTimeMin, 7).ToString(), "[-inf, 7)");
}

TEST(IntervalTest, ParseRoundTrip) {
  auto r = ParseInterval("[3, 7)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Interval(3, 7));
  r = ParseInterval("[5, inf)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Interval(5, kTimeMax));
  r = ParseInterval("0 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Interval(0, 10));
}

TEST(IntervalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseInterval("").ok());
  EXPECT_FALSE(ParseInterval("[3)").ok());
  EXPECT_FALSE(ParseInterval("[x, 7)").ok());
  EXPECT_FALSE(ParseInterval("[7, 3)").ok());  // start >= end
}

TEST(AllenTest, AllThirteenRelations) {
  const Interval b(10, 20);
  EXPECT_EQ(Classify({0, 5}, b), AllenRelation::kBefore);
  EXPECT_EQ(Classify({0, 10}, b), AllenRelation::kMeets);
  EXPECT_EQ(Classify({5, 15}, b), AllenRelation::kOverlaps);
  EXPECT_EQ(Classify({10, 15}, b), AllenRelation::kStarts);
  EXPECT_EQ(Classify({12, 18}, b), AllenRelation::kDuring);
  EXPECT_EQ(Classify({15, 20}, b), AllenRelation::kFinishes);
  EXPECT_EQ(Classify({10, 20}, b), AllenRelation::kEquals);
  EXPECT_EQ(Classify({5, 20}, b), AllenRelation::kFinishedBy);
  EXPECT_EQ(Classify({5, 25}, b), AllenRelation::kContains);
  EXPECT_EQ(Classify({10, 25}, b), AllenRelation::kStartedBy);
  EXPECT_EQ(Classify({15, 25}, b), AllenRelation::kOverlappedBy);
  EXPECT_EQ(Classify({20, 25}, b), AllenRelation::kMetBy);
  EXPECT_EQ(Classify({25, 30}, b), AllenRelation::kAfter);
}

// Property sweep: for every pair of small intervals, exactly one Allen
// relation holds, Classify(b, a) is its inverse, and the Interval subset
// predicates agree with the algebra.
TEST(AllenTest, ExhaustiveSmallPairsAgreeWithSubsetPredicates) {
  for (TimePoint as = 0; as < 6; ++as) {
    for (TimePoint ae = as + 1; ae <= 6; ++ae) {
      for (TimePoint bs = 0; bs < 6; ++bs) {
        for (TimePoint be = bs + 1; be <= 6; ++be) {
          const Interval a(as, ae), b(bs, be);
          const AllenRelation r = Classify(a, b);
          EXPECT_EQ(Inverse(r), Classify(b, a))
              << a.ToString() << " vs " << b.ToString();
          const bool expect_intersects =
              r != AllenRelation::kBefore && r != AllenRelation::kMeets &&
              r != AllenRelation::kMetBy && r != AllenRelation::kAfter;
          EXPECT_EQ(a.Intersects(b), expect_intersects);
          const bool expect_contained =
              r == AllenRelation::kEquals || r == AllenRelation::kDuring ||
              r == AllenRelation::kStarts || r == AllenRelation::kFinishes;
          EXPECT_EQ(a.ContainedIn(b), expect_contained);
          EXPECT_EQ(a.Meets(b), r == AllenRelation::kMeets);
          EXPECT_EQ(a == b, r == AllenRelation::kEquals);
        }
      }
    }
  }
}

TEST(AllenTest, NamesAreDistinct) {
  EXPECT_STREQ(AllenRelationName(AllenRelation::kBefore), "before");
  EXPECT_STREQ(AllenRelationName(AllenRelation::kOverlappedBy),
               "overlapped-by");
}

}  // namespace
}  // namespace graphite
