// Unit tests for util/json.h: the streaming writer (compact + pretty +
// fixed-precision bench style) and the DOM parser used by the serving
// protocol.
#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace graphite {
namespace {

TEST(JsonWriterTest, CompactObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").String("x");
  w.Key("c").Bool(true);
  w.Key("d").Null();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"b\": \"x\", \"c\": true, \"d\": null}");
}

TEST(JsonWriterTest, NestedArrays) {
  JsonWriter w;
  w.BeginArray();
  w.BeginArray().Int(1).Int(2).EndArray();
  w.BeginArray().EndArray();
  w.Int(-3);
  w.EndArray();
  EXPECT_EQ(w.str(), "[[1, 2], [], -3]");
}

TEST(JsonWriterTest, FixedMatchesBenchStyle) {
  JsonWriter w;
  w.BeginObject();
  w.Key("wall_ms").Fixed(3.25, 3);
  w.Key("ratio").Fixed(2.0, 2);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"wall_ms\": 3.250, \"ratio\": 2.00}");
}

TEST(JsonWriterTest, DoubleShortestRoundTrip) {
  JsonWriter w;
  w.BeginArray();
  w.Double(0.5);
  w.Double(3.0);  // integral doubles keep a ".0" marker
  w.Double(1.0 / 3.0);
  w.EndArray();
  auto doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->items()[0].AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(doc->items()[1].AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(doc->items()[2].AsDouble(), 1.0 / 3.0);
  EXPECT_NE(w.str().find("3.0"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null, null]");
}

TEST(JsonWriterTest, StringEscapes) {
  JsonWriter w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, RawEmbedsVerbatim) {
  JsonWriter w;
  w.BeginObject();
  w.Key("result").Raw("{\"x\": [1, 2]}");
  w.Key("after").Int(9);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"result\": {\"x\": [1, 2]}, \"after\": 9}");
}

TEST(JsonWriterTest, PrettyMode) {
  JsonWriter w(2);
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray().Int(2).EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->AsBool(), true);
  EXPECT_EQ(ParseJson("-42")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(ParseJson("2.5e3")->AsDouble(), 2500.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, BigIntegersStayExact) {
  const int64_t big = 9007199254740993;  // not representable as double
  auto doc = ParseJson(std::to_string(big));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsInt(), big);
}

TEST(JsonParseTest, ObjectLookups) {
  auto doc = ParseJson(
      "{\"op\": \"run\", \"source\": 3, \"cache\": false, "
      "\"scale\": 0.5, \"window\": [2, 8]}");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("op"), "run");
  EXPECT_EQ(doc->GetInt("source", -1), 3);
  EXPECT_EQ(doc->GetBool("cache", true), false);
  EXPECT_DOUBLE_EQ(doc->GetDouble("scale"), 0.5);
  EXPECT_EQ(doc->GetInt("missing", 7), 7);
  const JsonValue* win = doc->Find("window");
  ASSERT_NE(win, nullptr);
  ASSERT_EQ(win->items().size(), 2u);
  EXPECT_EQ(win->items()[1].AsInt(), 8);
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto doc = ParseJson("\"a\\u00e9\\u20ac\\ud83d\\ude00b\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80"
                             "b");
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing characters
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_FALSE(ParseJson(deep).ok());  // depth cap
}

TEST(JsonParseTest, RoundTripThroughWriter) {
  const std::string text =
      "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": null, \"d\": false}}";
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  JsonWriter w;
  doc->WriteTo(&w);
  EXPECT_EQ(w.str(), text);  // key order preserved, same compact style
}

}  // namespace
}  // namespace graphite
