// Paper-claim regression tests: the qualitative results of §VII, asserted
// on small catalog-shaped graphs so the benchmark story cannot silently
// regress. These check the model-intrinsic COUNTS the paper argues from
// (B1/B2), not wall-clock times.
#include <gtest/gtest.h>

#include "algorithms/runners.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"

namespace graphite {
namespace {

Workload MiniDataset(const char* name) {
  return Workload(Generate(DatasetByName(name, /*scale=*/0.05).options));
}

VertexId Hub(const TemporalGraph& g) {
  VertexIdx best = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (g.OutEdges(v).size() > g.OutEdges(best).size()) best = v;
  }
  return g.vertex_id(best);
}

// §VII-B3: on long-lifespan graphs ICM shares compute and messages across
// intervals — far fewer calls and messages than per-snapshot execution.
TEST(PaperClaimsTest, IcmSharesOnLongLifespanGraphs) {
  Workload w = MiniDataset("twitter");
  RunConfig config;
  config.source = Hub(w.graph());
  RunMetrics icm, msb;
  RunWccOn(w, Platform::kIcm, config, &icm);
  RunWccOn(w, Platform::kMsb, config, &msb);
  EXPECT_GT(msb.compute_calls, 3 * icm.compute_calls);
  EXPECT_GT(msb.messages, 3 * icm.messages);
}

// §VII-B1: on unit-lifespan graphs every platform degenerates to the same
// per-snapshot behavior — message counts converge.
TEST(PaperClaimsTest, UnitLifespanDegeneratesToParity) {
  Workload w = MiniDataset("gplus");
  RunConfig config;
  config.source = Hub(w.graph());
  RunMetrics icm, msb;
  RunWccOn(w, Platform::kIcm, config, &icm);
  RunWccOn(w, Platform::kMsb, config, &msb);
  // Identical message counts (unit edges leave nothing to share).
  EXPECT_EQ(icm.messages, msb.messages);
  // ICM never makes MORE compute calls than MSB.
  EXPECT_LE(icm.compute_calls, msb.compute_calls);
}

// §VII-B1: "MSB and Chlonos have the same number of compute calls"
// (Chlonos shares messages, never compute).
TEST(PaperClaimsTest, ChlonosSharesMessagesNotCompute) {
  Workload w = MiniDataset("usrn");
  RunConfig config;
  config.source = Hub(w.graph());
  config.chlonos_batch_size = static_cast<int>(w.graph().horizon());
  RunMetrics msb, chl;
  RunBfsOn(w, Platform::kMsb, config, &msb);
  RunBfsOn(w, Platform::kChl, config, &chl);
  EXPECT_EQ(chl.compute_calls, msb.compute_calls);
  EXPECT_LT(chl.messages, msb.messages);  // Static topology: big sharing.
}

// §VII-B4: the transformed graph bloats with lifespan, and TGB pays extra
// calls/messages for replica state transfer.
TEST(PaperClaimsTest, TgbBloatAndReplicaOverhead) {
  Workload w = MiniDataset("mag");
  const GraphStats s = ComputeGraphStats(w.graph());
  EXPECT_GT(s.transformed_v, 4 * s.interval_v);
  EXPECT_GT(s.transformed_e, 4 * s.interval_e);
  EXPECT_GT(w.transformed().MemoryFootprintBytes(),
            2 * w.graph().MemoryFootprintBytes());

  RunConfig config;
  config.source = Hub(w.graph());
  RunMetrics icm, tgb;
  RunSsspOn(w, Platform::kIcm, config, &icm);
  RunSsspOn(w, Platform::kTgb, config, &tgb);
  EXPECT_GT(tgb.compute_calls, icm.compute_calls);
}

// §VII-B6: on a static-topology road network ICM processes the interval
// graph once where per-snapshot platforms repeat all T times; and
// superstep counts track the large diameter.
TEST(PaperClaimsTest, StaticTopologySharingAndDiameterSupersteps) {
  Workload w = MiniDataset("usrn");
  RunConfig config;
  config.source = w.graph().vertex_id(0);  // Grid corner: max eccentricity.
  RunMetrics icm, msb;
  RunBfsOn(w, Platform::kIcm, config, &icm);
  RunBfsOn(w, Platform::kMsb, config, &msb);
  EXPECT_GT(msb.compute_calls, 10 * icm.compute_calls);
  // MSB's supersteps accumulate over snapshots; ICM traverses once.
  EXPECT_GT(msb.supersteps, 10 * icm.supersteps);
  // Traversal depth ~ grid diameter (side*2), far beyond the horizon.
  EXPECT_GT(icm.supersteps, w.graph().horizon());
}

// §VII-B5: warp suppression leaves results identical but reduces the
// wall cost of the all-unit worst case; counts here, timing in bench.
TEST(PaperClaimsTest, SuppressionEngagesOnGplusShape) {
  Workload w = MiniDataset("gplus");
  RunConfig on, off;
  on.source = off.source = Hub(w.graph());
  on.icm_suppression = true;
  off.icm_suppression = false;
  RunMetrics m_on, m_off;
  const auto r_on = RunWccOn(w, Platform::kIcm, on, &m_on);
  const auto r_off = RunWccOn(w, Platform::kIcm, off, &m_off);
  for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
    for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
      ASSERT_EQ(ResultAt<int64_t>(r_on, v, t, kInfCost),
                ResultAt<int64_t>(r_off, v, t, kInfCost));
    }
  }
  EXPECT_EQ(m_on.messages, m_off.messages);
}

// §VI: the interval codec makes unit and open-ended messages tiny; the
// ICM wire format beats a fixed 16-byte interval encoding on realistic
// traffic by well over the paper's 59%.
TEST(PaperClaimsTest, IntervalMessagesCompress) {
  Workload w = MiniDataset("twitter");
  RunConfig config;
  config.source = Hub(w.graph());
  RunMetrics icm;
  RunSsspOn(w, Platform::kIcm, config, &icm);
  ASSERT_GT(icm.messages, 0);
  const double bytes_per_message =
      static_cast<double>(icm.message_bytes) /
      static_cast<double>(icm.messages);
  // dst varint + interval + payload; fixed encoding would be >= 16 for
  // the interval alone.
  EXPECT_LT(bytes_per_message, 16.0);
}

}  // namespace
}  // namespace graphite
