// Tests for the partitioning strategies (§VIII extension) and their use
// by the ICM engine: assignments are complete and balanced, quality
// metrics are computed correctly, and every strategy yields identical
// algorithm results.
#include "graph/partition_strategies.h"

#include <gtest/gtest.h>

#include "algorithms/icm_path.h"
#include "gen/generators.h"
#include "icm/icm_engine.h"
#include "testutil.h"

namespace graphite {
namespace {

constexpr PartitionStrategy kAll[] = {
    PartitionStrategy::kHash, PartitionStrategy::kRange,
    PartitionStrategy::kBlock, PartitionStrategy::kGreedyLdg};

TEST(PartitionStrategiesTest, AssignmentsCompleteAndBounded) {
  const TemporalGraph g = testutil::MakeRandomGraph(404);
  for (PartitionStrategy s : kAll) {
    const auto part = ComputePartition(g, s, 4);
    ASSERT_EQ(part.size(), g.num_vertices()) << PartitionStrategyName(s);
    for (int w : part) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 4);
    }
  }
}

TEST(PartitionStrategiesTest, LoadRoughlyBalanced) {
  GenOptions opt;
  opt.num_vertices = 2000;
  opt.num_edges = 8000;
  const TemporalGraph g = Generate(opt);
  for (PartitionStrategy s : kAll) {
    const auto part = ComputePartition(g, s, 4);
    const PartitionQuality q = EvaluatePartition(g, part, 4);
    EXPECT_LT(q.load_imbalance, 1.6) << PartitionStrategyName(s);
    EXPECT_GE(q.load_imbalance, 1.0) << PartitionStrategyName(s);
  }
}

TEST(PartitionStrategiesTest, QualityMetricsOnKnownAssignment) {
  // Two vertices alive [0, 10), one edge alive [2, 6).
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 10));
  b.AddVertex(2, Interval(0, 10));
  b.AddEdge(5, 1, 2, Interval(2, 6));
  const TemporalGraph g = std::move(b.Build()).value();

  const PartitionQuality same = EvaluatePartition(g, {0, 0}, 2);
  EXPECT_EQ(same.temporal_edge_cut, 0);
  EXPECT_DOUBLE_EQ(same.cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(same.load_imbalance, 2.0);  // All load on worker 0.

  const PartitionQuality split = EvaluatePartition(g, {0, 1}, 2);
  EXPECT_EQ(split.temporal_edge_cut, 4);  // |[2,6)| time-points.
  EXPECT_DOUBLE_EQ(split.cut_fraction, 1.0);
  EXPECT_DOUBLE_EQ(split.load_imbalance, 1.0);
}

TEST(PartitionStrategiesTest, BlockBeatsHashOnGridLocality) {
  // Road grids have id-local neighborhoods: the block partitioner should
  // cut far fewer temporal edges than hash (the §VIII exploration).
  GenOptions opt;
  opt.topology = GenOptions::Topology::kGrid;
  opt.num_vertices = 1024;
  opt.snapshots = 8;
  opt.edge_lifespan = GenOptions::Lifespan::kFull;
  const TemporalGraph g = Generate(opt);
  const auto hash = EvaluatePartition(
      g, ComputePartition(g, PartitionStrategy::kHash, 8), 8);
  const auto block = EvaluatePartition(
      g, ComputePartition(g, PartitionStrategy::kBlock, 8), 8);
  EXPECT_LT(block.cut_fraction, 0.5 * hash.cut_fraction);
}

TEST(PartitionStrategiesTest, GreedyLdgCutsLessThanHash) {
  GenOptions opt;
  opt.num_vertices = 1500;
  opt.num_edges = 6000;
  const TemporalGraph g = Generate(opt);
  const auto hash = EvaluatePartition(
      g, ComputePartition(g, PartitionStrategy::kHash, 8), 8);
  const auto ldg = EvaluatePartition(
      g, ComputePartition(g, PartitionStrategy::kGreedyLdg, 8), 8);
  EXPECT_LT(ldg.temporal_edge_cut, hash.temporal_edge_cut);
}

TEST(PartitionStrategiesTest, IcmResultsInvariantToStrategy) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  IcmSssp baseline_prog(g, testutil::kA);
  auto want = IcmEngine<IcmSssp>::Run(g, baseline_prog, IcmOptions{});
  for (PartitionStrategy s : kAll) {
    const auto part = ComputePartition(g, s, 3);
    IcmOptions options;
    options.num_workers = 3;
    options.custom_partition = &part;
    IcmSssp program(g, testutil::kA);
    auto got = IcmEngine<IcmSssp>::Run(g, program, options);
    for (size_t v = 0; v < g.num_vertices(); ++v) {
      auto a = want.states[v];
      auto b = got.states[v];
      a.Coalesce();
      b.Coalesce();
      ASSERT_EQ(a.entries(), b.entries()) << PartitionStrategyName(s);
    }
    EXPECT_EQ(got.metrics.messages, want.metrics.messages);
  }
}

TEST(PartitionStrategiesTest, CutAffectsCrossWorkerBytesOnly) {
  // With everything on one worker, no bytes cross workers; a split
  // assignment moves traffic onto the wire. Total messages identical.
  GenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 800;
  opt.snapshots = 8;
  const TemporalGraph g = Generate(opt);
  const std::vector<int> all_zero(g.num_vertices(), 0);
  // Source from a hub so the flood really crosses the graph.
  VertexIdx hub = 0;
  for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
    if (g.OutEdges(v).size() > g.OutEdges(hub).size()) hub = v;
  }
  const VertexId source = g.vertex_id(hub);

  IcmOptions one;
  one.num_workers = 2;
  one.custom_partition = &all_zero;
  IcmReach p1(g, source);
  auto r1 = IcmEngine<IcmReach>::Run(g, p1, one);
  ASSERT_GT(r1.metrics.messages, 0);

  const auto split = ComputePartition(g, PartitionStrategy::kBlock, 2);
  IcmOptions two;
  two.num_workers = 2;
  two.custom_partition = &split;
  IcmReach p2(g, source);
  auto r2 = IcmEngine<IcmReach>::Run(g, p2, two);

  EXPECT_EQ(r1.metrics.messages, r2.metrics.messages);
  int64_t cross1 = 0, cross2 = 0;
  for (const auto& ss : r1.metrics.per_superstep) {
    for (int64_t b : ss.worker_in_bytes) cross1 += b;
  }
  for (const auto& ss : r2.metrics.per_superstep) {
    for (int64_t b : ss.worker_in_bytes) cross2 += b;
  }
  EXPECT_EQ(cross1, 0);
  EXPECT_GT(cross2, 0);
}

}  // namespace
}  // namespace graphite
