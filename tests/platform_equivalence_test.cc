// Cross-platform equivalence (paper §VII-B1: "all platforms produce
// identical results for all the algorithms and graphs"): for every
// algorithm, every supported platform must agree with the ICM result —
// which the oracle tests already pin to ground truth — per vertex and
// time-point, on randomized temporal graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/runners.h"
#include "testutil.h"

namespace graphite {
namespace {

class PlatformEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    testutil::RandomGraphOptions opt;
    opt.full_lifespan_prob = 0.6;
    workload_.emplace(testutil::MakeRandomGraph(GetParam(), opt));
    config_.source = 0;
    config_.num_workers = 3;
    config_.chlonos_batch_size = 5;
  }

  const TemporalGraph& graph() const { return workload_->graph(); }

  template <typename V>
  void ExpectSameTemporal(const TemporalResult<V>& a,
                          const TemporalResult<V>& b, V absent,
                          const char* what) {
    for (VertexIdx v = 0; v < graph().num_vertices(); ++v) {
      for (TimePoint t = 0; t < graph().horizon(); ++t) {
        ASSERT_EQ(ResultAt(a, v, t, absent), ResultAt(b, v, t, absent))
            << what << " v=" << v << " t=" << t << " seed=" << GetParam();
      }
    }
  }

  std::optional<Workload> workload_;
  RunConfig config_;
};

TEST_P(PlatformEquivalenceTest, BfsAcrossPlatforms) {
  const auto icm = RunBfsOn(*workload_, Platform::kIcm, config_);
  const auto msb = RunBfsOn(*workload_, Platform::kMsb, config_);
  const auto chl = RunBfsOn(*workload_, Platform::kChl, config_);
  ExpectSameTemporal<int64_t>(icm, msb, kInfCost, "BFS icm/msb");
  ExpectSameTemporal<int64_t>(icm, chl, kInfCost, "BFS icm/chl");
}

TEST_P(PlatformEquivalenceTest, WccAcrossPlatforms) {
  const auto icm = RunWccOn(*workload_, Platform::kIcm, config_);
  const auto msb = RunWccOn(*workload_, Platform::kMsb, config_);
  const auto chl = RunWccOn(*workload_, Platform::kChl, config_);
  ExpectSameTemporal<int64_t>(icm, msb, kInfCost, "WCC icm/msb");
  ExpectSameTemporal<int64_t>(icm, chl, kInfCost, "WCC icm/chl");
}

TEST_P(PlatformEquivalenceTest, SccAcrossPlatforms) {
  const auto icm = RunSccOn(*workload_, Platform::kIcm, config_);
  const auto msb = RunSccOn(*workload_, Platform::kMsb, config_);
  const auto chl = RunSccOn(*workload_, Platform::kChl, config_);
  ExpectSameTemporal<int64_t>(icm, msb, kInfCost, "SCC icm/msb");
  ExpectSameTemporal<int64_t>(icm, chl, kInfCost, "SCC icm/chl");
}

TEST_P(PlatformEquivalenceTest, PageRankAcrossPlatforms) {
  const auto icm = RunPrOn(*workload_, Platform::kIcm, config_);
  const auto msb = RunPrOn(*workload_, Platform::kMsb, config_);
  const auto chl = RunPrOn(*workload_, Platform::kChl, config_);
  for (VertexIdx v = 0; v < graph().num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph().horizon(); ++t) {
      const double a = ResultAt(icm, v, t, -1.0);
      const double b = ResultAt(msb, v, t, -1.0);
      const double c = ResultAt(chl, v, t, -1.0);
      ASSERT_NEAR(a, b, 1e-9 * std::max(1.0, std::fabs(a))) << v << " " << t;
      ASSERT_NEAR(a, c, 1e-9 * std::max(1.0, std::fabs(a))) << v << " " << t;
    }
  }
}

TEST_P(PlatformEquivalenceTest, SsspAcrossPlatforms) {
  const auto icm = RunSsspOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunSsspOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunSsspOn(*workload_, Platform::kGof, config_);
  ExpectSameTemporal<int64_t>(icm, tgb, kInfCost, "SSSP icm/tgb");
  ExpectSameTemporal<int64_t>(icm, gof, kInfCost, "SSSP icm/gof");
}

TEST_P(PlatformEquivalenceTest, EatAcrossPlatforms) {
  const auto icm = RunEatOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunEatOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunEatOn(*workload_, Platform::kGof, config_);
  EXPECT_EQ(icm, tgb);
  EXPECT_EQ(icm, gof);
}

TEST_P(PlatformEquivalenceTest, FastAcrossPlatforms) {
  const auto icm = RunFastOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunFastOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunFastOn(*workload_, Platform::kGof, config_);
  EXPECT_EQ(icm, tgb);
  EXPECT_EQ(icm, gof);
}

TEST_P(PlatformEquivalenceTest, LdAcrossPlatforms) {
  const auto icm = RunLdOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunLdOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunLdOn(*workload_, Platform::kGof, config_);
  EXPECT_EQ(icm, tgb);
  EXPECT_EQ(icm, gof);
}

TEST_P(PlatformEquivalenceTest, TmstAcrossPlatforms) {
  const auto icm = RunTmstOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunTmstOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunTmstOn(*workload_, Platform::kGof, config_);
  EXPECT_EQ(icm, tgb);
  EXPECT_EQ(icm, gof);
}

TEST_P(PlatformEquivalenceTest, ReachAcrossPlatforms) {
  const auto icm = RunRhOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunRhOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunRhOn(*workload_, Platform::kGof, config_);
  ExpectSameTemporal<uint8_t>(icm, tgb, 0, "RH icm/tgb");
  ExpectSameTemporal<uint8_t>(icm, gof, 0, "RH icm/gof");
}

TEST_P(PlatformEquivalenceTest, TriangleCountAcrossPlatforms) {
  const auto icm = RunTcOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunTcOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunTcOn(*workload_, Platform::kGof, config_);
  ExpectSameTemporal<int64_t>(icm, tgb, 0, "TC icm/tgb");
  ExpectSameTemporal<int64_t>(icm, gof, 0, "TC icm/gof");
}

TEST_P(PlatformEquivalenceTest, LccAcrossPlatforms) {
  const auto icm = RunLccOn(*workload_, Platform::kIcm, config_);
  const auto tgb = RunLccOn(*workload_, Platform::kTgb, config_);
  const auto gof = RunLccOn(*workload_, Platform::kGof, config_);
  for (VertexIdx v = 0; v < graph().num_vertices(); ++v) {
    for (TimePoint t = 0; t < graph().horizon(); ++t) {
      ASSERT_NEAR(ResultAt(icm, v, t, 0.0), ResultAt(tgb, v, t, 0.0), 1e-12);
      ASSERT_NEAR(ResultAt(icm, v, t, 0.0), ResultAt(gof, v, t, 0.0), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlatformEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// §VII-B1 count identities on a unit-lifespan graph (the GPlus shape):
// with no temporal overlap to share, MSB and Chlonos make the same number
// of compute calls, and Chlonos cannot share messages either.
TEST(UnitLifespanCountsTest, PlatformCountIdentities) {
  testutil::RandomGraphOptions opt;
  opt.unit_lifespan_prob = 1.0;
  opt.full_lifespan_prob = 0.0;
  opt.num_vertices = 30;
  opt.num_edges = 90;
  Workload w(testutil::MakeRandomGraph(4242, opt));
  RunConfig config;

  RunMetrics msb, chl;
  RunBfsOn(w, Platform::kMsb, config, &msb);
  RunBfsOn(w, Platform::kChl, config, &chl);
  EXPECT_EQ(msb.compute_calls, chl.compute_calls);
  EXPECT_EQ(msb.messages, chl.messages);
}

}  // namespace
}  // namespace graphite
