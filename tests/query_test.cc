// Tests for the temporal query layer (§VIII extension): temporal
// selection, time slicing, predicate subgraphs and aggregations — all
// outputs must remain valid temporal graphs.
#include "query/temporal_query.h"

#include <gtest/gtest.h>

#include "algorithms/oracle.h"
#include "graph/graph_stats.h"
#include "testutil.h"

namespace graphite {
namespace {

using testutil::MakeTransitGraph;

TEST(TemporalPredicateTest, Kinds) {
  const Interval window(3, 7);
  EXPECT_TRUE(TemporalPredicate::Intersects(window).Matches({5, 9}));
  EXPECT_FALSE(TemporalPredicate::Intersects(window).Matches({7, 9}));
  EXPECT_TRUE(TemporalPredicate::ContainedIn(window).Matches({4, 6}));
  EXPECT_FALSE(TemporalPredicate::ContainedIn(window).Matches({2, 6}));
  EXPECT_TRUE(TemporalPredicate::Contains(window).Matches({0, 9}));
  EXPECT_FALSE(TemporalPredicate::Contains(window).Matches({4, 9}));
  EXPECT_TRUE(TemporalPredicate::Allen(AllenRelation::kMeets, window)
                  .Matches({0, 3}));
}

TEST(TemporalSelectTest, KeepsMatchingEdges) {
  const TemporalGraph g = MakeTransitGraph();
  // Edges alive within [1, 4): A->C [1,2), A->D [2,4), D->F [1,2).
  // Vertex lifespans are [0, inf): none is contained in [1, 4), and with
  // no surviving endpoints nothing survives at all.
  const TemporalGraph sel =
      TemporalSelect(g, TemporalPredicate::ContainedIn(Interval(1, 4)));
  EXPECT_EQ(sel.num_vertices(), 0u);
  EXPECT_EQ(sel.num_edges(), 0u);
  // Intersects keeps everything alive in the window: A->C, A->D, D->F and
  // A->B (whose lifespan [3,6) overlaps [1,4)).
  const TemporalGraph isel =
      TemporalSelect(g, TemporalPredicate::Intersects(Interval(1, 4)));
  EXPECT_EQ(isel.num_vertices(), 6u);
  EXPECT_EQ(isel.num_edges(), 4u);
}

TEST(TimeSliceTest, SingleSnapshotSlice) {
  const TemporalGraph g = MakeTransitGraph();
  const TemporalGraph s4 = TimeSlice(g, Interval(4, 5));
  // At t=4 only A->B is alive.
  EXPECT_EQ(s4.num_edges(), 1u);
  EXPECT_EQ(s4.edge(0).eid, 10);
  EXPECT_EQ(s4.edge(0).interval, Interval(4, 5));
  // Property clipped to the slice: cost 4 (the [3,5) run).
  const auto label = s4.LabelIdOf("travel-cost");
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(s4.EdgeProperty(0, *label)->Get(4), 4);
}

TEST(TimeSliceTest, WindowSliceKeepsPartialLifespans) {
  const TemporalGraph g = MakeTransitGraph();
  const TemporalGraph win = TimeSlice(g, Interval(2, 6));
  // A->B [3,6), A->D [2,4), C->E [5,6) survive (clipped); A->C [1,2),
  // B->E [8,9), D->F [1,2) do not.
  EXPECT_EQ(win.num_edges(), 3u);
  for (EdgePos pos = 0; pos < win.num_edges(); ++pos) {
    EXPECT_TRUE(win.edge(pos).interval.ContainedIn(Interval(2, 6)));
  }
}

TEST(TimeSliceTest, OutputFeedsIcmConsistently) {
  // BFS on a slice equals BFS on the original within the window.
  const TemporalGraph g = testutil::MakeRandomGraph(99);
  const Interval window(3, 9);
  const TemporalGraph sliced = TimeSlice(g, window);
  const auto full = OracleBfs(g, 0);
  const auto part = OracleBfs(sliced, 0);
  for (TimePoint t = window.start; t < window.end; ++t) {
    for (VertexIdx v = 0; v < g.num_vertices(); ++v) {
      const auto idx = sliced.IndexOf(g.vertex_id(v));
      const int64_t want = full[v][static_cast<size_t>(t)];
      const int64_t got =
          idx ? part[*idx][static_cast<size_t>(t)] : kInfCost;
      ASSERT_EQ(got, want) << "v=" << v << " t=" << t;
    }
  }
}

TEST(TemporalSubgraphTest, PredicateFilteringFixesIntegrity) {
  const TemporalGraph g = MakeTransitGraph();
  SubgraphPredicates preds;
  preds.vertex = [](const TemporalGraph& graph, VertexIdx v) {
    return graph.vertex_id(v) != testutil::kB;  // Drop B.
  };
  const TemporalGraph sub = TemporalSubgraph(g, preds);
  EXPECT_EQ(sub.num_vertices(), 5u);
  // A->B and B->E disappear with B.
  EXPECT_EQ(sub.num_edges(), 4u);
  EXPECT_FALSE(sub.IndexOf(testutil::kB).has_value());
}

TEST(TemporalSubgraphTest, EdgePredicateOnProperties) {
  const TemporalGraph g = MakeTransitGraph();
  const auto cost = g.LabelIdOf("travel-cost");
  SubgraphPredicates preds;
  preds.edge = [&](const TemporalGraph& graph, EdgePos pos) {
    // Keep only cheap transits (some cost value <= 2).
    const auto* map = graph.EdgeProperty(pos, *cost);
    if (map == nullptr) return false;
    for (const auto& entry : map->entries()) {
      if (entry.value <= 2) return true;
    }
    return false;
  };
  const TemporalGraph sub = TemporalSubgraph(g, preds);
  EXPECT_EQ(sub.num_edges(), 3u);  // A->D (2), B->E (2), D->F (1).
}

TEST(CountOverTimeTest, MatchesSnapshots) {
  const TemporalGraph g = MakeTransitGraph();
  const TemporalHistogram h = CountOverTime(g);
  ASSERT_EQ(h.edges.size(), 10u);
  EXPECT_EQ(h.edges[0], 0);
  EXPECT_EQ(h.edges[1], 2);  // A->C, D->F.
  EXPECT_EQ(h.edges[3], 2);  // A->B, A->D.
  EXPECT_EQ(h.edges[8], 1);  // B->E.
  EXPECT_EQ(h.vertices[5], 6);
}

TEST(AggregateEdgePropertyTest, Stats) {
  const TemporalGraph g = MakeTransitGraph();
  const PropertyStats s =
      AggregateEdgeProperty(g, "travel-cost", Interval(0, 10));
  // Samples: A->B 4,4,3; A->C 3; A->D 2,2; C->E 4; B->E 2; D->F 1.
  EXPECT_EQ(s.count, 9);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
  EXPECT_NEAR(s.mean, 25.0 / 9.0, 1e-12);
  EXPECT_EQ(AggregateEdgeProperty(g, "no-such-label", Interval(0, 10)).count,
            0);
}

TEST(FirstTimeWhereTest, FindsThreshold) {
  const TemporalGraph g = MakeTransitGraph();
  EXPECT_EQ(FirstTimeWhere(
                g, [](int64_t, int64_t edges) { return edges >= 2; }),
            1);
  EXPECT_EQ(FirstTimeWhere(
                g, [](int64_t, int64_t edges) { return edges >= 3; }),
            -1);
}

TEST(QueryOutputsStayValid, RandomGraphs) {
  for (uint64_t seed : {21u, 22u}) {
    const TemporalGraph g = testutil::MakeRandomGraph(seed);
    const TemporalGraph a =
        TemporalSelect(g, TemporalPredicate::Intersects(Interval(2, 8)));
    const TemporalGraph b = TimeSlice(g, Interval(2, 8));
    // Builder validation ran inside Rebuild (CHECK would have fired);
    // sanity-check constraint 2 explicitly.
    for (const TemporalGraph* out : {&a, &b}) {
      for (EdgePos pos = 0; pos < out->num_edges(); ++pos) {
        const StoredEdge& e = out->edge(pos);
        EXPECT_TRUE(e.interval.ContainedIn(out->vertex_interval(e.src)));
        EXPECT_TRUE(e.interval.ContainedIn(out->vertex_interval(e.dst)));
      }
    }
  }
}

}  // namespace
}  // namespace graphite
