// Unit tests for the serving layer's LRU result cache: keying, strict
// LRU eviction over entry and byte bounds, prefix invalidation, and the
// hit/miss/eviction counters the bench gate relies on.
#include "server/result_cache.h"

#include <gtest/gtest.h>

namespace graphite {
namespace {

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Get("k1").has_value());
  cache.Put("k1", "v1");
  auto hit = cache.Get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v1");
  const ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1);
}

TEST(ResultCacheTest, LruEvictionOrder) {
  ResultCache cache(2);
  cache.Put("a", "1");
  cache.Put("b", "2");
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh: b is now LRU
  cache.Put("c", "3");                      // evicts b
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Put("a", "old");
  cache.Put("b", "2");
  cache.Put("a", "new");  // refresh, not insert: a becomes most recent
  cache.Put("c", "3");    // evicts b
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_EQ(cache.stats().inserts, 3);
}

TEST(ResultCacheTest, ByteBoundEvicts) {
  ResultCache cache(100, /*max_bytes=*/10);
  cache.Put("a", "12345678");  // 1 + 8 = 9 bytes
  cache.Put("b", "1234");      // 1 + 4 = 5 bytes -> evicts a
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("b").has_value());
  const ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 5);
  EXPECT_EQ(s.evictions, 1);
}

TEST(ResultCacheTest, OversizedPayloadNotAdmitted) {
  ResultCache cache(100, /*max_bytes=*/4);
  cache.Put("k", "way too large");
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().evictions, 0);  // nothing was evicted for it
}

TEST(ResultCacheTest, ZeroEntriesDisables) {
  ResultCache cache(0);
  cache.Put("k", "v");
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ResultCacheTest, ErasePrefixInvalidatesOneGraph) {
  ResultCache cache(10);
  cache.Put("g1\x1f" "bfs", "a");
  cache.Put("g1\x1f" "pr", "b");
  cache.Put("g2\x1f" "bfs", "c");
  EXPECT_EQ(cache.ErasePrefix("g1\x1f"), 2);
  EXPECT_FALSE(cache.Get("g1\x1f" "bfs").has_value());
  EXPECT_TRUE(cache.Get("g2\x1f" "bfs").has_value());
  // Invalidation is not an eviction (capacity was never exceeded).
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ResultCacheTest, GetIfPresentDoesNotCountMisses) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.GetIfPresent("k").has_value());
  EXPECT_EQ(cache.stats().misses, 0);
  cache.Put("k", "v");
  ASSERT_TRUE(cache.GetIfPresent("k").has_value());
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ResultCacheTest, ClearResetsContentsNotCounters) {
  ResultCache cache(4);
  cache.Put("k", "v");
  ASSERT_TRUE(cache.Get("k").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("k").has_value());
  const ResultCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.hits, 1);  // history survives Clear
}

}  // namespace
}  // namespace graphite
