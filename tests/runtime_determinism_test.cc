// The parallel runtime's oracle: every scheduling mode — sequential,
// legacy per-superstep spawn, persistent pool, and chunked work stealing —
// must produce a byte-identical IcmResult (states, call/message/byte
// counts, per-worker call vectors) for any logical worker count. The
// per-destination wire buffers are filled in logical-worker order in every
// mode (chunk rows concatenate in chunk order), so this is exact equality,
// not tolerance-based. Also unit-tests the ThreadPool primitive itself.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "algorithms/icm_path.h"
#include "algorithms/icm_ti.h"
#include "algorithms/runners.h"
#include "engine/thread_pool.h"
#include "icm/icm_engine.h"
#include "testutil.h"
#include "util/simd.h"

namespace graphite {
namespace {

TEST(ThreadPoolTest, RunsJobOnEveryLane) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAll([&](int t) { hits[t].fetch_add(1); });
  for (int t = 0; t < 4; ++t) EXPECT_EQ(hits[t].load(), 1) << "lane " << t;
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.RunOnAll([&](int t) { sum.fetch_add(t + 1); });
  }
  // 200 rounds x (1+2+3).
  EXPECT_EQ(sum.load(), 200 * 6);
}

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.RunOnAll([&](int t) {
    EXPECT_EQ(t, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// Drains a shared counter from all lanes; the sum of claimed items must be
// exact regardless of interleaving (the pattern SuperstepRuntime uses).
TEST(ThreadPoolTest, AtomicCursorDrainClaimsEachItemOnce) {
  ThreadPool pool(4);
  constexpr int kItems = 10000;
  std::vector<std::atomic<int>> claimed(kItems);
  std::atomic<int> cursor{0};
  pool.RunOnAll([&](int) {
    for (;;) {
      const int i = cursor.fetch_add(1);
      if (i >= kItems) break;
      claimed[i].fetch_add(1);
    }
  });
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(claimed[i].load(), 1) << i;
}

// --- The determinism matrix (ISSUE 1, transport axis from ISSUE 5):
// {sequential, spawn, pool x2, pool x8 stealing} x {in-process, loopback
// wire} x {1, 3, 7} logical workers must agree exactly. The delivery
// plane visits wire rows in chunk order and decodes frames in write
// order, so even the loopback transport — which copies every row through
// the §VI wire encoding — reproduces sequential results byte for byte,
// message counts included. ---

struct ModeSpec {
  const char* name;
  bool use_threads;
  Scheduling scheduling;
  int num_threads;
  int chunk_size;
};

const ModeSpec kModes[] = {
    {"sequential", false, Scheduling::kStealing, 0, 64},
    {"spawn", true, Scheduling::kSpawn, 0, 64},
    {"pool2", true, Scheduling::kPool, 2, 64},
    // Tiny chunks force heavy inter-thread stealing on small graphs.
    {"steal8", true, Scheduling::kStealing, 8, 4},
};

const TransportKind kTransports[] = {TransportKind::kInProcess,
                                     TransportKind::kLoopbackWire};

std::string MatrixLabel(const ModeSpec& mode, TransportKind transport,
                        int workers) {
  return std::string(mode.name) + "/" + TransportKindName(transport) +
         " w=" + std::to_string(workers);
}

IcmOptions MakeOptions(const ModeSpec& mode, int workers,
                       TransportKind transport = TransportKind::kInProcess) {
  IcmOptions options;
  options.num_workers = workers;
  options.use_threads = mode.use_threads;
  options.runtime.scheduling = mode.scheduling;
  options.runtime.num_threads = mode.num_threads;
  options.runtime.chunk_size = mode.chunk_size;
  options.runtime.transport = transport;
  return options;
}

template <typename Program>
void ExpectIdentical(const IcmResult<Program>& want,
                     const IcmResult<Program>& got, const char* what) {
  ASSERT_EQ(want.states.size(), got.states.size()) << what;
  for (size_t v = 0; v < want.states.size(); ++v) {
    ASSERT_EQ(want.states[v].entries(), got.states[v].entries())
        << what << " v=" << v;
  }
  EXPECT_EQ(want.active_compute_calls, got.active_compute_calls) << what;
  EXPECT_EQ(want.suppressed_vertices, got.suppressed_vertices) << what;
  EXPECT_EQ(want.metrics.supersteps, got.metrics.supersteps) << what;
  EXPECT_EQ(want.metrics.compute_calls, got.metrics.compute_calls) << what;
  EXPECT_EQ(want.metrics.scatter_calls, got.metrics.scatter_calls) << what;
  EXPECT_EQ(want.metrics.messages, got.metrics.messages) << what;
  EXPECT_EQ(want.metrics.message_bytes, got.metrics.message_bytes) << what;
  // Per-superstep model counters, including the per-logical-worker call
  // vector: logical workers are fixed routing entities, so they must not
  // shift when OS threads steal chunks.
  ASSERT_EQ(want.metrics.per_superstep.size(), got.metrics.per_superstep.size())
      << what;
  for (size_t s = 0; s < want.metrics.per_superstep.size(); ++s) {
    const SuperstepMetrics& a = want.metrics.per_superstep[s];
    const SuperstepMetrics& b = got.metrics.per_superstep[s];
    EXPECT_EQ(a.compute_calls, b.compute_calls) << what << " ss=" << s;
    EXPECT_EQ(a.messages, b.messages) << what << " ss=" << s;
    EXPECT_EQ(a.message_bytes, b.message_bytes) << what << " ss=" << s;
    EXPECT_EQ(a.worker_compute_calls, b.worker_compute_calls)
        << what << " ss=" << s;
    EXPECT_EQ(a.worker_in_bytes, b.worker_in_bytes) << what << " ss=" << s;
  }
}

class RuntimeDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuntimeDeterminismTest, SsspMatrix) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 60;
  opt.num_edges = 220;
  const TemporalGraph g = testutil::MakeRandomGraph(GetParam(), opt);
  for (int workers : {1, 3, 7}) {
    IcmSssp program(g, g.vertex_id(0));
    const auto want =
        IcmEngine<IcmSssp>::Run(g, program, MakeOptions(kModes[0], workers));
    for (const ModeSpec& mode : kModes) {
      for (const TransportKind transport : kTransports) {
        IcmSssp p(g, g.vertex_id(0));
        const auto got = IcmEngine<IcmSssp>::Run(
            g, p, MakeOptions(mode, workers, transport));
        ExpectIdentical(want, got,
                        MatrixLabel(mode, transport, workers).c_str());
      }
    }
  }
}

// Always-active path (PageRank preset: gap-fill compute + combiner).
TEST_P(RuntimeDeterminismTest, PageRankMatrix) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 40;
  opt.num_edges = 160;
  const TemporalGraph g = testutil::MakeRandomGraph(GetParam(), opt);
  for (int workers : {1, 3, 7}) {
    IcmPageRank program(g);
    const auto want = IcmEngine<IcmPageRank>::Run(
        g, program, PageRankOptions(MakeOptions(kModes[0], workers)));
    for (const ModeSpec& mode : kModes) {
      for (const TransportKind transport : kTransports) {
        IcmPageRank p(g);
        const auto got = IcmEngine<IcmPageRank>::Run(
            g, p, PageRankOptions(MakeOptions(mode, workers, transport)));
        ExpectIdentical(want, got,
                        MatrixLabel(mode, transport, workers).c_str());
      }
    }
  }
}

// Suppression path: unit-lifespan-dominated inboxes bypass the warp; the
// suppressed-vertex count itself must also be mode-invariant.
TEST_P(RuntimeDeterminismTest, SuppressionMatrix) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 40;
  opt.num_edges = 160;
  opt.unit_lifespan_prob = 0.95;
  opt.full_lifespan_prob = 0.2;
  const TemporalGraph g = testutil::MakeRandomGraph(GetParam() + 17, opt);
  for (int workers : {1, 3, 7}) {
    IcmSssp program(g, g.vertex_id(0));
    IcmOptions base = MakeOptions(kModes[0], workers);
    base.suppression_threshold = 0.3;
    const auto want = IcmEngine<IcmSssp>::Run(g, program, base);
    EXPECT_GE(want.suppressed_vertices, 0);
    for (const ModeSpec& mode : kModes) {
      for (const TransportKind transport : kTransports) {
        IcmSssp p(g, g.vertex_id(0));
        IcmOptions options = MakeOptions(mode, workers, transport);
        options.suppression_threshold = 0.3;
        const auto got = IcmEngine<IcmSssp>::Run(g, p, options);
        ExpectIdentical(want, got,
                        MatrixLabel(mode, transport, workers).c_str());
      }
    }
  }
}

// --- Frontier axis (frontier-driven supersteps): density 0 forces the
// dense activation scan everywhere, a huge density keeps every worker on
// the sorted-frontier path, and the 0.5 default mixes the two as mailed
// sets grow and shrink. All three must be byte-identical across the full
// scheduling x transport x worker matrix — the frontier visits exactly
// the units the dense scan finds active, in the same unit order, so wire
// rows and results cannot differ. frontier_units (mailed-unit totals) is
// also density-invariant; frontier_dense_workers intentionally is NOT
// compared across densities (it is what the knob changes). ---
TEST_P(RuntimeDeterminismTest, FrontierVsDenseMatrix) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 60;
  opt.num_edges = 220;
  const TemporalGraph g = testutil::MakeRandomGraph(GetParam() + 3, opt);
  const double kDensities[] = {0.0, 0.5, 1e9};
  for (int workers : {1, 3, 7}) {
    IcmSssp program(g, g.vertex_id(0));
    IcmOptions base = MakeOptions(kModes[0], workers);
    base.runtime.frontier_density = 0.0;  // pure dense-scan reference
    const auto want = IcmEngine<IcmSssp>::Run(g, program, base);
    for (const ModeSpec& mode : kModes) {
      for (const TransportKind transport : kTransports) {
        for (const double density : kDensities) {
          IcmSssp p(g, g.vertex_id(0));
          IcmOptions options = MakeOptions(mode, workers, transport);
          options.runtime.frontier_density = density;
          const auto got = IcmEngine<IcmSssp>::Run(g, p, options);
          const std::string label = MatrixLabel(mode, transport, workers) +
                                    " d=" + std::to_string(density);
          ExpectIdentical(want, got, label.c_str());
          ASSERT_EQ(want.metrics.per_superstep.size(),
                    got.metrics.per_superstep.size());
          for (size_t s = 0; s < want.metrics.per_superstep.size(); ++s) {
            EXPECT_EQ(want.metrics.per_superstep[s].frontier_units,
                      got.metrics.per_superstep[s].frontier_units)
                << label << " ss=" << s;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeDeterminismTest,
                         ::testing::Values(7, 1234, 987654));

// The runtime and delivery plane are shared by all four engines; every
// platform's stealing mode — over both transports — must reproduce its
// own sequential results and message counts exactly (TI algorithms on
// MSB/Chlonos, TD on TGB/GoFFish).
TEST(RuntimeDeterminismCrossEngine, AllPlatformsMatchSequential) {
  testutil::RandomGraphOptions opt;
  opt.full_lifespan_prob = 0.6;
  Workload w(testutil::MakeRandomGraph(5, opt));
  RunConfig seq;
  seq.num_workers = 3;
  seq.use_threads = false;
  seq.chlonos_batch_size = 5;
  RunConfig par = seq;
  par.use_threads = true;
  par.runtime.scheduling = Scheduling::kStealing;
  par.runtime.num_threads = 8;
  par.runtime.chunk_size = 4;
  RunConfig loop = par;
  loop.runtime.transport = TransportKind::kLoopbackWire;

  const auto check = [&](Platform p, Algorithm a, auto runner,
                         auto absent, const char* what) {
    RunMetrics ms, mp, ml;
    const auto want = runner(w, p, seq, &ms);
    const auto got = runner(w, p, par, &mp);
    const auto wired = runner(w, p, loop, &ml);
    for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
      for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
        ASSERT_EQ(ResultAt(want, v, t, absent), ResultAt(got, v, t, absent))
            << what << " v=" << v << " t=" << t;
        ASSERT_EQ(ResultAt(want, v, t, absent), ResultAt(wired, v, t, absent))
            << what << "/loopback v=" << v << " t=" << t;
      }
    }
    EXPECT_EQ(ms.messages, mp.messages) << what;
    EXPECT_EQ(ms.message_bytes, mp.message_bytes) << what;
    EXPECT_EQ(ms.compute_calls, mp.compute_calls) << what;
    EXPECT_EQ(ms.messages, ml.messages) << what << "/loopback";
    EXPECT_EQ(ms.message_bytes, ml.message_bytes) << what << "/loopback";
    EXPECT_EQ(ms.compute_calls, ml.compute_calls) << what << "/loopback";
    (void)a;
  };
  const auto bfs = [](Workload& wl, Platform p, const RunConfig& c,
                      RunMetrics* m) { return RunBfsOn(wl, p, c, m); };
  const auto sssp = [](Workload& wl, Platform p, const RunConfig& c,
                       RunMetrics* m) { return RunSsspOn(wl, p, c, m); };
  check(Platform::kIcm, Algorithm::kBfs, bfs, kInfCost, "bfs/icm");
  check(Platform::kMsb, Algorithm::kBfs, bfs, kInfCost, "bfs/msb");
  check(Platform::kChl, Algorithm::kBfs, bfs, kInfCost, "bfs/chl");
  check(Platform::kIcm, Algorithm::kSssp, sssp, kInfCost, "sssp/icm");
  check(Platform::kTgb, Algorithm::kSssp, sssp, kInfCost, "sssp/tgb");
  check(Platform::kGof, Algorithm::kSssp, sssp, kInfCost, "sssp/gof");
}

// The frontier axis over all four engines: each platform's
// frontier-driven run (huge density — never dense) must reproduce its own
// dense-scan run (density 0) exactly, results and message counts alike,
// under stealing + tiny chunks so frontier slices cross chunk boundaries.
TEST(RuntimeDeterminismCrossEngine, FrontierMatchesDenseAllPlatforms) {
  testutil::RandomGraphOptions opt;
  opt.full_lifespan_prob = 0.6;
  Workload w(testutil::MakeRandomGraph(11, opt));
  RunConfig dense;
  dense.num_workers = 3;
  dense.use_threads = true;
  dense.runtime.scheduling = Scheduling::kStealing;
  dense.runtime.num_threads = 4;
  dense.runtime.chunk_size = 2;
  dense.runtime.frontier_density = 0.0;
  dense.chlonos_batch_size = 5;
  RunConfig frontier = dense;
  frontier.runtime.frontier_density = 1e9;

  const auto check = [&](Platform p, auto runner, auto absent,
                         const char* what) {
    RunMetrics md, mf;
    const auto want = runner(w, p, dense, &md);
    const auto got = runner(w, p, frontier, &mf);
    for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
      for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
        ASSERT_EQ(ResultAt(want, v, t, absent), ResultAt(got, v, t, absent))
            << what << " v=" << v << " t=" << t;
      }
    }
    EXPECT_EQ(md.messages, mf.messages) << what;
    EXPECT_EQ(md.message_bytes, mf.message_bytes) << what;
    EXPECT_EQ(md.compute_calls, mf.compute_calls) << what;
    EXPECT_EQ(md.frontier_units, mf.frontier_units) << what;
  };
  const auto bfs = [](Workload& wl, Platform p, const RunConfig& c,
                      RunMetrics* m) { return RunBfsOn(wl, p, c, m); };
  const auto sssp = [](Workload& wl, Platform p, const RunConfig& c,
                       RunMetrics* m) { return RunSsspOn(wl, p, c, m); };
  check(Platform::kIcm, bfs, kInfCost, "frontier/bfs/icm");
  check(Platform::kMsb, bfs, kInfCost, "frontier/bfs/msb");
  check(Platform::kChl, bfs, kInfCost, "frontier/bfs/chl");
  check(Platform::kTgb, sssp, kInfCost, "frontier/sssp/tgb");
  check(Platform::kGof, sssp, kInfCost, "frontier/sssp/gof");
}

// --- SIMD dispatch axis (ISSUE 8, DESIGN.md §4j): the vectorized warp
// endpoint pass must reproduce the scalar reference byte-for-byte through
// the whole engine stack, not just in kernel unit tests. Every dispatch
// level the host supports runs the full engine matrix — all four
// platforms, stealing + tiny chunks, both transports — against a
// scalar-dispatch reference. Engines that never call the warp (VCM-based
// baselines) double as a regression net for the prefetch plumbing, which
// must be invisible in results. ---
TEST(RuntimeDeterminismCrossEngine, SimdDeterminismMatchesScalarAllPlatforms) {
  const SimdLevel saved = SimdDispatchLevel();
  testutil::RandomGraphOptions opt;
  opt.full_lifespan_prob = 0.6;
  Workload w(testutil::MakeRandomGraph(23, opt));
  RunConfig par;
  par.num_workers = 3;
  par.use_threads = true;
  par.runtime.scheduling = Scheduling::kStealing;
  par.runtime.num_threads = 4;
  par.runtime.chunk_size = 2;
  par.chlonos_batch_size = 5;
  RunConfig loop = par;
  loop.runtime.transport = TransportKind::kLoopbackWire;

  const auto check = [&](Platform p, auto runner, auto absent,
                         const char* what) {
    SimdSetDispatch(SimdLevel::kScalar);
    RunMetrics ms;
    const auto want = runner(w, p, par, &ms);
    for (const SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
      if (level > SimdMaxSupported()) continue;
      SimdSetDispatch(level);
      RunMetrics mp, ml;
      const auto got = runner(w, p, par, &mp);
      const auto wired = runner(w, p, loop, &ml);
      for (VertexIdx v = 0; v < w.graph().num_vertices(); ++v) {
        for (TimePoint t = 0; t < w.graph().horizon(); ++t) {
          ASSERT_EQ(ResultAt(want, v, t, absent), ResultAt(got, v, t, absent))
              << what << "/" << SimdLevelName(level) << " v=" << v
              << " t=" << t;
          ASSERT_EQ(ResultAt(want, v, t, absent),
                    ResultAt(wired, v, t, absent))
              << what << "/" << SimdLevelName(level) << "/loopback v=" << v
              << " t=" << t;
        }
      }
      EXPECT_EQ(ms.messages, mp.messages)
          << what << "/" << SimdLevelName(level);
      EXPECT_EQ(ms.message_bytes, mp.message_bytes)
          << what << "/" << SimdLevelName(level);
      EXPECT_EQ(ms.compute_calls, mp.compute_calls)
          << what << "/" << SimdLevelName(level);
      EXPECT_EQ(ms.messages, ml.messages)
          << what << "/" << SimdLevelName(level) << "/loopback";
      EXPECT_EQ(ms.compute_calls, ml.compute_calls)
          << what << "/" << SimdLevelName(level) << "/loopback";
    }
  };
  const auto bfs = [](Workload& wl, Platform p, const RunConfig& c,
                      RunMetrics* m) { return RunBfsOn(wl, p, c, m); };
  const auto sssp = [](Workload& wl, Platform p, const RunConfig& c,
                       RunMetrics* m) { return RunSsspOn(wl, p, c, m); };
  check(Platform::kIcm, bfs, kInfCost, "simd/bfs/icm");
  check(Platform::kIcm, sssp, kInfCost, "simd/sssp/icm");
  check(Platform::kMsb, bfs, kInfCost, "simd/bfs/msb");
  check(Platform::kChl, bfs, kInfCost, "simd/bfs/chl");
  check(Platform::kTgb, sssp, kInfCost, "simd/sssp/tgb");
  check(Platform::kGof, sssp, kInfCost, "simd/sssp/gof");
  SimdSetDispatch(saved);
}

// Work stealing actually happens under skew: all vertices on one logical
// worker, many threads, tiny chunks.
TEST(RuntimeStealTest, SkewedPartitionReportsSteals) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 80;
  opt.num_edges = 320;
  const TemporalGraph g = testutil::MakeRandomGraph(42, opt);
  std::vector<int> partition(g.num_vertices(), 0);  // everything on worker 0
  IcmOptions options;
  options.num_workers = 4;
  options.use_threads = true;
  options.runtime.scheduling = Scheduling::kStealing;
  options.runtime.num_threads = 4;
  options.runtime.chunk_size = 2;
  options.custom_partition = &partition;
  IcmPageRank program(g);
  const auto result =
      IcmEngine<IcmPageRank>::Run(g, program, PageRankOptions(options));

  IcmOptions seq = options;
  seq.use_threads = false;
  IcmPageRank sprog(g);
  const auto sresult =
      IcmEngine<IcmPageRank>::Run(g, sprog, PageRankOptions(seq));
  ExpectIdentical(sresult, result, "skewed-steal");
  // Worker 0's chunks can only run without steals on its single home
  // thread; with 4 threads and 2-vertex chunks, some must be stolen.
  EXPECT_GT(result.metrics.steals, 0);
  EXPECT_EQ(sresult.metrics.steals, 0);
}

}  // namespace
}  // namespace graphite
